"""Ring batching vs. epoll+read/write: crossings per op and throughput.

The experiment behind the io_uring subsystem.  An epoll event loop pays
one syscall crossing per ``epoll_pwait`` *plus* one per ``read``/
``write``/``accept`` the readiness unblocks; the submission/completion
ring batches all of that through one ``io_uring_enter`` per wakeup, so
the crossing cost is paid per *batch*.  Two harnesses:

* **kernel-level** (100-1000 connections, loopback and wan-1ms): a
  Python driver plays the clients; the measured server loop is either
  ``epoll_pwait`` + nonblocking ``recvfrom``-until-EAGAIN + ``sendto``
  per connection, or one ``io_uring_enter`` per batch with RECV re-arm
  + quiet SEND SQEs.  Crossings = server-side syscall invocations.
* **guest-level** (100 connections): the unmodified mini-memcached
  binary in its epoll (``-e``) vs ring (``-u``) serving mode, driven by
  the same client fleet; crossings = WALI host-function calls the
  server instance makes — the real guest<->host boundary of the paper's
  Fig. 7 / Table 2 breakdown.

Quick mode (``REPRO_BENCH_QUICK=1``) shrinks the sweep for CI smoke.
"""

import time

from common import quick_mode, save_report

from repro.apps import build
from repro.kernel import (
    AF_INET, EPOLL_CTL_ADD, EPOLLIN, IORING_ENTER_SQ_WAKEUP,
    IORING_OP_RECV, IORING_OP_SEND, IORING_SETUP_SQPOLL,
    IOSQE_CQE_SKIP_SUCCESS, Kernel, KernelError, O_NONBLOCK, SOCK_STREAM,
    SQE,
)
from repro.metrics import table
from repro.wali import WaliRuntime

QUICK = quick_mode()

CONNS = (20,) if QUICK else (100, 400, 1000)
ROUNDS = 3 if QUICK else 8
BACKENDS = [("loopback", None), ("wan-1ms", "wan:latency_ms=1,seed=11")]
GUEST_CONNS = 10 if QUICK else 100
GUEST_REQS = 2 if QUICK else 4
# the SQPOLL sweep: enough simulated connections that per-request
# crossings, not setup, dominate the bill
SQPOLL_CONNS = (300,) if QUICK else (10_000,)
SQPOLL_ROUNDS = 2


def _mk_pairs(kern, proc, n):
    pairs = []
    for _ in range(n):
        a, b = kern.call(proc, "socketpair", AF_INET, SOCK_STREAM)
        pairs.append((a, b))
    return pairs


def _drain_client(kern, proc, fd, want):
    got = b""
    while len(got) < want:
        try:
            data, _ = kern.call(proc, "recvfrom", fd, 256)
        except KernelError:
            time.sleep(0.0005)
            continue
        got += data
    return got


def _kernel_epoll(kern, proc, pairs, rounds):
    """Baseline server loop: epoll_pwait + read-until-EAGAIN + write."""
    server_calls = ("epoll_pwait", "recvfrom", "sendto", "epoll_ctl",
                    "epoll_create1")
    ep = kern.call(proc, "epoll_create1", 0)
    for srv, _cli in pairs:
        proc.fdtable.get(srv).flags |= O_NONBLOCK
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, srv, EPOLLIN)
    kern.call(proc, "epoll_pwait", ep, len(pairs), timeout_ns=0)
    base = sum(kern.syscall_counts.get(n, 0) for n in server_calls)
    ops = 0
    t0 = time.perf_counter()
    for _ in range(rounds):
        for _srv, cli in pairs:
            kern.call(proc, "sendto", cli, b"ping")
        served = 0
        while served < len(pairs):
            ready = kern.call(proc, "epoll_pwait", ep, 64,
                              timeout_ns=2_000_000_000)
            for fd, _ev in ready:
                while True:  # nonblocking drain, like a real event loop
                    try:
                        data, _ = kern.call(proc, "recvfrom", fd, 256)
                    except KernelError:
                        break
                    if not data:
                        break
                    kern.call(proc, "sendto", fd, data)
                    served += 1
                    ops += 1
        for _srv, cli in pairs:
            _drain_client(kern, proc, cli, 4)
    elapsed = time.perf_counter() - t0
    crossings = sum(kern.syscall_counts.get(n, 0)
                    for n in server_calls) - base
    return crossings, ops, elapsed


def _kernel_ring(kern, proc, pairs, rounds):
    """Ring server loop: one io_uring_enter per batch, RECV re-arm +
    quiet SEND per served connection."""
    rfd = kern.call(proc, "io_uring_setup", 512)
    ring = proc.fdtable.get(rfd).obj
    base = kern.syscall_counts.get("io_uring_enter", 0) + \
        kern.syscall_counts.get("io_uring_setup", 0)

    def enter(sqes, min_complete=0):
        """Submit in SQ-sized chunks (the guest-side SQ-full recipe);
        the final chunk blocks for min_complete unless an earlier chunk
        already reaped completions (they drain the CQ as they submit).
        Returns the CQEs."""
        out = []
        chunks = [sqes[i:i + ring.sq_entries]
                  for i in range(0, len(sqes), ring.sq_entries)] or [[]]
        for i, chunk in enumerate(chunks):
            minc = min_complete if i == len(chunks) - 1 and not out else 0
            _sub, cqes = kern.call(proc, "io_uring_enter", rfd, chunk,
                                   minc, 2_000_000_000)
            out.extend(cqes)
        return out

    # initial arm (counts toward the ring's crossings)
    enter([SQE(IORING_OP_RECV, fd=srv, length=256, user_data=srv)
           for srv, _cli in pairs])
    ops = 0
    t0 = time.perf_counter()
    for _ in range(rounds):
        for _srv, cli in pairs:
            kern.call(proc, "sendto", cli, b"ping")
        served = 0
        batch = []
        while served < len(pairs):
            cqes = enter(batch, 1)
            batch = []
            for cqe in cqes:
                if cqe.res <= 0:
                    continue
                batch.append(SQE(IORING_OP_SEND, fd=cqe.user_data,
                                 data=cqe.data,
                                 flags=IOSQE_CQE_SKIP_SUCCESS))
                batch.append(SQE(IORING_OP_RECV, fd=cqe.user_data,
                                 length=256, user_data=cqe.user_data))
                served += 1
                ops += 1
        if batch:
            enter(batch)
        for _srv, cli in pairs:
            _drain_client(kern, proc, cli, 4)
    elapsed = time.perf_counter() - t0
    crossings = kern.syscall_counts.get("io_uring_enter", 0) + \
        kern.syscall_counts.get("io_uring_setup", 0) - base
    return crossings, ops, elapsed


def _kernel_sqpoll(kern, proc, pairs, rounds):
    """SQPOLL server loop: SQEs land in the shared SQ queue by plain
    stores (the driver appends — the guest-store analog), the kernel
    poller submits them, and CQEs are read straight off the shared CQ
    ring.  The only crossings ever paid are the setup call and a
    NEED_WAKEUP kick when the poller idled out."""
    counted = ("io_uring_enter", "io_uring_setup", "io_uring_register")
    rfd = kern.call(proc, "io_uring_setup", 1024, IORING_SETUP_SQPOLL,
                    500.0)
    ring = proc.fdtable.get(rfd).obj
    base = sum(kern.syscall_counts.get(n, 0) for n in counted)

    def push(sqes):
        ring.sq_queue.extend(sqes)
        if ring.sq_need_wakeup:  # visible in the shared header
            kern.call(proc, "io_uring_enter", rfd, (), 0, None, 0,
                      IORING_ENTER_SQ_WAKEUP)

    push([SQE(IORING_OP_RECV, fd=srv, length=256, user_data=srv)
          for srv, _cli in pairs])
    ops = 0
    t0 = time.perf_counter()
    for _ in range(rounds):
        for _srv, cli in pairs:
            kern.call(proc, "sendto", cli, b"ping")
        served = 0
        deadline = time.perf_counter() + 120
        while served < len(pairs):
            cqes = ring.reap(4096)
            if not cqes:
                if ring.sq_need_wakeup and ring.sq_pending():
                    push([])  # the poller parked under queued work
                assert time.perf_counter() < deadline, served
                time.sleep(0.00005)  # CQ-ring poll, like a real guest
                continue
            batch = []
            for cqe in cqes:
                if cqe.res <= 0:
                    continue
                batch.append(SQE(IORING_OP_SEND, fd=cqe.user_data,
                                 data=cqe.data,
                                 flags=IOSQE_CQE_SKIP_SUCCESS))
                batch.append(SQE(IORING_OP_RECV, fd=cqe.user_data,
                                 length=256, user_data=cqe.user_data))
                served += 1
                ops += 1
            push(batch)
        for _srv, cli in pairs:
            _drain_client(kern, proc, cli, 4)
    elapsed = time.perf_counter() - t0
    crossings = sum(kern.syscall_counts.get(n, 0) for n in counted) - base
    kern.call(proc, "close", rfd)
    return crossings, ops, elapsed


def _kernel_level(spec, nconns, rounds, repeats=2):
    """Best-of-N per mode: crossings are deterministic, wall-clock is
    not (timer threads, scheduler); the best run is the least-perturbed
    measurement of the same fixed work."""
    out = {}
    for mode, fn in (("epoll", _kernel_epoll), ("ring", _kernel_ring)):
        best = None
        for _ in range(repeats):
            kern = Kernel(net_backend=spec) if spec else Kernel()
            proc = kern.create_process(["bench"])
            proc.fdtable.max_fds = 4096
            pairs = _mk_pairs(kern, proc, nconns)
            crossings, ops, elapsed = fn(kern, proc, pairs, rounds)
            if best is None or ops / elapsed > best["ops_s"]:
                best = {"crossings_per_op": crossings / ops,
                        "ops_s": ops / elapsed}
        out[mode] = best
    return out


def _guest_memcached(mode, nconns, reqs, repeats=2):
    best = None
    for _ in range(repeats):
        res = _guest_memcached_once(mode, nconns, reqs)
        if best is None or res["ops_s"] > best["ops_s"]:
            best = res
    return best


def _guest_memcached_once(mode, nconns, reqs):
    """The unmodified mini-memcached guest in one serving mode; the
    client fleet is driven from Python so only server crossings count."""
    rt = WaliRuntime()
    server = rt.load(build("mini_memcached"),
                     argv=["memcached", "11211", mode])
    server.start_in_thread()
    for _ in range(500):
        if b"ready" in rt.kernel.console_output():
            break
        time.sleep(0.01)
    k = rt.kernel
    cp = k.create_process(["pyclient"])
    fds = []
    for _ in range(nconns):
        fd = k.call(cp, "socket", AF_INET, SOCK_STREAM)
        k.call(cp, "connect", fd, ("127.0.0.1", 11211))
        fds.append(fd)

    def recvline(fd):
        out = b""
        while not out.endswith(b"\n"):
            data, _ = k.call(cp, "recvfrom", fd, 256)
            if not data:
                break
            out += data
        return out.decode().strip()

    base = sum(server.host.call_counts.values())
    ops = 0
    t0 = time.perf_counter()
    for r in range(reqs):
        for i, fd in enumerate(fds):
            k.call(cp, "sendto", fd, f"set k{i} v{r}\n".encode())
        for fd in fds:
            assert recvline(fd) == "STORED"
        for i, fd in enumerate(fds):
            k.call(cp, "sendto", fd, f"get k{i}\n".encode())
        for r2, fd in enumerate(fds):
            assert recvline(fd) == f"VALUE v{r}"
        ops += 2 * nconns
    elapsed = time.perf_counter() - t0
    crossings = sum(server.host.call_counts.values()) - base
    k.call(cp, "sendto", fds[0], b"shutdown\n")
    assert recvline(fds[0]) == "BYE"
    server.join(5)
    return {"crossings_per_op": crossings / ops, "ops_s": ops / elapsed}


def test_uring_batching(benchmark):
    def sweep():
        results = {"kernel": {}, "guest": {}}
        for label, spec in BACKENDS:
            for n in CONNS:
                results["kernel"][(label, n)] = _kernel_level(
                    spec, n, ROUNDS)
        for mode, flag in (("epoll", "-e"), ("ring", "-u")):
            results["guest"][mode] = _guest_memcached(
                flag, GUEST_CONNS, GUEST_REQS)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for (label, n), modes in results["kernel"].items():
        ep, ur = modes["epoll"], modes["ring"]
        rows.append((f"{label}@{n}",
                     f"{ep['crossings_per_op']:7.2f}",
                     f"{ur['crossings_per_op']:7.2f}",
                     f"{ep['crossings_per_op'] / ur['crossings_per_op']:6.1f}x",
                     f"{ep['ops_s']:9.0f}", f"{ur['ops_s']:9.0f}"))
    gep, gur = results["guest"]["epoll"], results["guest"]["ring"]
    rows.append((f"guest-mc@{GUEST_CONNS}",
                 f"{gep['crossings_per_op']:7.2f}",
                 f"{gur['crossings_per_op']:7.2f}",
                 f"{gep['crossings_per_op'] / gur['crossings_per_op']:6.1f}x",
                 f"{gep['ops_s']:9.0f}", f"{gur['ops_s']:9.0f}"))
    out = [
        table(["config", "ep x/op", "ring x/op", "ratio",
               "ep ops/s", "ring ops/s"], rows),
        "",
        "crossings/op = server-side syscall (kernel rows) or WALI",
        "host-call (guest row) invocations per served echo/request.",
        "the epoll loop pays epoll_pwait + read-until-EAGAIN + one write",
        "per reply fragment; the ring pays one io_uring_enter per batch",
        "(RECV re-arm + reply SEND ride the submission queue).",
    ]
    save_report("uring_batching.txt", "\n".join(out))

    # the acceptance bar: >= 3x fewer crossings per op at every scale,
    # and ring throughput no worse than the epoll serving mode on
    # loopback (small tolerance for timer noise)
    for key, modes in results["kernel"].items():
        ratio = modes["epoll"]["crossings_per_op"] / \
            modes["ring"]["crossings_per_op"]
        assert ratio >= 3.0, (key, modes)
    for key in [k for k in results["kernel"] if k[0] == "loopback"]:
        modes = results["kernel"][key]
        assert modes["ring"]["ops_s"] >= modes["epoll"]["ops_s"] * 0.9, \
            (key, modes)
    guest_ratio = gep["crossings_per_op"] / gur["crossings_per_op"]
    assert guest_ratio >= 3.0, results["guest"]
    assert gur["ops_s"] >= gep["ops_s"] * 0.9, results["guest"]


def test_uring_sqpoll_sweep(benchmark):
    """The zero-crossing serving path at scale: enter-per-batch ring vs
    SQPOLL (shared-queue submission, kernel-side poller) on the same
    echo workload."""
    def sweep():
        out = {}
        for n in SQPOLL_CONNS:
            per = {}
            for mode, fn in (("ring", _kernel_ring),
                             ("sqpoll", _kernel_sqpoll)):
                best = None
                for _ in range(2):  # best-of-2, like _kernel_level
                    kern = Kernel()
                    proc = kern.create_process(["bench"])
                    proc.fdtable.max_fds = 65536
                    pairs = _mk_pairs(kern, proc, n)
                    crossings, ops, elapsed = fn(kern, proc, pairs,
                                                 SQPOLL_ROUNDS)
                    if best is None or ops / elapsed > best["ops_s"]:
                        best = {"crossings_per_op": crossings / ops,
                                "ops_s": ops / elapsed}
                per[mode] = best
            out[n] = per
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for n, per in results.items():
        ur, sq = per["ring"], per["sqpoll"]
        rows.append((f"echo@{n}",
                     f"{ur['crossings_per_op']:9.4f}",
                     f"{sq['crossings_per_op']:9.4f}",
                     f"{ur['ops_s']:9.0f}", f"{sq['ops_s']:9.0f}"))
    out = [
        table(["config", "ring x/op", "sqpoll x/op",
               "ring ops/s", "sqpoll ops/s"], rows),
        "",
        "ring   = one blocking io_uring_enter per batch (PR 3 path).",
        "sqpoll = SQEs stored into the shared SQ queue, drained by the",
        "kernel poller task; completions read off the shared CQ ring.",
        "sqpoll crossings = setup + NEED_WAKEUP kicks only — the serving",
        "loop itself never crosses.",
    ]
    save_report("uring_sqpoll.txt", "\n".join(out))

    # acceptance: under load the SQPOLL path pays < 0.05 crossings per
    # request (vs ~1+ for enter-per-batch at low batch occupancy) at
    # parity-or-better throughput.  The quick smoke runs 300 conns where
    # host-thread noise dominates, so only the full sweep holds the 0.9
    # parity bar tight.
    parity = 0.7 if QUICK else 0.9
    for n, per in results.items():
        assert per["sqpoll"]["crossings_per_op"] < 0.05, (n, per)
        assert per["sqpoll"]["ops_s"] >= per["ring"]["ops_s"] * parity, \
            (n, per)
