"""Event-dispatch scaling: epoll ready-list vs ppoll O(n) rescan.

The experiment behind the event subsystem: one process watches N
connected socket pairs; exactly one becomes readable per round, and we
measure the cost of finding it.  ``ppoll`` re-scans all N interest fds on
every call, so its per-dispatch cost grows linearly with N; ``epoll``
dispatches from the wakeup-maintained ready list, so its cost stays flat
(sublinear in N) — the reason memcached's event-loop mode can hold
hundreds of connections in one thread.
"""

import time

from common import quick_mode, save_report

from repro.kernel import (
    AF_INET, EPOLL_CTL_ADD, EPOLLIN, Kernel, SOCK_STREAM,
)
from repro.metrics import table

# quick mode: the CI smoke job runs the sweep at tiny scale just to keep
# the entry point alive; the scaling assertions need the full fd range
QUICK = quick_mode()
FD_COUNTS = (10, 200) if QUICK else (10, 100, 1000)
ROUNDS = 80 if QUICK else 300
POLLIN = 1


def _make_pairs(kern, proc, n):
    pairs = []
    for _ in range(n):
        a, b = kern.call(proc, "socketpair", AF_INET, SOCK_STREAM)
        pairs.append((a, b))
    return pairs


def _bench(n: int):
    """Per-dispatch cost (seconds) of ppoll vs epoll over n watched fds."""
    kern = Kernel()
    proc = kern.create_process(["bench"])
    proc.fdtable.max_fds = 4096
    pairs = _make_pairs(kern, proc, n)

    # ---- ppoll: every wait rescans the full interest list ----
    pollfds = [(a, POLLIN) for a, _ in pairs]
    t0 = time.perf_counter()
    for i in range(ROUNDS):
        a, b = pairs[i % n]
        kern.call(proc, "sendto", b, b"x")
        ready = kern.call(proc, "ppoll", pollfds, 1_000_000_000)
        assert dict(ready)[a] & POLLIN
        kern.call(proc, "recvfrom", a, 8)
    ppoll_s = (time.perf_counter() - t0) / ROUNDS

    # ---- epoll: waits dispatch from the ready list ----
    ep = kern.call(proc, "epoll_create1", 0)
    for a, _ in pairs:
        kern.call(proc, "epoll_ctl", ep, EPOLL_CTL_ADD, a, EPOLLIN)
    # drain the registration-time level checks before timing
    kern.call(proc, "epoll_pwait", ep, n, timeout_ns=0)
    t0 = time.perf_counter()
    for i in range(ROUNDS):
        a, b = pairs[i % n]
        kern.call(proc, "sendto", b, b"x")
        ready = kern.call(proc, "epoll_pwait", ep, 64,
                          timeout_ns=1_000_000_000)
        assert (a, EPOLLIN) in ready
        kern.call(proc, "recvfrom", a, 8)
    epoll_s = (time.perf_counter() - t0) / ROUNDS

    return ppoll_s, epoll_s


def test_epoll_scaling(benchmark):
    def sweep():
        return {n: _bench(n) for n in FD_COUNTS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for n, (ppoll_s, epoll_s) in results.items():
        rows.append((str(n), f"{ppoll_s * 1e6:9.1f}",
                     f"{epoll_s * 1e6:9.1f}",
                     f"{ppoll_s / epoll_s:6.1f}x"))
    out = [
        table(["watched fds", "ppoll us/ev", "epoll us/ev", "speedup"],
              rows),
        "",
        "one fd becomes ready per round; cost to find and dispatch it.",
        "ppoll rescans all N interest fds per call (linear); epoll",
        "dispatches from the wakeup-maintained ready list (flat).",
    ]
    save_report("epoll_scaling.txt", "\n".join(out))

    if QUICK:
        # smoke only: every path ran and epoll is no slower at the top end
        pl, el = results[FD_COUNTS[-1]]
        assert el < pl, (el, pl)
        return
    p10, e10 = results[10]
    p1000, e1000 = results[1000]
    # ppoll dispatch cost grows roughly linearly in N (allow great slack)
    assert p1000 > p10 * 5, (p10, p1000)
    # epoll dispatch cost grows sublinearly: far less than the fd ratio
    assert e1000 / e10 < (p1000 / p10) / 2, (e10, e1000, p10, p1000)
    # and at 1000 fds epoll beats ppoll outright
    assert e1000 < p1000 / 4, (e1000, p1000)
