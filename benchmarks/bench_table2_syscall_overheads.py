"""Table 2 — intrinsic WALI overhead for 30 representative syscalls.

For each syscall the harness measures the WALI layer's own time (total
wrapper time minus kernel time — i.e. address translation, layout
conversion, bookkeeping), reports the handler's implementation size in
lines of code, and whether it needs engine state.  The paper's claims:

* most handlers are <10 LOC and cost a few hundred nanoseconds;
* ``clone`` is the outlier — not interface cost, but the engine
  duplicating an execution environment per thread (instance-per-thread).
"""

import time

from common import save_report

from repro.apps import with_libc
from repro.cc import compile_source
from repro.metrics import table
from repro.wali import SYSCALLS, WaliRuntime, handler_loc
from repro.kernel import SIGUSR1

# the paper's Table 2 selection
TABLE2_SYSCALLS = [
    "read", "write", "mmap", "open", "close", "fstat", "mprotect",
    "pread64", "lseek", "rt_sigaction", "stat", "futex", "rt_sigprocmask",
    "getpid", "writev", "munmap", "fcntl", "access", "recvfrom", "getuid",
    "geteuid", "poll", "getrusage", "getegid", "getgid", "lstat", "ioctl",
    "clone", "prlimit64", "fork",
]

GUEST = with_libc(r"""
func noop_thread(arg: i32) { }
export func _start() {
    // table entry for the clone microbenchmark; never actually started here
    if (argc() < 0) { thread_create(funcref(noop_thread), 0); }
    exit(0);
}
""")


class Microbench:
    """Drives WALI host functions directly against a loaded guest."""

    def __init__(self):
        self.rt = WaliRuntime()
        self.rt.kernel.vfs.write_file("/tmp/target.txt", b"x" * 4096)
        self.wp = self.rt.load(compile_source(GUEST, name="micro"),
                               argv=["micro"])
        self.ns = self.wp.host.imports()["wali"]
        self.mem = self.wp.instance.memory
        base = 1 << 16
        self.buf = base
        self.path = base + 8192
        self.mem.write_cstr(self.path, b"/tmp/target.txt")
        self.iov = base + 8300
        self.mem.store_i32(self.iov, self.buf)
        self.mem.store_i32(self.iov + 4, 64)
        self.pollfd = base + 8400
        self.sigact = base + 8500
        self.mem.write(self.sigact, (2).to_bytes(4, "little") + b"\x00" * 12)
        self.ts = base + 8600
        self.fd = self.call("SYS_openat", -100 & 0xFFFFFFFF, self.path, 2, 0)
        self.mem.write(self.pollfd, self.fd.to_bytes(4, "little") +
                       (1).to_bytes(2, "little") + b"\x00\x00")
        sockfd = self.call("SYS_socket", 2, 2, 0)  # datagram, for recvfrom
        self.sock = sockfd
        sa = base + 8700
        from repro.wali.layout import Layout

        self.mem.write(sa, Layout.encode_sockaddr(("0.0.0.0", 901)))
        self.call("SYS_bind", self.sock, sa, 16)
        self.call("SYS_sendto", self.sock, self.buf, 8, 0, sa, 16)
        self.mmap_addr = self.call("SYS_mmap", 0, 8192, 3, 0x22,
                                   -1 & 0xFFFFFFFF, 0)

    def call(self, name, *args):
        return self.ns[name].fn(*args)

    def args_for(self, name):
        neg1 = -100 & 0xFFFFFFFF
        table = {
            "read": (self.fd, self.buf, 64),
            "write": (self.fd, self.buf, 64),
            "mmap": (0, 4096, 3, 0x22, -1 & 0xFFFFFFFF, 0),
            "open": (self.path, 0, 0),
            "close": None,  # special: open+close pairs
            "fstat": (self.fd, self.buf),
            "mprotect": (self.mmap_addr, 4096, 1),
            "pread64": (self.fd, self.buf, 64, 0),
            "lseek": (self.fd, 0, 0),
            "rt_sigaction": (SIGUSR1, self.sigact, 0, 8),
            "stat": (self.path, self.buf),
            "futex": (self.buf, 1, 1, 0, 0, 0),  # FUTEX_WAKE
            "rt_sigprocmask": (0, 0, 0, 8),
            "getpid": (),
            "writev": (self.fd, self.iov, 1),
            "munmap": None,  # special: mmap+munmap pairs
            "fcntl": (self.fd, 3, 0),
            "access": (self.path, 0),
            "recvfrom": None,  # special: needs a queued datagram
            "getuid": (),
            "geteuid": (),
            "poll": (self.pollfd, 1, 0),
            "getrusage": (0, self.buf),
            "getegid": (),
            "getgid": (),
            "lstat": (self.path, self.buf),
            "ioctl": (0, 0x5413, self.buf),  # TIOCGWINSZ on the tty
            "prlimit64": (0, 7, 0, self.buf),
            "fork": None,  # special
            "clone": None,  # special
        }
        return table[name]

    def measure(self, name, rounds=300):
        host = self.wp.host
        sys_name = f"SYS_{name}"
        if name == "close":
            for _ in range(rounds):
                fd = self.call("SYS_openat", -100 & 0xFFFFFFFF, self.path,
                               0, 0)
                self.call("SYS_close", fd)
        elif name == "munmap":
            for _ in range(rounds):
                addr = self.call("SYS_mmap", 0, 4096, 3, 0x22,
                                 -1 & 0xFFFFFFFF, 0)
                self.call("SYS_munmap", addr, 4096)
        elif name == "recvfrom":
            sa = 1 << 16
            for _ in range(rounds):
                self.call("SYS_sendto", self.sock, self.buf, 8, 0,
                          (1 << 16) + 8700, 16)
                self.call("SYS_recvfrom", self.sock, self.buf, 64, 0, 0, 0)
        elif name in ("fork", "clone"):
            rounds = 8
            for _ in range(rounds):
                if name == "fork":
                    self.call("SYS_fork")
                else:
                    self.call("SYS_clone", 0x10f00, 0, 2, 0)
            time.sleep(0.05)  # let the spawned children run out
        else:
            args = self.args_for(name)
            fn = self.ns[sys_name].fn
            for _ in range(rounds):
                fn(*args)
        count = host.call_counts[name]
        wali_ns = host.call_wali_ns[name]
        return wali_ns / max(count, 1)


def test_table2_syscall_overheads(benchmark):
    mb = Microbench()

    def run_all():
        rows = []
        for name in TABLE2_SYSCALLS:
            overhead = mb.measure(name)
            spec = SYSCALLS[name]
            rows.append((name, overhead, handler_loc(name),
                         "Y" if spec.stateful else "N"))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    formatted = [(n, f"{o:9.0f} ns", loc, st) for n, o, loc, st in rows]
    out = [table(["syscall", "WALI overhead", "LOC", "stateful"], formatted)]
    plain = [r for r in rows if r[0] not in ("clone", "fork")]
    median = sorted(r[1] for r in plain)[len(plain) // 2]
    clone_ns = next(r[1] for r in rows if r[0] == "clone")
    fork_ns = next(r[1] for r in rows if r[0] == "fork")
    out += [
        "",
        f"median overhead (excluding clone/fork): {median:.0f} ns",
        f"clone: {clone_ns:.0f} ns  fork: {fork_ns:.0f} ns — the outliers: "
        "the engine duplicates a per-thread execution environment "
        "(instance-per-thread) resp. the whole instance (fork), exactly the "
        "engine-not-interface cost the paper attributes to WAMR's thread "
        "manager.",
        "",
        "paper: most syscalls cost a few hundred ns and <10 LOC; clone is "
        "~500 us from execution-environment duplication.",
    ]
    save_report("table2_syscall_overheads.txt", "\n".join(out))

    # shape: most handlers small, pass-through cheap, clone the outlier
    locs = [loc for _, _, loc, _ in rows]
    assert sum(1 for v in locs if v <= 12) >= 24  # "under ~10 lines" claim
    assert clone_ns > 20 * median
    assert fork_ns > 20 * median
    stateful = {n: st for n, _, _, st in rows}
    assert stateful["mmap"] == "Y" and stateful["rt_sigaction"] == "Y"
    assert stateful["read"] == "N"
