"""Scheduler contention: runnable-wait vs service time under CPU load.

The experiment the paper's Fig. 7 kernel-time breakdown cannot express
without a scheduler: N CPU-bound spinner guests share one CPU slot with
a latency-probe guest that sleeps, wakes, and issues a cheap syscall.
On an idle kernel the probe's runnable-wait is ~0 — every syscall is
pure service time.  Under contention the probe must win the slot back
from a spinner on every wakeup, so its p99 wait grows with N while the
kernel's *service* cost stays flat: syscall latency = service + wait,
and only a scheduler makes the second term measurable.

Also checked: CFS-lite fairness — equal-nice spinners racing on one
slot must split the CPU within a 1.2x ratio (weighted vruntime picks),
and a nice+5 spinner gets ~1/3 the CPU of a nice-0 one (load weights).

Quick mode (``REPRO_BENCH_QUICK=1``) shrinks iteration counts for CI.
"""

import threading
import time

from common import quick_mode, save_report

from repro.kernel import (
    BackgroundSpinners, IORING_OP_NOP, IORING_SETUP_SQPOLL,
    IOSQE_CQE_SKIP_SUCCESS, Kernel, SQE, nice_to_weight,
)

QUICK = quick_mode()

SCHED = "cpus=1,slice_us=50"
SPINNER_COUNTS = (0, 2, 8)
PROBE_ITERS = 60 if QUICK else 250
FAIR_SPINNERS = 4
FAIR_SECONDS = 0.4 if QUICK else 1.2


def _percentile(samples, pct):
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(len(ordered) * pct / 100))
    return ordered[idx]


def _probe_run(nspin):
    """One contention point: probe wait stats with ``nspin`` spinners.

    Returns (p50_us, p99_us, mean_us, service_us_per_call).
    """
    kern = Kernel(sched=SCHED)
    probe = kern.create_process(["probe"])
    kern.call(probe, "getpid")  # attach before the load starts
    spinners = BackgroundSpinners(kern, n=nspin).start() if nspin else None
    try:
        time.sleep(0.05)  # let the spinners saturate the slot
        waits = []
        k0 = kern.kernel_time_ns[probe.tgid]
        b0 = kern.blocked_time_ns[probe.tgid]
        w_total0 = kern.sched_wait_ns[probe.tgid]
        for _ in range(PROBE_ITERS):
            # sleep (releases the slot), wake, then contend for it again
            w0 = kern.sched_wait_ns[probe.tgid]
            kern.call(probe, "nanosleep", 200_000)
            kern.call(probe, "getpid")
            waits.append(kern.sched_wait_ns[probe.tgid] - w0)
        kernel = kern.kernel_time_ns[probe.tgid] - k0
        blocked = kern.blocked_time_ns[probe.tgid] - b0
        waited = kern.sched_wait_ns[probe.tgid] - w_total0
        service_ns = max(kernel - blocked - waited, 0) / (2 * PROBE_ITERS)
    finally:
        if spinners is not None:
            spinners.stop()
    return (_percentile(waits, 50) / 1e3, _percentile(waits, 99) / 1e3,
            sum(waits) / len(waits) / 1e3, service_ns / 1e3)


def _fairness_ratio(nice_levels):
    """CPU-share ratio (first spinner / last) after racing on one slot."""
    kern = Kernel(sched=SCHED)
    groups = [BackgroundSpinners(kern, n=1, nice=nice).start()
              for nice in nice_levels]
    try:
        time.sleep(FAIR_SECONDS)
    finally:
        for g in groups:
            g.stop()
    shares = [g.cpu_times_ns()[0] for g in groups]
    assert min(shares) > 0, "a spinner never ran: starvation"
    return shares


def _sqpoll_fairness():
    """CPU shares of a saturated SQPOLL poller racing two equal-nice
    spinners on one slot.

    The poller is a real scheduler entity (it brackets every drain pass
    in syscall_enter/exit), so CFS must hold it to the same fair share
    as any CPU-bound guest — a kernel-side io_uring poller must not be
    a scheduling cheat code.  A feeder thread keeps the shared SQ queue
    topped up with quiet NOPs (CQE_SKIP_SUCCESS: no CQ buildup), so the
    poller never idles out.
    """
    kern = Kernel(sched=SCHED)
    proc = kern.create_process(["sqpoll-owner"])
    fd = kern.call(proc, "io_uring_setup", 256, IORING_SETUP_SQPOLL,
                   10_000.0)
    ring = proc.fdtable.get(fd).obj
    spinners = BackgroundSpinners(kern, n=2).start()
    stop = threading.Event()

    def feeder():
        while not stop.is_set():
            while len(ring.sq_queue) < 512:
                ring.sq_queue.append(
                    SQE(IORING_OP_NOP, flags=IOSQE_CQE_SKIP_SUCCESS))
            time.sleep(0.001)

    t = threading.Thread(target=feeder, daemon=True)
    t.start()
    try:
        time.sleep(FAIR_SECONDS)
    finally:
        stop.set()
        t.join(5)
        poller_ns = ring.sqpoll.proc.se.cpu_time_ns
        spin_ns = spinners.cpu_times_ns()
        spinners.stop()
        kern.call(proc, "close", fd)
    return poller_ns, spin_ns


def test_sched_contention_report():
    lines = [
        "Scheduler contention: latency-probe runnable-wait vs CPU load",
        f"  kernel sched spec: {SCHED}; probe iters: {PROBE_ITERS}",
        "",
        f"{'spinners':>8}  {'p50 wait':>10}  {'p99 wait':>10}  "
        f"{'mean wait':>10}  {'service/call':>12}",
    ]
    results = {}
    for n in SPINNER_COUNTS:
        p50, p99, mean, service = _probe_run(n)
        results[n] = (p50, p99, mean, service)
        lines.append(f"{n:>8}  {p50:>8.1f}us  {p99:>8.1f}us  "
                     f"{mean:>8.1f}us  {service:>10.2f}us")

    idle_p99 = results[0][1]
    loaded_p99 = results[SPINNER_COUNTS[-1]][1]
    # acceptance: idle ~0; 8 spinners >= 4x idle (floor 1us for the ratio)
    floor = max(idle_p99, 1.0)
    lines += [
        "",
        f"idle p99 wait      : {idle_p99:.1f}us (~0: every grant immediate)",
        f"loaded p99 wait    : {loaded_p99:.1f}us "
        f"({loaded_p99 / floor:.1f}x idle floor)",
    ]
    assert idle_p99 < 50.0, f"idle kernel shows contention: {idle_p99}us"
    assert loaded_p99 >= 4.0 * floor, \
        f"p99 wait did not grow with contention: {results}"
    assert results[SPINNER_COUNTS[-1]][2] > results[0][2], \
        "mean wait must grow with contention"

    # equal-nice fairness on one slot
    shares = _fairness_ratio([0] * FAIR_SPINNERS)
    ratio = max(shares) / min(shares)
    lines += [
        "",
        f"fairness ({FAIR_SPINNERS} equal-nice spinners, 1 cpu, "
        f"{FAIR_SECONDS:.1f}s):",
        "  cpu shares: " + ", ".join(f"{s / 1e6:.0f}ms" for s in shares),
        f"  max/min ratio: {ratio:.3f} (bound: 1.2)",
    ]
    assert ratio <= 1.2, f"unfair split between equal spinners: {shares}"

    # nice weighting: a nice+5 spinner gets ~1/3 of a nice-0 spinner
    shares = _fairness_ratio([0, 5])
    weighted = shares[0] / shares[1]
    expected = nice_to_weight(0) / nice_to_weight(5)
    lines += [
        "",
        f"nice weighting (nice 0 vs nice 5): measured {weighted:.2f}x, "
        f"load-weight ratio {expected:.2f}x",
    ]
    assert weighted > 1.5, f"nice 5 did not yield CPU: {shares}"

    # a saturated SQPOLL poller contends like any guest: same 1.2x bound
    poller_ns, spin_ns = _sqpoll_fairness()
    shares = [poller_ns] + list(spin_ns)
    ratio = max(shares) / min(shares)
    lines += [
        "",
        f"SQPOLL poller vs 2 spinners ({FAIR_SECONDS:.1f}s, 1 cpu):",
        "  cpu shares (poller first): " +
        ", ".join(f"{s / 1e6:.0f}ms" for s in shares),
        f"  max/min ratio: {ratio:.3f} (bound: 1.2)",
    ]
    assert min(shares) > 0, f"a task starved: {shares}"
    assert ratio <= 1.2, f"SQPOLL poller broke CFS fairness: {shares}"

    save_report("sched_contention.txt", "\n".join(lines))


if __name__ == "__main__":
    test_sched_contention_report()
