"""Observability-layer overhead over the memcached echo workload.

Three kernel configurations run the identical guest binaries
(mini-memcached + its client, every request a blocking round trip):

* ``ablated``  — ``Kernel(trace="off")``: the tracing subsystem does not
  exist.  This is the pre-observability baseline.
* ``disabled`` — the default ``Kernel()``: tracepoints compiled in but
  tracing off.  Every emit site pays two attribute loads and a set
  test; the always-on latency histograms pay one log2-bucket increment
  per syscall.  **The contract this benchmark enforces: ≤10% slower
  than ablated** (min-of-rounds, so timing noise cancels).
* ``enabled``  — ``Kernel(trace="on")`` with the full tracepoint mask
  and the wq_wake hook attached: every event is stamped, packed and
  pushed through the ring.  Reported for scale; no bound asserted (the
  ring exists to be cheap enough to *leave compiled in*, not to be
  free while recording everything).

Quick mode (``REPRO_BENCH_QUICK=1``) shrinks op counts for CI smoke and
relaxes the bound — tiny runs are dominated by boot cost and timer
noise, not the per-syscall path this benchmark isolates.
"""

import time

from common import quick_mode, save_report

from repro.apps import build
from repro.kernel import Kernel
from repro.metrics import table
from repro.wali import WaliRuntime

QUICK = quick_mode()

NOPS = 30 if QUICK else 120
ROUNDS = 2 if QUICK else 3
# the disabled-but-compiled-in budget (acceptance: ≤10% at full scale)
MAX_DISABLED_OVERHEAD = 1.35 if QUICK else 1.10

CONFIGS = [
    ("ablated", "off"),
    ("disabled", None),
    ("enabled", "on"),
]


def _echo_run_s(trace_spec):
    """One memcached server+client session; wall seconds of the client."""
    kernel = Kernel(trace=trace_spec) if trace_spec is not None else Kernel()
    rt = WaliRuntime(kernel=kernel)
    server = rt.load(build("mini_memcached"), argv=["memcached", "11211"])
    server.start_in_thread()
    for _ in range(500):
        if b"ready" in rt.kernel.console_output():
            break
        time.sleep(0.01)
    client = rt.load(build("memcached_client"),
                     argv=["client", "11211", str(NOPS), "1"])
    t0 = time.perf_counter()
    status = client.run()
    elapsed = time.perf_counter() - t0
    server.join(5)
    assert status == 0, f"client failed with trace={trace_spec!r}"
    assert b"client ok" in rt.kernel.console_output()
    events = 0
    if kernel.trace is not None:
        events = kernel.trace.counters["trace.events"]
        kernel.trace.close()
    return elapsed, events


def test_trace_overhead(benchmark):
    def sweep():
        out = {}
        for label, spec in CONFIGS:
            runs = [_echo_run_s(spec) for _ in range(ROUNDS)]
            out[label] = {
                "best_s": min(r[0] for r in runs),
                "events": max(r[1] for r in runs),
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    base = results["ablated"]["best_s"]
    rows = []
    for label, _ in CONFIGS:
        r = results[label]
        rows.append((label, f"{r['best_s'] * 1e3:8.1f}",
                     f"{r['best_s'] / base:5.2f}x",
                     r["events"]))
    disabled_ratio = results["disabled"]["best_s"] / base
    enabled_ratio = results["enabled"]["best_s"] / base
    out = [
        table(["config", "best ms", "vs ablated", "trace events"], rows),
        "",
        f"{2 * NOPS} blocking round trips, best of {ROUNDS} rounds",
        f"disabled-but-compiled-in overhead: "
        f"{(disabled_ratio - 1) * 100:+.1f}% (budget +10%)",
        f"full-mask recording overhead:      "
        f"{(enabled_ratio - 1) * 100:+.1f}%",
        "",
        "tracepoints stay compiled into every hot path (sched grants,",
        "waitqueue wakes, syscall dispatch); disabled they cost two",
        "attribute loads and a set test — the observability layer is",
        "always one `echo on > /proc/trace_ctl` away.",
    ]
    save_report("trace_overhead.txt", "\n".join(out))

    assert disabled_ratio <= MAX_DISABLED_OVERHEAD, results
    # full recording must actually have recorded something
    assert results["enabled"]["events"] > 0, results
    assert results["ablated"]["events"] == 0, results
