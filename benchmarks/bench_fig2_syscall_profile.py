"""Fig. 2 — syscall profile across applications.

Runs the application suite under kernel tracing and regenerates the
log-normalised frequency profile (aggregate row + per-app rows).  The
paper's claim: applications use well under ~150 unique syscalls, so a thin
interface covering that set runs most software.

Counts come from the kernel's ``syscall.*`` counter cells — the same
cells perf counting events bind to and ``counter_snapshot`` renders —
so this figure, guest ``perf stat`` and ``/proc`` agree by
construction.
"""

from common import save_report

from repro.apps import build, install_all
from repro.apps.lua import fib_script
from repro.apps.sqlite import workload_script
from repro.metrics import (
    aggregate_profiles, profile_app, profile_from_kernel, render_profile,
)
from repro.wali import WaliRuntime, implemented_names


def _profiles():
    profiles = []

    rt = WaliRuntime()
    install_all(rt, ["echo", "cat", "wc", "true"])
    script = (b"echo profiling the shell\n"
              b"pwd\n"
              b"echo data > /tmp/file.txt\n"
              b"cat /tmp/file.txt | wc\n"
              b"exit 0\n")
    rt.kernel.vfs.write_file("/tmp/s.sh", script)
    profiles.append(profile_app(
        "bash", build("mini_sh"), argv=["sh", "/tmp/s.sh"], runtime=rt))

    profiles.append(profile_app(
        "lua", build("mini_lua"), argv=["lua", "/tmp/fib.lua"],
        files={"/tmp/fib.lua": fib_script(200)}))

    profiles.append(profile_app(
        "sqlite3", build("mini_sqlite"),
        argv=["sqlite", "/tmp/p.db", "/tmp/p.sql"],
        files={"/tmp/p.sql": workload_script(30, 30)}))

    # memcached: server + client in one traced kernel
    import time

    rt = WaliRuntime()
    server = rt.load(build("mini_memcached"), argv=["memcached", "11211"])
    server.start_in_thread()
    for _ in range(300):
        if b"ready" in rt.kernel.console_output():
            break
        time.sleep(0.01)
    client = rt.load(build("memcached_client"),
                     argv=["client", "11211", "30", "1"])
    client.run()
    server.join(5)
    # server + client + children in one snapshot of the counter cells
    profiles.append(profile_from_kernel("memcached", rt.kernel))

    return profiles


def test_fig2_syscall_profile(benchmark):
    profiles = benchmark.pedantic(_profiles, rounds=1, iterations=1)
    agg = aggregate_profiles(profiles)
    report = [render_profile(profiles), ""]
    report.append(f"unique syscalls (union across apps): "
                  f"{agg.unique_syscalls}")
    report.append(f"WALI implemented syscalls: {len(implemented_names())}")
    for p in profiles:
        report.append(f"  {p.app:<12} unique={p.unique_syscalls:3d} "
                      f"total_calls={p.total_calls}")
    report.append("")
    report.append("paper: many apps use <100 unique syscalls; the union "
                  "across apps is ~140-150, well within WALI's 137+ "
                  "implemented set.")
    save_report("fig2_syscall_profile.txt", "\n".join(report))

    # the paper's quantitative shape
    assert agg.unique_syscalls < len(implemented_names())
    for p in profiles:
        assert p.unique_syscalls < 100
