"""Sampling-profiler overhead over the memcached echo workload.

Three kernel configurations run the identical guest binaries
(mini-memcached + its client, every request a blocking round trip):

* ``off``     — no perf event open: ``kernel.perf.active`` is False and
  the syscall hot path pays one attribute load + truth test.  Baseline.
* ``997Hz``   — a system-wide sampling event at the classic profiling
  rate.  **The contract this benchmark enforces: ≤10% slower than off**
  (min-of-rounds at full scale; relaxed in CI quick mode where boot
  cost dominates).
* ``9973Hz``  — 10× the rate, reported for scale; no bound asserted
  (at some rate a software sampler must cost something — the claim is
  that the *useful* rate is near-free, not that sampling is free).

Nobody drains the ring during the run: the ring fills, overflow is
recorded in the lost counter, and the per-opportunity cost being
measured is the full capture path (clock advance + frame walk + encode
+ push), which is exactly what a guest ``perf record`` imposes.

Quick mode (``REPRO_BENCH_QUICK=1``) shrinks op counts for CI smoke and
relaxes the bound.
"""

import time

from common import quick_mode, save_report

from repro.apps import build
from repro.kernel import PERF_TYPE_SAMPLING, PerfAttr
from repro.metrics import table
from repro.wali import WaliRuntime

QUICK = quick_mode()

NOPS = 30 if QUICK else 120
ROUNDS = 2 if QUICK else 3
# the 997 Hz budget (acceptance: ≤10% at full scale)
MAX_997_OVERHEAD = 1.40 if QUICK else 1.10

CONFIGS = [
    ("off", 0),
    ("997Hz", 997),
    ("9973Hz", 9973),
]


def _echo_run_s(freq_hz):
    """One memcached server+client session; wall seconds of the client."""
    rt = WaliRuntime()
    server = rt.load(build("mini_memcached"), argv=["memcached", "11211"])
    server.start_in_thread()
    for _ in range(500):
        if b"ready" in rt.kernel.console_output():
            break
        time.sleep(0.01)
    event = None
    if freq_hz:
        attr = PerfAttr(type=PERF_TYPE_SAMPLING, sample_freq=freq_hz,
                        ring_capacity=4096)
        event = rt.kernel.perf.open_event(server.proc, attr,
                                          -1, -1, -1, 0)
    client = rt.load(build("memcached_client"),
                     argv=["client", "11211", str(NOPS), "1"])
    t0 = time.perf_counter()
    status = client.run()
    elapsed = time.perf_counter() - t0
    server.join(5)
    samples = lost = 0
    if event is not None:
        samples, lost = event.samples, event.ring.lost
        event.close()
    assert status == 0, f"client failed at freq={freq_hz}"
    assert b"client ok" in rt.kernel.console_output()
    if rt.kernel.trace is not None:
        rt.kernel.trace.close()
    return elapsed, samples, lost


def test_perf_overhead(benchmark):
    def sweep():
        out = {}
        for label, freq in CONFIGS:
            runs = [_echo_run_s(freq) for _ in range(ROUNDS)]
            out[label] = {
                "best_s": min(r[0] for r in runs),
                "samples": max(r[1] for r in runs),
                "lost": max(r[2] for r in runs),
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    base = results["off"]["best_s"]
    rows = []
    for label, _ in CONFIGS:
        r = results[label]
        rows.append((label, f"{r['best_s'] * 1e3:8.1f}",
                     f"{r['best_s'] / base:5.2f}x",
                     r["samples"], r["lost"]))
    r997 = results["997Hz"]["best_s"] / base
    r9973 = results["9973Hz"]["best_s"] / base
    out = [
        table(["config", "best ms", "vs off", "samples", "lost"], rows),
        "",
        f"{2 * NOPS} blocking round trips, best of {ROUNDS} rounds",
        f"997 Hz sampling overhead:  {(r997 - 1) * 100:+.1f}% (budget +10%)",
        f"9973 Hz sampling overhead: {(r9973 - 1) * 100:+.1f}%",
        "",
        "sampling opportunities ride the syscall dispatch path the",
        "kernel already owns; with no event open the whole subsystem",
        "is one attribute load + truth test per syscall.",
    ]
    save_report("perf_overhead.txt", "\n".join(out))

    assert r997 <= MAX_997_OVERHEAD, results
    # empty-report guard: the profiler must actually have sampled
    # (at quick scale the run is shorter than one 997 Hz period on the
    # deterministic clock, so only the 9973 Hz bound applies there)
    assert results["9973Hz"]["samples"] > 0, results
    if not QUICK:
        assert results["997Hz"]["samples"] > 0, results
    assert results["9973Hz"]["samples"] >= results["997Hz"]["samples"], \
        results
