"""Fig. 8 — WALI vs Docker vs QEMU vs native: memory and execution time.

Sweeps workload sizes for lua, bash and sqlite across the four tiers and
regenerates:

* Fig. 8a — peak memory per tier (container base overhead dominates);
* Fig. 8b-d — total execution time (incl. startup) against native time:
  QEMU an order of magnitude slower, Docker near-native slope with a large
  startup intercept, WALI a steeper slope with a millisecond intercept —
  producing the startup/runtime crossover the paper highlights.
"""

from common import save_report

from repro.apps import build
from repro.metrics import table
from repro.virt import (
    BASE_MEMORY_MB, TIERS, bash_workload, lua_workload, run_tier,
    sqlite_workload,
)

SWEEPS = {
    "lua": (lua_workload, [30, 100, 400, 1000]),
    "bash": (bash_workload, [5, 15, 40, 90]),
    "sqlite": (sqlite_workload, [5, 15, 40, 80]),
}


def _run_sweep():
    results = {}
    for name, (factory, scales) in SWEEPS.items():
        module = build(factory(scales[0]).app)
        # warm the offline-AoT cache so native startup excludes compilation
        run_tier("native", module, factory(scales[0]))
        series = []
        for scale in scales:
            wl = factory(scale)
            row = {tier: run_tier(tier, module, wl) for tier in TIERS}
            for tier, r in row.items():
                assert r.status == 0, f"{name}@{scale} failed on {tier}"
            series.append((scale, row))
        results[name] = series
    return results


def test_fig8_virtualization(benchmark):
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    out = []

    # ---- Fig. 8a: peak memory ----
    out.append("Fig. 8a — peak memory (MB) at the largest scale")
    rows = []
    for name, series in results.items():
        _, row = series[-1]
        rows.append((name, *(f"{row[t].peak_mem_mb:.1f}" for t in TIERS)))
    out.append(table(["workload", *TIERS], rows))
    out.append("")

    # ---- Fig. 8b-d: runtime vs native ----
    for name, series in results.items():
        out.append(f"Fig. 8 runtime — {name} (times in ms; total = startup "
                   f"+ run)")
        rows = []
        for scale, row in series:
            native = row["native"]
            cells = [f"{scale}", f"{native.total_s * 1000:.1f}"]
            for tier in ("wali", "docker", "qemu"):
                r = row[tier]
                cells.append(f"{r.total_s * 1000:.1f} "
                             f"(s={r.startup_s * 1000:.0f})")
            rows.append(tuple(cells))
        out.append(table(
            ["scale", "native", "wali (startup)", "docker (startup)",
             "qemu (startup)"], rows))
        out.append("")

    # crossover analysis
    out.append("crossover: WALI total vs Docker total per scale")
    for name, series in results.items():
        marks = []
        for scale, row in series:
            winner = "WALI" if row["wali"].total_s < row["docker"].total_s \
                else "Docker"
            marks.append(f"{scale}:{winner}")
        out.append(f"  {name}: {' '.join(marks)}")
    out += [
        "",
        "paper Fig. 8: QEMU an order of magnitude slower than Docker; "
        "WALI ~2x native slope (ours is steeper: Python interpreter vs "
        "WAMR AoT) with millisecond startup vs Docker's ~0.5 s startup; "
        "Docker carries a ~30 MB base memory overhead.",
    ]
    save_report("fig8_virtualization.txt", "\n".join(out))

    # ---- shape assertions ----
    for name, series in results.items():
        _, big = series[-1]
        # memory: docker base dominates; wali & qemu lightweight
        assert big["docker"].peak_mem_mb > big["wali"].peak_mem_mb + 20
        assert abs(big["qemu"].peak_mem_mb - big["wali"].peak_mem_mb) < 10
        # runtime: qemu slowest; docker near native; wali in between
        assert big["qemu"].run_s > big["wali"].run_s > big["native"].run_s
        assert big["docker"].run_s < big["wali"].run_s
        # startup: wali millisecond-class, docker pays image assembly
        assert big["docker"].startup_s > 4 * big["wali"].startup_s
