"""Table 1 — porting effort of Wasm APIs for the application suite.

Compiles every application and derives the porting matrix from the linked
import sections: WALI hosts everything; WASIX hosts apps that avoid
mremap/users; plain WASI hosts only the pure-compute codebase (the zlib
analog).  Also validates the dynamic side: apps actually *run* on WALI, and
the WASI-over-WALI layer passes its conformance suite (the libuvwasi row).
"""

import subprocess
import sys

from common import save_report

from repro.apps import PAPER_ANALOG, build
from repro.wasi import build_matrix, render_matrix, required_syscalls
from repro.wali import WaliRuntime

APPS = ["mini_sh", "mini_lua", "mini_sqlite", "mini_memcached",
        "paho_bench", "mqtt_broker", "cat", "echo", "wc", "rle"]


def _compile_matrix():
    mods = {name: build(name) for name in APPS}
    return mods, build_matrix(mods, PAPER_ANALOG)


def test_table1_porting_matrix(benchmark):
    mods, rows = benchmark.pedantic(_compile_matrix, rounds=1, iterations=1)
    lines = [render_matrix(rows), ""]
    lines.append("required syscalls per app (from the import section):")
    for name, mod in sorted(mods.items()):
        req = sorted(required_syscalls(mod))
        lines.append(f"  {name:<16} ({len(req):2d}) {', '.join(req)}")
    lines.append("")
    lines.append("paper Table 1: WALI=all-yes; WASIX hosts bash/lua/"
                 "paho/zlib; WASI hosts only zlib.")
    save_report("table1_porting.txt", "\n".join(lines))

    by_app = {r.app: r for r in rows}
    # C1: WALI ports everything
    assert all(r.wali_ok for r in rows)
    # WASI ports only the zlib analog
    assert by_app["rle"].wasi_ok
    assert sum(1 for r in rows if r.wasi_ok) == 1
    # WASIX: bash & lua & paho yes; sqlite (mremap) and memcached (users) no
    assert by_app["mini_sh"].wasix_ok
    assert by_app["mini_lua"].wasix_ok
    assert by_app["paho_bench"].wasix_ok
    assert not by_app["mini_sqlite"].wasix_ok
    assert by_app["mini_sqlite"].wasix_missing == "mremap"
    assert not by_app["mini_memcached"].wasix_ok
    # missing-feature labels match the paper's rows
    assert by_app["mini_sh"].wasi_missing == "signals"
    assert by_app["mini_sqlite"].wasi_missing == "mremap"


def test_table1_apps_actually_run_on_wali(benchmark):
    """The ✓ column is dynamic too: every app executes faithfully."""
    from repro.apps.lua import fib_script

    def run_one():
        rt = WaliRuntime()
        rt.kernel.vfs.write_file("/tmp/f.lua", fib_script(25))
        return rt.run(build("mini_lua"), argv=["lua", "/tmp/f.lua"])

    status = benchmark.pedantic(run_one, rounds=3, iterations=1)
    assert status == 0
