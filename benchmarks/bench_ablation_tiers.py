"""Ablation — execution tiers and safepoint schemes (DESIGN.md choices).

Two engine-level design decisions the repository makes (mirroring the
paper's WAMR interp-vs-AoT split and §3.3's safepoint discussion):

1. **interpreter vs compiled tier**: the explicit-state interpreter is what
   makes fork/reentrancy possible (WALI's default); the compiled tier is
   several times faster but cannot fork (engine restriction, §3.6 item 5).
   This bench quantifies the gap on a compute kernel and on a syscall-heavy
   guest.
2. **zero-copy vs struct-copy syscall paths** (§3.2): compares a pure
   passthrough (write) against a layout-converting call (fstat) to show the
   ABI-conversion premium the paper mentions for the <10% struct calls.
"""

import time

from common import save_report

from repro.apps import build, with_libc
from repro.cc import compile_source
from repro.metrics import table
from repro.virt import lua_workload, run_tier
from repro.wali import WaliRuntime
from repro.wasm import instantiate
from repro.wasm.compile import compile_instance


def _compute_module():
    return compile_source(with_libc(r"""
export func run(n: i32) -> i32 {
    var acc: i32 = 0;
    var i: i32 = 0;
    while (i < n) {
        acc = (acc ^ (i * 2654435761)) + (acc >> 3);
        i = i + 1;
    }
    return acc;
}
export func _start() { exit(0); }
"""), name="ablate")


def test_ablation_interp_vs_compiled(benchmark):
    module = _compute_module()
    n = 60000

    inst_i = instantiate(module, _stub_imports(module), run_start=False)
    inst_c = instantiate(module, _stub_imports(module), run_start=False)
    ctx = compile_instance(inst_c)
    idx = inst_c.func_index_of("run")

    t0 = time.perf_counter()
    r_interp = inst_i.invoke("run", n)
    t_interp = time.perf_counter() - t0

    def compiled_run():
        return ctx.invoke(idx, (n,))

    r_compiled = benchmark(compiled_run)
    t_compiled_best = benchmark.stats.stats.min
    assert r_interp == r_compiled

    speedup = t_interp / t_compiled_best
    # tier comparison on a full workload (from the Fig. 8 harness)
    wl = lua_workload(300)
    app = build(wl.app)
    run_tier("native", app, wl)  # warm the AoT cache
    wali = run_tier("wali", app, wl)
    native = run_tier("native", app, wl)

    out = [
        "Ablation 1 — execution tier (compute kernel, n=60k):",
        f"  interpreter: {t_interp * 1000:8.2f} ms",
        f"  compiled:    {t_compiled_best * 1000:8.2f} ms "
        f"({speedup:.1f}x faster)",
        "",
        "Full workload (mini-lua, scale 300):",
        f"  WALI/interp tier: {wali.run_s * 1000:8.1f} ms (forkable, "
        "signal-reentrant)",
        f"  compiled tier:    {native.run_s * 1000:8.1f} ms (no fork — "
        "engine restriction, §3.6 item 5)",
        "",
        "The interpreter's explicit machine state buys fork and safepoint "
        "reentrancy at this cost.",
    ]
    save_report("ablation_tiers.txt", "\n".join(out))
    assert speedup > 1.5


def test_ablation_zero_copy_vs_struct_copy(benchmark):
    """§3.2: struct-layout calls pay an ABI-conversion premium."""
    rt = WaliRuntime()
    wp = rt.load(_compute_module(), argv=["ablate"])
    ns = wp.host.imports()["wali"]
    buf = 1 << 16
    fd = ns["SYS_openat"].fn(-100 & 0xFFFFFFFF,
                             _cstr(wp, buf + 4096, "/tmp/abl"), 0o102, 0o644)

    def passthrough():
        ns["SYS_write"].fn(fd, buf, 64)

    benchmark.pedantic(passthrough, rounds=50, iterations=20)
    rounds = 1000
    for _ in range(rounds):
        ns["SYS_write"].fn(fd, buf, 64)
        ns["SYS_fstat"].fn(fd, buf)
    host = wp.host
    write_ns = host.call_wali_ns["write"] / host.call_counts["write"]
    fstat_ns = host.call_wali_ns["fstat"] / host.call_counts["fstat"]
    out = [
        "Ablation 2 — translation path (WALI-layer ns/call):",
        f"  write (zero-copy view):       {write_ns:8.0f} ns",
        f"  fstat (kstat ABI conversion): {fstat_ns:8.0f} ns "
        f"({fstat_ns / max(write_ns, 1):.1f}x)",
        "",
        f"zero-copy translations so far: {host.zero_copy_calls}; "
        f"struct-copy calls: {host.struct_copy_calls}",
        "paper §3.2: <10% of calls take the copy path; its premium is why "
        "WALI keeps a dedicated portable layout for the few "
        "structured arguments.",
    ]
    save_report("ablation_translation.txt", "\n".join(out))
    assert fstat_ns > write_ns


def _stub_imports(module):
    out = {}
    for im in module.imports:
        if im.kind == "func":
            out.setdefault(im.module, {})[im.name] = lambda *a: 0
    return out


def _cstr(wp, addr, s):
    wp.instance.memory.write_cstr(addr, s.encode())
    return addr
