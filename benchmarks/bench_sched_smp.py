"""SMP scheduler scaling: per-CPU run queues from 1 to 8 CPUs.

Three experiments on the per-CPU scheduler (``kernel/sched.py``):

1. **Runnable-throughput scaling** — an embarrassingly parallel spinner
   load (8 always-runnable tasks) driven on a logical clock across
   1/2/4/8 CPUs.  Throughput is charged CPU time per logical second,
   i.e. utilized CPUs: with per-queue grant decisions it must scale
   near-linearly until tasks run out (the acceptance bar is >=3x at
   8 CPUs vs 1; the deterministic simulation delivers ~8x).
2. **Steal determinism** — a fixed block/wake churn pattern that forces
   idle-balance steals; two identical runs must produce bit-identical
   steal/migration counts and per-task CPU times (this is what lets the
   CI determinism job rerun the SMP suite 3x).
3. **Affinity ceiling** — the same 8-task load pinned to one CPU of
   four: throughput must collapse to ~1 CPU, proving placement and
   stealing both honor the mask (no cheating via idle slots).

A final wall-clock section runs real spinner threads through
``Kernel.call`` on 4 slots and reports the live migrate/steal counters
from the observability layer.

Quick mode (``REPRO_BENCH_QUICK=1``) shrinks iteration counts for CI.
"""

import time

from common import quick_mode, save_report

from repro.kernel import BackgroundSpinners, Kernel, Process, Scheduler
from repro.kernel.sched import SCHED_RUNNING

QUICK = quick_mode()

SLICE_US = 100
NTASKS = 8
CPU_POINTS = (1, 2, 4, 8)
SIM_ROUNDS = 100 if QUICK else 400
CHURN_ROUNDS = 60 if QUICK else 240
WALL_SECONDS = 0.15 if QUICK else 0.6


class LogicalClock:
    def __init__(self):
        self.ns = 0

    def __call__(self):
        return self.ns

    def advance_us(self, us):
        self.ns += int(us * 1000)


def _make(ncpus):
    clock = LogicalClock()
    sched = Scheduler(ncpus=ncpus, slice_us=SLICE_US, clock=clock)
    tasks = [Process(i + 1, 0) for i in range(NTASKS)]
    return sched, clock, tasks


def _settle(sched, tasks):
    """Charge every running task's open slice so cpu_time is exact."""
    for t in tasks:
        if t.se.state == SCHED_RUNNING:
            sched.check_preempt(t)


def _sim_throughput(ncpus, affinity=0):
    """Utilized CPUs under an always-runnable load on a logical clock."""
    sched, clock, tasks = _make(ncpus)
    for t in tasks:
        if affinity:
            t.se.affinity = affinity
        sched.task_attach(t)
    for _ in range(SIM_ROUNDS):
        clock.advance_us(SLICE_US)
        sched.tick()             # slice-expiry preemption + dispatch
        _settle(sched, tasks)    # rotate at the slice boundary
    _settle(sched, tasks)
    total_cpu = sum(t.se.cpu_time_ns for t in tasks)
    return total_cpu / clock.ns, sched


def _churn_run():
    """Deterministic block/wake churn that forces idle-balance steals.

    5 tasks on 2 CPUs: each round blocks one CPU's current task *and*
    its queued follower (emptying that queue while the other still has
    depth), forcing the freed slot to steal, then wakes both.
    """
    sched, clock, tasks = _make(2)
    for t in tasks[:5]:
        sched.task_attach(t)
    for r in range(CHURN_ROUNDS):
        clock.advance_us(SLICE_US)
        sched.tick()
        victim_cpu = r % 2
        ours = [t for t in tasks[:5]
                if t.se.cpu == victim_cpu and t.se.state != "blocked"]
        for t in ours:            # empty one CPU entirely
            sched.task_block(t)
        for t in ours:
            sched.task_wake(t)
    _settle(sched, tasks[:5])
    times = tuple(t.se.cpu_time_ns for t in tasks[:5])
    return sched.nr_steals, sched.nr_migrations, times


def _wall_clock_section(lines):
    kern = Kernel(sched="cpus=4,slice_us=50")
    # the window covers spawn-to-join: every ns of slot-hold time the
    # spinners accrue falls inside it, so utilization <= 4 is a hard
    # invariant (4 slots), not a statistical expectation
    t0 = time.monotonic_ns()
    spinners = BackgroundSpinners(kern, n=6).start()
    try:
        time.sleep(WALL_SECONDS)
    finally:
        spinners.stop()
    elapsed = time.monotonic_ns() - t0
    total = sum(spinners.cpu_times_ns())
    util = total / elapsed
    c = kern.trace.counters
    lines += [
        "",
        f"wall-clock: 6 spinner threads on 4 slots for {WALL_SECONDS}s",
        f"  slot utilization: {util:.2f} CPUs "
        f"(4 slots modeled; 1.0 = single-queue ceiling)",
        f"  switches={c.get('sched.switch')} "
        f"preemptions={c.get('sched.preempt')} "
        f"migrations={c.get('sched.migrate')} "
        f"steals={c.get('sched.steal')}",
    ]
    # 6 always-runnable spinners must keep >1 slot busy: the per-CPU
    # scheduler grants slots concurrently (slot-holding is the modeled
    # resource; the GIL only serializes the Python execution inside)
    assert util > 1.2, f"slots did not fill concurrently: {util:.2f}"
    assert util <= 4.05, f"more slot-time than 4 slots can hold: {util:.2f}"


def test_sched_smp_report():
    lines = [
        "SMP scheduler: per-CPU run queues, stealing, affinity",
        f"  load: {NTASKS} always-runnable tasks, slice={SLICE_US}us, "
        f"{SIM_ROUNDS} rounds (logical clock)",
        "",
        f"{'cpus':>5}  {'throughput':>11}  {'scaling':>8}  "
        f"{'steals':>7}  {'migrations':>11}",
    ]
    results = {}
    for n in CPU_POINTS:
        tp, sched = _sim_throughput(n)
        results[n] = tp
        lines.append(f"{n:>5}  {tp:>9.2f}x1  {tp / results[1]:>7.2f}x  "
                     f"{sched.nr_steals:>7}  {sched.nr_migrations:>11}")
    scaling = results[8] / results[1]
    lines += [
        "",
        f"8-cpu scaling vs 1 cpu: {scaling:.2f}x (acceptance: >=3x)",
    ]
    assert results[1] <= 1.01, f"1 cpu overcommitted: {results[1]}"
    assert scaling >= 3.0, f"throughput did not scale: {results}"

    # steal determinism: identical runs, identical decisions
    run1 = _churn_run()
    run2 = _churn_run()
    lines += [
        "",
        f"steal churn (5 tasks / 2 cpus, {CHURN_ROUNDS} rounds): "
        f"steals={run1[0]} migrations={run1[1]}",
        f"  rerun identical: {run1 == run2}",
    ]
    assert run1[0] > 0, "churn pattern produced no steals"
    assert run1 == run2, f"steal decisions nondeterministic: " \
        f"{run1[:2]} vs {run2[:2]}"

    # affinity ceiling: 8 tasks pinned to cpu 0 of 4 use exactly 1 CPU
    pinned, sched = _sim_throughput(4, affinity=0b0001)
    free = results[4]
    lines += [
        "",
        f"affinity ceiling (4 cpus): unpinned {free:.2f} CPUs, "
        f"all pinned to cpu0 {pinned:.2f} CPUs",
    ]
    assert pinned <= 1.01, f"pinned load leaked across CPUs: {pinned}"
    assert sched.nr_steals == 0, "stealing violated the affinity mask"

    _wall_clock_section(lines)
    save_report("sched_smp.txt", "\n".join(lines))


if __name__ == "__main__":
    test_sched_smp_report()
