"""Fig. 3 — similarity of Linux syscalls across ISAs.

Regenerates the per-ISA common-vs-arch-specific counts from the syscall
number tables.  The paper's claim: aarch64 and riscv64 are nearly identical
and largely a subset of x86-64, so a single name-bound union spec covers
all three with minimal arch-specific effort.
"""

from common import save_report

from repro.kernel import (
    ARCH_SYSCALLS, ARCHES, LEGACY_EQUIVALENTS, arch_specific,
    common_syscalls, isa_similarity_report, syscall_names,
)
from repro.metrics import bar, table
from repro.wali import coverage_report


def test_fig3_isa_similarity(benchmark):
    report = benchmark.pedantic(isa_similarity_report, rounds=5,
                                iterations=1)
    common = common_syscalls()
    rows = []
    maxtotal = max(r["total"] for r in report.values())
    lines = []
    for arch in ARCHES:
        r = report[arch]
        rows.append((arch, r["total"], r["common"], r["arch_specific"]))
        lines.append(f"{arch:<10} |{bar(r['common'], maxtotal, 40, '#')}"
                     f"{bar(r['arch_specific'], maxtotal, 40, '+')}| "
                     f"common={r['common']} arch-specific="
                     f"{r['arch_specific']}")
    cov = coverage_report()
    out = [
        "Syscall implementation similarity across ISAs "
        "(#=common, +=arch-specific)",
        "",
        *lines,
        "",
        table(["arch", "total", "common core", "arch-specific"], rows),
        "",
        f"common core size: {len(common)}",
        f"WALI union spec: {cov['spec_size']} syscalls; "
        f"{cov['in_union']} present in at least one ISA table",
        f"legacy x86-64-only calls emulatable via modern equivalents: "
        f"{len(LEGACY_EQUIVALENTS)} (e.g. access->faccessat, "
        f"stat->newfstatat)",
        "",
        "paper: arm64/riscv64 nearly identical, largely a subset of x86-64.",
    ]
    save_report("fig3_isa_similarity.txt", "\n".join(out))

    # shape assertions matching the paper
    aarch = syscall_names("aarch64")
    riscv = syscall_names("riscv64")
    x86 = syscall_names("x86_64")
    assert len(aarch ^ riscv) <= 2              # nearly identical
    assert len(aarch & x86) / len(aarch) > 0.9  # largely a subset of x86-64
    assert report["x86_64"]["arch_specific"] > \
        report["aarch64"]["arch_specific"]      # x86 keeps the legacy tail
    # every legacy call has a modern equivalent in the common core
    for legacy, modern in LEGACY_EQUIVALENTS.items():
        if modern in ARCH_SYSCALLS["x86_64"]:
            assert modern in common or modern in aarch
