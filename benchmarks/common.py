"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures and writes
its text rendering under ``benchmarks/results/`` (in addition to the
pytest-benchmark timing records), so the paper-vs-measured comparison in
EXPERIMENTS.md can be refreshed by re-running the suite.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def quick_mode() -> bool:
    """True when the CI smoke job asks for tiny-scale runs
    (``REPRO_BENCH_QUICK=1``/``true``/``yes``)."""
    return os.environ.get("REPRO_BENCH_QUICK", "").strip().lower() \
        in ("1", "true", "yes", "on")


def save_report(name: str, content: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    if quick_mode():
        # never clobber the committed full-scale reports with the CI
        # smoke job's tiny-scale numbers
        base, ext = os.path.splitext(name)
        name = f"{base}.quick{ext}"
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as fh:
        fh.write(content if content.endswith("\n") else content + "\n")
    print(f"\n=== {name} ===")
    print(content)
