"""Fig. 7 — runtime breakdown of WALI across the system stack.

For each application the harness splits wall time into wasm-app, kernel
and WALI-interface shares.  The paper's claims: the WALI layer itself is a
small sliver (<~2.5%); compute apps (lua, paho-bench) are app-dominated
while sqlite spends over half its time in the kernel.
"""

import time

from common import save_report

from repro.apps import build, install_all
from repro.apps.lua import arith_benchmark_script
from repro.apps.sqlite import workload_script
from repro.metrics import measure_breakdown, percent_row
from repro.wali import WaliRuntime


def _measure_all():
    results = []

    results.append(measure_breakdown(
        "lua", build("mini_lua"), argv=["lua", "/tmp/w.lua"],
        files={"/tmp/w.lua": arith_benchmark_script(1200)}))

    rt = WaliRuntime()
    install_all(rt, ["echo", "cat", "wc"])
    script = b"".join(b"echo breakdown %d > /tmp/o.txt\ncat /tmp/o.txt\n" % i
                      for i in range(15)) + b"exit 0\n"
    rt.kernel.vfs.write_file("/tmp/w.sh", script)
    results.append(measure_breakdown(
        "bash", build("mini_sh"), argv=["sh", "/tmp/w.sh"], runtime=rt))

    # sqlite with the storage device latency model on (the paper's
    # testbed has real disks; see DESIGN.md)
    rt = WaliRuntime()
    rt.kernel.storage_latency_ns_per_4k = 120_000
    results.append(measure_breakdown(
        "sqlite3", build("mini_sqlite"),
        argv=["sqlite", "/tmp/w.db", "/tmp/w.sql"],
        files={"/tmp/w.sql": workload_script(120, 240)}, runtime=rt))

    # paho-bench: client measured while the broker runs in the background
    rt = WaliRuntime()
    broker = rt.load(build("mqtt_broker"), argv=["broker", "1883"])
    broker.start_in_thread()
    for _ in range(300):
        if b"ready" in rt.kernel.console_output():
            break
        time.sleep(0.01)
    results.append(measure_breakdown(
        "paho-bench", build("paho_bench"),
        argv=["bench", "1883", "40", "512", "1"], runtime=rt))
    broker.join(5)

    # memcached: the client side drives the server threads
    rt = WaliRuntime()
    server = rt.load(build("mini_memcached"), argv=["memcached", "11211"])
    server.start_in_thread()
    for _ in range(300):
        if b"ready" in rt.kernel.console_output():
            break
        time.sleep(0.01)
    results.append(measure_breakdown(
        "memcached", build("memcached_client"),
        argv=["client", "11211", "80", "1"], runtime=rt))
    server.join(5)

    return results


def test_fig7_runtime_breakdown(benchmark):
    results = benchmark.pedantic(_measure_all, rounds=1, iterations=1)
    lines = ["Runtime breakdown across the system stack "
             "(█=wasm-app ▒=kernel ░=wali)", ""]
    for r in results:
        lines.append(percent_row(r.app, [
            ("app", r.app_pct), ("kernel", r.kernel_pct),
            ("wali", r.wali_pct)]))
    lines += [
        "",
        "paper Fig. 7: lua 97.5/2.4/0.1, bash 75.3/23.6/1.1, "
        "sqlite3 43.8/55.4/0.8, paho-bench 97.6/1.8/0.5, "
        "memcached 87.3/10.3/2.4 (%).",
    ]
    save_report("fig7_breakdown.txt", "\n".join(lines))

    by_app = {r.app: r for r in results}
    # WALI's share is always the smallest component
    for r in results:
        assert r.wali_pct < r.app_pct
        assert r.wali_pct < 15.0
    # compute apps are app-dominated; sqlite is kernel-heavy
    assert by_app["lua"].app_pct > 80.0
    assert by_app["sqlite3"].kernel_pct > by_app["lua"].kernel_pct
