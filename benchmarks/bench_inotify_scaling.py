"""inotify + signalfd benchmarks: delivery scaling, overflow, latency.

Three experiments behind the filesystem/signal readiness subsystem:

1. **events/s vs watch count** — one inotify instance watching N
   directories; every mutation publishes to exactly the watches on the
   touched inode (a per-inode mark list, like fsnotify), so per-event
   delivery cost stays flat as the instance's watch count grows —
   there is no per-event scan of the interest set.
2. **queue-overflow behavior** — a bounded queue drops events past the
   bound and queues a single ``IN_Q_OVERFLOW`` marker; draining
   restores flow.  (The hypothesis suite proves the bound invariant;
   this reports the rates.)
3. **signalfd vs sigvirt delivery latency under contention** — on a
   1-CPU, 50 us-slice scheduler with two spinner guests: signalfd
   wakes a *blocked* watcher through the waitqueue + run queue, while
   sigvirt delivers at the next interpreter safepoint the guest gets a
   slot to reach, so the fd path's latency is scheduling-bound and the
   safepoint path's is slice-bound.
"""

import statistics
import threading
import time

from common import quick_mode, save_report

from repro.kernel import (
    BackgroundSpinners, EPOLL_CTL_ADD, EPOLLIN, IN_CREATE, Kernel,
    KernelError, SIGUSR1, decode_events, sig_bit,
)
from repro.metrics import table

QUICK = quick_mode()
WATCH_COUNTS = (1, 32) if QUICK else (1, 64, 512)
EVENTS_PER_RUN = 400 if QUICK else 4000
OVERFLOW_BOUND = 64
OVERFLOW_EVENTS = 300 if QUICK else 1000
LATENCY_ROUNDS = 6 if QUICK else 20


# ----------------------------------------------------------------------
# 1. events/s vs watch count
# ----------------------------------------------------------------------

def _bench_watches(n: int):
    """us/event to publish+drain with n directory watches held."""
    kern = Kernel()
    proc = kern.create_process(["bench"])
    ifd = kern.call(proc, "inotify_init1", 0o4000)  # IN_NONBLOCK
    for i in range(n):
        kern.vfs.mkdirs(f"/w/d{i}")
        kern.call(proc, "inotify_add_watch", ifd, f"/w/d{i}", IN_CREATE)
    vfs = kern.vfs
    drained = 0
    t0 = time.perf_counter()
    for j in range(EVENTS_PER_RUN):
        vfs.write_file(f"/w/d{j % n}/f{j}", b"")
        if j % 64 == 63:  # drain in batches, like a real watcher
            drained += len(decode_events(kern.call(proc, "read", ifd,
                                                   65536)))
    try:
        drained += len(decode_events(kern.call(proc, "read", ifd, 65536)))
    except KernelError:
        pass
    dt = time.perf_counter() - t0
    assert drained == EVENTS_PER_RUN, (drained, EVENTS_PER_RUN)
    return dt / EVENTS_PER_RUN


# ----------------------------------------------------------------------
# 2. queue overflow
# ----------------------------------------------------------------------

def _bench_overflow():
    kern = Kernel()
    proc = kern.create_process(["bench"])
    kern.vfs.mkdirs("/ovf")
    ifd = kern.call(proc, "inotify_init1", 0o4000)
    kern.call(proc, "inotify_add_watch", ifd, "/ovf", IN_CREATE)
    ino = proc.fdtable.get(ifd).obj
    ino.max_queued = OVERFLOW_BOUND
    for i in range(OVERFLOW_EVENTS):
        kern.vfs.write_file(f"/ovf/f{i}", b"")
    queued = len(ino.queue)
    dropped = ino.dropped
    evs = decode_events(kern.call(proc, "read", ifd, 1 << 20))
    overflow_records = sum(1 for _, m, _, _ in evs if m & 0x4000)
    # after the drain, flow resumes
    kern.vfs.write_file("/ovf/after", b"")
    resumed = decode_events(kern.call(proc, "read", ifd, 4096))
    assert queued == OVERFLOW_BOUND + 1
    assert overflow_records == 1
    assert [n for _, _, _, n in resumed] == ["after"]
    return queued, dropped


# ----------------------------------------------------------------------
# 3. signalfd vs sigvirt latency under contention
# ----------------------------------------------------------------------

def _contended_kernel():
    kern = Kernel(sched="cpus=1,slice_us=50")
    spinners = BackgroundSpinners(kern, n=2).start()
    return kern, spinners


def _bench_signalfd_latency():
    """kill -> epoll_pwait wakeup -> siginfo read, watcher blocked."""
    kern, spinners = _contended_kernel()
    try:
        watcher = kern.create_process(["watcher"])
        watcher.blocked_mask = sig_bit(SIGUSR1)
        sfd = kern.call(watcher, "signalfd4", -1, sig_bit(SIGUSR1))
        ep = kern.call(watcher, "epoll_create1", 0)
        kern.call(watcher, "epoll_ctl", ep, EPOLL_CTL_ADD, sfd, EPOLLIN)
        sender = kern.create_process(["sender"])
        lat = []
        for _ in range(LATENCY_ROUNDS):
            woke = threading.Event()

            def wait_side():
                kern.call(watcher, "epoll_pwait", ep, 4,
                          timeout_ns=5_000_000_000)
                kern.call(watcher, "read", sfd, 128)
                woke.set()

            t = threading.Thread(target=wait_side)
            t.start()
            time.sleep(0.01)  # let the watcher block
            t0 = time.perf_counter()
            kern.call(sender, "kill", watcher.pid, SIGUSR1)
            woke.wait(5)
            lat.append(time.perf_counter() - t0)
            t.join()
        return lat
    finally:
        spinners.stop()


_SIGVIRT_GUEST = r"""
global got: i32 = 0;
func on_usr1(sig: i32) {
    got = got + 1;
    write(STDOUT, "X", 1);
}
export func _start() {
    __init_args();
    var want: i32 = atoi(argv(1));
    signal(SIGUSR1, funcref(on_usr1));
    write(STDOUT, "R", 1);
    var i: i32 = 0;
    while (got < want && i < 100000000) { i = i + 1; }
    exit(0);
}
"""


def _bench_sigvirt_latency():
    """kill -> guest safepoint poll -> handler marker, guest running."""
    from repro.apps import with_libc
    from repro.cc import compile_source
    from repro.wali import WaliRuntime

    kern, spinners = _contended_kernel()
    try:
        rt = WaliRuntime(kernel=kern)
        wp = rt.load(compile_source(with_libc(_SIGVIRT_GUEST), name="sv"),
                     argv=["sv", str(LATENCY_ROUNDS)])
        wp.start_in_thread()
        for _ in range(1000):
            if b"R" in kern.console_output():
                break
            time.sleep(0.005)
        sender = kern.create_process(["sender"])
        lat = []
        for i in range(LATENCY_ROUNDS):
            seen = kern.console_output().count(b"X")
            t0 = time.perf_counter()
            kern.call(sender, "kill", wp.proc.pid, SIGUSR1)
            deadline = t0 + 5
            while kern.console_output().count(b"X") <= seen and \
                    time.perf_counter() < deadline:
                time.sleep(0.0002)
            lat.append(time.perf_counter() - t0)
        wp.join(10)
        return lat
    finally:
        spinners.stop()


# ----------------------------------------------------------------------
# the benchmark entry point
# ----------------------------------------------------------------------

def test_inotify_scaling(benchmark):
    def sweep():
        per_watch = {n: _bench_watches(n) for n in WATCH_COUNTS}
        queued, dropped = _bench_overflow()
        sfd_lat = _bench_signalfd_latency()
        sv_lat = _bench_sigvirt_latency()
        return per_watch, (queued, dropped), sfd_lat, sv_lat

    per_watch, (queued, dropped), sfd_lat, sv_lat = \
        benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [(str(n), f"{dt * 1e6:8.2f}",
             f"{1.0 / dt:10.0f}")
            for n, dt in per_watch.items()]
    sfd_med = statistics.median(sfd_lat)
    sv_med = statistics.median(sv_lat)
    out = [
        table(["watches", "us/event", "events/s"], rows),
        "",
        f"overflow: bound={OVERFLOW_BOUND} burst={OVERFLOW_EVENTS} -> "
        f"queued={queued} (bound+1 marker) dropped={dropped}",
        "",
        f"signal delivery latency under cpus=1,slice_us=50 + 2 spinners "
        f"({LATENCY_ROUNDS} rounds):",
        f"  signalfd (blocked watcher, waitqueue wake): "
        f"median {sfd_med * 1e3:7.3f} ms  p_max {max(sfd_lat) * 1e3:7.3f} ms",
        f"  sigvirt  (running guest, safepoint poll):   "
        f"median {sv_med * 1e3:7.3f} ms  p_max {max(sv_lat) * 1e3:7.3f} ms",
        "",
        "per-event delivery cost is flat in the instance's watch count",
        "(per-inode mark lists, no interest-set scan); signalfd wakes a",
        "sleeping consumer through the run queue while sigvirt waits for",
        "the busy guest's next safepoint under CPU contention.",
    ]
    save_report("inotify_scaling.txt", "\n".join(out))

    # delivery cost must not scale with the watch count (allow noise)
    lo = per_watch[WATCH_COUNTS[0]]
    hi = per_watch[WATCH_COUNTS[-1]]
    assert hi < lo * 8, (lo, hi)
    # both delivery paths complete promptly even under contention
    assert sfd_med < 0.25, sfd_lat
    assert sv_med < 2.0, sv_lat
