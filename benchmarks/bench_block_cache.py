"""Block-layer benchmarks: page-cache effectiveness and fsync latency.

Three experiments behind the disk cost model and the page cache:

1. **cache hit vs miss** — read a multi-block file cold (every block
   faulted off a disk that charges seek + per-block transfer time
   through the scheduler) and again warm (every block resident).  The
   acceptance bound: warm reads are >= 10x faster than cold reads —
   the whole point of keeping a cache in front of a slow device.
2. **fsync latency distribution** — p50/p99 of fsync with a one-page
   backlog vs a writeback storm (a large dirty backlog the same fsync
   must flush first).  Tail latency scales with the backlog the
   durability point has to drain.
3. **foreground writeback throttle** — dirtying far past dirty_ratio
   forces the writer itself to flush (balance_dirty); reported as
   pages flushed in the writer's context.

Quick mode (``REPRO_BENCH_QUICK=1``) shrinks file sizes and round
counts for CI smoke and relaxes the cache bound — tiny runs sit closer
to constant boot overheads.
"""

import statistics
import time

from common import quick_mode, save_report

from repro.kernel import AT_FDCWD, Kernel, O_CREAT, O_RDONLY, O_WRONLY
from repro.metrics import table

QUICK = quick_mode()

FILE_BLOCKS = 32 if QUICK else 64         # benchmark file size (4 KiB pages)
READ_ROUNDS = 2 if QUICK else 4
FSYNC_ROUNDS = 25 if QUICK else 120
STORM_PAGES = 24 if QUICK else 48         # dirty backlog behind each fsync
MIN_SPEEDUP = 3.0 if QUICK else 10.0      # acceptance: warm >= 10x cold

# a consciously slow disk so the cost model dominates python overhead:
# 200us seek + 100us per 4 KiB block, charged to the caller via the
# scheduler (the process parks on the I/O waitqueue while it pays)
DISK = "block:seek_us=200,read_us=100,write_us=100,daemon=0"
# fast disk for the throttle experiment (we count pages, not seconds)
DISK_FAST = "block:seek_us=0,read_us=0,write_us=0,daemon=0"


def _pctl(samples, q):
    return statistics.quantiles(samples, n=100)[q - 1] \
        if len(samples) >= 2 else samples[0]


def _bench_cold_warm():
    """Wall seconds to read FILE_BLOCKS pages cold vs warm."""
    size = FILE_BLOCKS * 4096
    kern = Kernel(block=DISK)
    p = kern.create_process(["reader"])
    fd = kern.call(p, "openat", AT_FDCWD, "/data/big",
                   O_CREAT | O_WRONLY, 0o644)
    kern.call(p, "write", fd, b"b" * size)
    kern.call(p, "fsync", fd)
    kern.call(p, "close", fd)
    fd = kern.call(p, "openat", AT_FDCWD, "/data/big", O_RDONLY)

    cold, warm = [], []
    for _ in range(READ_ROUNDS):
        kern.blockdev.drop_caches()
        t0 = time.perf_counter()
        assert len(kern.call(p, "pread64", fd, size, 0)) == size
        cold.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        assert len(kern.call(p, "pread64", fd, size, 0)) == size
        warm.append(time.perf_counter() - t0)
    return min(cold), min(warm)


def _bench_fsync(storm_pages):
    """fsync wall-time samples with ``storm_pages`` extra dirty pages
    (in a second file) that the commit's flush does *not* drain, plus
    one dirty page in the fsync'd file itself — vs a storm where the
    backlog is in the fsync'd file and must be flushed first."""
    kern = Kernel(block=DISK)
    p = kern.create_process(["syncer"])
    fd = kern.call(p, "openat", AT_FDCWD, "/data/log",
                   O_CREAT | O_WRONLY, 0o644)
    samples = []
    for i in range(FSYNC_ROUNDS):
        if storm_pages:
            # re-dirty a large backlog the fsync must flush through
            # the same device queue before the commit point
            kern.call(p, "pwrite64", fd, bytes([i & 0xFF]) * 4096 *
                      storm_pages, 4096)
        kern.call(p, "pwrite64", fd, bytes([i & 0xFF]) * 4096, 0)
        t0 = time.perf_counter()
        kern.call(p, "fsync", fd)
        samples.append(time.perf_counter() - t0)
    return samples


def _bench_throttle():
    """Dirty 4x past dirty_ratio on a tiny ratio; the writer is
    throttled into flushing in its own context."""
    kern = Kernel(block=DISK_FAST + ",dirty_ratio=2,dirty_background_ratio=1",
                  trace="on")
    fs = kern.blockdev
    limit = fs._dirty_limit(fs.dirty_ratio)
    p = kern.create_process(["hog"])
    fd = kern.call(p, "openat", AT_FDCWD, "/data/hog",
                   O_CREAT | O_WRONLY, 0o644)
    kern.call(p, "write", fd, b"h" * (limit * 4 * 4096))
    return (limit, fs._ndirty,
            kern.trace.counters["block.foreground_writeback"],
            kern.trace.counters["block.writeback_pages"])


def test_block_cache(benchmark):
    def sweep():
        cold, warm = _bench_cold_warm()
        quiet = _bench_fsync(0)
        storm = _bench_fsync(STORM_PAGES)
        throttle = _bench_throttle()
        return cold, warm, quiet, storm, throttle

    cold, warm, quiet, storm, throttle = \
        benchmark.pedantic(sweep, rounds=1, iterations=1)
    limit, ndirty, fg, wb_pages = throttle

    speedup = cold / warm if warm > 0 else float("inf")
    rows = [
        ("cold (disk)", f"{cold * 1e3:8.3f}",
         f"{cold / FILE_BLOCKS * 1e6:8.1f}"),
        ("warm (cache)", f"{warm * 1e3:8.3f}",
         f"{warm / FILE_BLOCKS * 1e6:8.1f}"),
    ]
    frows = [
        ("quiet (1 page)", f"{_pctl(quiet, 50) * 1e3:7.3f}",
         f"{_pctl(quiet, 99) * 1e3:7.3f}"),
        (f"storm ({STORM_PAGES} pages)", f"{_pctl(storm, 50) * 1e3:7.3f}",
         f"{_pctl(storm, 99) * 1e3:7.3f}"),
    ]
    out = [
        f"file: {FILE_BLOCKS} x 4 KiB blocks on seek_us=200,"
        f"read_us=100,write_us=100",
        table(["read path", "ms/file", "us/block"], rows),
        f"cache speedup: {speedup:.1f}x (bound: >= {MIN_SPEEDUP:.0f}x)",
        "",
        f"fsync latency, {FSYNC_ROUNDS} rounds:",
        table(["scenario", "p50 ms", "p99 ms"], frows),
        "",
        f"foreground writeback: dirtied {limit * 4} pages against a "
        f"{limit}-page dirty_ratio limit ->",
        f"  throttle events: {fg}  pages flushed: {wb_pages}  "
        f"dirty after write: {ndirty} (<= limit)",
        "",
        "cold reads pay the simulated device (seek+transfer, charged",
        "through the scheduler while parked on the I/O waitqueue); warm",
        "reads never leave the page cache.  fsync tails scale with the",
        "dirty backlog the durability point must drain first.",
    ]
    save_report("block_cache.txt", "\n".join(out))

    assert speedup >= MIN_SPEEDUP, (cold, warm)
    assert _pctl(storm, 50) > _pctl(quiet, 50), "storm should cost more"
    assert fg >= 1 and ndirty <= limit
