"""The memcached echo workload across pluggable network backends.

The same guest binaries — mini-memcached plus its client, and the
event_echo epoll workload — run unmodified against three link models
selected with the kernel's ``--net`` knob:

* ``loopback``      — zero-latency in-process delivery (the default),
* ``wan-1ms``       — 1 ms one-way latency,
* ``wan-5ms-lossy`` — 5 ms latency, 1 ms jitter, 25% datagram loss.

Every client request is a blocking round trip, so throughput falls from
interpreter-bound (loopback) to network-bound (WAN) — the knee the
Fig. 8-style sweeps need a real link model to show.  Datagram delivery
is measured separately: stream traffic stays reliable under loss (TCP
semantics) while UDP silently drops.

Quick mode (``REPRO_BENCH_QUICK=1``) shrinks op counts for CI smoke.
"""

import time

from common import quick_mode, save_report

from repro.apps import build
from repro.kernel import AF_INET, Kernel, KernelError, O_NONBLOCK, SOCK_DGRAM
from repro.metrics import table
from repro.virt.tiers import run_tier
from repro.virt.workloads import echo_workload
from repro.wali import WaliRuntime

QUICK = quick_mode()

BACKENDS = [
    ("loopback", "loopback"),
    ("wan-1ms", "wan:latency_ms=1,seed=11"),
    ("wan-5ms-lossy", "wan:latency_ms=5,jitter_ms=1,loss=0.25,seed=11"),
]
# blocking round trips pay the link latency, so WAN points need fewer ops
MEMCACHED_OPS = {"loopback": 40 if QUICK else 120,
                 "wan-1ms": 25 if QUICK else 60,
                 "wan-5ms-lossy": 12 if QUICK else 30}
ECHO_SCALE = 2 if QUICK else 6
ECHO_CLIENTS = 4 if QUICK else 16
UDP_DGRAMS = 80 if QUICK else 200


def _memcached_ops_per_s(spec, nops):
    """Drive the unmodified memcached server+client guests; ops/s over
    the client's set+get phases (each op is one blocking round trip)."""
    kernel = Kernel(net_backend=spec) if spec is not None else Kernel()
    rt = WaliRuntime(kernel=kernel)
    server = rt.load(build("mini_memcached"), argv=["memcached", "11211"])
    server.start_in_thread()
    for _ in range(500):
        if b"ready" in rt.kernel.console_output():
            break
        time.sleep(0.01)
    client = rt.load(build("memcached_client"),
                     argv=["client", "11211", str(nops), "1"])
    t0 = time.perf_counter()
    status = client.run()
    elapsed = time.perf_counter() - t0
    server.join(5)
    assert status == 0, f"client failed on {spec!r}"
    assert b"client ok" in rt.kernel.console_output()
    ops = 2 * nops  # n sets + n gets
    return ops / elapsed, elapsed / ops * 1e3  # (ops/s, ms/op)


def _echo_run_s(spec):
    """The epoll echo workload through the virtualization harness."""
    workload = echo_workload(scale=ECHO_SCALE, nclients=ECHO_CLIENTS,
                             net=spec)
    module = build(workload.app)
    result = run_tier("wali", module, workload)
    assert result.status == 0, f"echo failed on {spec!r}"
    return result.run_s


def _udp_delivery_pct(spec, n):
    """Fraction of datagrams that survive the link."""
    kern = Kernel(net_backend=spec)
    proc = kern.create_process(["udp"])
    a = kern.call(proc, "socket", AF_INET, SOCK_DGRAM)
    b = kern.call(proc, "socket", AF_INET, SOCK_DGRAM)
    kern.call(proc, "bind", a, ("127.0.0.1", 5001))
    kern.call(proc, "bind", b, ("127.0.0.1", 5002))
    proc.fdtable.get(b).flags |= O_NONBLOCK
    for i in range(n):
        kern.call(proc, "sendto", a, b"dgram", ("127.0.0.1", 5002))
    time.sleep(0.15)  # let the slowest jittered delivery land
    got = 0
    while True:
        try:
            kern.call(proc, "recvfrom", b, 64)
        except KernelError:
            break
        got += 1
    return 100.0 * got / n


def test_net_backends(benchmark):
    def sweep():
        out = {}
        for label, spec in BACKENDS:
            mc_ops_s, mc_ms = _memcached_ops_per_s(spec,
                                                   MEMCACHED_OPS[label])
            out[label] = {
                "mc_ops_s": mc_ops_s,
                "mc_ms_per_op": mc_ms,
                "echo_run_s": _echo_run_s(spec),
                "udp_pct": _udp_delivery_pct(spec, UDP_DGRAMS),
            }
        # the knob's default must not cost anything: an untouched
        # Kernel() run is the "today" baseline for the loopback row
        ops_s_default, _ = _memcached_ops_per_s(
            None, MEMCACHED_OPS["loopback"])
        out["loopback"]["mc_ops_s_default"] = ops_s_default
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for label, r in results.items():
        rows.append((label, f"{r['mc_ops_s']:8.0f}",
                     f"{r['mc_ms_per_op']:7.2f}",
                     f"{r['echo_run_s'] * 1e3:8.1f}",
                     f"{r['udp_pct']:5.1f}%"))
    lo, wan5 = results["loopback"], results["wan-5ms-lossy"]
    out = [
        table(["backend", "mc ops/s", "ms/op", "echo ms", "udp delivered"],
              rows),
        "",
        f"loopback via --net knob: {lo['mc_ops_s']:.0f} ops/s vs "
        f"{lo['mc_ops_s_default']:.0f} ops/s default-constructed kernel",
        "",
        "the same memcached/echo guests, unmodified; only the --net spec",
        "changes.  WAN rows are network-bound (every request is a blocking",
        "round trip over the impaired link); loss only touches datagrams —",
        "the memcached stream traffic stays reliable.",
    ]
    save_report("net_backends.txt", "\n".join(out))

    # WAN latency must measurably shift throughput...
    assert wan5["mc_ops_s"] < lo["mc_ops_s"] * 0.8, results
    assert results["wan-1ms"]["mc_ops_s"] < lo["mc_ops_s"], results
    # ...while the loopback knob stays within noise of an untouched kernel
    ratio = lo["mc_ops_s"] / lo["mc_ops_s_default"]
    assert 0.25 < ratio < 4.0, results
    # loss hits datagrams only, and silently
    assert lo["udp_pct"] == 100.0, results
    assert 40.0 < wan5["udp_pct"] < 95.0, results
    assert results["wan-1ms"]["udp_pct"] == 100.0, results
