"""Table 3 — cost of asynchronous signal polling per safepoint scheme.

Runs each workload under the four safepoint-insertion schemes and reports
the slowdown relative to no polling.  The paper's claims: loop-header and
function-entry polling cost under ~10%; polling after *every* instruction
is prohibitive (an order of magnitude worse).
"""

import time

from common import save_report

from repro.apps import build, install_all
from repro.apps.lua import arith_benchmark_script
from repro.apps.sqlite import workload_script
from repro.metrics import table
from repro.wali import WaliRuntime
from repro.wasm import SAFEPOINT_SCHEMES

WORKLOADS = {
    "lua": dict(app="mini_lua", argv=["lua", "/tmp/w.lua"],
                files={"/tmp/w.lua": arith_benchmark_script(400)}),
    "bash": dict(app="mini_sh", argv=["sh", "/tmp/w.sh"],
                 files={"/tmp/w.sh": b"".join(
                     b"echo benchmark line %d\nstatus\n" % i
                     for i in range(40)) + b"exit 0\n"}),
    "sqlite3": dict(app="mini_sqlite",
                    argv=["sqlite", "/tmp/w.db", "/tmp/w.sql"],
                    files={"/tmp/w.sql": workload_script(25, 25)}),
    "wc": dict(app="wc", argv=["wc", "/tmp/w.txt"],
               files={"/tmp/w.txt": b"line\n" * 3000}),
}


def run_scheme(name: str, scheme: str) -> float:
    spec = WORKLOADS[name]
    rt = WaliRuntime(scheme=scheme)
    for path, data in spec["files"].items():
        rt.kernel.vfs.write_file(path, data)
    module = build(spec["app"])
    wp = rt.load(module, argv=spec["argv"])
    t0 = time.perf_counter()
    status = wp.run()
    assert status == 0, f"{name} failed under scheme {scheme}"
    return time.perf_counter() - t0


def test_table3_sigpoll_cost(benchmark):
    def sweep():
        results = {}
        for app in WORKLOADS:
            results[app] = {}
            for scheme in ("none", "loop", "func", "all"):
                results[app][scheme] = run_scheme(app, scheme)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for app, times in results.items():
        base = times["none"]
        rows.append((
            app,
            f"{100 * (times['loop'] / base - 1):6.1f} %",
            f"{100 * (times['func'] / base - 1):6.1f} %",
            f"{100 * (times['all'] / base - 1):6.1f} %",
        ))
    out = [
        table(["app", "loop", "func", "all"], rows),
        "",
        "slowdown vs no signal polling, per safepoint insertion scheme",
        "paper Table 3: loop/func typically <10%; 'all' is 17-187% "
        "(an order of magnitude worse than loop/func).",
    ]
    save_report("table3_sigpoll.txt", "\n".join(out))

    # the paper's ordering: 'all' is far worse than 'loop' and 'func'
    for app, times in results.items():
        assert times["all"] > times["loop"], app
        assert times["all"] > times["func"], app
    mean = lambda key: sum(t[key] for t in results.values()) / len(results)
    assert mean("all") / mean("none") > \
        2.0 * max(mean("loop"), mean("func")) / mean("none")
