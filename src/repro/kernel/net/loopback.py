"""Loopback backend: the in-process, zero-latency network (the default).

Port/address namespace plus connection establishment; delivery is
immediate — a ``send`` lands in the peer's receive buffer before the
syscall returns, exactly the semantics the repository has always had.
The three ``_deliver_*`` hooks are the seams :class:`~.wan.WanBackend`
overrides to interpose a delay line.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from ..errno import (
    EADDRINUSE, EAGAIN, ECONNREFUSED, EINVAL, EISCONN, ENOTCONN,
    EOPNOTSUPP, EPIPE, KernelError,
)
from ..eventpoll import EPOLLIN
from .base import (
    AF_INET, AF_UNIX, NetBackend, SO_REUSEADDR, SOCK_DGRAM, SOCK_STREAM,
    SOL_SOCKET, Socket,
)


class LoopbackBackend(NetBackend):
    """Port/address namespace with instantaneous in-process delivery."""

    name = "loopback"

    def __init__(self):
        super().__init__()
        self._bound: Dict[Tuple, Socket] = {}
        self.lock = threading.Lock()

    def socket(self, family: int, type_: int) -> Socket:
        if family not in (AF_UNIX, AF_INET):
            raise KernelError(EINVAL, f"family {family}")
        base_type = type_ & 0xFF
        if base_type not in (SOCK_STREAM, SOCK_DGRAM):
            raise KernelError(EINVAL, f"type {type_}")
        return Socket(self, family, base_type)

    def bind(self, sock: Socket, addr: Tuple) -> None:
        key = (sock.family, sock.type, addr)
        with self.lock:
            if key in self._bound and \
                    not sock.opts.get((SOL_SOCKET, SO_REUSEADDR)):
                existing = self._bound[key]
                if existing.state != Socket.ST_CLOSED:
                    raise KernelError(EADDRINUSE, str(addr))
            self._bound[key] = sock
        sock.addr = addr
        sock.state = Socket.ST_BOUND

    def listen(self, sock: Socket, backlog: int) -> None:
        if sock.addr is None:
            raise KernelError(EINVAL, "listen before bind")
        if sock.type != SOCK_STREAM:
            raise KernelError(EOPNOTSUPP)
        sock.backlog_limit = max(backlog, 1)
        sock.state = Socket.ST_LISTENING

    def connect(self, sock: Socket, addr: Tuple) -> None:
        if sock.state == Socket.ST_CONNECTED:
            raise KernelError(EISCONN)
        if sock.type == SOCK_DGRAM:
            sock.peer_addr = addr  # datagram "connect" just fixes the target
            return
        with self.lock:
            listener = self._bound.get((sock.family, sock.type, addr))
        if listener is None or listener.state != Socket.ST_LISTENING:
            raise KernelError(ECONNREFUSED, str(addr))
        server_side = Socket(self, sock.family, sock.type)
        server_side.peer = sock
        server_side.addr = addr
        server_side.peer_addr = sock.addr or ("", 0)
        server_side.state = Socket.ST_CONNECTED
        sock.peer = server_side
        sock.peer_addr = addr
        sock.state = Socket.ST_CONNECTED
        with listener.cond:
            if len(listener.backlog) >= listener.backlog_limit:
                sock.peer = None
                sock.state = Socket.ST_BOUND if sock.addr else Socket.ST_NEW
                raise KernelError(ECONNREFUSED, "backlog full")
            listener.backlog.append(server_side)
            listener.cond.notify_all()
        listener.wq.wake(EPOLLIN)

    def accept_step(self, listener: Socket) -> Socket:
        with listener.cond:
            if listener.backlog:
                return listener.backlog.pop(0)
            raise KernelError(EAGAIN, "no pending connections")

    def sendto(self, sock: Socket, data: bytes, addr: Optional[Tuple]) -> int:
        if sock.type != SOCK_DGRAM:
            if addr is not None and sock.state == Socket.ST_CONNECTED:
                return sock.send_step(data)
            raise KernelError(EOPNOTSUPP)
        target_addr = addr or sock.peer_addr
        if target_addr is None:
            raise KernelError(ENOTCONN)
        with self.lock:
            target = self._bound.get((sock.family, SOCK_DGRAM, target_addr))
        if target is None:
            raise KernelError(ECONNREFUSED, str(target_addr))
        self._deliver_dgram(sock, target, (sock.addr or ("", 0), bytes(data)))
        return len(data)

    def recvfrom_step(self, sock: Socket, length: int) -> Tuple[bytes, Tuple]:
        if sock.type != SOCK_DGRAM:
            return sock.recv_step(length), sock.peer_addr or ("", 0)
        with sock.cond:
            if sock.dgrams:
                src, data = sock.dgrams.pop(0)
                return data[:length], src
            raise KernelError(EAGAIN, "no datagrams")

    def socketpair(self, family: int, type_: int) -> Tuple[Socket, Socket]:
        a = self.socket(family, type_)
        b = self.socket(family, type_)
        a.peer = b
        b.peer = a
        a.state = b.state = Socket.ST_CONNECTED
        a.peer_addr = b.peer_addr = ("", 0)
        return a, b

    def unregister(self, sock: Socket) -> None:
        with self.lock:
            for key, s in list(self._bound.items()):
                if s is sock:
                    del self._bound[key]

    # ---- delivery policy (the seams a WAN interposes on) ----

    def stream_send(self, sock: Socket, data: bytes) -> int:
        peer = sock.peer
        if sock.state != Socket.ST_CONNECTED or peer is None:
            if sock.type == SOCK_DGRAM:
                raise KernelError(ENOTCONN)
            raise KernelError(EPIPE, "send on unconnected/reset socket")
        with peer.cond:
            if peer.state == Socket.ST_CLOSED:
                raise KernelError(EPIPE, "peer closed")
            space = peer.rx.space()
            if space <= 0:
                raise KernelError(EAGAIN, "peer buffer full")
            chunk = bytes(data[:space])
            self._deliver_stream(sock, peer, chunk)
            return len(chunk)

    def _deliver_stream(self, sender: Socket, peer: Socket,
                        chunk: bytes) -> None:
        """Make ``chunk`` readable at ``peer`` (called under ``peer.cond``)."""
        self._tap_record("data", sender, peer, chunk)
        n = peer.rx.write(chunk)  # pre-clamped to the window by the caller
        assert n == len(chunk), (n, len(chunk))
        peer.cond.notify_all()
        peer.wq.wake(EPOLLIN)

    def _deliver_dgram(self, sender: Socket, target: Socket,
                       payload: Tuple[Tuple, bytes]) -> None:
        self._tap_record("dgram", sender, target, payload[1])
        with target.cond:
            target.dgrams.append(payload)
            target.cond.notify_all()
        target.wq.wake(EPOLLIN)

    def deliver_eof(self, sender: Socket, peer: Socket, mask: int) -> None:
        self._tap_record("eof", sender, peer, b"")
        with peer.cond:
            peer.rx.set_eof()
            peer.cond.notify_all()
        peer.wq.wake(mask)
