"""Host backend: the guest's socket syscalls hit real host sockets.

Maps the :class:`~.base.NetBackend` API onto Python's :mod:`socket`
module, so a WALI guest can talk to processes *outside* the simulated
kernel (or to another kernel instance on the same host).  Readiness is
**epoll-native**: every live host socket is registered with a real
:mod:`selectors` selector (epoll on Linux) and a single poller thread
blocks in ``select`` — a host readiness edge wakes the corresponding
:class:`~..eventpoll.WaitQueue` immediately, with no fixed polling
cadence in the path (the old bridge re-scanned every 5 ms).

The registration follows the edge-triggered re-arm discipline: a fired
interest (``EPOLLIN``/``EPOLLOUT``) is disarmed when it wakes the
waitqueue, and re-armed when a consumer actually blocks — i.e. when a
``recv``/``send``/``accept`` step raises ``EAGAIN`` — so a socket that
stays readable or writable costs nothing while nobody is waiting on it.

**Opt-in only**: constructing this backend raises ``EPERM`` unless the
caller passes ``optin=1`` in the backend spec (``--net host:optin=1``)
or sets ``REPRO_NET_HOST=1`` in the environment.  CI and the test suite
stay hermetic by default; nothing in this repository reaches the real
network unless explicitly asked to.
"""

from __future__ import annotations

import os
import select as _select
import selectors as _selectors
import socket as _hostsocket
import threading
import time as _time
from collections import deque
from typing import Optional, Tuple

from ..errno import (
    EAGAIN, ECONNREFUSED, ECONNRESET, EINVAL, ENOTCONN, EOPNOTSUPP, EPERM,
    EPIPE, ETIMEDOUT, KernelError,
)
from ..eventpoll import (
    EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, WaitQueue,
)
from .base import AF_INET, NetBackend, SOCK_DGRAM, SOCK_STREAM

# selector safety-net timeout: correctness never depends on it (arming
# and teardown are wake-pipe driven), it only bounds a lost-wakeup stall
_SELECT_TIMEOUT_S = 1.0


def _map_oserror(exc: OSError, fallback: int) -> KernelError:
    return KernelError(exc.errno if exc.errno else fallback,
                       str(exc))


class _HostOpts(dict):
    """Socket-option store that forwards to the real socket.

    ``sys_setsockopt`` writes ``(level, optname) -> value`` into
    ``sock.opts``; on the host backend the option must actually reach
    the wire.  The numeric levels/options in :mod:`..net.base` are the
    Linux values, so they pass straight through; options the host
    rejects stay visible to ``getsockopt`` but are otherwise inert.
    """

    def __init__(self, hs: _hostsocket.socket):
        super().__init__()
        self._hs = hs

    def __setitem__(self, key, value):
        super().__setitem__(key, value)
        try:
            level, optname = key
            self._hs.setsockopt(level, optname, value)
        except (OSError, TypeError, ValueError):
            pass


class _ArmingWaitQueue(WaitQueue):
    """A waitqueue that arms the selector interest on subscribe.

    Consumers that wait for readiness *without* first taking an EAGAIN —
    ``epoll_ctl`` registration, ``ppoll``/``pselect6`` notifiers — attach
    here; subscribing arms both directions so the next host edge reaches
    them.  (I/O steps re-arm through ``want()`` on EAGAIN as usual.)
    """

    __slots__ = ("_sock",)

    def __init__(self, sock: "HostSocket"):
        super().__init__()
        self._sock = sock

    def subscribe(self, callback) -> None:
        super().subscribe(callback)
        sock = self._sock
        if sock.state != HostSocket.ST_CLOSED:
            sock.stack.want(sock, EPOLLIN | EPOLLOUT)


class HostSocket:
    """One real host socket behind the kernel's socket-object surface."""

    ST_NEW = "new"
    ST_BOUND = "bound"
    ST_LISTENING = "listening"
    ST_CONNECTED = "connected"
    ST_CLOSED = "closed"

    def __init__(self, backend: "HostBackend", family: int, type_: int,
                 hs: Optional[_hostsocket.socket] = None):
        self.stack = backend
        self.family = family
        self.type = type_
        self.state = self.ST_NEW
        self.addr: Optional[Tuple] = None
        self.peer_addr: Optional[Tuple] = None
        self.wq = _ArmingWaitQueue(self)
        if hs is None:
            kind = _hostsocket.SOCK_STREAM if type_ == SOCK_STREAM \
                else _hostsocket.SOCK_DGRAM
            hs = _hostsocket.socket(_hostsocket.AF_INET, kind)
            if type_ == SOCK_STREAM:
                # test servers rebind fast; mirror the common daemon setup
                hs.setsockopt(_hostsocket.SOL_SOCKET,
                              _hostsocket.SO_REUSEADDR, 1)
        self.hs = hs
        self.hs.setblocking(False)
        self.opts = _HostOpts(hs)
        backend._register(self)

    def fileno(self) -> int:
        return self.hs.fileno()

    @property
    def rbuf(self) -> bytes:
        return b""  # FIONREAD on host sockets reports 0 (kernel-side view)

    # ---- data path ----

    def recv_step(self, length: int) -> bytes:
        try:
            return self.hs.recv(length)
        except BlockingIOError:
            # ET re-arm: someone is about to block on readability
            self.stack.want(self, EPOLLIN)
            raise KernelError(EAGAIN, "host socket would block")
        except ConnectionResetError as exc:
            raise _map_oserror(exc, ECONNRESET)
        except OSError as exc:
            raise _map_oserror(exc, ENOTCONN)

    def send_step(self, data: bytes) -> int:
        try:
            return self.hs.send(bytes(data))
        except BlockingIOError:
            self.stack.want(self, EPOLLOUT)
            raise KernelError(EAGAIN, "host socket would block")
        except BrokenPipeError as exc:
            raise _map_oserror(exc, EPIPE)
        except OSError as exc:
            raise _map_oserror(exc, EPIPE)

    def poll_events(self) -> int:
        if self.state == self.ST_CLOSED:
            return EPOLLIN | EPOLLHUP
        try:
            r, w, x = _select.select([self.hs], [self.hs], [self.hs], 0)
        except (OSError, ValueError):
            return EPOLLERR | EPOLLHUP
        mask = 0
        if r:
            mask |= EPOLLIN
        if w and self.state != self.ST_LISTENING:
            mask |= EPOLLOUT
        if x:
            mask |= EPOLLERR
        # a prober that found a direction not-ready is waiting for its
        # next rising edge: re-arm that selector interest (epoll/ppoll
        # watchers never take the EAGAIN path that usually re-arms)
        missing = (EPOLLIN | EPOLLOUT) & ~mask
        if missing:
            self.stack.want(self, missing)
        return mask

    def poll(self) -> Tuple[bool, bool]:
        mask = self.poll_events()
        return bool(mask & EPOLLIN), bool(mask & EPOLLOUT)

    # ---- lifecycle ----

    def shutdown(self, how: int) -> None:
        try:
            self.hs.shutdown(how)  # SHUT_* values match the host's
        except OSError as exc:
            raise _map_oserror(exc, ENOTCONN)

    def close(self) -> None:
        if self.state == self.ST_CLOSED:
            return
        self.state = self.ST_CLOSED
        self.stack.unregister(self)
        try:
            self.hs.close()
        except OSError:
            pass
        self.wq.wake(EPOLLIN | EPOLLOUT | EPOLLHUP)


class HostBackend(NetBackend):
    """Real host sockets behind the backend API (opt-in)."""

    name = "host"

    def __init__(self, opt_in: bool = False, bind_host: str = "127.0.0.1"):
        if not opt_in and not os.environ.get("REPRO_NET_HOST"):
            raise KernelError(
                EPERM, "host net backend is opt-in: pass --net host:optin=1 "
                       "or set REPRO_NET_HOST=1")
        super().__init__()
        self.bind_host = bind_host
        self._lock = threading.Lock()
        self._poller: Optional[threading.Thread] = None
        # interest changes posted to the poller: ("arm", sock, mask) /
        # ("drop", sock, 0); the wake pipe interrupts a blocked select
        self._ops: deque = deque()
        self._wake_w: Optional[int] = None

    # -- selector plumbing: host readiness straight into waitqueues --

    def _post(self, op: str, sock: HostSocket, mask: int) -> None:
        with self._lock:
            self._ops.append((op, sock, mask))
            if self._poller is None:
                wake_r, wake_w = os.pipe()
                os.set_blocking(wake_w, False)
                self._wake_w = wake_w
                self._poller = threading.Thread(
                    target=self._poll_loop, args=(wake_r, wake_w),
                    daemon=True, name="host-net-selector")
                self._poller.start()
                return
            # write while still holding the lock: retirement nulls and
            # closes the pipe under this same lock, so the fd can never
            # be closed (and its number recycled) out from under us
            if self._wake_w is not None:
                try:
                    os.write(self._wake_w, b"\x00")
                except (OSError, BlockingIOError):
                    pass  # pipe full: a wake is already pending

    def _register(self, sock: HostSocket) -> None:
        # fresh sockets arm both directions; fired interests re-arm via
        # want() when a consumer's I/O step hits EAGAIN
        self._post("arm", sock, EPOLLIN | EPOLLOUT)

    def unregister(self, sock) -> None:
        self._post("drop", sock, 0)

    def want(self, sock: HostSocket, mask: int) -> None:
        """Re-arm an interest: a consumer is about to block on ``mask``."""
        self._post("arm", sock, mask)

    @staticmethod
    def _set_interest(sel, interest, sock, mask, forget=False) -> None:
        """Update one socket's armed mask.  A disarmed socket (mask 0)
        stays in ``interest`` — it is still *known*, so the poller keeps
        running for it — until an explicit drop (``forget``) removes it;
        retiring on mere disarm would churn a thread + pipe per blocking
        cycle of steady request/response traffic."""
        was_registered = interest.get(sock, 0) != 0
        events = 0
        if mask & EPOLLIN:
            events |= _selectors.EVENT_READ
        if mask & EPOLLOUT and sock.state != HostSocket.ST_LISTENING:
            events |= _selectors.EVENT_WRITE
        try:
            if was_registered:
                if events:
                    sel.modify(sock, events, data=sock)
                else:
                    sel.unregister(sock)
            elif events:
                sel.register(sock, events, data=sock)
            if forget:
                interest.pop(sock, None)
            else:
                interest[sock] = mask if events else 0
        except (OSError, ValueError, KeyError):
            interest.pop(sock, None)

    def _poll_loop(self, wake_r: int, wake_w: int) -> None:
        sel = _selectors.DefaultSelector()
        sel.register(wake_r, _selectors.EVENT_READ, data=None)
        interest = {}  # sock -> armed EPOLL* mask
        try:
            while True:
                while True:
                    with self._lock:
                        if not self._ops:
                            break
                        op, sock, mask = self._ops.popleft()
                    if op == "drop" or sock.state == HostSocket.ST_CLOSED:
                        self._set_interest(sel, interest, sock, 0,
                                           forget=True)
                    else:
                        self._set_interest(sel, interest, sock,
                                           interest.get(sock, 0) | mask)
                with self._lock:
                    if not interest and not self._ops:
                        # last socket gone: retire; the next register
                        # starts a fresh poller (and a fresh pipe).  The
                        # pipe closes under the lock so no _post writer
                        # can race the close with a recycled fd number.
                        self._poller = None
                        self._wake_w = None
                        for fd in (wake_r, wake_w):
                            try:
                                os.close(fd)
                            except OSError:
                                pass
                        wake_r = wake_w = -1
                        return
                try:
                    events = sel.select(timeout=_SELECT_TIMEOUT_S)
                except (OSError, ValueError):
                    _time.sleep(0.001)
                    continue
                for key, ev in events:
                    if key.data is None:  # wake pipe: drain and re-loop
                        try:
                            os.read(wake_r, 4096)
                        except OSError:
                            pass
                        continue
                    sock = key.data
                    fired = 0
                    if ev & _selectors.EVENT_READ:
                        fired |= EPOLLIN
                    if ev & _selectors.EVENT_WRITE:
                        fired |= EPOLLOUT
                    # ET discipline: disarm what fired (consumers re-arm
                    # through want() when they block again), then wake
                    self._set_interest(sel, interest, sock,
                                       interest.get(sock, 0) & ~fired)
                    sock.wq.wake(fired)
        finally:
            try:
                sel.close()
            except OSError:
                pass
            # exceptional exit only (normal retirement already closed
            # the pipe under the lock and set both fds to -1)
            with self._lock:
                if self._poller is threading.current_thread():
                    self._poller = None  # let a future register respawn
                for fd in (wake_r, wake_w):
                    if fd >= 0:
                        if self._wake_w == fd:
                            self._wake_w = None
                        try:
                            os.close(fd)
                        except OSError:
                            pass

    # -- namespace / lifecycle --

    def socket(self, family: int, type_: int) -> HostSocket:
        if family != AF_INET:
            raise KernelError(EINVAL,
                              f"host backend supports AF_INET only "
                              f"(family {family})")
        base_type = type_ & 0xFF
        if base_type not in (SOCK_STREAM, SOCK_DGRAM):
            raise KernelError(EINVAL, f"type {type_}")
        return HostSocket(self, family, base_type)

    def bind(self, sock: HostSocket, addr: Tuple) -> None:
        host, port = addr[0] or self.bind_host, addr[1]
        try:
            sock.hs.bind((host, port))
        except OSError as exc:
            raise _map_oserror(exc, EINVAL)
        sock.addr = sock.hs.getsockname()
        sock.state = HostSocket.ST_BOUND

    def listen(self, sock: HostSocket, backlog: int) -> None:
        if sock.type != SOCK_STREAM:
            raise KernelError(EOPNOTSUPP)
        try:
            sock.hs.listen(max(backlog, 1))
        except OSError as exc:
            raise _map_oserror(exc, EINVAL)
        sock.state = HostSocket.ST_LISTENING

    def connect(self, sock: HostSocket, addr: Tuple) -> None:
        if sock.type == SOCK_DGRAM:
            sock.peer_addr = tuple(addr)
            return
        try:
            # a short blocking connect keeps sys_connect's synchronous
            # contract (the simulated backends connect instantly too)
            sock.hs.setblocking(True)
            sock.hs.settimeout(5.0)
            sock.hs.connect(tuple(addr))
        except _hostsocket.timeout as exc:
            raise _map_oserror(exc, ETIMEDOUT)
        except ConnectionRefusedError as exc:
            raise _map_oserror(exc, ECONNREFUSED)
        except OSError as exc:
            raise _map_oserror(exc, ECONNREFUSED)
        finally:
            sock.hs.setblocking(False)
        sock.peer_addr = sock.hs.getpeername()
        sock.addr = sock.hs.getsockname()
        sock.state = HostSocket.ST_CONNECTED

    def accept_step(self, listener: HostSocket) -> HostSocket:
        try:
            conn, peer = listener.hs.accept()
        except BlockingIOError:
            self.want(listener, EPOLLIN)
            raise KernelError(EAGAIN, "no pending connections")
        except OSError as exc:
            raise _map_oserror(exc, EINVAL)
        out = HostSocket(self, listener.family, SOCK_STREAM, hs=conn)
        out.state = HostSocket.ST_CONNECTED
        out.addr = conn.getsockname()
        out.peer_addr = peer
        return out

    def socketpair(self, family: int, type_: int):
        kind = _hostsocket.SOCK_STREAM if (type_ & 0xFF) == SOCK_STREAM \
            else _hostsocket.SOCK_DGRAM
        ha, hb = _hostsocket.socketpair(type=kind)
        out = []
        for hs in (ha, hb):
            s = HostSocket(self, family, type_ & 0xFF, hs=hs)
            s.state = HostSocket.ST_CONNECTED
            s.peer_addr = ("", 0)
            out.append(s)
        return out[0], out[1]

    # -- data plane --

    def sendto(self, sock: HostSocket, data: bytes,
               addr: Optional[Tuple]) -> int:
        if sock.type != SOCK_DGRAM:
            if addr is not None and sock.state == HostSocket.ST_CONNECTED:
                return sock.send_step(data)
            raise KernelError(EOPNOTSUPP)
        target = addr or sock.peer_addr
        if target is None:
            raise KernelError(ENOTCONN)
        try:
            return sock.hs.sendto(bytes(data), tuple(target))
        except BlockingIOError:
            self.want(sock, EPOLLOUT)
            raise KernelError(EAGAIN, "host socket would block")
        except OSError as exc:
            raise _map_oserror(exc, ECONNREFUSED)

    def recvfrom_step(self, sock: HostSocket,
                      length: int) -> Tuple[bytes, Tuple]:
        if sock.type != SOCK_DGRAM:
            return sock.recv_step(length), sock.peer_addr or ("", 0)
        try:
            data, src = sock.hs.recvfrom(length)
            return data, src
        except BlockingIOError:
            self.want(sock, EPOLLIN)
            raise KernelError(EAGAIN, "no datagrams")
        except OSError as exc:
            raise _map_oserror(exc, ENOTCONN)

    def stream_send(self, sock: HostSocket, data: bytes) -> int:
        return sock.send_step(data)

    def deliver_eof(self, sender, peer, mask: int) -> None:
        pass  # the host kernel propagates FIN/HUP itself

    def describe(self) -> str:
        return f"host:bind={self.bind_host}"
