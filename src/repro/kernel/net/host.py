"""Host backend: the guest's socket syscalls hit real host sockets.

Maps the :class:`~.base.NetBackend` API onto Python's :mod:`socket`
module, so a WALI guest can talk to processes *outside* the simulated
kernel (or to another kernel instance on the same host).  Readiness is
bridged by a small poller thread that watches every live host socket and
publishes newly-risen ``EPOLLIN``/``EPOLLOUT`` edges into the usual
:class:`~..eventpoll.WaitQueue` machinery, so blocking syscalls and
epoll keep working unchanged.

**Opt-in only**: constructing this backend raises ``EPERM`` unless the
caller passes ``optin=1`` in the backend spec (``--net host:optin=1``)
or sets ``REPRO_NET_HOST=1`` in the environment.  CI and the test suite
stay hermetic by default; nothing in this repository reaches the real
network unless explicitly asked to.
"""

from __future__ import annotations

import os
import select as _select
import socket as _hostsocket
import threading
import time as _time
from typing import Optional, Tuple

from ..errno import (
    EAGAIN, ECONNREFUSED, ECONNRESET, EINVAL, ENOTCONN, EOPNOTSUPP, EPERM,
    EPIPE, ETIMEDOUT, KernelError,
)
from ..eventpoll import (
    EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, WaitQueue,
)
from .base import AF_INET, NetBackend, SOCK_DGRAM, SOCK_STREAM

_POLL_SLICE_S = 0.005  # host-readiness poll cadence


def _map_oserror(exc: OSError, fallback: int) -> KernelError:
    return KernelError(exc.errno if exc.errno else fallback,
                       str(exc))


class _HostOpts(dict):
    """Socket-option store that forwards to the real socket.

    ``sys_setsockopt`` writes ``(level, optname) -> value`` into
    ``sock.opts``; on the host backend the option must actually reach
    the wire.  The numeric levels/options in :mod:`..net.base` are the
    Linux values, so they pass straight through; options the host
    rejects stay visible to ``getsockopt`` but are otherwise inert.
    """

    def __init__(self, hs: _hostsocket.socket):
        super().__init__()
        self._hs = hs

    def __setitem__(self, key, value):
        super().__setitem__(key, value)
        try:
            level, optname = key
            self._hs.setsockopt(level, optname, value)
        except (OSError, TypeError, ValueError):
            pass


class HostSocket:
    """One real host socket behind the kernel's socket-object surface."""

    ST_NEW = "new"
    ST_BOUND = "bound"
    ST_LISTENING = "listening"
    ST_CONNECTED = "connected"
    ST_CLOSED = "closed"

    def __init__(self, backend: "HostBackend", family: int, type_: int,
                 hs: Optional[_hostsocket.socket] = None):
        self.stack = backend
        self.family = family
        self.type = type_
        self.state = self.ST_NEW
        self.addr: Optional[Tuple] = None
        self.peer_addr: Optional[Tuple] = None
        self.wq = WaitQueue()
        self._last_mask = 0  # poller-edge tracking
        if hs is None:
            kind = _hostsocket.SOCK_STREAM if type_ == SOCK_STREAM \
                else _hostsocket.SOCK_DGRAM
            hs = _hostsocket.socket(_hostsocket.AF_INET, kind)
            if type_ == SOCK_STREAM:
                # test servers rebind fast; mirror the common daemon setup
                hs.setsockopt(_hostsocket.SOL_SOCKET,
                              _hostsocket.SO_REUSEADDR, 1)
        self.hs = hs
        self.hs.setblocking(False)
        self.opts = _HostOpts(hs)
        backend._register(self)

    def fileno(self) -> int:
        return self.hs.fileno()

    @property
    def rbuf(self) -> bytes:
        return b""  # FIONREAD on host sockets reports 0 (kernel-side view)

    # ---- data path ----

    def recv_step(self, length: int) -> bytes:
        try:
            return self.hs.recv(length)
        except BlockingIOError:
            raise KernelError(EAGAIN, "host socket would block")
        except ConnectionResetError as exc:
            raise _map_oserror(exc, ECONNRESET)
        except OSError as exc:
            raise _map_oserror(exc, ENOTCONN)

    def send_step(self, data: bytes) -> int:
        try:
            return self.hs.send(bytes(data))
        except BlockingIOError:
            raise KernelError(EAGAIN, "host socket would block")
        except BrokenPipeError as exc:
            raise _map_oserror(exc, EPIPE)
        except OSError as exc:
            raise _map_oserror(exc, EPIPE)

    def poll_events(self) -> int:
        if self.state == self.ST_CLOSED:
            return EPOLLIN | EPOLLHUP
        try:
            r, w, x = _select.select([self.hs], [self.hs], [self.hs], 0)
        except (OSError, ValueError):
            return EPOLLERR | EPOLLHUP
        mask = 0
        if r:
            mask |= EPOLLIN
        if w and self.state != self.ST_LISTENING:
            mask |= EPOLLOUT
        if x:
            mask |= EPOLLERR
        return mask

    def poll(self) -> Tuple[bool, bool]:
        mask = self.poll_events()
        return bool(mask & EPOLLIN), bool(mask & EPOLLOUT)

    # ---- lifecycle ----

    def shutdown(self, how: int) -> None:
        try:
            self.hs.shutdown(how)  # SHUT_* values match the host's
        except OSError as exc:
            raise _map_oserror(exc, ENOTCONN)

    def close(self) -> None:
        if self.state == self.ST_CLOSED:
            return
        self.state = self.ST_CLOSED
        self.stack.unregister(self)
        try:
            self.hs.close()
        except OSError:
            pass
        self.wq.wake(EPOLLIN | EPOLLOUT | EPOLLHUP)


class HostBackend(NetBackend):
    """Real host sockets behind the backend API (opt-in)."""

    name = "host"

    def __init__(self, opt_in: bool = False, bind_host: str = "127.0.0.1"):
        if not opt_in and not os.environ.get("REPRO_NET_HOST"):
            raise KernelError(
                EPERM, "host net backend is opt-in: pass --net host:optin=1 "
                       "or set REPRO_NET_HOST=1")
        super().__init__()
        self.bind_host = bind_host
        self._sockets: set = set()
        self._lock = threading.Lock()
        self._poller: Optional[threading.Thread] = None

    # -- poller plumbing: bridge host readiness into waitqueues --

    def _register(self, sock: HostSocket) -> None:
        with self._lock:
            self._sockets.add(sock)
            if self._poller is None:
                self._poller = threading.Thread(
                    target=self._poll_loop, daemon=True,
                    name="host-net-poller")
                self._poller.start()

    def unregister(self, sock) -> None:
        with self._lock:
            self._sockets.discard(sock)

    def _poll_loop(self) -> None:
        while True:
            with self._lock:
                socks = list(self._sockets)
                if not socks:
                    # last socket closed: retire; the next register
                    # starts a fresh poller
                    self._poller = None
                    return
            live = [s for s in socks if s.state != HostSocket.ST_CLOSED]
            try:
                # one select over every registered fd per slice
                r, w, x = _select.select(live, live, live, 0)
            except (OSError, ValueError):
                _time.sleep(_POLL_SLICE_S)
                continue
            r, w, x = set(r), set(w), set(x)
            for sock in live:
                mask = 0
                if sock in r:
                    mask |= EPOLLIN
                if sock in w and sock.state != HostSocket.ST_LISTENING:
                    mask |= EPOLLOUT
                if sock in x:
                    mask |= EPOLLERR
                risen = mask & ~sock._last_mask
                sock._last_mask = mask
                if risen:
                    sock.wq.wake(risen)
            _time.sleep(_POLL_SLICE_S)

    # -- namespace / lifecycle --

    def socket(self, family: int, type_: int) -> HostSocket:
        if family != AF_INET:
            raise KernelError(EINVAL,
                              f"host backend supports AF_INET only "
                              f"(family {family})")
        base_type = type_ & 0xFF
        if base_type not in (SOCK_STREAM, SOCK_DGRAM):
            raise KernelError(EINVAL, f"type {type_}")
        return HostSocket(self, family, base_type)

    def bind(self, sock: HostSocket, addr: Tuple) -> None:
        host, port = addr[0] or self.bind_host, addr[1]
        try:
            sock.hs.bind((host, port))
        except OSError as exc:
            raise _map_oserror(exc, EINVAL)
        sock.addr = sock.hs.getsockname()
        sock.state = HostSocket.ST_BOUND

    def listen(self, sock: HostSocket, backlog: int) -> None:
        if sock.type != SOCK_STREAM:
            raise KernelError(EOPNOTSUPP)
        try:
            sock.hs.listen(max(backlog, 1))
        except OSError as exc:
            raise _map_oserror(exc, EINVAL)
        sock.state = HostSocket.ST_LISTENING

    def connect(self, sock: HostSocket, addr: Tuple) -> None:
        if sock.type == SOCK_DGRAM:
            sock.peer_addr = tuple(addr)
            return
        try:
            # a short blocking connect keeps sys_connect's synchronous
            # contract (the simulated backends connect instantly too)
            sock.hs.setblocking(True)
            sock.hs.settimeout(5.0)
            sock.hs.connect(tuple(addr))
        except _hostsocket.timeout as exc:
            raise _map_oserror(exc, ETIMEDOUT)
        except ConnectionRefusedError as exc:
            raise _map_oserror(exc, ECONNREFUSED)
        except OSError as exc:
            raise _map_oserror(exc, ECONNREFUSED)
        finally:
            sock.hs.setblocking(False)
        sock.peer_addr = sock.hs.getpeername()
        sock.addr = sock.hs.getsockname()
        sock.state = HostSocket.ST_CONNECTED

    def accept_step(self, listener: HostSocket) -> HostSocket:
        try:
            conn, peer = listener.hs.accept()
        except BlockingIOError:
            raise KernelError(EAGAIN, "no pending connections")
        except OSError as exc:
            raise _map_oserror(exc, EINVAL)
        out = HostSocket(self, listener.family, SOCK_STREAM, hs=conn)
        out.state = HostSocket.ST_CONNECTED
        out.addr = conn.getsockname()
        out.peer_addr = peer
        return out

    def socketpair(self, family: int, type_: int):
        kind = _hostsocket.SOCK_STREAM if (type_ & 0xFF) == SOCK_STREAM \
            else _hostsocket.SOCK_DGRAM
        ha, hb = _hostsocket.socketpair(type=kind)
        out = []
        for hs in (ha, hb):
            s = HostSocket(self, family, type_ & 0xFF, hs=hs)
            s.state = HostSocket.ST_CONNECTED
            s.peer_addr = ("", 0)
            out.append(s)
        return out[0], out[1]

    # -- data plane --

    def sendto(self, sock: HostSocket, data: bytes,
               addr: Optional[Tuple]) -> int:
        if sock.type != SOCK_DGRAM:
            if addr is not None and sock.state == HostSocket.ST_CONNECTED:
                return sock.send_step(data)
            raise KernelError(EOPNOTSUPP)
        target = addr or sock.peer_addr
        if target is None:
            raise KernelError(ENOTCONN)
        try:
            return sock.hs.sendto(bytes(data), tuple(target))
        except BlockingIOError:
            raise KernelError(EAGAIN, "host socket would block")
        except OSError as exc:
            raise _map_oserror(exc, ECONNREFUSED)

    def recvfrom_step(self, sock: HostSocket,
                      length: int) -> Tuple[bytes, Tuple]:
        if sock.type != SOCK_DGRAM:
            return sock.recv_step(length), sock.peer_addr or ("", 0)
        try:
            data, src = sock.hs.recvfrom(length)
            return data, src
        except BlockingIOError:
            raise KernelError(EAGAIN, "no datagrams")
        except OSError as exc:
            raise _map_oserror(exc, ENOTCONN)

    def stream_send(self, sock: HostSocket, data: bytes) -> int:
        return sock.send_step(data)

    def deliver_eof(self, sender, peer, mask: int) -> None:
        pass  # the host kernel propagates FIN/HUP itself

    def describe(self) -> str:
        return f"host:bind={self.bind_host}"
