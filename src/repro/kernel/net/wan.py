"""Simulated-WAN backend: loopback semantics behind an impaired link.

Every payload (stream chunk, datagram, EOF marker) crosses a delay line
before it becomes readable at the peer:

* **latency** — fixed one-way propagation delay; stream ``connect`` also
  charges one SYN/SYN-ACK round trip, so connection-heavy workloads are
  network-bound at startup too,
* **jitter** — uniform random extra delay per payload (seeded, so runs
  are reproducible),
* **bandwidth** — a serialization clock per sender: back-to-back sends
  queue behind each other like packets on a link,
* **loss** — probabilistic *datagram* drops (streams stay reliable, like
  TCP over a lossy path; the datagram simply never arrives and no error
  is reported to either side),
* **reorder** — netem-style early delivery: a reordered datagram skips
  the delay line and jumps ahead of packets still queued on the link
  (streams keep strict FIFO, like TCP reassembly),
* **dup** — netem-style duplication: a duplicated datagram arrives
  twice, the copy right behind the original (datagrams only).

Impairment randomness is **per-flow deterministic**: every sending
socket draws from its own :class:`random.Random` stream, seeded from
``(backend seed, the socket's bound address)``.  Concurrent senders on
different threads therefore cannot perturb each other's loss/jitter/
reorder decisions — a run's impairment pattern is bit-reproducible no
matter how the scheduler interleaves the sending tasks (a single shared
RNG made the draw *order*, and hence every outcome, timing-dependent).

Delivery rides the same machinery :class:`~..eventpoll.TimerFD` uses —
a daemon :class:`threading.Timer` that, on expiry, moves due payloads
into the receive buffer and publishes ``EPOLLIN`` through the socket's
:class:`~..eventpoll.WaitQueue` — so delayed readiness flows through
``epoll_pwait``/``ppoll`` exactly like any other readiness edge, and
edge-triggered interest fires once per arrival, not per send.

In-flight stream bytes stay charged against the receiver's
:class:`~.base.StreamBuffer` window (``in_flight``), so the writer's
flow control sees one consistent ``SOCK_BUF_CAPACITY`` budget.
"""

from __future__ import annotations

import random
import threading
import time as _time
from collections import deque
from typing import Tuple

from ..eventpoll import EPOLLIN
from ..vfs import CharDevice
from .base import SOCK_DGRAM, Socket
from .loopback import LoopbackBackend


class WanBackend(LoopbackBackend):
    """Loopback namespace + delay-line delivery with impairments."""

    name = "wan"

    def __init__(self, latency_ms: float = 20.0, jitter_ms: float = 0.0,
                 loss: float = 0.0, bw_kbps: float = 0.0,
                 reorder: float = 0.0, dup: float = 0.0,
                 seed: int = 0xBEEF):
        super().__init__()
        for name, p in (("loss", loss), ("reorder", reorder), ("dup", dup)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if latency_ms < 0 or jitter_ms < 0 or bw_kbps < 0:
            raise ValueError("latency/jitter/bandwidth must be >= 0")
        self.latency_ns = int(latency_ms * 1e6)
        self.jitter_ns = int(jitter_ms * 1e6)
        self.loss = loss
        self.bw_kbps = bw_kbps
        self.reorder = reorder
        self.dup = dup
        self.seed = seed
        # serializes the link clock: senders may transmit toward
        # different receivers (different conds) at once
        self._link_lock = threading.Lock()

    def _rng_for(self, sock: Socket) -> random.Random:
        """The sender's private impairment stream (see module docstring).

        Keyed by the socket's bound address at first draw (sockets that
        draw before binding get an address-independent stream), so the
        per-socket draw sequence depends only on that socket's own send
        order — never on cross-thread interleaving.
        """
        rng = sock.__dict__.get("_wan_rng")
        if rng is None:
            rng = random.Random(f"{self.seed}:{sock.addr!r}")
            sock.__dict__["_wan_rng"] = rng
        return rng

    def describe(self) -> str:
        out = (f"wan:latency_ms={self.latency_ns / 1e6:g},"
               f"jitter_ms={self.jitter_ns / 1e6:g},"
               f"loss={self.loss:g},bw_kbps={self.bw_kbps:g}")
        if self.reorder:
            out += f",reorder={self.reorder:g}"
        if self.dup:
            out += f",dup={self.dup:g}"
        return out

    # ---- connection establishment pays the handshake ----

    def connect(self, sock: Socket, addr) -> None:
        """Charge one SYN/SYN-ACK round trip before ESTABLISHED.

        Stream connects block for ~1 RTT (two one-way latencies plus a
        jitter sample per direction) whether they succeed or get RST —
        the refusal races back over the same wire.  Datagram "connects"
        only pin the peer address: no packets, no charge.
        """
        if sock.type != SOCK_DGRAM:
            rng = self._rng_for(sock)
            jit = (int(rng.uniform(0, self.jitter_ns)) +
                   int(rng.uniform(0, self.jitter_ns))) \
                if self.jitter_ns else 0
            rtt_ns = 2 * self.latency_ns + jit
            if rtt_ns > 0:
                _time.sleep(rtt_ns / 1e9)
        super().connect(sock, addr)

    # ---- the delay line ----

    def _transmit(self, sender: Socket, peer: Socket, kind: str,
                  payload, nbytes: int, reorder: bool = False) -> bool:
        """Queue one payload for delayed delivery (under ``peer.cond``).

        Returns False when the payload should be delivered inline — the
        link adds no delay and nothing is queued ahead, or ``reorder``
        asks for netem-style early delivery (the queue-jumper skips the
        delay line and lands ahead of anything still queued).  The
        inline path records the tap in the loopback seam; the FIFO
        clock (``_wan_last_at``) is untouched by reordered payloads.
        """
        now = _time.monotonic_ns()
        jit = int(self._rng_for(sender).uniform(0, self.jitter_ns)) \
            if self.jitter_ns else 0
        with self._link_lock:
            # serialization: this sender's link is busy until previous
            # sends finish transmitting at the configured bandwidth
            busy = max(now, sender.__dict__.get("_wan_busy_ns", 0))
            tx_ns = int(nbytes * 8e6 / self.bw_kbps) \
                if self.bw_kbps > 0 else 0
            sender.__dict__["_wan_busy_ns"] = busy + tx_ns
        if reorder:
            return False
        q = peer.__dict__.setdefault("_wan_pending", deque())
        deliver_at = busy + tx_ns + self.latency_ns + jit
        # FIFO: jitter never reorders in-order payloads on one link
        deliver_at = max(deliver_at, peer.__dict__.get("_wan_last_at", 0))
        if deliver_at <= now and not q:
            return False
        peer.__dict__["_wan_last_at"] = deliver_at
        q.append((deliver_at, kind, payload))
        self._tap_record(kind, sender, peer, _payload_bytes(payload))
        # one timer per drain cycle, not per payload: FIFO deadlines are
        # monotonic, so while a timer is armed the head can only move
        # later — _pump re-arms if anything remains after a drain
        if not peer.__dict__.get("_wan_timer_armed", False):
            peer.__dict__["_wan_timer_armed"] = True
            self._arm(peer, deliver_at - now)
        return True

    def _arm(self, peer: Socket, delay_ns: int) -> None:
        t = threading.Timer(max(delay_ns, 0) / 1e9, self._pump, args=(peer,))
        t.daemon = True
        t.start()

    def _pump(self, peer: Socket) -> None:
        """Timer expiry: move every due payload into the receive side."""
        mask = 0
        with peer.cond:
            peer.__dict__["_wan_timer_armed"] = False
            q = peer.__dict__.get("_wan_pending")
            now = _time.monotonic_ns()
            while q and q[0][0] <= now:
                _, kind, payload = q.popleft()
                if kind == "data":
                    peer.rx.in_flight -= len(payload)
                    peer.rx.data.extend(payload)
                    mask |= EPOLLIN
                elif kind == "dgram":
                    peer.dgrams.append(payload)
                    mask |= EPOLLIN
                else:  # "eof": the FIN arrives behind any in-flight data
                    peer.rx.set_eof()
                    mask |= payload
            if q:
                # later payloads (or an early-firing Timer) still pending
                peer.__dict__["_wan_timer_armed"] = True
                self._arm(peer, q[0][0] - now)
            if mask:
                peer.cond.notify_all()
        if mask:
            peer.wq.wake(mask)

    # ---- delivery-policy overrides ----

    def _deliver_stream(self, sender: Socket, peer: Socket,
                        chunk: bytes) -> None:
        if self._transmit(sender, peer, "data", chunk, len(chunk)):
            peer.rx.in_flight += len(chunk)
        else:
            super()._deliver_stream(sender, peer, chunk)

    def pending_delivery(self, sock: Socket) -> bool:
        return bool(sock.__dict__.get("_wan_pending"))

    def _deliver_dgram(self, sender: Socket, target: Socket,
                       payload: Tuple[Tuple, bytes]) -> None:
        rng = self._rng_for(sender)
        if self.loss > 0 and rng.random() < self.loss:
            # the WAN ate it; senders never hear about it — but the
            # observability layer does (this drop went uncounted before
            # the shared counter registry existed)
            if self.counters is not None:
                self.counters.inc("net.drop")
            if self.trace is not None:
                self.trace.emit("net_drop", arg=len(payload[1]),
                                info="loss")
            return
        duplicated = self.dup > 0 and rng.random() < self.dup
        # one reorder roll per datagram: a duplicate shares its
        # original's fate, so the copy always rides right behind
        reordered = self.reorder > 0 and rng.random() < self.reorder
        if self.counters is not None:
            if duplicated:
                self.counters.inc("net.dup")
            if reordered:
                self.counters.inc("net.reorder")
        for _ in range(2 if duplicated else 1):
            with target.cond:
                queued = self._transmit(sender, target, "dgram", payload,
                                        len(payload[1]), reorder=reordered)
            if not queued:
                super()._deliver_dgram(sender, target, payload)

    def deliver_eof(self, sender: Socket, peer: Socket, mask: int) -> None:
        with peer.cond:
            queued = self._transmit(sender, peer, "eof", mask, 0)
        if not queued:
            super().deliver_eof(sender, peer, mask)


def _payload_bytes(payload) -> bytes:
    """Wire bytes of a delay-line payload (eof markers carry none)."""
    if isinstance(payload, tuple):
        return payload[1]          # dgram: (src_addr, data)
    if isinstance(payload, (bytes, bytearray)):
        return bytes(payload)      # stream chunk
    return b""                     # eof mask


# ----------------------------------------------------------------------
# /proc/sys/net/wan knob devices (kernel/procfs.py mounts these)
# ----------------------------------------------------------------------

# knob -> (attribute, scale to storage units, upper bound in knob units).
# latency/jitter are exposed in milliseconds but stored in nanoseconds;
# probabilities live in [0, 1]; bandwidth in kbit/s (0 = unlimited).
_WAN_KNOBS = {
    "latency_ms": ("latency_ns", 1e6, float("inf")),
    "jitter_ms": ("jitter_ns", 1e6, float("inf")),
    "loss": ("loss", None, 1.0),
    "reorder": ("reorder", None, 1.0),
    "dup": ("dup", None, 1.0),
    "bw_kbps": ("bw_kbps", None, float("inf")),
}


class WanKnobDevice(CharDevice):
    """One writable /proc/sys/net/wan knob: live link reconfiguration.

    Same validation discipline as the ``/proc/sys/vm`` knobs — a write
    is parsed (``EINVAL`` on garbage), range-checked (``EINVAL`` out of
    range), then applied to the running backend, so an in-flight
    workload's link can be degraded without booting a new kernel.
    Payloads already queued on the delay line keep their old delivery
    times; only subsequent sends see the new impairments.
    """

    def __init__(self, backend: WanBackend, name: str):
        if name not in _WAN_KNOBS:
            raise ValueError(name)
        self.backend = backend
        self.name = name

    def _read_value(self) -> float:
        attr, scale, _ = _WAN_KNOBS[self.name]
        value = getattr(self.backend, attr)
        return value / scale if scale else value

    def read(self, length: int) -> bytes:
        return f"{self._read_value():g}\n".encode()[:length]

    def write(self, data: bytes) -> int:
        from ..errno import EINVAL, KernelError
        try:
            value = float(data.split()[0])
        except (ValueError, IndexError):
            raise KernelError(EINVAL, f"bad value for {self.name}")
        attr, scale, hi = _WAN_KNOBS[self.name]
        if not 0.0 <= value <= hi:
            raise KernelError(EINVAL, f"{self.name} out of range")
        setattr(self.backend, attr, int(value * scale) if scale else value)
        return len(data)
