"""``repro.kernel.net`` — pluggable network backends.

The kernel programs against :class:`NetBackend`; three implementations
ship in-tree:

==========  ==============================================================
backend     semantics
==========  ==============================================================
loopback    in-process, zero-latency, lossless (the default; historical
            ``NetStack`` behavior, bit-for-bit)
wan         loopback namespace behind a simulated link: latency, jitter,
            bandwidth cap, probabilistic datagram loss
host        real host sockets via Python's ``socket`` module (opt-in:
            ``host:optin=1`` or ``REPRO_NET_HOST=1``)
==========  ==============================================================

Backends are selected with a spec string — ``<name>[:k=v,k=v...]`` —
threaded through ``Kernel(net_backend=...)``, ``Workload.net``, and the
benchmark/example ``--net`` knobs::

    Kernel(net_backend="wan:latency_ms=5,jitter_ms=1,loss=0.01")
"""

from __future__ import annotations

from typing import Optional, Union

from ..errno import EINVAL, KernelError
from .base import (
    AF_INET, AF_UNIX, IPPROTO_TCP, NetBackend, PacketRecord, PacketTap,
    SHUT_RD, SHUT_RDWR, SHUT_WR,
    SO_KEEPALIVE, SO_RCVBUF, SO_REUSEADDR, SO_SNDBUF, SOCK_BUF_CAPACITY,
    SOCK_CLOEXEC, SOCK_DGRAM, SOCK_NONBLOCK, SOCK_STREAM, SOL_SOCKET, Socket,
    StreamBuffer, TCP_NODELAY,
)
from .host import HostBackend, HostSocket
from .loopback import LoopbackBackend
from .wan import WanBackend

BACKEND_NAMES = ("loopback", "wan", "host")


def _parse_opts(optstr: str) -> dict:
    opts = {}
    for item in optstr.split(","):
        if not item:
            continue
        key, sep, value = item.partition("=")
        opts[key.strip()] = value.strip() if sep else "1"
    return opts


def create_backend(spec: Union[str, NetBackend, None] = None) -> NetBackend:
    """Resolve a backend spec (``name[:k=v,...]``), instance, or None."""
    if spec is None:
        return LoopbackBackend()
    if isinstance(spec, NetBackend):
        return spec
    name, _, optstr = str(spec).partition(":")
    opts = _parse_opts(optstr)
    try:
        if name == "loopback":
            backend = LoopbackBackend()
        elif name == "wan":
            seed = opts.pop("seed", 0xBEEF)
            backend = WanBackend(
                latency_ms=float(opts.pop("latency_ms", 20.0)),
                jitter_ms=float(opts.pop("jitter_ms", 0.0)),
                loss=float(opts.pop("loss", 0.0)),
                bw_kbps=float(opts.pop("bw_kbps", 0.0)),
                reorder=float(opts.pop("reorder", 0.0)),
                dup=float(opts.pop("dup", 0.0)),
                seed=int(seed, 0) if isinstance(seed, str) else seed,
            )
        elif name == "host":
            backend = HostBackend(
                opt_in=bool(int(opts.pop("optin", "0"))),
                bind_host=opts.pop("bind", "127.0.0.1"),
            )
        else:
            raise KernelError(
                EINVAL, f"unknown net backend {name!r} "
                        f"(expected one of {', '.join(BACKEND_NAMES)})")
    except (TypeError, ValueError) as exc:
        raise KernelError(EINVAL, f"bad net backend spec {spec!r}: {exc}")
    if opts:
        raise KernelError(EINVAL,
                          f"unknown {name} backend options: {sorted(opts)}")
    return backend


__all__ = [
    "AF_INET", "AF_UNIX", "BACKEND_NAMES", "HostBackend", "HostSocket",
    "IPPROTO_TCP", "LoopbackBackend", "NetBackend", "PacketRecord",
    "PacketTap", "SHUT_RD", "SHUT_RDWR",
    "SHUT_WR", "SOCK_BUF_CAPACITY", "SOCK_CLOEXEC", "SOCK_DGRAM",
    "SOCK_NONBLOCK", "SOCK_STREAM", "SOL_SOCKET", "SO_KEEPALIVE",
    "SO_RCVBUF", "SO_REUSEADDR", "SO_SNDBUF", "Socket", "StreamBuffer",
    "TCP_NODELAY", "WanBackend", "create_backend",
]
