"""The network backend interface and its shared socket mechanics.

The kernel's socket layer is split into two halves:

* a backend-independent :class:`Socket` object (state machine, receive
  :class:`StreamBuffer`, datagram queue, readiness waitqueue) that the
  syscall layer and fd table talk to, and
* a :class:`NetBackend` that owns the address namespace, connection
  establishment, and — crucially — the *delivery policy*: when and how
  bytes written by one endpoint become readable at the other.

``LoopbackBackend`` delivers instantly in-process (the historical
semantics), ``WanBackend`` routes every payload through a delay line with
configurable latency/jitter/bandwidth/loss, and ``HostBackend`` maps the
API onto real host sockets.  ``Kernel(net_backend=...)`` selects one.
"""

from __future__ import annotations

import struct
import threading
import time as _time
from typing import Dict, List, Optional, Tuple

from ..errno import EAGAIN, ENOTCONN, EPIPE, KernelError
from ..eventpoll import (
    EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP, WaitQueue,
)

AF_UNIX = 1
AF_INET = 2

SOCK_STREAM = 1
SOCK_DGRAM = 2
SOCK_NONBLOCK = 0o4000
SOCK_CLOEXEC = 0o2000000

SOL_SOCKET = 1
SO_REUSEADDR = 2
SO_KEEPALIVE = 9
SO_RCVBUF = 8
SO_SNDBUF = 7
IPPROTO_TCP = 6
TCP_NODELAY = 1

SHUT_RD, SHUT_WR, SHUT_RDWR = 0, 1, 2

SOCK_BUF_CAPACITY = 262144


class StreamBuffer:
    """A bounded stream receive buffer with an EOF latch.

    ``in_flight`` counts bytes a backend has accepted from the sender but
    not yet made readable (a WAN link's delay line); those bytes reserve
    capacity so the writer's flow control sees one consistent window:
    ``len(data) + in_flight <= capacity`` always holds.
    """

    __slots__ = ("data", "capacity", "eof", "in_flight")

    def __init__(self, capacity: int = SOCK_BUF_CAPACITY):
        self.data = bytearray()
        self.capacity = capacity
        self.eof = False
        self.in_flight = 0

    def space(self) -> int:
        return self.capacity - len(self.data) - self.in_flight

    def write(self, chunk: bytes) -> int:
        """Append up to the free window; returns the number accepted."""
        n = min(len(chunk), self.space())
        if n > 0:
            self.data.extend(chunk[:n])
        return n

    def read(self, length: int) -> bytes:
        out = bytes(self.data[:length])
        del self.data[:length]
        return out

    def set_eof(self) -> None:
        self.eof = True

    def __len__(self) -> int:
        return len(self.data)


class Socket:
    """One endpoint; delivery policy is delegated to the owning backend."""

    ST_NEW = "new"
    ST_BOUND = "bound"
    ST_LISTENING = "listening"
    ST_CONNECTED = "connected"
    ST_CLOSED = "closed"

    def __init__(self, stack: "NetBackend", family: int, type_: int):
        self.stack = stack
        self.family = family
        self.type = type_
        self.state = self.ST_NEW
        self.addr: Optional[Tuple] = None        # bound address
        self.peer_addr: Optional[Tuple] = None
        self.peer: Optional["Socket"] = None
        self.rx = StreamBuffer()
        self.wr_closed = False                   # shutdown(SHUT_WR) latch
        self.backlog: List["Socket"] = []
        self.backlog_limit = 0
        self.dgrams: List[Tuple[Tuple, bytes]] = []
        self.opts: Dict[Tuple[int, int], int] = {}
        self.cond = threading.Condition()
        # readiness waitqueue: state transitions publish events here so
        # epoll/ppoll waiters wake without rescanning (kernel/eventpoll.py)
        self.wq = WaitQueue()

    # back-compat views (FIONREAD and older callers use these names)

    @property
    def rbuf(self) -> bytearray:
        return self.rx.data

    @property
    def eof(self) -> bool:
        return self.rx.eof

    @eof.setter
    def eof(self, value: bool) -> None:
        self.rx.eof = value

    # ---- stream data path (non-blocking steps; kernel loops for blocking) ----

    def recv_step(self, length: int) -> bytes:
        with self.cond:
            if self.rx.data:
                out = self.rx.read(length)
                self.cond.notify_all()
                if self.peer is not None:
                    self.peer.wq.wake(EPOLLOUT)  # space freed for the writer
                return out
            if self.rx.eof or self.state == self.ST_CLOSED:
                return b""
            if self.state != self.ST_CONNECTED:
                raise KernelError(ENOTCONN)
            raise KernelError(EAGAIN, "socket buffer empty")

    def send_step(self, data: bytes) -> int:
        if self.wr_closed:
            raise KernelError(EPIPE, "send after shutdown(SHUT_WR)")
        return self.stack.stream_send(self, data)

    def poll_events(self) -> int:
        """Current readiness mask (EPOLL*/POLL* bits share values)."""
        if self.state == self.ST_LISTENING:
            return EPOLLIN if self.backlog else 0
        mask = 0
        if self.rx.data or self.dgrams or self.rx.eof or \
                self.state == self.ST_CLOSED:
            mask |= EPOLLIN
        peer = self.peer
        # a closed peer only reads as HUP once nothing is left on the
        # wire: a delayed link delivers data, then EOF, then hangup
        peer_gone = self.state == self.ST_CONNECTED and \
            (peer is None or peer.state == self.ST_CLOSED) and \
            not self.stack.pending_delivery(self)
        if self.state == self.ST_CONNECTED and peer is not None and \
                peer.state != self.ST_CLOSED and peer.rx.space() > 0:
            mask |= EPOLLOUT
        if self.state == self.ST_CLOSED or peer_gone:
            mask |= EPOLLHUP
        if self.rx.eof:
            mask |= EPOLLRDHUP
        return mask

    def poll(self) -> Tuple[bool, bool]:
        mask = self.poll_events()
        return bool(mask & EPOLLIN), bool(mask & EPOLLOUT)

    # ---- lifecycle ----

    def shutdown(self, how: int) -> None:
        if self.state != self.ST_CONNECTED:
            raise KernelError(ENOTCONN)
        if how in (SHUT_WR, SHUT_RDWR):
            self.wr_closed = True
            if self.peer is not None:
                # EOF travels the link like data (a WAN delays it behind
                # any bytes still in flight)
                self.stack.deliver_eof(self, self.peer,
                                       EPOLLIN | EPOLLRDHUP)
        if how in (SHUT_RD, SHUT_RDWR):
            with self.cond:
                self.rx.set_eof()
                self.cond.notify_all()
            self.wq.wake(EPOLLIN | EPOLLRDHUP)

    def close(self) -> None:
        if self.state == self.ST_CLOSED:
            return
        if self.state == self.ST_LISTENING:
            self.stack.unregister(self)
            for pending in self.backlog:
                with pending.cond:
                    pending.state = pending.ST_CLOSED
                    pending.cond.notify_all()
                pending.wq.wake(EPOLLIN | EPOLLHUP)
        if self.addr is not None and self.type == SOCK_DGRAM:
            self.stack.unregister(self)
        peer = self.peer
        self.state = self.ST_CLOSED
        with self.cond:
            self.cond.notify_all()
        self.wq.wake(EPOLLIN | EPOLLOUT | EPOLLHUP)
        if peer is not None:
            self.stack.deliver_eof(self, peer,
                                   EPOLLIN | EPOLLRDHUP | EPOLLHUP)


class PacketRecord:
    """One captured payload on its way onto the wire."""

    __slots__ = ("ts_ns", "kind", "src", "dst", "payload")

    def __init__(self, ts_ns: int, kind: str, src: Tuple, dst: Tuple,
                 payload: bytes):
        self.ts_ns = ts_ns
        self.kind = kind          # "data" | "dgram" | "eof"
        self.src = src
        self.dst = dst
        self.payload = payload

    def __repr__(self) -> str:
        return (f"PacketRecord({self.kind}, {self.src}->{self.dst}, "
                f"{len(self.payload)}B)")


class PacketTap:
    """A pcap-style capture attached to a backend's delivery hooks.

    Records every payload the moment it is committed to the wire — after
    loss (a dropped datagram never appears), before delay (a WAN's
    queued payloads show up at transmit time).  ``to_pcap`` renders a
    classic libpcap file (LINKTYPE_USER0) so captures can leave the
    process for external inspection.
    """

    def __init__(self):
        self.records: List[PacketRecord] = []

    def record(self, kind: str, src: Tuple, dst: Tuple,
               payload: bytes) -> None:
        self.records.append(PacketRecord(_time.monotonic_ns(), kind, src,
                                         dst, bytes(payload)))

    # -- assertion helpers for tests and the metrics layer --

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.records)
        return sum(1 for r in self.records if r.kind == kind)

    def nbytes(self, kind: Optional[str] = None) -> int:
        return sum(len(r.payload) for r in self.records
                   if kind is None or r.kind == kind)

    def payloads(self, kind: Optional[str] = None) -> List[bytes]:
        return [r.payload for r in self.records
                if kind is None or r.kind == kind]

    def summary(self) -> dict:
        return {
            "packets": self.count(),
            "bytes": self.nbytes(),
            "stream_bytes": self.nbytes("data"),
            "dgrams": self.count("dgram"),
            "eofs": self.count("eof"),
        }

    def to_pcap(self) -> bytes:
        """Classic pcap: global header + one record per payload."""
        out = bytearray()
        # magic, v2.4, no tz offset/sigfigs, snaplen, LINKTYPE_USER0
        out += struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 147)
        for rec in self.records:
            sec, nsec = divmod(rec.ts_ns, 10**9)
            out += struct.pack("<IIII", sec, nsec // 1000,
                               len(rec.payload), len(rec.payload))
            out += rec.payload
        return bytes(out)


class NetBackend:
    """The pluggable network backend API the kernel programs against.

    Implementations provide the address namespace plus delivery policy.
    The syscall layer (:mod:`repro.kernel.calls.net`) only ever calls
    these methods and the socket-object surface (``recv_step``,
    ``send_step``, ``poll_events``, ``shutdown``, ``close``, ``wq``,
    ``opts``, ``addr``/``peer_addr``), so backends can be swapped without
    touching any caller.

    Backends that deliver through the ``_deliver_stream``/
    ``_deliver_dgram`` seams also feed attached :class:`PacketTap`\\ s via
    :meth:`_tap_record`, so tests and the metrics layer can assert on
    wire-level traffic regardless of the delivery policy in use.
    """

    name = "abstract"

    def __init__(self):
        self._taps: List[PacketTap] = []
        # kernel observability (kernel/trace.py): the owning Kernel
        # assigns these after create_backend; None when standalone
        self.trace = None
        self.counters = None

    # -- packet capture --

    def attach_tap(self, tap: Optional[PacketTap] = None) -> PacketTap:
        if tap is None:
            tap = PacketTap()
        self._taps.append(tap)
        return tap

    def detach_tap(self, tap: PacketTap) -> None:
        try:
            self._taps.remove(tap)
        except ValueError:
            pass

    def _tap_record(self, kind: str, sender, receiver,
                    payload: bytes) -> None:
        # every wire commitment flows through here (inline and delay-line
        # paths), so this is also the net_deliver observability seam
        if self.counters is not None:
            self.counters.inc("net.deliver")
            self.counters.inc("net.deliver_bytes", len(payload))
        if self.trace is not None:
            self.trace.emit("net_deliver", arg=len(payload), info=kind)
        if not self._taps:
            return
        src = getattr(sender, "addr", None) or ("", 0)
        dst = getattr(receiver, "addr", None) or ("", 0)
        for tap in self._taps:
            tap.record(kind, src, dst, payload)

    # -- namespace / lifecycle --

    def socket(self, family: int, type_: int):
        raise NotImplementedError

    def bind(self, sock, addr: Tuple) -> None:
        raise NotImplementedError

    def listen(self, sock, backlog: int) -> None:
        raise NotImplementedError

    def connect(self, sock, addr: Tuple) -> None:
        raise NotImplementedError

    def accept_step(self, listener):
        raise NotImplementedError

    def socketpair(self, family: int, type_: int):
        raise NotImplementedError

    def unregister(self, sock) -> None:
        raise NotImplementedError

    # -- data plane --

    def sendto(self, sock, data: bytes, addr: Optional[Tuple]) -> int:
        raise NotImplementedError

    def recvfrom_step(self, sock, length: int):
        raise NotImplementedError

    def stream_send(self, sock, data: bytes) -> int:
        raise NotImplementedError

    def deliver_eof(self, sender, peer, mask: int) -> None:
        raise NotImplementedError

    def pending_delivery(self, sock) -> bool:
        """True while the link still owes ``sock`` queued payloads."""
        return False

    def describe(self) -> str:
        return self.name
