"""io_uring-style submission/completion rings: batched syscall crossings.

The paper's Fig. 7 / Table 2 breakdown shows that for syscall-dense
workloads the dominant per-call cost is the *crossing itself* — argument
translation at the WALI boundary plus dispatch — not the kernel work
behind it.  The epoll subsystem (PR 1) already made *finding* ready fds
O(ready), but an event-loop server still pays one crossing per
``epoll_pwait`` **plus** one per ``read``/``write``/``accept`` the
readiness unblocks: at N ops per wakeup that is N+1 crossings where the
kernel work would fit in one.

This module moves the batching boundary the way ``io_uring`` does:

* the guest queues **submission queue entries** (SQEs) describing I/O it
  wants done — no crossing per op;
* one ``io_uring_enter`` crossing hands the whole batch to the kernel;
* ops that would block are **parked on the readiness waitqueues** from
  :mod:`repro.kernel.eventpoll` — the same wakeups that drive epoll —
  and complete when readiness fires;
* finished ops surface as **completion queue entries** (CQEs) that the
  guest reaps in bulk (through its shared ring memory, again without a
  crossing per op).

So the crossing cost is amortized over the batch: where the epoll loop
pays ``1 + ops`` crossings per wakeup, the ring loop pays ``1`` — the
interface co-design argument (cut boundary traffic, not per-side work)
applied to the guest↔host syscall boundary.

Semantics modeled after Linux:

* **CQ overflow**: when the CQ ring is full, completions accumulate in a
  kernel-side backlog (nothing is dropped), the overflow counter ticks,
  and the ``IORING_SQ_CQ_OVERFLOW`` flag is raised until the backlog
  drains into freed CQ slots.
* **``IOSQE_IO_LINK``**: an SQE carrying the link flag chains to its
  successor; a link starts only after its predecessor completes
  successfully, and a failed op (res < 0) cancels the rest of the chain
  with ``-ECANCELED``.
* **single completion per arrival**: a parked op completes exactly once
  per readiness edge that satisfies it — no spurious duplicates across
  subsequent ``io_uring_enter`` calls (the ET-style discipline).

Files are resolved once at first submission and pinned for the life of
the op (like the kernel's per-op file reference), so an fd closed — or
closed and reused — mid-flight cannot redirect a parked op.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, List, Optional

from .errno import (
    EAGAIN, EBADF, ECANCELED, EINVAL, ENOTSOCK, ETIME, KernelError,
)
from .eventpoll import (
    EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP, WaitQueue,
)
from .fdtable import OpenFile

# opcodes (a compact subset of the Linux set)
IORING_OP_NOP = 0
IORING_OP_READ = 1
IORING_OP_WRITE = 2
IORING_OP_ACCEPT = 3
IORING_OP_SEND = 4
IORING_OP_RECV = 5
IORING_OP_POLL_ADD = 6
IORING_OP_TIMEOUT = 7
IORING_OP_FSYNC = 8

# fsync flags (carried in sqe.off, like the timeout duration)
IORING_FSYNC_DATASYNC = 1

# sqe flags (Linux bit positions)
IOSQE_IO_LINK = 1 << 2
# suppress the CQE of a successful op (failures always complete): spares
# the guest from reaping completions it would ignore (fire-and-forget
# sends), shrinking CQ traffic
IOSQE_CQE_SKIP_SUCCESS = 1 << 6

# io_uring_enter flags
IORING_ENTER_GETEVENTS = 1
# our EXT_ARG analog: when set, the ``sig`` argument carries a relative
# timeout in milliseconds for the min_complete wait
IORING_ENTER_TIMEOUT_MS = 1 << 4

# io_uring_register opcodes
IORING_REGISTER_RING = 0

# ring-header flags mirrored to the guest
IORING_SQ_CQ_OVERFLOW = 1

URING_MAX_ENTRIES = 4096

_READ_WAKE = EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP
_WRITE_WAKE = EPOLLOUT | EPOLLHUP | EPOLLERR

_RETRY = object()  # _park sentinel: subscribed, re-check the op once

_FD_OPS = frozenset({
    IORING_OP_READ, IORING_OP_WRITE, IORING_OP_ACCEPT, IORING_OP_SEND,
    IORING_OP_RECV, IORING_OP_POLL_ADD, IORING_OP_FSYNC,
})


class SQE:
    """One submission: an operation the guest wants performed."""

    __slots__ = ("opcode", "fd", "addr", "length", "off", "user_data",
                 "flags", "data", "_file")

    def __init__(self, opcode: int, fd: int = -1, addr: int = 0,
                 length: int = 0, off: int = 0, user_data: int = 0,
                 flags: int = 0, data: Optional[bytes] = None):
        self.opcode = opcode
        self.fd = fd
        self.addr = addr          # guest buffer pointer (opaque up here)
        self.length = length
        self.off = off            # POLL_ADD events / TIMEOUT nanoseconds
        self.user_data = user_data
        self.flags = flags
        self.data = data          # WRITE/SEND payload, snapshot at submit
        self._file = None         # pinned open-file description


class CQE:
    """One completion: result + the submitter's user_data cookie."""

    __slots__ = ("user_data", "res", "flags", "data", "addr")

    def __init__(self, user_data: int, res: int, flags: int = 0,
                 data: Optional[bytes] = None, addr: int = 0):
        self.user_data = user_data
        self.res = res
        self.flags = flags
        self.data = data          # READ/RECV payload (host copies to addr)
        self.addr = addr

    def __repr__(self) -> str:
        return f"CQE(user_data={self.user_data}, res={self.res})"


class _Chain:
    """A linked run of SQEs; unlinked SQEs are chains of length one."""

    __slots__ = ("kernel", "proc", "sqes", "parked", "timer", "queued",
                 "done")

    def __init__(self, kernel, proc, sqes: List[SQE]):
        self.kernel = kernel
        self.proc = proc
        self.sqes = sqes
        self.parked: Optional["_Parked"] = None
        self.timer: Optional[threading.Timer] = None
        self.queued = False   # already on the ready list
        self.done = False


class _Parked:
    """Waitqueue subscriber re-arming a blocked chain on readiness.

    The callback only records that the chain should be retried and kicks
    the ring's waitqueue; the actual I/O step re-runs on a syscall-side
    thread (``_process_ready``), never on the waker's thread, so wakers
    keep their cheap-and-lock-free contract.
    """

    __slots__ = ("ring", "chain", "wq", "mask")

    def __init__(self, ring: "IoURing", chain: _Chain, wq: WaitQueue,
                 mask: int):
        self.ring = ring
        self.chain = chain
        self.wq = wq
        self.mask = mask

    def __call__(self, events: int) -> None:
        if not (events & self.mask):
            return
        chain = self.chain
        if chain.queued or chain.done:
            return
        chain.queued = True
        self.ring._ready.append(chain)
        self.ring.wq.wake(EPOLLIN)

    def detach(self) -> None:
        self.wq.unsubscribe(self)


class IoURing:
    """One submission/completion ring pair (the object behind the fd)."""

    def __init__(self, sq_entries: int = 128,
                 cq_entries: Optional[int] = None, trace=None):
        if sq_entries <= 0 or sq_entries > URING_MAX_ENTRIES:
            raise KernelError(EINVAL, f"ring entries {sq_entries}")
        size = 1
        while size < sq_entries:
            size <<= 1
        self.sq_entries = size
        self.cq_entries = cq_entries or size * 2
        self.cq: Deque[CQE] = deque()
        self.cq_backlog: Deque[CQE] = deque()   # overflow parking lot
        self.overflow = 0                        # CQEs that ever overflowed
        self.submitted = 0
        self.completed = 0
        self.wq = WaitQueue()                    # ring fds are pollable
        self._lock = threading.Lock()
        self._ready: Deque[_Chain] = deque()
        self._chains: List[_Chain] = []
        self.registrations = {}
        self.guest_base: Optional[int] = None    # set by the WALI host
        self.closed = False
        # kernel observability (kernel/trace.py); None outside a kernel
        self.trace = trace
        self.counters = trace.counters if trace is not None else None

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(self, kernel, proc, sqes: List[SQE]) -> int:
        """Run a batch of SQEs; ops that would block park on waitqueues."""
        if self.closed:
            raise KernelError(EBADF, "ring is closed")
        if len(sqes) > self.sq_entries:
            raise KernelError(
                EINVAL, f"batch of {len(sqes)} exceeds the SQ ring "
                        f"({self.sq_entries} entries)")
        if self.counters is not None:
            self.counters.inc("uring.submitted", len(sqes))
        if self.trace is not None:
            self.trace.emit("uring_submit", pid=proc.pid, arg=len(sqes))
        self._chains = [c for c in self._chains if not c.done]
        for chain_sqes in _split_chains(sqes):
            chain = _Chain(kernel, proc, chain_sqes)
            self._chains.append(chain)
            self._advance(chain)
        self.submitted += len(sqes)
        return len(sqes)

    def _advance(self, chain: _Chain) -> None:
        """Run the chain head; on success keep going, on park stop."""
        while chain.sqes:
            sqe = chain.sqes[0]
            outcome = self._try_op(chain, sqe)
            if outcome is _RETRY:
                continue  # just subscribed: re-check once (lost-edge race)
            if outcome is None:
                return  # parked: readiness will re-queue the chain
            if chain.parked is not None:
                chain.parked.detach()
                chain.parked = None
            chain.sqes.pop(0)
            res, data, addr = outcome
            if res < 0 or not (sqe.flags & IOSQE_CQE_SKIP_SUCCESS):
                self._complete(CQE(sqe.user_data, res, data=data,
                                   addr=addr))
            if res < 0 and chain.sqes:
                # a failed link short-circuits the rest of the chain
                for rest in chain.sqes:
                    if self.counters is not None:
                        self.counters.inc("uring.link_cancel")
                    self._complete(CQE(rest.user_data, -ECANCELED))
                chain.sqes = []
        chain.done = True

    def _try_op(self, chain: _Chain, sqe: SQE):
        """One non-blocking attempt; (res, data, addr) or None if parked."""
        op = sqe.opcode
        if op == IORING_OP_NOP:
            return 0, None, 0
        if op == IORING_OP_TIMEOUT:
            if sqe.off <= 0:
                return -ETIME, None, 0
            timer = threading.Timer(sqe.off / 1e9, self._timeout_fire,
                                    args=(chain,))
            timer.daemon = True
            chain.timer = timer
            timer.start()
            return None
        if op not in _FD_OPS:
            return -EINVAL, None, 0
        file = sqe._file
        if file is None:
            try:
                file = chain.proc.fdtable.get(sqe.fd)
            except KernelError as exc:
                return -exc.errno, None, 0
            sqe._file = file  # pin: a close/reuse cannot redirect the op
        if op in (IORING_OP_READ, IORING_OP_RECV):
            try:
                data = file.read(sqe.length)
            except KernelError as exc:
                if exc.errno == EAGAIN:
                    return self._park(chain, file, _READ_WAKE)
                return -exc.errno, None, 0
            return len(data), bytes(data), sqe.addr
        if op in (IORING_OP_WRITE, IORING_OP_SEND):
            payload = sqe.data if sqe.data is not None else b""
            try:
                # EPIPE surfaces as -EPIPE without SIGPIPE, like
                # io_uring's MSG_NOSIGNAL-style sends
                n = file.write(payload)
            except KernelError as exc:
                if exc.errno == EAGAIN:
                    return self._park(chain, file, _WRITE_WAKE)
                return -exc.errno, None, 0
            return n, None, 0
        if op == IORING_OP_ACCEPT:
            if file.kind != OpenFile.KIND_SOCK:
                return -ENOTSOCK, None, 0
            try:
                conn = chain.kernel.net.accept_step(file.sock)
            except KernelError as exc:
                if exc.errno == EAGAIN:
                    return self._park(chain, file, _READ_WAKE)
                return -exc.errno, None, 0
            newfile = OpenFile(OpenFile.KIND_SOCK, sqe.length, sock=conn)
            return chain.proc.fdtable.install(newfile), None, 0
        if op == IORING_OP_POLL_ADD:
            events = (sqe.off & 0xFFFFFFFF) or EPOLLIN
            mask = file.poll_events() & (events | EPOLLERR | EPOLLHUP)
            if mask:
                return mask, None, 0
            return self._park(chain, file, events | EPOLLERR | EPOLLHUP)
        if op == IORING_OP_FSYNC:
            if file.kind != OpenFile.KIND_REG or file.inode is None:
                return -EINVAL, None, 0
            bd = getattr(chain.kernel, "blockdev", None)
            if bd is None or file.inode.mapping is None:
                return 0, None, 0  # nothing disk-backed: instant success
            # run the flush/commit now, but detach its device time from
            # the submitter: the CQE posts when the disk would be done
            cost_ns = bd.fsync_for_uring(
                file.inode, datasync=bool(sqe.off & IORING_FSYNC_DATASYNC))
            if cost_ns <= 0:
                return 0, None, 0
            timer = threading.Timer(cost_ns / 1e9, self._fsync_fire,
                                    args=(chain,))
            timer.daemon = True
            chain.timer = timer
            timer.start()
            return None
        raise AssertionError(f"unhandled opcode {op}")  # _FD_OPS is exhaustive

    def _park(self, chain: _Chain, file, mask: int):
        wq = file.wait_queue()
        if wq is None:
            return -EAGAIN, None, 0  # unpollable: would-block surfaces
        if chain.parked is None:
            parked = _Parked(self, chain, wq, mask)
            chain.parked = parked
            wq.subscribe(parked)
            # readiness may have raced the subscription: re-check once
            # inline so the edge is never lost
            return _RETRY
        chain.parked.mask = mask
        return None

    def _timeout_fire(self, chain: _Chain) -> None:
        if self.closed or chain.done or not chain.sqes:
            return
        sqe = chain.sqes.pop(0)
        chain.timer = None
        self._complete(CQE(sqe.user_data, -ETIME))
        for rest in chain.sqes:  # a fired timeout breaks its link chain
            if self.counters is not None:
                self.counters.inc("uring.link_cancel")
            self._complete(CQE(rest.user_data, -ECANCELED))
        chain.sqes = []
        chain.done = True

    def _fsync_fire(self, chain: _Chain) -> None:
        """The fsync's device time elapsed: post its CQE and let any
        linked ops continue (on a syscall-side thread, like _Parked)."""
        if self.closed or chain.done or not chain.sqes:
            return
        sqe = chain.sqes.pop(0)
        chain.timer = None
        if not (sqe.flags & IOSQE_CQE_SKIP_SUCCESS):
            self._complete(CQE(sqe.user_data, 0))
        if chain.sqes:
            if not chain.queued:
                chain.queued = True
                self._ready.append(chain)
        else:
            chain.done = True
        self.wq.wake(EPOLLIN)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------

    def _complete(self, cqe: CQE) -> None:
        overflowed = False
        with self._lock:
            if len(self.cq) < self.cq_entries:
                self.cq.append(cqe)
            else:
                self.cq_backlog.append(cqe)
                self.overflow += 1
                overflowed = True
            self.completed += 1
        if self.counters is not None:
            self.counters.inc("uring.completed")
            if overflowed:
                self.counters.inc("uring.cq_overflow")
        if self.trace is not None:
            self.trace.emit("uring_complete", arg=cqe.res)
            if overflowed:
                self.trace.emit("uring_overflow", arg=cqe.user_data)
        self.wq.wake(EPOLLIN)

    def _process_ready(self) -> None:
        """Retry chains whose readiness fired (runs on a syscall thread)."""
        while True:
            with self._lock:
                if not self._ready:
                    return
                chain = self._ready.popleft()
            chain.queued = False
            if self.closed or chain.done:
                continue
            self._advance(chain)

    def cq_ready(self) -> int:
        self._process_ready()
        return len(self.cq) + len(self.cq_backlog)

    def reap(self, maxn: int) -> List[CQE]:
        """Pop up to ``maxn`` CQEs; backlogged overflow refills the ring."""
        self._process_ready()
        out: List[CQE] = []
        with self._lock:
            while len(out) < maxn and (self.cq or self.cq_backlog):
                out.append(self.cq.popleft() if self.cq
                           else self.cq_backlog.popleft())
            while self.cq_backlog and len(self.cq) < self.cq_entries:
                self.cq.append(self.cq_backlog.popleft())
        return out

    @property
    def overflow_pending(self) -> bool:
        return bool(self.cq_backlog)

    def poll_events(self) -> int:
        self._process_ready()
        return EPOLLIN if (self.cq or self.cq_backlog) else 0

    def close(self) -> None:
        self.closed = True
        for chain in self._chains:
            chain.done = True
            if chain.parked is not None:
                chain.parked.detach()
                chain.parked = None
            if chain.timer is not None:
                chain.timer.cancel()
                chain.timer = None
        self._chains = []
        self._ready.clear()
        self.wq.wake(EPOLLHUP)


def _split_chains(sqes: List[SQE]) -> List[List[SQE]]:
    """Group a submission batch into IOSQE_IO_LINK chains."""
    chains: List[List[SQE]] = []
    current: List[SQE] = []
    for sqe in sqes:
        current.append(sqe)
        if not (sqe.flags & IOSQE_IO_LINK):
            chains.append(current)
            current = []
    if current:
        chains.append(current)  # a trailing link flag ends its chain
    return chains
