"""io_uring-style submission/completion rings: batched syscall crossings.

The paper's Fig. 7 / Table 2 breakdown shows that for syscall-dense
workloads the dominant per-call cost is the *crossing itself* — argument
translation at the WALI boundary plus dispatch — not the kernel work
behind it.  The epoll subsystem (PR 1) already made *finding* ready fds
O(ready), but an event-loop server still pays one crossing per
``epoll_pwait`` **plus** one per ``read``/``write``/``accept`` the
readiness unblocks: at N ops per wakeup that is N+1 crossings where the
kernel work would fit in one.

This module moves the batching boundary the way ``io_uring`` does:

* the guest queues **submission queue entries** (SQEs) describing I/O it
  wants done — no crossing per op;
* one ``io_uring_enter`` crossing hands the whole batch to the kernel;
* ops that would block are **parked on the readiness waitqueues** from
  :mod:`repro.kernel.eventpoll` — the same wakeups that drive epoll —
  and complete when readiness fires;
* finished ops surface as **completion queue entries** (CQEs) that the
  guest reaps in bulk (through its shared ring memory, again without a
  crossing per op).

So the crossing cost is amortized over the batch: where the epoll loop
pays ``1 + ops`` crossings per wakeup, the ring loop pays ``1`` — the
interface co-design argument (cut boundary traffic, not per-side work)
applied to the guest↔host syscall boundary.

On top of the batch, three follow-ups push the remaining per-op costs
toward zero:

* **multishot accept/recv** (Linux 5.19 semantics): one armed SQE posts
  a CQE per arrival, flagged ``IORING_CQE_F_MORE``; the op stays armed
  until an error/EOF posts a final CQE *without* the MORE flag.  One
  SQE amortizes over the connection's whole lifetime instead of one SQE
  per arrival.
* **registered buffers**: ``io_uring_register(IORING_REGISTER_BUFFERS)``
  validates and translates a guest buffer table exactly once;
  ``READ_FIXED`` (or RECV with ``IOSQE_FIXED_BUFFER``) then completes
  into a registered slot, and the WALI host skips the per-SQE address
  translation — the paper's crossing-cost argument applied to memory.
* **SQPOLL** (:class:`SQPoller`): a kernel-side submission poller —
  a real scheduler entity that contends for CPU slots like any guest
  task — drains the shared-memory SQ ring so a loaded guest submits
  with *zero* ``enter`` crossings.  The poller parks after
  ``sq_thread_idle`` without work (publishing ``IORING_SQ_NEED_WAKEUP``
  in the shared header) and is re-kicked by one
  ``io_uring_enter(IORING_ENTER_SQ_WAKEUP)`` crossing.

Semantics modeled after Linux:

* **CQ overflow**: when the CQ ring is full, completions accumulate in a
  kernel-side backlog (nothing is dropped), the overflow counter ticks,
  and the ``IORING_SQ_CQ_OVERFLOW`` flag is raised until the backlog
  drains into freed CQ slots.
* **``IOSQE_IO_LINK``**: an SQE carrying the link flag chains to its
  successor; a link starts only after its predecessor completes
  successfully, and a failed op (res < 0) cancels the rest of the chain
  with ``-ECANCELED``.  Multishot ops refuse to link (``-EINVAL``, like
  Linux).
* **single completion per arrival**: a parked op completes exactly once
  per readiness edge that satisfies it — no spurious duplicates across
  subsequent ``io_uring_enter`` calls (the ET-style discipline).
* **one data CQE in flight per multishot recv**: a multishot recv posts
  its next data CQE only after the previous one was reaped, so the
  guest-side buffer (one registered slot per armed op) is never
  overwritten under the consumer.  Protocols with more than one
  in-flight message per fd want a provide-buffers ring (future work).

Files are resolved once at first submission and pinned for the life of
the op (like the kernel's per-op file reference), so an fd closed — or
closed and reused — mid-flight cannot redirect a parked op.

Locking: wakers (``_Parked``/timer expiry) only mark-and-queue under
``ring._lock``; the actual I/O step re-runs on a syscall-side (or
SQPOLL) thread under ``_process_lock``, so a chain is never advanced by
two threads at once and timer expiry can never race an ``_advance``.
"""

from __future__ import annotations

import threading
import time as _time
from collections import deque
from typing import Callable, Deque, List, Optional, Sequence, Tuple

from .errno import (
    EAGAIN, EBADF, ECANCELED, EINVAL, ENOTSOCK, ETIME, KernelError,
)
from .eventpoll import (
    EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP, ProcNotifier,
    WaitQueue,
)
from .fdtable import OpenFile

# opcodes (a compact subset of the Linux set)
IORING_OP_NOP = 0
IORING_OP_READ = 1
IORING_OP_WRITE = 2
IORING_OP_ACCEPT = 3
IORING_OP_SEND = 4
IORING_OP_RECV = 5
IORING_OP_POLL_ADD = 6
IORING_OP_TIMEOUT = 7
IORING_OP_FSYNC = 8
IORING_OP_READ_FIXED = 9   # like READ, but sqe.addr indexes the buffer table

# fsync flags (carried in sqe.off, like the timeout duration)
IORING_FSYNC_DATASYNC = 1

# multishot arming flags (carried in sqe.off, like POLL_ADD's event mask)
IORING_ACCEPT_MULTISHOT = 1
IORING_RECV_MULTISHOT = 2

# sqe flags (Linux bit positions)
IOSQE_IO_LINK = 1 << 2
# suppress the CQE of a successful op (failures always complete): spares
# the guest from reaping completions it would ignore (fire-and-forget
# sends), shrinking CQ traffic
IOSQE_CQE_SKIP_SUCCESS = 1 << 6
# sqe.addr is an index into the registered buffer table, not a pointer
IOSQE_FIXED_BUFFER = 1 << 7

# cqe flags
IORING_CQE_F_BUFFER = 1        # completion used a registered slot ...
IORING_CQE_BUFFER_SHIFT = 16   # ... whose index is (flags >> 16)
IORING_CQE_F_MORE = 2          # multishot: the armed SQE will post more

# io_uring_enter flags
IORING_ENTER_GETEVENTS = 1
IORING_ENTER_SQ_WAKEUP = 2     # re-kick a parked SQPOLL poller
# our EXT_ARG analog: when set, the ``sig`` argument carries a relative
# timeout in milliseconds for the min_complete wait
IORING_ENTER_TIMEOUT_MS = 1 << 4

# io_uring_setup flags
IORING_SETUP_SQPOLL = 2

# io_uring_register opcodes
IORING_REGISTER_RING = 0
IORING_REGISTER_BUFFERS = 1

# ring-header flags mirrored to the guest
IORING_SQ_CQ_OVERFLOW = 1
IORING_SQ_NEED_WAKEUP = 2

URING_MAX_ENTRIES = 4096
URING_MAX_REG_BUFFERS = 65536

_READ_WAKE = EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP
_WRITE_WAKE = EPOLLOUT | EPOLLHUP | EPOLLERR

_RETRY = object()  # _park sentinel: subscribed, re-check the op once

_FD_OPS = frozenset({
    IORING_OP_READ, IORING_OP_WRITE, IORING_OP_ACCEPT, IORING_OP_SEND,
    IORING_OP_RECV, IORING_OP_POLL_ADD, IORING_OP_FSYNC,
    IORING_OP_READ_FIXED,
})

# SQPOLL pacing: the brief doze between empty polls inside the idle
# window (keeps the poller responsive without burning a host CPU), and
# the long park once NEED_WAKEUP is published (the kick wakes it early)
_SQPOLL_DOZE_S = 0.0002
_SQPOLL_PARK_S = 0.05


class SQE:
    """One submission: an operation the guest wants performed."""

    __slots__ = ("opcode", "fd", "addr", "length", "off", "user_data",
                 "flags", "data", "_file")

    def __init__(self, opcode: int, fd: int = -1, addr: int = 0,
                 length: int = 0, off: int = 0, user_data: int = 0,
                 flags: int = 0, data: Optional[bytes] = None):
        self.opcode = opcode
        self.fd = fd
        self.addr = addr          # guest buffer pointer (opaque up here)
        self.length = length
        self.off = off            # POLL_ADD events / TIMEOUT ns / multishot
        self.user_data = user_data
        self.flags = flags
        self.data = data          # WRITE/SEND payload, snapshot at submit
        self._file = None         # pinned open-file description


class CQE:
    """One completion: result + the submitter's user_data cookie."""

    __slots__ = ("user_data", "res", "flags", "data", "addr", "src")

    def __init__(self, user_data: int, res: int, flags: int = 0,
                 data: Optional[bytes] = None, addr: int = 0, src=None):
        self.user_data = user_data
        self.res = res
        self.flags = flags
        self.data = data          # READ/RECV payload (host copies to addr)
        self.addr = addr
        self.src = src            # multishot source chain (reap re-arms it)

    def __repr__(self) -> str:
        return f"CQE(user_data={self.user_data}, res={self.res})"


class _Chain:
    """A linked run of SQEs; unlinked SQEs are chains of length one."""

    __slots__ = ("kernel", "proc", "sqes", "parked", "timer", "queued",
                 "done", "expired", "gate")

    def __init__(self, kernel, proc, sqes: List[SQE]):
        self.kernel = kernel
        self.proc = proc
        self.sqes = sqes
        self.parked: Optional["_Parked"] = None
        self.timer: Optional[threading.Timer] = None
        self.queued = False   # already on the ready list
        self.done = False
        self.expired = False  # armed timer fired; complete on next advance
        self.gate = False     # multishot data CQE posted but not yet reaped


class _Parked:
    """Waitqueue subscriber re-arming a blocked chain on readiness.

    The callback only records that the chain should be retried (under
    ``ring._lock`` — the check-then-set must be atomic against
    ``_process_ready`` popping on a syscall thread) and kicks the ring's
    waitqueue; the actual I/O step re-runs on a syscall-side thread
    (``_process_ready``), never on the waker's thread, so wakers keep
    their cheap-and-non-blocking contract.
    """

    __slots__ = ("ring", "chain", "wq", "mask")

    def __init__(self, ring: "IoURing", chain: _Chain, wq: WaitQueue,
                 mask: int):
        self.ring = ring
        self.chain = chain
        self.wq = wq
        self.mask = mask

    def __call__(self, events: int) -> None:
        if not (events & self.mask):
            return
        ring, chain = self.ring, self.chain
        with ring._lock:
            if chain.queued or chain.done:
                return
            chain.queued = True
            ring._ready.append(chain)
        ring.wq.wake(EPOLLIN)

    def detach(self) -> None:
        self.wq.unsubscribe(self)


class IoURing:
    """One submission/completion ring pair (the object behind the fd)."""

    def __init__(self, sq_entries: int = 128,
                 cq_entries: Optional[int] = None, trace=None,
                 setup_flags: int = 0):
        if sq_entries <= 0 or sq_entries > URING_MAX_ENTRIES:
            raise KernelError(EINVAL, f"ring entries {sq_entries}")
        size = 1
        while size < sq_entries:
            size <<= 1
        self.sq_entries = size
        self.cq_entries = cq_entries or size * 2
        self.setup_flags = setup_flags
        self.cq: Deque[CQE] = deque()
        self.cq_backlog: Deque[CQE] = deque()   # overflow parking lot
        self.overflow = 0                        # CQEs that ever overflowed
        self.submitted = 0
        self.completed = 0
        self.wq = WaitQueue()                    # ring fds are pollable
        self._lock = threading.Lock()
        # serializes chain advancement: submit / _process_ready run the
        # I/O steps under it so a chain is never advanced by two threads
        # at once (reentrant: POLL_ADD on one's own ring fd re-enters)
        self._process_lock = threading.RLock()
        self._ready: Deque[_Chain] = deque()
        self._chains: List[_Chain] = []
        self.registrations = {}
        self.guest_base: Optional[int] = None    # set by the WALI host
        # registered buffer table: (addr, len) per slot, validated once
        self.buf_table: Optional[List[Tuple[int, int]]] = None
        self.closed = False
        # --- SQPOLL state ---
        # the kernel-level shared submission queue: appending here is the
        # in-process analog of a guest storing SQEs into shared ring
        # memory (no syscall crossing); the poller drains it
        self.sq_queue: Deque[SQE] = deque()
        self.sq_wq = WaitQueue()                 # poller kick channel
        self.sq_need_wakeup = False
        self.sqpoll: Optional["SQPoller"] = None
        self.kernel = None                       # set by io_uring_setup
        self.owner = None                        # proc whose fds SQEs name
        # WALI-host hooks (installed at IORING_REGISTER_RING for SQPOLL
        # rings): drain the guest SQ ring / publish CQEs to the guest CQ
        # ring / mirror header flags — all without an enter crossing
        self.sq_drain_hook: Optional[Callable[[int], List[SQE]]] = None
        self.sq_peek_hook: Optional[Callable[[], int]] = None
        self.cq_flush_hook: Optional[Callable[[], int]] = None
        self.header_flags_hook: Optional[Callable[[], None]] = None
        # completions already published into the guest CQ ring (and not
        # yet reaped there) — SQPOLL blocking-enter waits count them too,
        # since the poller may flush a CQE guest-side before the waiter's
        # scan runs
        self.cq_avail_hook: Optional[Callable[[], int]] = None
        self._publish_lock = threading.Lock()
        # kernel observability (kernel/trace.py); None outside a kernel
        self.trace = trace
        self.counters = trace.counters if trace is not None else None

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(self, kernel, proc, sqes: List[SQE]) -> int:
        """Run a batch of SQEs; ops that would block park on waitqueues."""
        if self.closed:
            raise KernelError(EBADF, "ring is closed")
        if len(sqes) > self.sq_entries:
            raise KernelError(
                EINVAL, f"batch of {len(sqes)} exceeds the SQ ring "
                        f"({self.sq_entries} entries)")
        if self.counters is not None:
            self.counters.inc("uring.submitted", len(sqes))
        if self.trace is not None:
            self.trace.emit("uring_submit", pid=proc.pid, arg=len(sqes))
        with self._process_lock:
            self._chains = [c for c in self._chains if not c.done]
            for chain_sqes in _split_chains(sqes):
                chain = _Chain(kernel, proc, chain_sqes)
                self._chains.append(chain)
                self._advance(chain)
        self.submitted += len(sqes)
        return len(sqes)

    def register_buffers(self, entries: Sequence[Tuple[int, int]]) -> int:
        """Install the registered buffer table: one (addr, len) per slot.

        Validation (and, at the WALI layer, address translation) happens
        exactly once here; READ_FIXED / fixed-buffer RECV then complete
        into slots with no per-SQE translation.
        """
        table: List[Tuple[int, int]] = []
        for entry in entries:
            try:
                addr, length = entry
            except (TypeError, ValueError):
                raise KernelError(EINVAL, "buffer table entry shape")
            if length <= 0:
                raise KernelError(EINVAL, "zero-length registered buffer")
            table.append((int(addr), int(length)))
        if not table or len(table) > URING_MAX_REG_BUFFERS:
            raise KernelError(EINVAL, f"buffer table size {len(table)}")
        self.buf_table = table
        if self.counters is not None:
            self.counters.inc("uring.buffers_registered", len(table))
        if self.trace is not None:
            self.trace.emit("uring_register", arg=len(table))
        return len(table)

    def _fixed_slot(self, idx: int) -> Optional[Tuple[int, int]]:
        table = self.buf_table
        if table is None or not 0 <= idx < len(table):
            return None
        return table[idx]

    def _advance(self, chain: _Chain) -> None:
        """Run the chain head; on success keep going, on park stop."""
        while chain.sqes:
            sqe = chain.sqes[0]
            outcome = self._try_op(chain, sqe)
            if outcome is _RETRY:
                continue  # just subscribed: re-check once (lost-edge race)
            if outcome is None:
                return  # parked: readiness will re-queue the chain
            if chain.parked is not None:
                chain.parked.detach()
                chain.parked = None
            chain.sqes.pop(0)
            res, data, addr, cflags = outcome
            if res < 0 or not (sqe.flags & IOSQE_CQE_SKIP_SUCCESS):
                self._complete(CQE(sqe.user_data, res, flags=cflags,
                                   data=data, addr=addr))
            if res < 0 and chain.sqes:
                # a failed link short-circuits the rest of the chain
                for rest in chain.sqes:
                    if self.counters is not None:
                        self.counters.inc("uring.link_cancel")
                    self._complete(CQE(rest.user_data, -ECANCELED))
                chain.sqes = []
        chain.done = True

    def _try_op(self, chain: _Chain, sqe: SQE):
        """One non-blocking attempt.

        Returns ``(res, data, addr, cqe_flags)`` when the op finished,
        ``None`` when it parked (readiness or a timer will re-queue the
        chain), or ``_RETRY`` right after a waitqueue subscription.
        """
        op = sqe.opcode
        if op == IORING_OP_NOP:
            return 0, None, 0, 0
        if op == IORING_OP_TIMEOUT:
            if sqe.off <= 0:
                return -ETIME, None, 0, 0
            if chain.expired:
                chain.expired = False
                return -ETIME, None, 0, 0
            if chain.timer is None:
                self._arm_timer(chain, sqe.off)
            return None
        if op not in _FD_OPS:
            return -EINVAL, None, 0, 0
        file = sqe._file
        if file is None:
            try:
                file = chain.proc.fdtable.get(sqe.fd)
            except KernelError as exc:
                return -exc.errno, None, 0, 0
            sqe._file = file  # pin: a close/reuse cannot redirect the op
        if op in (IORING_OP_READ, IORING_OP_RECV, IORING_OP_READ_FIXED):
            return self._try_read(chain, sqe, file)
        if op in (IORING_OP_WRITE, IORING_OP_SEND):
            if sqe.flags & IOSQE_FIXED_BUFFER \
                    and self._fixed_slot(sqe.addr) is None:
                return -EINVAL, None, 0, 0
            payload = sqe.data if sqe.data is not None else b""
            try:
                # EPIPE surfaces as -EPIPE without SIGPIPE, like
                # io_uring's MSG_NOSIGNAL-style sends
                n = file.write(payload)
            except KernelError as exc:
                if exc.errno == EAGAIN:
                    return self._park(chain, file, _WRITE_WAKE)
                return -exc.errno, None, 0, 0
            return n, None, 0, 0
        if op == IORING_OP_ACCEPT:
            return self._try_accept(chain, sqe, file)
        if op == IORING_OP_POLL_ADD:
            events = (sqe.off & 0xFFFFFFFF) or EPOLLIN
            mask = file.poll_events() & (events | EPOLLERR | EPOLLHUP)
            if mask:
                return mask, None, 0, 0
            return self._park(chain, file, events | EPOLLERR | EPOLLHUP)
        if op == IORING_OP_FSYNC:
            if chain.expired:
                # the deferred device time elapsed (posted from the
                # deterministic _process_ready path, never the timer
                # thread): the fsync itself already ran at submission
                chain.expired = False
                return 0, None, 0, 0
            if chain.timer is not None:
                return None  # device time still accruing
            if file.kind != OpenFile.KIND_REG or file.inode is None:
                return -EINVAL, None, 0, 0
            bd = getattr(chain.kernel, "blockdev", None)
            if bd is None or file.inode.mapping is None:
                return 0, None, 0, 0  # nothing disk-backed: instant success
            # run the flush/commit now, but detach its device time from
            # the submitter: the CQE posts when the disk would be done
            cost_ns = bd.fsync_for_uring(
                file.inode, datasync=bool(sqe.off & IORING_FSYNC_DATASYNC))
            if cost_ns <= 0:
                return 0, None, 0, 0
            self._arm_timer(chain, cost_ns)
            return None
        raise AssertionError(f"unhandled opcode {op}")  # _FD_OPS is exhaustive

    def _try_read(self, chain: _Chain, sqe: SQE, file):
        """READ / RECV / READ_FIXED, single-shot or multishot."""
        addr, length, cflags = sqe.addr, sqe.length, 0
        fixed = (sqe.opcode == IORING_OP_READ_FIXED
                 or sqe.flags & IOSQE_FIXED_BUFFER)
        if fixed:
            slot = self._fixed_slot(sqe.addr)
            if slot is None:
                return -EINVAL, None, 0, 0
            addr, slot_len = slot
            length = min(length, slot_len) if length else slot_len
            cflags = (IORING_CQE_F_BUFFER
                      | (sqe.addr << IORING_CQE_BUFFER_SHIFT))
        multishot = (sqe.opcode == IORING_OP_RECV
                     and sqe.off & IORING_RECV_MULTISHOT)
        if multishot and (sqe.flags & IOSQE_IO_LINK or len(chain.sqes) > 1):
            return -EINVAL, None, 0, 0  # multishot refuses to link (Linux)
        if multishot and chain.gate:
            # one unreaped data CQE per armed op: the completion target
            # (a single slot) is in use until the guest reaps it
            return None
        try:
            data = file.read(length)
        except KernelError as exc:
            if exc.errno == EAGAIN:
                return self._park(chain, file, _READ_WAKE)
            return -exc.errno, None, 0, 0
        if fixed and self.counters is not None:
            self.counters.inc("uring.fixed_completions")
        if not multishot:
            return len(data), bytes(data), addr, cflags
        if not data:
            return 0, None, 0, 0  # EOF: terminal CQE without F_MORE
        chain.gate = True
        self._multishot_cqe(chain, sqe, len(data), data=bytes(data),
                            addr=addr, extra=cflags, gated=True)
        if chain.parked is None:
            return self._park(chain, file, _READ_WAKE)
        return None

    def _try_accept(self, chain: _Chain, sqe: SQE, file):
        if file.kind != OpenFile.KIND_SOCK:
            return -ENOTSOCK, None, 0, 0
        multishot = sqe.off & IORING_ACCEPT_MULTISHOT
        if multishot and (sqe.flags & IOSQE_IO_LINK or len(chain.sqes) > 1):
            return -EINVAL, None, 0, 0
        while True:
            try:
                conn = chain.kernel.net.accept_step(file.sock)
            except KernelError as exc:
                if exc.errno == EAGAIN:
                    return self._park(chain, file, _READ_WAKE)
                # terminal: errors complete without the MORE flag,
                # ending a multishot sequence (Linux semantics)
                return -exc.errno, None, 0, 0
            newfile = OpenFile(OpenFile.KIND_SOCK, sqe.length, sock=conn)
            nfd = chain.proc.fdtable.install(newfile)
            if not multishot:
                return nfd, None, 0, 0
            # drain every pending arrival: one CQE each, all flagged MORE
            self._multishot_cqe(chain, sqe, nfd)

    def _multishot_cqe(self, chain: _Chain, sqe: SQE, res: int,
                       data: Optional[bytes] = None, addr: int = 0,
                       extra: int = 0, gated: bool = False) -> None:
        if self.counters is not None:
            self.counters.inc("uring.multishot_cqes")
        if self.trace is not None:
            self.trace.emit("uring_multishot", pid=chain.proc.pid, arg=res)
        self._complete(CQE(sqe.user_data, res,
                           flags=IORING_CQE_F_MORE | extra, data=data,
                           addr=addr, src=chain if gated else None))

    def _park(self, chain: _Chain, file, mask: int):
        wq = file.wait_queue()
        if wq is None:
            return -EAGAIN, None, 0, 0  # unpollable: would-block surfaces
        if chain.parked is None:
            parked = _Parked(self, chain, wq, mask)
            chain.parked = parked
            wq.subscribe(parked)
            # readiness may have raced the subscription: re-check once
            # inline so the edge is never lost
            return _RETRY
        chain.parked.mask = mask
        return None

    def _arm_timer(self, chain: _Chain, delay_ns: int) -> None:
        timer = threading.Timer(delay_ns / 1e9, self._timer_fire,
                                args=(chain,))
        timer.daemon = True
        chain.timer = timer
        timer.start()

    def _timer_fire(self, chain: _Chain) -> None:
        """Timer expiry (the timerfd discipline): mark-and-queue under
        the ring lock only.  The completion itself — CQE content, link
        cancellation, ordering against reaps — runs on a syscall-side
        thread in ``_process_ready``, so expiry can never race a
        concurrent ``_advance`` and CQE order stays deterministic."""
        with self._lock:
            if self.closed or chain.done:
                return
            chain.expired = True
            chain.timer = None
            if not chain.queued:
                chain.queued = True
                self._ready.append(chain)
        self.wq.wake(EPOLLIN)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------

    def _complete(self, cqe: CQE) -> None:
        overflowed = False
        with self._lock:
            if len(self.cq) < self.cq_entries:
                self.cq.append(cqe)
            else:
                self.cq_backlog.append(cqe)
                self.overflow += 1
                overflowed = True
            self.completed += 1
        if self.counters is not None:
            self.counters.inc("uring.completed")
            if overflowed:
                self.counters.inc("uring.cq_overflow")
        if self.trace is not None:
            self.trace.emit("uring_complete", arg=cqe.res)
            if overflowed:
                self.trace.emit("uring_overflow", arg=cqe.user_data)
        self.wq.wake(EPOLLIN)

    def _process_ready(self) -> None:
        """Retry chains whose readiness fired (runs on a syscall thread)."""
        if not self._ready:
            return
        with self._process_lock:
            while True:
                with self._lock:
                    if not self._ready:
                        return
                    chain = self._ready.popleft()
                    chain.queued = False
                if self.closed or chain.done:
                    continue
                self._advance(chain)

    def cq_ready(self) -> int:
        self._process_ready()
        return len(self.cq) + len(self.cq_backlog)

    def reap(self, maxn: int) -> List[CQE]:
        """Pop up to ``maxn`` CQEs; backlogged overflow refills the ring.

        Reaping a gated multishot CQE re-queues its source chain: the
        guest has consumed the slot, so the op may post its next arrival.
        """
        self._process_ready()
        out: List[CQE] = []
        with self._lock:
            while len(out) < maxn and (self.cq or self.cq_backlog):
                cqe = (self.cq.popleft() if self.cq
                       else self.cq_backlog.popleft())
                out.append(cqe)
                src = cqe.src
                if src is not None and not src.done:
                    src.gate = False
                    if not src.queued:
                        src.queued = True
                        self._ready.append(src)
            while self.cq_backlog and len(self.cq) < self.cq_entries:
                self.cq.append(self.cq_backlog.popleft())
        return out

    @property
    def overflow_pending(self) -> bool:
        return bool(self.cq_backlog)

    def poll_events(self) -> int:
        self._process_ready()
        return EPOLLIN if (self.cq or self.cq_backlog) else 0

    # ------------------------------------------------------------------
    # SQPOLL plumbing
    # ------------------------------------------------------------------

    def sq_pending(self) -> int:
        """SQEs queued but not yet consumed (shared queue + guest ring)."""
        n = len(self.sq_queue)
        if self.sq_peek_hook is not None:
            n += self.sq_peek_hook()
        return n

    def sqpoll_drain(self, max_batch: int = 128) -> int:
        """Consume pending SQEs (guest ring first, then the kernel-level
        shared queue) and submit them on behalf of the ring's owner.
        Called by the poller — never by an ``enter`` crossing."""
        sqes: List[SQE] = []
        hook = self.sq_drain_hook
        if hook is not None:
            sqes.extend(hook(max_batch))
        while self.sq_queue and len(sqes) < max_batch:
            sqes.append(self.sq_queue.popleft())
        if not sqes:
            return 0
        if self.counters is not None:
            self.counters.inc("uring.sqpoll_submitted", len(sqes))
        for i in range(0, len(sqes), self.sq_entries):
            try:
                self.submit(self.kernel, self.owner,
                            sqes[i:i + self.sq_entries])
            except KernelError:
                if self.closed:
                    break  # closed mid-drain: the ring is going away
                raise
        return len(sqes)

    def set_need_wakeup(self, value: bool) -> None:
        self.sq_need_wakeup = value
        hook = self.header_flags_hook
        if hook is not None:
            hook()  # mirror IORING_SQ_NEED_WAKEUP into the guest header

    def sqpoll_kick(self) -> None:
        """IORING_ENTER_SQ_WAKEUP: one crossing re-arms a parked poller."""
        if self.counters is not None:
            self.counters.inc("uring.sqpoll_wakeups")
        if self.trace is not None:
            self.trace.emit("uring_sqpoll_wake")
        self.set_need_wakeup(False)
        self.sq_wq.wake(EPOLLIN)

    def close(self) -> None:
        self.closed = True
        if self.sqpoll is not None:
            self.sqpoll.request_stop()
        with self._lock:
            for chain in self._chains:
                chain.done = True
                if chain.timer is not None:
                    chain.timer.cancel()
                    chain.timer = None
            chains, self._chains = self._chains, []
            self._ready.clear()
        for chain in chains:
            if chain.parked is not None:
                chain.parked.detach()
                chain.parked = None
        self.sq_wq.wake(EPOLLHUP)
        self.wq.wake(EPOLLHUP)


class SQPoller:
    """The SQPOLL submission poller: a kernel task draining the SQ ring.

    Modeled on Linux's ``iou-sqp`` kthread, scheduled like
    :class:`~repro.kernel.sched.BackgroundSpinners` drives its guests: a
    real kernel process (visible in ``/proc``, owning a
    :class:`SchedEntity`) whose host thread brackets every drain pass in
    ``syscall_enter``/``syscall_exit`` — so the poller *contends for CPU
    slots under CFS like any guest task* and is preempted at pass
    boundaries when it exhausts its slice.

    While work arrives the poller loops at full tilt (zero ``enter``
    crossings per submission).  After ``sq_thread_idle`` without work it
    publishes ``IORING_SQ_NEED_WAKEUP`` and parks; the guest notices the
    flag in the shared header and pays one
    ``io_uring_enter(IORING_ENTER_SQ_WAKEUP)`` crossing to re-kick it.
    """

    def __init__(self, kernel, ring: IoURing, idle_ms: float = 1.0,
                 batch: int = 128):
        self.kernel = kernel
        self.ring = ring
        self.idle_ns = max(int(idle_ms * 1e6), 1)
        self.batch = batch
        self.polls = 0
        self.proc = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    def start(self) -> "SQPoller":
        self.proc = self.kernel.create_process(["iou-sqp"], stdio=False)
        self._thread = threading.Thread(
            target=self._run, name=f"iou-sqp-{self.proc.pid}", daemon=True)
        self._thread.start()
        return self

    def request_stop(self) -> None:
        """Ask the poller to exit (non-blocking; safe from ring.close)."""
        self._stop.set()
        self.ring.sq_wq.wake(EPOLLIN)

    def stop(self, timeout: float = 5.0) -> None:
        self.request_stop()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    @property
    def alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _run(self) -> None:
        kern, ring, proc = self.kernel, self.ring, self.proc
        sched = kern.sched
        counters = ring.counters
        notifier = ProcNotifier(proc)
        # wake on submissions (kicks) and on completions (to flush CQEs
        # into the guest ring without waiting out the doze)
        ring.sq_wq.subscribe(notifier)
        ring.wq.subscribe(notifier)
        idle_since: Optional[int] = None
        try:
            while not self._stop.is_set() and not ring.closed:
                sched.syscall_enter(proc)  # contend for a CPU slot
                try:
                    n = ring.sqpoll_drain(self.batch)
                    ring.cq_ready()  # run completions for woken chains
                    if ring.cq_flush_hook is not None:
                        ring.cq_flush_hook()
                finally:
                    sched.syscall_exit(proc)
                self.polls += 1
                if counters is not None:
                    counters.inc("uring.sqpoll_polls")
                if n:
                    idle_since = None
                    continue
                now = _time.monotonic_ns()
                if idle_since is None:
                    idle_since = now
                if now - idle_since < self.idle_ns:
                    # inside the idle window: brief doze, stay armed
                    sched.sleep(proc, _SQPOLL_DOZE_S, notifier)
                    continue
                # sq_thread_idle elapsed: publish NEED_WAKEUP and park.
                # Re-check for work *after* raising the flag — a guest
                # that queued just before the flag went up saw it clear
                # and will not kick, so we must not sleep on its SQEs.
                ring.set_need_wakeup(True)
                if counters is not None:
                    counters.inc("uring.sqpoll_idles")
                if ring.trace is not None:
                    ring.trace.emit("uring_sqpoll_park", pid=proc.pid,
                                    arg=self.polls)
                if ring.sq_pending() == 0 and not self._stop.is_set() \
                        and not ring.closed:
                    sched.sleep(proc, _SQPOLL_PARK_S, notifier)
                ring.set_need_wakeup(False)
                idle_since = None
        finally:
            ring.sq_wq.unsubscribe(notifier)
            ring.wq.unsubscribe(notifier)
            try:
                kern.call(proc, "exit", 0)
            except Exception:
                pass


def _split_chains(sqes: List[SQE]) -> List[List[SQE]]:
    """Group a submission batch into IOSQE_IO_LINK chains."""
    chains: List[List[SQE]] = []
    current: List[SQE] = []
    for sqe in sqes:
        current.append(sqe)
        if not (sqe.flags & IOSQE_IO_LINK):
            chains.append(current)
            current = []
    if current:
        chains.append(current)  # a trailing link flag ends its chain
    return chains
