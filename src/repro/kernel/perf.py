"""perf events: sampling profiler + counting events as epollable fds.

The ``perf_event_open`` analogue (§ the paper's evaluation is built on
profiling; this closes the "where does guest time go" gap the
tracepoint layer cannot answer).  Two event kinds, both living behind
ordinary file descriptors (``OpenFile.KIND_PERF``):

* **sampling events** — a deterministic sampling clock advances by
  :data:`PERF_OPPORTUNITY_NS` at every *opportunity* (a syscall dispatch
  by an in-scope task, or a scheduler tick over the running set).  When
  the clock crosses the event's period, one variable-length
  ``PERF_RECORD_SAMPLE`` is captured: pid, the task's vruntime/nice,
  and the guest **wasm call stack** walked from the interpreter's frame
  stack (``Process.machine.frames``).  Records land in a bounded
  :class:`PerfRing` that reuses the :class:`~.trace.TraceBuffer`
  overflow discipline — at most ``capacity`` samples plus **one**
  ``PERF_RECORD_LOST`` marker whose count grows in place.

  The clock is **per (event, pid)**: a task's sample sequence depends
  only on its own opportunity stream (its deterministic syscall
  sequence), never on cross-task interleaving — the same per-flow
  discipline the WAN impairment RNG uses.  Tick-driven opportunities
  (contended kernels only) are best-effort on top.

* **counting events** — bound to a :class:`~.trace.CounterRegistry`
  name (``sched.*``, ``uring.*``, ``block.cache_hit``,
  ``syscall.<name>``...), to any tracepoint (``tracepoint:<point>``,
  counted via an emit probe that fires even while trace recording is
  off), or to ``instructions`` (wasm ops retired, summed from
  ``Machine.steps`` over the event's scope).  ``ioctl`` drives
  enable / disable / reset; ``read`` returns the 8-byte current value.

Scope (the ``pid`` argument of ``perf_event_open``): ``0`` = the
calling process, ``> 0`` = that pid, ``-1`` = every process.

Wire format — every record starts with an 8-byte header
``<IHH`` + 2 pad (``size`` includes the header)::

    u32 size   total record bytes
    u16 type   PERF_RECORD_SAMPLE (9) | PERF_RECORD_LOST (2)
    u16 misc   0

``PERF_RECORD_SAMPLE`` body (``<QiiQI``)::

    u64 time_ns      the event's deterministic sampling clock
    i32 pid          sampled task
    i32 nice         its nice value at the sample
    u64 vruntime_ns  its CFS vruntime at the sample
    u32 nframes      call-stack depth, then nframes x (u16 len + name)

``PERF_RECORD_LOST`` body: one ``u64`` — samples swallowed by the full
ring.  Decode captures with :func:`decode_perf_records`.
"""

from __future__ import annotations

import struct
import threading
from collections import deque
from typing import Deque, List, NamedTuple, Optional, Tuple, Union

from .errno import EAGAIN, EINVAL, ENOTTY, KernelError
from .eventpoll import EPOLLIN, WaitQueue
from .trace import TRACEPOINT_IDS
from .vfs import CharDevice

# ---- ABI constants (the real Linux values) --------------------------------

PERF_EVENT_IOC_ENABLE = 0x2400
PERF_EVENT_IOC_DISABLE = 0x2401
PERF_EVENT_IOC_REFRESH = 0x2402
PERF_EVENT_IOC_RESET = 0x2403

PERF_RECORD_LOST = 2
PERF_RECORD_SAMPLE = 9

PERF_FLAG_FD_CLOEXEC = 8

# attr.type values (a compact repro-specific attr, not the 128-byte
# perf_event_attr: config is a *name* in the observability namespace)
PERF_TYPE_COUNTER = 0
PERF_TYPE_TRACEPOINT = 1
PERF_TYPE_SAMPLING = 2

# the deterministic sampling clock: 1 µs per opportunity, like the
# trace clock's 1 µs per event
PERF_OPPORTUNITY_NS = 1_000

PERF_DEFAULT_RING_CAPACITY = 4096
PERF_MAX_SAMPLE_RATE_DEFAULT = 100_000

_HEADER = struct.Struct("<IHH")
_SAMPLE_BODY = struct.Struct("<QiiQI")
_FRAME_LEN = struct.Struct("<H")
_LOST_BODY = struct.Struct("<Q")

PERF_HEADER_SIZE = _HEADER.size           # 8


class PerfAttr:
    """The decoded ``perf_event_open`` attribute block.

    Guest layout (24 bytes, ``<IIQII`` — see ``wali/layout.py``):
    ``u32 type``, ``u32 config_ptr`` (NUL-terminated name, read
    host-side), ``u64 sample_freq`` (Hz), ``u32 ring_capacity``
    (0 = default), ``u32 disabled`` (start disabled, arm via ioctl).
    """

    __slots__ = ("type", "config", "sample_freq", "ring_capacity",
                 "disabled")

    def __init__(self, type: int = PERF_TYPE_COUNTER, config: str = "",
                 sample_freq: int = 0, ring_capacity: int = 0,
                 disabled: bool = False):
        self.type = type
        self.config = config
        self.sample_freq = sample_freq
        self.ring_capacity = ring_capacity
        self.disabled = bool(disabled)


class PerfSample(NamedTuple):
    """One decoded record (samples and lost markers share the shape)."""

    type: int
    time_ns: int
    pid: int
    nice: int
    vruntime_ns: int
    frames: Tuple[str, ...]
    lost: int

    @property
    def is_lost_marker(self) -> bool:
        return self.type == PERF_RECORD_LOST


def encode_sample(time_ns: int, pid: int, nice: int, vruntime_ns: int,
                  frames: Tuple[str, ...]) -> bytes:
    names = [f.encode(errors="replace")[:255] for f in frames]
    body = _SAMPLE_BODY.pack(time_ns, pid, nice, vruntime_ns, len(names))
    parts = [body]
    for n in names:
        parts.append(_FRAME_LEN.pack(len(n)))
        parts.append(n)
    payload = b"".join(parts)
    return _HEADER.pack(PERF_HEADER_SIZE + len(payload),
                        PERF_RECORD_SAMPLE, 0) + payload


def encode_lost(lost: int) -> bytes:
    return _HEADER.pack(PERF_HEADER_SIZE + _LOST_BODY.size,
                        PERF_RECORD_LOST, 0) + _LOST_BODY.pack(lost)


def decode_perf_records(data: bytes) -> List[PerfSample]:
    """Parse a perf fd capture back into :class:`PerfSample` rows.

    A trailing partial record (a reader that stopped mid-stream) is
    ignored, exactly like a short trace_pipe slice.
    """
    out: List[PerfSample] = []
    off = 0
    while off + PERF_HEADER_SIZE <= len(data):
        size, rtype, _misc = _HEADER.unpack_from(data, off)
        if size < PERF_HEADER_SIZE or off + size > len(data):
            break
        body = data[off + PERF_HEADER_SIZE : off + size]
        if rtype == PERF_RECORD_SAMPLE and len(body) >= _SAMPLE_BODY.size:
            t, pid, nice, vrt, nframes = _SAMPLE_BODY.unpack_from(body, 0)
            frames: List[str] = []
            p = _SAMPLE_BODY.size
            for _ in range(nframes):
                if p + _FRAME_LEN.size > len(body):
                    break
                (ln,) = _FRAME_LEN.unpack_from(body, p)
                p += _FRAME_LEN.size
                frames.append(body[p : p + ln].decode(errors="replace"))
                p += ln
            out.append(PerfSample(PERF_RECORD_SAMPLE, t, pid, nice, vrt,
                                  tuple(frames), 0))
        elif rtype == PERF_RECORD_LOST and len(body) >= _LOST_BODY.size:
            (lost,) = _LOST_BODY.unpack_from(body, 0)
            out.append(PerfSample(PERF_RECORD_LOST, 0, 0, 0, 0, (), lost))
        off += size
    return out


class _LostMarker:
    """The in-place overflow marker (count grows while it sits queued)."""

    __slots__ = ("count",)

    def __init__(self):
        self.count = 1


class PerfRing:
    """Bounded ring of variable-length sample records.

    The :class:`~.trace.TraceBuffer` overflow discipline, ported to
    variable-length records: never more than ``capacity`` samples plus
    one lost marker, wherever a partial drain left it.  The ring is the
    epollable object behind a sampling perf fd (``wq`` /
    ``poll_events`` / ``read_step``); reads drain *whole* records
    (EAGAIN empty, EINVAL when the buffer cannot hold the next record).
    """

    def __init__(self, capacity: int = PERF_DEFAULT_RING_CAPACITY):
        if capacity <= 0:
            raise KernelError(EINVAL, "perf ring capacity must be > 0")
        self.capacity = capacity
        self._q: Deque[Union[bytes, _LostMarker]] = deque()
        self._marker: Optional[_LostMarker] = None
        self._lock = threading.Lock()
        self.lost = 0             # samples ever swallowed
        self.total = 0            # samples ever pushed (kept or lost)
        self.wq = WaitQueue()

    def push(self, record: bytes) -> None:
        with self._lock:
            self.total += 1
            if len(self._q) - (1 if self._marker is not None else 0) \
                    >= self.capacity:
                self.lost += 1
                if self._marker is not None:
                    self._marker.count += 1
                    return
                self._marker = _LostMarker()
                self._q.append(self._marker)
            else:
                self._q.append(record)
        self.wq.wake(EPOLLIN)

    # ---- fd surface ----

    def read_step(self, length: int) -> bytes:
        with self._lock:
            if not self._q:
                raise KernelError(EAGAIN, "perf ring empty")
            first = self._q[0]
            first_len = len(encode_lost(first.count)) \
                if isinstance(first, _LostMarker) else len(first)
            if length < first_len:
                raise KernelError(EINVAL, "buffer too small for a record")
            out = bytearray()
            while self._q:
                ent = self._q[0]
                data = encode_lost(ent.count) \
                    if isinstance(ent, _LostMarker) else ent
                if len(out) + len(data) > length:
                    break
                self._q.popleft()
                if ent is self._marker:
                    self._marker = None
                out += data
            return bytes(out)

    def poll_events(self) -> int:
        return EPOLLIN if self._q else 0

    # ---- inspection ----

    def __len__(self) -> int:
        return len(self._q)

    def clear(self) -> None:
        with self._lock:
            self._q.clear()
            self._marker = None


def _walk_frames(proc) -> Tuple[str, ...]:
    """The guest wasm call stack, outermost first.

    Best effort: syscall-driven samples walk the *calling* task's own
    machine (parked inside the host import call, every frame's pc
    committed — a consistent snapshot); tick-driven samples may race a
    running interpreter, so any surprise degrades to a single ``?``.
    """
    machine = getattr(proc, "machine", None)
    if machine is None:
        return ()
    try:
        names = []
        for frame in machine.frames:
            name = getattr(frame[0], "name", None)
            names.append(name if name else "?")
        return tuple(names)
    except Exception:
        return ("?",)


class SamplingPerfEvent:
    """A profiling event: periodic call-stack samples into a ring."""

    kind = "sampling"

    def __init__(self, perf: "PerfSubsystem", scope_pid: int, freq_hz: int,
                 capacity: int, enabled: bool = True):
        self.perf = perf
        self.scope = scope_pid
        self.freq_hz = freq_hz
        self.period_ns = max(10**9 // freq_hz, 1)
        self.ring = PerfRing(capacity)
        self.enabled = enabled
        self.samples = 0
        self.throttled = 0
        # pid -> [clock_ns, next_due_ns]: per-task determinism (see
        # module docstring)
        self._clocks = {}
        self._lock = threading.Lock()

    # ---- fd surface (delegated to the ring) ----

    @property
    def wq(self) -> WaitQueue:
        return self.ring.wq

    def poll_events(self) -> int:
        return self.ring.poll_events()

    def read_step(self, length: int) -> bytes:
        return self.ring.read_step(length)

    def close(self) -> None:
        self.perf._detach(self)

    # ---- control ----

    def ioctl(self, request: int, arg: int = 0) -> int:
        if request in (PERF_EVENT_IOC_ENABLE, PERF_EVENT_IOC_REFRESH):
            self.enabled = True
            self.perf._refresh()
        elif request == PERF_EVENT_IOC_DISABLE:
            self.enabled = False
            self.perf._refresh()
        elif request == PERF_EVENT_IOC_RESET:
            with self._lock:
                self._clocks.clear()
                self.samples = 0
                self.throttled = 0
            self.ring.clear()
        else:
            raise KernelError(ENOTTY, f"perf ioctl 0x{request:x}")
        return 0

    # ---- sampling ----

    def matches(self, pid: int) -> bool:
        return self.scope == -1 or self.scope == pid

    def opportunity(self, proc) -> None:
        """One opportunity for ``proc``; sample if the period elapsed."""
        if not self.enabled:
            return
        with self._lock:
            st = self._clocks.get(proc.pid)
            if st is None:
                st = self._clocks[proc.pid] = [0, self.period_ns]
            st[0] += PERF_OPPORTUNITY_NS
            if st[0] < st[1]:
                return
            st[1] += self.period_ns
            if st[1] <= st[0]:
                # catch-up would burst: clamp forward and count the
                # throttle, like kernel.perf_event_max_sample_rate does
                st[1] = st[0] + self.period_ns
                self.throttled += 1
            now = st[0]
        se = getattr(proc, "se", None)
        nice = se.nice if se is not None else 0
        vrt = se.vruntime_ns if se is not None else 0
        record = encode_sample(now, proc.pid, nice, vrt,
                               _walk_frames(proc))
        self.samples += 1
        self.ring.push(record)


class CountingPerfEvent:
    """A counter event: reads an 8-byte monotone value, never consumes.

    ``config`` names the source:

    * a :class:`~.trace.CounterRegistry` key (``sched.switch``,
      ``syscall.read``, ``block.cache_hit``...),
    * ``tracepoint:<point>`` — a probe on the emit path that counts
      firings even while trace recording is off,
    * ``instructions`` — wasm ops retired (``Machine.steps``) summed
      over the event's scope.

    Enable/disable follow the offset discipline: the value is
    ``accumulated + (raw - enabled_at)`` while enabled, so a disabled
    interval contributes nothing.
    """

    kind = "counting"

    def __init__(self, perf: "PerfSubsystem", config: str, scope_pid: int,
                 enabled: bool = True):
        self.perf = perf
        self.config = config
        self.scope = scope_pid
        self.wq = WaitQueue()     # counters are always readable
        self._probe = None
        self._hits = 0
        if config.startswith("tracepoint:"):
            point = config[len("tracepoint:"):]
            if point not in TRACEPOINT_IDS:
                raise KernelError(EINVAL, f"unknown tracepoint {point!r}")
            trace = perf.kernel.trace if perf.kernel is not None else None
            if trace is None:
                raise KernelError(EINVAL, "tracing is ablated")

            def probe(pid: int, arg: int, info) -> None:
                if self.scope == -1 or self.scope == pid:
                    self._hits += 1

            self._probe = (trace, point, probe)
            trace.add_probe(point, probe)
        self.enabled = False
        self._acc = 0
        self._base = 0
        if enabled:
            self.ioctl(PERF_EVENT_IOC_ENABLE)

    # ---- the raw source ----

    def _raw(self) -> int:
        if self._probe is not None:
            return self._hits
        if self.config == "instructions":
            kernel = self.perf.kernel
            total = 0
            if kernel is not None:
                for p in list(kernel.processes.values()):
                    if self.scope != -1 and p.pid != self.scope:
                        continue
                    m = getattr(p, "machine", None)
                    if m is not None:
                        total += getattr(m, "steps", 0)
            return total
        kernel = self.perf.kernel
        trace = kernel.trace if kernel is not None else None
        return trace.counters.get(self.config) if trace is not None else 0

    def value(self) -> int:
        if self.enabled:
            return self._acc + (self._raw() - self._base)
        return self._acc

    # ---- fd surface ----

    def poll_events(self) -> int:
        return EPOLLIN

    def read_step(self, length: int) -> bytes:
        if length < 8:
            raise KernelError(EINVAL, "perf counter read needs 8 bytes")
        return self.value().to_bytes(8, "little", signed=False)

    def close(self) -> None:
        if self._probe is not None:
            trace, point, probe = self._probe
            trace.remove_probe(point, probe)
            self._probe = None

    # ---- control ----

    def ioctl(self, request: int, arg: int = 0) -> int:
        if request in (PERF_EVENT_IOC_ENABLE, PERF_EVENT_IOC_REFRESH):
            if not self.enabled:
                self._base = self._raw()
                self.enabled = True
        elif request == PERF_EVENT_IOC_DISABLE:
            if self.enabled:
                self._acc += self._raw() - self._base
                self.enabled = False
        elif request == PERF_EVENT_IOC_RESET:
            self._acc = 0
            self._base = self._raw()
        else:
            raise KernelError(ENOTTY, f"perf ioctl 0x{request:x}")
        return 0


class PerfSubsystem:
    """Per-kernel perf state: open events and the opportunity drivers.

    ``active`` is the hot-path gate: one attribute load + truth test in
    ``Kernel.call`` when no enabled sampling event exists, the same
    disabled-cost discipline as the tracepoint mask check.
    """

    def __init__(self, kernel):
        self.kernel = kernel
        self.max_sample_rate = PERF_MAX_SAMPLE_RATE_DEFAULT
        self.active = False
        self.events_opened = 0
        self._sampling: List[SamplingPerfEvent] = []
        self._lock = threading.Lock()

    # ---- event lifecycle ----

    def open_event(self, proc, attr: PerfAttr, pid: int, cpu: int,
                   group_fd: int, flags: int):
        if pid < -1:
            raise KernelError(EINVAL, f"bad perf pid {pid}")
        if group_fd != -1:
            raise KernelError(EINVAL, "perf event groups not supported")
        scope = proc.pid if pid == 0 else pid
        if attr.type == PERF_TYPE_SAMPLING:
            freq = int(attr.sample_freq)
            if freq <= 0 or freq > self.max_sample_rate:
                raise KernelError(
                    EINVAL, f"sample_freq {freq} outside "
                    f"1..{self.max_sample_rate} "
                    "(/proc/sys/kernel/perf_event_max_sample_rate)")
            capacity = attr.ring_capacity or PERF_DEFAULT_RING_CAPACITY
            event = SamplingPerfEvent(self, scope, freq, capacity,
                                      enabled=not attr.disabled)
            with self._lock:
                self._sampling.append(event)
            self._refresh()
        elif attr.type == PERF_TYPE_TRACEPOINT:
            event = CountingPerfEvent(self, f"tracepoint:{attr.config}",
                                      scope, enabled=not attr.disabled)
        elif attr.type == PERF_TYPE_COUNTER:
            if not attr.config:
                raise KernelError(EINVAL, "perf counter needs a config name")
            event = CountingPerfEvent(self, attr.config, scope,
                                      enabled=not attr.disabled)
        else:
            raise KernelError(EINVAL, f"bad perf event type {attr.type}")
        self.events_opened += 1
        return event

    def _detach(self, event: SamplingPerfEvent) -> None:
        with self._lock:
            try:
                self._sampling.remove(event)
            except ValueError:
                pass
        self._refresh()

    def _refresh(self) -> None:
        self.active = any(ev.enabled for ev in self._sampling)

    # ---- opportunity drivers ----

    def on_syscall(self, proc) -> None:
        """A syscall dispatch by ``proc``: deterministic opportunity."""
        for event in self._sampling:
            if event.enabled and event.matches(proc.pid):
                event.opportunity(proc)

    def on_tick(self, running) -> None:
        """A scheduler tick over the running set: best-effort sampling
        of user-mode tasks (contended kernels only; see module doc)."""
        if not self.active:
            return
        for proc in list(running):
            for event in self._sampling:
                if event.enabled and event.matches(proc.pid):
                    event.opportunity(proc)

    # ---- reporting (/proc/perf) ----

    def status_text(self) -> str:
        with self._lock:
            sampling = list(self._sampling)
        lines = [
            f"perf_event_max_sample_rate: {self.max_sample_rate}",
            f"events_opened: {self.events_opened}",
            f"sampling_events: {len(sampling)}",
            f"active: {1 if self.active else 0}",
        ]
        for i, ev in enumerate(sampling):
            lines.append(
                f"  event#{i}: scope={ev.scope} freq_hz={ev.freq_hz} "
                f"period_ns={ev.period_ns} "
                f"{'on' if ev.enabled else 'off'} "
                f"samples={ev.samples} lost={ev.ring.lost} "
                f"throttled={ev.throttled}")
        return "\n".join(lines) + "\n"


class PerfMaxRateDevice(CharDevice):
    """/proc/sys/kernel/perf_event_max_sample_rate: a writable knob
    with the /proc/sys/vm validation discipline."""

    def __init__(self, perf: PerfSubsystem):
        self.perf = perf

    def read(self, length: int) -> bytes:
        return f"{self.perf.max_sample_rate}\n".encode()[:length]

    def write(self, data: bytes) -> int:
        try:
            value = int(data.split()[0])
        except (ValueError, IndexError):
            raise KernelError(EINVAL,
                              "bad value for perf_event_max_sample_rate")
        if not 1 <= value <= 10**9:
            raise KernelError(EINVAL,
                              "perf_event_max_sample_rate out of range")
        self.perf.max_sample_rate = value
        return len(data)
