"""The kernel object: boot, process table, syscall dispatch, blocking.

One :class:`Kernel` instance is a self-contained Linux-like OS.  Syscalls are
methods named ``sys_<name>`` (provided by the mixins in
:mod:`repro.kernel.calls`); :meth:`Kernel.call` dispatches by name, counts
invocations (Fig. 2), and accounts kernel time per thread group (Fig. 7).

Blocking syscalls are schedule points: they park the task off the run
queue through :meth:`repro.kernel.sched.Scheduler.sleep` (releasing its
CPU slot for the duration), and every blocking loop re-checks for
deliverable signals on wakeup, so signal generation interrupts syscalls
with ``EINTR`` exactly like Linux.  ``Kernel.call`` itself acquires a
CPU slot on entry and honors preemption on exit, so syscall latency
under load includes *runnable-wait* (contention), accounted separately
in ``sched_wait_ns``.
"""

from __future__ import annotations

import random
import threading
import time as _time
from collections import Counter, defaultdict
from typing import Callable, Dict, List, Optional

from .arch import X86_64
from .calls import (
    EventCalls, FSCalls, MemCalls, MiscCalls, NetCalls, NotifyCalls,
    PerfCalls, ProcCalls, SigCalls, URingCalls,
)
from . import procfs
from .errno import EAGAIN, EINTR, ENOSYS, EPIPE, ETIMEDOUT, KernelError
from .eventpoll import ProcNotifier
from .fdtable import FDTable, OpenFile
from .process import Process, STATE_RUNNING
from .signals import SIGPIPE
from .vfs import (
    Inode, NullDevice, O_RDWR, RandomDevice, S_IFCHR, TTYDevice, VFS,
    ZeroDevice,
)

_BLOCK_SLICE_S = 0.002  # blocking syscalls re-check readiness every 2 ms
# with waitqueue notifiers subscribed, wakeups are event-driven; the slice
# is only a lost-wakeup safety net and can be much coarser
_WQ_SLICE_S = 0.05


class _TimedOut(Exception):
    pass


class Kernel(FSCalls, ProcCalls, SigCalls, NetCalls, MemCalls, MiscCalls,
             EventCalls, URingCalls, NotifyCalls, PerfCalls):
    """A self-contained virtual Linux kernel."""

    def __init__(self, machine: str = X86_64, ncpus: int = 4,
                 rng_seed: int = 0xC0FFEE,
                 storage_latency_ns_per_4k: int = 0,
                 net_backend=None, sched=None, trace=None, block=None):
        from .block import create_blockfs
        from .net import create_backend
        from .perf import PerfSubsystem
        from .sched import create_scheduler
        from .trace import create_trace

        self.machine = machine
        self.ncpus = ncpus
        # storage device model: simulated latency per 4 KiB of regular-file
        # I/O (0 = infinitely fast in-memory storage).  Used by benchmarks
        # so I/O-heavy workloads show realistic kernel-time shares (the
        # paper's testbed has real disks; see DESIGN.md substitutions).
        self.storage_latency_ns_per_4k = storage_latency_ns_per_4k
        self.vfs = VFS()
        # kernel observability (kernel/trace.py): tracepoints, the shared
        # counter registry, and per-syscall latency histograms.  Specs:
        # None = compiled in but disabled, "on" = enabled from boot,
        # "off"/"none" = ablated entirely (no /proc/trace* files either).
        # Created before the scheduler and the net backend so both can
        # pick up their trace/counter sinks at construction time.
        self.trace = create_trace(trace)
        # network device model: a backend spec string ("loopback",
        # "wan:latency_ms=5,loss=0.01", "host:optin=1"), a NetBackend
        # instance, or None for the default loopback stack (kernel/net/).
        self.net = create_backend(net_backend)
        self.net.trace = self.trace
        self.net.counters = \
            self.trace.counters if self.trace is not None else None
        self.processes: Dict[int, Process] = {}
        self.table_lock = threading.RLock()
        self._next_pid = 1
        self.futex_waiters: Dict[tuple, list] = {}
        # PI futexes: key -> {"owner": Process|None, "waiters": [Process]}
        self.futex_pi: Dict[tuple, dict] = {}
        # guards futex owner/waiter transitions: with per-CPU slots two
        # handlers can genuinely race on the same futex word (never held
        # while blocking or while holding the scheduler's condition)
        self.futex_lock = threading.Lock()
        self.syslog_buffer: List[str] = []
        self.rng = random.Random(rng_seed)
        self.boot_monotonic_ns = _time.monotonic_ns()

        # tracing / accounting
        self.syscall_counts: Counter = Counter()
        self.proc_syscall_counts: Dict[int, Counter] = defaultdict(Counter)
        self.kernel_time_ns: Dict[int, int] = defaultdict(int)
        self.blocked_time_ns: Dict[int, int] = defaultdict(int)
        # runnable-but-waiting-for-a-CPU time (pure contention; ~0 idle)
        self.sched_wait_ns: Dict[int, int] = defaultdict(int)
        self.trace_hooks: List[Callable] = []
        self.trace_log: Optional[list] = None  # set to [] to record calls

        # CPU model: a run queue with `ncpus` slots and time slices; spec
        # strings ("cpus=1,slice_us=50", "off") or a Scheduler instance
        self.sched = create_scheduler(sched, ncpus_default=ncpus,
                                      kernel=self)

        # perf events (kernel/perf.py): sampling profiler + counting
        # events behind perf_event_open.  `perf.active` gates the
        # per-syscall and per-tick hooks, keeping the disabled cost to
        # one attribute load.
        self.perf = PerfSubsystem(self)

        # block layer (kernel/block.py): a disk + page cache + writeback
        # under the VFS's regular files at its mountpoint (default
        # /data).  Specs: None = default 8 MiB disk, "off"/"none" =
        # purely memory-backed VFS, "block:blocks=...,seek_us=...",
        # a Disk (remount an image), or a BlockFS instance.
        self.blockdev = create_blockfs(block, trace=self.trace)

        self.console = TTYDevice()
        self._boot_fs()
        self._init_proc = self._make_init()

    # ------------------------------------------------------------------
    # boot
    # ------------------------------------------------------------------

    def _boot_fs(self) -> None:
        v = self.vfs
        for d in ("/tmp", "/home", "/etc", "/dev", "/proc", "/bin",
                  "/usr/bin", "/usr/lib", "/var/log", "/root"):
            v.mkdirs(d)
        v.write_file("/etc/hostname", b"wali-repro\n")
        v.write_file("/etc/passwd",
                     b"root:x:0:0:root:/root:/bin/sh\n"
                     b"user:x:1000:1000:user:/home/user:/bin/sh\n")
        v.write_file("/etc/group", b"root:x:0:\nuser:x:1000:\n")
        v.write_file("/etc/hosts", b"127.0.0.1 localhost\n")
        v.mknod_device("/dev/null", NullDevice())
        v.mknod_device("/dev/zero", ZeroDevice())
        v.mknod_device("/dev/random", RandomDevice())
        v.mknod_device("/dev/urandom", RandomDevice())
        v.mknod_device("/dev/tty", self.console)
        v.mknod_device("/dev/console", self.console)
        if self.blockdev is not None:
            self.blockdev.mount(v)
        procfs.register_base(self)

    def _make_init(self) -> Process:
        init = Process(self.alloc_pid(), 0)
        init.comm = "init"
        init.cwd = self.vfs.root
        init.uid = init.euid = 0
        init.gid = init.egid = 0
        self.processes[init.pid] = init
        self.register_procfs(init)
        return init

    # ------------------------------------------------------------------
    # process table
    # ------------------------------------------------------------------

    def alloc_pid(self) -> int:
        with self.table_lock:
            pid = self._next_pid
            self._next_pid += 1
            return pid

    def create_process(self, argv: Optional[List[str]] = None,
                       environ: Optional[Dict[str, str]] = None,
                       cwd: str = "/", ppid: Optional[int] = None,
                       stdio: bool = True) -> Process:
        """Spawn a fresh userspace process (what the runtime does per app)."""
        proc = Process(self.alloc_pid(),
                       ppid if ppid is not None else self._init_proc.pid)
        proc.argv = list(argv or [])
        proc.environ = dict(environ or {})
        proc.comm = (proc.argv[0].rsplit("/", 1)[-1] if proc.argv else "")[:15]
        proc.cwd = self.vfs.lookup(cwd)
        if stdio:
            tty = self.vfs.lookup("/dev/tty")
            for _ in range(3):
                proc.fdtable.install(
                    OpenFile(OpenFile.KIND_CHR, O_RDWR, inode=tty,
                             path="/dev/tty"))
        with self.table_lock:
            self.processes[proc.pid] = proc
        self._init_proc.children.append(proc.pid)
        self.register_procfs(proc)
        return proc

    def process(self, pid: int) -> Process:
        proc = self.processes.get(pid)
        if proc is None:
            raise KeyError(f"no process {pid}")
        return proc

    # ---- procfs per-process entries (kernel/procfs.py) ----

    def register_procfs(self, proc: Process) -> None:
        procfs.register_process(self, proc)

    def unregister_procfs(self, proc: Process) -> None:
        procfs.unregister_process(self, proc)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def call(self, proc: Process, name: str, *args, **kwargs):
        """Invoke syscall ``name`` with tracing and time accounting.

        Besides the pre-existing counters, every call feeds the
        observability layer: ``syscall_enter``/``syscall_exit``
        tracepoints (exit carries ``-errno`` in ``arg``, 0 on success)
        and the always-on per-syscall log2 latency histograms.  The
        elapsed wall time is split into *service* (time actually inside
        the handler) and *runnable-wait* (time spent queued for a CPU
        slot, read back from ``sched_wait_ns``) so tail-latency reports
        can separate kernel cost from contention.
        """
        method = getattr(self, f"sys_{name}", None)
        if method is None:
            raise KernelError(ENOSYS, name)
        trace = self.trace
        tgid = proc.tgid
        t0 = _time.perf_counter_ns()
        w0 = self.sched_wait_ns.get(tgid, 0) if trace is not None else 0
        self.sched.syscall_enter(proc)
        err = 0
        if trace is not None:
            trace.emit("syscall_enter", pid=proc.pid, info=name)
        try:
            result = method(proc, *args, **kwargs)
            bd = self.blockdev
            if bd is not None and bd.has_pending():
                # accrued disk time is settled here, at syscall exit,
                # parking the task on the scheduler like any blocking
                # primitive (the I/O wait is a schedule point)
                bd.settle(self, proc)
            return result
        except KernelError as exc:
            err = exc.errno
            raise
        finally:
            bd = self.blockdev
            if bd is not None:
                bd.drop_pending()  # error paths forfeit unsettled cost
            self.sched.syscall_exit(proc)
            dt = _time.perf_counter_ns() - t0
            self.syscall_counts[name] += 1
            self.proc_syscall_counts[tgid][name] += 1
            self.kernel_time_ns[tgid] += dt
            proc.rusage.stime_ns += dt
            if trace is not None:
                wait = self.sched_wait_ns.get(tgid, 0) - w0
                trace.record_syscall(name, dt - wait, wait)
                trace.counters.inc("syscall." + name)
                trace.emit("syscall_exit", pid=proc.pid, arg=-err,
                           info=name, args=(-err, dt - wait, wait))
            perf = self.perf
            if perf.active:
                perf.on_syscall(proc)
            if self.trace_log is not None:
                self.trace_log.append((proc.pid, name))
            for hook in self.trace_hooks:
                hook(proc, name, dt)

    def has_syscall(self, name: str) -> bool:
        return hasattr(self, f"sys_{name}")

    def implemented_syscalls(self) -> List[str]:
        return sorted(n[4:] for n in dir(self) if n.startswith("sys_"))

    # ------------------------------------------------------------------
    # blocking machinery
    # ------------------------------------------------------------------

    def block_until(self, proc: Process, scan: Callable,
                    timeout_ns: Optional[int] = None,
                    empty: Optional[Callable] = None):
        """Run ``scan`` until it returns non-None.

        Between scans, the task leaves the run queue and sleeps briefly
        on the process wake condition (a schedule point: its CPU slot is
        released while it sleeps).  A deliverable signal interrupts the
        wait with ``EINTR``; a timeout returns ``empty()`` when
        provided, else raises ``ETIMEDOUT``.
        """
        deadline = None
        if timeout_ns is not None:
            deadline = _time.monotonic_ns() + timeout_ns
        while True:
            result = scan()
            if result is not None:
                return result
            if proc.has_deliverable_signal() or proc.state != STATE_RUNNING:
                raise KernelError(EINTR, "interrupted by signal")
            wait_s = _BLOCK_SLICE_S
            if deadline is not None:
                remaining = deadline - _time.monotonic_ns()
                if remaining <= 0:
                    if empty is not None:
                        return empty()
                    raise KernelError(ETIMEDOUT)
                wait_s = min(wait_s, remaining / 1e9)
            self.sched.sleep(proc, wait_s)

    def block_on_waitqueues(self, proc: Process, waitqueues, scan: Callable,
                            timeout_ns: Optional[int] = None,
                            empty: Optional[Callable] = None):
        """Like :meth:`block_until`, but woken by readiness waitqueues.

        A :class:`ProcNotifier` is subscribed to every queue in
        ``waitqueues``; readiness transitions then notify the process wake
        condition immediately, so there is no per-slice rescan — ``scan``
        runs once per wakeup (event, signal, or the coarse safety slice).
        """
        notifier = ProcNotifier(proc)
        wqs = [wq for wq in waitqueues if wq is not None]
        for wq in wqs:
            wq.subscribe(notifier)
        deadline = None
        if timeout_ns is not None:
            deadline = _time.monotonic_ns() + timeout_ns
        try:
            while True:
                result = scan()
                if result is not None:
                    return result
                if proc.has_deliverable_signal() or \
                        proc.state != STATE_RUNNING:
                    raise KernelError(EINTR, "interrupted by signal")
                wait_s = _WQ_SLICE_S
                if deadline is not None:
                    remaining = deadline - _time.monotonic_ns()
                    if remaining <= 0:
                        if empty is not None:
                            return empty()
                        raise KernelError(ETIMEDOUT)
                    wait_s = min(wait_s, remaining / 1e9)
                self.sched.sleep(proc, wait_s, notifier)
        finally:
            for wq in wqs:
                wq.unsubscribe(notifier)

    def _blocking_io(self, proc: Process, file: OpenFile, step: Callable,
                     on_pipe_full: bool = False):
        """Retry a non-blocking I/O step until it succeeds.

        ``EAGAIN`` means "would block": re-raise for O_NONBLOCK files, else
        wait and retry.  ``EPIPE`` generates SIGPIPE, like Linux.  When the
        file publishes readiness (sockets, pipes, event fds), a waitqueue
        notifier wakes the retry loop as soon as the peer makes progress.
        """
        notifier = None
        wq = None
        try:
            while True:
                try:
                    return step()
                except KernelError as exc:
                    if exc.errno == EPIPE:
                        proc.generate_signal(SIGPIPE)
                        raise
                    if exc.errno != EAGAIN:
                        raise
                    if file.nonblocking:
                        raise
                if proc.has_deliverable_signal() or \
                        proc.state != STATE_RUNNING:
                    raise KernelError(EINTR, "interrupted by signal")
                if notifier is None:
                    wq = file.wait_queue()
                    if wq is not None:
                        notifier = ProcNotifier(proc)
                        wq.subscribe(notifier)
                        continue  # readiness may have changed while subscribing
                self.sched.sleep(
                    proc,
                    _WQ_SLICE_S if notifier is not None else _BLOCK_SLICE_S,
                    notifier)
        finally:
            if notifier is not None and wq is not None:
                wq.unsubscribe(notifier)

    def storage_charge(self, nbytes: int) -> None:
        """Burn the storage device's simulated service time (kernel time)."""
        cost = self.storage_latency_ns_per_4k
        if not cost or nbytes <= 0:
            return
        total = cost * ((nbytes + 4095) // 4096)
        deadline = _time.perf_counter_ns() + total
        while _time.perf_counter_ns() < deadline:
            pass

    def notify_all_blocked(self) -> None:
        for p in list(self.processes.values()):
            with p.wake:
                p.wake.notify_all()

    # ------------------------------------------------------------------
    # console helpers (tests & examples)
    # ------------------------------------------------------------------

    def console_output(self) -> bytes:
        return bytes(self.console.output)

    def console_feed(self, data: bytes) -> None:
        self.console.feed(data)

    def clear_console(self) -> None:
        self.console.output.clear()
