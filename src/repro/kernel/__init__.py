"""``repro.kernel`` — the virtual Linux substrate WALI targets.

A self-contained, in-process model of the Linux userspace ABI: VFS (+procfs,
devices), file descriptors and pipes, processes/threads with clone-flag
resource sharing, signals, the mmap family, futexes, loopback sockets, and
per-ISA syscall number tables.
"""

from .arch import (
    AARCH64, ARCH_SYSCALLS, ARCHES, LEGACY_EQUIVALENTS, RISCV64, X86_64,
    arch_specific, common_syscalls, isa_similarity_report, syscall_names,
    union_syscalls,
)
from .errno import KernelError, errno_name
from .eventpoll import (
    EPOLL_CTL_ADD, EPOLL_CTL_DEL, EPOLL_CTL_MOD, EPOLLERR, EPOLLET,
    EPOLLHUP, EPOLLIN, EPOLLONESHOT, EPOLLOUT, EPOLLRDHUP, EventFD,
    EventPoll, TimerFD, WaitQueue,
)
from .fdtable import FDTable, OpenFile, Pipe
from .kernel import Kernel
from .mm import (
    AddressSpace, MAP_ANONYMOUS, MAP_FIXED, MAP_PRIVATE, MAP_SHARED,
    MREMAP_MAYMOVE, PROT_EXEC, PROT_NONE, PROT_READ, PROT_WRITE, VMA,
)
from .process import (
    CLONE_FILES, CLONE_FS, CLONE_SIGHAND, CLONE_THREAD, CLONE_VM, Process,
    RLIMIT_NOFILE, RLIMIT_STACK, WNOHANG,
)
from .signals import (
    NSIG, SIG_BLOCK, SIG_DFL, SIG_IGN, SIG_SETMASK, SIG_UNBLOCK, SIGALRM,
    SIGCHLD, SIGINT, SIGKILL, SIGPIPE, SIGSEGV, SIGTERM, SIGUSR1, SIGUSR2,
    SigAction, sig_bit,
)
from .net import (
    AF_INET, AF_UNIX, HostBackend, LoopbackBackend, NetBackend, SOCK_DGRAM,
    SOCK_STREAM, StreamBuffer, WanBackend, create_backend,
)
from .sockets import NetStack
from .vfs import (
    AT_FDCWD, Inode, O_APPEND, O_CLOEXEC, O_CREAT, O_EXCL, O_NONBLOCK,
    O_RDONLY, O_RDWR, O_TRUNC, O_WRONLY, S_IFDIR, S_IFREG, VFS,
)

__all__ = [
    "AARCH64", "AF_INET", "AF_UNIX", "ARCHES", "ARCH_SYSCALLS", "AT_FDCWD",
    "AddressSpace", "CLONE_FILES", "CLONE_FS", "CLONE_SIGHAND",
    "CLONE_THREAD", "CLONE_VM", "EPOLLERR", "EPOLLET", "EPOLLHUP", "EPOLLIN",
    "EPOLLONESHOT", "EPOLLOUT", "EPOLLRDHUP", "EPOLL_CTL_ADD",
    "EPOLL_CTL_DEL", "EPOLL_CTL_MOD", "EventFD", "EventPoll", "FDTable",
    "HostBackend", "Inode", "Kernel", "KernelError",
    "LEGACY_EQUIVALENTS", "LoopbackBackend", "MAP_ANONYMOUS", "MAP_FIXED",
    "MAP_PRIVATE",
    "MAP_SHARED", "MREMAP_MAYMOVE", "NSIG", "NetBackend", "NetStack",
    "O_APPEND",
    "O_CLOEXEC", "O_CREAT", "O_EXCL", "O_NONBLOCK", "O_RDONLY", "O_RDWR",
    "O_TRUNC", "O_WRONLY", "OpenFile", "PROT_EXEC", "PROT_NONE", "PROT_READ",
    "PROT_WRITE", "Pipe", "Process", "RISCV64", "RLIMIT_NOFILE",
    "RLIMIT_STACK", "S_IFDIR", "S_IFREG", "SIGALRM", "SIGCHLD", "SIGINT",
    "SIGKILL", "SIGPIPE", "SIGSEGV", "SIGTERM", "SIGUSR1", "SIGUSR2",
    "SIG_BLOCK", "SIG_DFL", "SIG_IGN", "SIG_SETMASK", "SIG_UNBLOCK",
    "SOCK_DGRAM", "SOCK_STREAM", "SigAction", "StreamBuffer", "TimerFD",
    "VFS", "VMA",
    "WaitQueue", "WNOHANG", "WanBackend",
    "X86_64", "arch_specific", "common_syscalls", "create_backend",
    "errno_name",
    "isa_similarity_report", "sig_bit", "syscall_names", "union_syscalls",
]
