"""``repro.kernel`` — the virtual Linux substrate WALI targets.

A self-contained, in-process model of the Linux userspace ABI: VFS (+procfs,
devices), file descriptors and pipes, processes/threads with clone-flag
resource sharing, signals, the mmap family, futexes, loopback sockets, and
per-ISA syscall number tables.
"""

from .arch import (
    AARCH64, ARCH_SYSCALLS, ARCHES, LEGACY_EQUIVALENTS, RISCV64, X86_64,
    arch_specific, common_syscalls, isa_similarity_report, syscall_names,
    union_syscalls,
)
from .block import (
    BlockFS, Disk, DropCachesDevice, FileMapping, VMKnobDevice,
    WritebackDaemon, create_blockfs,
)
from .errno import KernelError, errno_name
from .eventpoll import (
    EPOLL_CTL_ADD, EPOLL_CTL_DEL, EPOLL_CTL_MOD, EPOLLERR, EPOLLET,
    EPOLLHUP, EPOLLIN, EPOLLONESHOT, EPOLLOUT, EPOLLRDHUP, EventFD,
    EventPoll, TimerFD, WaitQueue,
)
from .fdtable import FDTable, OpenFile, Pipe
from .inotify import (
    IN_ALL_EVENTS, IN_ATTRIB, IN_CLOSE_NOWRITE, IN_CLOSE_WRITE, IN_CREATE,
    IN_DELETE, IN_DELETE_SELF, IN_IGNORED, IN_ISDIR, IN_MASK_ADD, IN_MODIFY,
    IN_MOVE_SELF, IN_MOVED_FROM, IN_MOVED_TO, IN_NONBLOCK, IN_ONESHOT,
    IN_ONLYDIR, IN_Q_OVERFLOW, Inotify, InotifyEvent, Watch, decode_events,
    fsnotify, fsnotify_content,
)
from .calls.proc import (
    FUTEX_LOCK_PI, FUTEX_PRIVATE_FLAG, FUTEX_UNLOCK_PI, FUTEX_WAIT,
    FUTEX_WAKE,
)
from .kernel import Kernel
from .mm import (
    AddressSpace, MAP_ANONYMOUS, MAP_FIXED, MAP_PRIVATE, MAP_SHARED,
    MREMAP_MAYMOVE, PROT_EXEC, PROT_NONE, PROT_READ, PROT_WRITE, VMA,
)
from .process import (
    CLONE_FILES, CLONE_FS, CLONE_SIGHAND, CLONE_THREAD, CLONE_VM, Process,
    RLIMIT_NOFILE, RLIMIT_STACK, WNOHANG,
)
from .signals import (
    NSIG, SFD_CLOEXEC, SFD_NONBLOCK, SIG_BLOCK, SIG_DFL, SIG_IGN,
    SIG_SETMASK, SIG_UNBLOCK, SIGALRM, SIGCHLD, SIGINT, SIGKILL, SIGPIPE,
    SIGNALFD_SIGINFO_SIZE, SIGSEGV, SIGTERM, SIGUSR1, SIGUSR2, SigAction,
    SignalFD, decode_siginfo, encode_siginfo, sig_bit,
)
from .net import (
    AF_INET, AF_UNIX, HostBackend, LoopbackBackend, NetBackend, PacketTap,
    SOCK_DGRAM,
    SOCK_STREAM, StreamBuffer, WanBackend, create_backend,
)
from .perf import (
    PERF_EVENT_IOC_DISABLE, PERF_EVENT_IOC_ENABLE, PERF_EVENT_IOC_RESET,
    PERF_RECORD_LOST, PERF_RECORD_SAMPLE, PERF_TYPE_COUNTER,
    PERF_TYPE_SAMPLING, PERF_TYPE_TRACEPOINT, PerfAttr, PerfRing,
    PerfSample, PerfSubsystem, decode_perf_records,
)
from .sched import (
    BackgroundSpinners, SCHED_BLOCKED, SCHED_DEAD, SCHED_NEW, SCHED_RUNNABLE,
    SCHED_RUNNING, SchedEntity, Scheduler, create_scheduler, nice_to_weight,
)
from .sockets import NetStack
from .trace import (
    CounterRegistry, KernelTrace, TRACE_RECORD_SIZE, TRACE_SCHEMAS,
    TRACEPOINTS, TraceBuffer, TraceRecord, TypedTraceRecord, create_trace,
    decode_records, decode_typed_records, hist_bucket,
)
from .uring import (
    CQE, IOSQE_CQE_SKIP_SUCCESS, IOSQE_FIXED_BUFFER, IOSQE_IO_LINK,
    IORING_ACCEPT_MULTISHOT, IORING_CQE_BUFFER_SHIFT, IORING_CQE_F_BUFFER,
    IORING_CQE_F_MORE, IORING_ENTER_GETEVENTS, IORING_ENTER_SQ_WAKEUP,
    IORING_ENTER_TIMEOUT_MS,
    IORING_FSYNC_DATASYNC, IORING_OP_ACCEPT, IORING_OP_FSYNC,
    IORING_OP_NOP, IORING_OP_POLL_ADD, IORING_OP_READ,
    IORING_OP_READ_FIXED, IORING_OP_RECV, IORING_OP_SEND,
    IORING_OP_TIMEOUT, IORING_OP_WRITE, IORING_RECV_MULTISHOT,
    IORING_REGISTER_BUFFERS, IORING_REGISTER_RING, IORING_SETUP_SQPOLL,
    IORING_SQ_CQ_OVERFLOW, IORING_SQ_NEED_WAKEUP, IoURing, SQE, SQPoller,
)
from .vfs import (
    AT_FDCWD, Inode, O_APPEND, O_CLOEXEC, O_CREAT, O_DIRECT, O_DSYNC,
    O_EXCL, O_NONBLOCK, O_RDONLY, O_RDWR, O_SYNC, O_TRUNC, O_WRONLY,
    S_IFDIR, S_IFREG, VFS,
)

__all__ = [
    "IN_ALL_EVENTS", "IN_ATTRIB", "IN_CLOSE_NOWRITE", "IN_CLOSE_WRITE",
    "IN_CREATE", "IN_DELETE", "IN_DELETE_SELF", "IN_IGNORED", "IN_ISDIR",
    "IN_MASK_ADD", "IN_MODIFY", "IN_MOVE_SELF", "IN_MOVED_FROM",
    "IN_MOVED_TO", "IN_NONBLOCK", "IN_ONESHOT", "IN_ONLYDIR",
    "IN_Q_OVERFLOW", "Inotify", "InotifyEvent", "Watch", "decode_events",
    "fsnotify", "fsnotify_content",
    "BlockFS", "Disk", "DropCachesDevice", "FileMapping", "VMKnobDevice",
    "WritebackDaemon", "create_blockfs",
    "O_DIRECT", "O_DSYNC", "O_SYNC",
    "IORING_FSYNC_DATASYNC", "IORING_OP_FSYNC",
    "SFD_CLOEXEC", "SFD_NONBLOCK", "SIGNALFD_SIGINFO_SIZE", "SignalFD",
    "decode_siginfo", "encode_siginfo",
    "AARCH64", "AF_INET", "AF_UNIX", "ARCHES", "ARCH_SYSCALLS", "AT_FDCWD",
    "AddressSpace", "CLONE_FILES", "CLONE_FS", "CLONE_SIGHAND",
    "CLONE_THREAD", "CLONE_VM", "CQE", "EPOLLERR", "EPOLLET", "EPOLLHUP",
    "EPOLLIN",
    "IORING_ACCEPT_MULTISHOT", "IORING_CQE_BUFFER_SHIFT",
    "IORING_CQE_F_BUFFER", "IORING_CQE_F_MORE",
    "IORING_ENTER_GETEVENTS", "IORING_ENTER_SQ_WAKEUP",
    "IORING_ENTER_TIMEOUT_MS", "IORING_OP_ACCEPT",
    "IORING_OP_NOP", "IORING_OP_POLL_ADD", "IORING_OP_READ",
    "IORING_OP_READ_FIXED", "IORING_OP_RECV",
    "IORING_OP_SEND", "IORING_OP_TIMEOUT", "IORING_OP_WRITE",
    "IORING_RECV_MULTISHOT", "IORING_REGISTER_BUFFERS",
    "IORING_REGISTER_RING", "IORING_SETUP_SQPOLL",
    "IORING_SQ_CQ_OVERFLOW", "IORING_SQ_NEED_WAKEUP",
    "IOSQE_CQE_SKIP_SUCCESS", "IOSQE_FIXED_BUFFER", "IOSQE_IO_LINK",
    "IoURing", "SQE", "SQPoller",
    "EPOLLONESHOT", "EPOLLOUT", "EPOLLRDHUP", "EPOLL_CTL_ADD",
    "EPOLL_CTL_DEL", "EPOLL_CTL_MOD", "EventFD", "EventPoll", "FDTable",
    "HostBackend", "Inode", "Kernel", "KernelError",
    "LEGACY_EQUIVALENTS", "LoopbackBackend", "MAP_ANONYMOUS", "MAP_FIXED",
    "MAP_PRIVATE",
    "MAP_SHARED", "MREMAP_MAYMOVE", "NSIG", "NetBackend", "NetStack",
    "O_APPEND", "PacketTap",
    "O_CLOEXEC", "O_CREAT", "O_EXCL", "O_NONBLOCK", "O_RDONLY", "O_RDWR",
    "O_TRUNC", "O_WRONLY", "OpenFile", "PROT_EXEC", "PROT_NONE", "PROT_READ",
    "PROT_WRITE", "Pipe", "Process", "RISCV64", "RLIMIT_NOFILE",
    "RLIMIT_STACK", "S_IFDIR", "S_IFREG", "SIGALRM", "SIGCHLD", "SIGINT",
    "SIGKILL", "SIGPIPE", "SIGSEGV", "SIGTERM", "SIGUSR1", "SIGUSR2",
    "SIG_BLOCK", "SIG_DFL", "SIG_IGN", "SIG_SETMASK", "SIG_UNBLOCK",
    "SOCK_DGRAM", "SOCK_STREAM", "SigAction", "StreamBuffer", "TimerFD",
    "BackgroundSpinners", "SCHED_BLOCKED", "SCHED_DEAD", "SCHED_NEW",
    "SCHED_RUNNABLE", "SCHED_RUNNING", "SchedEntity", "Scheduler",
    "create_scheduler", "nice_to_weight",
    "FUTEX_LOCK_PI", "FUTEX_PRIVATE_FLAG", "FUTEX_UNLOCK_PI", "FUTEX_WAIT",
    "FUTEX_WAKE",
    "CounterRegistry", "KernelTrace", "TRACEPOINTS", "TRACE_RECORD_SIZE",
    "TRACE_SCHEMAS", "TraceBuffer", "TraceRecord", "TypedTraceRecord",
    "create_trace", "decode_records", "decode_typed_records",
    "hist_bucket",
    "PERF_EVENT_IOC_DISABLE", "PERF_EVENT_IOC_ENABLE",
    "PERF_EVENT_IOC_RESET", "PERF_RECORD_LOST", "PERF_RECORD_SAMPLE",
    "PERF_TYPE_COUNTER", "PERF_TYPE_SAMPLING", "PERF_TYPE_TRACEPOINT",
    "PerfAttr", "PerfRing", "PerfSample", "PerfSubsystem",
    "decode_perf_records",
    "VFS", "VMA",
    "WaitQueue", "WNOHANG", "WanBackend",
    "X86_64", "arch_specific", "common_syscalls", "create_backend",
    "errno_name",
    "isa_similarity_report", "sig_bit", "syscall_names", "union_syscalls",
]
