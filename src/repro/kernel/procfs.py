"""The synthetic /proc filesystem: the guest-visible observability surface.

Everything here is read-only and generated **lazily at open** — a
``/proc`` file's inode carries a generator, and ``sys_openat`` snapshots
its output into the open-file description (reads then page through the
snapshot, like reading /proc on Linux observes one consistent pass).

Layout::

    /proc/version /proc/meminfo /proc/cpuinfo /proc/uptime   (boot-era)
    /proc/self -> /proc/<tgid>                               (dynamic)
    /proc/<pid>/comm|cmdline|stat|status|maps|mem            (per task)
    /proc/sched_debug     run queue, per-task vruntime/nice/wait
    /proc/uring           ring crossings, CQ overflows, link cancels
    /proc/inotify         fsnotify queue traffic and drops
    /proc/net/sockstat    backend + deliveries and impairment drops
    /proc/trace           tracer state, mask, and every counter
    /proc/trace_ctl       write-side controls (on/off/clear/mask=...)
    /proc/trace_pipe      the epollable trace-record stream
    /proc/trace_format    self-describing wire layout + payload schemas
    /proc/perf            perf-event subsystem status
    /proc/sys/kernel/perf_event_max_sample_rate   (writable knob)
    /proc/sys/net/wan/*   live WAN impairment knobs (wan backend only)

The stats files report from the shared
:class:`~repro.kernel.trace.CounterRegistry` — the same numbers
:mod:`repro.metrics.breakdown` reads — so a guest agent (``ktop``) and
the host metrics layer can never disagree.

``/proc/trace_pipe`` is a *live object* endpoint, not a snapshot: its
inode carries an ``opener`` that hands out an fd over the kernel's
:class:`~repro.kernel.trace.TraceBuffer`, readable and epollable through
the standard readiness machinery.  Reads are consuming and the cursor is
shared between all open descriptions, exactly like ftrace's trace_pipe.
"""

from __future__ import annotations

import time as _time

from .errno import ENODEV, KernelError
from .fdtable import OpenFile
from .process import STATE_RUNNING
from .vfs import CharDevice


class TraceControlDevice(CharDevice):
    """The /proc/trace_ctl device: written commands drive the tracer."""

    def __init__(self, kernel):
        self.kernel = kernel

    def write(self, data: bytes) -> int:
        trace = self.kernel.trace
        if trace is None:
            raise KernelError(ENODEV, "tracing is ablated")
        trace.control(data.decode(errors="replace"))
        return len(data)

    def read(self, length: int) -> bytes:
        return b""


def register_base(kernel) -> None:
    """Mount the non-per-process /proc surface (called from boot)."""
    v = kernel.vfs
    v.add_proc_file("/proc/version",
                    lambda p: b"Linux version 6.1.0-repro (wali)\n")
    v.add_proc_file("/proc/meminfo",
                    lambda p: b"MemTotal: 1048576 kB\n"
                              b"MemFree: 524288 kB\n")
    v.add_proc_file(
        "/proc/cpuinfo",
        lambda p: b"".join(
            f"processor\t: {i}\nmodel name\t: repro-cpu\n\n".encode()
            for i in range(kernel.ncpus)))
    v.add_proc_file(
        "/proc/uptime",
        lambda p: f"{(_time.monotonic_ns() - kernel.boot_monotonic_ns) / 1e9:.2f} 0.00\n".encode())
    v.add_dynamic_symlink(
        "/proc/self",
        lambda p: f"/proc/{p.tgid}" if p is not None else "/proc/1")

    v.add_proc_file("/proc/sched_debug",
                    lambda p: _sched_debug(kernel))
    v.add_proc_file("/proc/uring", lambda p: _uring_stats(kernel))
    v.add_proc_file("/proc/inotify", lambda p: _inotify_stats(kernel))
    v.mkdirs("/proc/net")
    v.add_proc_file("/proc/net/sockstat", lambda p: _sockstat(kernel))
    if kernel.trace is not None:
        v.add_proc_file(
            "/proc/trace",
            lambda p: kernel.trace.status_text().encode())
        v.add_proc_file(
            "/proc/trace_format",
            lambda p: kernel.trace.format_text().encode())
        v.mknod_device("/proc/trace_ctl", TraceControlDevice(kernel))
        v.add_special_file("/proc/trace_pipe",
                           lambda proc, flags: _open_trace_pipe(
                               kernel, flags))
    perf = getattr(kernel, "perf", None)
    if perf is not None:
        from .perf import PerfMaxRateDevice
        v.add_proc_file("/proc/perf",
                        lambda p: perf.status_text().encode())
        v.mkdirs("/proc/sys/kernel")
        v.mknod_device("/proc/sys/kernel/perf_event_max_sample_rate",
                       PerfMaxRateDevice(perf))
    from .net.wan import WanBackend, WanKnobDevice, _WAN_KNOBS
    if isinstance(kernel.net, WanBackend):
        v.mkdirs("/proc/sys/net/wan")
        for knob in _WAN_KNOBS:
            v.mknod_device(f"/proc/sys/net/wan/{knob}",
                           WanKnobDevice(kernel.net, knob))
    bd = getattr(kernel, "blockdev", None)
    if bd is not None:
        from .block import DropCachesDevice, VMKnobDevice
        v.add_proc_file("/proc/block", lambda p: bd.stats_text().encode())
        v.mkdirs("/proc/sys/vm")
        for knob in ("dirty_ratio", "dirty_background_ratio",
                     "dirty_expire_centisecs", "dirty_writeback_centisecs"):
            v.mknod_device(f"/proc/sys/vm/{knob}", VMKnobDevice(bd, knob))
        v.mknod_device("/proc/sys/vm/drop_caches", DropCachesDevice(bd))


def _open_trace_pipe(kernel, flags: int) -> OpenFile:
    if kernel.trace is None:
        raise KernelError(ENODEV, "tracing is ablated")
    return OpenFile(OpenFile.KIND_TRACE, flags, obj=kernel.trace.buffer,
                    path="/proc/trace_pipe")


# ----------------------------------------------------------------------
# generators (each runs once per open; keep them allocation-light)
# ----------------------------------------------------------------------

def _counters(kernel):
    return kernel.trace.counters if kernel.trace is not None else None


def _get(kernel, name: str) -> int:
    c = _counters(kernel)
    return c.get(name) if c is not None else 0


def _sched_debug(kernel) -> bytes:
    sched = kernel.sched
    lines = [
        sched.describe(),
        f"running: {sched.running_pids()} "
        f"runnable: {sched.runnable_pids()} "
        f"blocked: {sched.blocked_pids()}",
        f"switches: {_get(kernel, 'sched.switch')} "
        f"wakeups: {_get(kernel, 'sched.wakeup')} "
        f"preemptions: {_get(kernel, 'sched.preempt')} "
        f"migrations: {_get(kernel, 'sched.migrate')} "
        f"steals: {_get(kernel, 'sched.steal')}",
    ]
    for rq in sched.cpu_snapshot():
        cur = rq["current"] if rq["current"] is not None else "-"
        lines.append(
            f"cpu#{rq['cpu']}: curr={cur} nr_runnable={rq['nr_runnable']} "
            f"min_vruntime={rq['min_vruntime']} queued={rq['queued']}")
    lines.append(
        f"{'pid':>5} {'comm':<15} {'st':<2} {'nice':>4} {'cpu':>3} "
        f"{'aff':>4} {'vruntime_ns':>14} {'wait_ns':>12} {'cpu_ns':>12}")
    for pid in sorted(kernel.processes):
        pr = kernel.processes[pid]
        se = pr.se
        lines.append(
            f"{pid:>5} {pr.comm or '-':<15} {se.state[:2]:<2} "
            f"{se.nice:>4} {se.cpu:>3} {se.affinity or '*':>4} "
            f"{se.vruntime_ns:>14} {se.wait_ns:>12} "
            f"{se.cpu_time_ns:>12}")
    return ("\n".join(lines) + "\n").encode()


def _uring_stats(kernel) -> bytes:
    return (
        f"crossings: {kernel.syscall_counts.get('io_uring_enter', 0)}\n"
        f"sqes_submitted: {_get(kernel, 'uring.submitted')}\n"
        f"cqes_completed: {_get(kernel, 'uring.completed')}\n"
        f"cq_overflows: {_get(kernel, 'uring.cq_overflow')}\n"
        f"link_cancels: {_get(kernel, 'uring.link_cancel')}\n"
        f"multishot_cqes: {_get(kernel, 'uring.multishot_cqes')}\n"
        f"buffers_registered: {_get(kernel, 'uring.buffers_registered')}\n"
        f"fixed_completions: {_get(kernel, 'uring.fixed_completions')}\n"
        f"sqpoll_submitted: {_get(kernel, 'uring.sqpoll_submitted')}\n"
        f"sqpoll_polls: {_get(kernel, 'uring.sqpoll_polls')}\n"
        f"sqpoll_idles: {_get(kernel, 'uring.sqpoll_idles')}\n"
        f"sqpoll_wakeups: {_get(kernel, 'uring.sqpoll_wakeups')}\n"
    ).encode()


def _inotify_stats(kernel) -> bytes:
    return (
        f"enqueued: {_get(kernel, 'inotify.enqueued')}\n"
        f"dropped: {_get(kernel, 'inotify.dropped')}\n"
    ).encode()


def _sockstat(kernel) -> bytes:
    return (
        f"backend: {kernel.net.describe()}\n"
        f"delivered: {_get(kernel, 'net.deliver')}\n"
        f"delivered_bytes: {_get(kernel, 'net.deliver_bytes')}\n"
        f"dropped: {_get(kernel, 'net.drop')}\n"
        f"reordered: {_get(kernel, 'net.reorder')}\n"
        f"duplicated: {_get(kernel, 'net.dup')}\n"
        f"epoll_wakes_coalesced: {_get(kernel, 'epoll.wake_coalesced')}\n"
    ).encode()


# ----------------------------------------------------------------------
# per-process entries
# ----------------------------------------------------------------------

def register_process(kernel, proc) -> None:
    base = f"/proc/{proc.pid}"
    try:
        kernel.vfs.mkdirs(base)
    except KernelError:
        return
    add = kernel.vfs.add_proc_file
    add(f"{base}/comm", lambda p, pr=proc: (pr.comm + "\n").encode())
    add(f"{base}/cmdline",
        lambda p, pr=proc: b"\x00".join(a.encode() for a in pr.argv))
    # classic stat columns, then scheduler fields: nice, vruntime,
    # cumulative runnable-wait and CPU time (all ns)
    add(f"{base}/stat",
        lambda p, pr=proc: (
            f"{pr.pid} ({pr.comm}) "
            f"{'R' if pr.state == STATE_RUNNING else 'Z'} "
            f"{pr.ppid} {pr.pgid} {pr.sid} "
            f"{pr.se.nice} {pr.se.vruntime_ns} {pr.se.wait_ns} "
            f"{pr.se.cpu_time_ns}\n").encode())
    add(f"{base}/status",
        lambda p, pr=proc, k=kernel: (
            f"Name:\t{pr.comm}\nPid:\t{pr.pid}\nTgid:\t{pr.tgid}\n"
            f"PPid:\t{pr.ppid}\nUid:\t{pr.uid}\t{pr.euid}\n"
            f"SigBlk:\t{pr.blocked_mask:016x}\n"
            f"SigPnd:\t{pr.pending.bits:016x}\n"
            f"Nice:\t{pr.se.nice}\n"
            f"VRuntime:\t{pr.se.vruntime_ns}\n"
            f"WaitNs:\t{pr.se.wait_ns}\n"
            f"ServiceNs:\t{k.kernel_time_ns.get(pr.tgid, 0)}\n"
            f"FDSize:\t{len(pr.fdtable.fds())}\n").encode())
    add(f"{base}/maps",
        lambda p, pr=proc: (pr.mm.maps_text() if pr.mm else "").encode())
    # the dangerous endpoint WALI must interpose on (§3.6 pitfall 1):
    add(f"{base}/mem", lambda p, pr=proc: b"<process memory image>")


def unregister_process(kernel, proc) -> None:
    try:
        kernel.vfs.unlink(f"/proc/{proc.pid}/comm")
    except KernelError:
        return
    for name in ("cmdline", "stat", "status", "maps", "mem"):
        try:
            kernel.vfs.unlink(f"/proc/{proc.pid}/{name}")
        except KernelError:
            pass
    try:
        kernel.vfs.unlink(f"/proc/{proc.pid}", rmdir=True)
    except KernelError:
        pass
