"""Event notification: waitqueues, eventfd, timerfd, and Linux-semantics epoll.

This is the kernel's readiness layer.  Every waitable object (socket buffer,
pipe, eventfd counter, timerfd tick) owns a :class:`WaitQueue`; state
transitions *publish* readiness by calling :meth:`WaitQueue.wake`, and
consumers *subscribe* callbacks:

* blocking syscalls (``ppoll``/``pselect6``/``read``/``accept``...) subscribe
  a process notifier so they wake promptly instead of timeout-slicing,
* :class:`EventPoll` instances subscribe per-interest callbacks that move the
  fd onto a **ready list** — ``epoll_pwait`` then dispatches from that list
  in O(ready) instead of rescanning all N watched fds like ``poll``.

Mutation of waiter/ready structures relies on CPython's GIL for atomicity
(single dict/list operations), matching the locking discipline of the rest
of the kernel model; condition variables are only used for blocking.
"""

from __future__ import annotations

import threading
import time as _time
from typing import Callable, Dict, List, Optional, Tuple

from .errno import (
    EAGAIN, EBADF, EEXIST, EINVAL, ENOENT, EPERM, KernelError,
)

# epoll event bits (identical to the poll bits for the low ones, like Linux)
EPOLLIN = 0x001
EPOLLPRI = 0x002
EPOLLOUT = 0x004
EPOLLERR = 0x008
EPOLLHUP = 0x010
EPOLLRDHUP = 0x2000
EPOLLEXCLUSIVE = 1 << 28
EPOLLONESHOT = 1 << 30
EPOLLET = 1 << 31

# always delivered, whether requested or not (Linux semantics)
_ALWAYS_EVENTS = EPOLLERR | EPOLLHUP

EPOLL_CTL_ADD = 1
EPOLL_CTL_DEL = 2
EPOLL_CTL_MOD = 3

EPOLL_CLOEXEC = 0o2000000

# eventfd flags
EFD_SEMAPHORE = 0o0000001
EFD_CLOEXEC = 0o2000000
EFD_NONBLOCK = 0o0004000
EVENTFD_MAX = 0xFFFFFFFFFFFFFFFE

# timerfd flags
TFD_CLOEXEC = 0o2000000
TFD_NONBLOCK = 0o0004000
TFD_TIMER_ABSTIME = 1

_WAKE_ALL = EPOLLIN | EPOLLOUT | EPOLLERR | EPOLLHUP

# Process-global wake observers (the wq_wake tracepoint).  Empty unless a
# KernelTrace with wq_wake unmasked is enabled, so the common-case cost
# in WaitQueue.wake is a single falsy check.
_wake_hooks: List[Callable[[int], None]] = []


def add_wake_hook(hook: Callable[[int], None]) -> None:
    _wake_hooks.append(hook)


def remove_wake_hook(hook: Callable[[int], None]) -> None:
    try:
        _wake_hooks.remove(hook)
    except ValueError:
        pass


class WaitQueue:
    """A set of wakeup callbacks invoked on readiness transitions.

    Callbacks receive the event mask that *may* have become true; they must
    be cheap and non-blocking (they run on the waker's thread, possibly
    under the waker's buffer lock).
    """

    __slots__ = ("_waiters",)

    def __init__(self):
        self._waiters: List[Callable[[int], None]] = []

    def subscribe(self, callback: Callable[[int], None]) -> None:
        self._waiters.append(callback)

    def unsubscribe(self, callback: Callable[[int], None]) -> None:
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass

    def wake(self, events: int = _WAKE_ALL) -> None:
        if _wake_hooks:
            for hook in list(_wake_hooks):
                hook(events)
        for cb in list(self._waiters):
            cb(events)

    def __len__(self) -> int:
        return len(self._waiters)


class ProcNotifier:
    """Waitqueue subscriber that kicks a blocked process's wake condition.

    The ``fired`` flag closes the check-then-wait race: a wake landing
    between the caller's readiness scan and its ``wait()`` is not lost.
    """

    __slots__ = ("proc", "fired")

    def __init__(self, proc):
        self.proc = proc
        self.fired = False

    def __call__(self, events: int = 0) -> None:
        with self.proc.wake:
            self.fired = True
            self.proc.wake.notify_all()


class EventFD:
    """The eventfd object: a 64-bit kernel counter with readiness."""

    def __init__(self, initval: int = 0, semaphore: bool = False):
        self.count = initval
        self.semaphore = semaphore
        self.wq = WaitQueue()

    def read_step(self) -> int:
        """Consume the counter (or one, in semaphore mode); EAGAIN if zero."""
        if self.count == 0:
            raise KernelError(EAGAIN, "eventfd counter is zero")
        val = 1 if self.semaphore else self.count
        self.count -= val
        self.wq.wake(EPOLLOUT)
        return val

    def write_step(self, value: int) -> None:
        if value >= EVENTFD_MAX + 1:
            raise KernelError(EINVAL, "eventfd value too large")
        if self.count + value > EVENTFD_MAX:
            raise KernelError(EAGAIN, "eventfd counter would overflow")
        self.count += value
        if value:
            self.wq.wake(EPOLLIN)

    def poll_events(self) -> int:
        mask = 0
        if self.count > 0:
            mask |= EPOLLIN
        if self.count < EVENTFD_MAX:
            mask |= EPOLLOUT
        return mask

    def close(self) -> None:
        self.wq.wake(EPOLLHUP)


class TimerFD:
    """The timerfd object: expirations accumulate; reads drain them."""

    def __init__(self, clock_id: int = 0):
        self.clock_id = clock_id
        self.expirations = 0
        self.interval_ns = 0
        self.deadline_ns: Optional[int] = None  # monotonic target
        self.wq = WaitQueue()
        self._timer: Optional[threading.Timer] = None
        self._gen = 0  # invalidates in-flight timers after settime/close

    def settime(self, value_ns: int, interval_ns: int = 0,
                absolute: bool = False) -> Tuple[int, int]:
        """Arm (or disarm with value 0); returns the previous setting."""
        old = self.gettime()
        self._gen += 1
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self.expirations = 0
        self.interval_ns = interval_ns
        now = _time.monotonic_ns()
        if value_ns <= 0:
            # it_value of zero disarms (even with TFD_TIMER_ABSTIME)
            self.deadline_ns = None
            return old
        if absolute:
            value_ns -= now
            if value_ns <= 0:
                # an already-past absolute deadline expires immediately
                self.expirations = 1
                if interval_ns > 0:
                    self.deadline_ns = now + interval_ns
                    self._arm(interval_ns, self._gen)
                else:
                    self.deadline_ns = None
                self.wq.wake(EPOLLIN)
                return old
        self.deadline_ns = now + value_ns
        self._arm(value_ns, self._gen)
        return old

    def _arm(self, delay_ns: int, gen: int) -> None:
        t = threading.Timer(delay_ns / 1e9, self._fire, args=(gen,))
        t.daemon = True
        self._timer = t
        t.start()

    def _fire(self, gen: int) -> None:
        if gen != self._gen:
            return  # superseded by a later settime/close
        self.expirations += 1
        if self.interval_ns > 0:
            self.deadline_ns = _time.monotonic_ns() + self.interval_ns
            self._arm(self.interval_ns, gen)
        else:
            self.deadline_ns = None
        self.wq.wake(EPOLLIN)

    def gettime(self) -> Tuple[int, int]:
        """(remaining_value_ns, interval_ns) like timerfd_gettime."""
        if self.deadline_ns is None:
            return 0, self.interval_ns
        return max(0, self.deadline_ns - _time.monotonic_ns()), \
            self.interval_ns

    def read_step(self) -> int:
        """Return and reset the expiration count; EAGAIN when zero."""
        if self.expirations == 0:
            raise KernelError(EAGAIN, "timer has not expired")
        n = self.expirations
        self.expirations = 0
        return n

    def poll_events(self) -> int:
        return EPOLLIN if self.expirations > 0 else 0

    def close(self) -> None:
        self._gen += 1
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self.wq.wake(EPOLLHUP)


class _Interest:
    """One entry on an epoll interest list."""

    __slots__ = ("fd", "file", "events", "data", "disabled", "callback")

    def __init__(self, fd: int, file, events: int, data: int):
        self.fd = fd
        self.file = file
        self.events = events
        self.data = data
        self.disabled = False  # set after delivery under EPOLLONESHOT
        self.callback: Optional[Callable[[int], None]] = None


class EventPoll:
    """A Linux-semantics epoll instance.

    The interest list maps fd -> :class:`_Interest`.  Readiness arrives via
    waitqueue callbacks, which place the fd on the ready list; polling all
    N watched files only ever happens at registration time, never per wait.
    """

    def __init__(self, counters=None):
        self.items: Dict[int, _Interest] = {}
        self._ready: Dict[int, int] = {}  # fd -> hinted events
        self.wq = WaitQueue()  # epoll fds are themselves pollable
        # wakeup coalescing: once waiters have been kicked for a non-empty
        # ready list, further readiness transitions are recorded on the
        # ready list but don't re-invoke every subscriber — a storm of
        # wakes on a hot fd costs one notification per ready-list drain,
        # not one per transition (matters at 1000+ watched fds)
        self._dirty = False
        # shared kernel CounterRegistry (epoll.wake_coalesced lives there)
        self.counters = counters

    # ---- interest-list maintenance (epoll_ctl) ----

    def add(self, fd: int, file, events: int, data: int) -> None:
        stale = self.items.get(fd)
        if stale is not None:
            # a closed (or replaced-by-dup) description leaves a stale
            # entry behind; Linux auto-detaches on close, so purge it
            if stale.file.closed or stale.file is not file:
                self._purge(fd, stale)
            else:
                raise KernelError(EEXIST, f"fd {fd} already watched")
        wq = file.wait_queue()
        if wq is None:
            raise KernelError(EPERM, "file does not support epoll")
        item = _Interest(fd, file, events, data)

        def on_wake(ev: int, _item=item) -> None:
            self._mark_ready(_item, ev)

        item.callback = on_wake
        self.items[fd] = item
        wq.subscribe(on_wake)
        # initial level check: deliver events that are already true, and
        # kick waiters already blocked in epoll_pwait on this instance
        self._ready[fd] = _WAKE_ALL
        self._kick()

    def modify(self, fd: int, events: int, data: int) -> None:
        item = self.items.get(fd)
        if item is None:
            raise KernelError(ENOENT, f"fd {fd} not watched")
        item.events = events
        item.data = data
        item.disabled = False  # EPOLL_CTL_MOD re-arms a ONESHOT entry
        self._ready[fd] = _WAKE_ALL
        self._kick()

    def remove(self, fd: int) -> None:
        item = self.items.pop(fd, None)
        if item is None:
            raise KernelError(ENOENT, f"fd {fd} not watched")
        wq = item.file.wait_queue()
        if wq is not None and item.callback is not None:
            wq.unsubscribe(item.callback)
        self._ready.pop(fd, None)

    def _purge(self, fd: int, item: _Interest) -> None:
        """Silently drop a stale interest entry (its description closed)."""
        if self.items.get(fd) is item:
            del self.items[fd]
        wq = item.file.wait_queue()
        if wq is not None and item.callback is not None:
            wq.unsubscribe(item.callback)
        self._ready.pop(fd, None)

    # ---- readiness ----

    def _kick(self) -> None:
        """Notify waiters, coalescing repeats until the next drain.

        The first transition after a drain invokes every ``self.wq``
        subscriber; while the dirty flag is up, later transitions only
        accumulate on the ready list.  Any waiter that rechecks readiness
        (``wait_step``/``poll_events``) lowers the flag, so wakeups are
        never lost — at worst a recheck is already scheduled.
        """
        if self._dirty:
            if self.counters is not None:
                self.counters.inc("epoll.wake_coalesced")
            return
        self._dirty = True
        self.wq.wake(EPOLLIN)

    def _mark_ready(self, item: _Interest, events: int) -> None:
        if item.disabled:
            return
        self._ready[item.fd] = self._ready.get(item.fd, 0) | events
        self._kick()

    def wait_step(self, maxevents: int) -> Optional[List[Tuple[int, int]]]:
        """One dispatch pass over the ready list.

        Returns ``[(data, revents)]`` or None when nothing is deliverable
        (the caller blocks on ``self.wq``).  Cost is proportional to the
        ready-list length, not the interest-list length.
        """
        self._dirty = False  # this recheck observes all prior transitions
        out: List[Tuple[int, int]] = []
        for fd in list(self._ready):
            item = self.items.get(fd)
            if item is None:
                self._ready.pop(fd, None)
                continue
            if item.file.closed:
                self._purge(fd, item)  # Linux auto-detaches on close
                continue
            if item.disabled:
                self._ready.pop(fd, None)
                continue
            mask = item.file.poll_events()
            revents = mask & (item.events | _ALWAYS_EVENTS)
            if not revents:
                self._ready.pop(fd, None)  # spurious or consumed: drop
                continue
            out.append((item.data, revents))
            if item.events & EPOLLONESHOT:
                item.disabled = True
                self._ready.pop(fd, None)
            elif item.events & EPOLLET:
                # edge-triggered: silent until the next wakeup edge
                self._ready.pop(fd, None)
            # level-triggered entries stay on the ready list; the next
            # wait re-checks the level and drops them once drained.
            if len(out) >= maxevents:
                break
        return out or None

    def poll_events(self) -> int:
        # non-consuming readiness probe (for ppoll/epoll over an epoll fd);
        # it too lowers the dirty flag: the prober has observed the current
        # ready list, so the next transition must kick it again
        self._dirty = False
        for fd in list(self._ready):
            item = self.items.get(fd)
            if item is None or item.disabled or item.file.closed:
                continue
            if item.file.poll_events() & (item.events | _ALWAYS_EVENTS):
                return EPOLLIN
        return 0

    def close(self) -> None:
        for fd, item in list(self.items.items()):
            self._purge(fd, item)
        self.wq.wake(EPOLLHUP)


def poll_event_names(mask: int) -> str:
    """Debug helper: render an event mask symbolically."""
    names = [("IN", EPOLLIN), ("PRI", EPOLLPRI), ("OUT", EPOLLOUT),
             ("ERR", EPOLLERR), ("HUP", EPOLLHUP), ("RDHUP", EPOLLRDHUP)]
    out = [n for n, bit in names if mask & bit]
    return "|".join(out) or "0"
