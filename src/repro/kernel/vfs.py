"""The virtual filesystem: inodes, directories, symlinks, procfs, devices.

An in-memory POSIX-shaped filesystem.  Regular files hold a ``bytearray``;
directories hold ``{name: Inode}``; procfs files hold a generator callable so
``/proc/self/mem``-style endpoints exist for WALI's security interposition
tests (§3.6).  All byte-level file I/O goes through :class:`Inode` helpers so
open-file descriptions (:mod:`repro.kernel.fdtable`) stay thin.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

from .errno import (
    EACCES, EBUSY, EEXIST, EINVAL, EISDIR, ELOOP, ENAMETOOLONG, ENOENT,
    ENOSPC, ENOTDIR, ENOTEMPTY, EPERM, EXDEV, KernelError,
)
from .inotify import (
    IN_ATTRIB, IN_CREATE, IN_MODIFY, fsnotify, fsnotify_content,
    fsnotify_delete, fsnotify_inode_gone, fsnotify_move, fsnotify_name,
)

# file type bits (mode & S_IFMT)
S_IFMT = 0o170000
S_IFSOCK = 0o140000
S_IFLNK = 0o120000
S_IFREG = 0o100000
S_IFBLK = 0o060000
S_IFDIR = 0o040000
S_IFCHR = 0o020000
S_IFIFO = 0o010000

# open(2) flags (x86-64 values)
O_RDONLY = 0o0
O_WRONLY = 0o1
O_RDWR = 0o2
O_ACCMODE = 0o3
O_CREAT = 0o100
O_EXCL = 0o200
O_NOCTTY = 0o400
O_TRUNC = 0o1000
O_APPEND = 0o2000
O_NONBLOCK = 0o4000
O_DSYNC = 0o10000
O_DIRECT = 0o40000
O_DIRECTORY = 0o200000
O_NOFOLLOW = 0o400000
O_CLOEXEC = 0o2000000
__O_SYNC = 0o4000000
O_SYNC = __O_SYNC | O_DSYNC

AT_FDCWD = -100
AT_SYMLINK_NOFOLLOW = 0x100
AT_REMOVEDIR = 0x200

SYMLINK_MAX_DEPTH = 40
NAME_MAX = 255

_ino_counter = itertools.count(2)

# Inode timestamps come from a *logical* clock: a fixed epoch plus one
# microsecond per mutation.  Wall-clock stamps would differ between runs
# and break the 3x determinism-rerun guarantee for anything stat-shaped;
# the logical clock is monotone (writes still order by mtime) and
# bit-reproducible for identical operation sequences.  The counter is
# process-global (Inode construction has no VFS back-pointer), so the
# guarantee is per *whole-process* run — exactly what the CI rerun
# executes — not per Kernel instance; two kernels in one process share
# the tick stream.
_EPOCH_NS = 1_704_067_200 * 10**9  # 2024-01-01T00:00:00Z, fixed
_clock_ticks = itertools.count(1)


def _now_ns() -> int:
    return _EPOCH_NS + next(_clock_ticks) * 1_000


def vfs_now_ns() -> int:
    """The VFS logical clock (for callers outside this module, e.g. the
    WALI ``utimensat`` NULL-times path)."""
    return _now_ns()


class Inode:
    """One filesystem object."""

    __slots__ = (
        "ino", "mode", "uid", "gid", "nlink", "data", "entries", "target",
        "rdev", "atime_ns", "mtime_ns", "ctime_ns", "generator", "device",
        "opener", "fs_limit", "watches", "mapping", "parent", "pname", "sb",
    )

    def __init__(self, mode: int, uid: int = 0, gid: int = 0):
        self.ino = next(_ino_counter)
        self.mode = mode
        self.uid = uid
        self.gid = gid
        self.nlink = 1
        now = _now_ns()
        self.atime_ns = self.mtime_ns = self.ctime_ns = now
        self.data: Optional[bytearray] = None
        self.entries: Optional[Dict[str, "Inode"]] = None
        self.target: Optional[str] = None       # symlink
        self.rdev = 0
        self.generator: Optional[Callable] = None  # procfs content
        self.device = None                       # chr device handler object
        # custom open hook: opener(proc, flags) -> OpenFile; lets a path
        # hand out a live object fd (e.g. /proc/trace_pipe) instead of a
        # content snapshot
        self.opener: Optional[Callable] = None
        self.fs_limit: Optional[int] = None      # per-file size cap (ENOSPC)
        self.watches = None                      # inotify marks (lazy list)
        self.mapping = None       # block-layer page-cache state (FileMapping)
        self.parent = None        # containing directory (dnotify delivery)
        self.pname = None         # name under parent
        self.sb = None            # owning BlockFS when under a mount
        kind = mode & S_IFMT
        if kind == S_IFREG:
            self.data = bytearray()
        elif kind == S_IFDIR:
            self.entries = {}
            self.nlink = 2

    # ---- type predicates ----

    @property
    def is_dir(self) -> bool:
        return (self.mode & S_IFMT) == S_IFDIR

    @property
    def is_file(self) -> bool:
        return (self.mode & S_IFMT) == S_IFREG

    @property
    def is_symlink(self) -> bool:
        return (self.mode & S_IFMT) == S_IFLNK

    @property
    def is_chr(self) -> bool:
        return (self.mode & S_IFMT) == S_IFCHR

    @property
    def is_fifo(self) -> bool:
        return (self.mode & S_IFMT) == S_IFIFO

    @property
    def size(self) -> int:
        if self.data is not None:
            return len(self.data)
        if self.is_symlink:
            return len(self.target or "")
        return 0

    # ---- regular-file I/O ----

    def read_at(self, offset: int, length: int) -> bytes:
        assert self.data is not None
        if self.mapping is not None:
            self.mapping.ensure_resident(offset, length)
        return bytes(self.data[offset : offset + length])

    def write_at(self, offset: int, buf: bytes) -> int:
        assert self.data is not None
        end = offset + len(buf)
        if self.fs_limit is not None and end > self.fs_limit:
            raise KernelError(ENOSPC, "file size cap exceeded")
        wstart = offset
        if self.mapping is not None:
            # RMW edges must be cache-authoritative before the mutation;
            # the dirty span runs back to old EOF on sparse extension
            wstart = self.mapping.write_prepare(offset, len(buf))
        if offset > len(self.data):  # sparse write: zero-fill the hole
            self.data.extend(b"\x00" * (offset - len(self.data)))
        self.data[offset:end] = buf
        self.mtime_ns = _now_ns()
        if self.mapping is not None:
            self.mapping.mark_dirty(wstart, end - wstart)
        fsnotify_content(self, IN_MODIFY)
        return len(buf)

    def truncate(self, length: int) -> None:
        assert self.data is not None
        old = len(self.data)
        if self.mapping is not None:
            self.mapping.truncate_prepare(old, length)
        if length < old:
            del self.data[length:]
        else:
            self.data.extend(b"\x00" * (length - old))
        self.mtime_ns = _now_ns()
        if self.mapping is not None:
            self.mapping.truncate_apply(old, length)
        fsnotify_content(self, IN_MODIFY)


class DirEntry:
    """One getdents64 record."""

    __slots__ = ("ino", "name", "d_type")

    def __init__(self, ino: int, name: str, d_type: int):
        self.ino = ino
        self.name = name
        self.d_type = d_type


# d_type values (linux dirent)
DT_UNKNOWN, DT_FIFO, DT_CHR, DT_DIR, DT_BLK, DT_REG, DT_LNK, DT_SOCK = \
    0, 1, 2, 4, 6, 8, 10, 12

_DTYPE_OF = {S_IFIFO: DT_FIFO, S_IFCHR: DT_CHR, S_IFDIR: DT_DIR,
             S_IFBLK: DT_BLK, S_IFREG: DT_REG, S_IFLNK: DT_LNK,
             S_IFSOCK: DT_SOCK}


class VFS:
    """Filesystem tree with path resolution."""

    def __init__(self):
        self.root = Inode(S_IFDIR | 0o755)
        # dynamic path hooks, e.g. "/proc/self" -> callable(proc) -> str
        self.dynamic_symlinks: Dict[str, Callable] = {}

    # ---- path plumbing ----

    @staticmethod
    def split(path: str) -> List[str]:
        return [c for c in path.split("/") if c and c != "."]

    def resolve(self, path: str, cwd: Inode, follow: bool = True,
                proc=None, _depth: int = 0) -> Inode:
        """Resolve ``path`` to an inode; raises ENOENT/ENOTDIR/ELOOP."""
        if _depth > SYMLINK_MAX_DEPTH:
            raise KernelError(ELOOP, path)
        node = self.root if path.startswith("/") else cwd
        comps = self.split(path)
        for i, comp in enumerate(comps):
            if len(comp) > NAME_MAX:
                raise KernelError(ENAMETOOLONG, comp)
            if not node.is_dir:
                raise KernelError(ENOTDIR, comp)
            if comp == "..":
                node = self._parent_of(node)
                continue
            child = node.entries.get(comp)
            if child is None:
                raise KernelError(ENOENT, path)
            last = i == len(comps) - 1
            if child.is_symlink and (follow or not last):
                target = child.target
                if target is None and child.generator is not None:
                    target = child.generator(proc)
                rest = "/".join(comps[i + 1:])
                newpath = target + ("/" + rest if rest else "")
                return self.resolve(newpath, node, follow, proc, _depth + 1)
            node = child
        return node

    def resolve_parent(self, path: str, cwd: Inode,
                       proc=None) -> Tuple[Inode, str]:
        """Resolve all but the last component; returns (dir inode, name)."""
        comps = self.split(path)
        if not comps:
            raise KernelError(EINVAL, path)
        parent_path = "/".join(comps[:-1])
        if path.startswith("/"):
            parent_path = "/" + parent_path
        parent = self.resolve(parent_path or ".", cwd, proc=proc) \
            if parent_path not in ("", "/") else self.root
        if parent_path in ("", "/"):
            parent = self.root if path.startswith("/") else cwd
        if not parent.is_dir:
            raise KernelError(ENOTDIR, path)
        return parent, comps[-1]

    def _parent_of(self, node: Inode) -> Inode:
        # Linear search is fine at our scale; ".." from root is root.
        def walk(d: Inode) -> Optional[Inode]:
            for child in d.entries.values():
                if child is node:
                    return d
                if child.is_dir and child is not node:
                    found = walk(child)
                    if found is not None:
                        return found
            return None

        return walk(self.root) or self.root

    def path_of(self, node: Inode) -> str:
        """Best-effort absolute path of an inode (for getcwd)."""
        def walk(d: Inode, prefix: str) -> Optional[str]:
            for name, child in d.entries.items():
                p = f"{prefix}/{name}"
                if child is node:
                    return p
                if child.is_dir:
                    found = walk(child, p)
                    if found:
                        return found
            return None

        if node is self.root:
            return "/"
        return walk(self.root, "") or "/"

    # ---- tree operations ----

    def attach_child(self, parent: Inode, name: str, node: Inode) -> None:
        """Attach ``node`` under ``parent``, keeping the parent
        backpointer (dnotify-style content-event delivery) and block
        superblock ownership coherent: entering a mounted subtree adopts
        the node onto the disk, leaving one disowns it back to plain
        memory backing."""
        parent.entries[name] = node
        node.parent = parent
        node.pname = name
        sb = parent.sb
        if sb is not None:
            if node.sb is not sb:
                sb.adopt(node)
            elif node.is_file and node.mapping is not None:
                # moved within the mount: shape changed, data didn't
                node.mapping.meta_dirty = True
        elif node.sb is not None:
            node.sb.disown(node)

    @staticmethod
    def _detach_child(parent: Inode, name: str, node: Inode) -> None:
        del parent.entries[name]
        if node.parent is parent and node.pname == name:
            node.parent = None
            node.pname = None

    def lookup(self, path: str, cwd: Optional[Inode] = None, follow=True,
               proc=None) -> Inode:
        return self.resolve(path, cwd or self.root, follow, proc)

    def exists(self, path: str, cwd: Optional[Inode] = None) -> bool:
        try:
            self.lookup(path, cwd)
            return True
        except KernelError:
            return False

    def mkdir(self, path: str, mode: int = 0o755,
              cwd: Optional[Inode] = None) -> Inode:
        parent, name = self.resolve_parent(path, cwd or self.root)
        if name in parent.entries:
            raise KernelError(EEXIST, path)
        node = Inode(S_IFDIR | (mode & 0o7777))
        self.attach_child(parent, name, node)
        parent.nlink += 1
        fsnotify_name(parent, node, IN_CREATE, name)
        return node

    def mkdirs(self, path: str) -> Inode:
        node = self.root
        for comp in self.split(path):
            if not node.is_dir:
                raise KernelError(ENOTDIR, path)
            child = node.entries.get(comp)
            if child is None:
                child = Inode(S_IFDIR | 0o755)
                self.attach_child(node, comp, child)
                node.nlink += 1
            node = child
        return node

    def create(self, path: str, mode: int = 0o644,
               cwd: Optional[Inode] = None, exclusive: bool = False) -> Inode:
        parent, name = self.resolve_parent(path, cwd or self.root)
        existing = parent.entries.get(name)
        if existing is not None:
            if exclusive:
                raise KernelError(EEXIST, path)
            if existing.is_dir:
                raise KernelError(EISDIR, path)
            return existing
        node = Inode(S_IFREG | (mode & 0o7777))
        self.attach_child(parent, name, node)
        fsnotify_name(parent, node, IN_CREATE, name)
        return node

    def write_file(self, path: str, data: bytes, mode: int = 0o644) -> Inode:
        node = self.create(path, mode)
        if node.mapping is not None:
            node.truncate(0)
            if data:
                node.write_at(0, bytes(data))
            return node
        node.data[:] = data
        fsnotify(node, IN_MODIFY)
        return node

    def read_file(self, path: str) -> bytes:
        node = self.lookup(path)
        if not node.is_file:
            raise KernelError(EISDIR, path)
        if node.mapping is not None:
            node.mapping.ensure_resident(0, len(node.data), charge=False)
        return bytes(node.data)

    def symlink(self, target: str, path: str,
                cwd: Optional[Inode] = None) -> Inode:
        parent, name = self.resolve_parent(path, cwd or self.root)
        if name in parent.entries:
            raise KernelError(EEXIST, path)
        node = Inode(S_IFLNK | 0o777)
        node.target = target
        self.attach_child(parent, name, node)
        fsnotify_name(parent, node, IN_CREATE, name)
        return node

    def link(self, old: str, new: str, cwd: Optional[Inode] = None) -> None:
        node = self.lookup(old, cwd, follow=False)
        if node.is_dir:
            raise KernelError(EPERM, "hard link to directory")
        parent, name = self.resolve_parent(new, cwd or self.root)
        if name in parent.entries:
            raise KernelError(EEXIST, new)
        self.attach_child(parent, name, node)
        node.nlink += 1
        fsnotify_name(parent, node, IN_CREATE, name)
        fsnotify(node, IN_ATTRIB)  # nlink changed, like Linux

    def unlink(self, path: str, cwd: Optional[Inode] = None,
               rmdir: bool = False) -> None:
        parent, name = self.resolve_parent(path, cwd or self.root)
        node = parent.entries.get(name)
        if node is None:
            raise KernelError(ENOENT, path)
        if node.is_dir:
            if not rmdir:
                raise KernelError(EISDIR, path)
            if node.entries:
                raise KernelError(ENOTEMPTY, path)
            parent.nlink -= 1
        elif rmdir:
            raise KernelError(ENOTDIR, path)
        self._detach_child(parent, name, node)
        node.nlink -= 1
        fsnotify_delete(parent, node, name)

    def rename(self, old: str, new: str, cwd: Optional[Inode] = None) -> None:
        op, oname = self.resolve_parent(old, cwd or self.root)
        node = op.entries.get(oname)
        if node is None:
            raise KernelError(ENOENT, old)
        np, nname = self.resolve_parent(new, cwd or self.root)
        existing = np.entries.get(nname)
        if existing is not None:
            if existing.is_dir and not node.is_dir:
                raise KernelError(EISDIR, new)
            if node.is_dir and existing.is_dir and existing.entries:
                raise KernelError(ENOTEMPTY, new)
        self._detach_child(op, oname, node)
        self.attach_child(np, nname, node)
        if existing is not None and existing is not node:
            # the clobbered target lost its link: watchers must learn
            existing.nlink -= 1
            fsnotify_inode_gone(existing)
        fsnotify_move(op, np, node, oname, nname)

    def mknod_device(self, path: str, device, mode: int = S_IFCHR | 0o666,
                     rdev: int = 0) -> Inode:
        parent, name = self.resolve_parent(path, self.root)
        node = Inode(mode)
        node.device = device
        node.rdev = rdev
        self.attach_child(parent, name, node)
        return node

    def add_proc_file(self, path: str, generator: Callable) -> Inode:
        """Register a procfs-style dynamic file."""
        parent, name = self.resolve_parent(path, self.root)
        node = Inode(S_IFREG | 0o444)
        node.generator = generator
        node.data = None  # content produced on demand
        self.attach_child(parent, name, node)
        return node

    def add_special_file(self, path: str, opener: Callable,
                         mode: int = S_IFREG | 0o444) -> Inode:
        """Register a file whose ``open`` yields a live object fd.

        ``opener(proc, flags)`` must return a ready-to-install
        :class:`~repro.kernel.fdtable.OpenFile` (e.g. the epollable
        trace_pipe reader); the inode itself carries no content.
        """
        parent, name = self.resolve_parent(path, self.root)
        node = Inode(mode)
        node.opener = opener
        node.data = None
        self.attach_child(parent, name, node)
        return node

    def add_dynamic_symlink(self, path: str, generator: Callable) -> Inode:
        parent, name = self.resolve_parent(path, self.root)
        node = Inode(S_IFLNK | 0o777)
        node.generator = generator
        self.attach_child(parent, name, node)
        return node

    def readdir(self, node: Inode) -> List[DirEntry]:
        if not node.is_dir:
            raise KernelError(ENOTDIR)
        out = [DirEntry(node.ino, ".", DT_DIR),
               DirEntry(node.ino, "..", DT_DIR)]
        for name, child in sorted(node.entries.items()):
            out.append(DirEntry(
                child.ino, name, _DTYPE_OF.get(child.mode & S_IFMT, DT_UNKNOWN)))
        return out


class CharDevice:
    """Base class for character devices (/dev/null and friends)."""

    def read(self, length: int) -> bytes:
        return b""

    def write(self, data: bytes) -> int:
        return len(data)


class NullDevice(CharDevice):
    pass


class ZeroDevice(CharDevice):
    def read(self, length: int) -> bytes:
        return b"\x00" * length


class RandomDevice(CharDevice):
    def __init__(self, seed: int = 0x5EED):
        import random
        self._rng = random.Random(seed)

    def read(self, length: int) -> bytes:
        return bytes(self._rng.getrandbits(8) for _ in range(length))


class TTYDevice(CharDevice):
    """Terminal device: accumulates output, serves queued input."""

    def __init__(self):
        self.output = bytearray()
        self.input = bytearray()

    def read(self, length: int) -> bytes:
        out = bytes(self.input[:length])
        del self.input[:length]
        return out

    def write(self, data: bytes) -> int:
        self.output.extend(data)
        return len(data)

    def feed(self, data: bytes) -> None:
        self.input.extend(data)
