"""CFS-lite SMP scheduler: per-CPU run queues, work stealing, PI boosts.

Before this module existed, a blocked syscall was a condvar sleep on the
calling process and *every* runnable task ran whenever its host thread
was scheduled by the OS — the kernel model had no notion of CPU
contention, so kernel-time accounting (Fig. 7) measured service time on
an effectively idle machine.  This scheduler makes CPU time a real,
contended resource:

* the kernel owns ``ncpus`` **CPU slots**, each with its **own run
  queue**; a task must hold a slot to execute (guest code or syscall
  service),
* runnable tasks that don't hold a slot sit on a per-CPU queue ordered
  by *weighted virtual runtime* (CFS semantics: each task's clock
  advances at ``NICE_0_WEIGHT / weight(nice)`` of wall time, the task
  with the smallest vruntime runs next, FIFO among equals),
* **placement honors affinity**: a waking or newly attached task is
  placed on the least-loaded CPU its ``se.affinity`` mask allows
  (``0`` = all CPUs), preferring its previous CPU on ties,
* **idle CPUs steal**: a CPU whose own queue is empty pulls the
  lowest-vruntime runnable task from the busiest other queue, subject
  to the task's affinity — the scheduler is work-conserving across
  queues, not just within one,
* **migrations keep vruntime comparable**: each queue tracks its own
  ``min_vruntime``; a task moving between queues carries its *lag*
  (``vruntime - old_min``) rather than its absolute clock, so a task
  stolen from a long-running queue is neither starved nor handed the
  CPU forever on arrival,
* **preemption happens at syscall boundaries and timer ticks** exactly
  as before, and **blocking is scheduler-aware**: parked tasks release
  their slot and consume zero slice and zero vruntime.

Priority inheritance
--------------------
:meth:`Scheduler.set_boost` lets the futex layer lend a waiter's load
weight to a lock holder: the holder's effective weight becomes
``max(own weight, boost)`` until the boost is cleared at unlock.  A
nice+19 holder boosted by a nice−20 waiter accrues vruntime ~5900×
slower, so it wins the CPU back from mid-priority hogs and releases the
lock in bounded time — the classic priority-inversion fix
(``FUTEX_LOCK_PI``/``FUTEX_UNLOCK_PI`` in ``calls/proc.py``).

Service vs. runnable-wait accounting is unchanged from the single-queue
scheduler: ``kernel_time_ns`` (service), ``blocked_time_ns`` (event
sleeps) and ``sched_wait_ns`` (runnable-but-waiting) split every
syscall's latency into kernel cost vs contention.

Observability: ``sched.migrate`` / ``sched.steal`` counters and
``sched_migrate`` / ``sched_steal`` tracepoints fire on every cross-CPU
move; ``/proc/sched_debug`` renders one section per CPU (current task,
queue depth, ``min_vruntime``) above the per-task table.
"""

from __future__ import annotations

import heapq
import threading
import time as _time
from collections import defaultdict
from typing import Callable, Dict, List, Optional

from .errno import EINVAL, KernelError

# ---- nice levels and load weights (Linux sched_prio_to_weight) -----------

NICE_0_WEIGHT = 1024

# weight[nice + 20]: each nice level is ~1.25x the next (10% cpu per level)
_PRIO_TO_WEIGHT = (
    88761, 71755, 56483, 46273, 36291,          # -20 .. -16
    29154, 23254, 18705, 14949, 11916,          # -15 .. -11
    9548, 7620, 6100, 4904, 3906,               # -10 .. -6
    3121, 2501, 1991, 1586, 1277,               # -5 .. -1
    1024, 820, 655, 526, 423,                   # 0 .. 4
    335, 272, 215, 172, 137,                    # 5 .. 9
    110, 87, 70, 56, 45,                        # 10 .. 14
    36, 29, 23, 18, 15,                         # 15 .. 19
)

NICE_MIN, NICE_MAX = -20, 19


def nice_to_weight(nice: int) -> int:
    nice = max(NICE_MIN, min(NICE_MAX, nice))
    return _PRIO_TO_WEIGHT[nice + 20]


# ---- task scheduling states ----------------------------------------------

SCHED_NEW = "new"            # never ran; not yet on any queue
SCHED_RUNNABLE = "runnable"  # on a run queue, waiting for a CPU slot
SCHED_RUNNING = "running"    # holds a CPU slot
SCHED_BLOCKED = "blocked"    # off the run queue, parked on a waitqueue
SCHED_DEAD = "dead"          # exited; owns nothing

DEFAULT_SLICE_US = 2000.0    # 2 ms, between CFS min-granularity and latency


class SchedEntity:
    """Per-task scheduling state (``proc.se``)."""

    __slots__ = (
        "state", "vruntime_ns", "nice", "weight", "base_weight",
        "pi_weight", "cpu_time_ns", "wait_ns", "last_wait_ns",
        "blocked_ns", "wait_since_ns", "granted_at_ns", "last_charge_ns",
        "need_resched", "depth", "host_thread", "rq_seq", "affinity",
        "cpu", "migrations",
    )

    def __init__(self):
        self.state = SCHED_NEW
        self.vruntime_ns = 0
        self.nice = 0
        self.weight = NICE_0_WEIGHT       # effective: max(base, pi boost)
        self.base_weight = NICE_0_WEIGHT  # from the nice level alone
        self.pi_weight = 0                # PI ceiling lent by lock waiters
        self.cpu_time_ns = 0       # wall time spent holding a CPU slot
        self.wait_ns = 0           # cumulative runnable-but-not-running
        self.last_wait_ns = 0      # wait of the most recent grant
        self.blocked_ns = 0        # cumulative sleep (event wait) time
        self.wait_since_ns = 0
        self.granted_at_ns = 0     # slice start
        self.last_charge_ns = 0
        self.need_resched = False
        self.depth = 0             # syscall nesting (>0 = inside kernel)
        self.host_thread = 0       # ident of the thread that last ran us
        self.rq_seq = -1           # seq of our valid run-queue entry
        self.affinity = 0          # 0 = default mask (all cpus)
        self.cpu = -1              # run queue we live on (-1: unplaced)
        self.migrations = 0        # cross-CPU moves (placement + steals)

    def set_nice(self, nice: int) -> int:
        self.nice = max(NICE_MIN, min(NICE_MAX, nice))
        self.base_weight = nice_to_weight(self.nice)
        self.weight = max(self.base_weight, self.pi_weight)
        return self.nice

    def set_boost(self, weight: int) -> None:
        """Lend this task a priority-inheritance weight ceiling (0 clears
        the boost and restores the nice-derived weight)."""
        self.pi_weight = max(0, weight)
        self.weight = max(self.base_weight, self.pi_weight)


class CPURunQueue:
    """One CPU slot: its current task and its private vruntime queue."""

    __slots__ = ("index", "queue", "nr_runnable", "min_vruntime", "current")

    def __init__(self, index: int):
        self.index = index
        self.queue: List[tuple] = []   # heap of (vruntime, seq, pid)
        self.nr_runnable = 0           # valid (non-stale) entries
        self.min_vruntime = 0          # this queue's own normalization base
        self.current = None            # the proc holding this slot


class Scheduler:
    """Per-CPU run queues with ``ncpus`` slots and CFS-lite pick order.

    ``ncpus <= 0`` means *unconstrained*: every task is granted a slot
    immediately (the pre-scheduler behavior, useful as an ablation and
    for workloads where contention modeling is unwanted:
    ``Kernel(sched="off")``).

    The scheduler never runs its own thread.  Grants happen inline when
    a slot frees (block / yield / exit / preemption), and the *waiters*
    drive the timer tick: a task waiting for a slot wakes at the next
    slice expiry and preempts any user-mode holder whose slice is over.
    Tasks inside a syscall are non-preemptible (like a non-preempt
    kernel) — they get marked ``need_resched`` and yield at the next
    schedule point (syscall entry or exit).

    Dispatch runs two deterministic passes over the CPUs in index
    order: each free slot first picks from its own queue, then any slot
    still idle steals the lowest-vruntime eligible task from the
    busiest other queue — so no slot ever idles while affinity permits
    it to run someone.
    """

    def __init__(self, ncpus: int = 1, slice_us: float = DEFAULT_SLICE_US,
                 kernel=None, clock: Optional[Callable[[], int]] = None):
        if slice_us <= 0:
            raise KernelError(EINVAL, "slice_us must be > 0")
        self.ncpus = int(ncpus)
        self.slice_ns = int(slice_us * 1000)
        self.kernel = kernel
        # kernel observability (kernel/trace.py); the kernel creates its
        # KernelTrace before the scheduler, so this is safe at attach
        self.trace = getattr(kernel, "trace", None)
        self._now: Callable[[], int] = clock or _time.monotonic_ns
        self._cv = threading.Condition()
        self._procs: Dict[int, object] = {}    # live attached tasks
        self._running: Dict[int, object] = {}  # pid -> proc holding a slot
        self._rqs = [CPURunQueue(i) for i in range(max(self.ncpus, 1))]
        self._seq = 0
        self._nr_runnable = 0                  # across all queues
        self._nr_waiting = 0                   # threads blocked in acquire
        self._contended = False                # lock-free fast-path hint
        self.nr_steals = 0
        self.nr_migrations = 0
        # accounting sinks (shared with the kernel when attached)
        if kernel is not None:
            self.wait_ns_by_tgid = kernel.sched_wait_ns
            self.blocked_ns_by_tgid = kernel.blocked_time_ns
        else:
            self.wait_ns_by_tgid = defaultdict(int)
            self.blocked_ns_by_tgid = defaultdict(int)

    # ------------------------------------------------------------------
    # introspection (tests, /proc-style reporting)
    # ------------------------------------------------------------------

    def describe(self) -> str:
        return f"sched:cpus={self.ncpus},slice_us={self.slice_ns / 1000:g}"

    @property
    def min_vruntime(self) -> int:
        """The most-advanced queue's normalization base (on a 1-CPU
        scheduler: *the* min_vruntime, as before the SMP split)."""
        return max(rq.min_vruntime for rq in self._rqs)

    def live_pids(self) -> List[int]:
        with self._cv:
            return sorted(self._procs)

    def running_pids(self) -> List[int]:
        with self._cv:
            return sorted(self._running)

    def runnable_pids(self) -> List[int]:
        with self._cv:
            return sorted(p.pid for p in self._procs.values()
                          if p.se.state == SCHED_RUNNABLE)

    def blocked_pids(self) -> List[int]:
        with self._cv:
            return sorted(p.pid for p in self._procs.values()
                          if p.se.state == SCHED_BLOCKED)

    def total_vruntime_ns(self) -> int:
        with self._cv:
            return sum(p.se.vruntime_ns for p in self._procs.values())

    def cpu_snapshot(self) -> List[dict]:
        """Per-CPU state for ``/proc/sched_debug`` and the SMP tests."""
        with self._cv:
            out = []
            for rq in self._rqs:
                queued = sorted(
                    pid for (_, seq, pid) in rq.queue
                    if (p := self._procs.get(pid)) is not None
                    and p.se.rq_seq == seq
                    and p.se.state == SCHED_RUNNABLE
                    and p.se.cpu == rq.index)
                out.append({
                    "cpu": rq.index,
                    "current": rq.current.pid if rq.current is not None
                    else None,
                    "nr_runnable": rq.nr_runnable,
                    "min_vruntime": rq.min_vruntime,
                    "queued": queued,
                })
            return out

    # ------------------------------------------------------------------
    # core transitions (non-blocking; safe to drive directly in tests)
    # ------------------------------------------------------------------

    def task_attach(self, proc) -> None:
        """A new task becomes runnable (first schedule of its life)."""
        with self._cv:
            if proc.pid in self._procs or proc.se.state == SCHED_DEAD:
                return
            now = self._now()
            self._place(proc, now, was_blocked=False)
            self._dispatch(now)

    def task_block(self, proc) -> None:
        """Voluntarily leave the CPU (or the run queue) to wait for an
        event.  The task keeps its vruntime; it consumes no slice while
        blocked."""
        with self._cv:
            se = proc.se
            now = self._now()
            if se.state == SCHED_RUNNING:
                self._charge(proc, now)
                self._unrun(proc)
                proc.rusage.nvcsw += 1
            elif se.state == SCHED_RUNNABLE:
                self._dequeue(proc)
            elif se.state == SCHED_NEW:
                self._procs[proc.pid] = proc  # first contact: attach
            else:
                return
            se.state = SCHED_BLOCKED
            self._dispatch(now)

    def task_wake(self, proc) -> None:
        """Make a blocked task runnable again (idempotent: waking a task
        that is already runnable, running, or dead is a no-op — a task
        can never be enqueued twice)."""
        with self._cv:
            se = proc.se
            if se.state not in (SCHED_BLOCKED, SCHED_NEW):
                return
            now = self._now()
            self._place(proc, now,
                        was_blocked=(se.state == SCHED_BLOCKED))
            self._dispatch(now)

    def task_yield(self, proc) -> None:
        """``sched_yield``: put ourselves behind every task of equal or
        lower vruntime on our queue, then re-contend.  A lone task keeps
        running."""
        with self._cv:
            se = proc.se
            if se.state != SCHED_RUNNING or not self._has_runnable():
                return
            now = self._now()
            self._charge(proc, now)
            # CFS yield: jump past the leftmost entity so equals go first
            rq = self._rq_of(se)
            head = self._peek(rq)
            if head is not None:
                se.vruntime_ns = max(se.vruntime_ns, head)
            self._unrun(proc)
            proc.rusage.nvcsw += 1
            self._enqueue(proc, now)
            self._dispatch(now)

    def task_exit(self, proc) -> None:
        """The task is gone: free its slot, purge every queue."""
        with self._cv:
            se = proc.se
            now = self._now()
            if se.state == SCHED_RUNNING:
                self._charge(proc, now)
                self._unrun(proc)
            elif se.state == SCHED_RUNNABLE:
                self._dequeue(proc)
            se.state = SCHED_DEAD
            se.need_resched = False
            self._procs.pop(proc.pid, None)
            self._dispatch(now)

    def tick(self) -> None:
        """One timer tick: preempt user-mode slot holders whose slice is
        over.  Contending waiters call this on their own (see
        :meth:`_acquire`); it is public for tests and simulations."""
        with self._cv:
            self._steal_expired(self._now())

    def check_preempt(self, proc) -> bool:
        """Schedule point: give up the slot if our slice expired or a
        wakeup marked us for preemption (and someone is waiting).
        Returns True when the CPU was lost."""
        with self._cv:
            return self._preempt_locked(proc)

    def set_nice(self, proc, nice: int) -> int:
        with self._cv:
            # close out the old weight before the exchange rate changes
            self._charge(proc, self._now())
            return proc.se.set_nice(nice)

    def set_boost(self, proc, weight: int) -> None:
        """Apply (or clear, with 0) a priority-inheritance boost: the
        task's effective weight becomes ``max(own, weight)``.  Time run
        before the change is charged at the old weight."""
        with self._cv:
            self._charge(proc, self._now())
            proc.se.set_boost(weight)

    def set_affinity(self, proc, mask: int) -> None:
        """Update a task's CPU mask and migrate it off any CPU the new
        mask forbids.  Runnable tasks are re-placed immediately; a task
        running *user* code is moved in absentia; a task inside a
        syscall is marked for preemption and re-places itself at its
        next schedule point."""
        with self._cv:
            se = proc.se
            se.affinity = mask
            if self.ncpus <= 0 or se.cpu < 0 \
                    or self._cpu_allowed(se, se.cpu):
                return
            now = self._now()
            if se.state == SCHED_RUNNABLE:
                self._dequeue(proc)
                self._enqueue(proc, now, repick=True)
                self._dispatch(now)
            elif se.state == SCHED_RUNNING:
                if se.depth > 0:
                    se.need_resched = True  # moves at syscall exit
                else:
                    self._charge(proc, now)
                    self._unrun(proc)
                    proc.rusage.nivcsw += 1
                    self._enqueue(proc, now, absent=True, repick=True)
                    self._dispatch(now)
            # blocked/new tasks re-place themselves on wakeup

    # ------------------------------------------------------------------
    # kernel-facing blocking API
    # ------------------------------------------------------------------

    def syscall_enter(self, proc) -> None:
        """Acquire a CPU slot (schedule point at the syscall boundary)."""
        se = proc.se
        se.depth += 1
        if se.depth > 1:
            return  # nested kernel entry: the slot is already ours
        # Lock-free fast path.  Safe against concurrent slot-steals:
        # stealing only ever happens from a waiter's _acquire loop,
        # which sets _contended = True (under _cv) before its first
        # steal and keeps it True until it exits — so whenever a steal
        # can be in flight, this check fails and we take the locked
        # slow path.  The depth bump above additionally makes us
        # non-stealable from here on.
        if se.state == SCHED_RUNNING and not se.need_resched \
                and not self._contended:
            return  # idle kernel, we already hold a slot
        self._acquire(proc)

    def syscall_exit(self, proc) -> None:
        """Syscall-boundary preemption on the way back to user code."""
        se = proc.se
        if se.depth > 0:
            se.depth -= 1
        if se.depth == 0 and se.need_resched and se.state == SCHED_RUNNING:
            # release without waiting: the task returns to user code
            # unscheduled and re-contends at its next kernel entry
            with self._cv:
                if se.need_resched and se.state == SCHED_RUNNING \
                        and (self._has_runnable()
                             or not self._cpu_allowed(se, se.cpu)):
                    now = self._now()
                    self._charge(proc, now)
                    self._unrun(proc)
                    se.need_resched = False
                    proc.rusage.nivcsw += 1
                    self._enqueue(proc, now, absent=True)
                    self._dispatch(now)

    def sleep(self, proc, wait_s: float, notifier=None) -> None:
        """Scheduler-aware blocking: release the CPU slot, sleep on the
        process wake condition (woken early by ``notifier``/signals),
        then re-contend for a slot.  Sleep time lands in
        ``blocked_time_ns``; re-contention lands in ``sched_wait_ns``."""
        self.task_block(proc)
        se = proc.se
        w0 = self._now()
        with proc.wake:
            if notifier is None or not notifier.fired:
                proc.wake.wait(wait_s)
            if notifier is not None:
                notifier.fired = False
        dt = self._now() - w0
        se.blocked_ns += dt
        self.blocked_ns_by_tgid[proc.tgid] += dt
        self._acquire(proc)

    def yield_now(self, proc) -> None:
        """Blocking ``sched_yield``: requeue and wait to be picked again."""
        self.task_yield(proc)
        if proc.se.state != SCHED_RUNNING:
            self._acquire(proc)

    # ------------------------------------------------------------------
    # internals (call with self._cv held)
    # ------------------------------------------------------------------

    def _charge(self, proc, now: int) -> None:
        """Accrue wall time held on a CPU into cpu_time and vruntime."""
        se = proc.se
        if se.state != SCHED_RUNNING:
            return
        dt = now - se.last_charge_ns
        if dt > 0:
            se.cpu_time_ns += dt
            se.vruntime_ns += dt * NICE_0_WEIGHT // se.weight
            se.last_charge_ns = now

    def _rq_of(self, se) -> CPURunQueue:
        return self._rqs[se.cpu if 0 <= se.cpu < len(self._rqs) else 0]

    def _cpu_allowed(self, se, cpu: int) -> bool:
        if self.ncpus <= 0 or not se.affinity:
            return True
        return bool(se.affinity >> cpu & 1)

    def _eligible_cpus(self, se) -> List[int]:
        if self.ncpus <= 0 or not se.affinity:
            return list(range(max(self.ncpus, 1)))
        cpus = [c for c in range(self.ncpus) if se.affinity >> c & 1]
        return cpus or list(range(self.ncpus))

    def _select_cpu(self, se) -> int:
        """Least-loaded eligible CPU; previous CPU wins ties, then the
        lowest index (deterministic under the seeded logical clock)."""
        best, best_key = 0, None
        for c in self._eligible_cpus(se):
            rq = self._rqs[c]
            load = rq.nr_runnable + (0 if rq.current is None else 1)
            key = (load, 0 if c == se.cpu else 1, c)
            if best_key is None or key < best_key:
                best_key, best = key, c
        return best

    def _migrate(self, proc, cpu: int, steal: bool = False) -> None:
        """Move a task to ``cpu``, renormalizing vruntime: the task
        carries its lag relative to the old queue's min_vruntime, not
        its absolute clock, so cross-queue picks stay comparable."""
        se = proc.se
        old = se.cpu
        if old == cpu:
            return
        if old >= 0 and self.ncpus > 0:
            shift = self._rqs[cpu].min_vruntime \
                - self._rqs[old].min_vruntime
            se.vruntime_ns = max(0, se.vruntime_ns + shift)
            se.migrations += 1
            if steal:
                self.nr_steals += 1
            else:
                self.nr_migrations += 1
            if self.trace is not None:
                name = "sched_steal" if steal else "sched_migrate"
                self.trace.counters.inc(
                    "sched.steal" if steal else "sched.migrate")
                self.trace.emit(name, pid=proc.pid, arg=cpu)
        se.cpu = cpu

    def _unrun(self, proc) -> None:
        self._running.pop(proc.pid, None)
        se = proc.se
        if 0 <= se.cpu < len(self._rqs):
            rq = self._rqs[se.cpu]
            if rq.current is proc:
                rq.current = None

    def _enqueue(self, proc, now: int, wakeup: bool = False,
                 absent: bool = False, repick: bool = False) -> None:
        """``absent`` marks a task preempted *in absentia* (its host
        thread is still executing user code elsewhere): it is runnable
        but not stalled, so its runnable-wait clock only starts when it
        actually arrives at a schedule point (see :meth:`_acquire`).
        ``repick`` forces a fresh placement decision (wakeups); plain
        requeues stay on their CPU unless affinity forbids it."""
        se = proc.se
        if se.state == SCHED_RUNNABLE and se.rq_seq >= 0:
            return  # already queued; never twice
        if self.ncpus <= 0:
            se.cpu = 0
        elif repick or se.cpu < 0 or not self._cpu_allowed(se, se.cpu):
            self._migrate(proc, self._select_cpu(se))
        rq = self._rqs[se.cpu]
        se.state = SCHED_RUNNABLE
        se.wait_since_ns = -1 if absent else now
        self._seq += 1
        se.rq_seq = self._seq
        heapq.heappush(rq.queue, (se.vruntime_ns, self._seq, proc.pid))
        rq.nr_runnable += 1
        self._nr_runnable += 1
        self._contended = True
        if wakeup:
            self._maybe_mark_preempt(se)

    def _dequeue(self, proc) -> None:
        """Lazy removal: invalidate the heap entry via rq_seq."""
        se = proc.se
        if se.rq_seq >= 0:
            se.rq_seq = -1
            self._rq_of(se).nr_runnable -= 1
            self._nr_runnable -= 1

    def _place(self, proc, now: int, was_blocked: bool) -> None:
        """Admit a new or woken task onto a run queue (one place for
        the placement policy, used by attach, wake, and acquire).

        Placement picks the least-loaded CPU the task's affinity mask
        allows.  Sleeper placement, both directions: cap the lag (an
        ancient vruntime must not starve everyone) but grant woken
        sleepers one slice of bonus below the target queue's
        min_vruntime, so an I/O-bound task that just woke preempts
        CPU-bound tasks promptly (CFS's sleeper fairness).  New tasks
        start exactly at min_vruntime: no credit for being born late,
        no penalty versus long-running peers.
        """
        se = proc.se
        if proc.pid not in self._procs:
            self._procs[proc.pid] = proc
        self._refresh(now)
        if self.ncpus > 0:
            self._migrate(proc, self._select_cpu(se))
        rq = self._rqs[se.cpu if se.cpu >= 0 else 0]
        floor = rq.min_vruntime - self.slice_ns if was_blocked \
            else rq.min_vruntime
        se.vruntime_ns = max(se.vruntime_ns, floor)
        self._enqueue(proc, now, wakeup=was_blocked)
        if was_blocked and self.trace is not None:
            self.trace.counters.inc("sched.wakeup")
            self.trace.emit("sched_wakeup", pid=proc.pid,
                            arg=se.vruntime_ns,
                            args=(se.vruntime_ns, se.cpu))

    def _maybe_mark_preempt(self, woken_se) -> None:
        """Wakeup preemption: if the woken task out-prioritizes a task
        running on one of its eligible CPUs by more than the wakeup
        granularity, mark that task for preemption at its next schedule
        point (or tick)."""
        if self.ncpus <= 0:
            return
        cpus = self._eligible_cpus(woken_se)
        if any(self._rqs[c].current is None for c in cpus):
            return  # a free eligible slot will serve the wakeup directly
        gran = self.slice_ns // 2
        victim = None
        worst = woken_se.vruntime_ns + gran
        for c in cpus:
            p = self._rqs[c].current
            if p.se.vruntime_ns > worst and not p.se.need_resched:
                worst = p.se.vruntime_ns
                victim = p
        if victim is not None:
            victim.se.need_resched = True

    def _has_runnable(self) -> bool:
        return self._nr_runnable > 0

    def _peek(self, rq: CPURunQueue) -> Optional[int]:
        """The queue head's vruntime, dropping stale entries."""
        while rq.queue:
            vrt, seq, pid = rq.queue[0]
            proc = self._procs.get(pid)
            if proc is not None and proc.se.rq_seq == seq \
                    and proc.se.state == SCHED_RUNNABLE \
                    and proc.se.cpu == rq.index:
                return vrt
            heapq.heappop(rq.queue)  # stale
        return None

    def _pick(self, rq: CPURunQueue):
        """Pop this queue's lowest-vruntime valid task, or None."""
        while rq.queue:
            vrt, seq, pid = heapq.heappop(rq.queue)
            proc = self._procs.get(pid)
            if proc is None or proc.se.rq_seq != seq \
                    or proc.se.state != SCHED_RUNNABLE \
                    or proc.se.cpu != rq.index:
                continue  # stale entry
            proc.se.rq_seq = -1
            rq.nr_runnable -= 1
            self._nr_runnable -= 1
            return proc
        return None

    def _steal_for(self, rq: CPURunQueue):
        """Idle balance: pull the lowest-vruntime task this CPU may run
        from the busiest other queue.  Deterministic victim order:
        most-runnable first, then lowest index."""
        victims = sorted(
            (v for v in self._rqs if v is not rq and v.nr_runnable > 0),
            key=lambda v: (-v.nr_runnable, v.index))
        for v in victims:
            best_key, best = None, None
            for (vrt, seq, pid) in v.queue:
                proc = self._procs.get(pid)
                if proc is None:
                    continue
                se = proc.se
                if se.rq_seq != seq or se.state != SCHED_RUNNABLE \
                        or se.cpu != v.index:
                    continue
                if not self._cpu_allowed(se, rq.index):
                    continue
                if best_key is None or (vrt, seq) < best_key:
                    best_key, best = (vrt, seq), proc
            if best is None:
                continue
            best.se.rq_seq = -1
            v.nr_runnable -= 1
            self._nr_runnable -= 1
            self._migrate(best, rq.index, steal=True)
            return best
        return None

    def _grant(self, proc, rq: Optional[CPURunQueue], now: int) -> None:
        se = proc.se
        se.state = SCHED_RUNNING
        if rq is not None:
            rq.current = proc
        self._running[proc.pid] = proc
        # absent tasks (wait_since < 0) were executing user code the
        # whole time: no wall-clock stall to account
        waited = max(now - se.wait_since_ns, 0) \
            if se.wait_since_ns >= 0 else 0
        se.wait_ns += waited
        se.last_wait_ns = waited
        self.wait_ns_by_tgid[proc.tgid] += waited
        se.granted_at_ns = now
        se.last_charge_ns = now
        if self.trace is not None:
            self.trace.counters.inc("sched.switch")
            self.trace.emit("sched_switch", pid=proc.pid, arg=waited,
                            args=(waited, se.vruntime_ns, se.nice, se.cpu))

    def _dispatch(self, now: int) -> None:
        """Fill free CPU slots: each from its own queue first, then
        idle slots steal — no slot idles while affinity permits work."""
        granted = False
        if self.ncpus <= 0:
            rq = self._rqs[0]
            while True:
                proc = self._pick(rq)
                if proc is None:
                    break
                self._grant(proc, None, now)
                granted = True
        else:
            for rq in self._rqs:
                if rq.current is None:
                    proc = self._pick(rq)
                    if proc is not None:
                        self._grant(proc, rq, now)
                        granted = True
            for rq in self._rqs:
                if rq.current is None and self._nr_runnable > 0:
                    proc = self._steal_for(rq)
                    if proc is not None:
                        self._grant(proc, rq, now)
                        granted = True
        self._update_min_vruntime()
        self._contended = self._nr_runnable > 0 or self._nr_waiting > 0
        if granted:
            self._cv.notify_all()

    def _refresh(self, now: int) -> None:
        """Settle every running task's clock so placement decisions (new
        arrivals, wakeups) see current vruntimes, not stale ones."""
        for p in self._running.values():
            self._charge(p, now)
        self._update_min_vruntime()

    def _update_min_vruntime(self) -> None:
        if self.ncpus <= 0:
            rq = self._rqs[0]
            cands = [p.se.vruntime_ns for p in self._running.values()]
            head = self._peek(rq)
            if head is not None:
                cands.append(head)
            if cands:
                rq.min_vruntime = max(rq.min_vruntime, min(cands))
            return
        for rq in self._rqs:
            cands = []
            if rq.current is not None:
                cands.append(rq.current.se.vruntime_ns)
            head = self._peek(rq)
            if head is not None:
                cands.append(head)
            if cands:
                rq.min_vruntime = max(rq.min_vruntime, min(cands))

    def _preempt_locked(self, proc) -> bool:
        se = proc.se
        now = self._now()
        # always settle the clock: vruntime and min_vruntime stay fresh
        # even when no preemption happens (a lone task's runtime must be
        # on the books by the time a competitor shows up)
        self._charge(proc, now)
        self._update_min_vruntime()
        if se.state != SCHED_RUNNING or not self._has_runnable():
            se.need_resched = False
            return False
        if not se.need_resched and now - se.granted_at_ns < self.slice_ns:
            return False
        ran = now - se.granted_at_ns
        self._unrun(proc)
        se.need_resched = False
        proc.rusage.nivcsw += 1
        if self.trace is not None:
            self.trace.counters.inc("sched.preempt")
            self.trace.emit("sched_preempt", pid=proc.pid, arg=ran,
                            args=(ran, se.vruntime_ns))
        self._enqueue(proc, now)
        self._dispatch(now)
        return se.state != SCHED_RUNNING

    def _steal_expired(self, now: int) -> None:
        """The timer tick, run by waiters: preempt user-mode slot holders
        whose slice expired (or who are marked for preemption).  Tasks
        inside a syscall (depth > 0) are never stolen from — they yield
        at their next schedule point."""
        if not self._has_runnable() and self._nr_waiting == 0:
            return
        gran = max(self.slice_ns // 4, 1)
        for proc in list(self._running.values()):
            se = proc.se
            if se.depth > 0:
                continue
            ran = now - se.granted_at_ns
            if ran >= self.slice_ns or (se.need_resched and ran >= gran):
                self._charge(proc, now)
                self._unrun(proc)
                se.need_resched = False
                proc.rusage.nivcsw += 1
                if self.trace is not None:
                    self.trace.counters.inc("sched.preempt")
                    self.trace.emit("sched_preempt", pid=proc.pid, arg=ran,
                                    args=(ran, se.vruntime_ns))
                self._enqueue(proc, now, absent=True)
        k = self.kernel
        if k is not None:
            perf = getattr(k, "perf", None)
            if perf is not None and perf.active:
                perf.on_tick(self._running.values())
        self._dispatch(now)

    def _steal_timeout_s(self, now: int) -> float:
        """How long a slot waiter sleeps before running the tick: until
        the earliest user-mode holder's slice expires."""
        best = None
        for proc in self._running.values():
            se = proc.se
            if se.depth > 0:
                continue
            remaining = se.granted_at_ns + self.slice_ns - now
            if best is None or remaining < best:
                best = remaining
        if best is None:
            best = self.slice_ns  # heartbeat; in-kernel holders notify
        return min(max(best / 1e9, 50e-6), 0.05)

    def _acquire(self, proc) -> None:
        """Block until the task holds a CPU slot (runnable-wait)."""
        se = proc.se
        me = threading.get_ident()
        with self._cv:
            if se.state == SCHED_DEAD:
                return  # exited tasks run free (exit-path bookkeeping)
            now = self._now()
            if se.state == SCHED_RUNNING:
                if not self._preempt_locked(proc):
                    se.host_thread = me
                    return
            # one host thread drives one task at a time: any slot still
            # held by a task this thread ran earlier is provably idle —
            # context-switch it out rather than waiting for its slice
            for other in list(self._running.values()):
                ose = other.se
                if other is not proc and ose.host_thread == me \
                        and ose.depth == 0:
                    self._charge(other, now)
                    self._unrun(other)
                    other.rusage.nivcsw += 1
                    self._enqueue(other, now, absent=True)
            if se.state in (SCHED_NEW, SCHED_BLOCKED):
                self._place(proc, now,
                            was_blocked=(se.state == SCHED_BLOCKED))
            self._dispatch(now)
            if se.state == SCHED_RUNNING:
                se.host_thread = me
                return
            if se.state == SCHED_RUNNABLE and se.wait_since_ns < 0:
                # preempted in absentia earlier; we just arrived at a
                # schedule point, so the genuine stall starts now
                se.wait_since_ns = now
            self._nr_waiting += 1
            self._contended = True
            try:
                while se.state not in (SCHED_RUNNING, SCHED_DEAD):
                    self._cv.wait(self._steal_timeout_s(now))
                    now = self._now()
                    self._steal_expired(now)
            finally:
                self._nr_waiting -= 1
                self._contended = \
                    self._nr_runnable > 0 or self._nr_waiting > 0
            se.host_thread = me


def create_scheduler(spec=None, ncpus_default: int = 1, kernel=None):
    """Resolve a scheduler spec: None (CPU count from the kernel), an
    instance, ``"off"``, or ``"[sched:]cpus=N,slice_us=X"``."""
    if spec is None:
        return Scheduler(ncpus=ncpus_default, kernel=kernel)
    if isinstance(spec, Scheduler):
        if kernel is not None and spec.kernel is None:
            spec.kernel = kernel
            spec.trace = getattr(kernel, "trace", None)
            spec.wait_ns_by_tgid = kernel.sched_wait_ns
            spec.blocked_ns_by_tgid = kernel.blocked_time_ns
        return spec
    text = str(spec)
    if text.startswith("sched:"):
        text = text[len("sched:"):]
    if text in ("off", "none", "coop"):
        return Scheduler(ncpus=0, kernel=kernel)
    opts = {}
    for item in text.split(","):
        if not item:
            continue
        key, sep, value = item.partition("=")
        opts[key.strip()] = value.strip() if sep else "1"
    try:
        cpus = int(opts.pop("cpus", ncpus_default))
        slice_us = float(opts.pop("slice_us", DEFAULT_SLICE_US))
    except ValueError as exc:
        raise KernelError(EINVAL, f"bad sched spec {spec!r}: {exc}")
    if opts:
        raise KernelError(EINVAL,
                          f"unknown sched options: {sorted(opts)}")
    return Scheduler(ncpus=cpus, slice_us=slice_us, kernel=kernel)


class BackgroundSpinners:
    """CPU-bound guest load for contention tests and benchmarks.

    Each spinner is a kernel process driven by a host thread in a tight
    syscall loop (``getpid`` by default: cheap, non-blocking, so the
    spinner holds its CPU slot for whole slices and is preempted at
    syscall boundaries like any CPU-bound guest).  Use as a context
    manager or call :meth:`start` / :meth:`stop`.
    """

    def __init__(self, kernel, n: int = 2, syscall: str = "getpid",
                 nice: int = 0, affinity: int = 0):
        self.kernel = kernel
        self.n = n
        self.syscall = syscall
        self.nice = nice
        self.affinity = affinity
        self.procs = []
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()

    def start(self) -> "BackgroundSpinners":
        for i in range(self.n):
            proc = self.kernel.create_process([f"spinner{i}"], stdio=False)
            if self.nice:
                proc.se.set_nice(self.nice)
            if self.affinity:
                proc.se.affinity = self.affinity
            self.procs.append(proc)
            t = threading.Thread(target=self._spin, args=(proc,),
                                 daemon=True, name=f"spinner-{proc.pid}")
            self._threads.append(t)
            t.start()
        return self

    def _spin(self, proc) -> None:
        call = self.kernel.call
        name = self.syscall
        try:
            while not self._stop.is_set():
                call(proc, name)
        except KernelError:
            pass
        finally:
            try:
                if proc.state == "running":
                    call(proc, "exit", 0)
            except KernelError:
                pass

    def stop(self) -> None:
        self._stop.set()
        for t in self._threads:
            t.join(timeout=10)
        self._threads.clear()

    def cpu_times_ns(self) -> List[int]:
        return [p.se.cpu_time_ns for p in self.procs]

    def __enter__(self) -> "BackgroundSpinners":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
