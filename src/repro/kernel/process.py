"""Processes, threads (LWPs), clone flags, rlimits, rusage.

A :class:`Process` is one LWP.  Conventional processes and threads differ
only in which resources they *share*, selected by clone flags — exactly the
spectrum Fig. 4 of the paper draws (§3.1).  WALI's 1-to-1 model maps each
guest process/thread to one of these.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from .fdtable import FDTable
from .mm import AddressSpace
from .sched import SchedEntity
from .signals import PendingSignals, SigDispositions
from .vfs import Inode

# clone flags (linux values)
CSIGNAL = 0x000000FF
CLONE_VM = 0x00000100
CLONE_FS = 0x00000200
CLONE_FILES = 0x00000400
CLONE_SIGHAND = 0x00000800
CLONE_THREAD = 0x00010000
CLONE_PARENT_SETTID = 0x00100000
CLONE_CHILD_CLEARTID = 0x00200000
CLONE_CHILD_SETTID = 0x01000000
CLONE_SETTLS = 0x00080000

# rlimit resources
RLIMIT_CPU = 0
RLIMIT_FSIZE = 1
RLIMIT_DATA = 2
RLIMIT_STACK = 3
RLIMIT_CORE = 4
RLIMIT_RSS = 5
RLIMIT_NPROC = 6
RLIMIT_NOFILE = 7
RLIMIT_MEMLOCK = 8
RLIMIT_AS = 9
RLIM_INFINITY = 0xFFFFFFFFFFFFFFFF

# wait4 options
WNOHANG = 1
WUNTRACED = 2

# process states
STATE_RUNNING = "running"
STATE_ZOMBIE = "zombie"
STATE_DEAD = "dead"
STATE_STOPPED = "stopped"


def wait_status_exited(code: int) -> int:
    return (code & 0xFF) << 8


def wait_status_signaled(sig: int) -> int:
    return sig & 0x7F


class Rusage:
    """Resource usage accounting (getrusage / wait4)."""

    __slots__ = ("utime_ns", "stime_ns", "maxrss_kb", "nvcsw", "nivcsw",
                 "minflt", "majflt")

    def __init__(self):
        self.utime_ns = 0
        self.stime_ns = 0
        self.maxrss_kb = 0
        self.nvcsw = 0
        self.nivcsw = 0
        self.minflt = 0
        self.majflt = 0


class Process:
    """One kernel task (LWP)."""

    def __init__(self, pid: int, ppid: int, *, tgid: Optional[int] = None,
                 fdtable: Optional[FDTable] = None,
                 cwd: Optional[Inode] = None,
                 dispositions: Optional[SigDispositions] = None,
                 mm: Optional[AddressSpace] = None):
        self.pid = pid
        self.tgid = tgid if tgid is not None else pid
        self.ppid = ppid
        self.pgid = pid
        self.sid = pid
        self.uid = self.euid = 1000
        self.gid = self.egid = 1000
        self.comm = ""
        self.argv: List[str] = []
        self.environ: Dict[str, str] = {}

        self.fdtable = fdtable if fdtable is not None else FDTable()
        self.cwd = cwd
        self.umask = 0o022
        self.mm = mm
        # the guest interpreter (wasm.Machine) executing this task, linked
        # by the WALI runtime at load/clone time; the perf sampler walks
        # its frame stack for guest call-stack samples (None for tasks
        # without a guest program)
        self.machine = None

        self.dispositions = dispositions or SigDispositions()
        self.pending = PendingSignals()
        self.blocked_mask = 0
        # signalfd front-ends draining this process's pending set; signal
        # generation wakes their waitqueues (epoll/ppoll/uring readiness)
        self.signalfds: List = []

        self.state = STATE_RUNNING
        self.exit_status = 0
        self.exit_signal = 0
        self.children: List[int] = []
        self.thread_group: List[int] = [self.pid]

        self.rusage = Rusage()
        self.limits: Dict[int, tuple] = {
            RLIMIT_NOFILE: (1024, 4096),
            RLIMIT_STACK: (8 << 20, RLIM_INFINITY),
            RLIMIT_FSIZE: (RLIM_INFINITY, RLIM_INFINITY),
            RLIMIT_AS: (RLIM_INFINITY, RLIM_INFINITY),
            RLIMIT_CPU: (RLIM_INFINITY, RLIM_INFINITY),
            RLIMIT_DATA: (RLIM_INFINITY, RLIM_INFINITY),
            RLIMIT_CORE: (0, RLIM_INFINITY),
            RLIMIT_NPROC: (4096, 4096),
        }

        self.tid_address = 0
        self.robust_list = 0
        self.alarm_deadline_ns: Optional[int] = None

        # blocking syscalls wait on this; signal generation notifies it
        self.wake = threading.Condition()

        # scheduler state: vruntime, nice/weight, slice + wait accounting
        self.se = SchedEntity()

        # is_thread: True when created with CLONE_THREAD
        self.is_thread = self.tgid != self.pid

    # ---- signals ----

    def generate_signal(self, sig: int, sender_pid: int = 0,
                        sender_uid: int = 0) -> None:
        from .signals import DFL_CONT, DFL_IGN, SIG_DFL, SIG_IGN, \
            default_action, sig_bit

        # Linux discards ignored signals at generation time: a pending
        # SIGCHLD with SIG_DFL must not interrupt the parent's wait4.
        # A signalfd holding the signal in its mask keeps it queueable —
        # the fd is a consumer even when default delivery would ignore.
        act = self.dispositions.get(sig)
        if act.handler == SIG_IGN or (
                act.handler == SIG_DFL and
                default_action(sig) in (DFL_IGN, DFL_CONT)):
            if not any(sig_bit(sig) & sfd.mask for sfd in self.signalfds):
                return
        self.pending.generate(sig, sender_pid, sender_uid)
        for sfd in list(self.signalfds):
            sfd.signal_generated(sig)
        with self.wake:
            self.wake.notify_all()

    def has_deliverable_signal(self) -> bool:
        return self.pending.any_deliverable(self.blocked_mask)

    # ---- rlimits ----

    def getrlimit(self, resource: int) -> tuple:
        return self.limits.get(resource, (RLIM_INFINITY, RLIM_INFINITY))

    def setrlimit(self, resource: int, cur: int, maxv: int) -> None:
        self.limits[resource] = (cur, maxv)

    def __repr__(self):
        return (f"<Process pid={self.pid} tgid={self.tgid} "
                f"comm={self.comm!r} state={self.state}>")
