"""The block layer: disk cost model, page cache, writeback, crash consistency.

The VFS above this module is memory-backed; this module puts a *disk*
under its regular files so durability is a real, testable property:

* :class:`Disk` — a flat block device with a seek/throughput cost model.
  Every request charges ``seek_ns`` when the head moves plus a per-block
  transfer time; the accrued cost is *settled* at syscall exit by parking
  the calling task on the scheduler (I/O waits are schedule points, like
  every other blocking primitive).  A single device-busy timeline
  serializes requests, so a writeback storm queues behind foreground I/O
  exactly the way one spindle would.
* :class:`FileMapping` — per-inode page-cache state at disk-block
  granularity: which cached blocks are authoritative (``resident``),
  which are modified since their last flush (``dirty``, stamped for age
  ordering), and where the flushed copy lives (``blocks_disk`` /
  ``size_disk``).  The inode's ``bytearray`` *is* the cache; eviction
  only forgets residency (a model of cache pressure, not of memory).
* :class:`BlockFS` — mounts a VFS subtree (default ``/data``) on a disk.
  Data blocks are written copy-on-write; metadata (the directory tree
  plus every file's block list and size) is serialized as JSON into one
  of two alternating areas, and a single-block superblock naming the
  live area is the **atomic commit point**.  A crash between any two
  block writes recovers to the last committed tree: fsync'd bytes
  survive, torn un-synced writes are invisible.
* :class:`WritebackDaemon` — a kworker-style flusher applying the
  ``dirty_expire_centisecs`` age threshold every
  ``dirty_writeback_centisecs``; :meth:`BlockFS.balance_dirty` applies
  the ``dirty_ratio`` ceiling *foreground* (the writer pays), with
  ``dirty_background_ratio`` as the flush target — the Linux split.

Consistency contract (what the crash-matrix tests assert):

* ``fsync``/``fdatasync`` flush the file's dirty pages and commit, so on
  recovery the file has exactly its last-fsync'd content;
* writeback commits after flushing, so a daemon-flushed file recovers
  whole (some prefix of history), never torn mid-page;
* ``sync_file_range`` and ``O_DIRECT`` writes push data blocks but do
  **not** commit metadata — without a later fsync the new size/blocks
  are not referenced by the superblock and recovery shows the old state
  (the classic "sync_file_range is not durable" pitfall, modeled);
* ``IN_CLOSE_WRITE`` is a cache event, not a durability event: a file
  can be closed-written and still lost to a crash until writeback or
  fsync commits it.

Simplifications (documented, test-visible): hard links under the mount
persist as independent files per path; symlinks and device nodes under
the mount are not persisted; timestamps persist only at commit
granularity, so ``fdatasync`` and ``fsync`` do the same work.
"""

from __future__ import annotations

import heapq
import itertools
import json
import threading
import time as _time
import weakref
import zlib
from typing import Dict, List, Optional, Set

from .errno import EINVAL, ENOSPC, KernelError
from .eventpoll import EPOLLIN, ProcNotifier, WaitQueue
from .vfs import CharDevice, Inode, S_IFREG

BLOCKFS_MAGIC = "repro-blockfs-1"

# dirty stamps: a process-global monotone counter so writeback victim
# order is deterministic run to run (ages for the *expiry* threshold use
# wall time separately, carried alongside)
_stamp_counter = itertools.count(1)


class Disk:
    """A flat block device with a seek + per-block transfer cost model.

    ``cost_ns`` moves a model head: a request starting anywhere but one
    past the previous request's last block pays ``seek_ns``.  Writes are
    silently dropped once the disk is ``dead`` (or after the
    :meth:`fail_after` countdown reaches zero) — the crash-simulation
    primitive: everything an app does after the "kill" point never
    reaches the platter, and recovery sees only what landed before.
    """

    def __init__(self, nblocks: int = 2048, block_size: int = 4096,
                 seek_us: float = 100.0, read_us_per_block: float = 20.0,
                 write_us_per_block: float = 20.0,
                 image: Optional[bytes] = None):
        if nblocks < 16 or block_size < 512:
            raise ValueError("disk too small to host a filesystem")
        self.nblocks = nblocks
        self.block_size = block_size
        self.seek_ns = int(seek_us * 1000)
        self.read_ns = int(read_us_per_block * 1000)
        self.write_ns = int(write_us_per_block * 1000)
        if image is None:
            self.image = bytearray(nblocks * block_size)
        else:
            if len(image) != nblocks * block_size:
                raise ValueError("image size does not match geometry")
            self.image = bytearray(image)
        self._head = 0
        self.dead = False
        self._fail_after: Optional[int] = None
        self.reads = 0
        self.writes = 0
        self.seeks = 0
        self.lost_writes = 0

    # ---- cost model ----

    def cost_ns(self, blk: int, write: bool) -> int:
        cost = self.write_ns if write else self.read_ns
        if blk != self._head:
            cost += self.seek_ns
            self.seeks += 1
        self._head = blk + 1
        return cost

    # ---- transfer ----

    def read_block(self, blk: int) -> bytes:
        self.reads += 1
        off = blk * self.block_size
        return bytes(self.image[off:off + self.block_size])

    def write_block(self, blk: int, data: bytes) -> None:
        if self._fail_after is not None and self._fail_after <= 0:
            self.dead = True
        if self.dead:
            self.lost_writes += 1
            return
        if self._fail_after is not None:
            self._fail_after -= 1
        self.writes += 1
        buf = bytes(data[:self.block_size])
        if len(buf) < self.block_size:
            buf = buf + b"\x00" * (self.block_size - len(buf))
        off = blk * self.block_size
        self.image[off:off + self.block_size] = buf

    # ---- crash simulation ----

    def fail_after(self, nwrites: int) -> None:
        """Let ``nwrites`` more writes land, then die silently."""
        self._fail_after = nwrites

    def snapshot(self) -> bytes:
        return bytes(self.image)

    def clone(self, image: Optional[bytes] = None) -> "Disk":
        """A fresh disk with the same geometry/costs (for remounting a
        crash snapshot)."""
        d = Disk(self.nblocks, self.block_size, image=image
                 if image is not None else self.snapshot())
        d.seek_ns, d.read_ns, d.write_ns = \
            self.seek_ns, self.read_ns, self.write_ns
        return d


class FileMapping:
    """Page-cache state for one regular file backed by a :class:`BlockFS`.

    The inode's ``data`` bytearray is the cache; this object records, at
    disk-block granularity, which of its blocks are *resident*
    (authoritative — everything else is a zero placeholder awaiting a
    disk read), which are *dirty* (modified since last flush, stamped
    for writeback ordering and age expiry), and the flushed-on-disk
    layout (``blocks_disk``, ``None`` marking a hole, valid up to
    ``size_disk``).  ``committed`` says the on-disk metadata references
    this file; ``meta_dirty`` says the in-memory shape has diverged.
    """

    __slots__ = ("fs", "inode", "resident", "dirty", "blocks_disk",
                 "size_disk", "committed", "meta_dirty")

    def __init__(self, fs: "BlockFS", inode: Inode):
        self.fs = fs
        self.inode = inode
        self.resident: Set[int] = set()
        self.dirty: Dict[int, tuple] = {}   # idx -> (stamp, wall_ns)
        self.blocks_disk: List[Optional[int]] = []
        self.size_disk = 0
        self.committed = False
        self.meta_dirty = False

    # ---- residency (cache fill) ----

    def ensure_resident(self, offset: int, length: int,
                        charge: bool = True) -> None:
        """Fault the blocks covering ``[offset, offset+length)`` into the
        cache (disk reads for non-resident, disk-backed blocks)."""
        if length <= 0:
            return
        data = self.inode.data
        end = min(offset + length, len(data))
        if end <= max(offset, 0):
            return
        fs = self.fs
        bs = fs.disk.block_size
        hits = misses = 0
        with fs._lock:
            for idx in range(max(offset, 0) // bs, (end - 1) // bs + 1):
                if idx in self.resident:
                    hits += 1
                    continue
                misses += 1
                blk = self.blocks_disk[idx] \
                    if idx < len(self.blocks_disk) else None
                lo = idx * bs
                hi = min(lo + bs, len(data), self.size_disk)
                if blk is not None and hi > lo:
                    buf = fs._disk_read(blk, charge)
                    data[lo:hi] = buf[:hi - lo]
                # holes and never-flushed tails stay zeros
                self.resident.add(idx)
        if hits:
            fs._count("block.cache_hit", hits)
        if misses:
            fs._count("block.cache_miss", misses)

    # ---- write-side hooks (called from vfs.Inode pre/post mutation) ----

    def write_prepare(self, offset: int, length: int) -> int:
        """Pull read-modify-write edge blocks resident *before* the write
        mutates the cache; returns the start of the region that will be
        dirtied (sparse zero-fill extends it back to old EOF)."""
        old_len = len(self.inode.data)
        end = offset + length
        start = offset if offset <= old_len else old_len
        bs = self.fs.disk.block_size
        if start % bs and start < old_len:
            self.ensure_resident((start // bs) * bs, bs)
        if end % bs and end < old_len and (end // bs) != (start // bs):
            self.ensure_resident((end // bs) * bs, bs)
        elif end % bs and end < old_len:
            self.ensure_resident((end // bs) * bs, bs)
        return start

    def mark_dirty(self, offset: int, length: int) -> None:
        if length <= 0:
            self.meta_dirty = True
            return
        fs = self.fs
        bs = fs.disk.block_size
        with fs._lock:
            for idx in range(offset // bs, (offset + length - 1) // bs + 1):
                self.resident.add(idx)
                if idx not in self.dirty:
                    self.dirty[idx] = (next(_stamp_counter),
                                       _time.monotonic_ns())
                    fs._ndirty += 1
            self.meta_dirty = True
            fs._note_dirty()
        fs.balance_dirty()

    def truncate_prepare(self, old: int, new: int) -> None:
        bs = self.fs.disk.block_size
        if new < old and new % bs:
            # the kept partial block must be authoritative before the
            # shrink makes it dirty (a zero placeholder would be flushed
            # over real content otherwise)
            self.ensure_resident((new // bs) * bs, bs)
        elif new > old and old % bs:
            self.ensure_resident((old // bs) * bs, bs)

    def truncate_apply(self, old: int, new: int) -> None:
        fs = self.fs
        bs = fs.disk.block_size
        if new > old:
            self.mark_dirty(old, new - old)
            return
        with fs._lock:
            last_keep = (new - 1) // bs if new > 0 else -1
            for idx in [i for i in self.resident if i > last_keep]:
                self.resident.discard(idx)
            for idx in [i for i in self.dirty if i > last_keep]:
                del self.dirty[idx]
                fs._ndirty -= 1
            if new % bs:
                idx = new // bs
                self.resident.add(idx)
                if idx not in self.dirty:
                    self.dirty[idx] = (next(_stamp_counter),
                                       _time.monotonic_ns())
                    fs._ndirty += 1
            self.meta_dirty = True
            fs._note_dirty()

    # ---- flush & eviction ----

    def flush(self, charge: bool = True) -> int:
        """Write every dirty page copy-on-write; returns pages written.

        Old block versions go to ``pending_free`` (reusable only after
        the next commit — a crash mid-flush must still recover the
        previous content), and the on-disk layout advances to the
        current cache shape.  Metadata is *not* committed here.
        """
        fs = self.fs
        with fs._lock:
            if not self.dirty:
                return 0
            bs = fs.disk.block_size
            data = self.inode.data
            nblocks = (len(data) + bs - 1) // bs
            if len(self.blocks_disk) < nblocks:
                self.blocks_disk.extend(
                    [None] * (nblocks - len(self.blocks_disk)))
            pages = 0
            for idx in sorted(self.dirty):
                if idx >= nblocks:
                    continue  # pruned content past EOF
                newblk = fs._alloc_block()
                old = self.blocks_disk[idx]
                if old is not None:
                    fs._pending_free.append(old)
                lo = idx * bs
                fs._disk_write(newblk, bytes(data[lo:lo + bs]), charge)
                self.blocks_disk[idx] = newblk
                pages += 1
            if len(self.blocks_disk) > nblocks:
                for blk in self.blocks_disk[nblocks:]:
                    if blk is not None:
                        fs._pending_free.append(blk)
                del self.blocks_disk[nblocks:]
            self.size_disk = len(data)
            fs._ndirty -= len(self.dirty)
            self.dirty.clear()
            self.meta_dirty = True
            fs._count("block.writeback_pages", pages)
            return pages

    def evict_clean(self) -> int:
        """Forget residency of clean pages (they re-fault from disk)."""
        with self.fs._lock:
            victims = [i for i in self.resident if i not in self.dirty]
            for idx in victims:
                self.resident.discard(idx)
            return len(victims)

    def min_stamp(self) -> tuple:
        return min(self.dirty.values()) if self.dirty else (0, 0)


class BlockFS:
    """One mounted block filesystem: cache policy + commit protocol.

    On-disk layout (block granularity)::

        0                      superblock (JSON: magic/seq/area/len/crc)
        1 .. m                 metadata area A   (m = max(4, nblocks/256))
        1+m .. 2m              metadata area B
        1+2m .. nblocks-1      data blocks (COW allocated)

    A commit serializes the tree into the *inactive* area, then rewrites
    the superblock to point at it — one atomic block write flips the
    whole filesystem between consistent states.
    """

    def __init__(self, disk: Optional[Disk] = None,
                 mountpoint: str = "/data", trace=None,
                 auto_daemon: bool = True, dirty_ratio: int = 20,
                 dirty_background_ratio: int = 10,
                 dirty_expire_centisecs: int = 3000,
                 dirty_writeback_centisecs: int = 500):
        self.disk = disk if disk is not None else Disk()
        self.mountpoint = "/" + mountpoint.strip("/") \
            if mountpoint.strip("/") else "/data"
        self.trace = trace
        self.counters = trace.counters if trace is not None else None
        self.meta_blocks = max(4, self.disk.nblocks // 256)
        self.data_start = 1 + 2 * self.meta_blocks
        if self.data_start >= self.disk.nblocks:
            raise ValueError("disk too small for the metadata areas")
        self.auto_daemon = auto_daemon
        self.dirty_ratio = dirty_ratio
        self.dirty_background_ratio = dirty_background_ratio
        self.dirty_expire_centisecs = dirty_expire_centisecs
        self.dirty_writeback_centisecs = dirty_writeback_centisecs
        self._lock = threading.RLock()
        self._disk_lock = threading.Lock()
        self._busy_until_ns = 0
        self.ioq = WaitQueue()          # I/O completion waitqueue
        self._inodes: Dict[int, Inode] = {}   # ino -> inode (registry)
        self._free: List[int] = []
        self._pending_free: List[int] = []
        self._ndirty = 0
        self._seq = 0
        self._area = 1                  # first commit lands in area 0
        self._quiet = True              # mount/mkfs: no counters/trace
        self.dead = False
        self._daemon: Optional[WritebackDaemon] = None
        self.vfs = None
        self.root_inode: Optional[Inode] = None
        self._tls = threading.local()

    # ------------------------------------------------------------------
    # observability plumbing
    # ------------------------------------------------------------------

    def set_trace(self, trace) -> None:
        self.trace = trace
        self.counters = trace.counters if trace is not None else None

    def _count(self, name: str, n: int = 1) -> None:
        if self.counters is not None and not self._quiet:
            self.counters.inc(name, n)

    def _emit(self, point: str, arg: int = 0, info: str = "") -> None:
        if self.trace is not None and not self._quiet:
            self.trace.emit(point, arg=arg, info=info)

    def _counter_get(self, name: str) -> int:
        return self.counters.get(name) if self.counters is not None else 0

    # ------------------------------------------------------------------
    # cost accrual & settlement (the scheduler-charged disk model)
    # ------------------------------------------------------------------

    def pending_ns(self) -> int:
        return getattr(self._tls, "pending", 0)

    def has_pending(self) -> bool:
        return self.pending_ns() > 0

    def take_pending(self) -> int:
        ns = self.pending_ns()
        self._tls.pending = 0
        return ns

    def drop_pending(self) -> None:
        self._tls.pending = 0

    def _add_pending(self, ns: int) -> None:
        self._tls.pending = self.pending_ns() + ns

    def settle(self, kernel, proc) -> None:
        """Serve this thread's accrued device time: reserve a slot on the
        single device-busy timeline, then park until it elapses.

        With a kernel/proc the wait is a schedule point
        (:meth:`~repro.kernel.sched.Scheduler.sleep` releases the CPU
        slot, a :class:`ProcNotifier` on ``ioq`` delivers early wakes);
        the writeback daemon settles with plain sleeps.  The wait is
        uninterruptible, like a task in D state.
        """
        ns = self.take_pending()
        if ns <= 0:
            return
        with self._disk_lock:
            now = _time.monotonic_ns()
            start = max(now, self._busy_until_ns)
            end = start + ns
            self._busy_until_ns = end
        waited0 = _time.monotonic_ns()
        if kernel is None or proc is None:
            rem = end - _time.monotonic_ns()
            if rem > 0:
                _time.sleep(rem / 1e9)
        else:
            notifier = ProcNotifier(proc)
            self.ioq.subscribe(notifier)
            try:
                while True:
                    rem = end - _time.monotonic_ns()
                    if rem <= 0:
                        break
                    kernel.sched.sleep(proc, rem / 1e9, notifier)
            finally:
                self.ioq.unsubscribe(notifier)
        self._count("block.io_wait_ns", _time.monotonic_ns() - waited0)
        self._emit("block_complete", arg=ns)
        self.ioq.wake(EPOLLIN)

    # ------------------------------------------------------------------
    # raw device access (cost + counters + tracepoints)
    # ------------------------------------------------------------------

    def _disk_read(self, blk: int, charge: bool = True) -> bytes:
        cost = self.disk.cost_ns(blk, write=False)
        if charge:
            self._add_pending(cost)
        self._count("block.read_blocks")
        self._emit("block_submit", arg=blk, info="r")
        return self.disk.read_block(blk)

    def _disk_write(self, blk: int, data: bytes,
                    charge: bool = True) -> None:
        cost = self.disk.cost_ns(blk, write=True)
        if charge:
            self._add_pending(cost)
        self._count("block.write_blocks")
        self._emit("block_submit", arg=blk, info="w")
        self.disk.write_block(blk, data)
        if self.disk.dead:
            self._count("block.lost_writes")

    def _alloc_block(self) -> int:
        if not self._free:
            raise KernelError(ENOSPC, "block device full")
        return heapq.heappop(self._free)

    # ------------------------------------------------------------------
    # mount & recovery
    # ------------------------------------------------------------------

    def mount(self, vfs) -> None:
        """Attach to ``vfs`` at the mountpoint, recovering the committed
        tree from the disk (or mkfs'ing an unformatted one)."""
        self.vfs = vfs
        root = vfs.mkdirs(self.mountpoint)
        root.sb = self
        self.root_inode = root
        recovered = self._read_meta()
        if recovered is None:
            self._free = list(range(self.data_start, self.disk.nblocks))
            heapq.heapify(self._free)
            self._commit(charge=False)  # mkfs: an empty committed tree
        else:
            meta, seq, area = recovered
            self._seq = seq
            self._area = area
            used: Set[int] = set()
            for d in sorted(meta.get("dirs", ())):
                vfs.mkdirs(self.mountpoint + d)
            for path in sorted(meta.get("files", {})):
                fm = meta["files"][path]
                parent_path, _, name = path.rpartition("/")
                parent = vfs.mkdirs(self.mountpoint + parent_path) \
                    if parent_path else root
                node = Inode(S_IFREG | (fm.get("m", 0o644) & 0o7777))
                node.data = bytearray(int(fm["s"]))
                node.mtime_ns = int(fm.get("t", node.mtime_ns))
                m = FileMapping(self, node)
                m.blocks_disk = [None if b is None else int(b)
                                 for b in fm["b"]]
                m.size_disk = int(fm["s"])
                m.committed = True
                node.mapping = m
                node.sb = self
                parent.entries[name] = node
                self._inodes[node.ino] = node
                used.update(b for b in m.blocks_disk if b is not None)
            self._free = [b for b in range(self.data_start,
                                           self.disk.nblocks)
                          if b not in used]
            heapq.heapify(self._free)
            self._fix_backpointers(root)
        self._quiet = False

    def _fix_backpointers(self, dirnode: Inode) -> None:
        for name, child in dirnode.entries.items():
            child.parent = dirnode
            child.pname = name
            child.sb = self
            if child.is_dir:
                self._fix_backpointers(child)

    def _read_meta(self):
        bs = self.disk.block_size
        try:
            sb = json.loads(self.disk.read_block(0).rstrip(b"\x00").decode())
            if sb.get("magic") != BLOCKFS_MAGIC:
                return None
            area, length = int(sb["area"]), int(sb["len"])
            if area not in (0, 1) or not 0 <= length <= self.meta_blocks * bs:
                return None
            base = 1 + area * self.meta_blocks
            blob = b"".join(self.disk.read_block(base + i)
                            for i in range((length + bs - 1) // bs))[:length]
            if (zlib.crc32(blob) & 0xFFFFFFFF) != int(sb["crc"]):
                return None
            return json.loads(blob.decode()), int(sb["seq"]), area
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            return None

    # ------------------------------------------------------------------
    # adopt / disown (files entering and leaving the mounted subtree)
    # ------------------------------------------------------------------

    def adopt(self, node: Inode) -> None:
        """A node was attached under the mount: back it with the disk.
        Files arrive all-resident, all-dirty (nothing flushed yet)."""
        node.sb = self
        if node.is_file and node.generator is None and node.device is None:
            if node.mapping is not None:
                return
            m = FileMapping(self, node)
            node.mapping = m
            with self._lock:
                self._inodes[node.ino] = node
            if len(node.data):
                m.mark_dirty(0, len(node.data))
            else:
                m.meta_dirty = True
                with self._lock:
                    self._note_dirty()
        elif node.is_dir:
            for name, child in node.entries.items():
                child.parent = node
                child.pname = name
                self.adopt(child)

    def disown(self, node: Inode) -> None:
        """A node left the mount (rename out, or last link dropped):
        materialize its content in memory and release its disk blocks."""
        if node.is_file and node.mapping is not None:
            m = node.mapping
            m.ensure_resident(0, len(node.data), charge=False)
            with self._lock:
                self._ndirty -= len(m.dirty)
                m.dirty.clear()
                for blk in m.blocks_disk:
                    if blk is not None:
                        self._pending_free.append(blk)
                self._inodes.pop(node.ino, None)
            node.mapping = None
        elif node.is_dir:
            for child in node.entries.values():
                self.disown(child)
        node.sb = None

    # ------------------------------------------------------------------
    # metadata commit
    # ------------------------------------------------------------------

    def _serialize(self):
        # drop unlinked files first (their blocks free at this commit)
        for node in [n for n in self._inodes.values() if n.nlink <= 0]:
            self.disown(node)
        dirs: List[str] = []
        files: Dict[str, dict] = {}
        mappings: List[FileMapping] = []

        def walk(dirnode: Inode, prefix: str) -> None:
            for name in sorted(dirnode.entries):
                child = dirnode.entries[name]
                p = prefix + "/" + name
                if child.is_dir:
                    dirs.append(p)
                    walk(child, p)
                elif child.is_file and child.mapping is not None:
                    m = child.mapping
                    files[p] = {"b": list(m.blocks_disk), "s": m.size_disk,
                                "m": child.mode & 0o7777,
                                "t": child.mtime_ns}
                    mappings.append(m)

        walk(self.root_inode, "")
        blob = json.dumps({"dirs": dirs, "files": files}, sort_keys=True,
                          separators=(",", ":")).encode()
        return blob, mappings

    def _commit(self, charge: bool = True) -> None:
        """Write the tree to the inactive metadata area, then flip the
        superblock to it — the single atomic transition."""
        with self._lock:
            blob, mappings = self._serialize()
            bs = self.disk.block_size
            if len(blob) > self.meta_blocks * bs:
                raise KernelError(ENOSPC, "metadata area overflow")
            area = 1 - self._area
            base = 1 + area * self.meta_blocks
            for i in range(0, max(len(blob), 1), bs):
                self._disk_write(base + i // bs, blob[i:i + bs], charge)
            sb = {"magic": BLOCKFS_MAGIC, "seq": self._seq + 1,
                  "area": area, "len": len(blob),
                  "crc": zlib.crc32(blob) & 0xFFFFFFFF}
            self._disk_write(0, json.dumps(sb, sort_keys=True).encode(),
                             charge)
            self._seq += 1
            self._area = area
            while self._pending_free:
                heapq.heappush(self._free, self._pending_free.pop())
            for m in mappings:
                m.committed = True
                m.meta_dirty = bool(m.dirty) or \
                    len(m.inode.data) != m.size_disk
            self._count("block.commits")

    # ------------------------------------------------------------------
    # sync family
    # ------------------------------------------------------------------

    def fsync_inode(self, inode: Inode, datasync: bool = False,
                    charge: bool = True) -> int:
        """Flush + commit one file; ``datasync`` does the same work here
        because timestamp-only metadata is never tracked separately."""
        m = inode.mapping
        if m is None:
            return 0
        with self._lock:
            pages = m.flush(charge) if m.dirty else 0
            if pages or m.meta_dirty or not m.committed:
                self._commit(charge)
        self._count("block.fsync")
        return pages

    def flush_inode(self, inode: Inode, charge: bool = True) -> int:
        """Push a file's dirty pages without committing metadata (the
        ``sync_file_range`` / ``O_DIRECT`` write-through path)."""
        m = inode.mapping
        if m is None:
            return 0
        with self._lock:
            return m.flush(charge) if m.dirty else 0

    def sync_all(self, charge: bool = True) -> int:
        """``sync(2)``: flush every dirty file, commit unconditionally."""
        with self._lock:
            pages = 0
            for m in self._dirty_victims():
                pages += m.flush(charge)
            self._commit(charge)
            return pages

    # ------------------------------------------------------------------
    # writeback policy
    # ------------------------------------------------------------------

    def _dirty_victims(self) -> List[FileMapping]:
        out = [n.mapping for n in self._inodes.values()
               if n.mapping is not None and n.mapping.dirty]
        out.sort(key=lambda m: (m.min_stamp()[0], m.inode.ino))
        return out

    def _dirty_limit(self, ratio: int) -> int:
        return max(1, (self.disk.nblocks - self.data_start) * ratio // 100)

    def _note_dirty(self) -> None:
        if self.auto_daemon and self._daemon is None and not self.dead:
            self._daemon = WritebackDaemon(self)
            self._daemon.start()

    def balance_dirty(self) -> None:
        """Foreground throttle: past ``dirty_ratio`` the *writer* flushes
        down to the background target before its write returns."""
        with self._lock:
            if self.dead or self._ndirty <= self._dirty_limit(
                    self.dirty_ratio):
                return
            self._count("block.foreground_writeback")
            target = self._dirty_limit(self.dirty_background_ratio)
            pages = 0
            for m in self._dirty_victims():
                if self._ndirty <= target:
                    break
                pages += m.flush()
            if pages:
                self._commit()
                self._emit("writeback", arg=pages)

    def writeback(self, older_than_ns: Optional[int] = None,
                  charge: bool = True) -> int:
        """One flusher pass: write out dirty files (oldest first; only
        those aged past ``older_than_ns`` when given) and commit."""
        with self._lock:
            if self.dead:
                return 0
            cutoff = None
            if older_than_ns is not None:
                cutoff = _time.monotonic_ns() - older_than_ns
            pages = 0
            for m in self._dirty_victims():
                if cutoff is not None and m.min_stamp()[1] > cutoff:
                    continue
                pages += m.flush(charge)
            if pages:
                self._commit(charge)
                self._emit("writeback", arg=pages)
            return pages

    def drop_caches(self) -> int:
        with self._lock:
            return sum(n.mapping.evict_clean()
                       for n in self._inodes.values()
                       if n.mapping is not None)

    # ------------------------------------------------------------------
    # uring support
    # ------------------------------------------------------------------

    def fsync_for_uring(self, inode: Inode, datasync: bool = False) -> int:
        """Run an fsync synchronously but *detach* its device time from
        the submitting thread: reserve it on the busy timeline and
        return the wall-clock ns until durability, so the ring can
        complete the CQE asynchronously instead of parking the
        submitter."""
        before = self.pending_ns()
        self.fsync_inode(inode, datasync=datasync, charge=True)
        delta = self.pending_ns() - before
        self._tls.pending = before
        if delta <= 0:
            return 0
        with self._disk_lock:
            now = _time.monotonic_ns()
            start = max(now, self._busy_until_ns)
            self._busy_until_ns = start + delta
        return (start + delta) - now

    # ------------------------------------------------------------------
    # crash & teardown
    # ------------------------------------------------------------------

    def crash(self) -> Disk:
        """Kill the kernel's disk mid-flight: stop writeback, freeze the
        image, and hand back a fresh disk holding the snapshot (remount
        it with ``Kernel(block=BlockFS(disk))`` to run recovery)."""
        self.stop_daemon()
        self.dead = True
        image = self.disk.snapshot()
        self.disk.dead = True
        return self.disk.clone(image)

    def stop_daemon(self) -> None:
        if self._daemon is not None:
            self._daemon.stop()
            self._daemon = None

    # ------------------------------------------------------------------
    # stats (/proc/block)
    # ------------------------------------------------------------------

    def stats_text(self) -> str:
        d = self.disk
        with self._lock:
            resident = sum(len(n.mapping.resident)
                           for n in self._inodes.values()
                           if n.mapping is not None)
            lines = [
                f"disk: {d.nblocks} blocks x {d.block_size} B "
                f"(data {self.data_start}..{d.nblocks - 1}) seq: {self._seq}",
                f"files: {len(self._inodes)} cached_pages: {resident} "
                f"dirty_pages: {self._ndirty}",
                f"disk_reads: {d.reads} disk_writes: {d.writes} "
                f"seeks: {d.seeks} lost_writes: {d.lost_writes}",
                f"cache_hits: {self._counter_get('block.cache_hit')} "
                f"cache_misses: {self._counter_get('block.cache_miss')}",
                f"writeback_pages: "
                f"{self._counter_get('block.writeback_pages')} "
                f"commits: {self._counter_get('block.commits')} "
                f"fsyncs: {self._counter_get('block.fsync')}",
                f"foreground_writeback: "
                f"{self._counter_get('block.foreground_writeback')} "
                f"io_wait_ns: {self._counter_get('block.io_wait_ns')}",
                f"dirty_ratio: {self.dirty_ratio} "
                f"dirty_background_ratio: {self.dirty_background_ratio}",
                f"dirty_expire_centisecs: {self.dirty_expire_centisecs} "
                f"dirty_writeback_centisecs: "
                f"{self.dirty_writeback_centisecs}",
            ]
        return "\n".join(lines) + "\n"


class WritebackDaemon:
    """The kworker-style flusher thread behind one :class:`BlockFS`.

    Holds only a weak reference so hundreds of short-lived test kernels
    never leak threads: the loop exits when the filesystem is collected
    or marked dead.  Started lazily on the first dirty page."""

    def __init__(self, fs: BlockFS):
        self._fs_ref = weakref.ref(fs)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run,
                                        name="kworker-flush", daemon=True)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive() and \
                threading.current_thread() is not self._thread:
            self._thread.join(timeout=2.0)

    def _run(self) -> None:
        while True:
            fs = self._fs_ref()
            if fs is None or fs.dead:
                return
            interval = max(fs.dirty_writeback_centisecs, 1) / 100.0
            fs = None  # no strong ref while sleeping
            if self._stop.wait(interval):
                return
            fs = self._fs_ref()
            if fs is None or fs.dead:
                return
            try:
                pages = fs.writeback(
                    older_than_ns=fs.dirty_expire_centisecs * 10_000_000,
                    charge=True)
                if pages:
                    fs.settle(None, None)   # the device stays busy
                else:
                    fs.drop_pending()
            except KernelError:
                fs.drop_pending()


# ----------------------------------------------------------------------
# /proc/sys/vm knob devices (kernel/procfs.py mounts these)
# ----------------------------------------------------------------------

_VM_KNOBS = {
    "dirty_ratio": (1, 100),
    "dirty_background_ratio": (0, 100),
    "dirty_expire_centisecs": (0, 10**9),
    "dirty_writeback_centisecs": (0, 10**9),
}


class VMKnobDevice(CharDevice):
    """One writable /proc/sys/vm knob backed by a BlockFS attribute."""

    def __init__(self, fs: BlockFS, name: str):
        if name not in _VM_KNOBS:
            raise ValueError(name)
        self.fs = fs
        self.name = name

    def read(self, length: int) -> bytes:
        return f"{getattr(self.fs, self.name)}\n".encode()[:length]

    def write(self, data: bytes) -> int:
        try:
            value = int(data.split()[0])
        except (ValueError, IndexError):
            raise KernelError(EINVAL, f"bad value for {self.name}")
        lo, hi = _VM_KNOBS[self.name]
        if not lo <= value <= hi:
            raise KernelError(EINVAL, f"{self.name} out of range")
        setattr(self.fs, self.name, value)
        return len(data)


class DropCachesDevice(CharDevice):
    """/proc/sys/vm/drop_caches: any write evicts clean pages."""

    def __init__(self, fs: BlockFS):
        self.fs = fs

    def read(self, length: int) -> bytes:
        return b"0\n"[:length]

    def write(self, data: bytes) -> int:
        self.fs.drop_caches()
        return len(data)


# ----------------------------------------------------------------------
# spec-string factory (mirrors create_backend / create_scheduler)
# ----------------------------------------------------------------------

def create_blockfs(spec, trace=None) -> Optional[BlockFS]:
    """Build the kernel's block layer from a spec.

    ``None`` → a default 8 MiB disk mounted at ``/data``; ``"off"`` /
    ``"none"`` → no block layer (the VFS stays purely memory-backed);
    ``"block:blocks=4096,bs=4096,seek_us=100,read_us=20,write_us=20,
    mount=/data,daemon=1,dirty_ratio=20,..."`` → a tuned instance; a
    :class:`Disk` remounts an existing image; a :class:`BlockFS` passes
    through (its trace sink is rebound to the kernel's).
    """
    if spec is None:
        return BlockFS(Disk(), trace=trace)
    if isinstance(spec, BlockFS):
        if trace is not None and spec.trace is None:
            spec.set_trace(trace)
        return spec
    if isinstance(spec, Disk):
        return BlockFS(spec, trace=trace)
    if isinstance(spec, str):
        body = spec.strip()
        if body.lower() in ("off", "none"):
            return None
        if body.lower() == "block":
            return BlockFS(Disk(), trace=trace)
        if body.lower().startswith("block:"):
            disk_kw: Dict[str, object] = {}
            fs_kw: Dict[str, object] = {}
            for part in body[6:].split(","):
                part = part.strip()
                if not part:
                    continue
                key, _, value = part.partition("=")
                key = key.strip().lower()
                value = value.strip()
                try:
                    if key == "blocks":
                        disk_kw["nblocks"] = int(value)
                    elif key == "bs":
                        disk_kw["block_size"] = int(value)
                    elif key == "seek_us":
                        disk_kw["seek_us"] = float(value)
                    elif key == "read_us":
                        disk_kw["read_us_per_block"] = float(value)
                    elif key == "write_us":
                        disk_kw["write_us_per_block"] = float(value)
                    elif key == "mount":
                        fs_kw["mountpoint"] = value
                    elif key == "daemon":
                        fs_kw["auto_daemon"] = value not in ("0", "off")
                    elif key in ("dirty_ratio", "dirty_background_ratio",
                                 "dirty_expire_centisecs",
                                 "dirty_writeback_centisecs"):
                        fs_kw[key] = int(value)
                    else:
                        raise ValueError(f"unknown block option {key!r}")
                except ValueError as exc:
                    raise ValueError(
                        f"bad block spec component {part!r}: {exc}")
            return BlockFS(Disk(**disk_kw), trace=trace, **fs_kw)
    raise ValueError(f"unrecognized block spec: {spec!r}")
