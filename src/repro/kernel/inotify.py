"""Filesystem event notification: inotify instances, watches, wire records.

The third readiness source on the PR 1 waitqueue layer (after sockets/pipes
and the event fds): every mutating VFS operation publishes an *fsnotify*
event on the inodes it touches, and inotify instances that hold a watch on
that inode queue a Linux-wire-format record.  The instance's
:class:`~repro.kernel.eventpoll.WaitQueue` wakes on enqueue, so readiness
flows unchanged through ``epoll_pwait``, ``ppoll`` and ``io_uring``
``POLL_ADD``/``READ`` — one notification core, many front-end fds.

Linux semantics modeled here:

* watches live **on inodes** (like fsnotify marks), so events follow the
  object, not the path: a watched file renamed elsewhere keeps reporting;
* directory watches see child *namespace* events (``IN_CREATE``,
  ``IN_DELETE``, ``IN_MOVED_FROM``/``IN_MOVED_TO``) carrying the child
  name; content events (``IN_MODIFY``, ``IN_CLOSE_WRITE``...) are
  delivered to watches on the file's own inode *and* — dnotify-style,
  carrying the child name — to watches on its containing directory;
* ``rename`` emits a cookie-paired ``IN_MOVED_FROM``/``IN_MOVED_TO``
  (same nonzero cookie, FROM strictly before TO in the queue);
* the per-instance queue is bounded: a full queue drops the event and
  queues a single ``IN_Q_OVERFLOW`` record (wd = -1) instead, so the
  queue never holds more than ``max_queued`` events plus one overflow
  marker;
* an event identical to the current queue tail (same wd/mask/cookie/name)
  is coalesced away, exactly like inotify's tail-merge;
* removing a watch (explicitly, or implicitly when the inode is deleted
  or the watch was ``IN_ONESHOT``) queues ``IN_IGNORED``.

The wire record matches ``struct inotify_event``: ``{i32 wd, u32 mask,
u32 cookie, u32 len}`` followed by ``len`` name bytes (NUL-padded to a
multiple of 16 — the kernel's ``round_event_name_len``; 0 for the empty
name).
"""

from __future__ import annotations

import itertools
import struct
from collections import deque
from typing import Deque, Dict, List, Optional

from .errno import EAGAIN, EINVAL, ENOTDIR, KernelError
from .eventpoll import EPOLLHUP, EPOLLIN, WaitQueue

# event mask bits (Linux values)
IN_ACCESS = 0x00000001
IN_MODIFY = 0x00000002
IN_ATTRIB = 0x00000004
IN_CLOSE_WRITE = 0x00000008
IN_CLOSE_NOWRITE = 0x00000010
IN_OPEN = 0x00000020
IN_MOVED_FROM = 0x00000040
IN_MOVED_TO = 0x00000080
IN_CREATE = 0x00000100
IN_DELETE = 0x00000200
IN_DELETE_SELF = 0x00000400
IN_MOVE_SELF = 0x00000800

IN_CLOSE = IN_CLOSE_WRITE | IN_CLOSE_NOWRITE
IN_MOVE = IN_MOVED_FROM | IN_MOVED_TO
IN_ALL_EVENTS = 0x00000FFF

# events sent whether requested or not
IN_UNMOUNT = 0x00002000
IN_Q_OVERFLOW = 0x00004000
IN_IGNORED = 0x00008000

# watch options
IN_ONLYDIR = 0x01000000
IN_DONT_FOLLOW = 0x02000000
IN_EXCL_UNLINK = 0x04000000
IN_MASK_ADD = 0x20000000
IN_ISDIR = 0x40000000
IN_ONESHOT = 0x80000000

# inotify_init1 flags
IN_CLOEXEC = 0o2000000
IN_NONBLOCK = 0o0004000

INOTIFY_EVENT_HDR = 16          # sizeof(struct inotify_event)
MAX_QUEUED_EVENTS = 16384       # /proc/sys/fs/inotify/max_queued_events

# rename cookies pair IN_MOVED_FROM with IN_MOVED_TO across instances;
# a plain counter reproduces bit-identically run to run
_cookie_counter = itertools.count(1)


def next_cookie() -> int:
    return next(_cookie_counter)


class InotifyEvent:
    """One queued record (pre-wire-format)."""

    __slots__ = ("wd", "mask", "cookie", "name")

    def __init__(self, wd: int, mask: int, cookie: int = 0, name: str = ""):
        self.wd = wd
        self.mask = mask
        self.cookie = cookie
        self.name = name

    def same_as(self, other: "InotifyEvent") -> bool:
        return (self.wd == other.wd and self.mask == other.mask and
                self.cookie == other.cookie and self.name == other.name)

    def encode(self) -> bytes:
        """Linux ``struct inotify_event`` wire bytes."""
        name = self.name.encode()
        if name:
            # NUL-terminate, pad to a 16-byte multiple (round_event_name_len)
            pad = -(len(name) + 1) % INOTIFY_EVENT_HDR
            name = name + b"\x00" * (1 + pad)
        return struct.pack("<iIII", self.wd, self.mask & 0xFFFFFFFF,
                           self.cookie, len(name)) + name

    @property
    def size(self) -> int:
        name_len = len(self.name.encode())
        if name_len:
            name_len += 1 + (-(name_len + 1) % INOTIFY_EVENT_HDR)
        return INOTIFY_EVENT_HDR + name_len

    def __repr__(self) -> str:
        return (f"InotifyEvent(wd={self.wd}, mask=0x{self.mask:x}, "
                f"cookie={self.cookie}, name={self.name!r})")


class Watch:
    """One watch descriptor: an (instance, inode, mask) binding."""

    __slots__ = ("wd", "inode", "mask", "owner")

    def __init__(self, wd: int, inode, mask: int, owner: "Inotify"):
        self.wd = wd
        self.inode = inode
        self.mask = mask
        self.owner = owner


class Inotify:
    """One inotify instance (the object behind the fd)."""

    def __init__(self, max_queued: int = MAX_QUEUED_EVENTS, trace=None):
        self.max_queued = max_queued
        # kernel observability (kernel/trace.py); None outside a kernel
        self.trace = trace
        self.counters = trace.counters if trace is not None else None
        self.queue: Deque[InotifyEvent] = deque()
        self.watches: Dict[int, Watch] = {}
        self._by_inode: Dict[int, Watch] = {}    # id(inode) -> watch
        self.wq = WaitQueue()
        self._next_wd = 1
        self.dropped = 0          # events lost to queue overflow
        self._markers = 0         # IN_Q_OVERFLOW records currently queued
        self.closed = False

    # ------------------------------------------------------------------
    # watch management
    # ------------------------------------------------------------------

    def add_watch(self, inode, mask: int) -> int:
        if not mask & (IN_ALL_EVENTS | IN_ONESHOT):
            raise KernelError(EINVAL, "empty inotify mask")
        if mask & IN_ONLYDIR and not inode.is_dir:
            raise KernelError(ENOTDIR, "IN_ONLYDIR on a non-directory")
        existing = self._by_inode.get(id(inode))
        if existing is not None:
            # a second add on the same inode updates (or, with
            # IN_MASK_ADD, extends) the mask and returns the same wd
            if mask & IN_MASK_ADD:
                existing.mask |= mask & ~IN_MASK_ADD
            else:
                existing.mask = mask
            return existing.wd
        wd = self._next_wd
        self._next_wd += 1
        watch = Watch(wd, inode, mask, self)
        self.watches[wd] = watch
        self._by_inode[id(inode)] = watch
        if inode.watches is None:
            inode.watches = []
        inode.watches.append(watch)
        return wd

    def rm_watch(self, wd: int) -> None:
        watch = self.watches.get(wd)
        if watch is None:
            raise KernelError(EINVAL, f"unknown watch descriptor {wd}")
        self._drop_watch(watch)

    def _drop_watch(self, watch: Watch) -> None:
        """Detach a watch and queue its IN_IGNORED farewell."""
        self.watches.pop(watch.wd, None)
        self._by_inode.pop(id(watch.inode), None)
        if watch.inode.watches is not None:
            try:
                watch.inode.watches.remove(watch)
            except ValueError:
                pass
        self._enqueue(InotifyEvent(watch.wd, IN_IGNORED))

    # ------------------------------------------------------------------
    # event queue
    # ------------------------------------------------------------------

    def publish(self, watch: Watch, mask: int, name: str = "",
                cookie: int = 0) -> None:
        """Filter ``mask`` against the watch and queue a record."""
        if self.closed:
            return
        wanted = mask & (watch.mask | IN_Q_OVERFLOW | IN_IGNORED |
                         IN_UNMOUNT)
        if not wanted & ~IN_ISDIR:
            return
        if mask & IN_ISDIR:
            wanted |= IN_ISDIR
        self._enqueue(InotifyEvent(watch.wd, wanted, cookie, name))
        if watch.mask & IN_ONESHOT:
            self._drop_watch(watch)

    def _enqueue(self, ev: InotifyEvent) -> None:
        if self.closed:
            return
        if self.queue and self.queue[-1].same_as(ev):
            return  # tail coalescing, like inotify_merge
        if len(self.queue) - self._markers >= self.max_queued:
            self.dropped += 1
            if self.counters is not None:
                self.counters.inc("inotify.dropped")
            if self.trace is not None:
                self.trace.emit("inotify_overflow", arg=ev.mask,
                                info=ev.name[:16])
            if not self._markers:
                # the bound holds: max_queued events + one overflow
                # marker, wherever a partial drain left it in the queue
                self.queue.append(InotifyEvent(-1, IN_Q_OVERFLOW))
                self._markers += 1
                self.wq.wake(EPOLLIN)
            return
        self.queue.append(ev)
        if self.counters is not None:
            self.counters.inc("inotify.enqueued")
        if self.trace is not None:
            self.trace.emit("inotify_enqueue", arg=ev.mask,
                            info=ev.name[:16])
        self.wq.wake(EPOLLIN)

    # ------------------------------------------------------------------
    # fd surface
    # ------------------------------------------------------------------

    def read_step(self, length: int) -> bytes:
        """Drain whole records into ``length`` bytes; EAGAIN when empty."""
        if not self.queue:
            raise KernelError(EAGAIN, "no inotify events")
        if length < self.queue[0].size:
            # Linux: a buffer too small for the next event is EINVAL
            raise KernelError(EINVAL, "buffer too small for event")
        out = bytearray()
        while self.queue and len(out) + self.queue[0].size <= length:
            ev = self.queue.popleft()
            if ev.mask & IN_Q_OVERFLOW:
                self._markers -= 1
            out += ev.encode()
        return bytes(out)

    def poll_events(self) -> int:
        return EPOLLIN if self.queue else 0

    def close(self) -> None:
        self.closed = True
        for watch in list(self.watches.values()):
            self.watches.pop(watch.wd, None)
            self._by_inode.pop(id(watch.inode), None)
            if watch.inode.watches is not None:
                try:
                    watch.inode.watches.remove(watch)
                except ValueError:
                    pass
        self.queue.clear()
        self._markers = 0
        self.wq.wake(EPOLLHUP)


# ----------------------------------------------------------------------
# fsnotify hooks (called from the VFS / fd layer)
# ----------------------------------------------------------------------

def fsnotify(inode, mask: int, name: str = "", cookie: int = 0) -> None:
    """Publish an event to every watch on ``inode`` (cheap when none)."""
    watches = getattr(inode, "watches", None)
    if not watches:
        return
    for watch in list(watches):
        watch.owner.publish(watch, mask, name, cookie)


def fsnotify_content(inode, mask: int, cookie: int = 0) -> None:
    """A content event (IN_MODIFY, IN_CLOSE_WRITE...): the file's own
    watches see it anonymously, and — like real inotify's directory
    delivery — the containing directory's watches see it with the child
    name attached."""
    fsnotify(inode, mask, "", cookie)
    parent = getattr(inode, "parent", None)
    if parent is None or inode.is_dir:
        return
    name = getattr(inode, "pname", None)
    if name is None or parent.entries.get(name) is not inode:
        return
    fsnotify_name(parent, inode, mask, name, cookie)


def fsnotify_name(dir_inode, node, mask: int, name: str,
                  cookie: int = 0) -> None:
    """A namespace event on ``dir_inode`` about child ``name``."""
    if node is not None and node.is_dir:
        mask |= IN_ISDIR
    fsnotify(dir_inode, mask, name, cookie)


def fsnotify_move(old_dir, new_dir, node, old_name: str,
                  new_name: str) -> None:
    """Cookie-paired rename events: FROM, then TO, then MOVE_SELF."""
    cookie = next_cookie()
    fsnotify_name(old_dir, node, IN_MOVED_FROM, old_name, cookie)
    fsnotify_name(new_dir, node, IN_MOVED_TO, new_name, cookie)
    fsnotify(node, IN_MOVE_SELF)


def fsnotify_inode_gone(node) -> None:
    """The last link to ``node`` died: IN_DELETE_SELF, then its watches
    are torn down with IN_IGNORED (the inode-destruction path)."""
    if node is None or node.nlink > 0:
        return
    fsnotify(node, IN_DELETE_SELF)
    for watch in list(getattr(node, "watches", None) or ()):
        watch.owner._drop_watch(watch)


def fsnotify_delete(dir_inode, node, name: str) -> None:
    """IN_DELETE on the directory; self-delete teardown when the last
    link is gone (IN_DELETE_SELF, then the watches die with IN_IGNORED)."""
    fsnotify_name(dir_inode, node, IN_DELETE, name)
    fsnotify_inode_gone(node)


def decode_events(data: bytes):
    """Parse wire bytes back into ``(wd, mask, cookie, name)`` tuples."""
    out = []
    off = 0
    while off + INOTIFY_EVENT_HDR <= len(data):
        wd, mask, cookie, name_len = struct.unpack_from("<iIII", data, off)
        off += INOTIFY_EVENT_HDR
        name = data[off:off + name_len].split(b"\x00", 1)[0].decode()
        off += name_len
        out.append((wd, mask, cookie, name))
    return out
