"""io_uring syscalls: setup, batched enter, registration.

These sit on :mod:`repro.kernel.uring`: one ``io_uring_enter`` call
submits a whole batch of operations and (optionally) blocks until a
minimum number of completions is available — the batched alternative to
one kernel crossing per ``read``/``write``/``accept``.  A ring set up
with ``IORING_SETUP_SQPOLL`` additionally gets a kernel-side submission
poller, so a loaded guest submits with *zero* enter crossings and only
pays one ``IORING_ENTER_SQ_WAKEUP`` crossing to revive an idled poller.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errno import EINVAL, KernelError
from ..fdtable import OpenFile
from ..process import Process
from ..uring import (
    CQE, IORING_ENTER_SQ_WAKEUP, IORING_REGISTER_BUFFERS,
    IORING_REGISTER_RING, IORING_SETUP_SQPOLL, IoURing, SQE, SQPoller,
)
from ..vfs import O_RDWR


class URingCalls:
    """Mixin with io_uring syscalls; mixed into :class:`Kernel`."""

    def sys_io_uring_setup(self, proc: Process, entries: int,
                           flags: int = 0,
                           sq_thread_idle_ms: Optional[float] = None) -> int:
        ring = IoURing(entries, trace=self.trace, setup_flags=flags)
        ring.kernel = self
        ring.owner = proc  # SQPOLL submissions resolve fds in this table
        file = OpenFile(OpenFile.KIND_URING, O_RDWR, obj=ring,
                        path="anon_inode:[io_uring]")
        fd = proc.fdtable.install(file)
        if flags & IORING_SETUP_SQPOLL:
            idle = sq_thread_idle_ms if sq_thread_idle_ms else 1.0
            ring.sqpoll = SQPoller(self, ring, idle_ms=idle).start()
        return fd

    def _uring(self, proc: Process, fd: int) -> IoURing:
        file = proc.fdtable.get(fd)
        if file.kind != OpenFile.KIND_URING:
            raise KernelError(EINVAL, f"fd {fd} is not an io_uring fd")
        return file.obj

    def sys_io_uring_enter(self, proc: Process, fd: int,
                           sqes: Sequence[SQE] = (),
                           min_complete: int = 0,
                           timeout_ns: Optional[int] = None,
                           max_cqes: Optional[int] = None,
                           flags: int = 0,
                           ) -> Tuple[int, List[CQE]]:
        """Submit ``sqes``, wait for ``min_complete`` completions, reap.

        Returns ``(submitted, cqes)`` with at most ``max_cqes`` entries
        reaped (default: the CQ ring size).  A timeout returns whatever
        completed; a deliverable signal interrupts with ``EINTR``.
        """
        ring = self._uring(proc, fd)
        if min_complete > ring.cq_entries:
            # Linux's bound: more completions than the CQ ring can hold
            # can never arrive in one wait — reject instead of hanging
            raise KernelError(
                EINVAL, f"min_complete {min_complete} exceeds the CQ ring "
                        f"({ring.cq_entries} entries)")
        if flags & IORING_ENTER_SQ_WAKEUP:
            ring.sqpoll_kick()
        submitted = ring.submit(self, proc, list(sqes)) if sqes else 0

        def _avail() -> int:
            # kernel-side first, then guest-published: a CQE moving from
            # the kernel CQ into the guest ring (SQPOLL flush) is counted
            # on whichever side it lands — never missed in between
            n = ring.cq_ready()
            hook = ring.cq_avail_hook
            if hook is not None:
                n += hook()
            return n

        if min_complete > 0 and _avail() < min_complete:
            self.block_on_waitqueues(
                proc, [ring.wq],
                lambda: True if _avail() >= min_complete else None,
                timeout_ns=timeout_ns, empty=lambda: True)
        limit = ring.cq_entries if max_cqes is None else max(0, max_cqes)
        return submitted, ring.reap(limit)

    def sys_io_uring_register(self, proc: Process, fd: int, opcode: int,
                              value=0, nr_args: int = 0) -> int:
        ring = self._uring(proc, fd)
        if opcode == IORING_REGISTER_RING:
            ring.registrations[opcode] = value
            return 0
        if opcode == IORING_REGISTER_BUFFERS:
            # value: sequence of (addr, len) — the WALI host decodes and
            # bounds-checks the guest iovec table before calling down
            return ring.register_buffers(value)
        # unsupported registrations must fail loudly so guests can
        # fall back, not silently believe they took effect
        raise KernelError(EINVAL, f"io_uring_register opcode {opcode}")
