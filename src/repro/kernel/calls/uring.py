"""io_uring syscalls: setup, batched enter, registration.

These sit on :mod:`repro.kernel.uring`: one ``io_uring_enter`` call
submits a whole batch of operations and (optionally) blocks until a
minimum number of completions is available — the batched alternative to
one kernel crossing per ``read``/``write``/``accept``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errno import EINVAL, KernelError
from ..fdtable import OpenFile
from ..process import Process
from ..uring import CQE, IORING_REGISTER_RING, IoURing, SQE
from ..vfs import O_RDWR


class URingCalls:
    """Mixin with io_uring syscalls; mixed into :class:`Kernel`."""

    def sys_io_uring_setup(self, proc: Process, entries: int,
                           flags: int = 0) -> int:
        ring = IoURing(entries, trace=self.trace)
        file = OpenFile(OpenFile.KIND_URING, O_RDWR, obj=ring,
                        path="anon_inode:[io_uring]")
        return proc.fdtable.install(file)

    def _uring(self, proc: Process, fd: int) -> IoURing:
        file = proc.fdtable.get(fd)
        if file.kind != OpenFile.KIND_URING:
            raise KernelError(EINVAL, f"fd {fd} is not an io_uring fd")
        return file.obj

    def sys_io_uring_enter(self, proc: Process, fd: int,
                           sqes: Sequence[SQE] = (),
                           min_complete: int = 0,
                           timeout_ns: Optional[int] = None,
                           max_cqes: Optional[int] = None,
                           ) -> Tuple[int, List[CQE]]:
        """Submit ``sqes``, wait for ``min_complete`` completions, reap.

        Returns ``(submitted, cqes)`` with at most ``max_cqes`` entries
        reaped (default: the CQ ring size).  A timeout returns whatever
        completed; a deliverable signal interrupts with ``EINTR``.
        """
        ring = self._uring(proc, fd)
        submitted = ring.submit(self, proc, list(sqes))
        if min_complete > 0 and ring.cq_ready() < min_complete:
            self.block_on_waitqueues(
                proc, [ring.wq],
                lambda: True if ring.cq_ready() >= min_complete else None,
                timeout_ns=timeout_ns, empty=lambda: True)
        limit = ring.cq_entries if max_cqes is None else max(0, max_cqes)
        return submitted, ring.reap(limit)

    def sys_io_uring_register(self, proc: Process, fd: int, opcode: int,
                              value: int = 0, nr_args: int = 0) -> int:
        ring = self._uring(proc, fd)
        if opcode != IORING_REGISTER_RING:
            # unsupported registrations must fail loudly so guests can
            # fall back, not silently believe they took effect
            raise KernelError(EINVAL, f"io_uring_register opcode {opcode}")
        ring.registrations[opcode] = value
        return 0
