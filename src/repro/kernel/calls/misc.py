"""Time, randomness, system information and other odds and ends."""

from __future__ import annotations

import random
import threading
import time as _time
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errno import EINVAL, EPERM, KernelError
from ..process import Process
from ..signals import SIGALRM

CLOCK_REALTIME = 0
CLOCK_MONOTONIC = 1
CLOCK_PROCESS_CPUTIME_ID = 2
CLOCK_MONOTONIC_RAW = 4
CLOCK_BOOTTIME = 7


@dataclass
class UtsName:
    sysname: str = "Linux"
    nodename: str = "wali-repro"
    release: str = "6.1.0-repro"
    version: str = "#1 SMP repro"
    machine: str = "wasm32"
    domainname: str = "(none)"


@dataclass
class SysInfo:
    uptime_s: int = 0
    loads: Tuple[int, int, int] = (0, 0, 0)
    totalram: int = 1 << 30
    freeram: int = 1 << 29
    procs: int = 0
    mem_unit: int = 1


class MiscCalls:
    """Mixin with misc syscalls; mixed into :class:`Kernel`."""

    def sys_clock_gettime(self, proc: Process, clock_id: int) -> int:
        """Returns nanoseconds."""
        if clock_id in (CLOCK_MONOTONIC, CLOCK_MONOTONIC_RAW, CLOCK_BOOTTIME):
            return _time.monotonic_ns() - self.boot_monotonic_ns
        if clock_id == CLOCK_REALTIME:
            return _time.time_ns()
        if clock_id == CLOCK_PROCESS_CPUTIME_ID:
            return proc.rusage.utime_ns + proc.rusage.stime_ns
        raise KernelError(EINVAL, f"clock {clock_id}")

    def sys_clock_getres(self, proc: Process, clock_id: int) -> int:
        return 1  # 1 ns resolution

    def sys_clock_settime(self, proc: Process, clock_id: int,
                          time_ns: int) -> int:
        raise KernelError(EPERM, "cannot set the clock")

    def sys_gettimeofday(self, proc: Process) -> Tuple[int, int]:
        ns = _time.time_ns()
        return ns // 1_000_000_000, (ns % 1_000_000_000) // 1000

    def sys_nanosleep(self, proc: Process, duration_ns: int) -> int:
        if duration_ns < 0:
            raise KernelError(EINVAL, "negative sleep")
        self.block_until(proc, lambda: None, timeout_ns=duration_ns,
                         empty=lambda: 0)
        return 0

    def sys_clock_nanosleep(self, proc: Process, clock_id: int, flags: int,
                            duration_ns: int) -> int:
        return self.sys_nanosleep(proc, duration_ns)

    def sys_alarm(self, proc: Process, seconds: int) -> int:
        """Schedule SIGALRM via a timer thread (delivered at safepoints)."""
        prev = proc.alarm_deadline_ns
        now = _time.monotonic_ns()
        remaining = max(0, (prev - now) // 1_000_000_000) if prev else 0
        if seconds == 0:
            proc.alarm_deadline_ns = None
            return remaining
        proc.alarm_deadline_ns = now + seconds * 1_000_000_000
        timer = threading.Timer(
            seconds, lambda: self._fire_alarm(proc))
        timer.daemon = True
        timer.start()
        return remaining

    def _fire_alarm(self, proc: Process) -> None:
        if proc.alarm_deadline_ns is not None and \
                _time.monotonic_ns() >= proc.alarm_deadline_ns - 10_000_000:
            proc.alarm_deadline_ns = None
            proc.generate_signal(SIGALRM)

    def sys_setitimer(self, proc: Process, which: int, interval_ns: int,
                      value_ns: int) -> int:
        if value_ns:
            self.sys_alarm(proc, max(1, value_ns // 1_000_000_000))
        else:
            proc.alarm_deadline_ns = None
        return 0

    def sys_getitimer(self, proc: Process, which: int) -> int:
        return 0

    def sys_getrandom(self, proc: Process, length: int,
                      flags: int = 0) -> bytes:
        return bytes(self.rng.getrandbits(8) for _ in range(length))

    def sys_uname(self, proc: Process) -> UtsName:
        return UtsName(machine=self.machine)

    def sys_sysinfo(self, proc: Process) -> SysInfo:
        running = sum(1 for p in self.processes.values()
                      if p.state == "running")
        uptime = (_time.monotonic_ns() - self.boot_monotonic_ns) \
            // 1_000_000_000
        return SysInfo(uptime_s=uptime, procs=running)

    def sys_syslog(self, proc: Process, type_: int,
                   message: str = "") -> int:
        if message:
            self.syslog_buffer.append(message)
        return 0

    def sys_arch_prctl(self, proc: Process, code: int, addr: int) -> int:
        return 0  # TLS base registers are meaningless for Wasm guests

    def sys_chroot(self, proc: Process, path: str) -> int:
        raise KernelError(EPERM, "chroot denied")  # non-root

    def sys_memfd_create(self, proc: Process, name: str, flags: int) -> int:
        from ..vfs import Inode, S_IFREG
        from ..fdtable import OpenFile
        from ..vfs import O_RDWR
        node = Inode(S_IFREG | 0o600, proc.euid, proc.egid)
        file = OpenFile(OpenFile.KIND_REG, O_RDWR, inode=node,
                        path=f"memfd:{name}")
        return proc.fdtable.install(file)

    # eventfd2 / timerfd / epoll live in the event mixin (calls/event.py),
    # backed by the readiness waitqueue layer in kernel/eventpoll.py.
