"""Syscall implementation mixins composing the :class:`repro.kernel.Kernel`."""

from .event import EventCalls
from .fs import FSCalls
from .memsys import MemCalls
from .misc import MiscCalls
from .net import NetCalls
from .notify import NotifyCalls
from .perf import PerfCalls
from .proc import ProcCalls
from .sig import SigCalls
from .uring import URingCalls

__all__ = ["EventCalls", "FSCalls", "MemCalls", "MiscCalls", "NetCalls",
           "NotifyCalls", "PerfCalls", "ProcCalls", "SigCalls", "URingCalls"]
