"""Readiness-source syscalls for filesystem events and signals:
``inotify_init1``/``inotify_add_watch``/``inotify_rm_watch`` and
``signalfd4``.

Both front-ends sit on the waitqueue layer in
:mod:`repro.kernel.eventpoll`: mutating VFS operations (and signal
generation) publish events, and the resulting fds are first-class
epollable files — readiness flows through ``epoll_pwait``, ``ppoll``
and ``io_uring`` ``POLL_ADD``/``READ`` unchanged.
"""

from __future__ import annotations

from ..errno import EINVAL, KernelError
from ..fdtable import OpenFile
from ..inotify import (
    IN_CLOEXEC, IN_DONT_FOLLOW, IN_NONBLOCK, Inotify,
)
from ..process import Process
from ..signals import SFD_CLOEXEC, SFD_NONBLOCK, SignalFD
from ..vfs import O_NONBLOCK, O_RDONLY


class NotifyCalls:
    """Mixin with inotify/signalfd syscalls; mixed into :class:`Kernel`."""

    # ---- inotify ----

    def sys_inotify_init1(self, proc: Process, flags: int = 0) -> int:
        if flags & ~(IN_CLOEXEC | IN_NONBLOCK):
            raise KernelError(EINVAL, f"inotify_init1 flags {flags:#o}")
        file = OpenFile(
            OpenFile.KIND_INOTIFY,
            O_RDONLY | (O_NONBLOCK if flags & IN_NONBLOCK else 0),
            obj=Inotify(trace=self.trace), path="anon_inode:inotify")
        return proc.fdtable.install(file,
                                    cloexec=bool(flags & IN_CLOEXEC))

    def sys_inotify_init(self, proc: Process) -> int:
        return self.sys_inotify_init1(proc, 0)

    def _inotify(self, proc: Process, fd: int) -> Inotify:
        file = proc.fdtable.get(fd)
        if file.kind != OpenFile.KIND_INOTIFY:
            raise KernelError(EINVAL, f"fd {fd} is not an inotify fd")
        return file.obj

    def sys_inotify_add_watch(self, proc: Process, fd: int, path: str,
                              mask: int) -> int:
        ino = self._inotify(proc, fd)
        node = self.vfs.resolve(path, proc.cwd or self.vfs.root,
                                follow=not mask & IN_DONT_FOLLOW, proc=proc)
        return ino.add_watch(node, mask)

    def sys_inotify_rm_watch(self, proc: Process, fd: int, wd: int) -> int:
        self._inotify(proc, fd).rm_watch(wd)
        return 0

    # ---- signalfd ----

    def sys_signalfd4(self, proc: Process, fd: int, mask: int,
                      flags: int = 0) -> int:
        if flags & ~(SFD_CLOEXEC | SFD_NONBLOCK):
            raise KernelError(EINVAL, f"signalfd4 flags {flags:#o}")
        if fd != -1:
            # update the mask of an existing signalfd in place
            file = proc.fdtable.get(fd)
            if file.kind != OpenFile.KIND_SIGNALFD:
                raise KernelError(EINVAL, f"fd {fd} is not a signalfd")
            file.obj.set_mask(mask)
            return fd
        sfd = SignalFD(proc, mask)
        file = OpenFile(
            OpenFile.KIND_SIGNALFD,
            O_RDONLY | (O_NONBLOCK if flags & SFD_NONBLOCK else 0),
            obj=sfd, path="anon_inode:[signalfd]")
        return proc.fdtable.install(file,
                                    cloexec=bool(flags & SFD_CLOEXEC))

    def sys_signalfd(self, proc: Process, fd: int, mask: int) -> int:
        return self.sys_signalfd4(proc, fd, mask, 0)
