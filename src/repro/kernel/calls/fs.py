"""Filesystem syscalls.

Kernel-level signatures use Python types (str paths, bytes buffers); the
WALI layer performs the pointer translation and struct encoding (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errno import (
    EACCES, EBADF, EEXIST, EINVAL, EISDIR, ELOOP, ENOENT, ENOSYS, ENOTDIR,
    ENOTEMPTY, ENOTTY, EPERM, ESPIPE, KernelError,
)
from ..fdtable import (
    F_DUPFD, F_DUPFD_CLOEXEC, F_GETFD, F_GETFL, F_SETFD, F_SETFL, FD_CLOEXEC,
    OpenFile, Pipe, SEEK_CUR, SEEK_END, SEEK_SET,
)
from ..inotify import (
    IN_ATTRIB, IN_CREATE, fsnotify_content, fsnotify_inode_gone,
    fsnotify_move, fsnotify_name,
)
from ..process import Process, RLIMIT_FSIZE, RLIM_INFINITY
from ..vfs import (
    AT_FDCWD, AT_REMOVEDIR, AT_SYMLINK_NOFOLLOW, DirEntry, Inode,
    O_ACCMODE, O_APPEND, O_CLOEXEC, O_CREAT, O_DIRECT, O_DIRECTORY,
    O_DSYNC, O_EXCL, O_NOFOLLOW, O_NONBLOCK, O_RDONLY, O_RDWR, O_SYNC,
    O_TRUNC, O_WRONLY, S_IFDIR, S_IFIFO, S_IFLNK, S_IFMT, S_IFREG,
)

# ioctl requests we answer
TCGETS = 0x5401
TIOCGWINSZ = 0x5413
FIONREAD = 0x541B
FIONBIO = 0x5421


@dataclass
class Stat:
    """ISA-independent stat payload; WALI encodes the per-ISA kstat layout."""

    st_dev: int = 0
    st_ino: int = 0
    st_mode: int = 0
    st_nlink: int = 0
    st_uid: int = 0
    st_gid: int = 0
    st_rdev: int = 0
    st_size: int = 0
    st_blksize: int = 4096
    st_blocks: int = 0
    st_atime_ns: int = 0
    st_mtime_ns: int = 0
    st_ctime_ns: int = 0


@dataclass
class StatFS:
    f_type: int = 0x01021994  # TMPFS_MAGIC
    f_bsize: int = 4096
    f_blocks: int = 262144
    f_bfree: int = 131072
    f_bavail: int = 131072
    f_files: int = 65536
    f_ffree: int = 32768
    f_namelen: int = 255


def _stat_of(node: Inode) -> Stat:
    return Stat(
        st_dev=1, st_ino=node.ino, st_mode=node.mode, st_nlink=node.nlink,
        st_uid=node.uid, st_gid=node.gid, st_rdev=node.rdev,
        st_size=node.size, st_blocks=(node.size + 511) // 512,
        st_atime_ns=node.atime_ns, st_mtime_ns=node.mtime_ns,
        st_ctime_ns=node.ctime_ns)


class FSCalls:
    """Mixin with filesystem syscalls; mixed into :class:`Kernel`."""

    # ---- path helpers ----

    def _at_dir(self, proc: Process, dirfd: int) -> Inode:
        if dirfd == AT_FDCWD:
            return proc.cwd or self.vfs.root
        file = proc.fdtable.get(dirfd)
        if file.inode is None or not file.inode.is_dir:
            raise KernelError(ENOTDIR, f"dirfd {dirfd}")
        return file.inode

    def _resolve_at(self, proc: Process, dirfd: int, path: str,
                    follow: bool = True) -> Inode:
        return self.vfs.resolve(path, self._at_dir(proc, dirfd), follow, proc)

    # ---- open/close ----

    def sys_openat(self, proc: Process, dirfd: int, path: str, flags: int,
                   mode: int = 0o644) -> int:
        base = self._at_dir(proc, dirfd)
        try:
            node = self.vfs.resolve(path, base,
                                    follow=not flags & O_NOFOLLOW, proc=proc)
            if flags & O_CREAT and flags & O_EXCL:
                raise KernelError(EEXIST, path)
        except KernelError as exc:
            if exc.errno != ENOENT or not flags & O_CREAT:
                raise
            parent, name = self.vfs.resolve_parent(path, base, proc)
            node = Inode(S_IFREG | (mode & ~proc.umask & 0o7777),
                         proc.euid, proc.egid)
            fsize = proc.getrlimit(RLIMIT_FSIZE)[0]
            if fsize != RLIM_INFINITY:
                node.fs_limit = fsize
            self.vfs.attach_child(parent, name, node)
            fsnotify_name(parent, node, IN_CREATE, name)
        if node.is_symlink and flags & O_NOFOLLOW:
            raise KernelError(ELOOP, path)
        if flags & O_DIRECTORY and not node.is_dir:
            raise KernelError(ENOTDIR, path)
        if node.opener is not None:
            # live-object endpoint (e.g. /proc/trace_pipe): the node
            # hands out its own open-file description
            return proc.fdtable.install(node.opener(proc, flags),
                                        cloexec=bool(flags & O_CLOEXEC))
        accmode = flags & O_ACCMODE
        if node.is_dir:
            if accmode != O_RDONLY:
                raise KernelError(EISDIR, path)
            kind = OpenFile.KIND_DIR
        elif node.is_chr:
            kind = OpenFile.KIND_CHR
        else:
            kind = OpenFile.KIND_REG
        if flags & O_TRUNC and node.is_file and accmode != O_RDONLY:
            node.truncate(0)
        file = OpenFile(kind, flags, inode=node, path=path)
        if node.generator is not None:
            file.set_proc_content(node.generator(proc))
        return proc.fdtable.install(file, cloexec=bool(flags & O_CLOEXEC))

    def sys_open(self, proc: Process, path: str, flags: int,
                 mode: int = 0o644) -> int:
        return self.sys_openat(proc, AT_FDCWD, path, flags, mode)

    def sys_creat(self, proc: Process, path: str, mode: int) -> int:
        return self.sys_openat(proc, AT_FDCWD, path,
                               O_CREAT | O_WRONLY | O_TRUNC, mode)

    def sys_close(self, proc: Process, fd: int) -> int:
        proc.fdtable.close(fd)
        return 0

    # ---- read/write ----

    def sys_read(self, proc: Process, fd: int, length: int) -> bytes:
        if length < 0:
            raise KernelError(EINVAL, "negative length")
        file = proc.fdtable.get(fd)
        if not file.readable_mode:
            raise KernelError(EBADF, "fd not open for reading")
        data = self._blocking_io(proc, file, lambda: file.read(length))
        if file.kind == OpenFile.KIND_REG:
            self.storage_charge(len(data))
            if file.flags & O_DIRECT and file.inode is not None \
                    and file.inode.mapping is not None:
                file.inode.mapping.evict_clean()  # bypass the page cache
        return data

    def sys_write(self, proc: Process, fd: int, data) -> int:
        file = proc.fdtable.get(fd)
        if not file.writable_mode:
            raise KernelError(EBADF, "fd not open for writing")
        data = bytes(data)
        total = 0
        while total < len(data):
            n = self._blocking_io(
                proc, file, lambda: file.write(data[total:]), on_pipe_full=True)
            total += n
            if file.kind not in (OpenFile.KIND_PIPE_W, OpenFile.KIND_SOCK):
                break  # regular files/devices write everything in one step
        if file.kind == OpenFile.KIND_REG:
            self.storage_charge(total)
            self._write_through(file)
        return total

    def sys_pread64(self, proc: Process, fd: int, length: int,
                    offset: int) -> bytes:
        file = proc.fdtable.get(fd)
        if not file.readable_mode:
            raise KernelError(EBADF)
        data = file.pread(length, offset)
        self.storage_charge(len(data))
        if file.kind == OpenFile.KIND_REG and file.flags & O_DIRECT \
                and file.inode is not None \
                and file.inode.mapping is not None:
            file.inode.mapping.evict_clean()
        return data

    def sys_pwrite64(self, proc: Process, fd: int, data, offset: int) -> int:
        file = proc.fdtable.get(fd)
        if not file.writable_mode:
            raise KernelError(EBADF)
        n = file.pwrite(bytes(data), offset)
        self.storage_charge(n)
        if file.kind == OpenFile.KIND_REG:
            self._write_through(file)
        return n

    def _write_through(self, file: OpenFile) -> None:
        """Apply O_SYNC / O_DSYNC / O_DIRECT semantics after a write.

        O_SYNC and O_DSYNC fsync (flush + metadata commit: durable);
        O_DIRECT pushes data blocks straight through the cache *without*
        a commit — on-disk data, uncommitted metadata, so the write is
        still not crash-durable until an explicit fsync (the Linux
        contract: O_DIRECT is about the cache, not durability).
        """
        node = file.inode
        if node is None or node.mapping is None or self.blockdev is None:
            return
        if file.flags & (O_SYNC | O_DSYNC):
            self.blockdev.fsync_inode(
                node, datasync=(file.flags & O_SYNC) != O_SYNC)
        elif file.flags & O_DIRECT:
            self.blockdev.flush_inode(node)
            node.mapping.evict_clean()

    def sys_readv(self, proc: Process, fd: int, lengths: List[int]) -> bytes:
        return self.sys_read(proc, fd, sum(lengths))

    def sys_writev(self, proc: Process, fd: int, bufs: List[bytes]) -> int:
        return self.sys_write(proc, fd, b"".join(bytes(b) for b in bufs))

    def sys_lseek(self, proc: Process, fd: int, offset: int,
                  whence: int) -> int:
        return proc.fdtable.get(fd).seek(offset, whence)

    def sys_sendfile(self, proc: Process, out_fd: int, in_fd: int,
                     offset: Optional[int], count: int) -> int:
        infile = proc.fdtable.get(in_fd)
        if offset is None:
            data = infile.read(count)
        else:
            data = infile.pread(count, offset)
        return self.sys_write(proc, out_fd, data)

    # ---- fd management ----

    def sys_dup(self, proc: Process, fd: int) -> int:
        return proc.fdtable.dup(fd)

    def sys_dup2(self, proc: Process, oldfd: int, newfd: int) -> int:
        return proc.fdtable.dup2(oldfd, newfd)

    def sys_dup3(self, proc: Process, oldfd: int, newfd: int,
                 flags: int) -> int:
        if oldfd == newfd:
            raise KernelError(EINVAL, "dup3 with equal fds")
        return proc.fdtable.dup2(oldfd, newfd,
                                 cloexec=bool(flags & O_CLOEXEC))

    def sys_fcntl(self, proc: Process, fd: int, cmd: int, arg: int = 0) -> int:
        table = proc.fdtable
        if cmd == F_DUPFD:
            return table.dup(fd, lowest=arg)
        if cmd == F_DUPFD_CLOEXEC:
            return table.dup(fd, lowest=arg, cloexec=True)
        if cmd == F_GETFD:
            return FD_CLOEXEC if table.get_cloexec(fd) else 0
        if cmd == F_SETFD:
            table.set_cloexec(fd, bool(arg & FD_CLOEXEC))
            return 0
        if cmd == F_GETFL:
            return table.get(fd).flags
        if cmd == F_SETFL:
            file = table.get(fd)
            settable = O_APPEND | O_NONBLOCK
            file.flags = (file.flags & ~settable) | (arg & settable)
            return 0
        raise KernelError(EINVAL, f"fcntl cmd {cmd}")

    def sys_pipe2(self, proc: Process, flags: int = 0) -> Tuple[int, int]:
        pipe = Pipe()
        cloexec = bool(flags & O_CLOEXEC)
        r = proc.fdtable.install(
            OpenFile(OpenFile.KIND_PIPE_R, flags & O_NONBLOCK, pipe=pipe),
            cloexec)
        w = proc.fdtable.install(
            OpenFile(OpenFile.KIND_PIPE_W, flags & O_NONBLOCK, pipe=pipe),
            cloexec)
        return r, w

    def sys_pipe(self, proc: Process) -> Tuple[int, int]:
        return self.sys_pipe2(proc, 0)

    # ---- metadata ----

    def sys_fstat(self, proc: Process, fd: int) -> Stat:
        file = proc.fdtable.get(fd)
        if file.inode is None:
            return Stat(st_mode=S_IFIFO | 0o600, st_ino=0)
        return _stat_of(file.inode)

    def sys_newfstatat(self, proc: Process, dirfd: int, path: str,
                       flags: int = 0) -> Stat:
        if not path and flags & 0x1000:  # AT_EMPTY_PATH
            return self.sys_fstat(proc, dirfd)
        follow = not flags & AT_SYMLINK_NOFOLLOW
        return _stat_of(self._resolve_at(proc, dirfd, path, follow))

    def sys_stat(self, proc: Process, path: str) -> Stat:
        return self.sys_newfstatat(proc, AT_FDCWD, path)

    def sys_lstat(self, proc: Process, path: str) -> Stat:
        return self.sys_newfstatat(proc, AT_FDCWD, path, AT_SYMLINK_NOFOLLOW)

    def sys_faccessat(self, proc: Process, dirfd: int, path: str,
                      mode: int = 0) -> int:
        node = self._resolve_at(proc, dirfd, path)
        if mode & 0o2 and not node.mode & 0o222 and proc.euid != 0:
            raise KernelError(EACCES, path)
        return 0

    def sys_access(self, proc: Process, path: str, mode: int) -> int:
        return self.sys_faccessat(proc, AT_FDCWD, path, mode)

    def sys_statfs(self, proc: Process, path: str) -> StatFS:
        self.vfs.resolve(path, proc.cwd or self.vfs.root, proc=proc)
        return StatFS()

    def sys_fstatfs(self, proc: Process, fd: int) -> StatFS:
        proc.fdtable.get(fd)
        return StatFS()

    def sys_statx(self, proc: Process, dirfd: int, path: str,
                  flags: int = 0) -> Stat:
        return self.sys_newfstatat(proc, dirfd, path, flags)

    # ---- directories & links ----

    def sys_getdents64(self, proc: Process, fd: int) -> List[DirEntry]:
        file = proc.fdtable.get(fd)
        if file.kind != OpenFile.KIND_DIR:
            raise KernelError(ENOTDIR, str(fd))
        if file._dir_snapshot is None:
            file._dir_snapshot = self.vfs.readdir(file.inode)
        out = file._dir_snapshot[file.offset:]
        file.offset = len(file._dir_snapshot)
        return out

    def sys_getcwd(self, proc: Process) -> str:
        return self.vfs.path_of(proc.cwd or self.vfs.root)

    def sys_chdir(self, proc: Process, path: str) -> int:
        node = self.vfs.resolve(path, proc.cwd or self.vfs.root, proc=proc)
        if not node.is_dir:
            raise KernelError(ENOTDIR, path)
        proc.cwd = node
        return 0

    def sys_fchdir(self, proc: Process, fd: int) -> int:
        file = proc.fdtable.get(fd)
        if file.inode is None or not file.inode.is_dir:
            raise KernelError(ENOTDIR, str(fd))
        proc.cwd = file.inode
        return 0

    def sys_mkdirat(self, proc: Process, dirfd: int, path: str,
                    mode: int) -> int:
        base = self._at_dir(proc, dirfd)
        parent, name = self.vfs.resolve_parent(path, base, proc)
        if name in parent.entries:
            raise KernelError(EEXIST, path)
        node = Inode(S_IFDIR | (mode & ~proc.umask & 0o7777),
                     proc.euid, proc.egid)
        self.vfs.attach_child(parent, name, node)
        parent.nlink += 1
        fsnotify_name(parent, node, IN_CREATE, name)
        return 0

    def sys_mkdir(self, proc: Process, path: str, mode: int) -> int:
        return self.sys_mkdirat(proc, AT_FDCWD, path, mode)

    def sys_unlinkat(self, proc: Process, dirfd: int, path: str,
                     flags: int = 0) -> int:
        base = self._at_dir(proc, dirfd)
        self.vfs.unlink(path, base, rmdir=bool(flags & AT_REMOVEDIR))
        return 0

    def sys_unlink(self, proc: Process, path: str) -> int:
        return self.sys_unlinkat(proc, AT_FDCWD, path, 0)

    def sys_rmdir(self, proc: Process, path: str) -> int:
        return self.sys_unlinkat(proc, AT_FDCWD, path, AT_REMOVEDIR)

    def sys_renameat(self, proc: Process, olddirfd: int, old: str,
                     newdirfd: int, new: str) -> int:
        obase = self._at_dir(proc, olddirfd)
        nbase = self._at_dir(proc, newdirfd)
        if obase is not nbase and (old.startswith("/") != new.startswith("/")):
            pass  # both resolved independently below anyway
        # VFS rename resolves both paths from their own bases:
        op, oname = self.vfs.resolve_parent(old, obase, proc)
        node = op.entries.get(oname)
        if node is None:
            raise KernelError(ENOENT, old)
        np, nname = self.vfs.resolve_parent(new, nbase, proc)
        existing = np.entries.get(nname)
        if existing is not None:
            # same clobber guards as vfs.rename
            if existing.is_dir and not node.is_dir:
                raise KernelError(EISDIR, new)
            if node.is_dir and existing.is_dir and existing.entries:
                raise KernelError(ENOTEMPTY, new)
        self.vfs._detach_child(op, oname, node)
        self.vfs.attach_child(np, nname, node)
        if existing is not None and existing is not node:
            existing.nlink -= 1
            fsnotify_inode_gone(existing)
        fsnotify_move(op, np, node, oname, nname)
        return 0

    def sys_rename(self, proc: Process, old: str, new: str) -> int:
        return self.sys_renameat(proc, AT_FDCWD, old, AT_FDCWD, new)

    def sys_renameat2(self, proc: Process, olddirfd: int, old: str,
                      newdirfd: int, new: str, flags: int = 0) -> int:
        return self.sys_renameat(proc, olddirfd, old, newdirfd, new)

    def sys_linkat(self, proc: Process, olddirfd: int, old: str,
                   newdirfd: int, new: str, flags: int = 0) -> int:
        self.vfs.link(old, new, self._at_dir(proc, olddirfd))
        return 0

    def sys_link(self, proc: Process, old: str, new: str) -> int:
        return self.sys_linkat(proc, AT_FDCWD, old, AT_FDCWD, new, 0)

    def sys_symlinkat(self, proc: Process, target: str, dirfd: int,
                      path: str) -> int:
        self.vfs.symlink(target, path, self._at_dir(proc, dirfd))
        return 0

    def sys_symlink(self, proc: Process, target: str, path: str) -> int:
        return self.sys_symlinkat(proc, target, AT_FDCWD, path)

    def sys_readlinkat(self, proc: Process, dirfd: int, path: str) -> str:
        node = self._resolve_at(proc, dirfd, path, follow=False)
        if not node.is_symlink:
            raise KernelError(EINVAL, path)
        if node.target is None and node.generator is not None:
            return node.generator(proc)
        return node.target or ""

    def sys_readlink(self, proc: Process, path: str) -> str:
        return self.sys_readlinkat(proc, AT_FDCWD, path)

    # ---- permissions / ownership / sizes ----

    def sys_fchmodat(self, proc: Process, dirfd: int, path: str,
                     mode: int) -> int:
        node = self._resolve_at(proc, dirfd, path)
        node.mode = (node.mode & S_IFMT) | (mode & 0o7777)
        fsnotify_content(node, IN_ATTRIB)
        return 0

    def sys_chmod(self, proc: Process, path: str, mode: int) -> int:
        return self.sys_fchmodat(proc, AT_FDCWD, path, mode)

    def sys_fchmod(self, proc: Process, fd: int, mode: int) -> int:
        node = proc.fdtable.get(fd).inode
        if node is None:
            raise KernelError(EBADF)
        node.mode = (node.mode & S_IFMT) | (mode & 0o7777)
        return 0

    def sys_fchownat(self, proc: Process, dirfd: int, path: str, uid: int,
                     gid: int, flags: int = 0) -> int:
        follow = not flags & AT_SYMLINK_NOFOLLOW
        node = self._resolve_at(proc, dirfd, path, follow)
        if uid != 0xFFFFFFFF:
            node.uid = uid
        if gid != 0xFFFFFFFF:
            node.gid = gid
        fsnotify_content(node, IN_ATTRIB)
        return 0

    def sys_chown(self, proc: Process, path: str, uid: int, gid: int) -> int:
        return self.sys_fchownat(proc, AT_FDCWD, path, uid, gid)

    def sys_lchown(self, proc: Process, path: str, uid: int, gid: int) -> int:
        return self.sys_fchownat(proc, AT_FDCWD, path, uid, gid,
                                 AT_SYMLINK_NOFOLLOW)

    def sys_fchown(self, proc: Process, fd: int, uid: int, gid: int) -> int:
        node = proc.fdtable.get(fd).inode
        if node is None:
            raise KernelError(EBADF)
        if uid != 0xFFFFFFFF:
            node.uid = uid
        if gid != 0xFFFFFFFF:
            node.gid = gid
        return 0

    def sys_truncate(self, proc: Process, path: str, length: int) -> int:
        node = self.vfs.resolve(path, proc.cwd or self.vfs.root, proc=proc)
        if not node.is_file:
            raise KernelError(EISDIR, path)
        node.truncate(length)
        return 0

    def sys_ftruncate(self, proc: Process, fd: int, length: int) -> int:
        file = proc.fdtable.get(fd)
        if file.kind != OpenFile.KIND_REG:
            raise KernelError(EINVAL)
        file.inode.truncate(length)
        return 0

    def sys_umask(self, proc: Process, mask: int) -> int:
        old = proc.umask
        proc.umask = mask & 0o777
        return old

    def sys_utimensat(self, proc: Process, dirfd: int, path: str,
                      atime_ns: Optional[int], mtime_ns: Optional[int],
                      flags: int = 0) -> int:
        node = self._resolve_at(proc, dirfd, path or ".",
                                follow=not flags & AT_SYMLINK_NOFOLLOW)
        if atime_ns is not None:
            node.atime_ns = atime_ns
        if mtime_ns is not None:
            node.mtime_ns = mtime_ns
        fsnotify_content(node, IN_ATTRIB)
        return 0

    # ---- sync family (real durability through the block layer) ----

    def sys_sync(self, proc: Process) -> int:
        if self.blockdev is not None:
            self.blockdev.sync_all()
        return 0

    def sys_syncfs(self, proc: Process, fd: int) -> int:
        proc.fdtable.get(fd)
        if self.blockdev is not None:
            self.blockdev.sync_all()
        return 0

    def sys_fsync(self, proc: Process, fd: int) -> int:
        file = proc.fdtable.get(fd)
        if self.blockdev is not None and file.inode is not None:
            self.blockdev.fsync_inode(file.inode)
        return 0

    def sys_fdatasync(self, proc: Process, fd: int) -> int:
        file = proc.fdtable.get(fd)
        if self.blockdev is not None and file.inode is not None:
            self.blockdev.fsync_inode(file.inode, datasync=True)
        return 0

    def sys_sync_file_range(self, proc: Process, fd: int, offset: int = 0,
                            nbytes: int = 0, flags: int = 0) -> int:
        """Push dirty pages to disk WITHOUT a metadata commit — exactly
        the sync_file_range(2) warning: data blocks land, but nothing
        references them durably until a real fsync."""
        file = proc.fdtable.get(fd)
        if file.kind != OpenFile.KIND_REG:
            raise KernelError(EINVAL, "sync_file_range on non-regular fd")
        if self.blockdev is not None and file.inode is not None:
            self.blockdev.flush_inode(file.inode)
        return 0

    # ---- ioctl & advisory no-ops ----

    def sys_flock(self, proc: Process, fd: int, op: int) -> int:
        proc.fdtable.get(fd)
        return 0

    def sys_fadvise64(self, proc: Process, fd: int, offset: int, length: int,
                      advice: int) -> int:
        proc.fdtable.get(fd)
        return 0

    def sys_readahead(self, proc: Process, fd: int, offset: int,
                      count: int) -> int:
        proc.fdtable.get(fd)
        return 0

    def sys_ioctl(self, proc: Process, fd: int, request: int,
                  arg: int = 0) -> object:
        file = proc.fdtable.get(fd)
        if request == TIOCGWINSZ:
            if file.kind != OpenFile.KIND_CHR:
                raise KernelError(ENOTTY)
            return (24, 80)  # rows, cols
        if request == TCGETS:
            if file.kind != OpenFile.KIND_CHR:
                raise KernelError(ENOTTY)
            return 0
        if request == FIONREAD:
            if file.kind == OpenFile.KIND_PIPE_R:
                return len(file.pipe.buf)
            if file.kind == OpenFile.KIND_SOCK:
                return len(file.sock.rbuf)
            if file.kind == OpenFile.KIND_REG:
                return max(file.inode.size - file.offset, 0)
            return 0
        if request == FIONBIO:
            if arg:
                file.flags |= O_NONBLOCK
            else:
                file.flags &= ~O_NONBLOCK
            return 0
        if file.kind == OpenFile.KIND_PERF:
            return file.obj.ioctl(request, arg)
        raise KernelError(ENOTTY, f"ioctl 0x{request:x}")

    # ---- poll ----

    def _poll_waitqueues(self, proc: Process, fds) -> list:
        """Readiness waitqueues of every valid polled fd (prompt wakeups)."""
        wqs = []
        for fd in fds:
            try:
                wq = proc.fdtable.get(fd).wait_queue()
            except KernelError:
                continue
            if wq is not None and wq not in wqs:
                wqs.append(wq)
        return wqs

    def sys_ppoll(self, proc: Process, fds: List[Tuple[int, int]],
                  timeout_ns: Optional[int]) -> List[Tuple[int, int]]:
        """``fds`` is [(fd, events)]; returns [(fd, revents)] (POLLIN=1,
        POLLOUT=4, POLLERR=8, POLLHUP=0x10, POLLNVAL=0x20).

        POLLERR and POLLHUP are delivered whether requested or not (closed
        peers, widowed pipes), exactly like Linux; blocking is waitqueue-
        driven, so a peer's write/close wakes the poller immediately.
        """
        POLLIN, POLLOUT, POLLERR, POLLHUP, POLLNVAL = 1, 4, 8, 0x10, 0x20

        def scan():
            out = []
            for fd, events in fds:
                try:
                    file = proc.fdtable.get(fd)
                except KernelError:
                    out.append((fd, POLLNVAL))
                    continue
                mask = file.poll_events()
                revents = mask & (events | POLLERR | POLLHUP)
                if revents:
                    out.append((fd, revents))
            return out or None  # None = keep blocking

        return self.block_on_waitqueues(
            proc, self._poll_waitqueues(proc, [fd for fd, _ in fds]),
            scan, timeout_ns=timeout_ns, empty=list)

    def sys_poll(self, proc: Process, fds, timeout_ms: int):
        timeout_ns = None if timeout_ms < 0 else timeout_ms * 1_000_000
        return self.sys_ppoll(proc, fds, timeout_ns)

    def sys_pselect6(self, proc: Process, rfds: List[int], wfds: List[int],
                     timeout_ns: Optional[int]) -> Tuple[List[int], List[int]]:
        POLLIN, POLLOUT, POLLERR, POLLHUP = 1, 4, 8, 0x10

        def scan():
            r_ready, w_ready = [], []
            for fd in rfds:
                try:
                    mask = proc.fdtable.get(fd).poll_events()
                except KernelError:
                    continue
                if mask & (POLLIN | POLLHUP | POLLERR):
                    r_ready.append(fd)
            for fd in wfds:
                try:
                    mask = proc.fdtable.get(fd).poll_events()
                except KernelError:
                    continue
                if mask & (POLLOUT | POLLERR):
                    w_ready.append(fd)
            if r_ready or w_ready:
                return r_ready, w_ready
            return None

        return self.block_on_waitqueues(
            proc, self._poll_waitqueues(proc, list(rfds) + list(wfds)),
            scan, timeout_ns=timeout_ns, empty=lambda: ([], []))

    def sys_select(self, proc, rfds, wfds, timeout_ns=None):
        return self.sys_pselect6(proc, rfds, wfds, timeout_ns)
