"""Process-model syscalls: clone/fork, execve bookkeeping, exit, wait4,
identity, scheduling, rlimits, futex.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errno import (
    EAGAIN, ECHILD, EINTR, EINVAL, ENOSYS, EPERM, ESRCH, KernelError,
)
from ..process import (
    CLONE_FILES, CLONE_FS, CLONE_SIGHAND, CLONE_THREAD, CLONE_VM, CSIGNAL,
    Process, RLIM_INFINITY, STATE_DEAD, STATE_RUNNING, STATE_ZOMBIE,
    WNOHANG, wait_status_exited, wait_status_signaled,
)
from ..signals import SIGCHLD, SIGKILL

# futex ops
FUTEX_WAIT = 0
FUTEX_WAKE = 1
FUTEX_PRIVATE_FLAG = 128


class ProcCalls:
    """Mixin with process syscalls; mixed into :class:`Kernel`."""

    # ---- creation ----

    def sys_clone(self, proc: Process, flags: int) -> Process:
        """Create a child LWP; returns the new Process (the runtime decides
        how to run it — WALI spawns an instance-per-thread machine)."""
        child_pid = self.alloc_pid()
        tgid = proc.tgid if flags & CLONE_THREAD else child_pid
        fdtable = proc.fdtable if flags & CLONE_FILES \
            else proc.fdtable.fork_copy()
        dispositions = proc.dispositions if flags & CLONE_SIGHAND \
            else proc.dispositions.copy()
        mm = proc.mm if flags & CLONE_VM else \
            (proc.mm.fork_copy() if proc.mm is not None else None)
        child = Process(child_pid, proc.pid, tgid=tgid, fdtable=fdtable,
                        cwd=proc.cwd, dispositions=dispositions, mm=mm)
        child.uid, child.euid = proc.uid, proc.euid
        child.gid, child.egid = proc.gid, proc.egid
        child.pgid = proc.pgid
        child.sid = proc.sid
        child.comm = proc.comm
        child.argv = list(proc.argv)
        child.environ = dict(proc.environ)
        child.umask = proc.umask
        child.blocked_mask = proc.blocked_mask  # masks are inherited (§3.3)
        child.exit_signal = flags & CSIGNAL
        if flags & CLONE_THREAD:
            leader = self.processes.get(proc.tgid, proc)
            leader.thread_group.append(child_pid)
            child.thread_group = leader.thread_group
        else:
            proc.children.append(child_pid)
        with self.table_lock:
            self.processes[child_pid] = child
        self.register_procfs(child)
        return child

    def sys_fork(self, proc: Process) -> Process:
        return self.sys_clone(proc, SIGCHLD)

    def sys_vfork(self, proc: Process) -> Process:
        return self.sys_clone(proc, SIGCHLD)

    def sys_execve(self, proc: Process, path: str, argv: List[str],
                   envp: List[str]) -> int:
        """Kernel-side bookkeeping of execve; image replacement is done by
        the runtime (WALI instantiates the new module, §3.4)."""
        node = self.vfs.resolve(path, proc.cwd or self.vfs.root, proc=proc)
        if not node.is_file:
            raise KernelError(EINVAL, path)
        proc.comm = path.rsplit("/", 1)[-1][:15]
        proc.argv = list(argv)
        proc.environ = dict(
            e.split("=", 1) for e in envp if "=" in e)
        proc.dispositions.reset_on_exec()
        proc.fdtable.close_on_exec()
        return 0

    # ---- termination & reaping ----

    def sys_exit(self, proc: Process, status: int) -> None:
        self._terminate(proc, wait_status_exited(status))

    def sys_exit_group(self, proc: Process, status: int) -> None:
        # terminate every LWP in the thread group
        for pid in list(proc.thread_group):
            lwp = self.processes.get(pid)
            if lwp is not None and lwp is not proc and \
                    lwp.state == STATE_RUNNING:
                lwp.generate_signal(SIGKILL)
        self._terminate(proc, wait_status_exited(status))

    def terminate_by_signal(self, proc: Process, sig: int) -> None:
        self._terminate(proc, wait_status_signaled(sig))

    def _terminate(self, proc: Process, wait_status: int) -> None:
        proc.exit_status = wait_status
        # leave the run queue / free the CPU slot before anything else:
        # reaping below may wake other tasks that need the slot
        self.sched.task_exit(proc)
        proc.fdtable.close_all() if not self._fdtable_shared(proc) else None
        proc.state = STATE_ZOMBIE
        # reparent children to init
        init = self.processes.get(1)
        for cpid in proc.children:
            child = self.processes.get(cpid)
            if child is not None:
                child.ppid = 1
                if init is not None:
                    init.children.append(cpid)
        proc.children.clear()
        parent = self.processes.get(proc.ppid)
        if parent is not None:
            if proc.exit_signal:
                parent.generate_signal(proc.exit_signal)
            with parent.wake:
                parent.wake.notify_all()
        if proc.is_thread:
            # threads are auto-reaped; nothing waits on them via wait4
            self.reap(proc.pid)
        with proc.wake:
            proc.wake.notify_all()

    def _fdtable_shared(self, proc: Process) -> bool:
        return any(p.fdtable is proc.fdtable and p.pid != proc.pid
                   and p.state == STATE_RUNNING
                   for p in self.processes.values())

    def reap(self, pid: int) -> None:
        with self.table_lock:
            p = self.processes.pop(pid, None)
        if p is not None:
            p.state = STATE_DEAD
            self.unregister_procfs(p)

    def sys_wait4(self, proc: Process, pid: int,
                  options: int = 0) -> Tuple[int, int, object]:
        """Returns (pid, wait_status, rusage); raises ECHILD when there is
        nothing to wait for."""
        def candidates():
            out = []
            for cpid in proc.children:
                child = self.processes.get(cpid)
                if child is None:
                    continue
                if pid > 0 and child.pid != pid:
                    continue
                if pid == 0 and child.pgid != proc.pgid:
                    continue
                if pid < -1 and child.pgid != -pid:
                    continue
                out.append(child)
            return out

        def scan():
            kids = candidates()
            if not kids:
                raise KernelError(ECHILD, "no matching children")
            for child in kids:
                if child.state == STATE_ZOMBIE:
                    return child
            return None

        if options & WNOHANG:
            child = scan()
            if child is None:
                return 0, 0, None
        else:
            child = self.block_until(proc, scan)
        proc.children.remove(child.pid)
        status = child.exit_status
        rusage = child.rusage
        self.reap(child.pid)
        return child.pid, status, rusage

    # ---- signals routed by pid ----

    def sys_kill(self, proc: Process, pid: int, sig: int) -> int:
        if sig < 0 or sig > 64:
            raise KernelError(EINVAL, f"signal {sig}")
        targets: List[Process] = []
        if pid > 0:
            t = self.processes.get(pid)
            if t is None or t.state != STATE_RUNNING:
                raise KernelError(ESRCH, str(pid))
            targets = [t]
        elif pid == 0 or pid < -1:
            pgid = proc.pgid if pid == 0 else -pid
            targets = [p for p in self.processes.values()
                       if p.pgid == pgid and p.state == STATE_RUNNING]
            if not targets:
                raise KernelError(ESRCH, f"pgid {pgid}")
        else:  # pid == -1: everyone except init and self’s kernel
            targets = [p for p in self.processes.values()
                       if p.pid != 1 and p.state == STATE_RUNNING]
        if sig == 0:
            return 0
        for t in targets:
            t.generate_signal(sig, sender_pid=proc.pid,
                              sender_uid=proc.euid)
        return 0

    def sys_tgkill(self, proc: Process, tgid: int, tid: int, sig: int) -> int:
        t = self.processes.get(tid)
        if t is None or t.tgid != tgid:
            raise KernelError(ESRCH, f"{tgid}:{tid}")
        if sig:
            t.generate_signal(sig, sender_pid=proc.pid,
                              sender_uid=proc.euid)
        return 0

    def sys_tkill(self, proc: Process, tid: int, sig: int) -> int:
        t = self.processes.get(tid)
        if t is None:
            raise KernelError(ESRCH, str(tid))
        if sig:
            t.generate_signal(sig, sender_pid=proc.pid,
                              sender_uid=proc.euid)
        return 0

    # ---- identity ----

    def sys_getpid(self, proc: Process) -> int:
        return proc.tgid

    def sys_gettid(self, proc: Process) -> int:
        return proc.pid

    def sys_getppid(self, proc: Process) -> int:
        return proc.ppid

    def sys_getuid(self, proc: Process) -> int:
        return proc.uid

    def sys_geteuid(self, proc: Process) -> int:
        return proc.euid

    def sys_getgid(self, proc: Process) -> int:
        return proc.gid

    def sys_getegid(self, proc: Process) -> int:
        return proc.egid

    def sys_setuid(self, proc: Process, uid: int) -> int:
        if proc.euid != 0 and uid not in (proc.uid, proc.euid):
            raise KernelError(EPERM)
        proc.uid = proc.euid = uid
        return 0

    def sys_setgid(self, proc: Process, gid: int) -> int:
        if proc.euid != 0 and gid not in (proc.gid, proc.egid):
            raise KernelError(EPERM)
        proc.gid = proc.egid = gid
        return 0

    def sys_setpgid(self, proc: Process, pid: int, pgid: int) -> int:
        target = self.processes.get(pid or proc.pid)
        if target is None:
            raise KernelError(ESRCH)
        target.pgid = pgid or target.pid
        return 0

    def sys_getpgid(self, proc: Process, pid: int) -> int:
        target = self.processes.get(pid or proc.pid)
        if target is None:
            raise KernelError(ESRCH)
        return target.pgid

    def sys_getpgrp(self, proc: Process) -> int:
        return proc.pgid

    def sys_setsid(self, proc: Process) -> int:
        proc.sid = proc.pid
        proc.pgid = proc.pid
        return proc.sid

    def sys_getsid(self, proc: Process, pid: int = 0) -> int:
        target = self.processes.get(pid or proc.pid)
        if target is None:
            raise KernelError(ESRCH)
        return target.sid

    # ---- limits & usage ----

    def sys_prlimit64(self, proc: Process, pid: int, resource: int,
                      new_limit: Optional[Tuple[int, int]]) -> Tuple[int, int]:
        target = self.processes.get(pid or proc.pid)
        if target is None:
            raise KernelError(ESRCH, str(pid))
        old = target.getrlimit(resource)
        if new_limit is not None:
            cur, maxv = new_limit
            if cur > maxv:
                raise KernelError(EINVAL, "rlim_cur > rlim_max")
            target.setrlimit(resource, cur, maxv)
        return old

    def sys_getrlimit(self, proc: Process, resource: int) -> Tuple[int, int]:
        return proc.getrlimit(resource)

    def sys_setrlimit(self, proc: Process, resource: int, cur: int,
                      maxv: int) -> int:
        self.sys_prlimit64(proc, 0, resource, (cur, maxv))
        return 0

    def sys_getrusage(self, proc: Process, who: int = 0):
        return proc.rusage

    def sys_times(self, proc: Process) -> Tuple[int, int, int, int]:
        hz = 100
        u = proc.rusage.utime_ns * hz // 1_000_000_000
        s = proc.rusage.stime_ns * hz // 1_000_000_000
        return u, s, 0, 0

    # ---- scheduling ----

    def sys_sched_yield(self, proc: Process) -> int:
        """A real yield: requeue behind equal-vruntime tasks and
        re-contend for a CPU slot (no-op when the kernel is idle)."""
        self.sched.yield_now(proc)
        return 0

    def sys_sched_getaffinity(self, proc: Process, pid: int) -> int:
        target = self.processes.get(pid or proc.pid)
        if target is None:
            raise KernelError(ESRCH, str(pid))
        return target.se.affinity or (1 << self.ncpus) - 1

    def sys_sched_setaffinity(self, proc: Process, pid: int,
                              mask: int) -> int:
        """Affinity-lite: the mask is validated and remembered (visible
        through getaffinity) but the single run queue ignores it for
        placement — per-CPU queues are a ROADMAP follow-up."""
        target = self.processes.get(pid or proc.pid)
        if target is None:
            raise KernelError(ESRCH, str(pid))
        full = (1 << self.ncpus) - 1
        if mask & full == 0:
            raise KernelError(EINVAL, "empty affinity mask")
        target.se.affinity = mask & full
        return 0

    def sys_nice(self, proc: Process, inc: int) -> int:
        """Adjust our nice level; returns 0 like the raw Linux syscall
        (a returned new-nice would be indistinguishable from ``-errno``
        at the WALI boundary).  Unprivileged tasks cannot raise their
        priority."""
        if inc < 0 and proc.euid != 0:
            raise KernelError(EPERM, "nice: lowering needs root")
        self.sched.set_nice(proc, proc.se.nice + inc)
        return 0

    PRIO_PROCESS = 0

    def _prio_target(self, proc: Process, which: int, who: int) -> Process:
        # only per-process priorities are modeled; PRIO_PGRP/PRIO_USER
        # would silently misread `who`, so reject them loudly
        if which != self.PRIO_PROCESS:
            raise KernelError(EINVAL, f"priority which={which}")
        target = self.processes.get(who or proc.pid)
        if target is None:
            raise KernelError(ESRCH, str(who))
        return target

    def sys_getpriority(self, proc: Process, which: int, who: int) -> int:
        target = self._prio_target(proc, which, who)
        # raw-syscall encoding: 20 - nice (always positive)
        return 20 - target.se.nice

    def sys_setpriority(self, proc: Process, which: int, who: int,
                        prio: int) -> int:
        target = self._prio_target(proc, which, who)
        if prio < target.se.nice and proc.euid != 0:
            raise KernelError(EPERM, "setpriority: raising needs root")
        self.sched.set_nice(target, prio)
        return 0

    def sys_prctl(self, proc: Process, option: int, arg2=0) -> int:
        PR_SET_NAME, PR_GET_NAME = 15, 16
        if option == PR_SET_NAME:
            proc.comm = str(arg2)[:15]
            return 0
        if option == PR_GET_NAME:
            return 0
        return 0

    def sys_set_tid_address(self, proc: Process, addr: int) -> int:
        proc.tid_address = addr
        return proc.pid

    def sys_set_robust_list(self, proc: Process, head: int,
                            length: int) -> int:
        proc.robust_list = head
        return 0

    def sys_rseq(self, proc: Process, *args) -> int:
        raise KernelError(ENOSYS, "rseq")

    def sys_pidfd_open(self, proc: Process, pid: int, flags: int) -> int:
        raise KernelError(ENOSYS, "pidfd_open")

    def sys_clone3(self, proc: Process, flags: int) -> Process:
        return self.sys_clone(proc, flags)

    # ---- futex ----

    def sys_futex(self, proc: Process, uaddr: int, op: int, val: int,
                  current_value: int, timeout_ns: Optional[int] = None) -> int:
        """``current_value`` is the word read from guest memory by the caller
        under the kernel lock (the WALI layer does the linear-memory read)."""
        base_op = op & ~FUTEX_PRIVATE_FLAG
        key = (id(proc.mm) if proc.mm is not None else proc.tgid, uaddr)
        if base_op == FUTEX_WAIT:
            if current_value != val:
                raise KernelError(EAGAIN, "futex value changed")
            waiters = self.futex_waiters.setdefault(key, [])
            token = object()
            waiters.append(token)

            def scan():
                return True if token not in waiters else None

            try:
                self.block_until(proc, scan, timeout_ns=timeout_ns,
                                 empty=lambda: (_ for _ in ()).throw(
                                     KernelError(110, "futex timeout")))
            finally:
                if token in waiters:
                    waiters.remove(token)
            return 0
        if base_op == FUTEX_WAKE:
            waiters = self.futex_waiters.get(key, [])
            n = min(val, len(waiters))
            del waiters[:n]
            self.notify_all_blocked()
            return n
        raise KernelError(ENOSYS, f"futex op {base_op}")
