"""Process-model syscalls: clone/fork, execve bookkeeping, exit, wait4,
identity, scheduling, rlimits, futex.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errno import (
    EAGAIN, ECHILD, EDEADLK, EINTR, EINVAL, ENOSYS, EPERM, ESRCH,
    ETIMEDOUT, KernelError,
)
from ..process import (
    CLONE_FILES, CLONE_FS, CLONE_SIGHAND, CLONE_THREAD, CLONE_VM, CSIGNAL,
    Process, RLIM_INFINITY, STATE_DEAD, STATE_RUNNING, STATE_ZOMBIE,
    WNOHANG, wait_status_exited, wait_status_signaled,
)
from ..signals import SIGCHLD, SIGKILL

# futex ops
FUTEX_WAIT = 0
FUTEX_WAKE = 1
FUTEX_LOCK_PI = 6
FUTEX_UNLOCK_PI = 7
FUTEX_PRIVATE_FLAG = 128


class ProcCalls:
    """Mixin with process syscalls; mixed into :class:`Kernel`."""

    # ---- creation ----

    def sys_clone(self, proc: Process, flags: int) -> Process:
        """Create a child LWP; returns the new Process (the runtime decides
        how to run it — WALI spawns an instance-per-thread machine)."""
        child_pid = self.alloc_pid()
        tgid = proc.tgid if flags & CLONE_THREAD else child_pid
        fdtable = proc.fdtable if flags & CLONE_FILES \
            else proc.fdtable.fork_copy()
        dispositions = proc.dispositions if flags & CLONE_SIGHAND \
            else proc.dispositions.copy()
        mm = proc.mm if flags & CLONE_VM else \
            (proc.mm.fork_copy() if proc.mm is not None else None)
        child = Process(child_pid, proc.pid, tgid=tgid, fdtable=fdtable,
                        cwd=proc.cwd, dispositions=dispositions, mm=mm)
        child.uid, child.euid = proc.uid, proc.euid
        child.gid, child.egid = proc.gid, proc.egid
        child.pgid = proc.pgid
        child.sid = proc.sid
        child.comm = proc.comm
        child.argv = list(proc.argv)
        child.environ = dict(proc.environ)
        child.umask = proc.umask
        child.blocked_mask = proc.blocked_mask  # masks are inherited (§3.3)
        child.exit_signal = flags & CSIGNAL
        if flags & CLONE_THREAD:
            leader = self.processes.get(proc.tgid, proc)
            leader.thread_group.append(child_pid)
            child.thread_group = leader.thread_group
        else:
            proc.children.append(child_pid)
        with self.table_lock:
            self.processes[child_pid] = child
        self.register_procfs(child)
        return child

    def sys_fork(self, proc: Process) -> Process:
        return self.sys_clone(proc, SIGCHLD)

    def sys_vfork(self, proc: Process) -> Process:
        return self.sys_clone(proc, SIGCHLD)

    def sys_execve(self, proc: Process, path: str, argv: List[str],
                   envp: List[str]) -> int:
        """Kernel-side bookkeeping of execve; image replacement is done by
        the runtime (WALI instantiates the new module, §3.4)."""
        node = self.vfs.resolve(path, proc.cwd or self.vfs.root, proc=proc)
        if not node.is_file:
            raise KernelError(EINVAL, path)
        proc.comm = path.rsplit("/", 1)[-1][:15]
        proc.argv = list(argv)
        proc.environ = dict(
            e.split("=", 1) for e in envp if "=" in e)
        proc.dispositions.reset_on_exec()
        proc.fdtable.close_on_exec()
        return 0

    # ---- termination & reaping ----

    def sys_exit(self, proc: Process, status: int) -> None:
        self._terminate(proc, wait_status_exited(status))

    def sys_exit_group(self, proc: Process, status: int) -> None:
        # terminate every LWP in the thread group
        for pid in list(proc.thread_group):
            lwp = self.processes.get(pid)
            if lwp is not None and lwp is not proc and \
                    lwp.state == STATE_RUNNING:
                lwp.generate_signal(SIGKILL)
        self._terminate(proc, wait_status_exited(status))

    def terminate_by_signal(self, proc: Process, sig: int) -> None:
        self._terminate(proc, wait_status_signaled(sig))

    def _terminate(self, proc: Process, wait_status: int) -> None:
        proc.exit_status = wait_status
        # robust-futex-lite: a dying task releases every PI futex it
        # owns (handing each to its top waiter) and leaves any waiter
        # lists, so no lock is orphaned and no boost dangles
        with self.futex_lock:
            for key, st in list(self.futex_pi.items()):
                if st["owner"] is proc:
                    self._pi_unlock(key, st)
                elif proc in st["waiters"]:
                    st["waiters"].remove(proc)
                    if st["owner"] is not None:
                        self._pi_refresh_boost(st["owner"])
        # leave the run queue / free the CPU slot before anything else:
        # reaping below may wake other tasks that need the slot
        self.sched.task_exit(proc)
        proc.fdtable.close_all() if not self._fdtable_shared(proc) else None
        proc.state = STATE_ZOMBIE
        # reparent children to init
        init = self.processes.get(1)
        for cpid in proc.children:
            child = self.processes.get(cpid)
            if child is not None:
                child.ppid = 1
                if init is not None:
                    init.children.append(cpid)
        proc.children.clear()
        parent = self.processes.get(proc.ppid)
        if parent is not None:
            if proc.exit_signal:
                parent.generate_signal(proc.exit_signal)
            with parent.wake:
                parent.wake.notify_all()
        if proc.is_thread:
            # threads are auto-reaped; nothing waits on them via wait4
            self.reap(proc.pid)
        with proc.wake:
            proc.wake.notify_all()

    def _fdtable_shared(self, proc: Process) -> bool:
        return any(p.fdtable is proc.fdtable and p.pid != proc.pid
                   and p.state == STATE_RUNNING
                   for p in self.processes.values())

    def reap(self, pid: int) -> None:
        with self.table_lock:
            p = self.processes.pop(pid, None)
        if p is not None:
            p.state = STATE_DEAD
            self.unregister_procfs(p)

    def sys_wait4(self, proc: Process, pid: int,
                  options: int = 0) -> Tuple[int, int, object]:
        """Returns (pid, wait_status, rusage); raises ECHILD when there is
        nothing to wait for."""
        def candidates():
            out = []
            for cpid in proc.children:
                child = self.processes.get(cpid)
                if child is None:
                    continue
                if pid > 0 and child.pid != pid:
                    continue
                if pid == 0 and child.pgid != proc.pgid:
                    continue
                if pid < -1 and child.pgid != -pid:
                    continue
                out.append(child)
            return out

        def scan():
            kids = candidates()
            if not kids:
                raise KernelError(ECHILD, "no matching children")
            for child in kids:
                if child.state == STATE_ZOMBIE:
                    return child
            return None

        if options & WNOHANG:
            child = scan()
            if child is None:
                return 0, 0, None
        else:
            child = self.block_until(proc, scan)
        proc.children.remove(child.pid)
        status = child.exit_status
        rusage = child.rusage
        self.reap(child.pid)
        return child.pid, status, rusage

    # ---- signals routed by pid ----

    def sys_kill(self, proc: Process, pid: int, sig: int) -> int:
        if sig < 0 or sig > 64:
            raise KernelError(EINVAL, f"signal {sig}")
        targets: List[Process] = []
        if pid > 0:
            t = self.processes.get(pid)
            if t is None or t.state != STATE_RUNNING:
                raise KernelError(ESRCH, str(pid))
            targets = [t]
        elif pid == 0 or pid < -1:
            pgid = proc.pgid if pid == 0 else -pid
            targets = [p for p in self.processes.values()
                       if p.pgid == pgid and p.state == STATE_RUNNING]
            if not targets:
                raise KernelError(ESRCH, f"pgid {pgid}")
        else:  # pid == -1: everyone except init and self’s kernel
            targets = [p for p in self.processes.values()
                       if p.pid != 1 and p.state == STATE_RUNNING]
        if sig == 0:
            return 0
        for t in targets:
            t.generate_signal(sig, sender_pid=proc.pid,
                              sender_uid=proc.euid)
        return 0

    def sys_tgkill(self, proc: Process, tgid: int, tid: int, sig: int) -> int:
        t = self.processes.get(tid)
        if t is None or t.tgid != tgid:
            raise KernelError(ESRCH, f"{tgid}:{tid}")
        if sig:
            t.generate_signal(sig, sender_pid=proc.pid,
                              sender_uid=proc.euid)
        return 0

    def sys_tkill(self, proc: Process, tid: int, sig: int) -> int:
        t = self.processes.get(tid)
        if t is None:
            raise KernelError(ESRCH, str(tid))
        if sig:
            t.generate_signal(sig, sender_pid=proc.pid,
                              sender_uid=proc.euid)
        return 0

    # ---- identity ----

    def sys_getpid(self, proc: Process) -> int:
        return proc.tgid

    def sys_gettid(self, proc: Process) -> int:
        return proc.pid

    def sys_getppid(self, proc: Process) -> int:
        return proc.ppid

    def sys_getuid(self, proc: Process) -> int:
        return proc.uid

    def sys_geteuid(self, proc: Process) -> int:
        return proc.euid

    def sys_getgid(self, proc: Process) -> int:
        return proc.gid

    def sys_getegid(self, proc: Process) -> int:
        return proc.egid

    def sys_setuid(self, proc: Process, uid: int) -> int:
        if proc.euid != 0 and uid not in (proc.uid, proc.euid):
            raise KernelError(EPERM)
        proc.uid = proc.euid = uid
        return 0

    def sys_setgid(self, proc: Process, gid: int) -> int:
        if proc.euid != 0 and gid not in (proc.gid, proc.egid):
            raise KernelError(EPERM)
        proc.gid = proc.egid = gid
        return 0

    def sys_setpgid(self, proc: Process, pid: int, pgid: int) -> int:
        target = self.processes.get(pid or proc.pid)
        if target is None:
            raise KernelError(ESRCH)
        target.pgid = pgid or target.pid
        return 0

    def sys_getpgid(self, proc: Process, pid: int) -> int:
        target = self.processes.get(pid or proc.pid)
        if target is None:
            raise KernelError(ESRCH)
        return target.pgid

    def sys_getpgrp(self, proc: Process) -> int:
        return proc.pgid

    def sys_setsid(self, proc: Process) -> int:
        proc.sid = proc.pid
        proc.pgid = proc.pid
        return proc.sid

    def sys_getsid(self, proc: Process, pid: int = 0) -> int:
        target = self.processes.get(pid or proc.pid)
        if target is None:
            raise KernelError(ESRCH)
        return target.sid

    # ---- limits & usage ----

    def sys_prlimit64(self, proc: Process, pid: int, resource: int,
                      new_limit: Optional[Tuple[int, int]]) -> Tuple[int, int]:
        target = self.processes.get(pid or proc.pid)
        if target is None:
            raise KernelError(ESRCH, str(pid))
        old = target.getrlimit(resource)
        if new_limit is not None:
            cur, maxv = new_limit
            if cur > maxv:
                raise KernelError(EINVAL, "rlim_cur > rlim_max")
            target.setrlimit(resource, cur, maxv)
        return old

    def sys_getrlimit(self, proc: Process, resource: int) -> Tuple[int, int]:
        return proc.getrlimit(resource)

    def sys_setrlimit(self, proc: Process, resource: int, cur: int,
                      maxv: int) -> int:
        self.sys_prlimit64(proc, 0, resource, (cur, maxv))
        return 0

    def sys_getrusage(self, proc: Process, who: int = 0):
        return proc.rusage

    def sys_times(self, proc: Process) -> Tuple[int, int, int, int]:
        hz = 100
        u = proc.rusage.utime_ns * hz // 1_000_000_000
        s = proc.rusage.stime_ns * hz // 1_000_000_000
        return u, s, 0, 0

    # ---- scheduling ----

    def sys_sched_yield(self, proc: Process) -> int:
        """A real yield: requeue behind equal-vruntime tasks and
        re-contend for a CPU slot (no-op when the kernel is idle)."""
        self.sched.yield_now(proc)
        return 0

    def _affinity_ncpus(self) -> int:
        """CPUs the affinity syscalls validate against: the scheduler's
        slot count when it is constrained (it may differ from the
        machine description, e.g. ``Kernel(ncpus=4, sched="cpus=1")``),
        else the machine's."""
        return self.sched.ncpus if self.sched.ncpus > 0 else self.ncpus

    def sys_sched_getaffinity(self, proc: Process, pid: int) -> int:
        target = self.processes.get(pid or proc.pid)
        if target is None:
            raise KernelError(ESRCH, str(pid))
        return target.se.affinity or (1 << self._affinity_ncpus()) - 1

    def sys_sched_setaffinity(self, proc: Process, pid: int,
                              mask: int) -> int:
        """Pin a task to a CPU subset.  The mask is honored at
        placement: the scheduler re-places the target immediately if it
        sits on (or runs on) a CPU the new mask forbids, and all future
        placement/steal decisions respect it.  A mask naming no valid
        CPU (e.g. ``1 << 8`` with one CPU) fails ``EINVAL`` as on
        Linux — it must not be silently truncated to "all CPUs"."""
        target = self.processes.get(pid or proc.pid)
        if target is None:
            raise KernelError(ESRCH, str(pid))
        full = (1 << self._affinity_ncpus()) - 1
        if mask & full == 0:
            raise KernelError(EINVAL, "empty affinity mask")
        self.sched.set_affinity(target, mask & full)
        return 0

    def sys_nice(self, proc: Process, inc: int) -> int:
        """Adjust our nice level; returns 0 like the raw Linux syscall
        (a returned new-nice would be indistinguishable from ``-errno``
        at the WALI boundary).  Unprivileged tasks cannot raise their
        priority."""
        if inc < 0 and proc.euid != 0:
            raise KernelError(EPERM, "nice: lowering needs root")
        self.sched.set_nice(proc, proc.se.nice + inc)
        return 0

    PRIO_PROCESS = 0

    def _prio_target(self, proc: Process, which: int, who: int) -> Process:
        # only per-process priorities are modeled; PRIO_PGRP/PRIO_USER
        # would silently misread `who`, so reject them loudly
        if which != self.PRIO_PROCESS:
            raise KernelError(EINVAL, f"priority which={which}")
        target = self.processes.get(who or proc.pid)
        if target is None:
            raise KernelError(ESRCH, str(who))
        return target

    def sys_getpriority(self, proc: Process, which: int, who: int) -> int:
        target = self._prio_target(proc, which, who)
        # raw-syscall encoding: 20 - nice (always positive)
        return 20 - target.se.nice

    def sys_setpriority(self, proc: Process, which: int, who: int,
                        prio: int) -> int:
        target = self._prio_target(proc, which, who)
        if prio < target.se.nice and proc.euid != 0:
            raise KernelError(EPERM, "setpriority: raising needs root")
        self.sched.set_nice(target, prio)
        return 0

    def sys_prctl(self, proc: Process, option: int, arg2=0) -> int:
        PR_SET_NAME, PR_GET_NAME = 15, 16
        if option == PR_SET_NAME:
            proc.comm = str(arg2)[:15]
            return 0
        if option == PR_GET_NAME:
            return 0
        return 0

    def sys_set_tid_address(self, proc: Process, addr: int) -> int:
        proc.tid_address = addr
        return proc.pid

    def sys_set_robust_list(self, proc: Process, head: int,
                            length: int) -> int:
        proc.robust_list = head
        return 0

    def sys_rseq(self, proc: Process, *args) -> int:
        raise KernelError(ENOSYS, "rseq")

    def sys_pidfd_open(self, proc: Process, pid: int, flags: int) -> int:
        raise KernelError(ENOSYS, "pidfd_open")

    def sys_clone3(self, proc: Process, flags: int) -> Process:
        return self.sys_clone(proc, flags)

    # ---- futex ----

    @staticmethod
    def _futex_pick(waiters: list, n: int) -> list:
        """Select ``n`` waiters in wake order: highest scheduler weight
        first (priority), FIFO among equals (the sort is stable and the
        list is in arrival order) — the plist discipline of the real
        futex hash bucket.  Entries are ``(token, proc)`` tuples (WAIT
        queues) or bare processes (PI waiter lists)."""
        def neg_weight(e):
            p = e[1] if isinstance(e, tuple) else e
            return -p.se.weight
        return sorted(waiters, key=neg_weight)[:n][:n]

    def _pi_refresh_boost(self, proc: Process) -> None:
        """Recompute a task's priority-inheritance ceiling: the max
        effective weight over the waiters of *every* PI futex it owns
        (a waiter's own boost chains through, so inheritance is
        transitive).  Zero waiters anywhere clears the boost."""
        boost = 0
        for st in self.futex_pi.values():
            if st["owner"] is proc:
                for w in st["waiters"]:
                    boost = max(boost, w.se.weight)
        self.sched.set_boost(proc, boost)

    def _pi_unlock(self, key: tuple, st: dict) -> Optional[Process]:
        """Hand a PI futex to its top waiter (priority-then-FIFO) and
        wake exactly that task; returns the new owner (None when the
        futex dies uncontended)."""
        old = st["owner"]
        if st["waiters"]:
            new_owner = self._futex_pick(st["waiters"], 1)[0]
            st["waiters"].remove(new_owner)
            st["owner"] = new_owner
            self._pi_refresh_boost(new_owner)
            with new_owner.wake:
                new_owner.wake.notify_all()
        else:
            st["owner"] = None
            self.futex_pi.pop(key, None)
            new_owner = None
        if old is not None:
            self._pi_refresh_boost(old)
        return new_owner

    def sys_futex(self, proc: Process, uaddr: int, op: int, val: int,
                  current_value: int, timeout_ns: Optional[int] = None) -> int:
        """``current_value`` is the word read from guest memory by the caller
        under the kernel lock (the WALI layer does the linear-memory read).

        ``FUTEX_WAKE`` wakes exactly the dequeued waiters (no thundering
        herd), highest-weight first, FIFO among equals.
        ``FUTEX_LOCK_PI``/``FUTEX_UNLOCK_PI`` add priority inheritance:
        while the lock is contended the holder borrows the top waiter's
        scheduler weight (see ``docs/sched.md``), so a low-priority
        holder cannot be starved off the CPU by mid-priority tasks while
        a high-priority waiter spins on the lock — unlock hands the
        futex directly to the top waiter."""
        base_op = op & ~FUTEX_PRIVATE_FLAG
        key = (id(proc.mm) if proc.mm is not None else proc.tgid, uaddr)
        if base_op == FUTEX_WAIT:
            if current_value != val:
                raise KernelError(EAGAIN, "futex value changed")
            entry = (object(), proc)
            with self.futex_lock:
                waiters = self.futex_waiters.setdefault(key, [])
                waiters.append(entry)

            def scan():
                return True if entry not in waiters else None

            try:
                self.block_until(proc, scan, timeout_ns=timeout_ns,
                                 empty=lambda: (_ for _ in ()).throw(
                                     KernelError(ETIMEDOUT,
                                                 "futex timeout")))
            finally:
                with self.futex_lock:
                    if entry in waiters:
                        waiters.remove(entry)
            return 0
        if base_op == FUTEX_WAKE:
            if val < 0:
                raise KernelError(EINVAL, "negative wake count")
            with self.futex_lock:
                waiters = self.futex_waiters.get(key, [])
                picked = self._futex_pick(waiters, val)
                for entry in picked:
                    waiters.remove(entry)
            for _, waiter in picked:
                with waiter.wake:
                    waiter.wake.notify_all()
            return len(picked)
        if base_op == FUTEX_LOCK_PI:
            with self.futex_lock:
                st = self.futex_pi.setdefault(
                    key, {"owner": None, "waiters": []})
                if st["owner"] is None:
                    st["owner"] = proc
                    return 0
                if st["owner"] is proc:
                    raise KernelError(EDEADLK, "futex already held")
                st["waiters"].append(proc)
                self._pi_refresh_boost(st["owner"])

            def owned():
                return True if st["owner"] is proc else None

            try:
                self.block_until(proc, owned, timeout_ns=timeout_ns)
            except KernelError:
                with self.futex_lock:
                    # the unlocker may have handed us the futex between
                    # the last scan and the timeout/signal check: owning
                    # it wins over the stale exception
                    if st["owner"] is proc:
                        return 0
                    if proc in st["waiters"]:
                        st["waiters"].remove(proc)
                    if st["owner"] is not None:
                        self._pi_refresh_boost(st["owner"])
                raise
            return 0
        if base_op == FUTEX_UNLOCK_PI:
            with self.futex_lock:
                st = self.futex_pi.get(key)
                if st is None or st["owner"] is not proc:
                    raise KernelError(EPERM,
                                      "unlock of unowned PI futex")
                self._pi_unlock(key, st)
            return 0
        raise KernelError(ENOSYS, f"futex op {base_op}")
