"""The ``perf_event_open`` syscall: perf events as epollable fds.

The event object (:mod:`repro.kernel.perf`) carries the whole fd
surface (``wq`` / ``poll_events`` / ``read_step`` / ``ioctl`` /
``close``); this mixin only validates the attribute block and installs
the description.  The ioctl dispatch lives in ``calls/fs.py`` (the
generic ``sys_ioctl`` routes ``KIND_PERF`` fds to the event object).
"""

from __future__ import annotations

from ..errno import EINVAL, KernelError
from ..fdtable import OpenFile
from ..perf import PERF_FLAG_FD_CLOEXEC, PerfAttr
from ..process import Process
from ..vfs import O_RDONLY


class PerfCalls:
    """Mixin with the perf syscall; mixed into :class:`Kernel`."""

    def sys_perf_event_open(self, proc: Process, attr, pid: int = 0,
                            cpu: int = -1, group_fd: int = -1,
                            flags: int = 0) -> int:
        if not isinstance(attr, PerfAttr):
            raise KernelError(EINVAL, "perf_event_open needs a PerfAttr")
        if flags & ~PERF_FLAG_FD_CLOEXEC:
            raise KernelError(EINVAL, f"perf_event_open flags {flags:#x}")
        event = self.perf.open_event(proc, attr, pid, cpu, group_fd, flags)
        file = OpenFile(OpenFile.KIND_PERF, O_RDONLY, obj=event,
                        path="anon_inode:[perf_event]")
        return proc.fdtable.install(
            file, cloexec=bool(flags & PERF_FLAG_FD_CLOEXEC))

    def _perf_event(self, proc: Process, fd: int):
        file = proc.fdtable.get(fd)
        if file.kind != OpenFile.KIND_PERF:
            raise KernelError(EINVAL, f"fd {fd} is not a perf event fd")
        return file.obj
