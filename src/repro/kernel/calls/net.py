"""Network syscalls over the pluggable :class:`~repro.kernel.net.NetBackend`.

The mixin only ever touches the backend API (``self.net``) and the
socket-object surface, so the same syscalls run against the loopback,
simulated-WAN, and host backends unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errno import EBADF, EINVAL, ENOTSOCK, KernelError
from ..fdtable import OpenFile
from ..net import SOCK_CLOEXEC, SOCK_DGRAM, SOCK_NONBLOCK, Socket
from ..process import Process


class NetCalls:
    """Mixin with socket syscalls; mixed into :class:`Kernel`."""

    def _sock(self, proc: Process, fd: int) -> Socket:
        file = proc.fdtable.get(fd)
        if file.kind != OpenFile.KIND_SOCK:
            raise KernelError(ENOTSOCK, str(fd))
        return file.sock

    def sys_socket(self, proc: Process, family: int, type_: int,
                   protocol: int = 0) -> int:
        sock = self.net.socket(family, type_)
        flags = type_ & SOCK_NONBLOCK
        file = OpenFile(OpenFile.KIND_SOCK, flags, sock=sock)
        return proc.fdtable.install(file,
                                    cloexec=bool(type_ & SOCK_CLOEXEC))

    def sys_bind(self, proc: Process, fd: int, addr: Tuple) -> int:
        self.net.bind(self._sock(proc, fd), addr)
        return 0

    def sys_listen(self, proc: Process, fd: int, backlog: int) -> int:
        self.net.listen(self._sock(proc, fd), backlog)
        return 0

    def sys_connect(self, proc: Process, fd: int, addr: Tuple) -> int:
        self.net.connect(self._sock(proc, fd), addr)
        return 0

    def sys_accept4(self, proc: Process, fd: int, flags: int = 0) -> int:
        listener_file = proc.fdtable.get(fd)
        listener = self._sock(proc, fd)

        def step():
            return self.net.accept_step(listener)

        conn = self._blocking_io(proc, listener_file, step)
        file = OpenFile(OpenFile.KIND_SOCK, flags & SOCK_NONBLOCK, sock=conn)
        return proc.fdtable.install(file,
                                    cloexec=bool(flags & SOCK_CLOEXEC))

    def sys_accept(self, proc: Process, fd: int) -> int:
        return self.sys_accept4(proc, fd, 0)

    def sys_sendto(self, proc: Process, fd: int, data,
                   addr: Optional[Tuple] = None) -> int:
        file = proc.fdtable.get(fd)
        sock = self._sock(proc, fd)
        data = bytes(data)
        if sock.type == SOCK_DGRAM or addr is not None:
            return self.net.sendto(sock, data, addr)
        total = 0
        while total < len(data):
            n = self._blocking_io(proc, file,
                                  lambda: sock.send_step(data[total:]),
                                  on_pipe_full=True)
            total += n
        return total

    def sys_recvfrom(self, proc: Process, fd: int,
                     length: int) -> Tuple[bytes, Tuple]:
        file = proc.fdtable.get(fd)
        sock = self._sock(proc, fd)
        return self._blocking_io(
            proc, file, lambda: self.net.recvfrom_step(sock, length))

    def sys_sendmsg(self, proc: Process, fd: int, bufs: List[bytes],
                    addr: Optional[Tuple] = None) -> int:
        return self.sys_sendto(proc, fd, b"".join(bytes(b) for b in bufs),
                               addr)

    def sys_recvmsg(self, proc: Process, fd: int,
                    length: int) -> Tuple[bytes, Tuple]:
        return self.sys_recvfrom(proc, fd, length)

    def sys_shutdown(self, proc: Process, fd: int, how: int) -> int:
        self._sock(proc, fd).shutdown(how)
        return 0

    def sys_socketpair(self, proc: Process, family: int,
                       type_: int) -> Tuple[int, int]:
        a, b = self.net.socketpair(family, type_)
        fa = proc.fdtable.install(OpenFile(OpenFile.KIND_SOCK, 0, sock=a))
        fb = proc.fdtable.install(OpenFile(OpenFile.KIND_SOCK, 0, sock=b))
        return fa, fb

    def sys_setsockopt(self, proc: Process, fd: int, level: int,
                       optname: int, value: int) -> int:
        self._sock(proc, fd).opts[(level, optname)] = value
        return 0

    def sys_getsockopt(self, proc: Process, fd: int, level: int,
                       optname: int) -> int:
        return self._sock(proc, fd).opts.get((level, optname), 0)

    def sys_getsockname(self, proc: Process, fd: int) -> Tuple:
        return self._sock(proc, fd).addr or ("", 0)

    def sys_getpeername(self, proc: Process, fd: int) -> Tuple:
        sock = self._sock(proc, fd)
        if sock.peer_addr is None:
            raise KernelError(EINVAL, "not connected")
        return sock.peer_addr
