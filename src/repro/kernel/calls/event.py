"""Event-notification syscalls: epoll, eventfd, timerfd.

These sit on the readiness layer in :mod:`repro.kernel.eventpoll`: watched
files publish events into waitqueues, an :class:`EventPoll` keeps a ready
list per instance, and ``epoll_pwait`` dispatches from that list in
O(ready) — the scalable alternative to ``ppoll``'s O(n) rescan.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errno import EBADF, EINVAL, ELOOP, EPERM, KernelError
from ..eventpoll import (
    EFD_CLOEXEC, EFD_NONBLOCK, EFD_SEMAPHORE, EPOLL_CLOEXEC, EPOLL_CTL_ADD,
    EPOLL_CTL_DEL, EPOLL_CTL_MOD, EventFD, EventPoll, TFD_CLOEXEC,
    TFD_NONBLOCK, TFD_TIMER_ABSTIME, TimerFD,
)
from ..fdtable import OpenFile
from ..process import Process
from ..vfs import O_NONBLOCK, O_RDONLY, O_RDWR


class EventCalls:
    """Mixin with event syscalls; mixed into :class:`Kernel`."""

    # ---- eventfd ----

    def sys_eventfd2(self, proc: Process, initval: int,
                     flags: int = 0) -> int:
        efd = EventFD(initval & 0xFFFFFFFF,
                      semaphore=bool(flags & EFD_SEMAPHORE))
        file = OpenFile(OpenFile.KIND_EVENTFD,
                        O_RDWR | (O_NONBLOCK if flags & EFD_NONBLOCK else 0),
                        obj=efd, path="anon_inode:[eventfd]")
        return proc.fdtable.install(file,
                                    cloexec=bool(flags & EFD_CLOEXEC))

    def sys_eventfd(self, proc: Process, initval: int) -> int:
        return self.sys_eventfd2(proc, initval, 0)

    # ---- timerfd ----

    def sys_timerfd_create(self, proc: Process, clock_id: int,
                           flags: int = 0) -> int:
        if clock_id not in (0, 1, 7):  # REALTIME, MONOTONIC, BOOTTIME
            raise KernelError(EINVAL, f"timerfd clock {clock_id}")
        tfd = TimerFD(clock_id)
        file = OpenFile(OpenFile.KIND_TIMERFD,
                        O_RDONLY | (O_NONBLOCK if flags & TFD_NONBLOCK else 0),
                        obj=tfd, path="anon_inode:[timerfd]")
        return proc.fdtable.install(file,
                                    cloexec=bool(flags & TFD_CLOEXEC))

    def _timerfd(self, proc: Process, fd: int) -> TimerFD:
        file = proc.fdtable.get(fd)
        if file.kind != OpenFile.KIND_TIMERFD:
            raise KernelError(EINVAL, f"fd {fd} is not a timerfd")
        return file.obj

    def sys_timerfd_settime(self, proc: Process, fd: int, flags: int,
                            value_ns: int,
                            interval_ns: int = 0) -> Tuple[int, int]:
        """Arm/disarm; returns the previous (value_ns, interval_ns)."""
        if value_ns < 0 or interval_ns < 0:
            raise KernelError(EINVAL, "negative timer")
        return self._timerfd(proc, fd).settime(
            value_ns, interval_ns,
            absolute=bool(flags & TFD_TIMER_ABSTIME))

    def sys_timerfd_gettime(self, proc: Process, fd: int) -> Tuple[int, int]:
        return self._timerfd(proc, fd).gettime()

    # ---- epoll ----

    def sys_epoll_create1(self, proc: Process, flags: int = 0) -> int:
        counters = self.trace.counters if self.trace is not None else None
        file = OpenFile(OpenFile.KIND_EPOLL, 0,
                        obj=EventPoll(counters=counters),
                        path="anon_inode:[eventpoll]")
        return proc.fdtable.install(file,
                                    cloexec=bool(flags & EPOLL_CLOEXEC))

    def sys_epoll_create(self, proc: Process, size: int) -> int:
        if size <= 0:
            raise KernelError(EINVAL, "epoll_create size must be positive")
        return self.sys_epoll_create1(proc, 0)

    def _epoll(self, proc: Process, epfd: int) -> EventPoll:
        file = proc.fdtable.get(epfd)
        if file.kind != OpenFile.KIND_EPOLL:
            raise KernelError(EINVAL, f"fd {epfd} is not an epoll fd")
        return file.obj

    def sys_epoll_ctl(self, proc: Process, epfd: int, op: int, fd: int,
                      events: int = 0, data: Optional[int] = None) -> int:
        """``data`` is the epoll_event user datum; defaults to ``fd``."""
        ep = self._epoll(proc, epfd)
        if fd == epfd:
            raise KernelError(ELOOP, "epoll fd cannot watch itself")
        target = proc.fdtable.get(fd)  # EBADF if closed
        if data is None:
            data = fd
        if op == EPOLL_CTL_ADD:
            if target.kind in (OpenFile.KIND_REG, OpenFile.KIND_DIR):
                raise KernelError(EPERM, "regular files cannot be epolled")
            ep.add(fd, target, events, data)
        elif op == EPOLL_CTL_MOD:
            ep.modify(fd, events, data)
        elif op == EPOLL_CTL_DEL:
            ep.remove(fd)
        else:
            raise KernelError(EINVAL, f"epoll_ctl op {op}")
        return 0

    def sys_epoll_pwait(self, proc: Process, epfd: int, maxevents: int,
                        timeout_ns: Optional[int] = None,
                        sigmask: Optional[int] = None
                        ) -> List[Tuple[int, int]]:
        """Returns ``[(data, revents)]``, at most ``maxevents`` entries."""
        if maxevents <= 0:
            raise KernelError(EINVAL, "maxevents must be positive")
        ep = self._epoll(proc, epfd)
        old_mask = proc.blocked_mask
        if sigmask is not None:
            proc.blocked_mask = sigmask
        try:
            return self.block_on_waitqueues(
                proc, [ep.wq], lambda: ep.wait_step(maxevents),
                timeout_ns=timeout_ns, empty=list)
        finally:
            if sigmask is not None:
                proc.blocked_mask = old_mask

    def sys_epoll_wait(self, proc: Process, epfd: int, maxevents: int,
                       timeout_ms: int = -1) -> List[Tuple[int, int]]:
        timeout_ns = None if timeout_ms < 0 else timeout_ms * 1_000_000
        return self.sys_epoll_pwait(proc, epfd, maxevents, timeout_ns)
