"""Memory-management syscalls: the mmap family.

The kernel tracks VMAs (:mod:`repro.kernel.mm`); the WALI layer owns the
bytes (they live inside Wasm linear memory, §3.2) and passes an optional
``mem_reader(addr, length) -> bytes`` so MAP_SHARED write-back can reach the
file.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errno import EBADF, EINVAL, ENOMEM, ENOSYS, KernelError
from ..fdtable import OpenFile
from ..mm import (
    MAP_ANONYMOUS, MAP_FIXED, MAP_PRIVATE, MAP_SHARED, MapResult,
    MREMAP_MAYMOVE, PROT_EXEC, PROT_READ, PROT_WRITE, WritebackSpec,
)
from ..process import Process

# msync(2) flags
MS_ASYNC = 1
MS_INVALIDATE = 2
MS_SYNC = 4


class MemCalls:
    """Mixin with memory syscalls; mixed into :class:`Kernel`."""

    def _mm(self, proc: Process):
        if proc.mm is None:
            raise KernelError(ENOMEM, "process has no address space")
        return proc.mm

    def sys_mmap(self, proc: Process, addr: int, length: int, prot: int,
                 flags: int, fd: int = -1, offset: int = 0) -> MapResult:
        inode = None
        if not flags & MAP_ANONYMOUS:
            file = proc.fdtable.get(fd)
            if file.kind != OpenFile.KIND_REG:
                raise KernelError(EBADF, "mmap of non-regular fd")
            inode = file.inode
            if inode is not None and inode.mapping is not None:
                # fault the mapped range into the page cache up front
                inode.mapping.ensure_resident(offset, length)
        return self._mm(proc).mmap(addr, length, prot, flags, inode, offset)

    def sys_munmap(self, proc: Process, addr: int, length: int,
                   mem_reader: Optional[Callable] = None) -> int:
        writebacks = self._mm(proc).munmap(addr, length)
        self._apply_writebacks(writebacks, mem_reader)
        return 0

    def sys_mremap(self, proc: Process, old_addr: int, old_size: int,
                   new_size: int, flags: int = MREMAP_MAYMOVE):
        return self._mm(proc).mremap(old_addr, old_size, new_size, flags)

    def sys_mprotect(self, proc: Process, addr: int, length: int,
                     prot: int) -> int:
        self._mm(proc).mprotect(addr, length, prot)
        return 0

    def sys_msync(self, proc: Process, addr: int, length: int,
                  flags: int = 0,
                  mem_reader: Optional[Callable] = None) -> int:
        writebacks = self._mm(proc).msync(addr, length)
        self._apply_writebacks(writebacks, mem_reader)
        if flags & MS_SYNC and self.blockdev is not None:
            # MS_SYNC means durable on return: fsync each touched file
            # through the block layer, same contract as file durability
            synced = set()
            for wb in writebacks:
                if wb.inode is not None and wb.inode.mapping is not None \
                        and id(wb.inode) not in synced:
                    synced.add(id(wb.inode))
                    self.blockdev.fsync_inode(wb.inode, datasync=True)
        return 0

    def sys_madvise(self, proc: Process, addr: int, length: int,
                    advice: int) -> int:
        return 0

    def sys_mincore(self, proc: Process, addr: int, length: int) -> bytes:
        mm = self._mm(proc)
        pages = (length + 4095) // 4096
        out = bytearray(pages)
        for i in range(pages):
            if mm.find(addr + i * 4096) is not None:
                out[i] = 1
        return bytes(out)

    def sys_brk(self, proc: Process, addr: int) -> int:
        """musl on WALI allocates with mmap; brk just reports the arena top
        so legacy callers get a sane value."""
        return self._mm(proc).peak_address()

    def _apply_writebacks(self, writebacks: List[WritebackSpec],
                          mem_reader: Optional[Callable]) -> None:
        if mem_reader is None:
            return
        for wb in writebacks:
            data = mem_reader(wb.addr, wb.length)
            if data is not None:
                end = wb.file_offset + len(data)
                # do not extend the file past its current size on writeback
                cur = len(wb.inode.data)
                n = min(end, cur) - wb.file_offset
                if n > 0:
                    # through write_at so block-layer dirty tracking and
                    # content fsnotify see mmap writebacks like any write
                    wb.inode.write_at(wb.file_offset, bytes(data[:n]))
