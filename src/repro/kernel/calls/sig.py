"""Signal syscalls: registration, masking, suspension.

Handler execution lives in the WALI layer (§3.3 step 4); here the kernel
stores dispositions (opaque handler tokens), manages pending state, and
implements the mask algebra.
"""

from __future__ import annotations

from typing import Optional

from ..errno import EAGAIN, EINVAL, EPERM, KernelError
from ..process import Process
from ..signals import (
    NSIG, SIG_BLOCK, SIG_SETMASK, SIG_UNBLOCK, SIGKILL, SIGSTOP, SigAction,
    check_signum, sig_bit,
)


class SigCalls:
    """Mixin with signal syscalls; mixed into :class:`Kernel`."""

    def sys_rt_sigaction(self, proc: Process, sig: int,
                         new_action: Optional[SigAction]) -> SigAction:
        check_signum(sig)
        if sig in (SIGKILL, SIGSTOP) and new_action is not None:
            raise KernelError(EINVAL, "cannot catch SIGKILL/SIGSTOP")
        if new_action is None:
            return proc.dispositions.get(sig)
        return proc.dispositions.set(sig, new_action)

    def sys_rt_sigprocmask(self, proc: Process, how: int,
                           new_mask: Optional[int]) -> int:
        old = proc.blocked_mask
        if new_mask is not None:
            never_blockable = sig_bit(SIGKILL) | sig_bit(SIGSTOP)
            new_mask &= ~never_blockable
            if how == SIG_BLOCK:
                proc.blocked_mask |= new_mask
            elif how == SIG_UNBLOCK:
                proc.blocked_mask &= ~new_mask
            elif how == SIG_SETMASK:
                proc.blocked_mask = new_mask
            else:
                raise KernelError(EINVAL, f"how {how}")
        return old

    def sys_rt_sigpending(self, proc: Process) -> int:
        return proc.pending.bits

    def sys_rt_sigsuspend(self, proc: Process, mask: int) -> int:
        """Replace the mask and sleep until a deliverable signal arrives;
        always returns EINTR (via the blocking machinery)."""
        saved = proc.blocked_mask
        proc.blocked_mask = mask & ~(sig_bit(SIGKILL) | sig_bit(SIGSTOP))
        try:
            self.block_until(proc, lambda: None)  # only a signal can wake us
        finally:
            proc.blocked_mask = saved
        return 0  # unreachable: block_until raises EINTR on signal

    def sys_pause(self, proc: Process) -> int:
        self.block_until(proc, lambda: None)
        return 0  # unreachable

    def sys_sigaltstack(self, proc: Process, ss=None) -> int:
        # Wasm guests have a virtualised stack; altstacks are meaningless
        # but the call must succeed for libc initialisation.
        return 0

    def sys_rt_sigreturn(self, proc: Process) -> int:
        """§3.6 pitfall 4: sigreturn is an attack gadget (SROP); WALI manages
        handler frames inside the engine, so a direct call is prohibited."""
        raise KernelError(EPERM, "sigreturn is engine-managed under WALI")

    def sys_rt_sigtimedwait(self, proc: Process, setmask: int,
                            timeout_ns: Optional[int] = None) -> int:
        def scan():
            for i, sig in enumerate(proc.pending.queue):
                if setmask & sig_bit(sig):
                    del proc.pending.queue[i]
                    proc.pending.bits &= ~sig_bit(sig)
                    return sig
            return None

        return self.block_until(proc, scan, timeout_ns=timeout_ns,
                                empty=lambda: (_ for _ in ()).throw(
                                    KernelError(EAGAIN, "sigtimedwait timeout")))
