"""Loopback socket layer: AF_INET/AF_UNIX stream + datagram sockets.

Everything stays in-process: a :class:`NetStack` owns the "port namespace";
connected stream sockets are paired buffers with conditions, which is enough
to run the paper's socket-heavy guests (memcached, paho-mqtt) and exercise
``socket``/``bind``/``listen``/``accept``/``connect``/``send*``/``recv*``/
``setsockopt``/``shutdown`` through WALI.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from .errno import (
    EADDRINUSE, EAGAIN, ECONNREFUSED, ECONNRESET, EINVAL, EISCONN,
    ENOTCONN, EOPNOTSUPP, EPIPE, KernelError,
)
from .eventpoll import (
    EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP, WaitQueue,
)

AF_UNIX = 1
AF_INET = 2

SOCK_STREAM = 1
SOCK_DGRAM = 2
SOCK_NONBLOCK = 0o4000
SOCK_CLOEXEC = 0o2000000

SOL_SOCKET = 1
SO_REUSEADDR = 2
SO_KEEPALIVE = 9
SO_RCVBUF = 8
SO_SNDBUF = 7
IPPROTO_TCP = 6
TCP_NODELAY = 1

SHUT_RD, SHUT_WR, SHUT_RDWR = 0, 1, 2

SOCK_BUF_CAPACITY = 262144


class Socket:
    """One endpoint."""

    ST_NEW = "new"
    ST_BOUND = "bound"
    ST_LISTENING = "listening"
    ST_CONNECTED = "connected"
    ST_CLOSED = "closed"

    def __init__(self, stack: "NetStack", family: int, type_: int):
        self.stack = stack
        self.family = family
        self.type = type_
        self.state = self.ST_NEW
        self.addr: Optional[Tuple] = None        # bound address
        self.peer_addr: Optional[Tuple] = None
        self.peer: Optional["Socket"] = None
        self.rbuf = bytearray()
        self.eof = False
        self.backlog: List["Socket"] = []
        self.backlog_limit = 0
        self.dgrams: List[Tuple[Tuple, bytes]] = []
        self.opts: Dict[Tuple[int, int], int] = {}
        self.cond = threading.Condition()
        # readiness waitqueue: state transitions publish events here so
        # epoll/ppoll waiters wake without rescanning (kernel/eventpoll.py)
        self.wq = WaitQueue()

    # ---- stream data path (non-blocking steps; kernel loops for blocking) ----

    def recv_step(self, length: int) -> bytes:
        with self.cond:
            if self.rbuf:
                out = bytes(self.rbuf[:length])
                del self.rbuf[:length]
                self.cond.notify_all()
                if self.peer is not None:
                    self.peer.wq.wake(EPOLLOUT)  # space freed for the writer
                return out
            if self.eof or self.state == self.ST_CLOSED:
                return b""
            if self.state != self.ST_CONNECTED:
                raise KernelError(ENOTCONN)
            raise KernelError(EAGAIN, "socket buffer empty")

    def send_step(self, data: bytes) -> int:
        peer = self.peer
        if self.state != self.ST_CONNECTED or peer is None:
            if self.type == SOCK_DGRAM:
                raise KernelError(ENOTCONN)
            raise KernelError(EPIPE, "send on unconnected/reset socket")
        with peer.cond:
            if peer.state == peer.ST_CLOSED:
                raise KernelError(EPIPE, "peer closed")
            space = SOCK_BUF_CAPACITY - len(peer.rbuf)
            if space <= 0:
                raise KernelError(EAGAIN, "peer buffer full")
            chunk = data[:space]
            peer.rbuf.extend(chunk)
            peer.cond.notify_all()
            peer.wq.wake(EPOLLIN)
            return len(chunk)

    def poll_events(self) -> int:
        """Current readiness mask (EPOLL*/POLL* bits share values)."""
        if self.state == self.ST_LISTENING:
            return EPOLLIN if self.backlog else 0
        mask = 0
        if self.rbuf or self.dgrams or self.eof or \
                self.state == self.ST_CLOSED:
            mask |= EPOLLIN
        peer = self.peer
        peer_gone = self.state == self.ST_CONNECTED and \
            (peer is None or peer.state == self.ST_CLOSED)
        if self.state == self.ST_CONNECTED and peer is not None and \
                peer.state != self.ST_CLOSED and \
                len(peer.rbuf) < SOCK_BUF_CAPACITY:
            mask |= EPOLLOUT
        if self.state == self.ST_CLOSED or peer_gone:
            mask |= EPOLLHUP
        if self.eof:
            mask |= EPOLLRDHUP
        return mask

    def poll(self) -> Tuple[bool, bool]:
        mask = self.poll_events()
        return bool(mask & EPOLLIN), bool(mask & EPOLLOUT)

    # ---- lifecycle ----

    def shutdown(self, how: int) -> None:
        if self.state != self.ST_CONNECTED:
            raise KernelError(ENOTCONN)
        if how in (SHUT_WR, SHUT_RDWR) and self.peer is not None:
            with self.peer.cond:
                self.peer.eof = True
                self.peer.cond.notify_all()
            self.peer.wq.wake(EPOLLIN | EPOLLRDHUP)
        if how in (SHUT_RD, SHUT_RDWR):
            with self.cond:
                self.eof = True
                self.cond.notify_all()
            self.wq.wake(EPOLLIN | EPOLLRDHUP)

    def close(self) -> None:
        if self.state == self.ST_CLOSED:
            return
        if self.state == self.ST_LISTENING:
            self.stack.unregister(self)
            for pending in self.backlog:
                with pending.cond:
                    pending.state = pending.ST_CLOSED
                    pending.cond.notify_all()
                pending.wq.wake(EPOLLIN | EPOLLHUP)
        if self.addr is not None and self.type == SOCK_DGRAM:
            self.stack.unregister(self)
        peer = self.peer
        self.state = self.ST_CLOSED
        with self.cond:
            self.cond.notify_all()
        self.wq.wake(EPOLLIN | EPOLLOUT | EPOLLHUP)
        if peer is not None:
            with peer.cond:
                peer.eof = True
                peer.cond.notify_all()
            peer.wq.wake(EPOLLIN | EPOLLRDHUP | EPOLLHUP)


class NetStack:
    """Port/address namespace plus connection establishment."""

    def __init__(self):
        self._bound: Dict[Tuple, Socket] = {}
        self.lock = threading.Lock()

    def socket(self, family: int, type_: int) -> Socket:
        if family not in (AF_UNIX, AF_INET):
            raise KernelError(EINVAL, f"family {family}")
        base_type = type_ & 0xFF
        if base_type not in (SOCK_STREAM, SOCK_DGRAM):
            raise KernelError(EINVAL, f"type {type_}")
        return Socket(self, family, base_type)

    def bind(self, sock: Socket, addr: Tuple) -> None:
        key = (sock.family, sock.type, addr)
        with self.lock:
            if key in self._bound and \
                    not sock.opts.get((SOL_SOCKET, SO_REUSEADDR)):
                existing = self._bound[key]
                if existing.state != Socket.ST_CLOSED:
                    raise KernelError(EADDRINUSE, str(addr))
            self._bound[key] = sock
        sock.addr = addr
        sock.state = Socket.ST_BOUND

    def listen(self, sock: Socket, backlog: int) -> None:
        if sock.addr is None:
            raise KernelError(EINVAL, "listen before bind")
        if sock.type != SOCK_STREAM:
            raise KernelError(EOPNOTSUPP)
        sock.backlog_limit = max(backlog, 1)
        sock.state = Socket.ST_LISTENING

    def connect(self, sock: Socket, addr: Tuple) -> None:
        if sock.state == Socket.ST_CONNECTED:
            raise KernelError(EISCONN)
        if sock.type == SOCK_DGRAM:
            sock.peer_addr = addr  # datagram "connect" just fixes the target
            return
        with self.lock:
            listener = self._bound.get((sock.family, sock.type, addr))
        if listener is None or listener.state != Socket.ST_LISTENING:
            raise KernelError(ECONNREFUSED, str(addr))
        server_side = Socket(self, sock.family, sock.type)
        server_side.peer = sock
        server_side.addr = addr
        server_side.peer_addr = sock.addr or ("", 0)
        server_side.state = Socket.ST_CONNECTED
        sock.peer = server_side
        sock.peer_addr = addr
        sock.state = Socket.ST_CONNECTED
        with listener.cond:
            if len(listener.backlog) >= listener.backlog_limit:
                sock.peer = None
                sock.state = Socket.ST_BOUND if sock.addr else Socket.ST_NEW
                raise KernelError(ECONNREFUSED, "backlog full")
            listener.backlog.append(server_side)
            listener.cond.notify_all()
        listener.wq.wake(EPOLLIN)

    def accept_step(self, listener: Socket) -> Socket:
        with listener.cond:
            if listener.backlog:
                return listener.backlog.pop(0)
            raise KernelError(EAGAIN, "no pending connections")

    def sendto(self, sock: Socket, data: bytes, addr: Optional[Tuple]) -> int:
        if sock.type != SOCK_DGRAM:
            if addr is not None and sock.state == Socket.ST_CONNECTED:
                return sock.send_step(data)
            raise KernelError(EOPNOTSUPP)
        target_addr = addr or sock.peer_addr
        if target_addr is None:
            raise KernelError(ENOTCONN)
        with self.lock:
            target = self._bound.get((sock.family, SOCK_DGRAM, target_addr))
        if target is None:
            raise KernelError(ECONNREFUSED, str(target_addr))
        with target.cond:
            target.dgrams.append((sock.addr or ("", 0), bytes(data)))
            target.cond.notify_all()
        target.wq.wake(EPOLLIN)
        return len(data)

    def recvfrom_step(self, sock: Socket, length: int) -> Tuple[bytes, Tuple]:
        if sock.type != SOCK_DGRAM:
            return sock.recv_step(length), sock.peer_addr or ("", 0)
        with sock.cond:
            if sock.dgrams:
                src, data = sock.dgrams.pop(0)
                return data[:length], src
            raise KernelError(EAGAIN, "no datagrams")

    def socketpair(self, family: int, type_: int) -> Tuple[Socket, Socket]:
        a = self.socket(family, type_)
        b = self.socket(family, type_)
        a.peer = b
        b.peer = a
        a.state = b.state = Socket.ST_CONNECTED
        a.peer_addr = b.peer_addr = ("", 0)
        return a, b

    def unregister(self, sock: Socket) -> None:
        with self.lock:
            for key, s in list(self._bound.items()):
                if s is sock:
                    del self._bound[key]
