"""Back-compat shim: the socket layer now lives in :mod:`repro.kernel.net`.

Historically this module held the loopback-only socket stack.  PR 2 split
it into a backend interface (``kernel/net/base.py``) with three
implementations — loopback (the default, same semantics), a simulated WAN
with latency/jitter/bandwidth/loss, and real host sockets — selected via
``Kernel(net_backend=...)``.  Every public name is re-exported here, and
``NetStack`` remains an alias for the default backend, so existing
imports keep working unchanged.
"""

from __future__ import annotations

from .net import (
    AF_INET, AF_UNIX, IPPROTO_TCP, HostBackend, HostSocket, LoopbackBackend,
    NetBackend, SHUT_RD, SHUT_RDWR, SHUT_WR, SO_KEEPALIVE, SO_RCVBUF,
    SO_REUSEADDR, SO_SNDBUF, SOCK_BUF_CAPACITY, SOCK_CLOEXEC, SOCK_DGRAM,
    SOCK_NONBLOCK, SOCK_STREAM, SOL_SOCKET, Socket, StreamBuffer,
    TCP_NODELAY, WanBackend, create_backend,
)

# the historical name for the loopback stack
NetStack = LoopbackBackend

__all__ = [
    "AF_INET", "AF_UNIX", "HostBackend", "HostSocket", "IPPROTO_TCP",
    "LoopbackBackend", "NetBackend", "NetStack", "SHUT_RD", "SHUT_RDWR",
    "SHUT_WR", "SOCK_BUF_CAPACITY", "SOCK_CLOEXEC", "SOCK_DGRAM",
    "SOCK_NONBLOCK", "SOCK_STREAM", "SOL_SOCKET", "SO_KEEPALIVE",
    "SO_RCVBUF", "SO_REUSEADDR", "SO_SNDBUF", "Socket", "StreamBuffer",
    "TCP_NODELAY", "WanBackend", "create_backend",
]
