"""Linux errno values and the kernel-internal error exception.

Syscall implementations raise :class:`KernelError`; the dispatcher converts
it to the Linux convention of returning ``-errno``.
"""

from __future__ import annotations

EPERM = 1
ENOENT = 2
ESRCH = 3
EINTR = 4
EIO = 5
ENXIO = 6
E2BIG = 7
ENOEXEC = 8
EBADF = 9
ECHILD = 10
EAGAIN = 11
ENOMEM = 12
EACCES = 13
EFAULT = 14
ENOTBLK = 15
EBUSY = 16
EEXIST = 17
EXDEV = 18
ENODEV = 19
ENOTDIR = 20
EISDIR = 21
EINVAL = 22
ENFILE = 23
EMFILE = 24
ENOTTY = 25
ETXTBSY = 26
EFBIG = 27
ENOSPC = 28
ESPIPE = 29
EROFS = 30
EMLINK = 31
EPIPE = 32
EDOM = 33
ERANGE = 34
EDEADLK = 35
ENAMETOOLONG = 36
ENOLCK = 37
ENOSYS = 38
ENOTEMPTY = 39
ELOOP = 40
EWOULDBLOCK = EAGAIN
ENOMSG = 42
EIDRM = 43
ENOSTR = 60
ENODATA = 61
ETIME = 62
ENOSR = 63
ENOTSOCK = 88
EDESTADDRREQ = 89
EMSGSIZE = 90
EPROTOTYPE = 91
ENOPROTOOPT = 92
EPROTONOSUPPORT = 93
ESOCKTNOSUPPORT = 94
EOPNOTSUPP = 95
ENOTSUP = EOPNOTSUPP
EPFNOSUPPORT = 96
EAFNOSUPPORT = 97
EADDRINUSE = 98
EADDRNOTAVAIL = 99
ENETDOWN = 100
ENETUNREACH = 101
ENETRESET = 102
ECONNABORTED = 103
ECONNRESET = 104
ENOBUFS = 105
EISCONN = 106
ENOTCONN = 107
ESHUTDOWN = 108
ETOOMANYREFS = 109
ETIMEDOUT = 110
ECONNREFUSED = 111
EHOSTDOWN = 112
EHOSTUNREACH = 113
EALREADY = 114
EINPROGRESS = 115
ECANCELED = 125

ERRNO_NAMES = {
    v: k for k, v in list(globals().items())
    if k.isupper() and isinstance(v, int) and not k.startswith("_")
    and k not in ("EWOULDBLOCK", "ENOTSUP")
}


class KernelError(Exception):
    """Raised by syscall implementations; carries the errno."""

    def __init__(self, errno: int, message: str = ""):
        self.errno = errno
        name = ERRNO_NAMES.get(errno, str(errno))
        super().__init__(f"{name}" + (f": {message}" if message else ""))


def errno_name(errno: int) -> str:
    return ERRNO_NAMES.get(errno, f"E{errno}")
