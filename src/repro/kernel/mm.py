"""Memory management: VMAs and the mmap family.

The kernel tracks *placement* (which address ranges are mapped, with what
protection and backing); the bytes themselves live in the owner's memory —
for WALI processes that is the Wasm linear memory, into which the WALI layer
maps every allocation (§3.2: all mappings are sandboxed inside linear
memory, placed with MAP_FIXED at engine-chosen addresses).

File-backed mappings return the initial content as ``populate`` bytes; on
``munmap``/``msync`` of a MAP_SHARED mapping the caller passes the live bytes
back for write-through to the inode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .errno import EINVAL, ENOMEM, KernelError
from .vfs import Inode

MM_PAGE = 4096

PROT_NONE = 0
PROT_READ = 1
PROT_WRITE = 2
PROT_EXEC = 4

MAP_SHARED = 0x01
MAP_PRIVATE = 0x02
MAP_FIXED = 0x10
MAP_ANONYMOUS = 0x20
MAP_GROWSDOWN = 0x0100
MAP_NORESERVE = 0x4000

MREMAP_MAYMOVE = 1
MREMAP_FIXED = 2


def page_align_up(n: int) -> int:
    return (n + MM_PAGE - 1) & ~(MM_PAGE - 1)


@dataclass
class VMA:
    start: int
    length: int
    prot: int
    flags: int
    inode: Optional[Inode] = None
    file_offset: int = 0

    @property
    def end(self) -> int:
        return self.start + self.length

    @property
    def shared(self) -> bool:
        return bool(self.flags & MAP_SHARED)

    def overlaps(self, start: int, length: int) -> bool:
        return self.start < start + length and start < self.end


@dataclass
class MapResult:
    addr: int
    populate: Optional[bytes]  # initial content (file-backed), else None


@dataclass
class WritebackSpec:
    """A region whose live bytes must be written back to a file."""

    inode: Inode
    file_offset: int
    addr: int
    length: int


class AddressSpace:
    """One process's mmap arena: ``[base, limit)``."""

    def __init__(self, base: int, limit: int):
        if base % MM_PAGE or limit % MM_PAGE:
            raise ValueError("arena bounds must be page-aligned")
        self.base = base
        self.limit = limit
        self.vmas: List[VMA] = []
        self.grow_hook = None  # callable(new_end) -> bool; set by WALI

    # ---- queries ----

    def find(self, addr: int) -> Optional[VMA]:
        for v in self.vmas:
            if v.start <= addr < v.end:
                return v
        return None

    def total_mapped(self) -> int:
        return sum(v.length for v in self.vmas)

    def peak_address(self) -> int:
        return max((v.end for v in self.vmas), default=self.base)

    def _free_range(self, length: int) -> int:
        """First-fit address allocation."""
        addr = self.base
        for v in sorted(self.vmas, key=lambda v: v.start):
            if addr + length <= v.start:
                break
            addr = max(addr, v.end)
        if addr + length > self.limit:
            raise KernelError(ENOMEM, "address space exhausted")
        return addr

    def _conflicts(self, start: int, length: int) -> List[VMA]:
        return [v for v in self.vmas if v.overlaps(start, length)]

    # ---- operations ----

    def mmap(self, addr: int, length: int, prot: int, flags: int,
             inode: Optional[Inode] = None, offset: int = 0) -> MapResult:
        if length <= 0:
            raise KernelError(EINVAL, "zero-length mmap")
        if not (flags & (MAP_PRIVATE | MAP_SHARED)):
            raise KernelError(EINVAL, "mmap needs MAP_PRIVATE or MAP_SHARED")
        if offset % MM_PAGE:
            raise KernelError(EINVAL, "offset not page-aligned")
        length = page_align_up(length)
        if flags & MAP_FIXED:
            if addr % MM_PAGE:
                raise KernelError(EINVAL, "MAP_FIXED address not aligned")
            if addr < self.base or addr + length > self.limit:
                raise KernelError(ENOMEM, "MAP_FIXED outside arena")
            # MAP_FIXED silently unmaps existing overlaps
            self._unmap_range(addr, length)
        else:
            addr = self._free_range(length)
        if self.grow_hook is not None and not self.grow_hook(addr + length):
            raise KernelError(ENOMEM, "backing store grow failed")
        populate = None
        if not flags & MAP_ANONYMOUS:
            if inode is None or inode.data is None:
                raise KernelError(EINVAL, "file mapping without file")
            content = bytes(inode.data[offset : offset + length])
            populate = content + b"\x00" * (length - len(content))
        self.vmas.append(VMA(addr, length, prot, flags, inode, offset))
        self.vmas.sort(key=lambda v: v.start)
        return MapResult(addr, populate)

    def munmap(self, addr: int, length: int) -> List[WritebackSpec]:
        if addr % MM_PAGE:
            raise KernelError(EINVAL, "munmap address not aligned")
        if length <= 0:
            raise KernelError(EINVAL, "zero-length munmap")
        return self._unmap_range(addr, page_align_up(length))

    def _unmap_range(self, addr: int, length: int) -> List[WritebackSpec]:
        end = addr + length
        writebacks: List[WritebackSpec] = []
        new_vmas: List[VMA] = []
        for v in self.vmas:
            if not v.overlaps(addr, length):
                new_vmas.append(v)
                continue
            cut_lo = max(v.start, addr)
            cut_hi = min(v.end, end)
            if v.shared and v.inode is not None:
                writebacks.append(WritebackSpec(
                    v.inode, v.file_offset + (cut_lo - v.start),
                    cut_lo, cut_hi - cut_lo))
            if v.start < cut_lo:  # left remainder
                new_vmas.append(VMA(v.start, cut_lo - v.start, v.prot,
                                    v.flags, v.inode, v.file_offset))
            if cut_hi < v.end:    # right remainder
                new_vmas.append(VMA(
                    cut_hi, v.end - cut_hi, v.prot, v.flags, v.inode,
                    v.file_offset + (cut_hi - v.start)))
        self.vmas = sorted(new_vmas, key=lambda v: v.start)
        return writebacks

    def mremap(self, old_addr: int, old_size: int, new_size: int,
               flags: int) -> Tuple[int, bool]:
        """Returns (new_addr, moved)."""
        old_size = page_align_up(old_size)
        new_size = page_align_up(new_size)
        v = self.find(old_addr)
        if v is None or v.start != old_addr or v.length != old_size:
            raise KernelError(EINVAL, "mremap of unmapped region")
        if new_size <= old_size:
            if new_size < old_size:
                self._unmap_range(old_addr + new_size, old_size - new_size)
                v2 = self.find(old_addr)
                if v2 is not None:
                    v2.length = new_size
            return old_addr, False
        grow = new_size - old_size
        tail = old_addr + old_size
        if not self._conflicts(tail, grow) and tail + grow <= self.limit:
            if self.grow_hook is not None and not self.grow_hook(tail + grow):
                raise KernelError(ENOMEM, "backing store grow failed")
            v.length = new_size
            return old_addr, False
        if not flags & MREMAP_MAYMOVE:
            raise KernelError(ENOMEM, "cannot grow in place")
        self.vmas.remove(v)
        try:
            new_addr = self._free_range(new_size)
        except KernelError:
            self.vmas.append(v)
            raise
        if self.grow_hook is not None and \
                not self.grow_hook(new_addr + new_size):
            self.vmas.append(v)
            raise KernelError(ENOMEM, "backing store grow failed")
        self.vmas.append(VMA(new_addr, new_size, v.prot, v.flags, v.inode,
                             v.file_offset))
        self.vmas.sort(key=lambda x: x.start)
        return new_addr, True

    def mprotect(self, addr: int, length: int, prot: int) -> None:
        if addr % MM_PAGE:
            raise KernelError(EINVAL, "mprotect address not aligned")
        length = page_align_up(length)
        end = addr + length
        covered = addr
        for v in sorted(self._conflicts(addr, length), key=lambda v: v.start):
            if v.start > covered:
                raise KernelError(ENOMEM, "mprotect hole")
            covered = max(covered, v.end)
        if covered < end:
            raise KernelError(ENOMEM, "mprotect past mapping")
        # split VMAs so protection boundaries are exact
        for v in list(self._conflicts(addr, length)):
            pieces = []
            if v.start < addr:
                pieces.append(VMA(v.start, addr - v.start, v.prot, v.flags,
                                  v.inode, v.file_offset))
            lo = max(v.start, addr)
            hi = min(v.end, end)
            pieces.append(VMA(lo, hi - lo, prot, v.flags, v.inode,
                              v.file_offset + (lo - v.start)))
            if v.end > end:
                pieces.append(VMA(end, v.end - end, v.prot, v.flags, v.inode,
                                  v.file_offset + (end - v.start)))
            self.vmas.remove(v)
            self.vmas.extend(pieces)
        self.vmas.sort(key=lambda v: v.start)

    def msync(self, addr: int, length: int) -> List[WritebackSpec]:
        length = page_align_up(length)
        out = []
        for v in self._conflicts(addr, length):
            if v.shared and v.inode is not None:
                lo = max(v.start, addr)
                hi = min(v.end, addr + length)
                out.append(WritebackSpec(
                    v.inode, v.file_offset + (lo - v.start), lo, hi - lo))
        return out

    def fork_copy(self) -> "AddressSpace":
        m = AddressSpace(self.base, self.limit)
        m.vmas = [VMA(v.start, v.length, v.prot, v.flags, v.inode,
                      v.file_offset) for v in self.vmas]
        m.grow_hook = None  # rebound by the child's runtime
        return m

    def maps_text(self) -> str:
        """/proc/<pid>/maps-style dump."""
        lines = []
        for v in self.vmas:
            perms = "".join([
                "r" if v.prot & PROT_READ else "-",
                "w" if v.prot & PROT_WRITE else "-",
                "x" if v.prot & PROT_EXEC else "-",
                "s" if v.shared else "p",
            ])
            lines.append(f"{v.start:08x}-{v.end:08x} {perms} "
                         f"{v.file_offset:08x} 00:00 "
                         f"{v.inode.ino if v.inode else 0}")
        return "\n".join(lines) + ("\n" if lines else "")
