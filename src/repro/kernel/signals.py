"""Signal machinery: numbers, dispositions, pending state, masks, signalfd.

The kernel side of the paper's §3.3: generation marks a signal pending on the
target process (bit-vector + queue); delivery happens when the WALI engine
polls at a safepoint and the signal is not blocked by the thread mask.

:class:`SignalFD` is the file-descriptor front-end (``signalfd4``): it
drains pending signals that fall inside its mask as ``signalfd_siginfo``
records, and publishes readiness on a waitqueue so signal arrival flows
through ``epoll_pwait``/``ppoll``/``io_uring`` like any other event
source — the synchronous alternative to sigvirt's safepoint delivery.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from .errno import EAGAIN, EINVAL, KernelError
from .eventpoll import EPOLLHUP, EPOLLIN, WaitQueue

# signal numbers (x86-64/generic)
SIGHUP = 1
SIGINT = 2
SIGQUIT = 3
SIGILL = 4
SIGTRAP = 5
SIGABRT = 6
SIGBUS = 7
SIGFPE = 8
SIGKILL = 9
SIGUSR1 = 10
SIGSEGV = 11
SIGUSR2 = 12
SIGPIPE = 13
SIGALRM = 14
SIGTERM = 15
SIGSTKFLT = 16
SIGCHLD = 17
SIGCONT = 18
SIGSTOP = 19
SIGTSTP = 20
SIGTTIN = 21
SIGTTOU = 22
SIGURG = 23
SIGXCPU = 24
SIGXFSZ = 25
SIGVTALRM = 26
SIGPROF = 27
SIGWINCH = 28
SIGIO = 29
SIGPWR = 30
SIGSYS = 31
NSIG = 64

SIGNAL_NAMES = {
    v: k for k, v in list(globals().items())
    if k.startswith("SIG") and not k.startswith("SIG_") and isinstance(v, int)
}

# sigaction special handler values
SIG_DFL = 0
SIG_IGN = 1
SIG_ERR = -1

# sa_flags
SA_NOCLDSTOP = 0x00000001
SA_NOCLDWAIT = 0x00000002
SA_SIGINFO = 0x00000004
SA_RESTART = 0x10000000
SA_NODEFER = 0x40000000
SA_RESETHAND = 0x80000000
SA_RESTORER = 0x04000000

# rt_sigprocmask how
SIG_BLOCK = 0
SIG_UNBLOCK = 1
SIG_SETMASK = 2

# default dispositions
DFL_TERM = "terminate"
DFL_IGN = "ignore"
DFL_CORE = "core"
DFL_STOP = "stop"
DFL_CONT = "continue"

_DEFAULTS = {
    SIGCHLD: DFL_IGN, SIGURG: DFL_IGN, SIGWINCH: DFL_IGN, SIGCONT: DFL_CONT,
    SIGSTOP: DFL_STOP, SIGTSTP: DFL_STOP, SIGTTIN: DFL_STOP, SIGTTOU: DFL_STOP,
    SIGQUIT: DFL_CORE, SIGILL: DFL_CORE, SIGABRT: DFL_CORE, SIGFPE: DFL_CORE,
    SIGSEGV: DFL_CORE, SIGBUS: DFL_CORE, SIGSYS: DFL_CORE, SIGTRAP: DFL_CORE,
    SIGXCPU: DFL_CORE, SIGXFSZ: DFL_CORE,
}


def default_action(sig: int) -> str:
    return _DEFAULTS.get(sig, DFL_TERM)


def sig_bit(sig: int) -> int:
    return 1 << (sig - 1)


def check_signum(sig: int) -> None:
    if sig < 1 or sig > NSIG:
        raise KernelError(EINVAL, f"signal {sig}")


class SigAction:
    """One registered disposition (kernel view: an opaque handler token)."""

    __slots__ = ("handler", "mask", "flags")

    def __init__(self, handler: int = SIG_DFL, mask: int = 0, flags: int = 0):
        self.handler = handler  # SIG_DFL / SIG_IGN / guest funcref token
        self.mask = mask
        self.flags = flags

    def copy(self) -> "SigAction":
        return SigAction(self.handler, self.mask, self.flags)


class SigDispositions:
    """The sigaction table, shared by CLONE_SIGHAND threads."""

    def __init__(self):
        self.actions: Dict[int, SigAction] = {}

    def get(self, sig: int) -> SigAction:
        act = self.actions.get(sig)
        return act if act is not None else SigAction()

    def set(self, sig: int, act: SigAction) -> SigAction:
        old = self.get(sig)
        self.actions[sig] = act
        return old

    def reset_on_exec(self) -> None:
        """execve resets caught signals to default; ignored stay ignored."""
        for sig, act in list(self.actions.items()):
            if act.handler not in (SIG_DFL, SIG_IGN):
                self.actions[sig] = SigAction(SIG_DFL)

    def copy(self) -> "SigDispositions":
        d = SigDispositions()
        d.actions = {s: a.copy() for s, a in self.actions.items()}
        return d


class PendingSignals:
    """Per-process pending set: bit-vector + FIFO queue (§3.3 step 2)."""

    def __init__(self):
        self.bits = 0
        self.queue: List[int] = []
        # sender bookkeeping for siginfo consumers (signalfd): sig ->
        # (pid, uid) of the most recent generator
        self.info: Dict[int, Tuple[int, int]] = {}

    def generate(self, sig: int, sender_pid: int = 0,
                 sender_uid: int = 0) -> None:
        if not self.bits & sig_bit(sig):
            # merged standard signals keep the *first* generator's
            # identity (later senders coalesce into the pending bit)
            self.info[sig] = (sender_pid, sender_uid)
            self.bits |= sig_bit(sig)
            self.queue.append(sig)

    def take(self, blocked_mask: int) -> Optional[int]:
        """Pop the first pending signal not blocked, or None."""
        return self.take_in(~blocked_mask)

    def take_in(self, accept_mask: int) -> Optional[int]:
        """Pop the first pending signal whose bit is in ``accept_mask``."""
        for i, sig in enumerate(self.queue):
            if accept_mask & sig_bit(sig):
                del self.queue[i]
                self.bits &= ~sig_bit(sig)
                return sig
        return None

    def any_deliverable(self, blocked_mask: int) -> bool:
        return bool(self.bits & ~blocked_mask)

    def clear(self) -> None:
        self.bits = 0
        self.queue.clear()

    def copy(self) -> "PendingSignals":
        p = PendingSignals()
        p.bits = self.bits
        p.queue = list(self.queue)
        p.info = dict(self.info)
        return p


# ---------------------------------------------------------------------------
# signalfd: the fd front-end over the pending set
# ---------------------------------------------------------------------------

# signalfd4 flags (mirror O_NONBLOCK / O_CLOEXEC like Linux)
SFD_CLOEXEC = 0o2000000
SFD_NONBLOCK = 0o0004000

SIGNALFD_SIGINFO_SIZE = 128  # sizeof(struct signalfd_siginfo)

SI_USER = 0  # ssi_code: sent by kill()


def encode_siginfo(signo: int, code: int = SI_USER, pid: int = 0,
                   uid: int = 0) -> bytes:
    """One ``signalfd_siginfo`` wire record (leading fields + zero pad):
    ``{u32 ssi_signo, i32 ssi_errno, i32 ssi_code, u32 ssi_pid,
    u32 ssi_uid, ...}`` padded to 128 bytes."""
    return struct.pack("<IiiII", signo, 0, code, pid, uid).ljust(
        SIGNALFD_SIGINFO_SIZE, b"\x00")


def decode_siginfo(data: bytes) -> Tuple[int, int, int, int]:
    """``(signo, code, pid, uid)`` from one siginfo record."""
    signo, _errno, code, pid, uid = struct.unpack_from("<IiiII", data)
    return signo, code, pid, uid


class SignalFD:
    """The signalfd object: reads drain pending signals in its mask.

    The caller blocks the signals it hands to a signalfd (the standard
    usage), so default delivery does not race the fd; reads then consume
    them from the pending queue as ``signalfd_siginfo`` records.  Signal
    generation wakes the waitqueue, so the fd is epollable like every
    other readiness source.
    """

    def __init__(self, proc, mask: int):
        self.proc = proc
        self.mask = self._sanitize(mask)
        self.wq = WaitQueue()
        proc.signalfds.append(self)

    @staticmethod
    def _sanitize(mask: int) -> int:
        # SIGKILL/SIGSTOP are silently ignored in the mask, like Linux
        return mask & ~(sig_bit(SIGKILL) | sig_bit(SIGSTOP))

    def set_mask(self, mask: int) -> None:
        self.mask = self._sanitize(mask)
        if self.proc.pending.bits & self.mask:
            self.wq.wake(EPOLLIN)

    def signal_generated(self, sig: int) -> None:
        if sig_bit(sig) & self.mask:
            self.wq.wake(EPOLLIN)

    def read_step(self, length: int) -> bytes:
        if length < SIGNALFD_SIGINFO_SIZE:
            raise KernelError(EINVAL, "buffer smaller than siginfo")
        out = bytearray()
        while len(out) + SIGNALFD_SIGINFO_SIZE <= length:
            sig = self.proc.pending.take_in(self.mask)
            if sig is None:
                break
            pid, uid = self.proc.pending.info.get(sig, (0, 0))
            out += encode_siginfo(sig, SI_USER, pid, uid)
        if not out:
            raise KernelError(EAGAIN, "no signals pending in the mask")
        return bytes(out)

    def poll_events(self) -> int:
        return EPOLLIN if self.proc.pending.bits & self.mask else 0

    def close(self) -> None:
        try:
            self.proc.signalfds.remove(self)
        except ValueError:
            pass
        self.wq.wake(EPOLLHUP)
