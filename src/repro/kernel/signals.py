"""Signal machinery: numbers, dispositions, pending state, masks.

The kernel side of the paper's §3.3: generation marks a signal pending on the
target process (bit-vector + queue); delivery happens when the WALI engine
polls at a safepoint and the signal is not blocked by the thread mask.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .errno import EINVAL, KernelError

# signal numbers (x86-64/generic)
SIGHUP = 1
SIGINT = 2
SIGQUIT = 3
SIGILL = 4
SIGTRAP = 5
SIGABRT = 6
SIGBUS = 7
SIGFPE = 8
SIGKILL = 9
SIGUSR1 = 10
SIGSEGV = 11
SIGUSR2 = 12
SIGPIPE = 13
SIGALRM = 14
SIGTERM = 15
SIGSTKFLT = 16
SIGCHLD = 17
SIGCONT = 18
SIGSTOP = 19
SIGTSTP = 20
SIGTTIN = 21
SIGTTOU = 22
SIGURG = 23
SIGXCPU = 24
SIGXFSZ = 25
SIGVTALRM = 26
SIGPROF = 27
SIGWINCH = 28
SIGIO = 29
SIGPWR = 30
SIGSYS = 31
NSIG = 64

SIGNAL_NAMES = {
    v: k for k, v in list(globals().items())
    if k.startswith("SIG") and not k.startswith("SIG_") and isinstance(v, int)
}

# sigaction special handler values
SIG_DFL = 0
SIG_IGN = 1
SIG_ERR = -1

# sa_flags
SA_NOCLDSTOP = 0x00000001
SA_NOCLDWAIT = 0x00000002
SA_SIGINFO = 0x00000004
SA_RESTART = 0x10000000
SA_NODEFER = 0x40000000
SA_RESETHAND = 0x80000000
SA_RESTORER = 0x04000000

# rt_sigprocmask how
SIG_BLOCK = 0
SIG_UNBLOCK = 1
SIG_SETMASK = 2

# default dispositions
DFL_TERM = "terminate"
DFL_IGN = "ignore"
DFL_CORE = "core"
DFL_STOP = "stop"
DFL_CONT = "continue"

_DEFAULTS = {
    SIGCHLD: DFL_IGN, SIGURG: DFL_IGN, SIGWINCH: DFL_IGN, SIGCONT: DFL_CONT,
    SIGSTOP: DFL_STOP, SIGTSTP: DFL_STOP, SIGTTIN: DFL_STOP, SIGTTOU: DFL_STOP,
    SIGQUIT: DFL_CORE, SIGILL: DFL_CORE, SIGABRT: DFL_CORE, SIGFPE: DFL_CORE,
    SIGSEGV: DFL_CORE, SIGBUS: DFL_CORE, SIGSYS: DFL_CORE, SIGTRAP: DFL_CORE,
    SIGXCPU: DFL_CORE, SIGXFSZ: DFL_CORE,
}


def default_action(sig: int) -> str:
    return _DEFAULTS.get(sig, DFL_TERM)


def sig_bit(sig: int) -> int:
    return 1 << (sig - 1)


def check_signum(sig: int) -> None:
    if sig < 1 or sig > NSIG:
        raise KernelError(EINVAL, f"signal {sig}")


class SigAction:
    """One registered disposition (kernel view: an opaque handler token)."""

    __slots__ = ("handler", "mask", "flags")

    def __init__(self, handler: int = SIG_DFL, mask: int = 0, flags: int = 0):
        self.handler = handler  # SIG_DFL / SIG_IGN / guest funcref token
        self.mask = mask
        self.flags = flags

    def copy(self) -> "SigAction":
        return SigAction(self.handler, self.mask, self.flags)


class SigDispositions:
    """The sigaction table, shared by CLONE_SIGHAND threads."""

    def __init__(self):
        self.actions: Dict[int, SigAction] = {}

    def get(self, sig: int) -> SigAction:
        act = self.actions.get(sig)
        return act if act is not None else SigAction()

    def set(self, sig: int, act: SigAction) -> SigAction:
        old = self.get(sig)
        self.actions[sig] = act
        return old

    def reset_on_exec(self) -> None:
        """execve resets caught signals to default; ignored stay ignored."""
        for sig, act in list(self.actions.items()):
            if act.handler not in (SIG_DFL, SIG_IGN):
                self.actions[sig] = SigAction(SIG_DFL)

    def copy(self) -> "SigDispositions":
        d = SigDispositions()
        d.actions = {s: a.copy() for s, a in self.actions.items()}
        return d


class PendingSignals:
    """Per-process pending set: bit-vector + FIFO queue (§3.3 step 2)."""

    def __init__(self):
        self.bits = 0
        self.queue: List[int] = []

    def generate(self, sig: int) -> None:
        if not self.bits & sig_bit(sig):
            self.bits |= sig_bit(sig)
            self.queue.append(sig)

    def take(self, blocked_mask: int) -> Optional[int]:
        """Pop the first pending signal not blocked, or None."""
        for i, sig in enumerate(self.queue):
            if not blocked_mask & sig_bit(sig):
                del self.queue[i]
                self.bits &= ~sig_bit(sig)
                return sig
        return None

    def any_deliverable(self, blocked_mask: int) -> bool:
        return bool(self.bits & ~blocked_mask)

    def clear(self) -> None:
        self.bits = 0
        self.queue.clear()

    def copy(self) -> "PendingSignals":
        p = PendingSignals()
        p.bits = self.bits
        p.queue = list(self.queue)
        return p
