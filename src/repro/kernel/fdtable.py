"""File descriptors: open-file descriptions, the per-process fd table, pipes.

Follows the Linux split: an :class:`OpenFile` is the *open file description*
(shared by ``dup`` and inherited by ``fork``); the :class:`FDTable` maps
small integers to descriptions plus the per-fd ``CLOEXEC`` flag.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from .errno import (
    EAGAIN, EBADF, EINVAL, EISDIR, ENOTDIR, EPIPE, ESPIPE, KernelError,
)
from .eventpoll import (
    EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, WaitQueue,
)
from .inotify import IN_CLOSE_NOWRITE, IN_CLOSE_WRITE, fsnotify_content
from .vfs import (
    Inode, O_ACCMODE, O_APPEND, O_NONBLOCK, O_RDONLY, O_RDWR, O_WRONLY, VFS,
)

PIPE_BUF_CAPACITY = 65536

# lseek whence
SEEK_SET, SEEK_CUR, SEEK_END = 0, 1, 2

# fcntl commands
F_DUPFD = 0
F_GETFD = 1
F_SETFD = 2
F_GETFL = 3
F_SETFL = 4
F_DUPFD_CLOEXEC = 1030
FD_CLOEXEC = 1


class Pipe:
    """A unidirectional byte channel with bounded capacity."""

    def __init__(self, capacity: int = PIPE_BUF_CAPACITY):
        self.buf = bytearray()
        self.capacity = capacity
        self.readers = 0
        self.writers = 0
        self.cond = threading.Condition()
        # shared readiness queue for both ends (see kernel/eventpoll.py)
        self.wq = WaitQueue()

    def readable(self) -> bool:
        return bool(self.buf) or self.writers == 0

    def writable(self) -> bool:
        return len(self.buf) < self.capacity or self.readers == 0


class OpenFile:
    """An open file description."""

    KIND_REG = "reg"
    KIND_DIR = "dir"
    KIND_CHR = "chr"
    KIND_PIPE_R = "pipe_r"
    KIND_PIPE_W = "pipe_w"
    KIND_SOCK = "sock"
    KIND_EVENTFD = "eventfd"
    KIND_TIMERFD = "timerfd"
    KIND_EPOLL = "epoll"
    KIND_URING = "uring"
    KIND_INOTIFY = "inotify"
    KIND_SIGNALFD = "signalfd"
    KIND_TRACE = "trace"
    KIND_PERF = "perf"

    def __init__(self, kind: str, flags: int, inode: Optional[Inode] = None,
                 pipe: Optional[Pipe] = None, sock=None, path: str = "",
                 obj=None):
        self.kind = kind
        self.flags = flags
        self.inode = inode
        self.pipe = pipe
        self.sock = sock
        self.obj = obj  # EventFD / TimerFD / EventPoll instance
        self.path = path
        self.offset = 0
        self.refcount = 0
        self.closed = False  # last reference released (epoll auto-detach)
        self._dir_snapshot = None
        if kind == self.KIND_PIPE_R:
            pipe.readers += 1
        elif kind == self.KIND_PIPE_W:
            pipe.writers += 1
        # Snapshot procfs content at open time, like reading /proc does.
        self._proc_content: Optional[bytes] = None

    # ---- refcounting (dup/fork share descriptions) ----

    def incref(self) -> "OpenFile":
        self.refcount += 1
        return self

    def decref(self) -> None:
        self.refcount -= 1
        if self.refcount <= 0:
            self._release()

    def _release(self) -> None:
        self.closed = True
        if self.kind == self.KIND_REG and self.inode is not None:
            # the fsnotify close hook: tail -F style watchers key on
            # IN_CLOSE_WRITE to know a writer finished its update
            fsnotify_content(self.inode,
                             IN_CLOSE_WRITE if self.writable_mode
                             else IN_CLOSE_NOWRITE)
        if self.kind == self.KIND_PIPE_R:
            with self.pipe.cond:
                self.pipe.readers -= 1
                self.pipe.cond.notify_all()
            self.pipe.wq.wake(EPOLLOUT | EPOLLERR)
        elif self.kind == self.KIND_PIPE_W:
            with self.pipe.cond:
                self.pipe.writers -= 1
                self.pipe.cond.notify_all()
            self.pipe.wq.wake(EPOLLIN | EPOLLHUP)
        elif self.kind == self.KIND_SOCK and self.sock is not None:
            self.sock.close()
        elif self.obj is not None:
            self.obj.close()

    # ---- access-mode checks ----

    @property
    def readable_mode(self) -> bool:
        if self.kind == self.KIND_SOCK:
            return True
        return (self.flags & O_ACCMODE) in (O_RDONLY, O_RDWR) or \
            self.kind == self.KIND_PIPE_R

    @property
    def writable_mode(self) -> bool:
        if self.kind == self.KIND_SOCK:
            return True
        return (self.flags & O_ACCMODE) in (O_WRONLY, O_RDWR) or \
            self.kind == self.KIND_PIPE_W

    @property
    def nonblocking(self) -> bool:
        return bool(self.flags & O_NONBLOCK)

    # ---- I/O ----

    def read(self, length: int) -> bytes:
        """Non-blocking read step; pipes raise EAGAIN when empty (the caller
        in the kernel loops with the blocking machinery)."""
        if self.kind == self.KIND_REG:
            if self.inode is not None and self.inode.generator is None \
                    and self.inode.mapping is not None:
                self.inode.mapping.ensure_resident(self.offset, length)
            data = self._reg_content()
            out = bytes(data[self.offset : self.offset + length])
            self.offset += len(out)
            return out
        if self.kind == self.KIND_CHR:
            return self.inode.device.read(length)
        if self.kind == self.KIND_PIPE_R:
            pipe = self.pipe
            with pipe.cond:
                if pipe.buf:
                    out = bytes(pipe.buf[:length])
                    del pipe.buf[:length]
                    pipe.cond.notify_all()
                    return out
                if pipe.writers == 0:
                    return b""
                raise KernelError(EAGAIN, "pipe empty")
        if self.kind == self.KIND_SOCK:
            return self.sock.recv_step(length)
        if self.kind in (self.KIND_EVENTFD, self.KIND_TIMERFD):
            if length < 8:
                raise KernelError(EINVAL, "buffer smaller than 8 bytes")
            return self.obj.read_step().to_bytes(8, "little")
        if self.kind in (self.KIND_INOTIFY, self.KIND_SIGNALFD,
                         self.KIND_TRACE, self.KIND_PERF):
            # wire-format records (inotify_event / signalfd_siginfo /
            # trace_pipe trace records / perf sample records)
            return self.obj.read_step(length)
        if self.kind == self.KIND_DIR:
            raise KernelError(EISDIR)
        raise KernelError(EBADF, f"read on {self.kind}")

    def pread(self, length: int, offset: int) -> bytes:
        if self.kind != self.KIND_REG:
            raise KernelError(ESPIPE)
        if self.inode is not None and self.inode.generator is None \
                and self.inode.mapping is not None:
            self.inode.mapping.ensure_resident(offset, length)
        data = self._reg_content()
        return bytes(data[offset : offset + length])

    def write(self, buf: bytes) -> int:
        if self.kind == self.KIND_REG:
            if self.flags & O_APPEND:
                self.offset = self.inode.size
            n = self.inode.write_at(self.offset, buf)
            self.offset += n
            return n
        if self.kind == self.KIND_CHR:
            return self.inode.device.write(bytes(buf))
        if self.kind == self.KIND_PIPE_W:
            pipe = self.pipe
            with pipe.cond:
                if pipe.readers == 0:
                    raise KernelError(EPIPE, "no readers")
                space = pipe.capacity - len(pipe.buf)
                if space <= 0:
                    raise KernelError(EAGAIN, "pipe full")
                chunk = bytes(buf[:space])
                pipe.buf.extend(chunk)
                pipe.cond.notify_all()
                return len(chunk)
        if self.kind == self.KIND_SOCK:
            return self.sock.send_step(bytes(buf))
        if self.kind == self.KIND_EVENTFD:
            data = bytes(buf)
            if len(data) < 8:
                raise KernelError(EINVAL, "eventfd write needs 8 bytes")
            self.obj.write_step(int.from_bytes(data[:8], "little"))
            return 8
        raise KernelError(EBADF, f"write on {self.kind}")

    def pwrite(self, buf: bytes, offset: int) -> int:
        if self.kind != self.KIND_REG:
            raise KernelError(ESPIPE)
        return self.inode.write_at(offset, buf)

    def seek(self, offset: int, whence: int) -> int:
        if self.kind not in (self.KIND_REG, self.KIND_DIR):
            raise KernelError(ESPIPE)
        size = len(self._reg_content()) if self.kind == self.KIND_REG else 0
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = self.offset + offset
        elif whence == SEEK_END:
            new = size + offset
        else:
            raise KernelError(EINVAL, f"whence {whence}")
        if new < 0:
            raise KernelError(EINVAL, "negative offset")
        self.offset = new
        return new

    def _reg_content(self):
        if self.inode.generator is not None:  # procfs
            if self._proc_content is None:
                self._proc_content = self.inode.generator(None)
            return self._proc_content
        return self.inode.data

    def set_proc_content(self, content: bytes) -> None:
        self._proc_content = content

    # ---- poll readiness ----

    def poll_events(self) -> int:
        """Current EPOLL*/POLL* readiness mask, including HUP/ERR."""
        if self.kind == self.KIND_REG or self.kind == self.KIND_CHR:
            return EPOLLIN | EPOLLOUT
        if self.kind == self.KIND_PIPE_R:
            mask = EPOLLIN if self.pipe.buf else 0
            if self.pipe.writers == 0:
                mask |= EPOLLHUP | (EPOLLIN if not self.pipe.buf else 0)
            return mask
        if self.kind == self.KIND_PIPE_W:
            mask = EPOLLOUT if len(self.pipe.buf) < self.pipe.capacity else 0
            if self.pipe.readers == 0:
                mask |= EPOLLERR
            return mask
        if self.kind == self.KIND_SOCK:
            return self.sock.poll_events()
        if self.obj is not None:
            return self.obj.poll_events()
        return 0

    def poll(self) -> Tuple[bool, bool]:
        """(readable, writable) now."""
        mask = self.poll_events()
        return bool(mask & (EPOLLIN | EPOLLHUP)), bool(mask & EPOLLOUT)

    def wait_queue(self):
        """The readiness waitqueue backing this description, if any."""
        if self.kind in (self.KIND_PIPE_R, self.KIND_PIPE_W):
            return self.pipe.wq
        if self.kind == self.KIND_SOCK:
            return self.sock.wq
        if self.obj is not None:
            return self.obj.wq
        return None


class FDTable:
    """Per-process (or shared, with CLONE_FILES) descriptor table."""

    def __init__(self, max_fds: int = 1024):
        self.entries: Dict[int, Tuple[OpenFile, bool]] = {}
        self.max_fds = max_fds

    def _lowest_free(self, start: int = 0) -> int:
        fd = start
        while fd in self.entries:
            fd += 1
        if fd >= self.max_fds:
            raise KernelError(EBADF, "fd table full")
        return fd

    def install(self, file: OpenFile, cloexec: bool = False,
                lowest: int = 0) -> int:
        fd = self._lowest_free(lowest)
        self.entries[fd] = (file.incref(), cloexec)
        return fd

    def install_at(self, fd: int, file: OpenFile, cloexec: bool = False) -> int:
        if fd < 0 or fd >= self.max_fds:
            raise KernelError(EBADF, str(fd))
        old = self.entries.get(fd)
        self.entries[fd] = (file.incref(), cloexec)
        if old is not None:
            old[0].decref()
        return fd

    def get(self, fd: int) -> OpenFile:
        entry = self.entries.get(fd)
        if entry is None:
            raise KernelError(EBADF, str(fd))
        return entry[0]

    def close(self, fd: int) -> None:
        entry = self.entries.pop(fd, None)
        if entry is None:
            raise KernelError(EBADF, str(fd))
        entry[0].decref()

    def dup(self, fd: int, lowest: int = 0, cloexec: bool = False) -> int:
        return self.install(self.get(fd), cloexec, lowest)

    def dup2(self, oldfd: int, newfd: int, cloexec: bool = False) -> int:
        file = self.get(oldfd)
        if oldfd == newfd:
            return newfd
        return self.install_at(newfd, file, cloexec)

    def get_cloexec(self, fd: int) -> bool:
        entry = self.entries.get(fd)
        if entry is None:
            raise KernelError(EBADF, str(fd))
        return entry[1]

    def set_cloexec(self, fd: int, value: bool) -> None:
        entry = self.entries.get(fd)
        if entry is None:
            raise KernelError(EBADF, str(fd))
        self.entries[fd] = (entry[0], value)

    def close_on_exec(self) -> None:
        for fd in [fd for fd, (_, ce) in self.entries.items() if ce]:
            self.close(fd)

    def fork_copy(self) -> "FDTable":
        t = FDTable(self.max_fds)
        for fd, (file, ce) in self.entries.items():
            t.entries[fd] = (file.incref(), ce)
        return t

    def close_all(self) -> None:
        for fd in list(self.entries):
            self.close(fd)

    def fds(self):
        return sorted(self.entries)
