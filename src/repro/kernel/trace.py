"""Kernel observability: tracepoints, the trace ring, counters, histograms.

The ftrace-shaped tracing core behind ``/proc/trace`` and
``/proc/trace_pipe``.  Three cooperating pieces:

* :class:`CounterRegistry` — the single home for every kernel event
  counter.  Subsystems that used to keep ad-hoc tallies (uring CQ
  overflows, WAN datagram loss, epoll wake coalescing) increment named
  counters here instead, so ``/proc`` files and
  :mod:`repro.metrics.breakdown` report from one source of truth.

* :class:`TraceBuffer` — a bounded ring of fixed-format
  :class:`TraceEvent` records.  Overflow follows the inotify queue
  discipline: the buffer never holds more than ``capacity`` events plus
  **one** drop marker whose ``arg`` carries the cumulative count of
  events it swallowed.  The buffer is an epollable object (``wq`` /
  ``poll_events`` / ``read_step``), so a guest tails ``/proc/trace_pipe``
  through the same readiness machinery the tracepoints instrument.

* :class:`KernelTrace` — the per-kernel facade: the tracepoint registry
  and mask, the deterministic trace clock, per-syscall log2-bucket
  latency histograms (service vs runnable-wait), and the control-command
  parser behind ``/proc/trace_ctl``.

Timestamps come from a per-instance *logical* clock (fixed epoch + 1 µs
per event), like the VFS inode clock: wall-clock stamps would differ
between runs and break the determinism-rerun guarantee for exact-record
assertions.

Wire format — one record is exactly :data:`TRACE_RECORD_SIZE` (40)
bytes, little-endian ``<QHHiq16s``::

    u64 ts_ns     logical timestamp
    u16 id        tracepoint id (TRACEPOINTS index; 0xFFFF = drop marker)
    u16 flags     bit 0 set on the drop marker
    i32 pid       originating task (0 when anonymous)
    i64 arg       point-specific value (errno, byte count, event mask...)
    c16 info      NUL-padded label (syscall name, backend kind, ...)

Guests parse the stream by slicing every 40 bytes; hosts use
:func:`decode_records`.
"""

from __future__ import annotations

import itertools
import struct
import threading
from collections import defaultdict, deque
from typing import Callable, Deque, Dict, List, NamedTuple, Optional

from .errno import EAGAIN, EINVAL, KernelError
from .eventpoll import (
    EPOLLIN, WaitQueue, add_wake_hook, remove_wake_hook,
)

# ---- the tracepoint registry ----------------------------------------------

TRACEPOINTS = (
    "sched_switch",       # a task was granted a CPU slot (arg: wait ns)
    "sched_wakeup",       # a blocked task became runnable (arg: vruntime)
    "sched_preempt",      # a slot was taken away (arg: ns it ran)
    "syscall_enter",      # info: syscall name
    "syscall_exit",       # info: syscall name, arg: -errno (0 on success)
    "wq_wake",            # a readiness waitqueue fired (arg: event mask)
    "net_deliver",        # payload committed to the wire (arg: bytes)
    "net_drop",           # impairment ate a datagram (arg: bytes)
    "uring_submit",       # SQE batch handed over (arg: batch size)
    "uring_complete",     # one CQE posted (arg: res)
    "uring_overflow",     # CQ full, completion backlogged
    "inotify_enqueue",    # fsnotify record queued (arg: mask, info: name)
    "inotify_overflow",   # inotify queue full, event dropped
    # ids are append-only: the two SMP points land after the originals
    "sched_migrate",      # task re-placed on another CPU (arg: dest cpu)
    "sched_steal",        # idle CPU pulled queued work (arg: dest cpu)
    # block-layer points (ids 15-17)
    "block_submit",       # block request issued (arg: block, info: r/w)
    "block_complete",     # accrued device time settled (arg: ns charged)
    "writeback",          # a flusher pass committed (arg: pages written)
    # zero-crossing uring points (ids 18-21)
    "uring_multishot",    # multishot op posted a MORE CQE (arg: res)
    "uring_register",     # buffer table registered (arg: slot count)
    "uring_sqpoll_park",  # SQPOLL poller idled out, NEED_WAKEUP raised
    "uring_sqpoll_wake",  # IORING_ENTER_SQ_WAKEUP revived the poller
)

TRACEPOINT_IDS: Dict[str, int] = {n: i for i, n in enumerate(TRACEPOINTS)}

# record layout (see module docstring)
_RECORD = struct.Struct("<QHHiq16s")
TRACE_RECORD_SIZE = _RECORD.size          # 40
TRACE_DROP_ID = 0xFFFF                    # the drop marker's pseudo-id
TRACE_AUX_ID = 0xFFFE                     # typed-payload continuation
TRACE_FLAG_DROP = 0x1
TRACE_FLAG_AUX = 0x2

# ---- typed argument payloads (perf-style events) --------------------------
#
# A tracepoint with a schema can carry structured arguments beyond the
# 16-byte info field: the payload is struct-packed and emitted as AUX
# continuation records right behind the parent — same timestamp, id
# TRACE_AUX_ID, flags TRACE_FLAG_AUX, the parent's point id in the pid
# field, `(chunk_seq << 32) | chunk_bytes` in arg, and up to 16 payload
# bytes per chunk in info.  Old 40-byte readers keep working: every
# record is still exactly 40 bytes and AUX records never set the drop
# bit.  Payload emission is opt-in (`payload=on` in trace_ctl; default
# off) so exact-record captures stay byte-identical.  The schemas are
# self-describing via /proc/trace_format (see KernelTrace.format_text).

TRACE_SCHEMAS: Dict[str, tuple] = {
    "sched_switch": (("wait_ns", "q"), ("vruntime_ns", "q"),
                     ("nice", "i"), ("cpu", "i")),
    "sched_wakeup": (("vruntime_ns", "q"), ("cpu", "i")),
    "sched_preempt": (("ran_ns", "q"), ("vruntime_ns", "q")),
    "syscall_exit": (("errno", "i"), ("service_ns", "q"),
                     ("wait_ns", "q")),
    "net_deliver": (("bytes", "q"),),
    "block_submit": (("block", "q"), ("write", "i")),
}

_SCHEMA_STRUCTS: Dict[str, struct.Struct] = {
    point: struct.Struct("<" + "".join(fmt for _, fmt in fields))
    for point, fields in TRACE_SCHEMAS.items()
}

# the trace clock: fixed epoch + 1 µs per event, per KernelTrace instance
# (separate from the VFS inode clock so tracing never perturbs stat-shaped
# determinism, and two kernels in one process don't interleave stamps)
TRACE_EPOCH_NS = 1_704_067_200 * 10**9    # 2024-01-01T00:00:00Z

TRACE_DEFAULT_CAPACITY = 4096

# log2 histogram geometry: bucket i counts latencies in [2^(i-1), 2^i) ns
HIST_BUCKETS = 64


def hist_bucket(ns: int) -> int:
    """The log2 bucket index for a latency of ``ns`` nanoseconds."""
    if ns <= 0:
        return 0
    return min(ns.bit_length(), HIST_BUCKETS - 1)


class CounterRegistry:
    """Named monotonic event counters (the one source of truth).

    Increments are single dict operations, atomic under the GIL — the
    same discipline the readiness layer relies on — so subsystems call
    :meth:`inc` from any thread without extra locking.
    """

    __slots__ = ("_counts",)

    def __init__(self):
        self._counts: Dict[str, int] = defaultdict(int)

    def inc(self, name: str, n: int = 1) -> None:
        self._counts[name] += n

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """All nonzero counters, sorted by name."""
        return {k: v for k, v in sorted(self._counts.items()) if v}

    def clear(self) -> None:
        self._counts.clear()


class TraceEvent:
    """One ring-buffer record (pre-wire-format)."""

    __slots__ = ("ts_ns", "id", "flags", "pid", "arg", "info")

    def __init__(self, ts_ns: int, id_: int, flags: int, pid: int,
                 arg: int, info: str = ""):
        self.ts_ns = ts_ns
        self.id = id_
        self.flags = flags
        self.pid = pid
        self.arg = arg
        self.info = info

    def encode(self) -> bytes:
        info = self.info if isinstance(self.info, bytes) \
            else self.info.encode()
        return _RECORD.pack(self.ts_ns, self.id, self.flags, self.pid,
                            self.arg, info[:16])

    def __repr__(self) -> str:
        name = TRACEPOINTS[self.id] if self.id < len(TRACEPOINTS) \
            else f"id{self.id:#x}"
        return (f"TraceEvent({name}, pid={self.pid}, arg={self.arg}, "
                f"info={self.info!r})")


class TraceRecord(NamedTuple):
    """One decoded wire record."""

    ts_ns: int
    point: str
    flags: int
    pid: int
    arg: int
    info: str

    @property
    def is_drop_marker(self) -> bool:
        return bool(self.flags & TRACE_FLAG_DROP)


def decode_records(data: bytes) -> List[TraceRecord]:
    """Parse trace_pipe wire bytes back into :class:`TraceRecord` rows."""
    out: List[TraceRecord] = []
    for off in range(0, len(data) - TRACE_RECORD_SIZE + 1,
                     TRACE_RECORD_SIZE):
        ts, id_, flags, pid, arg, info = _RECORD.unpack_from(data, off)
        if id_ < len(TRACEPOINTS):
            point = TRACEPOINTS[id_]
        else:
            point = "aux" if id_ == TRACE_AUX_ID else "drop"
        out.append(TraceRecord(ts, point, flags, pid, arg,
                               info.split(b"\x00", 1)[0].decode(
                                   errors="replace")))
    return out


class TypedTraceRecord(NamedTuple):
    """A decoded record with its stitched typed payload (or None)."""

    ts_ns: int
    point: str
    flags: int
    pid: int
    arg: int
    info: str
    payload: Optional[dict]

    @property
    def is_drop_marker(self) -> bool:
        return bool(self.flags & TRACE_FLAG_DROP)


def decode_typed_records(data: bytes) -> List["TypedTraceRecord"]:
    """Like :func:`decode_records`, but AUX continuation records are
    stitched back onto their parent as a decoded ``payload`` dict.

    AUX chunks ride directly behind the parent with the same timestamp
    and the parent's point id in their pid field; an incomplete payload
    (ring overflow swallowed a chunk) decodes to ``payload=None``.  AUX
    records never appear as rows of their own.
    """
    out: List[TypedTraceRecord] = []
    chunks: Dict[int, bytearray] = {}  # out-index -> payload bytes so far
    for off in range(0, len(data) - TRACE_RECORD_SIZE + 1,
                     TRACE_RECORD_SIZE):
        ts, id_, flags, pid, arg, info = _RECORD.unpack_from(data, off)
        if id_ == TRACE_AUX_ID and flags & TRACE_FLAG_AUX:
            # pid carries the parent's point id, arg the chunk length
            if out and out[-1].ts_ns == ts and pid < len(TRACEPOINTS) \
                    and out[-1].point == TRACEPOINTS[pid]:
                nbytes = arg & 0xFFFFFFFF
                chunks.setdefault(len(out) - 1,
                                  bytearray()).extend(info[:nbytes])
            continue
        if id_ < len(TRACEPOINTS):
            point = TRACEPOINTS[id_]
        else:
            point = "drop"
        out.append(TypedTraceRecord(
            ts, point, flags, pid, arg,
            info.split(b"\x00", 1)[0].decode(errors="replace"), None))
    for idx, buf in chunks.items():
        rec = out[idx]
        codec = _SCHEMA_STRUCTS.get(rec.point)
        if codec is None or len(buf) != codec.size:
            continue
        values = codec.unpack(bytes(buf))
        payload = {name: value for (name, _), value
                   in zip(TRACE_SCHEMAS[rec.point], values)}
        out[idx] = rec._replace(payload=payload)
    return out


class TraceBuffer:
    """The bounded trace ring behind ``/proc/trace_pipe``.

    Overflow discipline (the inotify queue model): at most ``capacity``
    events plus one drop marker live in the queue.  The marker's ``arg``
    is updated in place with the number of events it swallowed, so a
    reader that drains late still learns exactly how much it missed.

    The buffer is the epollable object behind the trace_pipe fd:
    ``read_step`` drains whole 40-byte records (EAGAIN when empty, like
    the inotify fd), ``poll_events``/``wq`` feed the readiness layer.
    ``close`` is deliberately a no-op — the ring is kernel-global and
    outlives any one open description of ``/proc/trace_pipe``.
    """

    def __init__(self, capacity: int = TRACE_DEFAULT_CAPACITY,
                 counters: Optional[CounterRegistry] = None):
        if capacity <= 0:
            raise KernelError(EINVAL, "trace buffer capacity must be > 0")
        self.capacity = capacity
        self.counters = counters
        self._q: Deque[TraceEvent] = deque()
        self._marker: Optional[TraceEvent] = None
        self._lock = threading.Lock()
        self.dropped = 0          # events ever lost to overflow
        self.total = 0            # events ever pushed (kept or dropped)
        self.wq = WaitQueue()

    def push(self, ev: TraceEvent) -> None:
        with self._lock:
            self.total += 1
            if len(self._q) - (1 if self._marker is not None else 0) \
                    >= self.capacity:
                self.dropped += 1
                if self.counters is not None:
                    self.counters.inc("trace.dropped")
                if self._marker is not None:
                    self._marker.arg += 1  # coalesce into the one marker
                    return
                # the bound holds: capacity events + one marker, wherever
                # a partial drain left it in the queue
                self._marker = TraceEvent(ev.ts_ns, TRACE_DROP_ID,
                                          TRACE_FLAG_DROP, 0, 1, "overflow")
                self._q.append(self._marker)
            else:
                self._q.append(ev)
        self.wq.wake(EPOLLIN)

    # ---- fd surface (trace_pipe) ----

    def read_step(self, length: int) -> bytes:
        """Drain whole records into ``length`` bytes; EAGAIN when empty."""
        with self._lock:
            if not self._q:
                raise KernelError(EAGAIN, "trace buffer empty")
            if length < TRACE_RECORD_SIZE:
                raise KernelError(EINVAL, "buffer too small for a record")
            out = bytearray()
            while self._q and len(out) + TRACE_RECORD_SIZE <= length:
                ev = self._q.popleft()
                if ev is self._marker:
                    self._marker = None
                out += ev.encode()
            return bytes(out)

    def poll_events(self) -> int:
        return EPOLLIN if self._q else 0

    def close(self) -> None:
        pass  # shared ring: closing one trace_pipe fd must not clear it

    # ---- inspection (tests, /proc/trace) ----

    def __len__(self) -> int:
        return len(self._q)

    def events(self) -> List[TraceEvent]:
        with self._lock:
            return list(self._q)

    def clear(self) -> None:
        with self._lock:
            self._q.clear()
            self._marker = None


class KernelTrace:
    """Per-kernel observability state: tracepoints, counters, histograms.

    Constructed unconditionally by :class:`~repro.kernel.kernel.Kernel`
    (unless ablated with ``trace="off"``); tracing starts *disabled* —
    :meth:`emit` is then two attribute loads and a set test, the
    compiled-in-but-off cost the overhead benchmark bounds.  The
    latency histograms are always on: one log2 bucket increment per
    syscall, cheap enough to never gate.
    """

    def __init__(self, capacity: int = TRACE_DEFAULT_CAPACITY):
        self.counters = CounterRegistry()
        self.buffer = TraceBuffer(capacity, self.counters)
        self.enabled = False
        self.mask = set(TRACEPOINTS)
        self._ticks = itertools.count(1)
        # syscall name -> 64 log2 buckets, for each latency dimension
        self.service_hist: Dict[str, List[int]] = {}
        self.wait_hist: Dict[str, List[int]] = {}
        # re-entrancy guard: a push wakes the ring's waitqueue, and the
        # wq_wake tracepoint hooks every wake — without the guard that
        # wake would trace itself forever
        self._local = threading.local()
        self._wq_hook: Optional[Callable[[int], None]] = None
        # typed-payload emission (perf-style events): opt-in so exact
        # 40-byte record captures stay byte-identical by default
        self.payloads = False
        # perf counting events attach probes here; None (the common
        # case) keeps emit's extra cost to one load + identity test
        self._probes: Optional[Dict[str, List[Callable]]] = None

    # ---- the trace clock ----

    def now_ns(self) -> int:
        return TRACE_EPOCH_NS + next(self._ticks) * 1_000

    # ---- emission ----

    def emit(self, point: str, pid: int = 0, arg: int = 0,
             info: str = "", args: Optional[tuple] = None) -> None:
        """Record one event if tracing is on and ``point`` is unmasked.

        ``args`` are the point's typed arguments (in schema order, see
        :data:`TRACE_SCHEMAS`); they are packed into AUX continuation
        records when payload emission is on, and fed to perf tracepoint
        probes regardless.  Probes fire *before* the enabled/mask
        check: a perf counter bound to a tracepoint counts firings even
        while trace recording is off, like perf vs ftrace on Linux.
        """
        if self._probes is not None:
            fns = self._probes.get(point)
            if fns:
                for fn in fns:
                    fn(pid, arg, info)
        if not self.enabled or point not in self.mask:
            return
        if getattr(self._local, "busy", False):
            return
        self._local.busy = True
        try:
            self.counters.inc("trace.events")
            ts = self.now_ns()
            self.buffer.push(TraceEvent(ts, TRACEPOINT_IDS[point], 0, pid,
                                        arg, info))
            if args is not None and self.payloads:
                codec = _SCHEMA_STRUCTS.get(point)
                if codec is not None:
                    self._push_payload(ts, point, codec.pack(*args))
        finally:
            self._local.busy = False

    def _push_payload(self, ts: int, point: str, payload: bytes) -> None:
        """Emit AUX continuation records carrying a packed payload."""
        point_id = TRACEPOINT_IDS[point]
        for seq, off in enumerate(range(0, len(payload), 16)):
            chunk = payload[off : off + 16]
            self.buffer.push(TraceEvent(
                ts, TRACE_AUX_ID, TRACE_FLAG_AUX, point_id,
                (seq << 32) | len(chunk), chunk))

    # ---- perf probes (kernel/perf.py counting events) ----

    def add_probe(self, point: str, fn: Callable) -> None:
        if point not in TRACEPOINT_IDS:
            raise KernelError(EINVAL, f"unknown tracepoint {point}")
        if self._probes is None:
            self._probes = {}
        self._probes.setdefault(point, []).append(fn)

    def remove_probe(self, point: str, fn: Callable) -> None:
        if self._probes is None:
            return
        fns = self._probes.get(point)
        if fns is None:
            return
        try:
            fns.remove(fn)
        except ValueError:
            return
        if not fns:
            del self._probes[point]
        if not self._probes:
            self._probes = None

    def record_syscall(self, name: str, service_ns: int,
                       wait_ns: int) -> None:
        """Always-on per-syscall latency accounting (service vs wait)."""
        hist = self.service_hist.get(name)
        if hist is None:
            hist = self.service_hist[name] = [0] * HIST_BUCKETS
        hist[hist_bucket(service_ns)] += 1
        if wait_ns > 0:
            whist = self.wait_hist.get(name)
            if whist is None:
                whist = self.wait_hist[name] = [0] * HIST_BUCKETS
            whist[hist_bucket(wait_ns)] += 1

    # ---- control (the /proc/trace_ctl command language) ----

    def enable(self) -> None:
        self.enabled = True
        self._sync_wq_hook()

    def disable(self) -> None:
        self.enabled = False
        self._sync_wq_hook()

    def set_mask(self, points) -> None:
        points = set(points)
        unknown = points - set(TRACEPOINTS)
        if unknown:
            raise KernelError(EINVAL,
                              f"unknown tracepoints: {sorted(unknown)}")
        self.mask = points
        self._sync_wq_hook()

    def _sync_wq_hook(self) -> None:
        """Subscribe to waitqueue wakes only while wq_wake can fire.

        ``WaitQueue.wake`` is the hottest path in the kernel; the global
        hook list must stay empty whenever no tracer wants wake events.
        """
        want = self.enabled and "wq_wake" in self.mask
        if want and self._wq_hook is None:
            def hook(events: int) -> None:
                self.emit("wq_wake", arg=events)
            self._wq_hook = hook
            add_wake_hook(hook)
        elif not want and self._wq_hook is not None:
            remove_wake_hook(self._wq_hook)
            self._wq_hook = None

    def control(self, text: str) -> None:
        """Apply trace_ctl commands (one per line / semicolon)::

            on | off        start / stop tracing
            clear           empty the ring buffer
            mask=all        unmask every tracepoint
            mask=none       mask everything (histograms stay on)
            mask=a,b,c      unmask exactly the listed points
            +name | -name   unmask / mask one point
            payload=on|off  emit typed AUX payload records (default off)
        """
        for chunk in text.replace(";", "\n").splitlines():
            cmd = chunk.strip()
            if not cmd:
                continue
            if cmd == "on":
                self.enable()
            elif cmd == "off":
                self.disable()
            elif cmd == "clear":
                self.buffer.clear()
            elif cmd == "mask=all":
                self.set_mask(TRACEPOINTS)
            elif cmd == "mask=none":
                self.set_mask(())
            elif cmd.startswith("mask="):
                self.set_mask(p.strip() for p in cmd[5:].split(",")
                              if p.strip())
            elif cmd in ("payload=on", "payload=off"):
                self.payloads = cmd.endswith("on")
            elif cmd.startswith("+") or cmd.startswith("-"):
                name = cmd[1:].strip()
                if name not in TRACEPOINT_IDS:
                    raise KernelError(EINVAL, f"unknown tracepoint {name}")
                mask = set(self.mask)
                (mask.add if cmd[0] == "+" else mask.discard)(name)
                self.set_mask(mask)
            else:
                raise KernelError(EINVAL, f"unknown trace command {cmd!r}")

    # ---- reporting ----

    def status_text(self) -> str:
        """The ``/proc/trace`` rendering: state, ring, mask, counters."""
        lines = [
            f"tracing: {'on' if self.enabled else 'off'}",
            f"buffer: {len(self.buffer)}/{self.buffer.capacity} "
            f"(total {self.buffer.total}, dropped {self.buffer.dropped})",
        ]
        for point in TRACEPOINTS:
            flag = "+" if point in self.mask else "-"
            lines.append(f"  {flag}{point}")
        for name, value in self.counters.snapshot().items():
            lines.append(f"{name}: {value}")
        return "\n".join(lines) + "\n"

    def format_text(self) -> str:
        """The ``/proc/trace_format`` rendering: the wire layout plus the
        per-point typed payload schemas, so readers can self-describe."""
        lines = [
            f"record: <QHHiq16s size {TRACE_RECORD_SIZE} "
            "(ts_ns:u64 id:u16 flags:u16 pid:i32 arg:i64 info:16s)",
            f"drop: id {TRACE_DROP_ID:#06x} flag {TRACE_FLAG_DROP:#x}",
            f"aux: id {TRACE_AUX_ID:#06x} flag {TRACE_FLAG_AUX:#x} "
            "(pid=parent point id, arg=(seq<<32)|nbytes, info=chunk)",
            f"payloads: {'on' if self.payloads else 'off'}",
        ]
        for point, schema in sorted(TRACE_SCHEMAS.items()):
            fields = " ".join(f"{name}:{fmt}" for name, fmt in schema)
            lines.append(f"{point}: {fields}")
        return "\n".join(lines) + "\n"

    def close(self) -> None:
        """Detach global hooks (kernels are long-lived; tests call this)."""
        if self._wq_hook is not None:
            remove_wake_hook(self._wq_hook)
            self._wq_hook = None


def create_trace(spec=None) -> Optional[KernelTrace]:
    """Resolve a trace spec: None (default, compiled in but disabled),
    ``"off"`` (ablated entirely — the overhead baseline), ``"on"``
    (enabled from boot), or a :class:`KernelTrace` instance."""
    if spec is None:
        return KernelTrace()
    if isinstance(spec, KernelTrace):
        return spec
    text = str(spec)
    if text in ("off", "none"):
        return None
    if text == "on":
        trace = KernelTrace()
        trace.enable()
        return trace
    raise KernelError(EINVAL, f"bad trace spec {spec!r}")
