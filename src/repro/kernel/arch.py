"""Per-ISA Linux syscall number tables.

Linux officially supports ~500 syscalls, but not all are available on every
ISA (§2 of the paper, Fig. 3): ``aarch64`` and ``riscv64`` use the *generic*
numbering and omit the legacy calls that ``x86_64`` keeps for backward
compatibility (``open``, ``stat``, ``fork``, ``access``...), which modern
code replaces with the ``*at`` variants.

These tables carry a representative, realistically-numbered subset used by:

* Fig. 3 (syscall commonality across ISAs),
* WALI's union-spec construction (name-bound syscalls are the union across
  architectures, §3.5),
* layout translation (per-ISA struct encodings keyed by arch name).
"""

from __future__ import annotations

from typing import Dict, FrozenSet

X86_64 = "x86_64"
AARCH64 = "aarch64"
RISCV64 = "riscv64"
ARCHES = (X86_64, AARCH64, RISCV64)

# --- x86_64 table (legacy-rich) -------------------------------------------

_X86_64: Dict[str, int] = {
    "read": 0, "write": 1, "open": 2, "close": 3, "stat": 4, "fstat": 5,
    "lstat": 6, "poll": 7, "lseek": 8, "mmap": 9, "mprotect": 10,
    "munmap": 11, "brk": 12, "rt_sigaction": 13, "rt_sigprocmask": 14,
    "rt_sigreturn": 15, "ioctl": 16, "pread64": 17, "pwrite64": 18,
    "readv": 19, "writev": 20, "access": 21, "pipe": 22, "select": 23,
    "sched_yield": 24, "mremap": 25, "msync": 26, "mincore": 27,
    "madvise": 28, "dup": 32, "dup2": 33, "pause": 34, "nanosleep": 35,
    "getitimer": 36, "alarm": 37, "setitimer": 38, "getpid": 39,
    "sendfile": 40, "socket": 41, "connect": 42, "accept": 43, "sendto": 44,
    "recvfrom": 45, "sendmsg": 46, "recvmsg": 47, "shutdown": 48, "bind": 49,
    "listen": 50, "getsockname": 51, "getpeername": 52, "socketpair": 53,
    "setsockopt": 54, "getsockopt": 55, "clone": 56, "fork": 57, "vfork": 58,
    "execve": 59, "exit": 60, "wait4": 61, "kill": 62, "uname": 63,
    "fcntl": 72, "flock": 73, "fsync": 74, "fdatasync": 75, "truncate": 76,
    "ftruncate": 77, "getdents": 78, "getcwd": 79, "chdir": 80, "fchdir": 81,
    "rename": 82, "mkdir": 83, "rmdir": 84, "creat": 85, "link": 86,
    "unlink": 87, "symlink": 88, "readlink": 89, "chmod": 90, "fchmod": 91,
    "chown": 92, "fchown": 93, "lchown": 94, "umask": 95,
    "gettimeofday": 96, "getrlimit": 97, "getrusage": 98, "sysinfo": 99,
    "times": 100, "getuid": 102, "syslog": 103, "getgid": 104, "setuid": 105,
    "setgid": 106, "geteuid": 107, "getegid": 108, "setpgid": 109,
    "getppid": 110, "getpgrp": 111, "setsid": 112, "getpgid": 121,
    "getsid": 124, "sigaltstack": 131, "utime": 132, "mknod": 133,
    "statfs": 137, "fstatfs": 138, "getpriority": 140, "setpriority": 141,
    "prctl": 157, "arch_prctl": 158, "setrlimit": 160, "chroot": 161,
    "sync": 162, "gettid": 186, "readahead": 187, "futex": 202,
    "sync_file_range": 277, "syncfs": 306,
    "inotify_init": 253, "inotify_add_watch": 254, "inotify_rm_watch": 255,
    "sched_setaffinity": 203, "sched_getaffinity": 204, "getdents64": 217,
    "set_tid_address": 218, "fadvise64": 221, "clock_settime": 227,
    "clock_gettime": 228, "clock_getres": 229, "clock_nanosleep": 230,
    "exit_group": 231, "epoll_wait": 232, "epoll_ctl": 233, "tgkill": 234,
    "utimes": 235, "openat": 257, "mkdirat": 258, "mknodat": 259,
    "fchownat": 260, "futimesat": 261, "newfstatat": 262, "unlinkat": 263,
    "renameat": 264, "linkat": 265, "symlinkat": 266, "readlinkat": 267,
    "fchmodat": 268, "faccessat": 269, "pselect6": 270, "ppoll": 271,
    "set_robust_list": 273, "utimensat": 280, "epoll_pwait": 281,
    "timerfd_create": 283, "timerfd_settime": 286, "timerfd_gettime": 287,
    "signalfd": 282, "accept4": 288, "signalfd4": 289, "eventfd2": 290,
    "epoll_create1": 291, "dup3": 292,
    "pipe2": 293, "inotify_init1": 294, "perf_event_open": 298,
    "prlimit64": 302, "renameat2": 316,
    "getrandom": 318,
    "memfd_create": 319, "execveat": 322, "statx": 332, "rseq": 334,
    "pidfd_open": 434, "clone3": 435, "faccessat2": 439,
    "io_uring_setup": 425, "io_uring_enter": 426, "io_uring_register": 427,
}

# --- generic table (aarch64 / riscv64) ------------------------------------

_GENERIC: Dict[str, int] = {
    "getcwd": 17, "eventfd2": 19, "epoll_create1": 20, "epoll_ctl": 21,
    "epoll_pwait": 22, "dup": 23, "dup3": 24, "fcntl": 25,
    "inotify_init1": 26, "inotify_add_watch": 27, "inotify_rm_watch": 28,
    "ioctl": 29,
    "flock": 32, "mknodat": 33, "mkdirat": 34, "unlinkat": 35,
    "symlinkat": 36, "linkat": 37, "renameat": 38, "statfs": 43,
    "fstatfs": 44, "truncate": 45, "ftruncate": 46, "faccessat": 48,
    "chdir": 49, "fchdir": 50, "chroot": 51, "fchmod": 52, "fchmodat": 53,
    "fchownat": 54, "fchown": 55, "openat": 56, "close": 57, "pipe2": 59,
    "getdents64": 61, "lseek": 62, "read": 63, "write": 64, "readv": 65,
    "writev": 66, "pread64": 67, "pwrite64": 68, "sendfile": 71,
    "pselect6": 72, "ppoll": 73, "signalfd4": 74, "readlinkat": 78,
    "newfstatat": 79,
    "fstat": 80, "sync": 81, "fsync": 82, "fdatasync": 83,
    "sync_file_range": 84, "syncfs": 267,
    "timerfd_create": 85, "timerfd_settime": 86, "timerfd_gettime": 87,
    "utimensat": 88,
    "exit": 93, "exit_group": 94, "waitid": 95, "set_tid_address": 96,
    "futex": 98, "set_robust_list": 99, "nanosleep": 101, "getitimer": 102,
    "setitimer": 103, "clock_settime": 112, "clock_gettime": 113,
    "clock_getres": 114, "clock_nanosleep": 115, "syslog": 116,
    "sched_setaffinity": 122, "sched_getaffinity": 123, "sched_yield": 124,
    "kill": 129, "tgkill": 131, "sigaltstack": 132, "rt_sigaction": 134,
    "rt_sigprocmask": 135, "rt_sigreturn": 139, "setpriority": 140,
    "getpriority": 141, "setgid": 144, "setuid": 146, "times": 153,
    "setpgid": 154, "getpgid": 155, "getsid": 156, "setsid": 157,
    "uname": 160, "getrlimit": 163, "setrlimit": 164, "getrusage": 165,
    "umask": 166, "prctl": 167, "gettimeofday": 169, "getpid": 172,
    "getppid": 173, "getuid": 174, "geteuid": 175, "getgid": 176,
    "getegid": 177, "gettid": 178, "sysinfo": 179, "socket": 198,
    "socketpair": 199, "bind": 200, "listen": 201, "accept": 202,
    "connect": 203, "getsockname": 204, "getpeername": 205, "sendto": 206,
    "recvfrom": 207, "setsockopt": 208, "getsockopt": 209, "shutdown": 210,
    "sendmsg": 211, "recvmsg": 212, "readahead": 213, "brk": 214,
    "munmap": 215, "mremap": 216, "clone": 220, "execve": 221, "mmap": 222,
    "fadvise64": 223, "mprotect": 226, "msync": 227, "mincore": 232,
    "madvise": 233, "perf_event_open": 241, "accept4": 242, "wait4": 260,
    "prlimit64": 261,
    "renameat2": 276, "getrandom": 278, "memfd_create": 279, "statx": 291,
    "rseq": 293, "pidfd_open": 434, "clone3": 435, "faccessat2": 439,
    "io_uring_setup": 425, "io_uring_enter": 426, "io_uring_register": 427,
}

# riscv64 omits a handful of calls aarch64 kept (it was added to Linux after
# the renameat->renameat2 consolidation).
_RISCV_OMIT = frozenset({"renameat"})

ARCH_SYSCALLS: Dict[str, Dict[str, int]] = {
    X86_64: dict(_X86_64),
    AARCH64: dict(_GENERIC),
    RISCV64: {k: v for k, v in _GENERIC.items() if k not in _RISCV_OMIT},
}


def syscall_names(arch: str) -> FrozenSet[str]:
    return frozenset(ARCH_SYSCALLS[arch])


def union_syscalls() -> FrozenSet[str]:
    """The WALI virtual syscall set: the union across supported ISAs (§3.5)."""
    out = set()
    for table in ARCH_SYSCALLS.values():
        out.update(table)
    return frozenset(out)


def common_syscalls() -> FrozenSet[str]:
    """Syscalls available on every supported ISA."""
    names = [set(t) for t in ARCH_SYSCALLS.values()]
    out = names[0]
    for s in names[1:]:
        out &= s
    return frozenset(out)


def arch_specific(arch: str) -> FrozenSet[str]:
    """Syscalls only reachable on ``arch`` by number (not in the common core)."""
    return syscall_names(arch) - common_syscalls()


def isa_similarity_report() -> Dict[str, dict]:
    """Data behind Fig. 3: per-ISA counts of common vs arch-specific calls."""
    common = common_syscalls()
    report = {}
    for arch in ARCHES:
        names = syscall_names(arch)
        report[arch] = {
            "total": len(names),
            "common": len(names & common),
            "arch_specific": len(names - common),
        }
    return report


# Emulation map (§2): legacy x86-64-only calls expressible via the modern
# generic equivalents — how WALI implements them portably.
LEGACY_EQUIVALENTS: Dict[str, str] = {
    "open": "openat",
    "creat": "openat",
    "stat": "newfstatat",
    "lstat": "newfstatat",
    "access": "faccessat",
    "pipe": "pipe2",
    "dup2": "dup3",
    "fork": "clone",
    "vfork": "clone",
    "getdents": "getdents64",
    "rename": "renameat",
    "mkdir": "mkdirat",
    "rmdir": "unlinkat",
    "link": "linkat",
    "unlink": "unlinkat",
    "symlink": "symlinkat",
    "readlink": "readlinkat",
    "chmod": "fchmodat",
    "chown": "fchownat",
    "lchown": "fchownat",
    "mknod": "mknodat",
    "poll": "ppoll",
    "select": "pselect6",
    "epoll_wait": "epoll_pwait",
    "utime": "utimensat",
    "utimes": "utimensat",
    "futimesat": "utimensat",
    "alarm": "setitimer",
    "pause": "rt_sigsuspend",
    "nice": "setpriority",

    "getpgrp": "getpgid",
    "epoll_create": "epoll_create1",
    "eventfd": "eventfd2",
    "timerfd": "timerfd_create",
    "inotify_init": "inotify_init1",
    "signalfd": "signalfd4",
}
