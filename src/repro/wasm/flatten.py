"""Flattening: structured function bodies → linear code with resolved jumps.

The interpreter executes *flat code*: a list of instruction tuples with
explicit program-counter targets for every branch.  Flattening is also where
**signal-poll safepoints** are inserted (§3.3 of the paper): the scheme
chooses where the engine checks for pending virtual signals.

Safepoint schemes (Table 3 of the paper):

* ``"none"``     — no polling (signals never delivered asynchronously).
* ``"loop"``     — a poll at every loop header, i.e. once per back edge
  (the paper's implementation choice).
* ``"func"``     — a poll at every function entry.
* ``"all"``      — a poll before every instruction (prohibitively slow;
  measured as the ~10x-worse variant in Table 3).

Branch instructions carry ``(target_pc, keep_arity, target_height)`` so the
interpreter can unwind the operand stack exactly as the structured semantics
require.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .module import Function, Module
from .opcodes import OPS
from .types import FuncType, MASK32, MASK64

SAFEPOINT_SCHEMES = ("none", "loop", "func", "all")


@dataclass
class FlatCode:
    """Executable representation of one function."""

    name: str
    functype: FuncType
    local_types: List[str]      # params + declared locals
    ops: List[tuple] = field(default_factory=list)
    loop_headers: List[int] = field(default_factory=list)

    @property
    def n_params(self) -> int:
        return len(self.functype.params)

    @property
    def n_results(self) -> int:
        return len(self.functype.results)


class _Label:
    __slots__ = ("is_loop", "height", "arity", "target", "patches")

    def __init__(self, is_loop: bool, height: int, arity: int, target: int = -1):
        self.is_loop = is_loop
        self.height = height
        self.arity = arity
        self.target = target          # loop header pc (loops only)
        self.patches: List[int] = []  # pcs whose target patches to block end


class _Flattener:
    def __init__(self, module: Module, fn: Function, scheme: str):
        if scheme not in SAFEPOINT_SCHEMES:
            raise ValueError(f"unknown safepoint scheme {scheme!r}")
        self.m = module
        self.fn = fn
        self.scheme = scheme
        ft = module.types[fn.type_idx]
        self.code = FlatCode(
            name=fn.name, functype=ft,
            local_types=list(ft.params) + list(fn.locals))
        self.labels: List[_Label] = [
            _Label(False, 0, len(ft.results))]  # function-level label
        self.height = 0

    # ---- emission ----

    def emit(self, instr: tuple) -> int:
        ops = self.code.ops
        if self.scheme == "all" and instr[0] != "poll":
            ops.append(("poll",))
        ops.append(instr)
        return len(ops) - 1

    def pc(self) -> int:
        return len(self.code.ops)

    # ---- branch helpers ----

    def _branch_info(self, depth: int) -> Tuple[int, int, int]:
        label = self.labels[-1 - depth]
        if label.is_loop:
            return label.target, 0, label.height
        return -1, label.arity, label.height  # -1: patch later

    def _emit_branch(self, opname: str, depth: int, extra=()) -> None:
        label = self.labels[-1 - depth]
        target, arity, height = self._branch_info(depth)
        pc = self.emit((opname, target, arity, height, *extra))
        if target < 0:
            label.patches.append(pc)

    # ---- body walking ----

    def flatten_body(self, body: list) -> None:
        for instr in body:
            terminal = self.flatten_instr(instr)
            if terminal:
                return  # rest of this body list is unreachable

    def flatten_instr(self, instr: tuple) -> bool:
        """Emit flat code for one instruction; True if control never falls
        through (br, return, unreachable, br_table)."""
        name = instr[0]

        if name == "block":
            result, inner = instr[1], instr[2]
            label = _Label(False, self.height, 1 if result else 0)
            self.labels.append(label)
            self.flatten_body(inner)
            self._close_label(label)
            return False

        if name == "loop":
            result, inner = instr[1], instr[2]
            header = self.pc()
            self.code.loop_headers.append(header)
            if self.scheme == "loop":
                self.emit(("poll",))
            label = _Label(True, self.height, 1 if result else 0, target=header)
            self.labels.append(label)
            self.flatten_body(inner)
            self._close_label(label)
            return False

        if name == "if":
            result, then, els = instr[1], instr[2], instr[3] if len(instr) > 3 else []
            self.height -= 1  # condition
            label = _Label(False, self.height, 1 if result else 0)
            if_pc = self.emit(("if_false", -1))
            self.labels.append(label)
            entry_height = self.height
            self.flatten_body(then)
            if els:
                jmp_pc = self.emit(("jump", -1, label.arity, label.height))
                label.patches.append(jmp_pc)
                self.code.ops[if_pc] = ("if_false", self.pc())
                self.height = entry_height
                self.flatten_body(els)
            else:
                label.patches.append(if_pc)  # patched by _close_label
            self._close_label(label, if_pc if not els else None)
            return False

        if name == "br":
            self._emit_branch("jump", instr[1])
            return True

        if name == "br_if":
            self.height -= 1
            self._emit_branch("br_if", instr[1])
            return False

        if name == "br_table":
            self.height -= 1
            targets, default = instr[1], instr[2]
            entries = []
            patch_specs = []  # (slot index in entries, label)
            for depth in list(targets) + [default]:
                label = self.labels[-1 - depth]
                target, arity, height = self._branch_info(depth)
                entries.append((target, arity, height))
                if target < 0:
                    patch_specs.append((len(entries) - 1, label))
            pc = self.emit(("br_table", entries))
            for slot, label in patch_specs:
                label.patches.append((pc, slot))
            return True

        if name == "return":
            self.emit(("ret",))
            return True

        if name == "unreachable":
            self.emit(("unreachable",))
            return True

        if name == "call":
            idx = instr[1]
            ft = self.m.func_type(idx)
            self.height += len(ft.results) - len(ft.params)
            self.emit(("call", idx))
            return False

        if name == "call_indirect":
            type_idx = instr[1]
            ft = self.m.types[type_idx]
            self.height += len(ft.results) - len(ft.params) - 1
            self.emit(("call_indirect", type_idx))
            return False

        if name == "local.get" or name == "global.get":
            self.height += 1
            self.emit((name, instr[1]))
            return False
        if name == "local.set" or name == "global.set":
            self.height -= 1
            self.emit((name, instr[1]))
            return False
        if name == "local.tee":
            self.emit((name, instr[1]))
            return False

        # simple instructions: compute height delta from opcode signature
        op = OPS.get(name)
        if op is None:
            raise ValueError(f"cannot flatten {name!r}")

        if name == "i32.const":
            self.height += 1
            self.emit(("const", instr[1] & MASK32))
            return False
        if name == "i64.const":
            self.height += 1
            self.emit(("const", instr[1] & MASK64))
            return False
        if name == "f64.const":
            self.height += 1
            self.emit(("const", float(instr[1])))
            return False

        if name == "drop":
            self.height -= 1
            self.emit(("drop",))
            return False
        if name == "select":
            self.height -= 2
            self.emit(("select",))
            return False
        if name == "nop":
            return False

        if op.imm == "memarg":
            # fold the static offset into the instruction; drop alignment
            self.height += len(op.pushes) - len(op.pops)
            self.emit((name, instr[2] if len(instr) > 2 else 0))
            return False

        if op.pops is not None:
            self.height += len(op.pushes) - len(op.pops)

        if op.imm == "u32":
            self.emit((name, instr[1]))
        else:
            self.emit((name,))
        return False

    def _close_label(self, label: _Label, pending_if_pc=None) -> None:
        self.labels.pop()
        end_pc = self.pc()
        for patch in label.patches:
            if isinstance(patch, tuple):  # br_table entry
                pc, slot = patch
                entries = self.code.ops[pc][1]
                _, arity, height = entries[slot]
                entries[slot] = (end_pc, arity, height)
            else:
                old = self.code.ops[patch]
                if old[0] == "if_false":
                    self.code.ops[patch] = ("if_false", end_pc)
                else:
                    self.code.ops[patch] = (old[0], end_pc, old[2], old[3], *old[4:])
        # normalise height: after a block, stack is entry height + arity
        self.height = label.height + label.arity

    def run(self) -> FlatCode:
        if self.scheme == "func":
            self.emit(("poll",))
        self.flatten_body(self.fn.body)
        self.emit(("ret",))
        return self.code


def flatten_function(module: Module, fn: Function,
                     scheme: str = "loop") -> FlatCode:
    return _Flattener(module, fn, scheme).run()


def flatten_module(module: Module, scheme: str = "loop") -> List[FlatCode]:
    """Flat code for every *defined* function, in definition order."""
    return [flatten_function(module, fn, scheme) for fn in module.funcs]
