"""Exceptions raised by the WebAssembly engine.

The engine distinguishes three failure classes, mirroring the Wasm spec:

* :class:`ValidationError` — a module failed static validation and must be
  rejected before instantiation.
* :class:`LinkError` — imports could not be resolved at instantiation time
  (wrong name, wrong signature, missing provider).
* :class:`Trap` — a runtime fault inside the sandbox.  Traps terminate the
  computation but never corrupt engine state; WALI relies on this to contain
  guest misbehaviour (§1.1 of the paper).
"""

from __future__ import annotations


class WasmError(Exception):
    """Base class for all engine errors."""


class ValidationError(WasmError):
    """Static validation of a module failed."""


class LinkError(WasmError):
    """Import resolution failed during instantiation."""


class DecodeError(WasmError):
    """A binary module could not be decoded."""


class Trap(WasmError):
    """Runtime trap.  ``kind`` is a stable machine-readable identifier."""

    def __init__(self, kind: str, message: str = ""):
        self.kind = kind
        super().__init__(f"trap: {kind}" + (f" ({message})" if message else ""))


class TrapOutOfBounds(Trap):
    def __init__(self, message: str = ""):
        super().__init__("out-of-bounds-memory-access", message)


class TrapDivByZero(Trap):
    def __init__(self, message: str = ""):
        super().__init__("integer-divide-by-zero", message)


class TrapIntegerOverflow(Trap):
    def __init__(self, message: str = ""):
        super().__init__("integer-overflow", message)


class TrapUnreachable(Trap):
    def __init__(self, message: str = ""):
        super().__init__("unreachable", message)


class TrapIndirectCall(Trap):
    """call_indirect signature mismatch or null/out-of-range table entry.

    This is the trap the paper observes when porting C programs that call
    through incompatible function-pointer types (§4.1, the ``bash`` anecdote).
    """

    def __init__(self, message: str = ""):
        super().__init__("indirect-call-type-mismatch", message)


class TrapStackExhausted(Trap):
    def __init__(self, message: str = ""):
        super().__init__("call-stack-exhausted", message)


class TrapSyscall(Trap):
    """A WALI/WAZI host function refused the call (security interposition)."""

    def __init__(self, message: str = ""):
        super().__init__("syscall-denied", message)


class GuestExit(WasmError):
    """Raised by host code to unwind the machine when the guest exits.

    Not a trap: carries the process exit status, like ``exit_group``.
    """

    def __init__(self, status: int):
        self.status = status & 0xFF
        super().__init__(f"guest exited with status {self.status}")
