"""In-memory representation of a WebAssembly module.

A module is the static artifact: types, imports, function bodies, memory and
table declarations, globals, exports, element and data segments.  Function
bodies are *structured* instruction sequences: plain instructions are tuples
``(opname, *immediates)``, and the block instructions nest explicitly::

    ("block", result_type_or_None, [body...])
    ("loop",  result_type_or_None, [body...])
    ("if",    result_type_or_None, [then...], [else...])

The binary codec (:mod:`repro.wasm.binary`) serialises this representation to
the real wasm binary format and back; the validator and the flattener consume
it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .types import FuncType, GlobalType, Limits, MemoryType, TableType

# import/export kinds
KIND_FUNC = "func"
KIND_TABLE = "table"
KIND_MEMORY = "memory"
KIND_GLOBAL = "global"


@dataclass
class Import:
    module: str
    name: str
    kind: str
    # for funcs: type index; for others: the *Type object
    desc: object


@dataclass
class Export:
    name: str
    kind: str
    index: int


@dataclass
class Function:
    """A defined (non-imported) function."""

    type_idx: int
    locals: List[str] = field(default_factory=list)  # extra locals, after params
    body: List[tuple] = field(default_factory=list)
    name: str = ""  # debug only


@dataclass
class Global:
    type: GlobalType
    init: tuple  # a single const instruction, e.g. ("i32.const", 0)


@dataclass
class ElemSegment:
    table_idx: int
    offset: tuple  # const instruction
    func_idxs: List[int] = field(default_factory=list)


@dataclass
class DataSegment:
    mem_idx: int
    offset: tuple  # const instruction
    data: bytes = b""


@dataclass
class Module:
    types: List[FuncType] = field(default_factory=list)
    imports: List[Import] = field(default_factory=list)
    funcs: List[Function] = field(default_factory=list)
    tables: List[TableType] = field(default_factory=list)
    memories: List[MemoryType] = field(default_factory=list)
    globals: List[Global] = field(default_factory=list)
    exports: List[Export] = field(default_factory=list)
    start: Optional[int] = None
    elems: List[ElemSegment] = field(default_factory=list)
    datas: List[DataSegment] = field(default_factory=list)
    name: str = ""  # debug only

    # ---- index-space helpers (imports precede definitions) ----

    def imported(self, kind: str) -> List[Import]:
        return [im for im in self.imports if im.kind == kind]

    @property
    def num_imported_funcs(self) -> int:
        return sum(1 for im in self.imports if im.kind == KIND_FUNC)

    @property
    def num_imported_globals(self) -> int:
        return sum(1 for im in self.imports if im.kind == KIND_GLOBAL)

    @property
    def num_imported_memories(self) -> int:
        return sum(1 for im in self.imports if im.kind == KIND_MEMORY)

    @property
    def num_imported_tables(self) -> int:
        return sum(1 for im in self.imports if im.kind == KIND_TABLE)

    def func_type(self, func_idx: int) -> FuncType:
        """Signature of function ``func_idx`` in the joint index space."""
        n_imp = self.num_imported_funcs
        if func_idx < n_imp:
            imp = self.imported(KIND_FUNC)[func_idx]
            return self.types[imp.desc]
        return self.types[self.funcs[func_idx - n_imp].type_idx]

    @property
    def num_funcs(self) -> int:
        return self.num_imported_funcs + len(self.funcs)

    def global_type(self, global_idx: int) -> GlobalType:
        n_imp = self.num_imported_globals
        if global_idx < n_imp:
            return self.imported(KIND_GLOBAL)[global_idx].desc
        return self.globals[global_idx - n_imp].type

    @property
    def num_globals(self) -> int:
        return self.num_imported_globals + len(self.globals)

    @property
    def num_memories(self) -> int:
        return self.num_imported_memories + len(self.memories)

    @property
    def num_tables(self) -> int:
        return self.num_imported_tables + len(self.tables)

    def export_map(self) -> dict:
        return {e.name: e for e in self.exports}

    def find_export(self, name: str, kind: str) -> Optional[Export]:
        for e in self.exports:
            if e.name == name and e.kind == kind:
                return e
        return None

    def import_names(self) -> List[Tuple[str, str]]:
        """(module, name) pairs of all imports — the static capability list.

        WALI's security argument leans on this (§3.6): the import section
        enumerates up front every syscall a binary can possibly make.
        """
        return [(im.module, im.name) for im in self.imports]
