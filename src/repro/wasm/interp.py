"""The interpreter: an explicit-state machine over flat code.

Machine state (operand stack + frame list + per-frame program counter) is
plain data.  That single design decision buys the three capabilities WALI
demands of an engine (§3 of the paper):

* **fork** — a running guest can be duplicated by deep-copying machine state
  (used by the 1-to-1 process model's ``fork`` passthrough);
* **safepoints** — the ``poll`` pseudo-instruction is a cheap hook check, and
  the signal-delivery hook can *re-enter* the same machine to run a guest
  signal handler (a nested ``run`` bounded by the current frame depth);
* **suspension** — host code always sees a consistent machine (the pc is
  committed to the frame before any host call).

Values are Python ints in unsigned representation (i32 in ``[0, 2**32)``,
i64 in ``[0, 2**64)``) and Python floats for f64.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .errors import (
    GuestExit, Trap, TrapDivByZero, TrapIndirectCall, TrapIntegerOverflow,
    TrapStackExhausted, TrapUnreachable,
)
from .flatten import FlatCode
from .types import (
    F64, FuncType, I32, I64, MASK32, MASK64, default_value, signed32, signed64,
)

MAX_FRAMES = 2000

# One engine-wide lock serialises guest atomic RMW operations (the threads
# proposal subset used by the guest libc's mutexes).
import threading as _threading

_ATOMIC_LOCK = _threading.Lock()


class HostFunc:
    """An imported function provided by the embedder (e.g. a WALI syscall)."""

    __slots__ = ("functype", "fn", "name")

    def __init__(self, functype: FuncType, fn: Callable, name: str = ""):
        self.functype = functype
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "<host>")

    def __repr__(self):
        return f"<hostfunc {self.name} {self.functype}>"


class WasmFunc:
    """A defined function: flat code plus its signature."""

    __slots__ = ("functype", "code")

    def __init__(self, functype: FuncType, code: FlatCode):
        self.functype = functype
        self.code = code


# --------------------------------------------------------------------------
# numeric helpers
# --------------------------------------------------------------------------

def _idiv_s(a: int, b: int, bits: int) -> int:
    if b == 0:
        raise TrapDivByZero()
    sa = signed32(a) if bits == 32 else signed64(a)
    sb = signed32(b) if bits == 32 else signed64(b)
    if sb == -1 and sa == -(1 << (bits - 1)):
        raise TrapIntegerOverflow("signed division overflow")
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return q & ((1 << bits) - 1)


def _irem_s(a: int, b: int, bits: int) -> int:
    if b == 0:
        raise TrapDivByZero()
    sa = signed32(a) if bits == 32 else signed64(a)
    sb = signed32(b) if bits == 32 else signed64(b)
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return r & ((1 << bits) - 1)


def _clz(x: int, bits: int) -> int:
    return bits - x.bit_length() if x else bits


def _ctz(x: int, bits: int) -> int:
    return (x & -x).bit_length() - 1 if x else bits


def _rotl(x: int, n: int, bits: int) -> int:
    n %= bits
    mask = (1 << bits) - 1
    return ((x << n) | (x >> (bits - n))) & mask


def _trunc(f: float, lo: int, hi: int, mask: int) -> int:
    if f != f:  # NaN
        raise TrapIntegerOverflow("trunc of NaN")
    t = int(f)
    if t < lo or t > hi:
        raise TrapIntegerOverflow("trunc out of range")
    return t & mask


# Simple value ops: name -> fn(stack) mutating the operand stack in place.
def _build_arith():
    A = {}

    def bin32(name, fn):
        def h(s, fn=fn):
            b = s.pop(); a = s.pop()
            s.append(fn(a, b) & MASK32)
        A[f"i32.{name}"] = h

    def cmp32(name, fn):
        def h(s, fn=fn):
            b = s.pop(); a = s.pop()
            s.append(1 if fn(a, b) else 0)
        A[f"i32.{name}"] = h

    def un32(name, fn):
        def h(s, fn=fn):
            s.append(fn(s.pop()) & MASK32)
        A[f"i32.{name}"] = h

    def bin64(name, fn):
        def h(s, fn=fn):
            b = s.pop(); a = s.pop()
            s.append(fn(a, b) & MASK64)
        A[f"i64.{name}"] = h

    def cmp64(name, fn):
        def h(s, fn=fn):
            b = s.pop(); a = s.pop()
            s.append(1 if fn(a, b) else 0)
        A[f"i64.{name}"] = h

    def un64(name, fn):
        def h(s, fn=fn):
            s.append(fn(s.pop()) & MASK64)
        A[f"i64.{name}"] = h

    for bits, bin_, cmp_, un_, sgn in (
        (32, bin32, cmp32, un32, signed32),
        (64, bin64, cmp64, un64, signed64),
    ):
        bin_("add", lambda a, b: a + b)
        bin_("sub", lambda a, b: a - b)
        bin_("mul", lambda a, b: a * b)
        bin_("div_s", lambda a, b, bits=bits: _idiv_s(a, b, bits))
        bin_("rem_s", lambda a, b, bits=bits: _irem_s(a, b, bits))
        bin_("div_u", lambda a, b: _udiv(a, b))
        bin_("rem_u", lambda a, b: _urem(a, b))
        bin_("and", lambda a, b: a & b)
        bin_("or", lambda a, b: a | b)
        bin_("xor", lambda a, b: a ^ b)
        bin_("shl", lambda a, b, bits=bits: a << (b % bits))
        bin_("shr_u", lambda a, b, bits=bits: a >> (b % bits))
        bin_("shr_s", lambda a, b, bits=bits, sgn=sgn: sgn(a) >> (b % bits))
        bin_("rotl", lambda a, b, bits=bits: _rotl(a, b, bits))
        bin_("rotr", lambda a, b, bits=bits: _rotl(a, bits - (b % bits), bits))
        cmp_("eq", lambda a, b: a == b)
        cmp_("ne", lambda a, b: a != b)
        cmp_("lt_u", lambda a, b: a < b)
        cmp_("gt_u", lambda a, b: a > b)
        cmp_("le_u", lambda a, b: a <= b)
        cmp_("ge_u", lambda a, b: a >= b)
        cmp_("lt_s", lambda a, b, sgn=sgn: sgn(a) < sgn(b))
        cmp_("gt_s", lambda a, b, sgn=sgn: sgn(a) > sgn(b))
        cmp_("le_s", lambda a, b, sgn=sgn: sgn(a) <= sgn(b))
        cmp_("ge_s", lambda a, b, sgn=sgn: sgn(a) >= sgn(b))
        un_("clz", lambda x, bits=bits: _clz(x, bits))
        un_("ctz", lambda x, bits=bits: _ctz(x, bits))
        un_("popcnt", lambda x: bin(x).count("1"))

    def h_eqz32(s):
        s.append(1 if s.pop() == 0 else 0)
    A["i32.eqz"] = h_eqz32
    A["i64.eqz"] = h_eqz32

    # f64
    import math

    def binf(name, fn):
        def h(s, fn=fn):
            b = s.pop(); a = s.pop()
            s.append(fn(a, b))
        A[f"f64.{name}"] = h

    def cmpf(name, fn):
        def h(s, fn=fn):
            b = s.pop(); a = s.pop()
            s.append(1 if fn(a, b) else 0)
        A[f"f64.{name}"] = h

    def unf(name, fn):
        def h(s, fn=fn):
            s.append(fn(s.pop()))
        A[f"f64.{name}"] = h

    binf("add", lambda a, b: a + b)
    binf("sub", lambda a, b: a - b)
    binf("mul", lambda a, b: a * b)
    binf("div", lambda a, b: _fdiv(a, b))
    binf("min", min)
    binf("max", max)
    cmpf("eq", lambda a, b: a == b)
    cmpf("ne", lambda a, b: a != b)
    cmpf("lt", lambda a, b: a < b)
    cmpf("gt", lambda a, b: a > b)
    cmpf("le", lambda a, b: a <= b)
    cmpf("ge", lambda a, b: a >= b)
    unf("abs", abs)
    unf("neg", lambda x: -x)
    unf("sqrt", math.sqrt)
    unf("ceil", math.ceil)
    unf("floor", math.floor)
    unf("trunc", math.trunc)
    unf("nearest", round)

    # conversions
    def conv(name, fn):
        def h(s, fn=fn):
            s.append(fn(s.pop()))
        A[name] = h

    conv("i32.wrap_i64", lambda x: x & MASK32)
    conv("i64.extend_i32_s", lambda x: signed32(x) & MASK64)
    conv("i64.extend_i32_u", lambda x: x)
    conv("i32.trunc_f64_s", lambda f: _trunc(f, -(1 << 31), (1 << 31) - 1, MASK32))
    conv("i32.trunc_f64_u", lambda f: _trunc(f, 0, (1 << 32) - 1, MASK32))
    conv("i64.trunc_f64_s", lambda f: _trunc(f, -(1 << 63), (1 << 63) - 1, MASK64))
    conv("i64.trunc_f64_u", lambda f: _trunc(f, 0, (1 << 64) - 1, MASK64))
    conv("f64.convert_i32_s", lambda x: float(signed32(x)))
    conv("f64.convert_i32_u", lambda x: float(x))
    conv("f64.convert_i64_s", lambda x: float(signed64(x)))
    conv("f64.convert_i64_u", lambda x: float(x))
    conv("i32.extend8_s", lambda x: _sext(x, 8, MASK32))
    conv("i32.extend16_s", lambda x: _sext(x, 16, MASK32))
    conv("i64.extend32_s", lambda x: _sext(x, 32, MASK64))
    return A


def _udiv(a: int, b: int) -> int:
    if b == 0:
        raise TrapDivByZero()
    return a // b


def _urem(a: int, b: int) -> int:
    if b == 0:
        raise TrapDivByZero()
    return a % b


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or a != a:
            return float("nan")
        return float("inf") if (a > 0) == (str(b)[0] != "-") else float("-inf")
    return a / b


def _sext(x: int, from_bits: int, mask: int) -> int:
    x &= (1 << from_bits) - 1
    if x & (1 << (from_bits - 1)):
        x -= 1 << from_bits
    return x & mask


ARITH = _build_arith()

# memory access descriptors: name -> (nbytes, signed, result mask or None=f64)
_LOADS = {
    "i32.load": (4, False, MASK32), "i64.load": (8, False, MASK64),
    "i32.load8_s": (1, True, MASK32), "i32.load8_u": (1, False, MASK32),
    "i32.load16_s": (2, True, MASK32), "i32.load16_u": (2, False, MASK32),
    "i64.load8_s": (1, True, MASK64), "i64.load8_u": (1, False, MASK64),
    "i64.load16_s": (2, True, MASK64), "i64.load16_u": (2, False, MASK64),
    "i64.load32_s": (4, True, MASK64), "i64.load32_u": (4, False, MASK64),
}
_STORES = {
    "i32.store": 4, "i64.store": 8, "i32.store8": 1, "i32.store16": 2,
    "i64.store8": 1, "i64.store16": 2, "i64.store32": 4,
}


class Machine:
    """One thread of Wasm execution (the paper's instance-per-thread unit)."""

    def __init__(self, instance):
        self.instance = instance
        self.stack: List = []
        # frame: [code, pc, locals, stack_base]
        self.frames: List[list] = []
        self.poll_hook: Optional[Callable[[], None]] = None
        self.steps = 0
        self.fuel: Optional[int] = None
        self.max_frames = MAX_FRAMES

    # ---- public API ----

    def invoke(self, func, args=()):
        """Call a function (by ``WasmFunc``/``HostFunc`` or index) to
        completion; returns the single result or ``None``."""
        if isinstance(func, int):
            func = self.instance.funcs[func]
        if isinstance(func, HostFunc):
            res = func.fn(*args)
            return res
        depth = len(self.frames)
        self._push_frame(func.code, list(args))
        self.run(depth)
        if func.code.n_results:
            return self.stack.pop()
        return None

    def reenter(self, func, args=()):
        """Host→guest reentrancy (e.g. running a signal handler): identical
        to :meth:`invoke`, named separately for traceability."""
        return self.invoke(func, args)

    def clone(self, new_instance) -> "Machine":
        """Duplicate the machine (fork support).  ``new_instance`` must be a
        clone of this machine's instance (memory copied, code shared)."""
        m = Machine(new_instance)
        m.stack = list(self.stack)
        m.frames = [[f[0], f[1], list(f[2]), f[3]] for f in self.frames]
        m.poll_hook = None  # rebound by the new process
        m.steps = self.steps
        m.fuel = self.fuel
        m.max_frames = self.max_frames
        return m

    # ---- internals ----

    def _push_frame(self, code: FlatCode, args: List) -> None:
        if len(self.frames) >= self.max_frames:
            raise TrapStackExhausted(f"{len(self.frames)} frames")
        locals_ = args
        for t in code.local_types[len(args):]:
            locals_.append(default_value(t))
        self.frames.append([code, 0, locals_, len(self.stack)])

    def run(self, min_depth: int = 0) -> None:
        """Execute until the frame stack drops back to ``min_depth``."""
        stack = self.stack
        frames = self.frames
        inst = self.instance
        arith = ARITH
        loads = _LOADS
        stores = _STORES

        while len(frames) > min_depth:
            frame = frames[-1]
            code = frame[0]
            ops = code.ops
            pc = frame[1]
            locals_ = frame[2]
            mem = inst.memory

            while True:
                op_imm = ops[pc]
                op = op_imm[0]
                pc += 1
                self.steps += 1
                if self.fuel is not None and self.steps > self.fuel:
                    frame[1] = pc - 1
                    raise Trap("fuel-exhausted", f"{self.steps} steps")

                h = arith.get(op)
                if h is not None:
                    h(stack)
                    continue
                if op == "const":
                    stack.append(op_imm[1])
                    continue
                if op == "local.get":
                    stack.append(locals_[op_imm[1]])
                    continue
                if op == "local.set":
                    locals_[op_imm[1]] = stack.pop()
                    continue
                if op == "local.tee":
                    locals_[op_imm[1]] = stack[-1]
                    continue
                if op in loads:
                    nbytes, signed, mask = loads[op]
                    addr = stack.pop() + op_imm[1]
                    if signed:
                        stack.append(mem.load_s(addr, nbytes) & mask)
                    else:
                        stack.append(mem.load_u(addr, nbytes))
                    continue
                if op in stores:
                    val = stack.pop()
                    addr = stack.pop() + op_imm[1]
                    mem.store_int(addr, val, stores[op])
                    continue
                if op == "f64.load":
                    stack.append(mem.load_f64(stack.pop() + op_imm[1]))
                    continue
                if op == "f64.store":
                    val = stack.pop()
                    mem.store_f64(stack.pop() + op_imm[1], val)
                    continue
                if op == "jump":
                    _, target, arity, height, *_ = op_imm
                    base = frame[3]
                    if arity:
                        keep = stack[len(stack) - arity:]
                        del stack[base + height:]
                        stack.extend(keep)
                    else:
                        del stack[base + height:]
                    pc = target
                    continue
                if op == "br_if":
                    if stack.pop():
                        _, target, arity, height, *_ = op_imm
                        base = frame[3]
                        if arity:
                            keep = stack[len(stack) - arity:]
                            del stack[base + height:]
                            stack.extend(keep)
                        else:
                            del stack[base + height:]
                        pc = target
                    continue
                if op == "if_false":
                    if not stack.pop():
                        pc = op_imm[1]
                    continue
                if op == "br_table":
                    entries = op_imm[1]
                    idx = stack.pop()
                    if idx >= len(entries) - 1:
                        idx = len(entries) - 1
                    target, arity, height = entries[idx]
                    base = frame[3]
                    if arity:
                        keep = stack[len(stack) - arity:]
                        del stack[base + height:]
                        stack.extend(keep)
                    else:
                        del stack[base + height:]
                    pc = target
                    continue
                if op == "call":
                    callee = inst.funcs[op_imm[1]]
                    frame[1] = pc
                    if isinstance(callee, HostFunc):
                        self._call_host(callee)
                        mem = inst.memory  # host call may have grown memory
                        continue
                    n = callee.code.n_params
                    args = stack[len(stack) - n:] if n else []
                    if n:
                        del stack[len(stack) - n:]
                    self._push_frame(callee.code, args)
                    break  # re-enter outer loop with the new frame
                if op == "call_indirect":
                    elem_idx = stack.pop()
                    callee = self._resolve_indirect(elem_idx, op_imm[1])
                    frame[1] = pc
                    if isinstance(callee, HostFunc):
                        self._call_host(callee)
                        mem = inst.memory
                        continue
                    n = callee.code.n_params
                    args = stack[len(stack) - n:] if n else []
                    if n:
                        del stack[len(stack) - n:]
                    self._push_frame(callee.code, args)
                    break
                if op == "ret":
                    nres = code.n_results
                    base = frame[3]
                    if nres:
                        result = stack[-1]
                        del stack[base:]
                        stack.append(result)
                    else:
                        del stack[base:]
                    frames.pop()
                    break
                if op == "poll":
                    hook = self.poll_hook
                    if hook is not None:
                        frame[1] = pc
                        hook()
                        mem = inst.memory
                    continue
                if op == "drop":
                    stack.pop()
                    continue
                if op == "select":
                    c = stack.pop()
                    b = stack.pop()
                    a = stack.pop()
                    stack.append(a if c else b)
                    continue
                if op == "i32.atomic.rmw.add":
                    val = stack.pop()
                    addr = stack.pop() + op_imm[1]
                    with _ATOMIC_LOCK:
                        old = mem.load_i32(addr)
                        mem.store_i32(addr, old + val)
                    stack.append(old)
                    continue
                if op == "i32.atomic.rmw.cmpxchg":
                    new = stack.pop()
                    expected = stack.pop()
                    addr = stack.pop() + op_imm[1]
                    with _ATOMIC_LOCK:
                        old = mem.load_i32(addr)
                        if old == expected:
                            mem.store_i32(addr, new)
                    stack.append(old)
                    continue
                if op == "memory.size":
                    stack.append(mem.pages)
                    continue
                if op == "memory.grow":
                    stack.append(mem.grow(stack.pop()) & MASK32)
                    continue
                if op == "memory.copy":
                    n = stack.pop(); src = stack.pop(); dst = stack.pop()
                    mem.copy(dst, src, n)
                    continue
                if op == "memory.fill":
                    n = stack.pop(); val = stack.pop(); dst = stack.pop()
                    mem.fill(dst, val, n)
                    continue
                if op == "global.get":
                    stack.append(inst.globals[op_imm[1]].value)
                    continue
                if op == "global.set":
                    inst.globals[op_imm[1]].value = stack.pop()
                    continue
                if op == "unreachable":
                    frame[1] = pc - 1
                    raise TrapUnreachable(code.name)
                raise Trap("bad-instruction", f"{op!r} in {code.name}")

    def _call_host(self, callee: HostFunc) -> None:
        stack = self.stack
        ft = callee.functype
        n = len(ft.params)
        if n:
            args = stack[len(stack) - n:]
            del stack[len(stack) - n:]
        else:
            args = []
        res = callee.fn(*args)
        if ft.results:
            t = ft.results[0]
            if t == I32:
                stack.append((res or 0) & MASK32)
            elif t == I64:
                stack.append((res or 0) & MASK64)
            else:
                stack.append(float(res or 0.0))
        elif res is not None:
            raise Trap("host-result-mismatch", callee.name)

    def _resolve_indirect(self, elem_idx: int, type_idx: int):
        inst = self.instance
        table = inst.table
        if table is None or elem_idx >= len(table.elems):
            raise TrapIndirectCall(f"table index {elem_idx} out of range")
        callee = table.elems[elem_idx]
        if callee is None:
            raise TrapIndirectCall(f"null table entry {elem_idx}")
        expected = inst.module.types[type_idx]
        if callee.functype != expected:
            raise TrapIndirectCall(
                f"expected {expected}, found {callee.functype}")
        return callee
