"""A small authoring DSL that emits module structures.

This plays the role the paper's LLVM/clang toolchain plays for WALI: guest
code in this repository is produced either directly with this builder or by
the mini-C compiler (:mod:`repro.cc`), which lowers to builder calls.

Example::

    mb = ModuleBuilder("demo")
    mb.add_memory(1)
    f = mb.func("add", params=["i32", "i32"], results=["i32"], export=True)
    f.local_get(0)
    f.local_get(1)
    f.op("i32.add")
    f.end()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional, Sequence

from .module import (
    DataSegment, ElemSegment, Export, Function, Global, Import, Module,
    KIND_FUNC, KIND_GLOBAL, KIND_MEMORY, KIND_TABLE,
)
from .opcodes import OPS, BLOCK_OPS
from .types import (
    FuncType, GlobalType, Limits, MemoryType, TableType, functype,
)


class FuncBuilder:
    """Builds one function body as structured instructions."""

    def __init__(self, module_builder: "ModuleBuilder", func: Function):
        self.mb = module_builder
        self.fn = func
        # stack of instruction lists; innermost block last
        self._bodies: List[list] = [func.body]

    # ---- raw emission ----

    def op(self, name: str, *imm) -> "FuncBuilder":
        if name not in OPS and name not in BLOCK_OPS:
            raise ValueError(f"unknown op {name!r}")
        self._bodies[-1].append((name, *imm))
        return self

    def emit(self, instr: tuple) -> "FuncBuilder":
        self._bodies[-1].append(instr)
        return self

    # ---- locals ----

    def add_local(self, valtype: str) -> int:
        """Declare an extra local; returns its index (after params)."""
        ft = self.mb.module.types[self.fn.type_idx]
        idx = len(ft.params) + len(self.fn.locals)
        self.fn.locals.append(valtype)
        return idx

    # ---- common instruction helpers ----

    def i32_const(self, v: int):
        return self.op("i32.const", int(v))

    def i64_const(self, v: int):
        return self.op("i64.const", int(v))

    def f64_const(self, v: float):
        return self.op("f64.const", float(v))

    def local_get(self, i: int):
        return self.op("local.get", i)

    def local_set(self, i: int):
        return self.op("local.set", i)

    def local_tee(self, i: int):
        return self.op("local.tee", i)

    def global_get(self, i: int):
        return self.op("global.get", i)

    def global_set(self, i: int):
        return self.op("global.set", i)

    def call(self, target) -> "FuncBuilder":
        """Call by function index or by name previously declared."""
        idx = target if isinstance(target, int) else self.mb.func_index(target)
        return self.op("call", idx)

    def call_indirect(self, params: Sequence[str], results: Sequence[str]):
        type_idx = self.mb.type_index(functype(params, results))
        return self.op("call_indirect", type_idx, 0)

    def br(self, depth: int):
        return self.op("br", depth)

    def br_if(self, depth: int):
        return self.op("br_if", depth)

    def ret(self):
        return self.op("return")

    def i32_load(self, offset: int = 0, align: int = 2):
        return self.op("i32.load", align, offset)

    def i32_store(self, offset: int = 0, align: int = 2):
        return self.op("i32.store", align, offset)

    # ---- structured control flow ----

    @contextmanager
    def block(self, result: Optional[str] = None):
        body: list = []
        self._bodies[-1].append(("block", result, body))
        self._bodies.append(body)
        try:
            yield self
        finally:
            self._bodies.pop()

    @contextmanager
    def loop(self, result: Optional[str] = None):
        body: list = []
        self._bodies[-1].append(("loop", result, body))
        self._bodies.append(body)
        try:
            yield self
        finally:
            self._bodies.pop()

    @contextmanager
    def if_(self, result: Optional[str] = None):
        then: list = []
        els: list = []
        self._bodies[-1].append(("if", result, then, els))
        self._bodies.append(then)
        try:
            yield self
        finally:
            self._bodies.pop()

    def else_(self):
        """Switch to the else arm of the innermost ``if`` (use inside if_())."""
        # The innermost body list must be an if's then-arm; find it.
        parent = self._bodies[-2]
        instr = parent[-1]
        if instr[0] != "if" or instr[2] is not self._bodies[-1]:
            raise ValueError("else_ used outside an if_ context")
        self._bodies[-1] = instr[3]
        return self

    def end(self):
        """Finish the function (no-op marker; body lists close via contexts)."""
        if len(self._bodies) != 1:
            raise ValueError("unclosed blocks at function end")
        return self


class ModuleBuilder:
    """Accumulates a :class:`Module`."""

    def __init__(self, name: str = ""):
        self.module = Module(name=name)
        self._func_names: dict = {}
        self._type_cache: dict = {}
        self._imports_done = False

    # ---- types ----

    def type_index(self, ft: FuncType) -> int:
        if ft in self._type_cache:
            return self._type_cache[ft]
        idx = len(self.module.types)
        self.module.types.append(ft)
        self._type_cache[ft] = idx
        return idx

    # ---- imports (must precede defined functions) ----

    def import_func(self, module: str, name: str,
                    params: Sequence[str] = (), results: Sequence[str] = (),
                    local_name: Optional[str] = None) -> int:
        if self.module.funcs:
            raise ValueError("imports must be declared before defined functions")
        ft = functype(params, results)
        idx = self.module.num_imported_funcs
        self.module.imports.append(
            Import(module, name, KIND_FUNC, self.type_index(ft)))
        self._func_names[local_name or name] = idx
        return idx

    def import_memory(self, module: str, name: str, min_pages: int,
                      max_pages=None) -> int:
        self.module.imports.append(Import(
            module, name, KIND_MEMORY, MemoryType(Limits(min_pages, max_pages))))
        return self.module.num_imported_memories - 1

    # ---- definitions ----

    def func(self, name: str, params: Sequence[str] = (),
             results: Sequence[str] = (), export: bool = False) -> FuncBuilder:
        ft = functype(params, results)
        fn = Function(type_idx=self.type_index(ft), name=name)
        self.module.funcs.append(fn)
        idx = self.module.num_imported_funcs + len(self.module.funcs) - 1
        if name in self._func_names:
            raise ValueError(f"duplicate function name {name!r}")
        self._func_names[name] = idx
        if export:
            self.module.exports.append(Export(name, KIND_FUNC, idx))
        return FuncBuilder(self, fn)

    def func_index(self, name: str) -> int:
        try:
            return self._func_names[name]
        except KeyError:
            raise KeyError(f"unknown function {name!r}") from None

    def add_memory(self, min_pages: int, max_pages=None, export: bool = True,
                   shared: bool = False) -> int:
        self.module.memories.append(
            MemoryType(Limits(min_pages, max_pages), shared=shared))
        idx = self.module.num_memories - 1
        if export:
            self.module.exports.append(Export("memory", KIND_MEMORY, idx))
        return idx

    def add_table(self, min_size: int, max_size=None) -> int:
        self.module.tables.append(TableType(Limits(min_size, max_size)))
        return self.module.num_tables - 1

    def add_global(self, valtype: str, init, mutable: bool = True,
                   export: Optional[str] = None) -> int:
        const_op = {"i32": "i32.const", "i64": "i64.const", "f64": "f64.const"}[valtype]
        self.module.globals.append(
            Global(GlobalType(valtype, mutable), (const_op, init)))
        idx = self.module.num_globals - 1
        if export:
            self.module.exports.append(Export(export, KIND_GLOBAL, idx))
        return idx

    def add_data(self, offset: int, data: bytes, mem_idx: int = 0) -> None:
        self.module.datas.append(
            DataSegment(mem_idx, ("i32.const", offset), bytes(data)))

    def add_elem(self, offset: int, func_idxs: Sequence[int],
                 table_idx: int = 0) -> None:
        if not self.module.tables and not self.module.num_imported_tables:
            self.add_table(max(len(func_idxs) + offset, 1))
        self.module.elems.append(
            ElemSegment(table_idx, ("i32.const", offset), list(func_idxs)))

    def export_func(self, name: str, func_name: Optional[str] = None) -> None:
        self.module.exports.append(
            Export(name, KIND_FUNC, self.func_index(func_name or name)))

    def set_start(self, name: str) -> None:
        self.module.start = self.func_index(name)

    def build(self) -> Module:
        return self.module
