"""Linear memory: a bounds-checked, growable byte array.

All guest memory accesses funnel through this class, which enforces the Wasm
sandbox: any access outside ``[0, pages * PAGE_SIZE)`` raises
:class:`TrapOutOfBounds`.  WALI's zero-copy syscall path hands out
``memoryview`` slices of this buffer (after bounds checking) so host syscalls
can read/write guest data without copies (§3.2 of the paper).
"""

from __future__ import annotations

import struct

from .errors import Trap, TrapOutOfBounds
from .types import PAGE_SIZE, MASK32, MASK64, signed32, signed64


class LinearMemory:
    """A single 32-bit linear memory."""

    __slots__ = ("data", "pages", "max_pages", "shared", "peak_pages")

    def __init__(self, min_pages: int, max_pages=None, shared: bool = False):
        if max_pages is not None and max_pages < min_pages:
            raise ValueError("max below min")
        self.pages = min_pages
        self.max_pages = max_pages
        self.shared = shared
        self.data = bytearray(min_pages * PAGE_SIZE)
        self.peak_pages = min_pages

    # ---- size management ----

    @property
    def size_bytes(self) -> int:
        return self.pages * PAGE_SIZE

    def grow(self, delta_pages: int) -> int:
        """Grow by ``delta_pages``; return old page count or -1 on failure."""
        if delta_pages < 0:
            return -1
        new_pages = self.pages + delta_pages
        limit = self.max_pages if self.max_pages is not None else 65536
        if new_pages > limit:
            return -1
        old = self.pages
        self.data.extend(b"\x00" * (delta_pages * PAGE_SIZE))
        self.pages = new_pages
        self.peak_pages = max(self.peak_pages, new_pages)
        return old

    # ---- bounds checking ----

    def check(self, addr: int, length: int) -> None:
        if addr < 0 or length < 0 or addr + length > len(self.data):
            raise TrapOutOfBounds(f"addr={addr} len={length} mem={len(self.data)}")

    # ---- raw byte access (host side, used by WALI translation) ----

    def read(self, addr: int, length: int) -> memoryview:
        """Zero-copy read view of guest memory."""
        self.check(addr, length)
        return memoryview(self.data)[addr : addr + length]

    def write(self, addr: int, data) -> None:
        n = len(data)
        self.check(addr, n)
        self.data[addr : addr + n] = data

    def read_bytes(self, addr: int, length: int) -> bytes:
        self.check(addr, length)
        return bytes(self.data[addr : addr + length])

    def read_cstr(self, addr: int, limit: int = 1 << 20) -> bytes:
        """Read a NUL-terminated string (not including the NUL)."""
        self.check(addr, 1)
        end = self.data.find(b"\x00", addr, min(addr + limit, len(self.data)))
        if end < 0:
            raise TrapOutOfBounds("unterminated string")
        return bytes(self.data[addr:end])

    def write_cstr(self, addr: int, s: bytes) -> None:
        self.write(addr, bytes(s) + b"\x00")

    def fill(self, addr: int, value: int, length: int) -> None:
        self.check(addr, length)
        self.data[addr : addr + length] = bytes([value & 0xFF]) * length

    def copy(self, dst: int, src: int, length: int) -> None:
        self.check(dst, length)
        self.check(src, length)
        # bytearray slice assignment handles overlap correctly
        self.data[dst : dst + length] = self.data[src : src + length]

    # ---- typed loads (return engine representation: unsigned ints) ----

    def load_u(self, addr: int, nbytes: int) -> int:
        self.check(addr, nbytes)
        return int.from_bytes(self.data[addr : addr + nbytes], "little")

    def load_s(self, addr: int, nbytes: int) -> int:
        self.check(addr, nbytes)
        return int.from_bytes(self.data[addr : addr + nbytes], "little", signed=True)

    def load_i32(self, addr: int) -> int:
        return self.load_u(addr, 4)

    def load_i64(self, addr: int) -> int:
        return self.load_u(addr, 8)

    def load_f64(self, addr: int) -> float:
        self.check(addr, 8)
        return struct.unpack_from("<d", self.data, addr)[0]

    # ---- typed stores (accept unsigned engine representation) ----

    def store_int(self, addr: int, value: int, nbytes: int) -> None:
        self.check(addr, nbytes)
        mask = (1 << (nbytes * 8)) - 1
        self.data[addr : addr + nbytes] = (value & mask).to_bytes(nbytes, "little")

    def store_i32(self, addr: int, value: int) -> None:
        self.store_int(addr, value, 4)

    def store_i64(self, addr: int, value: int) -> None:
        self.store_int(addr, value, 8)

    def store_f64(self, addr: int, value: float) -> None:
        self.check(addr, 8)
        struct.pack_into("<d", self.data, addr, value)

    # ---- snapshots (process fork support) ----

    def clone(self) -> "LinearMemory":
        m = LinearMemory.__new__(LinearMemory)
        m.pages = self.pages
        m.max_pages = self.max_pages
        m.shared = self.shared
        m.data = bytearray(self.data)
        m.peak_pages = self.peak_pages
        return m
