"""Static validation: the type-checking pass every module passes before
instantiation.

This implements the standard wasm validation algorithm (operand stack of
value types + control frame stack, with the "unreachable makes the stack
polymorphic" rule).  WALI's safety story starts here: a validated module can
only call the host functions its import section names, with the declared
signatures (§3.6 "syscall integrity").
"""

from __future__ import annotations

from typing import List, Optional

from .errors import ValidationError
from .module import Module, KIND_FUNC, KIND_GLOBAL, KIND_MEMORY, KIND_TABLE
from .opcodes import OPS
from .types import F64, FUNCREF, I32, I64

_UNKNOWN = "unknown"  # polymorphic stack slot (after unreachable code)

_CONST_TYPES = {"i32.const": I32, "i64.const": I64, "f64.const": F64}


class _Ctrl:
    __slots__ = ("opcode", "result", "height", "unreachable")

    def __init__(self, opcode: str, result: Optional[str], height: int):
        self.opcode = opcode
        self.result = result
        self.height = height
        self.unreachable = False

    @property
    def label_types(self):
        """Types expected at a branch to this label (loop: entry, else: exit)."""
        if self.opcode == "loop":
            return ()
        return (self.result,) if self.result else ()

    @property
    def end_types(self):
        return (self.result,) if self.result else ()


class _FuncValidator:
    def __init__(self, module: Module, local_types: List[str],
                 result: Optional[str], where: str):
        self.m = module
        self.locals = local_types
        self.stack: List[str] = []
        self.ctrls: List[_Ctrl] = [_Ctrl("func", result, 0)]
        self.where = where

    def fail(self, msg: str):
        raise ValidationError(f"{self.where}: {msg}")

    # ---- operand stack ----

    def push(self, t: str):
        self.stack.append(t)

    def pop(self, expect: Optional[str] = None) -> str:
        frame = self.ctrls[-1]
        if len(self.stack) == frame.height:
            if frame.unreachable:
                return expect or _UNKNOWN
            self.fail(f"stack underflow (expected {expect})")
        t = self.stack.pop()
        if expect is not None and t != expect and t != _UNKNOWN:
            self.fail(f"type mismatch: expected {expect}, found {t}")
        return t

    def set_unreachable(self):
        frame = self.ctrls[-1]
        del self.stack[frame.height:]
        frame.unreachable = True

    # ---- control frames ----

    def push_ctrl(self, opcode: str, result: Optional[str]):
        self.ctrls.append(_Ctrl(opcode, result, len(self.stack)))

    def pop_ctrl(self) -> _Ctrl:
        if not self.ctrls:
            self.fail("control stack underflow")
        frame = self.ctrls[-1]
        for t in reversed(frame.end_types):
            self.pop(t)
        if len(self.stack) != frame.height:
            self.fail("values left on stack at block end")
        return self.ctrls.pop()

    def label(self, depth: int) -> _Ctrl:
        if depth >= len(self.ctrls):
            self.fail(f"branch depth {depth} out of range")
        return self.ctrls[-1 - depth]

    def branch_to(self, depth: int):
        frame = self.label(depth)
        for t in reversed(frame.label_types):
            self.pop(t)
        for t in frame.label_types:
            self.push(t)

    # ---- instruction dispatch ----

    def check_body(self, body: list):
        for instr in body:
            self.check_instr(instr)

    def check_instr(self, instr: tuple):
        name = instr[0]
        if name == "block" or name == "loop":
            self.push_ctrl(name, instr[1])
            self.check_body(instr[2])
            frame = self.pop_ctrl()
            for t in frame.end_types:
                self.push(t)
            return
        if name == "if":
            self.pop(I32)
            has_else = len(instr) > 3 and instr[3]
            if instr[1] and not has_else:
                self.fail("if with result requires else arm")
            self.push_ctrl("if", instr[1])
            self.check_body(instr[2])
            frame = self.pop_ctrl()
            if has_else:
                self.push_ctrl("else", instr[1])
                self.check_body(instr[3])
                self.pop_ctrl()
            for t in frame.end_types:
                self.push(t)
            return
        if name == "unreachable":
            self.set_unreachable()
            return
        if name == "br":
            self.branch_to(instr[1])
            self.set_unreachable()
            return
        if name == "br_if":
            self.pop(I32)
            self.branch_to(instr[1])
            return
        if name == "br_table":
            self.pop(I32)
            targets, default = instr[1], instr[2]
            arity = len(self.label(default).label_types)
            for t in targets:
                if len(self.label(t).label_types) != arity:
                    self.fail("br_table label arity mismatch")
            self.branch_to(default)
            self.set_unreachable()
            return
        if name == "return":
            frame = self.ctrls[0]
            for t in reversed(frame.end_types):
                self.pop(t)
            self.set_unreachable()
            return
        if name == "call":
            idx = instr[1]
            if idx >= self.m.num_funcs:
                self.fail(f"call to undefined function {idx}")
            ft = self.m.func_type(idx)
            for t in reversed(ft.params):
                self.pop(t)
            for t in ft.results:
                self.push(t)
            return
        if name == "call_indirect":
            type_idx, table_idx = instr[1], instr[2]
            if type_idx >= len(self.m.types):
                self.fail(f"call_indirect to undefined type {type_idx}")
            if table_idx >= self.m.num_tables:
                self.fail("call_indirect without table")
            self.pop(I32)
            ft = self.m.types[type_idx]
            for t in reversed(ft.params):
                self.pop(t)
            for t in ft.results:
                self.push(t)
            return
        if name == "drop":
            self.pop()
            return
        if name == "select":
            self.pop(I32)
            t1 = self.pop()
            t2 = self.pop()
            if t1 != t2 and _UNKNOWN not in (t1, t2):
                self.fail("select operands differ")
            self.push(t2 if t1 == _UNKNOWN else t1)
            return
        if name.startswith("local."):
            idx = instr[1]
            if idx >= len(self.locals):
                self.fail(f"local index {idx} out of range")
            lt = self.locals[idx]
            if name == "local.get":
                self.push(lt)
            elif name == "local.set":
                self.pop(lt)
            else:  # local.tee
                self.pop(lt)
                self.push(lt)
            return
        if name.startswith("global."):
            idx = instr[1]
            if idx >= self.m.num_globals:
                self.fail(f"global index {idx} out of range")
            gt = self.m.global_type(idx)
            if name == "global.get":
                self.push(gt.valtype)
            else:
                if not gt.mutable:
                    self.fail(f"global {idx} is immutable")
                self.pop(gt.valtype)
            return
        op = OPS.get(name)
        if op is None:
            self.fail(f"unknown instruction {name!r}")
        if op.pops is None:
            self.fail(f"instruction {name!r} not allowed here")
        if op.imm in ("memarg", "memidx", "mem2") and self.m.num_memories == 0:
            self.fail(f"{name} requires a memory")
        for t in reversed(op.pops):
            self.pop(t)
        for t in op.pushes:
            self.push(t)

    def finish(self):
        frame = self.pop_ctrl()
        for t in frame.end_types:
            self.push(t)
        if len(self.stack) != len(frame.end_types):
            self.fail("values left on stack at function end")


def _check_const(m: Module, instr: tuple, expect: str, where: str):
    name = instr[0]
    if name in _CONST_TYPES:
        if _CONST_TYPES[name] != expect:
            raise ValidationError(f"{where}: const type mismatch")
        return
    if name == "global.get":
        idx = instr[1]
        if idx >= m.num_imported_globals:
            raise ValidationError(
                f"{where}: const global.get must reference an imported global")
        gt = m.global_type(idx)
        if gt.mutable or gt.valtype != expect:
            raise ValidationError(f"{where}: bad const global")
        return
    raise ValidationError(f"{where}: not a constant expression: {name}")


def validate_module(m: Module) -> None:
    """Validate an entire module; raises :class:`ValidationError` on failure."""
    # type indices of imports and functions
    for im in m.imports:
        if im.kind == KIND_FUNC and im.desc >= len(m.types):
            raise ValidationError(f"import {im.module}.{im.name}: bad type index")
    for i, fn in enumerate(m.funcs):
        if fn.type_idx >= len(m.types):
            raise ValidationError(f"func {i}: bad type index")

    if m.num_memories > 1:
        raise ValidationError("at most one memory supported")

    for gi, g in enumerate(m.globals):
        _check_const(m, g.init, g.type.valtype, f"global {gi}")

    names = set()
    limits = {KIND_FUNC: m.num_funcs, KIND_GLOBAL: m.num_globals,
              KIND_MEMORY: m.num_memories, KIND_TABLE: m.num_tables}
    for e in m.exports:
        if e.name in names:
            raise ValidationError(f"duplicate export {e.name!r}")
        names.add(e.name)
        if e.kind not in limits or e.index >= limits[e.kind]:
            raise ValidationError(f"export {e.name!r}: bad index")

    if m.start is not None:
        if m.start >= m.num_funcs:
            raise ValidationError("start function index out of range")
        ft = m.func_type(m.start)
        if ft.params or ft.results:
            raise ValidationError("start function must be [] -> []")

    for si, seg in enumerate(m.elems):
        if seg.table_idx >= m.num_tables:
            raise ValidationError(f"elem {si}: no such table")
        _check_const(m, seg.offset, I32, f"elem {si} offset")
        for fi in seg.func_idxs:
            if fi >= m.num_funcs:
                raise ValidationError(f"elem {si}: bad function index {fi}")

    for di, seg in enumerate(m.datas):
        if seg.mem_idx >= m.num_memories:
            raise ValidationError(f"data {di}: no such memory")
        _check_const(m, seg.offset, I32, f"data {di} offset")

    n_imp = m.num_imported_funcs
    for i, fn in enumerate(m.funcs):
        ft = m.types[fn.type_idx]
        local_types = list(ft.params) + list(fn.locals)
        result = ft.results[0] if ft.results else None
        where = f"func {n_imp + i}" + (f" ({fn.name})" if fn.name else "")
        fv = _FuncValidator(m, local_types, result, where)
        fv.check_body(fn.body)
        fv.finish()
