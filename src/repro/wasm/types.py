"""Core WebAssembly type definitions.

Value types are plain strings (``"i32"``, ``"i64"``, ``"f64"``, ``"funcref"``)
— cheap to compare, hashable, and readable in dumps.  Composite types are
small frozen dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

I32 = "i32"
I64 = "i64"
F64 = "f64"
FUNCREF = "funcref"

VALUE_TYPES = (I32, I64, F64)

# Binary encodings for value types (wasm spec).
VALTYPE_BYTES = {I32: 0x7F, I64: 0x7E, F64: 0x7C, FUNCREF: 0x70}
BYTE_VALTYPES = {v: k for k, v in VALTYPE_BYTES.items()}

PAGE_SIZE = 65536


@dataclass(frozen=True)
class FuncType:
    """A function signature: ``params -> results`` (at most one result)."""

    params: Tuple[str, ...]
    results: Tuple[str, ...]

    def __post_init__(self):
        for t in self.params + self.results:
            if t not in VALUE_TYPES:
                raise ValueError(f"bad value type {t!r}")
        if len(self.results) > 1:
            raise ValueError("multi-value results not supported")

    def __str__(self) -> str:
        ps = " ".join(self.params) or "()"
        rs = " ".join(self.results) or "()"
        return f"[{ps}] -> [{rs}]"


def functype(params: Sequence[str], results: Sequence[str]) -> FuncType:
    return FuncType(tuple(params), tuple(results))


@dataclass(frozen=True)
class Limits:
    """Min/max limits for memories and tables, in pages/elements."""

    min: int
    max: Optional[int] = None

    def __post_init__(self):
        if self.min < 0:
            raise ValueError("limits min must be non-negative")
        if self.max is not None and self.max < self.min:
            raise ValueError("limits max below min")


@dataclass(frozen=True)
class MemoryType:
    limits: Limits
    shared: bool = False


@dataclass(frozen=True)
class TableType:
    limits: Limits
    elemtype: str = FUNCREF


@dataclass(frozen=True)
class GlobalType:
    valtype: str
    mutable: bool = False


# --- integer helpers used across the engine -------------------------------

MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF


def wrap32(x: int) -> int:
    """Wrap to unsigned 32-bit representation."""
    return x & MASK32


def wrap64(x: int) -> int:
    """Wrap to unsigned 64-bit representation."""
    return x & MASK64


def signed32(x: int) -> int:
    """Reinterpret an unsigned 32-bit value as signed."""
    x &= MASK32
    return x - 0x100000000 if x >= 0x80000000 else x


def signed64(x: int) -> int:
    """Reinterpret an unsigned 64-bit value as signed."""
    x &= MASK64
    return x - 0x10000000000000000 if x >= 0x8000000000000000 else x


def default_value(valtype: str):
    """Zero value for a value type (wasm locals are zero-initialised)."""
    return 0.0 if valtype == F64 else 0
