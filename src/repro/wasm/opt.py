"""Module post-passes: dead-function elimination ("gc-sections").

Static linking keeps a binary's import section honest: only the syscalls the
program can actually reach appear as imports.  The paper's Table 1 porting
matrix relies on this — an application "needs" a feature iff its linked
image imports it.  This pass computes call-graph reachability from exports,
the start function and active element segments, drops everything else
(including unused *imports*), and renumbers function indices everywhere.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .module import Module, KIND_FUNC


def _called_indices(body: list, out: Set[int]) -> None:
    for instr in body:
        op = instr[0]
        if op == "call":
            out.add(instr[1])
        elif op == "block" or op == "loop":
            _called_indices(instr[2], out)
        elif op == "if":
            _called_indices(instr[2], out)
            if len(instr) > 3 and instr[3]:
                _called_indices(instr[3], out)


def _rewrite_calls(body: list, remap: Dict[int, int]) -> list:
    out = []
    for instr in body:
        op = instr[0]
        if op == "call":
            out.append(("call", remap[instr[1]]))
        elif op == "block" or op == "loop":
            out.append((op, instr[1], _rewrite_calls(instr[2], remap)))
        elif op == "if":
            els = _rewrite_calls(instr[3], remap) if len(instr) > 3 else []
            out.append(("if", instr[1], _rewrite_calls(instr[2], remap), els))
        else:
            out.append(instr)
    return out


def gc_functions(m: Module) -> Module:
    """Remove unreachable functions and unused imports, in place."""
    n_imp = m.num_imported_funcs
    func_imports = [im for im in m.imports if im.kind == KIND_FUNC]

    # roots: exports, start, element segments
    roots: Set[int] = set()
    for e in m.exports:
        if e.kind == KIND_FUNC:
            roots.add(e.index)
    if m.start is not None:
        roots.add(m.start)
    for seg in m.elems:
        roots.update(seg.func_idxs)

    # BFS over call edges
    reachable: Set[int] = set()
    work = list(roots)
    while work:
        idx = work.pop()
        if idx in reachable:
            continue
        reachable.add(idx)
        if idx >= n_imp:
            callees: Set[int] = set()
            _called_indices(m.funcs[idx - n_imp].body, callees)
            work.extend(callees - reachable)

    # build the keep lists and the index remap
    kept_imports = [im for i, im in enumerate(func_imports) if i in reachable]
    kept_funcs = [fn for i, fn in enumerate(m.funcs)
                  if (n_imp + i) in reachable]
    remap: Dict[int, int] = {}
    new_idx = 0
    for i in range(n_imp):
        if i in reachable:
            remap[i] = new_idx
            new_idx += 1
    for i in range(len(m.funcs)):
        if (n_imp + i) in reachable:
            remap[n_imp + i] = new_idx
            new_idx += 1

    # rewrite
    other_imports = [im for im in m.imports if im.kind != KIND_FUNC]
    m.imports = kept_imports + other_imports
    m.funcs = kept_funcs
    for fn in m.funcs:
        fn.body = _rewrite_calls(fn.body, remap)
    for e in m.exports:
        if e.kind == KIND_FUNC:
            e.index = remap[e.index]
    if m.start is not None:
        m.start = remap[m.start]
    for seg in m.elems:
        seg.func_idxs = [remap[fi] for fi in seg.func_idxs]
    return m
