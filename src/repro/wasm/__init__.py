"""``repro.wasm`` — the WebAssembly engine substrate.

Public surface:

* :class:`ModuleBuilder` / :class:`FuncBuilder` — authoring DSL
* :func:`encode_module` / :func:`decode_module` — binary codec
* :func:`validate_module` — static validation
* :func:`instantiate` / :class:`Instance` / :class:`Machine` — execution
* :class:`LinearMemory`, :class:`HostFunc`, traps in :mod:`repro.wasm.errors`
"""

from .binary import decode_module, encode_module
from .builder import FuncBuilder, ModuleBuilder
from .errors import (
    DecodeError, GuestExit, LinkError, Trap, TrapDivByZero, TrapIndirectCall,
    TrapIntegerOverflow, TrapOutOfBounds, TrapStackExhausted, TrapSyscall,
    TrapUnreachable, ValidationError, WasmError,
)
from .flatten import SAFEPOINT_SCHEMES, FlatCode, flatten_function, flatten_module
from .instance import GlobalCell, Instance, Table, instantiate
from .interp import HostFunc, Machine, WasmFunc
from .memory import LinearMemory
from .module import Module
from .types import F64, FUNCREF, I32, I64, PAGE_SIZE, FuncType, functype
from .validate import validate_module

__all__ = [
    "DecodeError", "F64", "FUNCREF", "FlatCode", "FuncBuilder", "FuncType",
    "GlobalCell", "GuestExit", "HostFunc", "I32", "I64", "Instance",
    "LinearMemory", "LinkError", "Machine", "Module", "ModuleBuilder",
    "PAGE_SIZE", "SAFEPOINT_SCHEMES", "Table", "Trap", "TrapDivByZero",
    "TrapIndirectCall", "TrapIntegerOverflow", "TrapOutOfBounds",
    "TrapStackExhausted", "TrapSyscall", "TrapUnreachable", "ValidationError",
    "WasmError", "WasmFunc", "decode_module", "encode_module",
    "flatten_function", "flatten_module", "functype", "instantiate",
    "validate_module",
]
