"""The compiled tier: Wasm functions → generated Python functions.

This is the repository's AoT compiler (the WAMR ``wamrc`` analog): each
function body is translated to Python source with

* compile-time stack slots mapped to local variables (``s0, s1, ...``),
* structured control flow lowered to ``while True:`` blocks with the
  multi-level-break flag technique,
* full semantics preserved: wrapping arithmetic, trapping division,
  bounds-checked memory access, ``call_indirect`` signature checks,
  safepoint polls at loop headers.

The compiled tier executes several times faster than the flat interpreter
and backs the "native"/"Docker" ends of the Fig. 8 comparison.  Engine
restriction (cf. §3.6 item 5): a compiled activation's state lives on the
Python call stack, so ``fork`` is only available under the interpreter tier.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .errors import (
    Trap, TrapIndirectCall, TrapStackExhausted, TrapUnreachable,
)
from .flatten import SAFEPOINT_SCHEMES
from .interp import HostFunc, _idiv_s, _irem_s, _clz, _ctz, _rotl, _trunc
from .module import Module
from .types import (
    F64, I32, I64, MASK32, MASK64, default_value, signed32, signed64,
)
from .validate import validate_module

_BINOPS32 = {
    "i32.add": "({a} + {b}) & 0xFFFFFFFF",
    "i32.sub": "({a} - {b}) & 0xFFFFFFFF",
    "i32.mul": "({a} * {b}) & 0xFFFFFFFF",
    "i32.and": "{a} & {b}",
    "i32.or": "{a} | {b}",
    "i32.xor": "{a} ^ {b}",
    "i32.shl": "({a} << ({b} % 32)) & 0xFFFFFFFF",
    "i32.shr_u": "{a} >> ({b} % 32)",
    "i32.shr_s": "(_sgn32({a}) >> ({b} % 32)) & 0xFFFFFFFF",
    "i32.div_s": "_idiv_s({a}, {b}, 32)",
    "i32.div_u": "_udiv({a}, {b})",
    "i32.rem_s": "_irem_s({a}, {b}, 32)",
    "i32.rem_u": "_urem({a}, {b})",
    "i32.rotl": "_rotl({a}, {b}, 32)",
    "i32.rotr": "_rotl({a}, 32 - ({b} % 32), 32)",
    "i32.eq": "1 if {a} == {b} else 0",
    "i32.ne": "1 if {a} != {b} else 0",
    "i32.lt_u": "1 if {a} < {b} else 0",
    "i32.gt_u": "1 if {a} > {b} else 0",
    "i32.le_u": "1 if {a} <= {b} else 0",
    "i32.ge_u": "1 if {a} >= {b} else 0",
    "i32.lt_s": "1 if _sgn32({a}) < _sgn32({b}) else 0",
    "i32.gt_s": "1 if _sgn32({a}) > _sgn32({b}) else 0",
    "i32.le_s": "1 if _sgn32({a}) <= _sgn32({b}) else 0",
    "i32.ge_s": "1 if _sgn32({a}) >= _sgn32({b}) else 0",
}
_BINOPS64 = {
    "i64.add": "({a} + {b}) & 0xFFFFFFFFFFFFFFFF",
    "i64.sub": "({a} - {b}) & 0xFFFFFFFFFFFFFFFF",
    "i64.mul": "({a} * {b}) & 0xFFFFFFFFFFFFFFFF",
    "i64.and": "{a} & {b}",
    "i64.or": "{a} | {b}",
    "i64.xor": "{a} ^ {b}",
    "i64.shl": "({a} << ({b} % 64)) & 0xFFFFFFFFFFFFFFFF",
    "i64.shr_u": "{a} >> ({b} % 64)",
    "i64.shr_s": "(_sgn64({a}) >> ({b} % 64)) & 0xFFFFFFFFFFFFFFFF",
    "i64.div_s": "_idiv_s({a}, {b}, 64)",
    "i64.div_u": "_udiv({a}, {b})",
    "i64.rem_s": "_irem_s({a}, {b}, 64)",
    "i64.rem_u": "_urem({a}, {b})",
    "i64.rotl": "_rotl({a}, {b}, 64)",
    "i64.rotr": "_rotl({a}, 64 - ({b} % 64), 64)",
    "i64.eq": "1 if {a} == {b} else 0",
    "i64.ne": "1 if {a} != {b} else 0",
    "i64.lt_u": "1 if {a} < {b} else 0",
    "i64.gt_u": "1 if {a} > {b} else 0",
    "i64.le_u": "1 if {a} <= {b} else 0",
    "i64.ge_u": "1 if {a} >= {b} else 0",
    "i64.lt_s": "1 if _sgn64({a}) < _sgn64({b}) else 0",
    "i64.gt_s": "1 if _sgn64({a}) > _sgn64({b}) else 0",
    "i64.le_s": "1 if _sgn64({a}) <= _sgn64({b}) else 0",
    "i64.ge_s": "1 if _sgn64({a}) >= _sgn64({b}) else 0",
}
_BINOPSF = {
    "f64.add": "{a} + {b}", "f64.sub": "{a} - {b}", "f64.mul": "{a} * {b}",
    "f64.div": "_fdiv({a}, {b})", "f64.min": "min({a}, {b})",
    "f64.max": "max({a}, {b})",
    "f64.eq": "1 if {a} == {b} else 0", "f64.ne": "1 if {a} != {b} else 0",
    "f64.lt": "1 if {a} < {b} else 0", "f64.gt": "1 if {a} > {b} else 0",
    "f64.le": "1 if {a} <= {b} else 0", "f64.ge": "1 if {a} >= {b} else 0",
}
_UNOPS = {
    "i32.eqz": "1 if {a} == 0 else 0",
    "i64.eqz": "1 if {a} == 0 else 0",
    "i32.clz": "_clz({a}, 32)", "i32.ctz": "_ctz({a}, 32)",
    "i32.popcnt": "bin({a}).count('1')",
    "i64.clz": "_clz({a}, 64)", "i64.ctz": "_ctz({a}, 64)",
    "i64.popcnt": "bin({a}).count('1')",
    "i32.wrap_i64": "{a} & 0xFFFFFFFF",
    "i64.extend_i32_s": "_sgn32({a}) & 0xFFFFFFFFFFFFFFFF",
    "i64.extend_i32_u": "{a}",
    "i32.extend8_s": "_sext({a}, 8, 0xFFFFFFFF)",
    "i32.extend16_s": "_sext({a}, 16, 0xFFFFFFFF)",
    "i64.extend32_s": "_sext({a}, 32, 0xFFFFFFFFFFFFFFFF)",
    "i32.trunc_f64_s": "_trunc({a}, -2147483648, 2147483647, 0xFFFFFFFF)",
    "i32.trunc_f64_u": "_trunc({a}, 0, 4294967295, 0xFFFFFFFF)",
    "i64.trunc_f64_s":
        "_trunc({a}, -(1 << 63), (1 << 63) - 1, 0xFFFFFFFFFFFFFFFF)",
    "i64.trunc_f64_u":
        "_trunc({a}, 0, (1 << 64) - 1, 0xFFFFFFFFFFFFFFFF)",
    "f64.convert_i32_s": "float(_sgn32({a}))",
    "f64.convert_i32_u": "float({a})",
    "f64.convert_i64_s": "float(_sgn64({a}))",
    "f64.convert_i64_u": "float({a})",
    "f64.abs": "abs({a})", "f64.neg": "-{a}", "f64.sqrt": "_sqrt({a})",
    "f64.ceil": "float(_ceil({a}))", "f64.floor": "float(_floor({a}))",
    "f64.trunc": "float(int({a}))", "f64.nearest": "float(round({a}))",
}
_LOADS = {
    "i32.load": "mem.load_u({a} + %d, 4)",
    "i64.load": "mem.load_u({a} + %d, 8)",
    "f64.load": "mem.load_f64({a} + %d)",
    "i32.load8_u": "mem.load_u({a} + %d, 1)",
    "i32.load8_s": "mem.load_s({a} + %d, 1) & 0xFFFFFFFF",
    "i32.load16_u": "mem.load_u({a} + %d, 2)",
    "i32.load16_s": "mem.load_s({a} + %d, 2) & 0xFFFFFFFF",
    "i64.load8_u": "mem.load_u({a} + %d, 1)",
    "i64.load8_s": "mem.load_s({a} + %d, 1) & 0xFFFFFFFFFFFFFFFF",
    "i64.load16_u": "mem.load_u({a} + %d, 2)",
    "i64.load16_s": "mem.load_s({a} + %d, 2) & 0xFFFFFFFFFFFFFFFF",
    "i64.load32_u": "mem.load_u({a} + %d, 4)",
    "i64.load32_s": "mem.load_s({a} + %d, 4) & 0xFFFFFFFFFFFFFFFF",
}
_STORES = {
    "i32.store": 4, "i64.store": 8, "i32.store8": 1, "i32.store16": 2,
    "i64.store8": 1, "i64.store16": 2, "i64.store32": 4,
}


class _Ctrl:
    __slots__ = ("kind", "height", "arity")

    def __init__(self, kind: str, height: int, arity: int):
        self.kind = kind
        self.height = height
        self.arity = arity


class _FnCompiler:
    def __init__(self, module: Module, func_idx: int, scheme: str):
        self.m = module
        self.idx = func_idx
        self.fn = module.funcs[func_idx - module.num_imported_funcs]
        self.ft = module.types[self.fn.type_idx]
        self.scheme = scheme
        self.lines: List[str] = []
        self.indent = 1
        self.height = 0
        self.ctrls: List[_Ctrl] = []
        self.dead = False

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def s(self, depth: int) -> str:
        return f"s{depth}"

    def push_expr(self, expr: str) -> None:
        self.emit(f"s{self.height} = {expr}")
        self.height += 1

    # ---- branch plumbing ----

    def _branch_code(self, depth: int) -> List[str]:
        """Statements performing a br to label ``depth``."""
        target = self.ctrls[-1 - depth]
        out = []
        if target.kind != "loop" and target.arity:
            src = self.height - 1
            if src != target.height:
                out.append(f"s{target.height} = s{src}")
        if depth == 0:
            out.append("continue" if target.kind == "loop" else "break")
        else:
            out.append(f"_br = {depth}")
            out.append("break")
        return out

    def _open_structure(self, kind: str, result) -> None:
        self.ctrls.append(_Ctrl(kind, self.height, 1 if result else 0))
        self.emit("while True:")
        self.indent += 1

    def _close_structure(self) -> None:
        ctrl = self.ctrls.pop()
        if not self.dead:
            if ctrl.kind != "loop" and ctrl.arity and \
                    self.height - 1 != ctrl.height:
                self.emit(f"s{ctrl.height} = s{self.height - 1}")
        self.emit("break")
        self.indent -= 1
        # propagate pending multi-level branches
        if self.ctrls:
            parent = self.ctrls[-1]
            self.emit("if _br:")
            self.emit("    _br -= 1")
            self.emit("    if _br:")
            self.emit("        break")
            if parent.kind == "loop":
                self.emit("    continue")
            else:
                if parent.arity:
                    self.emit(f"    s{parent.height} = "
                              f"s{ctrl.height + ctrl.arity - 1}"
                              if ctrl.arity else "    pass")
                self.emit("    break")
        else:
            self.emit("if _br:")
            self.emit("    raise Trap('bad-branch', 'escaped function')")
        self.height = ctrl.height + ctrl.arity
        self.dead = False

    # ---- body ----

    def compile_body(self, body: list) -> None:
        for instr in body:
            if self.dead:
                break
            self.compile_instr(instr)

    def compile_instr(self, instr: tuple) -> None:
        name = instr[0]
        h = self.height

        if name == "block":
            self._open_structure("block", instr[1])
            self.compile_body(instr[2])
            self._close_structure()
            return
        if name == "loop":
            self._open_structure("loop", instr[1])
            if self.scheme in ("loop", "all"):
                self.emit("if ctx.poll_hook is not None: ctx.poll_hook()")
            self.compile_body(instr[2])
            # natural loop exit: fall out, don't re-iterate
            self._close_structure()
            return
        if name == "if":
            self.height -= 1
            self._open_structure("block", instr[1])
            self.emit(f"if s{self.height}:")
            self.indent += 1
            entry = self.height
            self.compile_body(instr[2])
            then_dead = self.dead
            self.dead = False
            self.indent -= 1
            self.emit("else:")
            self.indent += 1
            self.height = entry
            if len(instr) > 3 and instr[3]:
                self.compile_body(instr[3])
            else:
                self.emit("pass")
            self.dead = self.dead and then_dead
            self.indent -= 1
            self._close_structure()
            return
        if name == "br":
            for line in self._branch_code(instr[1]):
                self.emit(line)
            self.dead = True
            return
        if name == "br_if":
            self.height -= 1
            self.emit(f"if s{self.height}:")
            self.indent += 1
            for line in self._branch_code(instr[1]):
                self.emit(line)
            self.indent -= 1
            return
        if name == "br_table":
            self.height -= 1
            sel = f"s{self.height}"
            targets, default = instr[1], instr[2]
            for i, t in enumerate(targets):
                kw = "if" if i == 0 else "elif"
                self.emit(f"{kw} {sel} == {i}:")
                self.indent += 1
                for line in self._branch_code(t):
                    self.emit(line)
                self.indent -= 1
            self.emit("else:" if targets else "if True:")
            self.indent += 1
            for line in self._branch_code(default):
                self.emit(line)
            self.indent -= 1
            self.dead = True
            return
        if name == "return":
            if self.ft.results:
                self.emit(f"return s{self.height - 1}")
            else:
                self.emit("return None")
            self.dead = True
            return
        if name == "unreachable":
            self.emit("raise TrapUnreachable()")
            self.dead = True
            return
        if name == "nop":
            return
        if name == "call":
            self._compile_call(instr[1])
            return
        if name == "call_indirect":
            ft = self.m.types[instr[1]]
            self.height -= 1
            elem = f"s{self.height}"
            n = len(ft.params)
            args = ", ".join(f"s{self.height - n + i}" for i in range(n))
            self.height -= n
            call = f"ctx.call_indirect({instr[1]}, {elem}, ({args}{',' if n else ''}))"
            if ft.results:
                self.push_expr(call)
            else:
                self.emit(call)
            return
        if name in ("i32.const", "i64.const"):
            mask = MASK32 if name[1] == "3" else MASK64
            self.push_expr(str(instr[1] & mask))
            return
        if name == "f64.const":
            self.push_expr(repr(float(instr[1])))
            return
        if name == "drop":
            self.height -= 1
            return
        if name == "select":
            self.height -= 3
            a, b, c = (f"s{self.height + i}" for i in range(3))
            self.push_expr(f"{a} if {c} else {b}")
            return
        if name == "local.get":
            self.push_expr(f"l{instr[1]}")
            return
        if name == "local.set":
            self.height -= 1
            self.emit(f"l{instr[1]} = s{self.height}")
            return
        if name == "local.tee":
            self.emit(f"l{instr[1]} = s{self.height - 1}")
            return
        if name == "global.get":
            self.push_expr(f"g[{instr[1]}].value")
            return
        if name == "global.set":
            self.height -= 1
            self.emit(f"g[{instr[1]}].value = s{self.height}")
            return
        if name in _LOADS:
            off = instr[2] if len(instr) > 2 else 0
            self.height -= 1
            tmpl = _LOADS[name] % off
            self.push_expr(tmpl.format(a=f"s{self.height}"))
            return
        if name in _STORES:
            off = instr[2] if len(instr) > 2 else 0
            self.height -= 2
            addr, val = f"s{self.height}", f"s{self.height + 1}"
            size = _STORES[name]
            self.emit(f"mem.store_int({addr} + {off}, {val}, {size})")
            return
        if name == "f64.store":
            off = instr[2] if len(instr) > 2 else 0
            self.height -= 2
            self.emit(f"mem.store_f64(s{self.height} + {off}, "
                      f"s{self.height + 1})")
            return
        if name == "memory.size":
            self.push_expr("mem.pages")
            return
        if name == "memory.grow":
            self.height -= 1
            self.push_expr(f"mem.grow(s{self.height}) & 0xFFFFFFFF")
            return
        if name == "memory.copy":
            self.height -= 3
            d, s_, n = (f"s{self.height + i}" for i in range(3))
            self.emit(f"mem.copy({d}, {s_}, {n})")
            return
        if name == "memory.fill":
            self.height -= 3
            d, v, n = (f"s{self.height + i}" for i in range(3))
            self.emit(f"mem.fill({d}, {v}, {n})")
            return
        if name == "i32.atomic.rmw.add":
            off = instr[2] if len(instr) > 2 else 0
            self.height -= 2
            a, v = f"s{self.height}", f"s{self.height + 1}"
            self.push_expr(f"ctx.atomic_add({a} + {off}, {v})")
            return
        if name == "i32.atomic.rmw.cmpxchg":
            off = instr[2] if len(instr) > 2 else 0
            self.height -= 3
            a, e, n_ = (f"s{self.height + i}" for i in range(3))
            self.push_expr(f"ctx.atomic_cas({a} + {off}, {e}, {n_})")
            return
        if name in _BINOPS32 or name in _BINOPS64 or name in _BINOPSF:
            tmpl = (_BINOPS32.get(name) or _BINOPS64.get(name) or
                    _BINOPSF[name])
            self.height -= 2
            a, b = f"s{self.height}", f"s{self.height + 1}"
            self.push_expr(tmpl.format(a=a, b=b))
            return
        if name in _UNOPS:
            self.height -= 1
            self.push_expr(_UNOPS[name].format(a=f"s{self.height}"))
            return
        raise Trap("compile-error", f"cannot compile {name!r}")

    def _compile_call(self, idx: int) -> None:
        ft = self.m.func_type(idx)
        n = len(ft.params)
        args = ", ".join(f"s{self.height - n + i}" for i in range(n))
        self.height -= n
        call = f"ctx.invoke({idx}, ({args}{',' if n else ''}))"
        if ft.results:
            self.push_expr(call)
        else:
            self.emit(call)

    def source(self) -> str:
        n_params = len(self.ft.params)
        params = ", ".join(f"l{i}" for i in range(n_params))
        header = f"def _f{self.idx}(ctx{', ' + params if params else ''}):"
        prelude = ["    mem = ctx.memory", "    g = ctx.globals", "    _br = 0"]
        for i, t in enumerate(self.fn.locals):
            prelude.append(
                f"    l{n_params + i} = " +
                ("0.0" if t == F64 else "0"))
        if self.scheme in ("func", "all"):
            prelude.append(
                "    if ctx.poll_hook is not None: ctx.poll_hook()")
        self.compile_body(self.fn.body)
        if self.ft.results:
            if not self.dead:
                self.emit(f"return s{self.height - 1}")
        else:
            self.emit("return None")
        return "\n".join([header] + prelude + self.lines)


class CompiledContext:
    """Execution context shared by all compiled functions of an instance."""

    MAX_DEPTH = 900  # stay under Python's recursion limit

    def __init__(self, instance):
        self.instance = instance
        self.poll_hook = None
        self.depth = 0
        self.cfuncs: Dict[int, Callable] = {}

    @property
    def memory(self):
        return self.instance.memory

    @property
    def globals(self):
        return self.instance.globals

    def invoke(self, idx: int, args: tuple):
        target = self.cfuncs.get(idx)
        if target is not None:
            self.depth += 1
            if self.depth > self.MAX_DEPTH:
                self.depth = 0
                raise TrapStackExhausted("compiled tier")
            try:
                return target(self, *args)
            finally:
                self.depth -= 1
        func = self.instance.funcs[idx]
        if isinstance(func, HostFunc):
            res = func.fn(*args)
            if func.functype.results:
                t = func.functype.results[0]
                if t == I32:
                    return (res or 0) & MASK32
                if t == I64:
                    return (res or 0) & MASK64
                return float(res or 0.0)
            return None
        raise Trap("bad-call", f"function {idx} not compiled")

    def call_indirect(self, type_idx: int, elem_idx: int, args: tuple):
        table = self.instance.table
        if table is None or elem_idx >= len(table.elems):
            raise TrapIndirectCall(f"table index {elem_idx}")
        callee = table.elems[elem_idx]
        if callee is None:
            raise TrapIndirectCall(f"null entry {elem_idx}")
        expected = self.instance.module.types[type_idx]
        if callee.functype != expected:
            raise TrapIndirectCall(str(expected))
        return self.invoke(self.instance.funcs.index(callee), args)

    def atomic_add(self, addr: int, val: int) -> int:
        from .interp import _ATOMIC_LOCK

        with _ATOMIC_LOCK:
            old = self.memory.load_i32(addr)
            self.memory.store_i32(addr, old + val)
        return old

    def atomic_cas(self, addr: int, expected: int, new: int) -> int:
        from .interp import _ATOMIC_LOCK

        with _ATOMIC_LOCK:
            old = self.memory.load_i32(addr)
            if old == expected:
                self.memory.store_i32(addr, new)
        return old


def compile_instance(instance, scheme: str = "none") -> CompiledContext:
    """Compile all defined functions of an instance; returns the context.

    ``ctx.invoke(func_index, args)`` then runs compiled code end-to-end.
    """
    if scheme not in SAFEPOINT_SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}")
    import math

    m = instance.module
    env = {
        "_idiv_s": _idiv_s, "_irem_s": _irem_s, "_clz": _clz, "_ctz": _ctz,
        "_rotl": _rotl, "_trunc": _trunc, "_sgn32": signed32,
        "_sgn64": signed64, "_sext": _sext, "_udiv": _udiv, "_urem": _urem,
        "_fdiv": _fdiv, "_sqrt": math.sqrt, "_ceil": math.ceil,
        "_floor": math.floor, "Trap": Trap,
        "TrapUnreachable": TrapUnreachable,
    }
    ctx = CompiledContext(instance)
    n_imp = m.num_imported_funcs
    for i in range(len(m.funcs)):
        idx = n_imp + i
        src = _FnCompiler(m, idx, scheme).source()
        scope: dict = {}
        exec(compile(src, f"<wasm:{m.name}:f{idx}>", "exec"), env, scope)
        ctx.cfuncs[idx] = scope[f"_f{idx}"]
    return ctx


# small helpers shared with the interpreter semantics
from .interp import _fdiv, _sext, _udiv, _urem  # noqa: E402
