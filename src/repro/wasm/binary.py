"""Binary encoder/decoder for the supported WebAssembly subset.

Produces real ``\\0asm`` binaries: LEB128 integers, standard section ids,
standard opcode bytes.  ``decode_module(encode_module(m))`` round-trips, which
the property-based tests exercise.  The mini-ISA "QEMU" baseline also reuses
the LEB128 primitives.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from .errors import DecodeError
from .module import (
    DataSegment, ElemSegment, Export, Function, Global, Import, Module,
    KIND_FUNC, KIND_GLOBAL, KIND_MEMORY, KIND_TABLE,
)
from .opcodes import (
    BY_BYTE, OPS, IMM_BLOCK, IMM_BRTABLE, IMM_CALLIND, IMM_F64, IMM_I32,
    IMM_I64, IMM_MEM2, IMM_MEMARG, IMM_MEMIDX, IMM_NONE, IMM_U32,
)
from .types import (
    BYTE_VALTYPES, FuncType, GlobalType, Limits, MemoryType, TableType,
    VALTYPE_BYTES,
)

MAGIC = b"\x00asm"
VERSION = b"\x01\x00\x00\x00"

SEC_TYPE = 1
SEC_IMPORT = 2
SEC_FUNC = 3
SEC_TABLE = 4
SEC_MEMORY = 5
SEC_GLOBAL = 6
SEC_EXPORT = 7
SEC_START = 8
SEC_ELEM = 9
SEC_CODE = 10
SEC_DATA = 11

_KIND_BYTES = {KIND_FUNC: 0, KIND_TABLE: 1, KIND_MEMORY: 2, KIND_GLOBAL: 3}
_BYTE_KINDS = {v: k for k, v in _KIND_BYTES.items()}


# --------------------------------------------------------------------------
# LEB128
# --------------------------------------------------------------------------

def encode_uleb(value: int) -> bytes:
    if value < 0:
        raise ValueError("uleb requires non-negative value")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def encode_sleb(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        sign = byte & 0x40
        if (value == 0 and not sign) or (value == -1 and sign):
            out.append(byte)
            return bytes(out)
        out.append(byte | 0x80)


class Reader:
    """Cursor over a bytes buffer with LEB128 primitives."""

    __slots__ = ("buf", "pos", "end")

    def __init__(self, buf: bytes, pos: int = 0, end=None):
        self.buf = buf
        self.pos = pos
        self.end = len(buf) if end is None else end

    def eof(self) -> bool:
        return self.pos >= self.end

    def byte(self) -> int:
        if self.pos >= self.end:
            raise DecodeError("unexpected end of input")
        b = self.buf[self.pos]
        self.pos += 1
        return b

    def bytes(self, n: int) -> bytes:
        if self.pos + n > self.end:
            raise DecodeError("unexpected end of input")
        b = self.buf[self.pos : self.pos + n]
        self.pos += n
        return bytes(b)

    def uleb(self) -> int:
        result = 0
        shift = 0
        while True:
            b = self.byte()
            result |= (b & 0x7F) << shift
            if not b & 0x80:
                return result
            shift += 7
            if shift > 63:
                raise DecodeError("uleb too long")

    def sleb(self) -> int:
        result = 0
        shift = 0
        while True:
            b = self.byte()
            result |= (b & 0x7F) << shift
            shift += 7
            if not b & 0x80:
                if b & 0x40:
                    result |= -(1 << shift)
                return result
            if shift > 70:
                raise DecodeError("sleb too long")

    def name(self) -> str:
        n = self.uleb()
        return self.bytes(n).decode("utf-8")


# --------------------------------------------------------------------------
# Instruction encoding
# --------------------------------------------------------------------------

def _encode_blocktype(result, out: bytearray) -> None:
    if result is None:
        out.append(0x40)
    else:
        out.append(VALTYPE_BYTES[result])


def _encode_instr(instr: tuple, out: bytearray) -> None:
    name = instr[0]
    op = OPS[name]
    if name == "block" or name == "loop":
        out.append(op.byte)
        _encode_blocktype(instr[1], out)
        _encode_body(instr[2], out)
        out.append(0x0B)
        return
    if name == "if":
        out.append(op.byte)
        _encode_blocktype(instr[1], out)
        _encode_body(instr[2], out)
        if len(instr) > 3 and instr[3]:
            out.append(0x05)
            _encode_body(instr[3], out)
        out.append(0x0B)
        return
    if op.byte > 0xFF:  # prefixed ops (0xFC bulk memory, 0xFE atomics)
        out.append(op.byte >> 8)
        out += encode_uleb(op.byte & 0xFF)
        if op.imm == IMM_MEM2:
            out += b"\x00\x00"
        elif op.imm == IMM_MEMARG:
            out += encode_uleb(instr[1])
            out += encode_uleb(instr[2])
        else:
            out.append(0x00)
        return
    out.append(op.byte)
    imm = op.imm
    if imm == IMM_NONE:
        return
    if imm == IMM_U32:
        out += encode_uleb(instr[1])
    elif imm == IMM_MEMARG:
        out += encode_uleb(instr[1])  # align
        out += encode_uleb(instr[2])  # offset
    elif imm == IMM_I32 or imm == IMM_I64:
        out += encode_sleb(instr[1])
    elif imm == IMM_F64:
        out += struct.pack("<d", instr[1])
    elif imm == IMM_BRTABLE:
        targets, default = instr[1], instr[2]
        out += encode_uleb(len(targets))
        for t in targets:
            out += encode_uleb(t)
        out += encode_uleb(default)
    elif imm == IMM_CALLIND:
        out += encode_uleb(instr[1])  # type idx
        out += encode_uleb(instr[2])  # table idx
    elif imm == IMM_MEMIDX:
        out.append(0x00)
    else:
        raise ValueError(f"cannot encode {name}")


def _encode_body(body: list, out: bytearray) -> None:
    for instr in body:
        _encode_instr(instr, out)


def _decode_blocktype(r: Reader):
    b = r.byte()
    if b == 0x40:
        return None
    if b in BYTE_VALTYPES:
        return BYTE_VALTYPES[b]
    raise DecodeError(f"bad blocktype 0x{b:02x}")


def _valtype(r: Reader) -> str:
    b = r.byte()
    vt = BYTE_VALTYPES.get(b)
    if vt is None:
        raise DecodeError(f"bad valtype 0x{b:02x}")
    return vt


def _decode_body(r: Reader, terminators=(0x0B,)) -> Tuple[list, int]:
    """Decode instructions until a terminator byte; returns (body, term)."""
    body: list = []
    while True:
        b = r.byte()
        if b in terminators:
            return body, b
        if b == 0xFC or b == 0xFE:
            sub = r.uleb()
            op = BY_BYTE.get((b << 8) | sub)
            if op is None:
                raise DecodeError(f"unknown 0x{b:02x} op {sub}")
            if op.imm == IMM_MEM2:
                r.byte(); r.byte()
                body.append((op.name,))
            elif op.imm == IMM_MEMARG:
                body.append((op.name, r.uleb(), r.uleb()))
            else:
                r.byte()
                body.append((op.name,))
            continue
        op = BY_BYTE.get(b)
        if op is None:
            raise DecodeError(f"unknown opcode 0x{b:02x}")
        name = op.name
        if name == "block" or name == "loop":
            bt = _decode_blocktype(r)
            inner, _ = _decode_body(r)
            body.append((name, bt, inner))
        elif name == "if":
            bt = _decode_blocktype(r)
            then, term = _decode_body(r, terminators=(0x0B, 0x05))
            els: list = []
            if term == 0x05:
                els, _ = _decode_body(r)
            body.append(("if", bt, then, els))
        elif op.imm == IMM_NONE:
            body.append((name,))
        elif op.imm == IMM_U32:
            body.append((name, r.uleb()))
        elif op.imm == IMM_MEMARG:
            body.append((name, r.uleb(), r.uleb()))
        elif op.imm == IMM_I32 or op.imm == IMM_I64:
            body.append((name, r.sleb()))
        elif op.imm == IMM_F64:
            body.append((name, struct.unpack("<d", r.bytes(8))[0]))
        elif op.imm == IMM_BRTABLE:
            n = r.uleb()
            targets = tuple(r.uleb() for _ in range(n))
            body.append((name, targets, r.uleb()))
        elif op.imm == IMM_CALLIND:
            body.append((name, r.uleb(), r.uleb()))
        elif op.imm == IMM_MEMIDX:
            r.byte()
            body.append((name,))
        else:
            raise DecodeError(f"cannot decode {name}")


def _encode_const_expr(instr: tuple) -> bytes:
    out = bytearray()
    _encode_instr(instr, out)
    out.append(0x0B)
    return bytes(out)


def _decode_const_expr(r: Reader) -> tuple:
    body, _ = _decode_body(r)
    if len(body) != 1:
        raise DecodeError("const expression must be a single instruction")
    return body[0]


# --------------------------------------------------------------------------
# Section encoding
# --------------------------------------------------------------------------

def _encode_limits(limits: Limits) -> bytes:
    if limits.max is None:
        return b"\x00" + encode_uleb(limits.min)
    return b"\x01" + encode_uleb(limits.min) + encode_uleb(limits.max)


def _decode_limits(r: Reader) -> Limits:
    flag = r.byte()
    lo = r.uleb()
    if flag & 0x01:
        return Limits(lo, r.uleb())
    return Limits(lo)


def _encode_functype(ft: FuncType) -> bytes:
    out = bytearray(b"\x60")
    out += encode_uleb(len(ft.params))
    for p in ft.params:
        out.append(VALTYPE_BYTES[p])
    out += encode_uleb(len(ft.results))
    for p in ft.results:
        out.append(VALTYPE_BYTES[p])
    return bytes(out)


def _section(sec_id: int, payload: bytes) -> bytes:
    return bytes([sec_id]) + encode_uleb(len(payload)) + payload


def encode_module(m: Module) -> bytes:
    out = bytearray(MAGIC + VERSION)

    if m.types:
        p = bytearray(encode_uleb(len(m.types)))
        for ft in m.types:
            p += _encode_functype(ft)
        out += _section(SEC_TYPE, bytes(p))

    if m.imports:
        p = bytearray(encode_uleb(len(m.imports)))
        for im in m.imports:
            nm = im.module.encode(); p += encode_uleb(len(nm)) + nm
            nm = im.name.encode(); p += encode_uleb(len(nm)) + nm
            p.append(_KIND_BYTES[im.kind])
            if im.kind == KIND_FUNC:
                p += encode_uleb(im.desc)
            elif im.kind == KIND_MEMORY:
                p += _encode_limits(im.desc.limits)
            elif im.kind == KIND_TABLE:
                p.append(VALTYPE_BYTES[im.desc.elemtype])
                p += _encode_limits(im.desc.limits)
            elif im.kind == KIND_GLOBAL:
                p.append(VALTYPE_BYTES[im.desc.valtype])
                p.append(1 if im.desc.mutable else 0)
        out += _section(SEC_IMPORT, bytes(p))

    if m.funcs:
        p = bytearray(encode_uleb(len(m.funcs)))
        for fn in m.funcs:
            p += encode_uleb(fn.type_idx)
        out += _section(SEC_FUNC, bytes(p))

    if m.tables:
        p = bytearray(encode_uleb(len(m.tables)))
        for t in m.tables:
            p.append(VALTYPE_BYTES[t.elemtype])
            p += _encode_limits(t.limits)
        out += _section(SEC_TABLE, bytes(p))

    if m.memories:
        p = bytearray(encode_uleb(len(m.memories)))
        for mem in m.memories:
            p += _encode_limits(mem.limits)
        out += _section(SEC_MEMORY, bytes(p))

    if m.globals:
        p = bytearray(encode_uleb(len(m.globals)))
        for g in m.globals:
            p.append(VALTYPE_BYTES[g.type.valtype])
            p.append(1 if g.type.mutable else 0)
            p += _encode_const_expr(g.init)
        out += _section(SEC_GLOBAL, bytes(p))

    if m.exports:
        p = bytearray(encode_uleb(len(m.exports)))
        for e in m.exports:
            nm = e.name.encode(); p += encode_uleb(len(nm)) + nm
            p.append(_KIND_BYTES[e.kind])
            p += encode_uleb(e.index)
        out += _section(SEC_EXPORT, bytes(p))

    if m.start is not None:
        out += _section(SEC_START, encode_uleb(m.start))

    if m.elems:
        p = bytearray(encode_uleb(len(m.elems)))
        for el in m.elems:
            p += encode_uleb(el.table_idx)
            p += _encode_const_expr(el.offset)
            p += encode_uleb(len(el.func_idxs))
            for fi in el.func_idxs:
                p += encode_uleb(fi)
        out += _section(SEC_ELEM, bytes(p))

    if m.funcs:
        p = bytearray(encode_uleb(len(m.funcs)))
        for fn in m.funcs:
            body = bytearray()
            # locals as runs of identical types
            runs: List[Tuple[int, str]] = []
            for lt in fn.locals:
                if runs and runs[-1][1] == lt:
                    runs[-1] = (runs[-1][0] + 1, lt)
                else:
                    runs.append((1, lt))
            body += encode_uleb(len(runs))
            for count, lt in runs:
                body += encode_uleb(count)
                body.append(VALTYPE_BYTES[lt])
            _encode_body(fn.body, body)
            body.append(0x0B)
            p += encode_uleb(len(body)) + body
        out += _section(SEC_CODE, bytes(p))

    if m.datas:
        p = bytearray(encode_uleb(len(m.datas)))
        for d in m.datas:
            p += encode_uleb(d.mem_idx)
            p += _encode_const_expr(d.offset)
            p += encode_uleb(len(d.data)) + d.data
        out += _section(SEC_DATA, bytes(p))

    # standard "name" custom section (function-name subsection only):
    # keeps debug names across install/execve so the perf profiler can
    # symbolize guest call stacks from a decoded binary
    named = [(i, fn.name) for i, fn in enumerate(m.funcs) if fn.name]
    if named:
        nimp = sum(1 for im in m.imports if im.kind == KIND_FUNC)
        sub = bytearray(encode_uleb(len(named)))
        for i, nm in named:
            b = nm.encode()
            sub += encode_uleb(nimp + i) + encode_uleb(len(b)) + b
        payload = bytearray(b"\x04name\x01")
        payload += encode_uleb(len(sub)) + bytes(sub)
        out += _section(0, bytes(payload))

    return bytes(out)


# --------------------------------------------------------------------------
# Module decoding
# --------------------------------------------------------------------------

def decode_module(buf: bytes, name: str = "") -> Module:
    if buf[:4] != MAGIC:
        raise DecodeError("bad magic")
    if buf[4:8] != VERSION:
        raise DecodeError("bad version")
    r = Reader(buf, 8)
    m = Module(name=name)
    func_type_idxs: List[int] = []
    func_names: Dict[int, str] = {}
    last_id = 0
    while not r.eof():
        sec_id = r.byte()
        size = r.uleb()
        end = r.pos + size
        if end > len(buf):
            raise DecodeError(f"section {sec_id} extends past end of module")
        if sec_id != 0:
            if sec_id <= last_id:
                raise DecodeError(f"section {sec_id} out of order")
            last_id = sec_id
        sr = Reader(buf, r.pos, end)
        if sec_id == SEC_TYPE:
            for _ in range(sr.uleb()):
                if sr.byte() != 0x60:
                    raise DecodeError("bad functype tag")
                params = tuple(_valtype(sr) for _ in range(sr.uleb()))
                results = tuple(_valtype(sr) for _ in range(sr.uleb()))
                m.types.append(FuncType(params, results))
        elif sec_id == SEC_IMPORT:
            for _ in range(sr.uleb()):
                mod = sr.name()
                nm = sr.name()
                kind = _BYTE_KINDS.get(sr.byte())
                if kind == KIND_FUNC:
                    desc = sr.uleb()
                elif kind == KIND_MEMORY:
                    desc = MemoryType(_decode_limits(sr))
                elif kind == KIND_TABLE:
                    et = _valtype(sr)
                    desc = TableType(_decode_limits(sr), et)
                elif kind == KIND_GLOBAL:
                    vt = _valtype(sr)
                    desc = GlobalType(vt, bool(sr.byte()))
                else:
                    raise DecodeError("bad import kind")
                m.imports.append(Import(mod, nm, kind, desc))
        elif sec_id == SEC_FUNC:
            func_type_idxs = [sr.uleb() for _ in range(sr.uleb())]
        elif sec_id == SEC_TABLE:
            for _ in range(sr.uleb()):
                et = _valtype(sr)
                m.tables.append(TableType(_decode_limits(sr), et))
        elif sec_id == SEC_MEMORY:
            for _ in range(sr.uleb()):
                m.memories.append(MemoryType(_decode_limits(sr)))
        elif sec_id == SEC_GLOBAL:
            for _ in range(sr.uleb()):
                vt = _valtype(sr)
                mut = bool(sr.byte())
                init = _decode_const_expr(sr)
                m.globals.append(Global(GlobalType(vt, mut), init))
        elif sec_id == SEC_EXPORT:
            for _ in range(sr.uleb()):
                nm = sr.name()
                kind = _BYTE_KINDS.get(sr.byte())
                m.exports.append(Export(nm, kind, sr.uleb()))
        elif sec_id == SEC_START:
            m.start = sr.uleb()
        elif sec_id == SEC_ELEM:
            for _ in range(sr.uleb()):
                ti = sr.uleb()
                off = _decode_const_expr(sr)
                fis = [sr.uleb() for _ in range(sr.uleb())]
                m.elems.append(ElemSegment(ti, off, fis))
        elif sec_id == SEC_CODE:
            count = sr.uleb()
            if count != len(func_type_idxs):
                raise DecodeError("code/function section count mismatch")
            for ti in func_type_idxs:
                bsize = sr.uleb()
                bend = sr.pos + bsize
                br_ = Reader(buf, sr.pos, bend)
                locals_: List[str] = []
                for _ in range(br_.uleb()):
                    n = br_.uleb()
                    lt = _valtype(br_)
                    locals_.extend([lt] * n)
                body, _ = _decode_body(br_)
                sr.pos = bend
                m.funcs.append(Function(ti, locals_, body))
        elif sec_id == SEC_DATA:
            for _ in range(sr.uleb()):
                mi = sr.uleb()
                off = _decode_const_expr(sr)
                n = sr.uleb()
                m.datas.append(DataSegment(mi, off, sr.bytes(n)))
        elif sec_id == 0:
            # custom section: only the "name" section (function-name
            # subsection) is understood; anything else, or malformed
            # debug info, is skipped — it can't affect semantics
            try:
                if sr.name() == "name":
                    while not sr.eof():
                        sub_id = sr.byte()
                        sub_end = sr.uleb() + sr.pos
                        if sub_id == 1:  # function names
                            for _ in range(sr.uleb()):
                                idx = sr.uleb()
                                func_names[idx] = sr.name()
                        sr.pos = sub_end
            except (DecodeError, UnicodeDecodeError):
                pass
        else:
            raise DecodeError(f"unknown section id {sec_id}")
        r.pos = end
    if func_names:
        nimp = sum(1 for im in m.imports if im.kind == KIND_FUNC)
        for idx, nm in func_names.items():
            j = idx - nimp
            if 0 <= j < len(m.funcs):
                m.funcs[j].name = nm
    return m
