"""Opcode table for the supported WebAssembly subset.

Each opcode records its real binary byte value (per the wasm core spec), the
kind of immediate operands it carries, and — for "simple" value-in/value-out
instructions — its static stack signature used by the validator and the
flattener.

Stack signatures use one character per value: ``i`` = i32, ``l`` = i64,
``f`` = f64.  Polymorphic instructions (control flow, ``drop``, ``select``,
calls) are handled specially by the validator.
"""

from __future__ import annotations

from .types import I32, I64, F64

CODE_OF = {c: t for c, t in zip("ilf", (I32, I64, F64))}
CHAR_OF = {t: c for c, t in CODE_OF.items()}

# immediate kinds
IMM_NONE = "none"
IMM_U32 = "u32"            # one LEB128 index (call, locals, globals, br...)
IMM_MEMARG = "memarg"      # (align, offset)
IMM_I32 = "i32"            # signed LEB const
IMM_I64 = "i64"            # signed LEB const
IMM_F64 = "f64"            # 8-byte little-endian double
IMM_BRTABLE = "br_table"   # (targets tuple, default)
IMM_CALLIND = "call_ind"   # (type index, table index)
IMM_MEMIDX = "memidx"      # single 0x00 reserved byte
IMM_MEM2 = "mem2"          # two reserved bytes (memory.copy)
IMM_BLOCK = "block"        # structured: handled by binary codec


class Op:
    """Static description of one opcode."""

    __slots__ = ("name", "byte", "imm", "pops", "pushes")

    def __init__(self, name, byte, imm=IMM_NONE, sig=None):
        self.name = name
        self.byte = byte
        self.imm = imm
        if sig is None:
            self.pops = None
            self.pushes = None
        else:
            pops, pushes = sig
            self.pops = tuple(CODE_OF[c] for c in pops)
            self.pushes = tuple(CODE_OF[c] for c in pushes)

    def __repr__(self):
        return f"<op {self.name} 0x{self.byte:02x}>"


def _build():
    ops = []
    add = lambda *a, **k: ops.append(Op(*a, **k))

    # control
    add("unreachable", 0x00)
    add("nop", 0x01, sig=("", ""))
    add("block", 0x02, IMM_BLOCK)
    add("loop", 0x03, IMM_BLOCK)
    add("if", 0x04, IMM_BLOCK)
    add("else", 0x05)
    add("end", 0x0B)
    add("br", 0x0C, IMM_U32)
    add("br_if", 0x0D, IMM_U32)
    add("br_table", 0x0E, IMM_BRTABLE)
    add("return", 0x0F)
    add("call", 0x10, IMM_U32)
    add("call_indirect", 0x11, IMM_CALLIND)

    # parametric
    add("drop", 0x1A)
    add("select", 0x1B)

    # variables
    add("local.get", 0x20, IMM_U32)
    add("local.set", 0x21, IMM_U32)
    add("local.tee", 0x22, IMM_U32)
    add("global.get", 0x23, IMM_U32)
    add("global.set", 0x24, IMM_U32)

    # memory loads
    add("i32.load", 0x28, IMM_MEMARG, ("i", "i"))
    add("i64.load", 0x29, IMM_MEMARG, ("i", "l"))
    add("f64.load", 0x2B, IMM_MEMARG, ("i", "f"))
    add("i32.load8_s", 0x2C, IMM_MEMARG, ("i", "i"))
    add("i32.load8_u", 0x2D, IMM_MEMARG, ("i", "i"))
    add("i32.load16_s", 0x2E, IMM_MEMARG, ("i", "i"))
    add("i32.load16_u", 0x2F, IMM_MEMARG, ("i", "i"))
    add("i64.load8_s", 0x30, IMM_MEMARG, ("i", "l"))
    add("i64.load8_u", 0x31, IMM_MEMARG, ("i", "l"))
    add("i64.load16_s", 0x32, IMM_MEMARG, ("i", "l"))
    add("i64.load16_u", 0x33, IMM_MEMARG, ("i", "l"))
    add("i64.load32_s", 0x34, IMM_MEMARG, ("i", "l"))
    add("i64.load32_u", 0x35, IMM_MEMARG, ("i", "l"))

    # memory stores
    add("i32.store", 0x36, IMM_MEMARG, ("ii", ""))
    add("i64.store", 0x37, IMM_MEMARG, ("il", ""))
    add("f64.store", 0x39, IMM_MEMARG, ("if", ""))
    add("i32.store8", 0x3A, IMM_MEMARG, ("ii", ""))
    add("i32.store16", 0x3B, IMM_MEMARG, ("ii", ""))
    add("i64.store8", 0x3C, IMM_MEMARG, ("il", ""))
    add("i64.store16", 0x3D, IMM_MEMARG, ("il", ""))
    add("i64.store32", 0x3E, IMM_MEMARG, ("il", ""))

    add("memory.size", 0x3F, IMM_MEMIDX, ("", "i"))
    add("memory.grow", 0x40, IMM_MEMIDX, ("i", "i"))

    # constants
    add("i32.const", 0x41, IMM_I32, ("", "i"))
    add("i64.const", 0x42, IMM_I64, ("", "l"))
    add("f64.const", 0x44, IMM_F64, ("", "f"))

    # i32 comparisons
    add("i32.eqz", 0x45, sig=("i", "i"))
    for i, name in enumerate(
        ["eq", "ne", "lt_s", "lt_u", "gt_s", "gt_u", "le_s", "le_u", "ge_s", "ge_u"]
    ):
        add(f"i32.{name}", 0x46 + i, sig=("ii", "i"))

    # i64 comparisons
    add("i64.eqz", 0x50, sig=("l", "i"))
    for i, name in enumerate(
        ["eq", "ne", "lt_s", "lt_u", "gt_s", "gt_u", "le_s", "le_u", "ge_s", "ge_u"]
    ):
        add(f"i64.{name}", 0x51 + i, sig=("ll", "i"))

    # f64 comparisons
    for i, name in enumerate(["eq", "ne", "lt", "gt", "le", "ge"]):
        add(f"f64.{name}", 0x61 + i, sig=("ff", "i"))

    # i32 arithmetic
    for i, name in enumerate(["clz", "ctz", "popcnt"]):
        add(f"i32.{name}", 0x67 + i, sig=("i", "i"))
    for i, name in enumerate(
        ["add", "sub", "mul", "div_s", "div_u", "rem_s", "rem_u",
         "and", "or", "xor", "shl", "shr_s", "shr_u", "rotl", "rotr"]
    ):
        add(f"i32.{name}", 0x6A + i, sig=("ii", "i"))

    # i64 arithmetic
    for i, name in enumerate(["clz", "ctz", "popcnt"]):
        add(f"i64.{name}", 0x79 + i, sig=("l", "l"))
    for i, name in enumerate(
        ["add", "sub", "mul", "div_s", "div_u", "rem_s", "rem_u",
         "and", "or", "xor", "shl", "shr_s", "shr_u", "rotl", "rotr"]
    ):
        add(f"i64.{name}", 0x7C + i, sig=("ll", "l"))

    # f64 arithmetic
    for byte, name in [
        (0x99, "abs"), (0x9A, "neg"), (0x9B, "ceil"), (0x9C, "floor"),
        (0x9D, "trunc"), (0x9E, "nearest"), (0x9F, "sqrt"),
    ]:
        add(f"f64.{name}", byte, sig=("f", "f"))
    for i, name in enumerate(["add", "sub", "mul", "div", "min", "max"]):
        add(f"f64.{name}", 0xA0 + i, sig=("ff", "f"))

    # conversions
    add("i32.wrap_i64", 0xA7, sig=("l", "i"))
    add("i32.trunc_f64_s", 0xAA, sig=("f", "i"))
    add("i32.trunc_f64_u", 0xAB, sig=("f", "i"))
    add("i64.extend_i32_s", 0xAC, sig=("i", "l"))
    add("i64.extend_i32_u", 0xAD, sig=("i", "l"))
    add("i64.trunc_f64_s", 0xB0, sig=("f", "l"))
    add("i64.trunc_f64_u", 0xB1, sig=("f", "l"))
    add("f64.convert_i32_s", 0xB7, sig=("i", "f"))
    add("f64.convert_i32_u", 0xB8, sig=("i", "f"))
    add("f64.convert_i64_s", 0xB9, sig=("l", "f"))
    add("f64.convert_i64_u", 0xBA, sig=("l", "f"))
    add("i32.extend8_s", 0xC0, sig=("i", "i"))
    add("i32.extend16_s", 0xC1, sig=("i", "i"))
    add("i64.extend32_s", 0xC4, sig=("l", "l"))

    # bulk memory (0xFC prefix in the binary format)
    add("memory.copy", 0xFC0A, IMM_MEM2, ("iii", ""))
    add("memory.fill", 0xFC0B, IMM_MEMIDX, ("iii", ""))

    # threads proposal subset (0xFE prefix): enough for guest mutexes
    add("i32.atomic.rmw.add", 0xFE1E, IMM_MEMARG, ("ii", "i"))
    add("i32.atomic.rmw.cmpxchg", 0xFE48, IMM_MEMARG, ("iii", "i"))

    return ops


OPS = {op.name: op for op in _build()}
BY_BYTE = {op.byte: op for op in OPS.values()}

# Engine-internal pseudo instruction emitted by the flattener at safepoints.
# Never appears in binaries.
POLL = "poll"

BLOCK_OPS = frozenset({"block", "loop", "if"})
