"""Instantiation and linking.

``instantiate`` validates a module, resolves its imports against the provided
import object, allocates memory/table/globals, applies data and element
segments, and returns an :class:`Instance` ready to run.

Imports are provided as ``{module_name: {field_name: provider}}`` where a
provider is a :class:`HostFunc`, a plain callable (it will be wrapped with
the declared import type — this is how WALI/WASI host layers register), a
:class:`LinearMemory`, or a :class:`GlobalCell`/int for globals.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .errors import LinkError, Trap
from .flatten import SAFEPOINT_SCHEMES, flatten_function
from .interp import HostFunc, Machine, WasmFunc
from .memory import LinearMemory
from .module import Module, KIND_FUNC, KIND_GLOBAL, KIND_MEMORY, KIND_TABLE
from .types import F64, MASK32, MASK64
from .validate import validate_module


class GlobalCell:
    """A mutable global variable instance."""

    __slots__ = ("valtype", "value", "mutable")

    def __init__(self, valtype: str, value, mutable: bool = True):
        self.valtype = valtype
        self.value = value
        self.mutable = mutable


class Table:
    """A funcref table."""

    __slots__ = ("elems", "max_size")

    def __init__(self, min_size: int, max_size=None):
        self.elems: List[Optional[object]] = [None] * min_size
        self.max_size = max_size


class Instance:
    """A live module instance: code + memory + globals + table."""

    def __init__(self, module: Module, scheme: str = "loop"):
        self.module = module
        self.scheme = scheme
        self.funcs: List[object] = []      # HostFunc | WasmFunc, joint index space
        self.memory: Optional[LinearMemory] = None
        self.globals: List[GlobalCell] = []
        self.table: Optional[Table] = None
        self.exports: Dict[str, object] = {}
        self._machine: Optional[Machine] = None

    # ---- convenience execution ----

    @property
    def machine(self) -> Machine:
        if self._machine is None:
            self._machine = Machine(self)
        return self._machine

    def func_by_name(self, name: str):
        obj = self.exports.get(name)
        if not isinstance(obj, (HostFunc, WasmFunc)):
            raise KeyError(f"no exported function {name!r}")
        return obj

    def invoke(self, name: str, *args):
        return self.machine.invoke(self.func_by_name(name), list(args))

    def func_index_of(self, name: str) -> int:
        obj = self.func_by_name(name)
        return self.funcs.index(obj)

    # ---- fork support ----

    def clone(self) -> "Instance":
        """Copy-on-fork duplicate: memory and mutable state copied, code
        shared.  Used by WALI's ``fork`` passthrough (§3.1)."""
        inst = Instance(self.module, self.scheme)
        inst.funcs = self.funcs  # code is immutable; share
        inst.memory = self.memory.clone() if self.memory is not None else None
        inst.globals = [GlobalCell(g.valtype, g.value, g.mutable)
                        for g in self.globals]
        if self.table is not None:
            t = Table(0, self.table.max_size)
            t.elems = list(self.table.elems)
            inst.table = t
        inst.exports = dict(self.exports)
        # exports referencing memory must point at the clone
        for k, v in inst.exports.items():
            if v is self.memory:
                inst.exports[k] = inst.memory
        return inst

    def thread_clone(self) -> "Instance":
        """Instance-per-thread duplicate (§3.1): *shares* linear memory and
        the funcref table, but gets its own globals (value stack, shadow
        stack pointer) — the "replicated instance" thread model WASI and
        WALI both use."""
        inst = Instance(self.module, self.scheme)
        inst.funcs = self.funcs
        inst.memory = self.memory          # shared!
        inst.table = self.table            # shared!
        inst.globals = [GlobalCell(g.valtype, g.value, g.mutable)
                        for g in self.globals]
        inst.exports = dict(self.exports)
        return inst


def _const_value(instr: tuple, globals_: List[GlobalCell]):
    name = instr[0]
    if name == "i32.const":
        return instr[1] & MASK32
    if name == "i64.const":
        return instr[1] & MASK64
    if name == "f64.const":
        return float(instr[1])
    if name == "global.get":
        return globals_[instr[1]].value
    raise LinkError(f"unsupported constant initialiser {name}")


def instantiate(module: Module, imports: Optional[dict] = None,
                scheme: str = "loop", validate: bool = True,
                run_start: bool = True) -> Instance:
    """Link and initialise a module; returns a live :class:`Instance`."""
    if scheme not in SAFEPOINT_SCHEMES:
        raise ValueError(f"unknown safepoint scheme {scheme!r}")
    if validate:
        validate_module(module)
    imports = imports or {}
    inst = Instance(module, scheme)

    def resolve(mod: str, name: str):
        ns = imports.get(mod)
        if ns is None or name not in ns:
            raise LinkError(f"unresolved import {mod}.{name}")
        return ns[name]

    # --- imports ---
    for im in module.imports:
        provider = resolve(im.module, im.name)
        if im.kind == KIND_FUNC:
            ft = module.types[im.desc]
            if isinstance(provider, HostFunc):
                if provider.functype != ft:
                    raise LinkError(
                        f"import {im.module}.{im.name}: signature mismatch "
                        f"(want {ft}, have {provider.functype})")
                inst.funcs.append(provider)
            elif callable(provider):
                inst.funcs.append(HostFunc(ft, provider, f"{im.module}.{im.name}"))
            else:
                raise LinkError(f"import {im.module}.{im.name}: not a function")
        elif im.kind == KIND_MEMORY:
            if not isinstance(provider, LinearMemory):
                raise LinkError(f"import {im.module}.{im.name}: not a memory")
            if provider.pages < im.desc.limits.min:
                raise LinkError(f"import {im.module}.{im.name}: memory too small")
            inst.memory = provider
        elif im.kind == KIND_GLOBAL:
            if isinstance(provider, GlobalCell):
                inst.globals.append(provider)
            else:
                inst.globals.append(
                    GlobalCell(im.desc.valtype, provider, im.desc.mutable))
        elif im.kind == KIND_TABLE:
            if not isinstance(provider, Table):
                raise LinkError(f"import {im.module}.{im.name}: not a table")
            inst.table = provider

    # --- definitions ---
    for fn in module.funcs:
        ft = module.types[fn.type_idx]
        code = flatten_function(module, fn, scheme)
        inst.funcs.append(WasmFunc(ft, code))

    for mt in module.memories:
        if inst.memory is not None:
            raise LinkError("multiple memories")
        inst.memory = LinearMemory(
            mt.limits.min, mt.limits.max, shared=mt.shared)

    for tt in module.tables:
        if inst.table is not None:
            raise LinkError("multiple tables")
        inst.table = Table(tt.limits.min, tt.limits.max)

    for g in module.globals:
        inst.globals.append(GlobalCell(
            g.type.valtype, _const_value(g.init, inst.globals), g.type.mutable))

    # --- segments ---
    for seg in module.elems:
        if inst.table is None:
            raise LinkError("element segment without table")
        off = _const_value(seg.offset, inst.globals)
        if off + len(seg.func_idxs) > len(inst.table.elems):
            raise LinkError("element segment out of bounds")
        for i, fi in enumerate(seg.func_idxs):
            inst.table.elems[off + i] = inst.funcs[fi]

    for seg in module.datas:
        if inst.memory is None:
            raise LinkError("data segment without memory")
        off = _const_value(seg.offset, inst.globals)
        if off + len(seg.data) > inst.memory.size_bytes:
            raise LinkError("data segment out of bounds")
        inst.memory.data[off:off + len(seg.data)] = seg.data

    # --- exports ---
    for e in module.exports:
        if e.kind == KIND_FUNC:
            inst.exports[e.name] = inst.funcs[e.index]
        elif e.kind == KIND_MEMORY:
            inst.exports[e.name] = inst.memory
        elif e.kind == KIND_GLOBAL:
            inst.exports[e.name] = inst.globals[e.index]
        elif e.kind == KIND_TABLE:
            inst.exports[e.name] = inst.table

    if run_start and module.start is not None:
        inst.machine.invoke(inst.funcs[module.start], [])

    return inst
