"""WASI preview1 surface: function signatures, errno space, rights.

WASI is the W3C capability-based interface the paper contrasts with WALI.
Two implementations live in this package:

* :mod:`repro.wasi.native` — embedded in the engine, touching the kernel
  directly (the status quo the paper criticises: every engine reimplements
  this, inside the TCB);
* :mod:`repro.wasi.overwali` — implemented purely against the WALI import
  surface (the paper's §4.1 ``libuvwasi``-over-WALI result: the same API as
  a sandboxed layer that any WALI-exposing engine can host).

WASI has its own errno numbering (it is not Linux errno!); the table below
maps between them.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..kernel import errno as E
from ..wasm.types import I32, I64, FuncType

MODULE = "wasi_snapshot_preview1"

# ---- WASI errno space (subset) ----
ESUCCESS = 0
E2BIG = 1
EACCES = 2
EAGAIN = 6
EBADF = 8
EEXIST = 20
EFAULT = 21
EINVAL = 28
EIO = 29
EISDIR = 31
ELOOP = 32
ENOENT = 44
ENOMEM = 48
ENOSPC = 51
ENOSYS = 52
ENOTDIR = 54
ENOTEMPTY = 55
ENOTSUP = 58
EPERM = 63
EPIPE = 64
ERANGE = 68
ESPIPE = 70
ENOTCAPABLE = 76

_LINUX_TO_WASI: Dict[int, int] = {
    E.E2BIG: E2BIG, E.EACCES: EACCES, E.EAGAIN: EAGAIN, E.EBADF: EBADF,
    E.EEXIST: EEXIST, E.EFAULT: EFAULT, E.EINVAL: EINVAL, E.EIO: EIO,
    E.EISDIR: EISDIR, E.ELOOP: ELOOP, E.ENOENT: ENOENT, E.ENOMEM: ENOMEM,
    E.ENOSPC: ENOSPC, E.ENOSYS: ENOSYS, E.ENOTDIR: ENOTDIR,
    E.ENOTEMPTY: ENOTEMPTY, E.EPERM: EPERM, E.EPIPE: EPIPE,
    E.ERANGE: ERANGE, E.ESPIPE: ESPIPE,
}


def wasi_errno(linux_errno: int) -> int:
    return _LINUX_TO_WASI.get(linux_errno, EINVAL)


# ---- filetype ----
FILETYPE_UNKNOWN = 0
FILETYPE_BLOCK_DEVICE = 1
FILETYPE_CHARACTER_DEVICE = 2
FILETYPE_DIRECTORY = 3
FILETYPE_REGULAR_FILE = 4
FILETYPE_SOCKET_STREAM = 6
FILETYPE_SYMBOLIC_LINK = 7

# ---- open flags (oflags) ----
OFLAGS_CREAT = 1
OFLAGS_DIRECTORY = 2
OFLAGS_EXCL = 4
OFLAGS_TRUNC = 8

# fdflags
FDFLAGS_APPEND = 1
FDFLAGS_NONBLOCK = 4

# rights (subset)
RIGHTS_FD_READ = 1 << 1
RIGHTS_FD_WRITE = 1 << 6
RIGHTS_PATH_OPEN = 1 << 13
RIGHTS_ALL = (1 << 30) - 1

# lookupflags
LOOKUPFLAGS_SYMLINK_FOLLOW = 1

# whence
WHENCE_SET, WHENCE_CUR, WHENCE_END = 0, 1, 2

# clock ids
CLOCKID_REALTIME = 0
CLOCKID_MONOTONIC = 1


def _ft(params: str, has_result: bool = True) -> FuncType:
    types = tuple(I64 if c == "l" else I32 for c in params)
    return FuncType(types, (I32,) if has_result else ())


# WASI preview1 functions we model: name -> FuncType
FUNCTIONS: Dict[str, FuncType] = {
    "args_sizes_get": _ft("ii"),
    "args_get": _ft("ii"),
    "environ_sizes_get": _ft("ii"),
    "environ_get": _ft("ii"),
    "clock_time_get": _ft("ili"),
    "fd_close": _ft("i"),
    "fd_datasync": _ft("i"),
    "fd_sync": _ft("i"),
    "fd_fdstat_get": _ft("ii"),
    "fd_fdstat_set_flags": _ft("ii"),
    "fd_filestat_get": _ft("ii"),
    "fd_filestat_set_size": _ft("il"),
    "fd_prestat_get": _ft("ii"),
    "fd_prestat_dir_name": _ft("iii"),
    "fd_read": _ft("iiii"),
    "fd_write": _ft("iiii"),
    "fd_pread": _ft("iiili"),
    "fd_pwrite": _ft("iiili"),
    "fd_seek": _ft("ilii"),
    "fd_tell": _ft("ii"),
    "fd_readdir": _ft("iiili"),
    "fd_renumber": _ft("ii"),
    "path_open": _ft("iiiiillii"),
    "path_filestat_get": _ft("iiiii"),
    "path_create_directory": _ft("iii"),
    "path_remove_directory": _ft("iii"),
    "path_unlink_file": _ft("iii"),
    "path_rename": _ft("iiiiii"),
    "path_symlink": _ft("iiiii"),
    "path_readlink": _ft("iiiiii"),
    "proc_exit": FuncType((I32,), ()),
    "random_get": _ft("ii"),
    "sched_yield": _ft(""),
}


# WASI filestat layout: dev u64, ino u64, filetype u8(+pad to 8), nlink u64,
# size u64, atim u64, mtim u64, ctim u64  (64 bytes)
FILESTAT_SIZE = 64


def filetype_of_mode(mode: int) -> int:
    kind = mode & 0o170000
    return {
        0o100000: FILETYPE_REGULAR_FILE,
        0o040000: FILETYPE_DIRECTORY,
        0o120000: FILETYPE_SYMBOLIC_LINK,
        0o020000: FILETYPE_CHARACTER_DEVICE,
        0o140000: FILETYPE_SOCKET_STREAM,
    }.get(kind, FILETYPE_UNKNOWN)
