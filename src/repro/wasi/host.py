"""WASI preview1 implemented over two backends.

:class:`WasiHost` contains the API logic (arg marshalling, capability
sandbox, WASI struct encoding) and delegates primitive operations to a
backend:

* :class:`repro.wasi.native.NativeBackend` — direct kernel access, i.e. the
  traditional engine-embedded WASI implementation (lives inside the TCB,
  re-implements pointer marshalling — the complexity §1.1 complains about);
* :class:`WaliBackend` — **only** calls WALI name-bound imports, proving the
  paper's layering claim (§4.1): the same WASI implementation runs on any
  engine that exposes WALI, outside the engine TCB.  Its scratch memory is
  allocated *through WALI mmap* inside the guest's linear memory, exactly
  like a compiled-to-Wasm libuvwasi would.

The capability model is enforced here, not in the backend: preopened
directories, no absolute paths, no ``..`` escape (``ENOTCAPABLE``).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from ..kernel.errno import KernelError
from ..wasm.errors import GuestExit
from ..wasm.interp import HostFunc
from . import spec
from .spec import FUNCTIONS, MODULE, wasi_errno


class Backend:
    """Primitive syscall access used by the WASI logic.

    The contract is deliberately the WALI contract: ``sys`` takes raw
    (pointer-bearing) arguments and returns the Linux result/-errno, and
    ``support`` exposes the argv/env calls of §3.4.
    """

    def sys(self, name: str, *args) -> int:
        raise NotImplementedError

    def support(self, name: str, *args) -> int:
        raise NotImplementedError

    @property
    def memory(self):
        raise NotImplementedError


class WaliBackend(Backend):
    """Layered implementation: every primitive is a WALI import call."""

    def __init__(self, wali_ns: Dict[str, HostFunc], memory_ref):
        self.ns = wali_ns
        self._memory_ref = memory_ref
        self.calls_made: List[str] = []

    @property
    def memory(self):
        return self._memory_ref()

    def sys(self, name: str, *args) -> int:
        import_name = f"SYS_{name}"
        fn = self.ns.get(import_name)
        if fn is None:
            raise KeyError(f"WALI does not export {import_name}")
        self.calls_made.append(name)
        return fn.fn(*args)

    def support(self, name: str, *args) -> int:
        return self.ns[name].fn(*args)


class WasiHost:
    """The WASI preview1 API over a backend."""

    SCRATCH_SIZE = 65536

    def __init__(self, backend: Backend, preopens: Optional[Dict] = None):
        self.backend = backend
        self.preopens: Dict[int, str] = {}
        self._want_preopens = preopens or {"/": "/"}
        self._scratch = 0
        self._initialised = False
        self.call_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # lazy init: allocate scratch + preopens through the backend
    # ------------------------------------------------------------------

    def _ensure_init(self):
        if self._initialised:
            return
        self._initialised = True
        # scratch buffer inside guest linear memory, via WALI mmap —
        # the adapter sandboxes itself exactly like guest code would.
        r = self.backend.sys("mmap", 0, self.SCRATCH_SIZE, 3, 0x22, -1, 0)
        if r < 0:
            raise RuntimeError("WASI adapter could not allocate scratch")
        self._scratch = r
        for guest_path in self._want_preopens.values():
            fd = self._open_host_path(guest_path, 0o200000, 0)  # O_DIRECTORY
            if fd >= 0:
                self.preopens[fd] = guest_path

    def _open_host_path(self, path: str, flags: int, mode: int) -> int:
        self._write_scratch_cstr(path)
        return self.backend.sys("openat", -100, self._scratch, flags, mode)

    # ------------------------------------------------------------------
    # memory helpers
    # ------------------------------------------------------------------

    @property
    def mem(self):
        return self.backend.memory

    def _write_scratch_cstr(self, s: str) -> int:
        data = s.encode() + b"\x00"
        self.mem.write(self._scratch, data)
        return self._scratch

    def _read_path(self, ptr: int, length: int) -> str:
        return self.mem.read_bytes(ptr, length).decode("utf-8",
                                                       "surrogateescape")

    # ------------------------------------------------------------------
    # capability sandbox
    # ------------------------------------------------------------------

    def _check_caps(self, dirfd: int, path: str) -> None:
        if path.startswith("/"):
            raise _WasiErr(spec.ENOTCAPABLE)
        depth = 0
        for comp in path.split("/"):
            if comp == "..":
                depth -= 1
            elif comp and comp != ".":
                depth += 1
            if depth < 0:
                raise _WasiErr(spec.ENOTCAPABLE)

    # ------------------------------------------------------------------
    # import object
    # ------------------------------------------------------------------

    def imports(self) -> dict:
        ns = {}
        for name, ft in FUNCTIONS.items():
            method = getattr(self, name)
            ns[name] = HostFunc(ft, self._wrap(name, method), name)
        return {MODULE: ns}

    def _wrap(self, name, method):
        def call(*args):
            self._ensure_init()
            self.call_counts[name] = self.call_counts.get(name, 0) + 1
            try:
                res = method(*args)
                return spec.ESUCCESS if res is None else res
            except _WasiErr as exc:
                return exc.errno
        return call

    def _sys(self, name: str, *args) -> int:
        """Backend call; negative results raise the mapped WASI errno."""
        r = self.backend.sys(name, *args)
        if isinstance(r, int) and r < 0:
            raise _WasiErr(wasi_errno(-r))
        return r

    # ------------------------------------------------------------------
    # args / environ
    # ------------------------------------------------------------------

    def _arg_strings(self) -> List[bytes]:
        out = []
        n = self.backend.support("get_argc")
        for i in range(n):
            ln = self.backend.support("copy_argv", self._scratch, i)
            out.append(self.mem.read_bytes(self._scratch, max(ln - 1, 0)))
        return out

    def _env_strings(self) -> List[bytes]:
        out = []
        n = self.backend.support("get_envc")
        for i in range(n):
            ln = self.backend.support("copy_env", self._scratch, i)
            out.append(self.mem.read_bytes(self._scratch, max(ln - 1, 0)))
        return out

    def args_sizes_get(self, argc_ptr, size_ptr):
        args = self._arg_strings()
        self.mem.store_i32(argc_ptr, len(args))
        self.mem.store_i32(size_ptr, sum(len(a) + 1 for a in args))

    def args_get(self, argv_ptr, buf_ptr):
        off = buf_ptr
        for i, arg in enumerate(self._arg_strings()):
            self.mem.store_i32(argv_ptr + 4 * i, off)
            self.mem.write(off, arg + b"\x00")
            off += len(arg) + 1

    def environ_sizes_get(self, count_ptr, size_ptr):
        envs = self._env_strings()
        self.mem.store_i32(count_ptr, len(envs))
        self.mem.store_i32(size_ptr, sum(len(e) + 1 for e in envs))

    def environ_get(self, env_ptr, buf_ptr):
        off = buf_ptr
        for i, env in enumerate(self._env_strings()):
            self.mem.store_i32(env_ptr + 4 * i, off)
            self.mem.write(off, env + b"\x00")
            off += len(env) + 1

    # ------------------------------------------------------------------
    # clocks / random / yield / exit
    # ------------------------------------------------------------------

    def clock_time_get(self, clock_id, precision, time_ptr):
        self._sys("clock_gettime", clock_id, self._scratch)
        sec = self.mem.load_i64(self._scratch)
        nsec = self.mem.load_i64(self._scratch + 8)
        self.mem.store_i64(time_ptr, sec * 10**9 + nsec)

    def random_get(self, buf, length):
        self._sys("getrandom", buf, length, 0)

    def sched_yield(self):
        self._sys("sched_yield")

    def proc_exit(self, code):
        self.backend.sys("exit_group", code)
        raise GuestExit(code)

    # ------------------------------------------------------------------
    # fd operations
    # ------------------------------------------------------------------

    def fd_close(self, fd):
        self._sys("close", fd)
        self.preopens.pop(fd, None)

    def fd_datasync(self, fd):
        self._sys("fdatasync", fd)

    def fd_sync(self, fd):
        self._sys("fsync", fd)

    def fd_read(self, fd, iovs, iovs_len, nread_ptr):
        n = self._sys("readv", fd, iovs, iovs_len)
        self.mem.store_i32(nread_ptr, n)

    def fd_write(self, fd, iovs, iovs_len, nwritten_ptr):
        n = self._sys("writev", fd, iovs, iovs_len)
        self.mem.store_i32(nwritten_ptr, n)

    def fd_pread(self, fd, iovs, iovs_len, offset, nread_ptr):
        total = 0
        for i in range(iovs_len):
            base = self.mem.load_i32(iovs + 8 * i)
            length = self.mem.load_i32(iovs + 8 * i + 4)
            n = self._sys("pread64", fd, base, length, offset + total)
            total += n
            if n < length:
                break
        self.mem.store_i32(nread_ptr, total)

    def fd_pwrite(self, fd, iovs, iovs_len, offset, nwritten_ptr):
        total = 0
        for i in range(iovs_len):
            base = self.mem.load_i32(iovs + 8 * i)
            length = self.mem.load_i32(iovs + 8 * i + 4)
            total += self._sys("pwrite64", fd, base, length, offset + total)
        self.mem.store_i32(nwritten_ptr, total)

    def fd_seek(self, fd, offset, whence, newoffset_ptr):
        pos = self._sys("lseek", fd, offset, whence)
        self.mem.store_i64(newoffset_ptr, pos)

    def fd_tell(self, fd, offset_ptr):
        pos = self._sys("lseek", fd, 0, spec.WHENCE_CUR)
        self.mem.store_i64(offset_ptr, pos)

    def fd_fdstat_get(self, fd, buf):
        self._sys("fstat", fd, self._scratch)
        from ..wali.layout import GUEST_LAYOUT
        st = GUEST_LAYOUT.decode_stat(
            self.mem.read_bytes(self._scratch, GUEST_LAYOUT.stat_size))
        flags = self._sys("fcntl", fd, 3, 0)  # F_GETFL
        fdflags = 0
        if flags & 0o2000:
            fdflags |= spec.FDFLAGS_APPEND
        if flags & 0o4000:
            fdflags |= spec.FDFLAGS_NONBLOCK
        self.mem.write(buf, struct.pack(
            "<BxHxxxxQQ", spec.filetype_of_mode(st.st_mode), fdflags,
            spec.RIGHTS_ALL, spec.RIGHTS_ALL))

    def fd_fdstat_set_flags(self, fd, fdflags):
        flags = 0
        if fdflags & spec.FDFLAGS_APPEND:
            flags |= 0o2000
        if fdflags & spec.FDFLAGS_NONBLOCK:
            flags |= 0o4000
        self._sys("fcntl", fd, 4, flags)  # F_SETFL

    def _filestat_bytes(self, stat_scratch: int) -> bytes:
        from ..wali.layout import GUEST_LAYOUT
        st = GUEST_LAYOUT.decode_stat(
            self.mem.read_bytes(stat_scratch, GUEST_LAYOUT.stat_size))
        return struct.pack(
            "<QQBxxxxxxxQQQQQ", st.st_dev, st.st_ino,
            spec.filetype_of_mode(st.st_mode), st.st_nlink, st.st_size,
            st.st_atime_ns, st.st_mtime_ns, st.st_ctime_ns)

    def fd_filestat_get(self, fd, buf):
        self._sys("fstat", fd, self._scratch)
        self.mem.write(buf, self._filestat_bytes(self._scratch))

    def fd_filestat_set_size(self, fd, size):
        self._sys("ftruncate", fd, size)

    def fd_prestat_get(self, fd, buf):
        if fd not in self.preopens:
            raise _WasiErr(spec.EBADF)
        name = self.preopens[fd].encode()
        self.mem.write(buf, struct.pack("<BxxxI", 0, len(name)))

    def fd_prestat_dir_name(self, fd, path_ptr, path_len):
        if fd not in self.preopens:
            raise _WasiErr(spec.EBADF)
        name = self.preopens[fd].encode()[:path_len]
        self.mem.write(path_ptr, name)

    def fd_readdir(self, fd, buf, buf_len, cookie, bufused_ptr):
        # read the raw dirent64 stream through WALI, convert to WASI dirents
        n = self._sys("getdents64", fd, self._scratch, self.SCRATCH_SIZE // 2)
        raw = self.mem.read_bytes(self._scratch, n)
        out = bytearray()
        off = 0
        index = 0
        while off < len(raw):
            ino, _doff, reclen, dtype = struct.unpack_from("<QQHB", raw, off)
            name = raw[off + 19:raw.index(b"\x00", off + 19)]
            off += reclen
            index += 1
            if index <= cookie:
                continue
            rec = struct.pack("<QQIBxxx", index, ino, len(name),
                              _wasi_dtype(dtype)) + name
            if len(out) + len(rec) > buf_len:
                break
            out += rec
        self.mem.write(buf, bytes(out))
        self.mem.store_i32(bufused_ptr, len(out))

    def fd_renumber(self, from_fd, to_fd):
        self._sys("dup2", from_fd, to_fd)
        self._sys("close", from_fd)

    # ------------------------------------------------------------------
    # path operations
    # ------------------------------------------------------------------

    def _path_arg(self, dirfd, path_ptr, path_len) -> Tuple[int, int]:
        path = self._read_path(path_ptr, path_len)
        self._check_caps(dirfd, path)
        # NUL-terminate in scratch (offset past the stat area)
        addr = self._scratch + 1024
        self.mem.write(addr, path.encode() + b"\x00")
        return dirfd, addr

    def path_open(self, dirfd, lookup_flags, path_ptr, path_len, oflags,
                  rights_base, rights_inherit, fdflags, fd_ptr):
        dirfd, path_addr = self._path_arg(dirfd, path_ptr, path_len)
        flags = 0
        if oflags & spec.OFLAGS_CREAT:
            flags |= 0o100
        if oflags & spec.OFLAGS_EXCL:
            flags |= 0o200
        if oflags & spec.OFLAGS_TRUNC:
            flags |= 0o1000
        if oflags & spec.OFLAGS_DIRECTORY:
            flags |= 0o200000
        if fdflags & spec.FDFLAGS_APPEND:
            flags |= 0o2000
        if fdflags & spec.FDFLAGS_NONBLOCK:
            flags |= 0o4000
        readable = bool(rights_base & spec.RIGHTS_FD_READ)
        writable = bool(rights_base & spec.RIGHTS_FD_WRITE) and \
            not oflags & spec.OFLAGS_DIRECTORY
        if readable and writable:
            flags |= 0o2
        elif writable:
            flags |= 0o1
        fd = self._sys("openat", dirfd, path_addr, flags, 0o644)
        self.mem.store_i32(fd_ptr, fd)

    def path_filestat_get(self, dirfd, lookup_flags, path_ptr, path_len,
                          buf):
        dirfd, path_addr = self._path_arg(dirfd, path_ptr, path_len)
        at_flags = 0
        if not lookup_flags & spec.LOOKUPFLAGS_SYMLINK_FOLLOW:
            at_flags |= 0x100  # AT_SYMLINK_NOFOLLOW
        self._sys("newfstatat", dirfd, path_addr, self._scratch, at_flags)
        self.mem.write(buf, self._filestat_bytes(self._scratch))

    def path_create_directory(self, dirfd, path_ptr, path_len):
        dirfd, path_addr = self._path_arg(dirfd, path_ptr, path_len)
        self._sys("mkdirat", dirfd, path_addr, 0o755)

    def path_remove_directory(self, dirfd, path_ptr, path_len):
        dirfd, path_addr = self._path_arg(dirfd, path_ptr, path_len)
        self._sys("unlinkat", dirfd, path_addr, 0x200)  # AT_REMOVEDIR

    def path_unlink_file(self, dirfd, path_ptr, path_len):
        dirfd, path_addr = self._path_arg(dirfd, path_ptr, path_len)
        self._sys("unlinkat", dirfd, path_addr, 0)

    def path_rename(self, old_dirfd, old_ptr, old_len, new_dirfd, new_ptr,
                    new_len):
        old_dirfd, old_addr = self._path_arg(old_dirfd, old_ptr, old_len)
        new_path = self._read_path(new_ptr, new_len)
        self._check_caps(new_dirfd, new_path)
        new_addr = self._scratch + 2048
        self.mem.write(new_addr, new_path.encode() + b"\x00")
        self._sys("renameat", old_dirfd, old_addr, new_dirfd, new_addr)

    def path_symlink(self, target_ptr, target_len, dirfd, path_ptr,
                     path_len):
        target = self._read_path(target_ptr, target_len)
        dirfd, path_addr = self._path_arg(dirfd, path_ptr, path_len)
        target_addr = self._scratch + 2048
        self.mem.write(target_addr, target.encode() + b"\x00")
        self._sys("symlinkat", target_addr, dirfd, path_addr)

    def path_readlink(self, dirfd, path_ptr, path_len, buf, buf_len,
                      nread_ptr):
        dirfd, path_addr = self._path_arg(dirfd, path_ptr, path_len)
        n = self._sys("readlinkat", dirfd, path_addr, buf, buf_len)
        self.mem.store_i32(nread_ptr, n)


class _WasiErr(Exception):
    def __init__(self, errno: int):
        self.errno = errno
        super().__init__(f"wasi errno {errno}")


def _wasi_dtype(linux_dtype: int) -> int:
    return {4: spec.FILETYPE_DIRECTORY, 8: spec.FILETYPE_REGULAR_FILE,
            10: spec.FILETYPE_SYMBOLIC_LINK,
            2: spec.FILETYPE_CHARACTER_DEVICE}.get(
                linux_dtype, spec.FILETYPE_UNKNOWN)
