"""The engine-embedded WASI backend: direct kernel access.

This is the "status quo" implementation style the paper argues against:
the engine itself must re-implement pointer translation, struct encoding
and fd semantics for every WASI primitive — all inside the trusted
computing base.  It exists here so the layering comparison is concrete:
``NativeBackend`` re-implements marshalling that ``WaliBackend`` gets for
free from the single WALI implementation.
"""

from __future__ import annotations

import struct
from typing import List

from ..kernel import Kernel
from ..kernel.errno import ENOSYS, KernelError
from ..kernel.mm import MAP_ANONYMOUS, MAP_PRIVATE, PROT_READ, PROT_WRITE
from ..kernel.process import Process
from ..wali.layout import GUEST_LAYOUT
from .host import Backend


class NativeBackend(Backend):
    """WASI primitives implemented directly against the kernel."""

    def __init__(self, kernel: Kernel, proc: Process, memory_ref):
        self.kernel = kernel
        self.proc = proc
        self._memory_ref = memory_ref

    @property
    def memory(self):
        return self._memory_ref()

    # ---- the §3.4-style support calls, implemented natively ----

    def support(self, name: str, *args) -> int:
        argv = self.proc.argv
        envs = [f"{k}={v}" for k, v in self.proc.environ.items()]
        if name == "get_argc":
            return len(argv)
        if name == "get_envc":
            return len(envs)
        if name == "get_argv_len":
            return len(argv[args[0]].encode()) + 1
        if name == "get_env_len":
            return len(envs[args[0]].encode()) + 1
        if name == "copy_argv":
            data = argv[args[1]].encode()
            self.memory.write_cstr(args[0], data)
            return len(data) + 1
        if name == "copy_env":
            data = envs[args[1]].encode()
            self.memory.write_cstr(args[0], data)
            return len(data) + 1
        raise KeyError(name)

    # ---- primitive syscalls with engine-side marshalling ----

    def sys(self, name: str, *args) -> int:
        try:
            return self._dispatch(name, *args)
        except KernelError as exc:
            return -exc.errno

    def _cstr(self, ptr: int) -> str:
        return self.memory.read_cstr(ptr).decode("utf-8", "surrogateescape")

    def _iovecs(self, iov: int, n: int) -> List[tuple]:
        mem = self.memory
        return [(mem.load_i32(iov + 8 * i), mem.load_i32(iov + 8 * i + 4))
                for i in range(n)]

    def _dispatch(self, name: str, *a) -> int:
        mem = self.memory
        k = self.kernel
        p = self.proc
        if name == "mmap":
            res = k.call(p, "mmap", a[0], a[1],
                         (a[2] or PROT_READ | PROT_WRITE),
                         a[3] or (MAP_PRIVATE | MAP_ANONYMOUS), a[4], a[5])
            mem.fill(res.addr, 0, (a[1] + 4095) & ~4095)
            if res.populate is not None:
                mem.write(res.addr, res.populate)
            return res.addr
        if name == "openat":
            return k.call(p, "openat", _s32(a[0]), self._cstr(a[1]), a[2],
                          a[3])
        if name == "close":
            return k.call(p, "close", a[0])
        if name == "readv":
            total = 0
            for base, length in self._iovecs(a[1], a[2]):
                data = k.call(p, "read", a[0], length)
                mem.write(base, data)
                total += len(data)
                if len(data) < length:
                    break
            return total
        if name == "writev":
            bufs = [mem.read(base, length)
                    for base, length in self._iovecs(a[1], a[2])]
            return k.call(p, "writev", a[0], bufs)
        if name == "pread64":
            data = k.call(p, "pread64", a[0], a[2], a[3])
            mem.write(a[1], data)
            return len(data)
        if name == "pwrite64":
            return k.call(p, "pwrite64", a[0], mem.read(a[1], a[2]), a[3])
        if name == "lseek":
            return k.call(p, "lseek", a[0], a[1], a[2])
        if name == "fstat":
            st = k.call(p, "fstat", a[0])
            mem.write(a[1], GUEST_LAYOUT.encode_stat(st))
            return 0
        if name == "newfstatat":
            st = k.call(p, "newfstatat", _s32(a[0]), self._cstr(a[1]), a[3])
            mem.write(a[2], GUEST_LAYOUT.encode_stat(st))
            return 0
        if name == "fcntl":
            return k.call(p, "fcntl", a[0], a[1], a[2])
        if name == "ftruncate":
            return k.call(p, "ftruncate", a[0], a[1])
        if name == "mkdirat":
            return k.call(p, "mkdirat", _s32(a[0]), self._cstr(a[1]), a[2])
        if name == "unlinkat":
            return k.call(p, "unlinkat", _s32(a[0]), self._cstr(a[1]), a[2])
        if name == "renameat":
            return k.call(p, "renameat", _s32(a[0]), self._cstr(a[1]),
                          _s32(a[2]), self._cstr(a[3]))
        if name == "symlinkat":
            return k.call(p, "symlinkat", self._cstr(a[0]), _s32(a[1]),
                          self._cstr(a[2]))
        if name == "readlinkat":
            target = k.call(p, "readlinkat", _s32(a[0]),
                            self._cstr(a[1])).encode()[:a[3]]
            mem.write(a[2], target)
            return len(target)
        if name == "getdents64":
            from ..wali.layout import Layout
            entries = k.call(p, "getdents64", a[0])
            data, packed = Layout.encode_dirents(entries, a[2])
            if packed < len(entries):
                p.fdtable.get(a[0]).offset -= len(entries) - packed
            mem.write(a[1], data)
            return len(data)
        if name == "clock_gettime":
            ns = k.call(p, "clock_gettime", a[0])
            mem.write(a[1], struct.pack("<qq", ns // 10**9, ns % 10**9))
            return 0
        if name == "getrandom":
            data = k.call(p, "getrandom", a[1], a[2])
            mem.write(a[0], data)
            return len(data)
        if name == "sched_yield":
            return k.call(p, "sched_yield")
        if name == "dup2":
            return k.call(p, "dup2", a[0], a[1])
        if name == "fsync":
            return k.call(p, "fsync", a[0])
        if name == "fdatasync":
            return k.call(p, "fdatasync", a[0])
        if name == "exit_group":
            return k.call(p, "exit_group", a[0])
        raise KernelError(ENOSYS, name)


def _s32(x: int) -> int:
    x &= 0xFFFFFFFF
    return x - 0x100000000 if x >= 0x80000000 else x
