"""The porting matrix (Table 1): which API can host which application.

The paper's method is static: an application "ports" to an API iff every
system facility it links against exists in that API's surface.  Our apps
declare their needs in the import section (name-bound WALI syscalls), so the
matrix falls out of set containment — a missing feature means the app would
not even compile against that target, exactly as §4.1 observes.

Readiness-source coverage (the Table-1 columns widened per PR): sockets,
pipes, eventfd, timerfd, epoll, io_uring, **inotify** and **signalfd**
are all WALI rows; WASI preview1 stops at poll_oneoff-style readiness,
and WASIX adds sockets/signals but exposes neither filesystem events nor
fd-based signal consumption — so file-watcher workloads (``watchd``,
tail -F, build daemons) port only to WALI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..wali.host import implemented_names
from ..wasm import Module

# WASI preview1 expressible syscall surface (via its own API shapes)
WASI_SYSCALLS = frozenset({
    "read", "write", "readv", "writev", "openat", "close", "lseek",
    "pread64", "pwrite64", "fstat", "newfstatat", "fcntl", "ftruncate",
    "mkdirat", "unlinkat", "renameat", "symlinkat", "readlinkat",
    "getdents64", "fdatasync", "fsync", "clock_gettime", "getrandom",
    "sched_yield", "exit", "exit_group", "poll", "ppoll",
})

# WASIX: "a rogue superset of WASI" — adds processes, signals, plain mmap,
# basic sockets, dup and threads; still missing mremap, identity management
# (users/groups), ioctl, socketpair and process groups.
WASIX_SYSCALLS = WASI_SYSCALLS | frozenset({
    "fork", "vfork", "execve", "wait4", "kill", "tgkill", "rt_sigaction",
    "rt_sigprocmask", "pause", "alarm", "dup", "dup2", "dup3", "pipe",
    "pipe2", "socket", "bind", "listen", "accept", "accept4", "connect",
    "sendto", "recvfrom", "shutdown", "clone", "futex", "getpid", "gettid",
    "getppid", "chdir", "getcwd", "nanosleep", "set_tid_address",
    "setsockopt", "getsockopt", "mmap", "munmap", "msync", "madvise",
    "mprotect", "brk", "rt_sigpending", "rt_sigsuspend", "setitimer",
    "getitimer", "sched_getaffinity",
})

# feature labels for the "Missing Features" column of Table 1
FEATURE_OF_SYSCALL = {
    "rt_sigaction": "signals", "rt_sigprocmask": "signals", "kill": "signals",
    "pause": "signals", "alarm": "signals", "rt_sigreturn": "signals",
    "mmap": "mmap", "munmap": "mmap", "msync": "mmap",
    "mremap": "mremap",
    "fork": "processes", "execve": "processes", "wait4": "wait4",
    "clone": "threads", "futex": "threads",
    "dup": "dup", "dup2": "dup", "dup3": "dup", "pipe2": "pipes",
    "socket": "sockets", "accept": "sockets", "connect": "sockets",
    "setsockopt": "sockopt", "getsockopt": "sockopt",
    "socketpair": "socketpair",
    "getuid": "users", "setuid": "users", "getgid": "users",
    "setpgid": "pgroups", "getpgid": "pgroups", "setsid": "pgroups",
    "ioctl": "ioctl", "uname": "sysinfo", "sysinfo": "sysinfo",
    "getrusage": "rusage", "prlimit64": "rlimits",
    "chmod": "chmod", "fchmodat": "chmod", "fchmod": "chmod",
    "mkdir": "dirs", "rename": "dirs", "unlink": "dirs", "rmdir": "dirs",
    "readlink": "symlinks", "symlink": "symlinks",
    "open": "legacy-open", "stat": "legacy-stat", "access": "legacy-access",
    "chown": "users", "fchownat": "users", "lchown": "users",
    "sendfile": "sendfile", "memfd_create": "memfd",
    "getrlimit": "rlimits", "setrlimit": "rlimits",
    "sched_getaffinity": "affinity", "sched_setaffinity": "affinity",
    "statfs": "statfs", "fstatfs": "statfs",
    "gettimeofday": "time", "times": "time",
    "getsockname": "sockets", "getpeername": "sockets",
    "sendmsg": "sockets", "recvmsg": "sockets",
    "sigaltstack": "signals", "rt_sigpending": "signals",
    "rt_sigsuspend": "signals", "rt_sigtimedwait": "signals",
    "setitimer": "signals", "getitimer": "signals",
    "prctl": "prctl", "arch_prctl": "prctl",
    "syslog": "syslog", "umask": "umask", "fchdir": "dirs",
    "flock": "locks", "utimensat": "times", "truncate": "truncate",
    "mprotect": "mmap", "madvise": "mmap", "mincore": "mmap", "brk": "mmap",
    "getrandom": "random", "set_robust_list": "threads",
    "getpgrp": "pgroups", "getsid": "pgroups", "setgid": "users",
    "geteuid": "users", "getegid": "users",
    "fadvise64": "fadvise", "readahead": "fadvise",
    "faccessat": "access", "faccessat2": "access", "statx": "statx",
    "lstat": "legacy-stat", "linkat": "links", "link": "links",
    "renameat2": "dirs", "select": "select", "pselect6": "select",
    "eventfd2": "eventfd", "epoll_create1": "epoll", "epoll_ctl": "epoll",
    "epoll_pwait": "epoll", "epoll_create": "epoll", "epoll_wait": "epoll",
    "timerfd_create": "timerfd", "timerfd_settime": "timerfd",
    "timerfd_gettime": "timerfd",
    "inotify_init1": "inotify", "inotify_add_watch": "inotify",
    "inotify_rm_watch": "inotify", "signalfd4": "signalfd",
    "io_uring_setup": "io_uring", "io_uring_enter": "io_uring",
    "io_uring_register": "io_uring",
    "chroot": "chroot", "tkill": "signals",
    "clone3": "threads", "mknod": "devices", "clock_getres": "time",
    "clock_nanosleep": "time", "nanosleep": "time",
    "getpriority": "priority", "setpriority": "priority",
    "sync": "sync", "waitid": "wait4",
}


@dataclass
class PortingRow:
    app: str
    analog: str
    required: frozenset
    wali_ok: bool
    wasix_ok: bool
    wasi_ok: bool
    wasix_missing: Optional[str]
    wasi_missing: Optional[str]

    def cell(self, api: str) -> str:
        ok = {"wali": self.wali_ok, "wasix": self.wasix_ok,
              "wasi": self.wasi_ok}[api]
        return "yes" if ok else "no"


def required_syscalls(module: Module) -> frozenset:
    """The app's statically-declared syscall needs (import section)."""
    out = set()
    for mod, name in module.import_names():
        if mod == "wali" and name.startswith("SYS_"):
            out.add(name[4:])
    return frozenset(out)


# what to highlight first in the "missing features" column, mirroring the
# paper's choices (signals for bash, mremap for sqlite, mmap for memcached,
# sockopt for paho, users for openssh; inotify/signalfd for the watcher
# row — neither WASI preview1 nor WASIX exposes filesystem events or
# fd-based signal consumption, so watchd ports only to WALI)
_FEATURE_PRIORITY = ("signals", "inotify", "signalfd", "mremap", "mmap",
                     "users", "sockopt",
                     "sockets", "socketpair", "threads", "processes",
                     "wait4", "dup", "ioctl", "pgroups")


def _first_missing(required: frozenset, supported: frozenset):
    missing = sorted(required - supported)
    if not missing:
        return None
    labels = {FEATURE_OF_SYSCALL.get(m, m) for m in missing}
    for feature in _FEATURE_PRIORITY:
        if feature in labels:
            return feature
    return sorted(labels)[0]


def porting_row(app_name: str, module: Module, analog: str = "") -> PortingRow:
    required = required_syscalls(module)
    wali = frozenset(implemented_names())
    return PortingRow(
        app=app_name,
        analog=analog or app_name,
        required=required,
        wali_ok=required <= wali,
        wasix_ok=required <= WASIX_SYSCALLS,
        wasi_ok=required <= WASI_SYSCALLS,
        wasix_missing=_first_missing(required, WASIX_SYSCALLS),
        wasi_missing=_first_missing(required, WASI_SYSCALLS),
    )


def build_matrix(apps: Dict[str, Module],
                 analogs: Optional[Dict[str, str]] = None) -> List[PortingRow]:
    analogs = analogs or {}
    return [porting_row(name, mod, analogs.get(name, name))
            for name, mod in sorted(apps.items())]


def render_matrix(rows: List[PortingRow]) -> str:
    """Text rendering in the shape of the paper's Table 1."""
    out = [f"{'Codebase':<18} {'(analog of)':<12} {'WALI':<6} {'WASIX':<16} "
           f"{'WASI':<16}",
           "-" * 70]
    for r in rows:
        wasix = "yes" if r.wasix_ok else f"no ({r.wasix_missing})"
        wasi = "yes" if r.wasi_ok else f"no ({r.wasi_missing})"
        out.append(f"{r.app:<18} {r.analog:<12} "
                   f"{'yes' if r.wali_ok else 'no':<6} {wasix:<16} "
                   f"{wasi:<16}")
    return "\n".join(out)
