"""``repro.wasi`` — WASI preview1, implemented twice:

* natively in the engine (:mod:`repro.wasi.native`), the status quo;
* layered over WALI (:class:`WaliBackend` + :class:`WasiHost`), the
  paper's §4.1 result (``libuvwasi`` unmodified over WALI).

Also hosts the Table 1 porting matrix machinery and helpers to run WASI
applications on a WALI runtime.
"""

from typing import Dict, Optional

from ..wali import WaliRuntime
from ..wasm import Module, instantiate
from ..wasm.errors import GuestExit
from .host import Backend, WaliBackend, WasiHost
from .native import NativeBackend
from .porting import (
    FEATURE_OF_SYSCALL, PortingRow, WASI_SYSCALLS, WASIX_SYSCALLS,
    build_matrix, porting_row, render_matrix, required_syscalls,
)
from .spec import FUNCTIONS, MODULE, wasi_errno


def wasi_over_wali(runtime: WaliRuntime, argv=None, env=None,
                   preopens: Optional[Dict[str, str]] = None):
    """Create a (WasiHost, WaliProcess-shell) pair layered over WALI.

    Returns ``(wasi_host, wali_process)``: instantiate the WASI app with
    ``wasi_host.imports()`` and point ``wali_process.instance`` at it.
    """
    from ..wali.runtime import WaliProcess

    proc = runtime.kernel.create_process(argv or ["wasi-app"], env or {})
    wp = WaliProcess.__new__(WaliProcess)
    wp.rt = runtime
    wp.proc = proc
    wp.instance = None
    wp.machine = None
    wp.pool = None
    wp.sigv = None
    wp.wali_time_ns = 0
    wp.exit_status = None
    wp.trap = None
    wp.thread = None
    from ..wali.host import WaliHost

    wp.host = WaliHost(runtime, wp)
    wali_ns = wp.host.imports()["wali"]
    backend = WaliBackend(wali_ns, lambda: wp.instance.memory)
    host = WasiHost(backend, preopens)
    return host, wp


def run_wasi_module(module: Module, runtime: Optional[WaliRuntime] = None,
                    argv=None, env=None, preopens=None,
                    entry: str = "_start") -> int:
    """Run a WASI app with the WASI-over-WALI layering; returns exit code."""
    rt = runtime or WaliRuntime()
    host, wp = wasi_over_wali(rt, argv, env, preopens)
    inst = instantiate(module, host.imports(), scheme=rt.scheme)
    wp.instance = inst
    from ..wali.mmap_pool import MmapPool
    from ..wali.sigvirt import VirtualSigTable
    from ..wasm.interp import Machine

    wp.machine = Machine(inst)
    if inst.memory is not None:
        wp.pool = MmapPool(inst.memory)
        wp.proc.mm = wp.pool.space
    wp.sigv = VirtualSigTable(wp.proc)
    try:
        wp.machine.invoke(inst.exports[entry], [])
        return 0
    except GuestExit as exc:
        return exc.status


__all__ = [
    "Backend", "FEATURE_OF_SYSCALL", "FUNCTIONS", "MODULE", "NativeBackend",
    "PortingRow", "WASI_SYSCALLS", "WASIX_SYSCALLS", "WaliBackend",
    "WasiHost", "build_matrix", "porting_row", "render_matrix",
    "required_syscalls", "run_wasi_module", "wasi_errno", "wasi_over_wali",
]
