"""ISA-emulation tier (the QEMU baseline, §4.3).

QEMU(-TCG) runs a foreign binary by fetching and decoding every guest
instruction before executing its semantics.  This module reproduces that
cost structure faithfully: flat code is *packed into bytes* at load time
(the "guest binary"), and execution decodes each instruction from the byte
stream on every dynamic fetch — the per-instruction decode work is exactly
what makes emulators an order of magnitude slower than direct execution
(Fig. 8b-d's steep QEMU slope is emergent, not modelled).

``EmuCodeView`` exposes the packed bytes through the interpreter's
``ops[pc]`` protocol, so semantics are shared with the reference
interpreter while every fetch pays the decode cost.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from ..wasm.flatten import FlatCode

# opcode registry: name <-> id (stable per process)
_OP_IDS: Dict[str, int] = {}
_OP_NAMES: List[str] = []


def _op_id(name: str) -> int:
    if name not in _OP_IDS:
        _OP_IDS[name] = len(_OP_NAMES)
        _OP_NAMES.append(name)
    return _OP_IDS[name]


_HDR = struct.Struct("<HB")   # op id, operand count
_OPERAND = struct.Struct("<q")
_F64 = struct.Struct("<d")


def encode_flat(code: FlatCode) -> Tuple[bytes, List[int]]:
    """Pack flat code into the emulated binary format.

    Returns (bytes, offsets): ``offsets[pc]`` is the byte offset of
    instruction ``pc`` (the "translation block index").
    """
    blob = bytearray()
    offsets: List[int] = []
    for instr in code.ops:
        offsets.append(len(blob))
        name = instr[0]
        operands = instr[1:]
        if name == "br_table":
            # flatten entry triples: count, then (target, arity, height)*
            entries = operands[0]
            flat = [len(entries)]
            for t, a, hgt in entries:
                flat.extend((t, a, hgt))
            operands = tuple(flat)
        if name == "const" and isinstance(operands[0], float):
            blob += _HDR.pack(_op_id("const_f"), 1)
            blob += _F64.pack(operands[0])
            continue
        blob += _HDR.pack(_op_id(name), len(operands))
        for op in operands:
            blob += _OPERAND.pack(op)
    return bytes(blob), offsets


class EmuCodeView:
    """Decode-on-fetch view of an emulated binary.

    Every ``view[pc]`` unpacks the instruction from raw bytes — the
    emulator's fundamental overhead.
    """

    __slots__ = ("blob", "offsets", "name", "functype", "local_types",
                 "loop_headers", "decode_count")

    def __init__(self, code: FlatCode):
        blob, offsets = encode_flat(code)
        self.blob = blob
        self.offsets = offsets
        self.name = code.name
        self.functype = code.functype
        self.local_types = code.local_types
        self.loop_headers = code.loop_headers
        self.decode_count = 0

    @property
    def n_params(self) -> int:
        return len(self.functype.params)

    @property
    def n_results(self) -> int:
        return len(self.functype.results)

    @property
    def ops(self):
        return self

    def __len__(self):
        return len(self.offsets)

    def __getitem__(self, pc: int) -> tuple:
        # fetch + decode: the per-instruction emulation cost
        self.decode_count += 1
        off = self.offsets[pc]
        op_id, n = _HDR.unpack_from(self.blob, off)
        name = _OP_NAMES[op_id]
        off += _HDR.size
        if name == "const_f":
            return ("const", _F64.unpack_from(self.blob, off)[0])
        operands = [_OPERAND.unpack_from(self.blob, off + 8 * i)[0]
                    for i in range(n)]
        if name == "br_table":
            count = operands[0]
            entries = [tuple(operands[1 + 3 * i:4 + 3 * i])
                       for i in range(count)]
            return ("br_table", entries)
        return (name, *operands)


def emulate_instance(instance) -> int:
    """Swap every defined function's code for a decode-on-fetch view.

    Returns the total emulated binary size in bytes (the "guest image").
    """
    from ..wasm.interp import WasmFunc

    total = 0
    new_funcs = []
    for func in instance.funcs:
        if isinstance(func, WasmFunc):
            view = EmuCodeView(func.code)
            emu = WasmFunc(func.functype, view)  # type: ignore[arg-type]
            total += len(view.blob)
            new_funcs.append(emu)
        else:
            new_funcs.append(func)
    # fix up table/export references to the rewrapped functions
    mapping = {id(old): new for old, new in zip(instance.funcs, new_funcs)}
    if instance.table is not None:
        instance.table.elems = [
            mapping.get(id(e), e) for e in instance.table.elems]
    for k, v in list(instance.exports.items()):
        if id(v) in mapping:
            instance.exports[k] = mapping[id(v)]
    instance.funcs = new_funcs
    return total
