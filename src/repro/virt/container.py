"""Container runtime (the Docker baseline, §4.3).

Reproduces the cost *structure* of OS-interface virtualization:

* **image assembly**: images are stacks of layers (file dictionaries);
  starting a container materialises an overlay root filesystem by copying
  every layer and verifying its digest (sha256 over the layer bytes) — this
  real work is why containers pay a large startup cost (~0.5 s for Docker
  in the paper; proportionally large here);
* **namespace/cgroup setup**: mount, pid, net and user namespaces plus a
  cgroup hierarchy are built per container;
* **near-native execution**: the workload then runs on the compiled tier
  against its own kernel — at native speed, like a container on the host
  CPU;
* **base memory overhead**: storage driver + layered fs bookkeeping gives
  containers their ~30 MB floor (Fig. 8a).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..kernel import Kernel

DOCKER_BASE_OVERHEAD_MB = 30.0  # Fig. 8a: container base memory floor


@dataclass
class Layer:
    """One image layer: path -> file bytes."""

    name: str
    files: Dict[str, bytes] = field(default_factory=dict)

    def digest(self) -> str:
        h = hashlib.sha256()
        for path in sorted(self.files):
            h.update(path.encode())
            h.update(self.files[path])
        return h.hexdigest()


@dataclass
class Image:
    name: str
    layers: List[Layer] = field(default_factory=list)

    def total_bytes(self) -> int:
        return sum(len(data) for layer in self.layers
                   for data in layer.files.values())


def base_image(name: str = "repro-base", rootfs_mb: float = 24.0) -> Image:
    """A synthetic distribution base image (libraries, /etc, tools).

    24 MB across three layers approximates a slim distribution image; the
    copy + digest work during ``create`` is what gives containers their
    ~half-second startup in the paper's Fig. 8.
    """
    blob = bytes(range(256)) * 256  # 64 KiB pseudo-content block
    layers = []
    per_layer = int(rootfs_mb * 1024 // 64 // 3)
    for li, prefix in enumerate(("/usr/lib", "/usr/share", "/opt/vendor")):
        files = {f"{prefix}/item{li}_{i:04d}.bin": blob
                 for i in range(per_layer)}
        layers.append(Layer(f"layer{li}", files))
    layers[0].files["/etc/os-release"] = b"ID=repro\nVERSION_ID=1\n"
    layers[0].files["/bin/sh-stub"] = b"\x00asm-stub"
    return Image(name, layers)


class Namespace:
    def __init__(self, kind: str, container_id: str):
        self.kind = kind
        self.container_id = container_id
        self.members: list = []


class CGroup:
    def __init__(self, name: str):
        self.name = name
        self.cpu_quota_us = -1
        self.memory_limit = None
        self.stats = {"usage_usec": 0}


class Container:
    """A started container: overlay rootfs + namespaces + cgroup."""

    def __init__(self, container_id: str, image: Image, kernel: Kernel):
        self.id = container_id
        self.image = image
        self.kernel = kernel
        self.namespaces: Dict[str, Namespace] = {}
        self.cgroup = CGroup(container_id)
        self.setup_time_s = 0.0
        self.rootfs_bytes = 0


class ContainerRuntime:
    """dockerd, abridged: stores images, starts containers."""

    def __init__(self):
        self.images: Dict[str, Image] = {}
        self.containers: Dict[str, Container] = {}
        self._next_id = 0

    def pull(self, image: Image) -> None:
        self.images[image.name] = image

    def create(self, image_name: str,
               app_files: Optional[Dict[str, bytes]] = None,
               net: str = "loopback") -> Container:
        """Start a container: the expensive part (Fig. 8 startup gap)."""
        t0 = time.perf_counter()
        image = self.images[image_name]
        self._next_id += 1
        cid = f"c{self._next_id:08d}"

        # fresh kernel instance = isolated OS view for the container
        # (the net namespace below is per-container, so each container
        # gets its own backend instance — the --net knob rides along)
        kernel = Kernel(net_backend=net)
        container = Container(cid, image, kernel)

        # 1. materialise the overlay rootfs: copy + digest-verify each layer
        for layer in image.layers:
            digest = layer.digest()  # integrity check over the layer bytes
            assert digest
            for path, data in layer.files.items():
                directory = path.rsplit("/", 1)[0] or "/"
                kernel.vfs.mkdirs(directory)
                kernel.vfs.write_file(path, bytes(data))  # the copy
                container.rootfs_bytes += len(data)
        for path, data in (app_files or {}).items():
            kernel.vfs.mkdirs(path.rsplit("/", 1)[0] or "/")
            kernel.vfs.write_file(path, bytes(data))

        # 2. namespaces
        for kind in ("mnt", "pid", "net", "ipc", "uts", "user"):
            container.namespaces[kind] = Namespace(kind, cid)

        # 3. cgroup
        container.cgroup.memory_limit = 1 << 30

        container.setup_time_s = time.perf_counter() - t0
        self.containers[cid] = container
        return container

    def destroy(self, container: Container) -> None:
        self.containers.pop(container.id, None)
