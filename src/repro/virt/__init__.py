"""``repro.virt`` — virtualization baselines for the Fig. 8 comparison:
native execution, WALI (sandboxed interpreter), a Docker-like container
runtime, and a QEMU-like decode-on-fetch emulator."""

from .container import (
    Container, ContainerRuntime, DOCKER_BASE_OVERHEAD_MB, Image, Layer,
    base_image,
)
from .emulator import EmuCodeView, emulate_instance, encode_flat
from .tiers import (
    BASE_MEMORY_MB, RunResult, TIERS, Workload, compare_all, run_tier,
)
from .workloads import (
    WORKLOADS, bash_workload, echo_workload, lua_workload, sqlite_workload,
)

__all__ = [
    "BASE_MEMORY_MB", "Container", "ContainerRuntime",
    "DOCKER_BASE_OVERHEAD_MB", "EmuCodeView", "Image", "Layer", "RunResult",
    "TIERS", "WORKLOADS", "Workload", "bash_workload", "base_image",
    "compare_all", "echo_workload", "emulate_instance", "encode_flat",
    "lua_workload",
    "run_tier", "sqlite_workload",
]
