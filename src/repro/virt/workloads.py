"""Workload generators for the Fig. 7 / Fig. 8 benchmarks.

Each generator takes a ``scale`` knob and produces a :class:`Workload`;
the Fig. 8 sweeps grow scale so the x-axis ("native execution time")
spans a range, exposing the startup-vs-slope crossover between WALI and
Docker the paper highlights.
"""

from __future__ import annotations

from ..apps.lua import arith_benchmark_script
from ..apps.sqlite import workload_script
from .tiers import Workload


def lua_workload(scale: int = 2000) -> Workload:
    """CPU-bound interpreter workload (lua row: ~97% app time)."""
    return Workload(
        app="mini_lua",
        argv=["mini_lua", "/tmp/bench.lua"],
        files={"/tmp/bench.lua": arith_benchmark_script(scale)},
        label=f"lua-{scale}",
    )


def bash_workload(scale: int = 200) -> Workload:
    """Shell line-processing workload (builtins only: every tier can run
    it, including the non-forking compiled tier)."""
    lines = []
    for i in range(scale):
        lines.append(f"echo line {i} of the benchmark run")
        if i % 10 == 0:
            lines.append("pwd")
            lines.append("cd /tmp")
            lines.append("cd /")
        lines.append("status")
    lines.append("exit 0")
    script = ("\n".join(lines) + "\n").encode()
    return Workload(
        app="mini_sh",
        argv=["mini_sh", "/tmp/bench.sh"],
        files={"/tmp/bench.sh": script},
        label=f"bash-{scale}",
    )


def sqlite_workload(scale: int = 150) -> Workload:
    """Kernel-I/O heavy database workload (sqlite row: >50% kernel time)."""
    return Workload(
        app="mini_sqlite",
        argv=["mini_sqlite", "/tmp/bench.db", "/tmp/bench.sql"],
        files={"/tmp/bench.sql": workload_script(scale, scale * 2)},
        label=f"sqlite-{scale}",
    )


def paho_script_workload(scale: int = 400) -> Workload:
    """Frame encode/decode workload run standalone (no broker needed):
    the mqtt client's checksum path driven by mini_lua arithmetic."""
    return lua_workload(scale)


def echo_workload(scale: int = 20, nclients: int = 50,
                  net: str = "loopback") -> Workload:
    """Many-client event-loop chat: one single-threaded guest drives
    ``nclients`` concurrent connections through epoll for ``scale`` echo
    rounds each — the readiness-dispatch-bound workload (all kernel time
    is accept4/read/write/epoll_pwait).  ``net`` selects the kernel's
    network backend: under ``"wan:..."`` every echo pays the configured
    link latency, so the workload turns network-bound."""
    nclients = max(1, min(nclients, 100))
    suffix = "" if net == "loopback" else f"@{net.split(':', 1)[0]}"
    return Workload(
        app="event_echo",
        argv=["event_echo", str(nclients), str(scale)],
        label=f"echo-{nclients}x{scale}{suffix}",
        net=net,
    )


def watch_workload(scale: int = 12, ring: bool = False) -> Workload:
    """Filesystem-event workload: the watchd guest tails a log and tracks
    directory churn through inotify + signalfd readiness (``scale``
    mutation rounds; ``ring=True`` serves through the io_uring ring
    instead of epoll)."""
    argv = ["watchd", str(scale)] + (["-u"] if ring else [])
    return Workload(
        app="watchd",
        argv=argv,
        label=f"watch-{scale}{'-u' if ring else ''}",
    )


WORKLOADS = {
    "lua": lua_workload,
    "bash": bash_workload,
    "sqlite": sqlite_workload,
    "echo": echo_workload,
    "watch": watch_workload,
}
