"""Virtualization tiers and the measurement harness behind Fig. 8.

Four ways to run the same application image:

========  ==========================  =========================  ==========
tier      startup work                execution                  base mem
========  ==========================  =========================  ==========
native    bind precompiled code       compiled tier, no sandbox   ~2 MB
wali      decode + validate + link    sandboxed interpreter        ~4 MB
qemu      translate to guest binary   decode-on-fetch emulator     ~6 MB
docker    assemble image + namespaces compiled tier (near-native) ~30 MB
========  ==========================  =========================  ==========

Startup and run times are *measured* (the work is real: validation,
linking, layer hashing, instruction decode); only the per-tier base memory
floor is a documented model constant (DESIGN.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..kernel import Kernel
from ..wasm import Module, decode_module, encode_module, instantiate
from ..wasm.compile import CompiledContext, compile_instance
from ..wasm.errors import GuestExit, Trap
from ..wasm.types import PAGE_SIZE
from .container import (
    Container, ContainerRuntime, DOCKER_BASE_OVERHEAD_MB, base_image,
)
from .emulator import emulate_instance

TIERS = ("native", "wali", "docker", "qemu")

BASE_MEMORY_MB = {
    "native": 2.0,   # bare process floor
    "wali": 4.0,     # engine + WALI bookkeeping (sigtable <1 KiB, pool base)
    "qemu": 6.0,     # emulator state + translation buffers
    "docker": DOCKER_BASE_OVERHEAD_MB,
}


@dataclass
class RunResult:
    tier: str
    app: str
    startup_s: float
    run_s: float
    peak_mem_mb: float
    status: int
    output: bytes = b""

    @property
    def total_s(self) -> float:
        return self.startup_s + self.run_s


@dataclass
class Workload:
    """One benchmark configuration for the Fig. 8 sweeps."""

    app: str
    argv: list
    files: Dict[str, bytes] = field(default_factory=dict)
    stdin: bytes = b""
    label: str = ""
    # kernel network backend spec (the --net knob): "loopback" (default),
    # "wan:latency_ms=...,jitter_ms=...,loss=...,bw_kbps=...", or
    # "host:optin=1" — see repro.kernel.net.create_backend
    net: str = "loopback"


class _GuestSession:
    """Common plumbing: kernel process + WALI host + instance."""

    def __init__(self, kernel: Kernel, module: Module, argv, env,
                 scheme: str):
        from ..wali import WaliRuntime
        from ..wali.runtime import WaliProcess

        self.rt = WaliRuntime(kernel=kernel, scheme=scheme)
        self.wp = WaliProcess(self.rt, kernel.create_process(argv, env or {}),
                              module)

    def run_interp(self) -> int:
        return self.wp.run()

    def run_compiled(self, ctx: CompiledContext) -> int:
        inst = self.wp.instance
        start = inst.exports.get("_start")
        idx = inst.funcs.index(start)
        try:
            ctx.invoke(idx, ())
            status = 0
        except GuestExit as exc:
            status = exc.status
        except Trap as exc:
            self.wp.trap = exc
            status = 134
        return status


def _peak_mb(tier: str, session: _GuestSession) -> float:
    pages = session.wp.instance.memory.peak_pages \
        if session.wp.instance.memory is not None else 0
    return BASE_MEMORY_MB[tier] + pages * PAGE_SIZE / (1024 * 1024)


def _prepare_kernel(kernel: Kernel, workload: Workload) -> None:
    for path, data in workload.files.items():
        kernel.vfs.mkdirs(path.rsplit("/", 1)[0] or "/")
        kernel.vfs.write_file(path, data)
    if workload.stdin:
        kernel.console_feed(workload.stdin)


# precompiled source cache for the native/docker tiers ("offline AoT")
_precompiled: Dict[int, dict] = {}


def _bind_compiled(module: Module, instance) -> CompiledContext:
    key = id(module)
    if key not in _precompiled:
        # compile once per module (offline step, not part of startup)
        tmp = instantiate(module, _null_imports(module), run_start=False)
        compile_instance(tmp, scheme="none")
        from ..wasm.compile import _FnCompiler

        sources = {}
        n_imp = module.num_imported_funcs
        for i in range(len(module.funcs)):
            idx = n_imp + i
            src = _FnCompiler(module, idx, "none").source()
            sources[idx] = compile(src, f"<aot:f{idx}>", "exec")
        _precompiled[key] = sources
    sources = _precompiled[key]
    import math

    from ..wasm.compile import (
        Trap as _T, TrapUnreachable, _clz, _ctz, _fdiv, _idiv_s, _irem_s,
        _rotl, _sext, _trunc, _udiv, _urem,
    )
    from ..wasm.types import signed32, signed64

    env = {"_idiv_s": _idiv_s, "_irem_s": _irem_s, "_clz": _clz,
           "_ctz": _ctz, "_rotl": _rotl, "_trunc": _trunc,
           "_sgn32": signed32, "_sgn64": signed64, "_sext": _sext,
           "_udiv": _udiv, "_urem": _urem, "_fdiv": _fdiv,
           "_sqrt": math.sqrt, "_ceil": math.ceil, "_floor": math.floor,
           "Trap": _T, "TrapUnreachable": TrapUnreachable}
    ctx = CompiledContext(instance)
    for idx, code in sources.items():
        scope: dict = {}
        exec(code, env, scope)
        ctx.cfuncs[idx] = scope[f"_f{idx}"]
    return ctx


def _null_imports(module: Module) -> dict:
    out: dict = {}
    for im in module.imports:
        if im.kind == "func":
            out.setdefault(im.module, {})[im.name] = lambda *a: 0
    return out


def run_tier(tier: str, module: Module, workload: Workload,
             env: Optional[dict] = None) -> RunResult:
    """Run one workload under one virtualization tier; measure everything."""
    if tier == "docker":
        return _run_docker(module, workload, env)

    binary = encode_module(module)  # the packaged application image
    kernel = Kernel(net_backend=workload.net)
    _prepare_kernel(kernel, workload)

    t0 = time.perf_counter()
    if tier == "wali":
        image = decode_module(binary, name=workload.app)
        session = _GuestSession(kernel, image, workload.argv, env, "loop")
        startup = time.perf_counter() - t0
        t1 = time.perf_counter()
        status = session.run_interp()
    elif tier == "native":
        session = _GuestSession(kernel, module, workload.argv, env, "none")
        ctx = _bind_compiled(module, session.wp.instance)
        startup = time.perf_counter() - t0
        t1 = time.perf_counter()
        status = session.run_compiled(ctx)
    elif tier == "qemu":
        image = decode_module(binary, name=workload.app)
        session = _GuestSession(kernel, image, workload.argv, env, "none")
        emulate_instance(session.wp.instance)  # "binary translation" setup
        startup = time.perf_counter() - t0
        t1 = time.perf_counter()
        status = session.run_interp()
    else:
        raise ValueError(f"unknown tier {tier!r}")
    run_s = time.perf_counter() - t1
    return RunResult(tier, workload.app, startup, run_s,
                     _peak_mb(tier, session), status,
                     kernel.console_output())


def _run_docker(module: Module, workload: Workload,
                env: Optional[dict]) -> RunResult:
    runtime = ContainerRuntime()
    runtime.pull(base_image())
    binary = encode_module(module)

    t0 = time.perf_counter()
    container = runtime.create(
        "repro-base", app_files={f"/bin/{workload.app}.wasm": binary},
        net=workload.net)
    kernel = container.kernel
    _prepare_kernel(kernel, workload)
    session = _GuestSession(kernel, module, workload.argv, env, "none")
    ctx = _bind_compiled(module, session.wp.instance)
    startup = time.perf_counter() - t0

    t1 = time.perf_counter()
    status = session.run_compiled(ctx)
    run_s = time.perf_counter() - t1
    result = RunResult("docker", workload.app, startup, run_s,
                       _peak_mb("docker", session), status,
                       kernel.console_output())
    runtime.destroy(container)
    return result


def compare_all(module: Module, workload: Workload,
                tiers=TIERS) -> Dict[str, RunResult]:
    return {tier: run_tier(tier, module, workload) for tier in tiers}
