"""Rendering for the kernel observability layer (kernel/trace.py).

Two consumers:

* **latency tables** — the kernel keeps always-on per-syscall log2
  histograms, split into *service* (inside the handler) and *wait*
  (runnable on the run queue).  :func:`latency_table` renders p50/p99
  per syscall, the split the Fig. 7-style breakdowns need at per-call
  granularity.
* **event summaries** — a captured ``trace_pipe`` byte stream decodes
  into :class:`~repro.kernel.trace.TraceRecord` rows;
  :func:`summarize_events` rolls them up per subsystem so a run's
  activity profile (scheduling churn vs I/O vs network) is one table.

Percentiles are read back from the log2 buckets, so they are estimates
with bucket-width resolution — exactly the fidelity ftrace's
``hist`` triggers give, and plenty for tail *ratios*.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..kernel.trace import TraceRecord, decode_records
from .report import table

# tracepoint name prefix -> subsystem bucket for the event summary
_SUBSYSTEMS = (
    ("sched_", "sched"),
    ("syscall_", "syscall"),
    ("wq_", "waitqueue"),
    ("net_", "net"),
    ("uring_", "uring"),
    ("inotify_", "inotify"),
)


def bucket_value_ns(i: int) -> int:
    """Representative latency for log2 bucket ``i`` (its midpoint).

    Bucket ``i`` holds samples whose ``bit_length() == i``, i.e. the
    interval ``[2^(i-1), 2^i)``; bucket 0 holds non-positive samples.
    """
    if i <= 0:
        return 0
    if i == 1:
        return 1
    return (1 << (i - 1)) + (1 << (i - 2))


def hist_percentile(buckets: Sequence[int], q: float) -> int:
    """The latency (ns) at quantile ``q`` in a log2 histogram.

    Walks the cumulative counts to the bucket containing the q-th
    sample and returns that bucket's midpoint; 0 for an empty
    histogram.  ``q`` is in [0, 1].
    """
    total = sum(buckets)
    if total == 0:
        return 0
    rank = q * total
    seen = 0
    for i, n in enumerate(buckets):
        seen += n
        if seen >= rank:
            return bucket_value_ns(i)
    return bucket_value_ns(len(buckets) - 1)


def latency_rows(trace) -> List[Tuple]:
    """Per-syscall (name, calls, service p50/p99, wait p50/p99) rows."""
    rows = []
    for name in sorted(trace.service_hist):
        svc = trace.service_hist[name]
        wait = trace.wait_hist.get(name)
        calls = sum(svc)
        rows.append((
            name, calls,
            hist_percentile(svc, 0.50), hist_percentile(svc, 0.99),
            hist_percentile(wait, 0.50) if wait else 0,
            hist_percentile(wait, 0.99) if wait else 0,
        ))
    rows.sort(key=lambda r: -r[1])  # busiest syscalls first
    return rows


def latency_table(trace) -> str:
    rows = [(name, calls, f"{sp50:,}", f"{sp99:,}", f"{wp50:,}",
             f"{wp99:,}")
            for name, calls, sp50, sp99, wp50, wp99 in latency_rows(trace)]
    return table(
        ("syscall", "calls", "svc p50 ns", "svc p99 ns",
         "wait p50 ns", "wait p99 ns"), rows)


def subsystem_of(point: str) -> str:
    for prefix, subsystem in _SUBSYSTEMS:
        if point.startswith(prefix):
            return subsystem
    return "other"


def summarize_events(
        records: Iterable[TraceRecord]) -> Dict[str, Dict[str, int]]:
    """Roll decoded trace records up per subsystem.

    Returns ``{subsystem: {"events": n, "dropped": n, point: n, ...}}``;
    drop markers (ring overflow) land under ``other`` with their
    swallowed-event count.
    """
    out: Dict[str, Dict[str, int]] = {}
    for rec in records:
        sub = out.setdefault(subsystem_of(rec.point), {"events": 0,
                                                       "dropped": 0})
        if rec.is_drop_marker:
            sub["dropped"] += rec.arg
            continue
        sub["events"] += 1
        sub[rec.point] = sub.get(rec.point, 0) + 1
    return out


def event_table(records: Iterable[TraceRecord]) -> str:
    summary = summarize_events(records)
    rows = []
    for sub in sorted(summary, key=lambda s: -summary[s]["events"]):
        info = summary[sub]
        points = ", ".join(
            f"{k}={v}" for k, v in sorted(info.items())
            if k not in ("events", "dropped"))
        rows.append((sub, info["events"], info["dropped"], points))
    return table(("subsystem", "events", "dropped", "tracepoints"), rows)


def render_trace_report(trace,
                        pipe_bytes: Optional[bytes] = None) -> str:
    """The full observability report for one kernel.

    ``pipe_bytes`` is an optional raw capture from ``/proc/trace_pipe``;
    without it the report covers histograms and counters only.
    """
    sections = ["== syscall latency (log2-bucket percentiles) ==",
                latency_table(trace) if trace.service_hist
                else "(no syscalls recorded)"]
    if pipe_bytes is not None:
        sections += ["", "== trace events by subsystem ==",
                     event_table(decode_records(pipe_bytes))]
    counters = trace.counters.snapshot()
    if counters:
        sections += ["", "== counters ==",
                     table(("counter", "value"), list(counters.items()))]
    return "\n".join(sections)


def trace_report_dict(trace, pipe_bytes: Optional[bytes] = None) -> Dict:
    """Machine-readable form of :func:`render_trace_report`.

    Key order is fixed and every list is sorted, so the JSON rendering
    is byte-stable across identical runs — CI diffs it directly.
    """
    out: Dict = {
        "latency": [
            {"syscall": name, "calls": calls,
             "service_p50_ns": sp50, "service_p99_ns": sp99,
             "wait_p50_ns": wp50, "wait_p99_ns": wp99}
            for name, calls, sp50, sp99, wp50, wp99 in latency_rows(trace)
        ],
        "counters": dict(sorted(trace.counters.snapshot().items())),
    }
    if pipe_bytes is not None:
        summary = summarize_events(decode_records(pipe_bytes))
        out["events"] = {
            sub: dict(sorted(info.items()))
            for sub, info in sorted(summary.items())
        }
    return out


def trace_report_json(trace, pipe_bytes: Optional[bytes] = None) -> str:
    return json.dumps(trace_report_dict(trace, pipe_bytes), indent=2,
                      sort_keys=False)


def main(argv: List[str]) -> int:
    """CLI over a raw ``/proc/trace_pipe`` capture file.

    ``python -m repro.metrics.trace_report [--json] capture.bin``
    renders the per-subsystem event summary (there is no live kernel
    behind a capture file, so latency histograms are absent).
    """
    json_mode = "--json" in argv
    paths = [a for a in argv if not a.startswith("--")]
    if not paths:
        print("usage: trace_report [--json] <trace_pipe capture>",
              file=sys.stderr)
        return 2
    with open(paths[0], "rb") as fh:
        records = decode_records(fh.read())
    if json_mode:
        summary = summarize_events(records)
        print(json.dumps(
            {sub: dict(sorted(info.items()))
             for sub, info in sorted(summary.items())},
            indent=2, sort_keys=False))
    else:
        print(event_table(records))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main(sys.argv[1:]))
