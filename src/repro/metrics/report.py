"""Plain-text table and bar rendering for benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep the output consistent and legible.
"""

from __future__ import annotations

from typing import List, Sequence


def bar(value: float, maximum: float, width: int = 40,
        char: str = "#") -> str:
    if maximum <= 0:
        return ""
    n = int(round(width * min(value / maximum, 1.0)))
    return char * n


def table(headers: Sequence[str], rows: List[Sequence], pad: int = 2) -> str:
    cols = [[str(h)] for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            cols[i].append(str(cell))
    widths = [max(len(c) for c in col) for col in cols]
    sep = " " * pad

    def fmt(row):
        return sep.join(str(c).ljust(w) for c, w in zip(row, widths))

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    for row in rows:
        lines.append(fmt(row))
    return "\n".join(lines)


def percent_row(label: str, parts: List[tuple], width: int = 50) -> str:
    """Render a stacked-percentage row: parts = [(name, pct)]."""
    chars = {"app": "█", "kernel": "▒", "wali": "░"}
    out = []
    for name, pct in parts:
        n = int(round(width * pct / 100.0))
        out.append(chars.get(name, "?") * n)
    detail = " ".join(f"{name}={pct:.1f}%" for name, pct in parts)
    return f"{label:<14} |{''.join(out):<{width}}| {detail}"
