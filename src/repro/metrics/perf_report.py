"""``perf report`` — call-chain tables over a folded-stack profile.

Consumes the fold produced by :mod:`repro.metrics.flamegraph` (from
guest ``perf record`` output or host-decoded samples) and renders the
two classic views:

* **top-down** — per frame, *inclusive* samples: every sample whose
  stack contains the frame anywhere.  Answers "where does time go from
  the roots down".
* **bottom-up** — per frame, *self* samples: samples where the frame
  is the leaf.  Answers "which code is actually on-CPU".

Both views also exist as ``--json`` machine-readable output with a
stable key order, so CI can diff reports across runs byte-for-byte.

CLI::

    python -m repro.metrics.perf_report [--json] [folded.txt]

reads folded lines (``a;b;c N`` or bare per-sample stacks) from the
file or stdin.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Tuple

from .flamegraph import Fold, total_samples, unfold
from .report import table


def frame_totals(folded: Fold) -> Dict[str, Tuple[int, int]]:
    """Per-frame ``(inclusive, self)`` sample counts.

    A frame appearing multiple times in one stack (recursion) still
    counts that stack's samples once toward its inclusive total.
    """
    totals: Dict[str, List[int]] = {}
    for stack, count in folded.items():
        for frame in set(stack):
            totals.setdefault(frame, [0, 0])[0] += count
        if stack:
            totals.setdefault(stack[-1], [0, 0])[1] += count
    return {f: (inc, self_) for f, (inc, self_) in totals.items()}


def _rows(folded: Fold, by_self: bool) -> List[Tuple[str, int, int, float]]:
    total = total_samples(folded)
    rows = []
    for frame, (inc, self_) in frame_totals(folded).items():
        key = self_ if by_self else inc
        share = (key / total * 100.0) if total else 0.0
        rows.append((frame, inc, self_, share))
    rows.sort(key=lambda r: (-(r[2] if by_self else r[1]), r[0]))
    return rows


def top_down_table(folded: Fold) -> str:
    rows = [(f, inc, self_, f"{share:5.1f}%")
            for f, inc, self_, share in _rows(folded, by_self=False)]
    return table(("frame", "inclusive", "self", "incl%"), rows)


def bottom_up_table(folded: Fold) -> str:
    rows = [(f, self_, inc, f"{share:5.1f}%")
            for f, inc, self_, share in _rows(folded, by_self=True)
            if self_ > 0]
    return table(("frame", "self", "inclusive", "self%"), rows)


def hottest_frames(folded: Fold, n: int = 5) -> List[str]:
    """The ``n`` hottest frames by self samples (the on-CPU leaves)."""
    return [f for f, _, self_, _ in _rows(folded, by_self=True)
            if self_ > 0][:n]


def report_dict(folded: Fold) -> Dict:
    """The machine-readable report; key order is fixed and all lists
    are sorted, so ``json.dumps`` output is stable across runs."""
    return {
        "total_samples": total_samples(folded),
        "stacks": [{"stack": list(stack), "count": count}
                   for stack, count in sorted(folded.items())],
        "frames": [{"frame": f, "inclusive": inc, "self": self_}
                   for f, (inc, self_) in sorted(frame_totals(
                       folded).items())],
    }


def report_json(folded: Fold) -> str:
    return json.dumps(report_dict(folded), indent=2, sort_keys=False)


def render_perf_report(folded: Fold) -> str:
    return "\n".join([
        f"== perf report: {total_samples(folded)} samples ==",
        "",
        "-- top-down (inclusive) --",
        top_down_table(folded),
        "",
        "-- bottom-up (self) --",
        bottom_up_table(folded),
    ])


def main(argv: List[str]) -> int:
    json_mode = "--json" in argv
    paths = [a for a in argv if not a.startswith("--")]
    text = (open(paths[0], "r", encoding="utf-8").read() if paths
            else sys.stdin.read())
    folded = unfold(text)
    print(report_json(folded) if json_mode else render_perf_report(folded))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main(sys.argv[1:]))
