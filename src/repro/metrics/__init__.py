"""``repro.metrics`` — measurement & rendering behind Fig. 2, Fig. 3 and
Fig. 7: syscall profiling, runtime breakdown, text plotting, and the
kernel-observability reports (latency percentiles, trace summaries)."""

from .breakdown import RuntimeBreakdown, counter_snapshot, measure_breakdown
from .profile import (
    SyscallProfile, aggregate_profiles, log_normalize, profile_app,
    render_profile,
)
from .report import bar, percent_row, table
from .trace_report import (
    event_table, hist_percentile, latency_rows, latency_table,
    render_trace_report, summarize_events,
)

__all__ = [
    "RuntimeBreakdown", "SyscallProfile", "aggregate_profiles", "bar",
    "counter_snapshot", "event_table", "hist_percentile", "latency_rows",
    "latency_table", "log_normalize", "measure_breakdown", "percent_row",
    "profile_app", "render_profile", "render_trace_report",
    "summarize_events", "table",
]
