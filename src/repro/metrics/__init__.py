"""``repro.metrics`` — measurement & rendering behind Fig. 2, Fig. 3 and
Fig. 7: syscall profiling, runtime breakdown, text plotting, and the
kernel-observability reports (latency percentiles, trace summaries,
folded-stack flamegraphs and perf call-chain tables)."""

from .breakdown import RuntimeBreakdown, counter_snapshot, measure_breakdown
from .flamegraph import (
    fold, from_samples, render as render_flamegraph, total_samples, unfold,
)
from .perf_report import (
    bottom_up_table, frame_totals, hottest_frames, render_perf_report,
    report_dict as perf_report_dict, report_json as perf_report_json,
    top_down_table,
)
from .profile import (
    SyscallProfile, aggregate_profiles, log_normalize, profile_app,
    profile_from_kernel, render_profile, syscall_counts,
)
from .report import bar, percent_row, table
from .trace_report import (
    event_table, hist_percentile, latency_rows, latency_table,
    render_trace_report, summarize_events, trace_report_dict,
    trace_report_json,
)

__all__ = [
    "RuntimeBreakdown", "SyscallProfile", "aggregate_profiles", "bar",
    "bottom_up_table", "counter_snapshot", "event_table", "fold",
    "frame_totals", "from_samples", "hist_percentile", "hottest_frames",
    "latency_rows", "latency_table", "log_normalize", "measure_breakdown",
    "percent_row", "perf_report_dict", "perf_report_json", "profile_app",
    "profile_from_kernel", "render_flamegraph", "render_perf_report",
    "render_profile", "render_trace_report", "summarize_events",
    "syscall_counts", "table", "top_down_table", "total_samples",
    "trace_report_dict", "trace_report_json", "unfold",
]
