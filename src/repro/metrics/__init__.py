"""``repro.metrics`` — measurement & rendering behind Fig. 2, Fig. 3 and
Fig. 7: syscall profiling, runtime breakdown, text plotting."""

from .breakdown import RuntimeBreakdown, measure_breakdown
from .profile import (
    SyscallProfile, aggregate_profiles, log_normalize, profile_app,
    render_profile,
)
from .report import bar, percent_row, table

__all__ = [
    "RuntimeBreakdown", "SyscallProfile", "aggregate_profiles", "bar",
    "log_normalize", "measure_breakdown", "percent_row", "profile_app",
    "render_profile", "table",
]
