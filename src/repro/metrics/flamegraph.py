"""Folded-stack flamegraphs for the perf sampling profiler.

The guest ``perf record`` tool (apps/perf.py) prints one folded stack
per sample — ``frame_a;frame_b;frame_c``, root first, leaf last — the
same wire format Brendan Gregg's ``stackcollapse-*`` scripts emit.
This module is the host-side half: it canonicalises those lines into
a fold (``{stack_tuple: count}``), round-trips them through the text
format, and renders a terminal flamegraph (indentation = depth, bar
width = inclusive sample share).

The canonical text form is deterministic — one ``a;b;c N`` line per
distinct stack, sorted lexicographically — so two captures of the same
deterministic run compare with string equality.  Property tested:
``fold(unfold(text)) == text`` and sample counts are conserved through
every transformation here.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple, Union

Stack = Tuple[str, ...]
Fold = Dict[Stack, int]

StacksInput = Union[Mapping[Stack, int], Iterable[Tuple[Stack, int]]]


def fold(stacks: StacksInput) -> str:
    """Render stacks to canonical folded text (``a;b;c N`` per line).

    Accepts a ``{stack: count}`` mapping or an iterable of
    ``(stack, count)`` pairs (duplicates are merged).  Zero-count and
    empty stacks are dropped; output lines are sorted so equal folds
    produce byte-identical text.
    """
    merged: Fold = {}
    items = stacks.items() if isinstance(stacks, Mapping) else stacks
    for stack, count in items:
        if count and stack:
            key = tuple(stack)
            merged[key] = merged.get(key, 0) + count
    lines = [f"{';'.join(stack)} {count}"
             for stack, count in sorted(merged.items())]
    return "\n".join(lines) + ("\n" if lines else "")


def unfold(text: str) -> Fold:
    """Parse folded text back into ``{stack: count}``.

    Tolerates the guest tool's two output shapes: ``a;b;c N`` (report
    mode / canonical) and a bare ``a;b;c`` per-sample line (record
    mode, count 1).  Frame names cannot contain spaces, so the count
    is whatever trails the last space — when it parses as an integer.
    """
    out: Fold = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        stack_part, count = line, 1
        if " " in line:
            head, tail = line.rsplit(" ", 1)
            try:
                count = int(tail)
                stack_part = head
            except ValueError:
                pass
        stack = tuple(f for f in stack_part.split(";") if f)
        if stack and count > 0:
            out[stack] = out.get(stack, 0) + count
    return out


def from_samples(samples: Iterable) -> Fold:
    """Fold decoded :class:`~repro.kernel.perf.PerfSample` records.

    Lost markers carry no stack and are skipped (their count is
    reported by the ring, not the profile); samples with an empty
    stack land under ``("[unknown]",)`` so totals stay conserved.
    """
    out: Fold = {}
    for s in samples:
        if getattr(s, "is_lost_marker", False):
            continue
        stack = tuple(s.frames) or ("[unknown]",)
        out[stack] = out.get(stack, 0) + 1
    return out


def total_samples(folded: Fold) -> int:
    return sum(folded.values())


def _tree(folded: Fold) -> Dict:
    """Nest the fold into ``{frame: [inclusive, children_dict]}``."""
    root: Dict = {}
    for stack, count in sorted(folded.items()):
        node = root
        for frame in stack:
            entry = node.setdefault(frame, [0, {}])
            entry[0] += count
            node = entry[1]
    return root


def render(folded: Fold, width: int = 40) -> str:
    """Terminal flamegraph: depth as indentation, inclusive share as a
    bar.  Sibling order is deterministic (hotter first, then name)."""
    total = total_samples(folded)
    if total == 0:
        return "(no samples)\n"
    lines: List[str] = [f"flamegraph: {total} samples"]

    def walk(node: Dict, depth: int) -> None:
        for frame in sorted(node, key=lambda f: (-node[f][0], f)):
            inclusive, children = node[frame]
            share = inclusive / total
            bar = "#" * max(1, int(round(width * share)))
            lines.append(f"{'  ' * depth}{frame:<{30 - 2 * depth}} "
                         f"{inclusive:>6}  {share * 100:5.1f}%  {bar}")
            walk(children, depth + 1)

    walk(_tree(folded), 0)
    return "\n".join(lines) + "\n"
