"""Syscall profiling (Fig. 2): which syscalls applications actually use.

Runs an application under WALI with kernel tracing on, collects per-syscall
invocation counts, and renders the log-normalised frequency profile the
paper uses to argue that a modest syscall subset covers real software.

Counts come from the kernel's shared ``CounterRegistry`` cells
(``syscall.<name>``) — the same source perf counting events read — so
host-side profiles, guest ``perf stat`` and ``/proc`` can never drift
from each other.  A kernel built with tracing ablated
(``Kernel(trace="off")``) has no counters; there the profile falls back
to the per-process bookkeeping in ``proc_syscall_counts``.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..wali import WaliRuntime

_SYSCALL_PREFIX = "syscall."


@dataclass
class SyscallProfile:
    app: str
    counts: Counter = field(default_factory=Counter)

    @property
    def unique_syscalls(self) -> int:
        return len(self.counts)

    @property
    def total_calls(self) -> int:
        return sum(self.counts.values())


def syscall_counts(kernel) -> Counter:
    """Kernel-wide per-syscall invocation counts (all processes).

    Prefers the ``syscall.*`` counter cells (what perf counting events
    bind to); falls back to ``proc_syscall_counts`` when tracing is
    ablated.
    """
    if kernel.trace is not None:
        return Counter({
            name[len(_SYSCALL_PREFIX):]: value
            for name, value in kernel.trace.counters.snapshot().items()
            if name.startswith(_SYSCALL_PREFIX) and value})
    counts: Counter = Counter()
    for c in kernel.proc_syscall_counts.values():
        counts.update(c)
    return counts


def profile_from_kernel(app_name: str, kernel) -> SyscallProfile:
    """Snapshot a kernel's whole syscall history as one profile."""
    return SyscallProfile(app_name, syscall_counts(kernel))


def profile_app(app_name: str, module, argv=None, env=None, files=None,
                stdin: bytes = b"", runtime: Optional[WaliRuntime] = None,
                setup=None) -> SyscallProfile:
    """Run an app under syscall tracing; returns its profile."""
    rt = runtime or WaliRuntime()
    for path, data in (files or {}).items():
        rt.kernel.vfs.mkdirs(path.rsplit("/", 1)[0] or "/")
        rt.kernel.vfs.write_file(path, data)
    if stdin:
        rt.kernel.console_feed(stdin)
    if setup is not None:
        setup(rt)
    wp = rt.load(module, argv=argv or [app_name], env=env or {})
    # diff of the kernel-wide counters: children of the same run
    # (pipelines, forked workers) are included automatically
    before = syscall_counts(rt.kernel)
    wp.run()
    counts = syscall_counts(rt.kernel)
    counts.subtract(before)
    return SyscallProfile(app_name, +counts)


def aggregate_profiles(profiles: List[SyscallProfile]) -> SyscallProfile:
    agg = SyscallProfile("aggregate")
    for p in profiles:
        agg.counts.update(p.counts)
    return agg


def log_normalize(counts: Counter) -> Dict[str, float]:
    """log(1+count) scaled to [0, 1] — the paper's Fig. 2 normalisation."""
    if not counts:
        return {}
    logs = {name: math.log1p(c) for name, c in counts.items()}
    peak = max(logs.values())
    return {name: v / peak for name, v in logs.items()} if peak else logs


def render_profile(profiles: List[SyscallProfile], width: int = 40,
                   top: int = 30) -> str:
    """Text rendering of Fig. 2: aggregate ordering, one row per app."""
    agg = aggregate_profiles(profiles)
    order = [name for name, _ in agg.counts.most_common()]
    shown = order[:top]
    lines = [f"syscalls by aggregate frequency "
             f"({len(order)} unique across all apps); "
             f"top {len(shown)} shown",
             ""]
    header = " " * 12 + " ".join(f"{n[:7]:>7}" for n in shown)
    lines.append(header)
    rows = [("aggregate", agg)] + [(p.app, p) for p in profiles]
    for label, p in rows:
        norm = log_normalize(p.counts)
        cells = []
        for name in shown:
            v = norm.get(name, 0.0)
            cells.append(f"{v:7.2f}" if v else f"{'·':>7}")
        lines.append(f"{label[:12]:<12}" + " ".join(cells))
    return "\n".join(lines)
