"""Syscall profiling (Fig. 2): which syscalls applications actually use.

Runs an application under WALI with kernel tracing on, collects per-syscall
invocation counts, and renders the log-normalised frequency profile the
paper uses to argue that a modest syscall subset covers real software.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..wali import WaliRuntime


@dataclass
class SyscallProfile:
    app: str
    counts: Counter = field(default_factory=Counter)

    @property
    def unique_syscalls(self) -> int:
        return len(self.counts)

    @property
    def total_calls(self) -> int:
        return sum(self.counts.values())


def profile_app(app_name: str, module, argv=None, env=None, files=None,
                stdin: bytes = b"", runtime: Optional[WaliRuntime] = None,
                setup=None) -> SyscallProfile:
    """Run an app under syscall tracing; returns its profile."""
    rt = runtime or WaliRuntime()
    for path, data in (files or {}).items():
        rt.kernel.vfs.mkdirs(path.rsplit("/", 1)[0] or "/")
        rt.kernel.vfs.write_file(path, data)
    if stdin:
        rt.kernel.console_feed(stdin)
    if setup is not None:
        setup(rt)
    wp = rt.load(module, argv=argv or [app_name], env=env or {})
    before = Counter(rt.kernel.proc_syscall_counts[wp.proc.tgid])
    wp.run()
    after = Counter(rt.kernel.proc_syscall_counts[wp.proc.tgid])
    # include children of the same run (pipelines, forked workers)
    counts = Counter()
    for tgid, c in rt.kernel.proc_syscall_counts.items():
        counts.update(c)
    counts.subtract(before)
    return SyscallProfile(app_name, +counts)


def aggregate_profiles(profiles: List[SyscallProfile]) -> SyscallProfile:
    agg = SyscallProfile("aggregate")
    for p in profiles:
        agg.counts.update(p.counts)
    return agg


def log_normalize(counts: Counter) -> Dict[str, float]:
    """log(1+count) scaled to [0, 1] — the paper's Fig. 2 normalisation."""
    if not counts:
        return {}
    logs = {name: math.log1p(c) for name, c in counts.items()}
    peak = max(logs.values())
    return {name: v / peak for name, v in logs.items()} if peak else logs


def render_profile(profiles: List[SyscallProfile], width: int = 40,
                   top: int = 30) -> str:
    """Text rendering of Fig. 2: aggregate ordering, one row per app."""
    agg = aggregate_profiles(profiles)
    order = [name for name, _ in agg.counts.most_common()]
    shown = order[:top]
    lines = [f"syscalls by aggregate frequency "
             f"({len(order)} unique across all apps); "
             f"top {len(shown)} shown",
             ""]
    header = " " * 12 + " ".join(f"{n[:7]:>7}" for n in shown)
    lines.append(header)
    rows = [("aggregate", agg)] + [(p.app, p) for p in profiles]
    for label, p in rows:
        norm = log_normalize(p.counts)
        cells = []
        for name in shown:
            v = norm.get(name, 0.0)
            cells.append(f"{v:7.2f}" if v else f"{'·':>7}")
        lines.append(f"{label[:12]:<12}" + " ".join(cells))
    return "\n".join(lines)
