"""Runtime breakdown (Fig. 7): wasm-app vs kernel vs WALI time split.

The WALI host wrapper accounts its own translation time separately from
kernel time (see :meth:`repro.wali.host.WaliHost._instrument`); total wall
time minus both is guest (app) time.  The paper's claim: the WALI interface
itself costs <~2.5% even for syscall-heavy workloads.

With the scheduler (``kernel/sched.py``), kernel time further splits into
**service** (the kernel doing work) and **runnable-wait** (the task held
runnable on the run queue while other tasks occupied the CPU slots) —
reported as separate ``kernel`` and ``wait`` columns.  On an idle kernel
``wait`` is ~0; under contention it grows while service stays flat, which
is exactly the distinction Fig. 7-style syscall-latency numbers need.
Blocked waits (pipe/socket/futex/timer sleeps) are not CPU time of anyone
and are excluded entirely: breakdowns are over active time, like the
paper's CPU-time split.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..wali import WaliRuntime


@dataclass
class RuntimeBreakdown:
    app: str
    total_s: float
    kernel_s: float     # kernel service time (wait already carved out)
    wali_s: float
    wait_s: float = 0.0  # runnable-wait: on the run queue, not running

    @property
    def app_s(self) -> float:
        return max(self.total_s - self.kernel_s - self.wali_s - self.wait_s,
                   0.0)

    @property
    def app_pct(self) -> float:
        return 100.0 * self.app_s / self.total_s if self.total_s else 0.0

    @property
    def kernel_pct(self) -> float:
        return 100.0 * self.kernel_s / self.total_s if self.total_s else 0.0

    @property
    def wali_pct(self) -> float:
        return 100.0 * self.wali_s / self.total_s if self.total_s else 0.0

    @property
    def wait_pct(self) -> float:
        return 100.0 * self.wait_s / self.total_s if self.total_s else 0.0

    def row(self) -> str:
        return (f"{self.app:<14} app={self.app_pct:5.1f}%  "
                f"kernel={self.kernel_pct:5.1f}%  "
                f"wait={self.wait_pct:5.1f}%  wali={self.wali_pct:5.1f}%")


def counter_snapshot(kernel) -> list:
    """The kernel's shared-counter snapshot, as ``[(name, value)]``.

    One source of truth: these are the same
    :class:`~repro.kernel.trace.CounterRegistry` cells ``/proc/uring``,
    ``/proc/inotify`` and ``/proc/net/sockstat`` render, so host-side
    reports can never drift from what a guest reads out of ``/proc``.
    Empty when the kernel was built with tracing ablated
    (``Kernel(trace="off")``).
    """
    if kernel.trace is None:
        return []
    return list(kernel.trace.counters.snapshot().items())


def measure_breakdown(app_name: str, module, argv=None, env=None,
                      files=None, stdin: bytes = b"",
                      runtime: Optional[WaliRuntime] = None,
                      setup=None) -> RuntimeBreakdown:
    rt = runtime or WaliRuntime()
    for path, data in (files or {}).items():
        rt.kernel.vfs.mkdirs(path.rsplit("/", 1)[0] or "/")
        rt.kernel.vfs.write_file(path, data)
    if stdin:
        rt.kernel.console_feed(stdin)
    if setup is not None:
        setup(rt)
    wp = rt.load(module, argv=argv or [app_name], env=env or {})
    tgid = wp.proc.tgid
    k0 = rt.kernel.kernel_time_ns.get(tgid, 0)
    b0 = rt.kernel.blocked_time_ns.get(tgid, 0)
    w0 = rt.kernel.sched_wait_ns.get(tgid, 0)
    t0 = time.perf_counter_ns()
    wp.run()
    total = time.perf_counter_ns() - t0
    kernel = rt.kernel.kernel_time_ns.get(tgid, 0) - k0
    # Blocked waits (pipe/socket/futex sleeps) are not CPU time anywhere:
    # breakdowns are over active time, like the paper's CPU-time split.
    blocked = rt.kernel.blocked_time_ns.get(tgid, 0) - b0
    # Runnable-wait is contention, not service: its own column.
    wait = rt.kernel.sched_wait_ns.get(tgid, 0) - w0
    total = max(total - blocked, 1)
    kernel = max(kernel - blocked - wait, 0)
    wali = wp.wali_time_ns
    return RuntimeBreakdown(app_name, total / 1e9, kernel / 1e9, wali / 1e9,
                            wait / 1e9)
