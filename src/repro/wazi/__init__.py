"""``repro.wazi`` — the Zephyr RTOS kernel interface (§5.1): the paper's
recipe applied beyond Linux, with the interface auto-generated from the
syscall encoding."""

from .interface import (
    MODULE, SYSCALL_ENCODING, WaziRuntime, generate_handler, wasm_signature,
)
from .zephyr import (
    FlashFS, GPIOPin, Sensor, ZephyrError, ZephyrKernel,
)

__all__ = [
    "FlashFS", "GPIOPin", "MODULE", "SYSCALL_ENCODING", "Sensor",
    "WaziRuntime", "ZephyrError", "ZephyrKernel", "generate_handler",
    "wasm_signature",
]
