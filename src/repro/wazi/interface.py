"""WAZI: the Zephyr kernel interface, auto-generated from the syscall
encoding (§5/§5.1 of the paper).

The recipe, applied:

1. **Enumerate & name-bind** every Zephyr syscall — :data:`SYSCALL_ENCODING`
   models the encoding Zephyr's compiler emits at build time;
2. **Sandbox** every pointer crossing the boundary (arg kinds ``cstr``,
   ``buf_in``, ``buf_out`` translate through bounds-checked linear memory);
3. **Encode ISA-portable layouts** — Zephyr is already ISA-portable, so the
   layouts are trivial (the paper notes this too);
4-6. Process/memory/async mapping — Zephyr guests here are single-threaded
   event-loop style, so the passthrough covers the full surface.

The generator below hand-writes **zero** per-syscall marshalling: every
handler is synthesised from its encoding entry, matching the paper's
">85% auto-generated" observation (here it is 100% of the WAZI surface,
since Zephyr has no signals/fork to bridge).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..wasm import Module, instantiate
from ..wasm.errors import GuestExit
from ..wasm.interp import HostFunc, Machine
from ..wasm.types import I32, I64, FuncType
from .zephyr import ZephyrError, ZephyrKernel

MODULE = "wazi"

# arg kinds: "int" (plain), "cstr" (NUL-terminated guest pointer),
# "buf_in" (ptr+len pair, guest->kernel), "buf_out" (ptr+len, kernel->guest)
# ret kinds: "int", "ssize" (length or -errno)
SYSCALL_ENCODING: List[Tuple[str, List[str], str]] = [
    ("k_uptime_get", [], "int64"),
    ("k_cycle_get", [], "int64"),
    ("k_sleep", ["int"], "int"),
    ("k_yield", [], "int"),
    ("console_write", ["buf_in"], "int"),
    ("fs_open", ["cstr", "int"], "int"),
    ("fs_read", ["int", "buf_out"], "int"),
    ("fs_write", ["int", "buf_in"], "int"),
    ("fs_seek", ["int", "int"], "int"),
    ("fs_close", ["int"], "int"),
    ("fs_unlink", ["cstr"], "int"),
    ("fs_size", ["cstr"], "int"),
    ("device_get_binding", ["cstr"], "int"),
    ("gpio_pin_configure", ["int", "int"], "int"),
    ("gpio_pin_set", ["int", "int"], "int"),
    ("gpio_pin_get", ["int"], "int"),
    ("sensor_sample_fetch", ["int"], "int"),
    ("sensor_channel_get", ["int", "int"], "int"),
]

_WASM_ARGS = {"int": (I32,), "cstr": (I32,), "buf_in": (I32, I32),
              "buf_out": (I32, I32)}


def wasm_signature(args: List[str], ret: str) -> FuncType:
    params: list = []
    for kind in args:
        params.extend(_WASM_ARGS[kind])
    return FuncType(tuple(params), (I64 if ret == "int64" else I32,))


def generate_handler(kernel: ZephyrKernel, name: str, arg_kinds: List[str],
                     ret: str, memory_ref):
    """Auto-generate one passthrough handler from its encoding entry."""
    method = getattr(kernel, name)

    def handler(*raw):
        mem = memory_ref()
        args = []
        out_spec = None  # (guest_ptr, length)
        i = 0
        for kind in arg_kinds:
            if kind == "int":
                v = raw[i] & 0xFFFFFFFF
                args.append(v - 0x100000000 if v >= 0x80000000 else v)
                i += 1
            elif kind == "cstr":
                args.append(mem.read_cstr(raw[i]).decode(
                    "utf-8", "surrogateescape"))
                i += 1
            elif kind == "buf_in":
                args.append(bytes(mem.read(raw[i], raw[i + 1])))
                i += 2
            elif kind == "buf_out":
                out_spec = (raw[i], raw[i + 1])
                args.append(raw[i + 1])  # kernel receives the length
                i += 2
        kernel.trace(name)
        try:
            result = method(*args)
        except ZephyrError as exc:
            return -exc.errno
        if out_spec is not None:
            data = result if isinstance(result, (bytes, bytearray)) else b""
            mem.write(out_spec[0], data[:out_spec[1]])
            return len(data)
        return result if isinstance(result, int) else 0

    handler.__name__ = f"wazi_{name}"
    handler.auto_generated = True
    return handler


class WaziRuntime:
    """Engine-side WAZI: Zephyr kernel + auto-generated interface."""

    def __init__(self, kernel: Optional[ZephyrKernel] = None,
                 scheme: str = "loop"):
        self.kernel = kernel if kernel is not None else ZephyrKernel()
        self.scheme = scheme
        self._memory = None

    def imports(self) -> Dict[str, dict]:
        ns = {}
        for name, arg_kinds, ret in SYSCALL_ENCODING:
            fn = generate_handler(self.kernel, name, arg_kinds, ret,
                                  lambda: self._memory)
            ns[name] = HostFunc(wasm_signature(arg_kinds, ret), fn, name)
        return {MODULE: ns}

    def run(self, module: Module, entry: str = "_start") -> int:
        inst = instantiate(module, self.imports(), scheme=self.scheme)
        self._memory = inst.memory
        machine = Machine(inst)
        try:
            machine.invoke(inst.exports[entry], [])
            return 0
        except GuestExit as exc:
            return exc.status

    def console_output(self) -> bytes:
        return bytes(self.kernel.console)

    @staticmethod
    def auto_generated_fraction() -> float:
        """§5: the fraction of the interface that is generated, not written."""
        return 1.0  # every WAZI handler comes from the encoding
