"""A Zephyr-RTOS-like kernel substrate.

Zephyr is a small, ISA-portable RTOS: kernel services (uptime, sleep,
yield), a console, a flash-backed file system (littlefs-style, flat), and a
device model (GPIO pins, sensors).  This model provides exactly the
services WAZI (§5.1) exposes to Wasm guests — enough to run the paper's
"Lua on a Nucleo board" class of demo, with a syscall *encoding* that the
interface generator consumes (Zephyr's build emits such an encoding at
compile time; we model that artifact directly).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

# Zephyr-style error codes (negative errno, same numbering as Linux)
ENOENT = 2
EIO = 5
EBADF = 9
ENOMEM = 12
EINVAL = 22
ENOSPC = 28


class ZephyrError(Exception):
    def __init__(self, errno: int, message: str = ""):
        self.errno = errno
        super().__init__(message or f"zephyr error {errno}")


@dataclass
class FlashFile:
    name: str
    data: bytearray = field(default_factory=bytearray)


class FlashFS:
    """A littlefs-flavoured flat filesystem with a capacity budget."""

    def __init__(self, capacity: int = 64 * 1024):
        self.files: Dict[str, FlashFile] = {}
        self.capacity = capacity

    def used(self) -> int:
        return sum(len(f.data) for f in self.files.values())

    def open(self, name: str, create: bool) -> FlashFile:
        f = self.files.get(name)
        if f is None:
            if not create:
                raise ZephyrError(ENOENT, name)
            f = FlashFile(name)
            self.files[name] = f
        return f

    def unlink(self, name: str) -> None:
        if name not in self.files:
            raise ZephyrError(ENOENT, name)
        del self.files[name]

    def write(self, f: FlashFile, offset: int, data: bytes) -> int:
        grow = max(0, offset + len(data) - len(f.data))
        if self.used() + grow > self.capacity:
            raise ZephyrError(ENOSPC, "flash full")
        if offset > len(f.data):
            f.data.extend(b"\xff" * (offset - len(f.data)))
        f.data[offset:offset + len(data)] = data
        return len(data)


class GPIOPin:
    def __init__(self):
        self.value = 0
        self.direction = "input"
        self.toggles = 0


class Sensor:
    """A deterministic synthetic sensor (temperature-ish ramp + wobble)."""

    def __init__(self, seed: int = 7):
        self._n = 0
        self._seed = seed

    def fetch(self) -> None:
        self._n += 1

    def channel_get(self, channel: int) -> int:
        # milli-degrees: 21C baseline + deterministic wobble
        wobble = ((self._n * 37 + self._seed) % 17) - 8
        return 21_000 + channel * 500 + wobble * 25


class Device:
    def __init__(self, name: str, kind: str, obj):
        self.name = name
        self.kind = kind
        self.obj = obj


class ZephyrKernel:
    """The RTOS: clock, console, flash fs, devices, thread accounting."""

    def __init__(self, sram_kb: int = 384):
        self.boot_ns = _time.monotonic_ns()
        self.console = bytearray()
        self.fs = FlashFS()
        self.sram_kb = sram_kb
        self.devices: Dict[str, Device] = {}
        self._fd_table: Dict[int, tuple] = {}  # fd -> (FlashFile, offset)
        self._next_fd = 3
        self.syscall_counts: Dict[str, int] = {}
        self._install_devices()

    def _install_devices(self):
        for i in range(4):
            self.devices[f"GPIO_{i}"] = Device(f"GPIO_{i}", "gpio", GPIOPin())
        self.devices["TEMP_0"] = Device("TEMP_0", "sensor", Sensor())
        self.devices["TEMP_1"] = Device("TEMP_1", "sensor", Sensor(seed=23))

    def trace(self, name: str) -> None:
        self.syscall_counts[name] = self.syscall_counts.get(name, 0) + 1

    # ---- kernel services ----

    def k_uptime_get(self) -> int:
        """Milliseconds since boot."""
        return (_time.monotonic_ns() - self.boot_ns) // 1_000_000

    def k_cycle_get(self) -> int:
        return _time.monotonic_ns() - self.boot_ns

    def k_sleep(self, ms: int) -> int:
        _time.sleep(min(ms, 50) / 1000.0)  # bounded for test friendliness
        return 0

    def k_yield(self) -> int:
        _time.sleep(0)
        return 0

    def console_write(self, data: bytes) -> int:
        self.console.extend(data)
        return len(data)

    # ---- filesystem ----

    def fs_open(self, name: str, flags: int) -> int:
        create = bool(flags & 0x10)  # FS_O_CREATE
        f = self.fs.open(name, create)
        fd = self._next_fd
        self._next_fd += 1
        self._fd_table[fd] = [f, 0]
        return fd

    def _file(self, fd: int):
        entry = self._fd_table.get(fd)
        if entry is None:
            raise ZephyrError(EBADF, str(fd))
        return entry

    def fs_read(self, fd: int, length: int) -> bytes:
        entry = self._file(fd)
        f, off = entry
        data = bytes(f.data[off:off + length])
        entry[1] = off + len(data)
        return data

    def fs_write(self, fd: int, data: bytes) -> int:
        entry = self._file(fd)
        n = self.fs.write(entry[0], entry[1], data)
        entry[1] += n
        return n

    def fs_seek(self, fd: int, offset: int) -> int:
        entry = self._file(fd)
        if offset < 0:
            raise ZephyrError(EINVAL)
        entry[1] = offset
        return 0

    def fs_close(self, fd: int) -> int:
        if fd not in self._fd_table:
            raise ZephyrError(EBADF, str(fd))
        del self._fd_table[fd]
        return 0

    def fs_unlink(self, name: str) -> int:
        self.fs.unlink(name)
        return 0

    def fs_size(self, name: str) -> int:
        f = self.fs.files.get(name)
        if f is None:
            raise ZephyrError(ENOENT, name)
        return len(f.data)

    # ---- devices ----

    def device_get_binding(self, name: str) -> int:
        """Returns a small device handle (index), 0 if absent."""
        names = sorted(self.devices)
        if name not in self.devices:
            return 0
        return names.index(name) + 1

    def _device_by_handle(self, handle: int) -> Device:
        names = sorted(self.devices)
        if handle < 1 or handle > len(names):
            raise ZephyrError(EINVAL, f"device handle {handle}")
        return self.devices[names[handle - 1]]

    def gpio_pin_configure(self, handle: int, direction: int) -> int:
        dev = self._device_by_handle(handle)
        if dev.kind != "gpio":
            raise ZephyrError(EINVAL)
        dev.obj.direction = "output" if direction else "input"
        return 0

    def gpio_pin_set(self, handle: int, value: int) -> int:
        dev = self._device_by_handle(handle)
        if dev.kind != "gpio":
            raise ZephyrError(EINVAL)
        if dev.obj.value != (value & 1):
            dev.obj.toggles += 1
        dev.obj.value = value & 1
        return 0

    def gpio_pin_get(self, handle: int) -> int:
        dev = self._device_by_handle(handle)
        return dev.obj.value

    def sensor_sample_fetch(self, handle: int) -> int:
        dev = self._device_by_handle(handle)
        if dev.kind != "sensor":
            raise ZephyrError(EINVAL)
        dev.obj.fetch()
        return 0

    def sensor_channel_get(self, handle: int, channel: int) -> int:
        dev = self._device_by_handle(handle)
        if dev.kind != "sensor":
            raise ZephyrError(EINVAL)
        return dev.obj.channel_get(channel)
