"""WALI security interpositions (§3.6 "Addressing Common Pitfalls").

WALI keeps Wasm's intra-process guarantees and adds a handful of explicit
checks where OS abstractions would otherwise puncture the sandbox:

1. *Filesystem sandboxing*: ``/proc/<pid>/mem`` (and ``/proc/self/mem``)
   grants raw access to the host process image — every open-like syscall is
   interposed and such paths are refused.
2. *Memory mapping*: PROT_EXEC is meaningless and dangerous for a Wasm guest
   (memory is never executable); WALI strips it.
3. *Non-local gotos*: setjmp/longjmp are a toolchain concern, not an
   interface concern (nothing to do here — the engine has no gadget for it).
4. *Signal trampoline*: ``sigreturn`` is an SROP gadget; handler frames are
   engine-managed, so a direct guest call traps.
5. *Engine restrictions*: documented, not enforced here.
6. *Processor-specific functionality*: ``arch_prctl``-style raw hardware
   state is answered with benign values, never real registers.
"""

from __future__ import annotations

import re

from ..wasm.errors import TrapSyscall
from ..kernel.mm import PROT_EXEC

_PROC_MEM = re.compile(r"^/proc/(self|\d+)/mem$")

# calls that take a path and could reach /proc/*/mem
OPEN_LIKE = frozenset({
    "open", "openat", "stat", "lstat", "newfstatat", "statx", "truncate",
    "readlink", "readlinkat", "access", "faccessat", "faccessat2",
    "inotify_add_watch",
})


def check_path(path: str) -> None:
    """Refuse process-memory endpoints (pitfall 1)."""
    if _PROC_MEM.match(path):
        raise TrapSyscall(f"access to {path} is prohibited under WALI")


def sanitize_prot(prot: int) -> int:
    """Strip PROT_EXEC: Wasm linear memory is never executable (pitfall 2)."""
    return prot & ~PROT_EXEC


def deny_sigreturn() -> None:
    """sigreturn gadgets trap (pitfall 4)."""
    raise TrapSyscall("sigreturn cannot be invoked directly under WALI")


class SecurityPolicy:
    """A pluggable, seccomp-like *user-space* syscall filter.

    §3.6 "Dynamic Policies": WALI itself stays descriptive; policies layer
    above it.  This class is the repository's embodiment of that layering —
    engines (or Wasm modules) can wrap a WALI host with an allow/deny list
    without touching the interface implementation.
    """

    def __init__(self, allow=None, deny=None):
        self.allow = frozenset(allow) if allow is not None else None
        self.deny = frozenset(deny or ())
        self.denied_calls = []

    def check(self, name: str) -> None:
        if name in self.deny or \
                (self.allow is not None and name not in self.allow):
            self.denied_calls.append(name)
            raise TrapSyscall(f"syscall {name!r} denied by policy")


class SyscallLogger(SecurityPolicy):
    """strace-style interposition (§6: "calls through Wasm can easily be
    interposed on by libraries that log, restrict, profile...").

    Name-bound calls make this uniform across ISAs — no syscall-number
    tables needed.  The log records every call the policy sees.
    """

    def __init__(self, allow=None, deny=None):
        super().__init__(allow, deny)
        self.log = []

    def check(self, name: str) -> None:
        self.log.append(name)
        super().check(name)


class FaultInjector(SecurityPolicy):
    """Fault-injection interposition (§6): fail selected syscalls with a
    chosen errno, either always or on the N-th invocation — the standard
    tool for testing guest error paths without touching the guest.
    """

    def __init__(self, failures=None, allow=None, deny=None):
        """``failures``: {syscall_name: (errno, fail_on_call_number|None)};
        ``fail_on_call_number`` of None means every invocation fails."""
        super().__init__(allow, deny)
        self.failures = dict(failures or {})
        self.counts = {}
        self.injected = []

    def check(self, name: str) -> None:
        super().check(name)
        if name not in self.failures:
            return
        self.counts[name] = self.counts.get(name, 0) + 1
        errno, nth = self.failures[name]
        if nth is None or self.counts[name] == nth:
            from ..kernel.errno import KernelError

            self.injected.append((name, self.counts[name]))
            raise KernelError(errno, f"injected fault on {name}")
