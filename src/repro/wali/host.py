"""The WALI host functions: ~150 name-bound syscalls over the kernel.

Implementation shape mirrors the paper:

* Most syscalls are **auto-generated passthroughs** (§5: >85%): their
  arguments are plain integers, so the handler produced by
  :func:`_make_passthrough` simply sign-converts and forwards.  Only calls
  whose arguments reference guest memory, or which need engine state (mmap
  pool, sigtable, process model), get explicit handlers — and most of those
  are under 10 lines (Table 2's LOC column is measured from this file).
* Pointer arguments undergo **address-space translation** (§3.2): a bounds
  check against linear memory, then a zero-copy ``memoryview`` where
  possible; struct-typed arguments (<10% of calls) go through the
  :mod:`repro.wali.layout` codecs.
* Every handler converts :class:`KernelError` to the Linux ``-errno``
  convention, and accounts its own time separately from kernel time
  (Fig. 7 / Table 2 instrumentation).
"""

from __future__ import annotations

import struct
import time as _time
from collections import Counter, defaultdict
from typing import Dict, List, Optional

from ..kernel.errno import (
    EFAULT, EINVAL, ENOSYS, ERANGE, KernelError,
)
from ..kernel.fdtable import OpenFile
from ..kernel.uring import (
    IORING_CQE_F_BUFFER, IORING_ENTER_GETEVENTS, IORING_ENTER_TIMEOUT_MS,
    IORING_OP_SEND, IORING_OP_WRITE, IORING_REGISTER_BUFFERS,
    IORING_REGISTER_RING, IORING_SETUP_SQPOLL, IORING_SQ_CQ_OVERFLOW,
    IORING_SQ_NEED_WAKEUP, IOSQE_FIXED_BUFFER, SQE,
)
from ..kernel.mm import MAP_ANONYMOUS, MREMAP_MAYMOVE
from ..kernel.process import CLONE_VM
from ..kernel.signals import SIG_DFL, SIG_IGN, SigAction
from ..wasm.errors import GuestExit, Trap, TrapOutOfBounds, TrapSyscall
from ..wasm.interp import HostFunc
from ..wasm.types import I32, FuncType, signed32, signed64
from .layout import GUEST_LAYOUT, Layout
from .security import OPEN_LIKE, check_path, deny_sigreturn, sanitize_prot
from .spec import MODULE, SUPPORT_CALLS, SYSCALLS

# syscalls whose arguments are all plain integers and whose kernel method has
# the same shape: these are generated, not written (the paper's >85% story).
AUTO_PASSTHROUGH = frozenset({
    "close", "dup", "dup2", "dup3", "fcntl", "kill", "tgkill", "tkill",
    "getpid", "gettid", "getppid", "getuid", "geteuid", "getgid", "getegid",
    "setuid", "setgid", "setpgid", "getpgid", "getpgrp", "setsid", "getsid",
    "sched_yield", "getpriority", "setpriority", "nice", "umask", "fsync",
    "fdatasync", "syncfs", "sync_file_range", "flock", "fchmod", "fchown",
    "listen", "shutdown", "sync",
    "fchdir", "alarm", "madvise", "readahead", "lseek", "ftruncate",
    "set_tid_address", "set_robust_list", "arch_prctl", "sched_setaffinity",
    "clock_getres", "syslog", "getitimer", "eventfd2", "epoll_create1",
    "epoll_create", "timerfd_create", "chroot", "mincore", "prctl",
    "fadvise64", "inotify_init1", "inotify_rm_watch",
})

# process-model calls whose cost is engine work (instance duplication for
# fork, execution-environment setup for threads, image replacement for
# execve) rather than interface translation — Fig. 7 attributes this to the
# engine/app share, exactly as the paper does for WAMR's thread manager.
ENGINE_COST_CALLS = frozenset({"fork", "vfork", "clone", "clone3", "execve"})

# calls that perform struct layout conversion (the <10% copy path, §3.2)
STRUCT_CALLS = frozenset({
    "fstat", "stat", "lstat", "newfstatat", "statx", "rt_sigaction",
    "getrusage", "uname", "sysinfo", "statfs", "fstatfs", "times",
    "prlimit64", "getrlimit", "setrlimit", "clock_gettime", "gettimeofday",
    "nanosleep", "clock_nanosleep", "getdents64", "wait4", "bind", "connect",
    "accept", "accept4", "getsockname", "getpeername", "sendto", "recvfrom",
    "sendmsg", "recvmsg", "poll", "ppoll", "select", "pselect6", "utimensat",
    "epoll_ctl", "epoll_pwait", "epoll_wait", "timerfd_settime",
    "timerfd_gettime", "io_uring_setup", "io_uring_enter",
    "io_uring_register", "signalfd4", "perf_event_open",
})

_WINSIZE = struct.Struct("<HHHH")


class WaliHost:
    """Host-function provider for one WALI process."""

    def __init__(self, runtime, wp):
        self.rt = runtime
        self.wp = wp
        self.kernel = runtime.kernel
        self.proc = wp.proc
        self.layout = GUEST_LAYOUT
        self.host_layout = Layout(runtime.arch)
        self.policy = runtime.policy
        # instrumentation
        self.call_counts: Counter = Counter()
        self.call_wali_ns: Dict[str, int] = defaultdict(int)
        self.call_total_ns: Dict[str, int] = defaultdict(int)
        self.zero_copy_calls = 0
        self.struct_copy_calls = 0
        # per-SQE/CQE address translations skipped via registered buffers
        self.fixed_elides = 0

    # ------------------------------------------------------------------
    # translation helpers (§3.2 address-space translation)
    # ------------------------------------------------------------------

    @property
    def mem(self):
        return self.wp.instance.memory

    def cstr(self, ptr: int) -> str:
        if ptr == 0:
            raise KernelError(EFAULT, "NULL path")
        return self.mem.read_cstr(ptr).decode("utf-8", "surrogateescape")

    def path_arg(self, name: str, ptr: int) -> str:
        path = self.cstr(ptr)
        if name in OPEN_LIKE:
            check_path(self._absolute(path))
        return path

    def _absolute(self, path: str) -> str:
        if path.startswith("/"):
            return path
        cwd = self.kernel.vfs.path_of(self.proc.cwd or self.kernel.vfs.root)
        return (cwd.rstrip("/") + "/" + path)

    def view(self, ptr: int, length: int):
        """Zero-copy translated view of guest memory."""
        self.zero_copy_calls += 1
        return self.mem.read(ptr, length)

    def copy_out(self, ptr: int, data: bytes) -> None:
        self.mem.write(ptr, data)

    def u32_list(self, ptr: int) -> List[int]:
        """Read a NULL-terminated array of u32 pointers (argv/envp style)."""
        out = []
        while True:
            v = self.mem.load_i32(ptr)
            if v == 0:
                return out
            out.append(v)
            ptr += 4

    def iovecs(self, iov_ptr: int, iovcnt: int):
        out = []
        for i in range(iovcnt):
            base, length = Layout.decode_iovec(
                self.mem.read_bytes(iov_ptr + 8 * i, 8))
            out.append((base, length))
        return out

    def timespec_at(self, ptr: int) -> Optional[int]:
        if ptr == 0:
            return None
        return Layout.decode_timespec(self.mem.read_bytes(ptr, 16))

    def k(self, name: str, *args, **kwargs):
        return self.kernel.call(self.proc, name, *args, **kwargs)

    # ------------------------------------------------------------------
    # import-object construction
    # ------------------------------------------------------------------

    def imports(self) -> dict:
        """Build the ``{"wali": {...}}`` import namespace."""
        ns = {}
        for spec in SYSCALLS.values():
            method = getattr(self, f"w_{spec.name}", None)
            if method is None:
                if spec.name in AUTO_PASSTHROUGH:
                    method = _make_passthrough(self, spec.name)
                else:
                    method = _make_enosys(spec.name)
            ns[spec.import_name] = HostFunc(
                spec.functype, self._instrument(spec.name, method),
                spec.import_name)
        for name, params, results in SUPPORT_CALLS:
            fn = getattr(self, f"sup_{name}")
            ns[name] = HostFunc(FuncType(params, results), fn, name)
        return {MODULE: ns}

    def _instrument(self, name: str, method):
        """Wrap a handler with errno conversion + time split accounting."""
        kernel_time = self.kernel.kernel_time_ns
        tgid = self.proc.tgid

        def call(*raw):
            t0 = _time.perf_counter_ns()
            k0 = kernel_time[tgid]
            try:
                # interposition point (§6): policies may deny (trap) or
                # inject errno faults before the handler runs
                if self.policy is not None:
                    self.policy.check(name)
                res = method(*raw)
                return 0 if res is None else res
            except KernelError as exc:
                return -exc.errno
            finally:
                dt = _time.perf_counter_ns() - t0
                kd = kernel_time[tgid] - k0
                self.call_counts[name] += 1
                self.call_total_ns[name] += dt
                self.call_wali_ns[name] += max(dt - kd, 0)
                if name not in ENGINE_COST_CALLS:
                    self.wp.wali_time_ns += max(dt - kd, 0)
                if name in STRUCT_CALLS:
                    self.struct_copy_calls += 1

        return call

    # ------------------------------------------------------------------
    # explicit handlers: file I/O
    # ------------------------------------------------------------------

    def w_read(self, fd, buf, count):
        data = self.k("read", signed32(fd), signed32(count))
        self.copy_out(buf, data)
        return len(data)

    def w_write(self, fd, buf, count):
        return self.k("write", signed32(fd), self.view(buf, count))

    def w_pread64(self, fd, buf, count, offset):
        data = self.k("pread64", signed32(fd), count, signed64(offset))
        self.copy_out(buf, data)
        return len(data)

    def w_pwrite64(self, fd, buf, count, offset):
        return self.k("pwrite64", signed32(fd), self.view(buf, count),
                      signed64(offset))

    def w_readv(self, fd, iov, iovcnt):
        vecs = self.iovecs(iov, iovcnt)
        data = self.k("readv", signed32(fd), [n for _, n in vecs])
        off = 0
        for base, length in vecs:
            chunk = data[off:off + length]
            self.copy_out(base, chunk)
            off += len(chunk)
            if off >= len(data):
                break
        return len(data)

    def w_writev(self, fd, iov, iovcnt):
        vecs = self.iovecs(iov, iovcnt)
        return self.k("writev", signed32(fd),
                      [self.view(b, n) for b, n in vecs])

    def w_open(self, path, flags, mode):
        return self.k("open", self.path_arg("open", path), signed32(flags),
                      mode)

    def w_openat(self, dirfd, path, flags, mode):
        return self.k("openat", signed32(dirfd),
                      self.path_arg("openat", path), signed32(flags), mode)

    def w_sendfile(self, out_fd, in_fd, off_ptr, count):
        offset = self.mem.load_i64(off_ptr) if off_ptr else None
        return self.k("sendfile", signed32(out_fd), signed32(in_fd), offset,
                      count)

    def w_ioctl(self, fd, request, arg):
        res = self.k("ioctl", signed32(fd), request, arg)
        if isinstance(res, tuple):  # TIOCGWINSZ
            rows, cols = res
            self.copy_out(arg, _WINSIZE.pack(rows, cols, 0, 0))
            return 0
        if request == 0x541B and arg:  # FIONREAD writes through the pointer
            self.mem.store_i32(arg, res)
            return 0
        return res

    def w_pipe(self, fds_ptr):
        r, w = self.k("pipe2", 0)
        self.copy_out(fds_ptr, struct.pack("<ii", r, w))
        return 0

    def w_pipe2(self, fds_ptr, flags):
        r, w = self.k("pipe2", signed32(flags))
        self.copy_out(fds_ptr, struct.pack("<ii", r, w))
        return 0

    def w_memfd_create(self, name_ptr, flags):
        return self.k("memfd_create", self.cstr(name_ptr), flags)

    # ---- paths & metadata ----

    def w_access(self, path, mode):
        return self.k("access", self.path_arg("access", path), mode)

    def w_faccessat(self, dirfd, path, mode, flags):
        return self.k("faccessat", signed32(dirfd),
                      self.path_arg("faccessat", path), mode)

    def w_faccessat2(self, dirfd, path, mode, flags):
        return self.w_faccessat(dirfd, path, mode, flags)

    def _stat_out(self, st, buf):
        # host-side kstat -> portable WALI layout conversion (§3.5)
        host_bytes = self.host_layout.encode_stat(st)
        self.copy_out(buf, self.host_layout.convert_stat(host_bytes,
                                                         self.layout))
        return 0

    def w_fstat(self, fd, buf):
        return self._stat_out(self.k("fstat", signed32(fd)), buf)

    def w_stat(self, path, buf):
        return self._stat_out(
            self.k("stat", self.path_arg("stat", path)), buf)

    def w_lstat(self, path, buf):
        return self._stat_out(
            self.k("lstat", self.path_arg("lstat", path)), buf)

    def w_newfstatat(self, dirfd, path, buf, flags):
        st = self.k("newfstatat", signed32(dirfd),
                    self.path_arg("newfstatat", path), signed32(flags))
        return self._stat_out(st, buf)

    def w_statx(self, dirfd, path, flags, mask, buf):
        st = self.k("statx", signed32(dirfd),
                    self.path_arg("statx", path), signed32(flags))
        return self._stat_out(st, buf)

    def w_statfs(self, path, buf):
        sf = self.k("statfs", self.cstr(path))
        self.copy_out(buf, Layout.encode_statfs(sf))
        return 0

    def w_fstatfs(self, fd, buf):
        sf = self.k("fstatfs", signed32(fd))
        self.copy_out(buf, Layout.encode_statfs(sf))
        return 0

    def w_getdents64(self, fd, dirp, count):
        entries = self.k("getdents64", signed32(fd))
        data, packed = Layout.encode_dirents(entries, count)
        if packed < len(entries):  # push unread entries back
            file = self.proc.fdtable.get(signed32(fd))
            file.offset -= len(entries) - packed
        self.copy_out(dirp, data)
        return len(data)

    def w_getcwd(self, buf, size):
        cwd = self.k("getcwd").encode()
        if len(cwd) + 1 > size:
            return -ERANGE
        self.mem.write_cstr(buf, cwd)
        return len(cwd) + 1

    def w_chdir(self, path):
        return self.k("chdir", self.cstr(path))

    def w_mkdir(self, path, mode):
        return self.k("mkdir", self.cstr(path), mode)

    def w_mkdirat(self, dirfd, path, mode):
        return self.k("mkdirat", signed32(dirfd), self.cstr(path), mode)

    def w_rmdir(self, path):
        return self.k("rmdir", self.cstr(path))

    def w_unlink(self, path):
        return self.k("unlink", self.cstr(path))

    def w_unlinkat(self, dirfd, path, flags):
        return self.k("unlinkat", signed32(dirfd), self.cstr(path), flags)

    def w_rename(self, old, new):
        return self.k("rename", self.cstr(old), self.cstr(new))

    def w_renameat(self, ofd, old, nfd, new):
        return self.k("renameat", signed32(ofd), self.cstr(old),
                      signed32(nfd), self.cstr(new))

    def w_renameat2(self, ofd, old, nfd, new, flags):
        return self.k("renameat2", signed32(ofd), self.cstr(old),
                      signed32(nfd), self.cstr(new), flags)

    def w_link(self, old, new):
        return self.k("link", self.cstr(old), self.cstr(new))

    def w_linkat(self, ofd, old, nfd, new, flags):
        return self.k("linkat", signed32(ofd), self.cstr(old), signed32(nfd),
                      self.cstr(new), flags)

    def w_symlink(self, target, path):
        return self.k("symlink", self.cstr(target), self.cstr(path))

    def w_symlinkat(self, target, dirfd, path):
        return self.k("symlinkat", self.cstr(target), signed32(dirfd),
                      self.cstr(path))

    def w_readlink(self, path, buf, size):
        target = self.k("readlink",
                        self.path_arg("readlink", path)).encode()
        out = target[:size]
        self.copy_out(buf, out)
        return len(out)

    def w_readlinkat(self, dirfd, path, buf, size):
        target = self.k("readlinkat", signed32(dirfd),
                        self.path_arg("readlinkat", path)).encode()
        out = target[:size]
        self.copy_out(buf, out)
        return len(out)

    def w_chmod(self, path, mode):
        return self.k("chmod", self.cstr(path), mode)

    def w_fchmodat(self, dirfd, path, mode):
        return self.k("fchmodat", signed32(dirfd), self.cstr(path), mode)

    def w_chown(self, path, uid, gid):
        return self.k("chown", self.cstr(path), uid, gid)

    def w_lchown(self, path, uid, gid):
        return self.k("lchown", self.cstr(path), uid, gid)

    def w_fchownat(self, dirfd, path, uid, gid, flags):
        return self.k("fchownat", signed32(dirfd), self.cstr(path), uid, gid,
                      flags)

    def w_truncate(self, path, length):
        return self.k("truncate",
                      self.path_arg("truncate", path), signed64(length))

    def w_utimensat(self, dirfd, path, times_ptr, flags):
        if times_ptr:
            atime = Layout.decode_timespec(self.mem.read_bytes(times_ptr, 16))
            mtime = Layout.decode_timespec(
                self.mem.read_bytes(times_ptr + 16, 16))
        else:
            # NULL times = "now" on the VFS logical clock (wall-clock
            # stamps here would break the determinism-rerun guarantee)
            from ..kernel.vfs import vfs_now_ns
            atime = mtime = vfs_now_ns()
        path_s = self.cstr(path) if path else ""
        return self.k("utimensat", signed32(dirfd), path_s, atime, mtime,
                      flags)

    # ---- poll/select ----

    def w_poll(self, fds_ptr, nfds, timeout_ms):
        return self._poll_common(fds_ptr, nfds,
                                 None if signed32(timeout_ms) < 0
                                 else signed32(timeout_ms) * 1_000_000)

    def w_ppoll(self, fds_ptr, nfds, ts_ptr, sigmask_ptr):
        return self._poll_common(fds_ptr, nfds, self.timespec_at(ts_ptr))

    def _poll_common(self, fds_ptr, nfds, timeout_ns):
        req = []
        for i in range(nfds):
            fd, events = Layout.decode_pollfd(
                self.mem.read_bytes(fds_ptr + 8 * i, 8))
            req.append((fd, events))
        ready = dict(self.k("ppoll", req, timeout_ns))
        for i, (fd, events) in enumerate(req):
            self.copy_out(fds_ptr + 8 * i,
                          Layout.encode_pollfd(fd, events, ready.get(fd, 0)))
        return len(ready)

    def w_select(self, n, rfds, wfds, efds, tv_ptr):
        timeout_ns = None
        if tv_ptr:
            sec, usec = struct.unpack_from(
                "<qq", self.mem.read_bytes(tv_ptr, 16))
            timeout_ns = sec * 10**9 + usec * 1000
        return self._select_common(n, rfds, wfds, efds, timeout_ns)

    def w_pselect6(self, n, rfds, wfds, efds, ts_ptr, sigmask):
        return self._select_common(n, rfds, wfds, efds,
                                   self.timespec_at(ts_ptr))

    def _select_common(self, n, rfds_ptr, wfds_ptr, efds_ptr, timeout_ns):
        def read_set(ptr):
            if not ptr:
                return []
            nbytes = (n + 7) // 8
            bits = int.from_bytes(self.mem.read_bytes(ptr, nbytes), "little")
            return [fd for fd in range(n) if bits & (1 << fd)]

        def write_set(ptr, fds):
            if not ptr:
                return
            nbytes = (n + 7) // 8
            bits = 0
            for fd in fds:
                bits |= 1 << fd
            self.copy_out(ptr, bits.to_bytes(nbytes, "little"))

        r_ready, w_ready = self.k("pselect6", read_set(rfds_ptr),
                                  read_set(wfds_ptr), timeout_ns)
        write_set(rfds_ptr, r_ready)
        write_set(wfds_ptr, w_ready)
        write_set(efds_ptr, [])
        return len(r_ready) + len(w_ready)

    # ---- epoll / timerfd (event subsystem) ----

    def w_epoll_ctl(self, epfd, op, fd, event_ptr):
        events, data = 0, None
        if event_ptr:
            events, data = Layout.decode_epoll_event(
                self.mem.read_bytes(event_ptr, Layout.EPOLL_EVENT_SIZE))
        return self.k("epoll_ctl", signed32(epfd), op, signed32(fd),
                      events, data)

    def _epoll_wait_out(self, epfd, events_ptr, maxevents, timeout_ns):
        ready = self.k("epoll_pwait", signed32(epfd), maxevents,
                       timeout_ns)
        for i, (data, revents) in enumerate(ready):
            self.copy_out(events_ptr + i * Layout.EPOLL_EVENT_SIZE,
                          Layout.encode_epoll_event(revents, data))
        return len(ready)

    def w_epoll_pwait(self, epfd, events_ptr, maxevents, timeout_ms,
                      sigmask_ptr, sigsetsize):
        timeout_ns = None if signed32(timeout_ms) < 0 \
            else signed32(timeout_ms) * 1_000_000
        return self._epoll_wait_out(epfd, events_ptr, maxevents, timeout_ns)

    def w_epoll_wait(self, epfd, events_ptr, maxevents, timeout_ms):
        return self.w_epoll_pwait(epfd, events_ptr, maxevents, timeout_ms,
                                  0, 0)

    def w_timerfd_settime(self, fd, flags, new_ptr, old_ptr):
        if not new_ptr:
            return -EINVAL
        interval_ns, value_ns = Layout.decode_itimerspec(
            self.mem.read_bytes(new_ptr, Layout.ITIMERSPEC_SIZE))
        old_value, old_interval = self.k(
            "timerfd_settime", signed32(fd), flags, value_ns, interval_ns)
        if old_ptr:
            self.copy_out(old_ptr,
                          Layout.encode_itimerspec(old_interval, old_value))
        return 0

    def w_timerfd_gettime(self, fd, curr_ptr):
        value_ns, interval_ns = self.k("timerfd_gettime", signed32(fd))
        if curr_ptr:
            self.copy_out(curr_ptr,
                          Layout.encode_itimerspec(interval_ns, value_ns))
        return 0

    # ---- inotify / signalfd (readiness front-ends) ----

    def w_inotify_add_watch(self, fd, path_ptr, mask):
        return self.k("inotify_add_watch", signed32(fd),
                      self.path_arg("inotify_add_watch", path_ptr), mask)

    def w_signalfd4(self, fd, mask_ptr, sizemask, flags):
        mask = self.mem.load_i64(mask_ptr) if mask_ptr else 0
        return self.k("signalfd4", signed32(fd), mask, flags)

    # ---- perf events: the profiling fd surface ----

    def w_perf_event_open(self, attr_ptr, pid, cpu, group_fd, flags):
        from ..kernel.perf import PerfAttr
        if attr_ptr == 0:
            raise KernelError(EFAULT, "NULL perf attr")
        type_, config_ptr, freq, capacity, disabled = \
            Layout.decode_perf_attr(
                self.mem.read_bytes(attr_ptr, Layout.PERF_ATTR_SIZE))
        config = self.cstr(config_ptr) if config_ptr else ""
        attr = PerfAttr(type=type_, config=config, sample_freq=freq,
                        ring_capacity=capacity, disabled=bool(disabled))
        return self.k("perf_event_open", attr, signed32(pid), signed32(cpu),
                      signed32(group_fd), flags)

    # ---- io_uring: batched submission/completion crossings ----

    def _u32(self, ptr: int) -> int:
        return struct.unpack_from("<I", self.mem.read_bytes(ptr, 4))[0]

    def _put_u32(self, ptr: int, value: int) -> None:
        self.copy_out(ptr, struct.pack("<I", value & 0xFFFFFFFF))

    def _ring(self, fd: int):
        file = self.proc.fdtable.get(fd)
        if file.kind != OpenFile.KIND_URING:
            raise KernelError(EINVAL, f"fd {fd} is not an io_uring fd")
        return file.obj

    def w_io_uring_setup(self, entries, params_ptr):
        setup_flags = idle_ms = 0
        if params_ptr:
            setup_flags = self._u32(params_ptr + Layout.URING_PARAMS_FLAGS)
            idle_ms = self._u32(params_ptr + Layout.URING_PARAMS_IDLE)
        fd = self.k("io_uring_setup", entries, setup_flags,
                    float(idle_ms) if idle_ms else None)
        if params_ptr:
            ring = self._ring(fd)
            self.copy_out(params_ptr, struct.pack("<II", ring.sq_entries,
                                                  ring.cq_entries))
        return fd

    def w_io_uring_register(self, fd, opcode, arg, nr_args):
        fd = signed32(fd)
        if opcode == IORING_REGISTER_BUFFERS:
            # decode + bounds-check the guest iovec table exactly ONCE —
            # fixed-buffer SQEs/CQEs then skip per-entry translation
            table = []
            for i in range(nr_args):
                base, length = Layout.decode_iovec(self.mem.read_bytes(
                    arg + i * Layout.IOVEC_SIZE, Layout.IOVEC_SIZE))
                if length:
                    self.mem.read_bytes(base, length)
                table.append((base, length))
            return self.k("io_uring_register", fd, opcode, table, nr_args)
        res = self.k("io_uring_register", fd, opcode, arg, nr_args)
        if opcode == IORING_REGISTER_RING:
            ring = self._ring(fd)
            size = Layout.URING_HDR_SIZE + \
                ring.sq_entries * Layout.URING_SQE_SIZE + \
                ring.cq_entries * Layout.URING_CQE_SIZE
            self.mem.read_bytes(arg, size)  # bounds-check the whole region
            ring.guest_base = arg
            if ring.setup_flags & IORING_SETUP_SQPOLL:
                # the poller drains the guest SQ ring and flushes the
                # guest CQ ring through these hooks — no crossing needed
                ring.sq_drain_hook = \
                    lambda maxb: self._consume_sq(ring, maxb)
                ring.sq_peek_hook = lambda: self._guest_sq_pending(ring)
                ring.cq_flush_hook = lambda: self._publish_cqes(ring)
                ring.header_flags_hook = \
                    lambda: self._write_ring_flags(ring)
                ring.cq_avail_hook = \
                    lambda: self._guest_cq_occupancy(ring)
        return res

    def _guest_sq_pending(self, ring) -> int:
        base = ring.guest_base
        if base is None:
            return 0
        return (self._u32(base + Layout.URING_SQ_TAIL)
                - self._u32(base + Layout.URING_SQ_HEAD)) & 0xFFFFFFFF

    def _guest_cq_occupancy(self, ring) -> int:
        base = ring.guest_base
        if base is None:
            return 0
        with ring._publish_lock:  # order against an in-flight flush
            return (self._u32(base + Layout.URING_CQ_TAIL)
                    - self._u32(base + Layout.URING_CQ_HEAD)) & 0xFFFFFFFF

    def _consume_sq(self, ring, limit: int) -> List[SQE]:
        """Decode up to ``limit`` SQEs from the guest SQ ring and advance
        SQ_HEAD (called from ``enter`` or, for SQPOLL, the poller)."""
        base = ring.guest_base
        sqn = ring.sq_entries
        sq_base = base + Layout.URING_HDR_SIZE
        sq_head = self._u32(base + Layout.URING_SQ_HEAD)
        sq_tail = self._u32(base + Layout.URING_SQ_TAIL)
        n = min(limit, (sq_tail - sq_head) & 0xFFFFFFFF, sqn)
        sqes = []
        for i in range(n):
            raw = self.mem.read_bytes(
                sq_base + ((sq_head + i) % sqn) * Layout.URING_SQE_SIZE,
                Layout.URING_SQE_SIZE)
            opcode, sflags, sfd, addr, length, off, user_data = \
                Layout.decode_uring_sqe(raw)
            sqe = SQE(opcode, fd=sfd, addr=addr, length=length, off=off,
                      user_data=user_data, flags=sflags)
            if opcode in (IORING_OP_WRITE, IORING_OP_SEND) and length:
                if sflags & IOSQE_FIXED_BUFFER:
                    # payload lives in a registered slot: read it through
                    # the pre-translated table, no per-SQE translation
                    slot = ring._fixed_slot(addr)
                    if slot is not None:
                        sqe.data = bytes(self.mem.read_bytes(
                            slot[0], min(length, slot[1])))
                        self.fixed_elides += 1
                    # a bad index falls through: the kernel op EINVALs
                else:
                    # outbound payloads are snapshot at submission (§3.2
                    # address-space translation happens exactly once)
                    sqe.data = bytes(self.view(addr, length))
            sqes.append(sqe)
        if n:
            self._put_u32(base + Layout.URING_SQ_HEAD, sq_head + n)
        return sqes

    def _write_cqes(self, ring, cqes) -> None:
        """Publish reaped CQEs into the guest CQ ring + refresh header."""
        base = ring.guest_base
        cqn = ring.cq_entries
        cq_base = base + Layout.URING_HDR_SIZE + \
            ring.sq_entries * Layout.URING_SQE_SIZE
        cq_tail = self._u32(base + Layout.URING_CQ_TAIL)
        for i, cqe in enumerate(cqes):
            if cqe.data is not None:
                if cqe.flags & IORING_CQE_F_BUFFER:
                    # registered slot: cqe.addr was translated at
                    # register time, so this lands without per-CQE work
                    self.mem.write(cqe.addr, cqe.data)
                    self.fixed_elides += 1
                elif cqe.addr:
                    self.copy_out(cqe.addr, cqe.data)
            self.copy_out(
                cq_base + ((cq_tail + i) % cqn) * Layout.URING_CQE_SIZE,
                Layout.encode_uring_cqe(cqe.user_data, cqe.res, cqe.flags))
        if cqes:
            self._put_u32(base + Layout.URING_CQ_TAIL, cq_tail + len(cqes))
        self._put_u32(base + Layout.URING_CQ_OVERFLOW, ring.overflow)
        self._write_ring_flags(ring)

    def _write_ring_flags(self, ring) -> None:
        base = ring.guest_base
        if base is None:
            return
        flags = 0
        if ring.overflow_pending:
            flags |= IORING_SQ_CQ_OVERFLOW
        if ring.sq_need_wakeup:
            flags |= IORING_SQ_NEED_WAKEUP
        self._put_u32(base + Layout.URING_FLAGS, flags)

    def _publish_cqes(self, ring) -> int:
        """Flush kernel completions into whatever room the guest CQ ring
        has (SQPOLL path: the poller calls this with zero crossings)."""
        base = ring.guest_base
        if base is None:
            return 0
        with ring._publish_lock:
            cq_head = self._u32(base + Layout.URING_CQ_HEAD)
            cq_tail = self._u32(base + Layout.URING_CQ_TAIL)
            room = ring.cq_entries - ((cq_tail - cq_head) & 0xFFFFFFFF)
            cqes = ring.reap(room) if room > 0 else []
            self._write_cqes(ring, cqes)
            return len(cqes)

    def w_io_uring_enter(self, fd, to_submit, min_complete, flags, sig,
                         sigsz):
        """One crossing: consume SQEs from the guest SQ ring, run them,
        then publish every available completion into the guest CQ ring.

        ``sig`` is reinterpreted as a relative timeout in milliseconds
        when ``IORING_ENTER_TIMEOUT_MS`` is set (the EXT_ARG analog: our
        guests never pass sigsets here).

        SQPOLL rings never submit through here — the poller owns the SQ
        ring.  The crossing only kicks an idled poller
        (``IORING_ENTER_SQ_WAKEUP``) and/or blocks for completions
        (``IORING_ENTER_GETEVENTS``), then flushes the guest CQ ring.
        """
        fd = signed32(fd)
        ring = self._ring(fd)
        base = ring.guest_base
        if base is None:
            raise KernelError(EINVAL, "ring memory is not registered")
        timeout_ns = None
        if flags & IORING_ENTER_TIMEOUT_MS and sig > 0:
            timeout_ns = sig * 1_000_000
        min_c = min_complete if flags & IORING_ENTER_GETEVENTS else 0
        if ring.setup_flags & IORING_SETUP_SQPOLL:
            self.k("io_uring_enter", fd, (), min_c, timeout_ns, 0, flags)
            self._publish_cqes(ring)
            return 0
        sqes = self._consume_sq(ring, to_submit)
        # only reap what the guest CQ ring can absorb; the rest stays in
        # the kernel backlog (CQ-overflow semantics)
        with ring._publish_lock:
            cq_head = self._u32(base + Layout.URING_CQ_HEAD)
            cq_tail = self._u32(base + Layout.URING_CQ_TAIL)
            room = ring.cq_entries - ((cq_tail - cq_head) & 0xFFFFFFFF)
        submitted, cqes = self.k("io_uring_enter", fd, sqes, min_c,
                                 timeout_ns, max(room, 0), flags)
        with ring._publish_lock:
            self._write_cqes(ring, cqes)
        return submitted

    # ------------------------------------------------------------------
    # memory management (§3.2) — stateful: the mmap pool
    # ------------------------------------------------------------------

    def w_mmap(self, addr, length, prot, flags, fd, offset):
        prot = sanitize_prot(prot)
        res = self.k("mmap", addr, length, prot, signed32(flags),
                     signed32(fd), signed64(offset))
        size = (length + 4095) & ~4095
        self.mem.fill(res.addr, 0, size)  # fresh mappings are zeroed
        if res.populate is not None:
            self.copy_out(res.addr, res.populate)
        return res.addr

    def w_munmap(self, addr, length):
        mem = self.mem
        return self.k("munmap", addr, length,
                      mem_reader=lambda a, n: bytes(mem.read(a, n)))

    def w_mremap(self, old_addr, old_size, new_size, flags, new_addr):
        new, moved = self.k("mremap", old_addr, old_size, new_size,
                            signed32(flags))
        if moved:
            size = (new_size + 4095) & ~4095
            self.mem.fill(new, 0, size)
            self.mem.copy(new, old_addr, min(old_size, new_size))
        return new

    def w_mprotect(self, addr, length, prot):
        return self.k("mprotect", addr, length, sanitize_prot(prot))

    def w_msync(self, addr, length, flags):
        mem = self.mem
        return self.k("msync", addr, length, flags,
                      mem_reader=lambda a, n: bytes(mem.read(a, n)))

    def w_brk(self, addr):
        return self.k("brk", addr)

    # ------------------------------------------------------------------
    # signals (§3.3) — stateful: the virtual sigtable
    # ------------------------------------------------------------------

    def w_rt_sigaction(self, sig, act_ptr, oldact_ptr, sigsetsize):
        # the virtual sigtable registration *and* the native registration
        # both happen here, as in the paper's Fig. 5 sequence
        if act_ptr:
            handler, flags, mask = Layout.decode_sigaction(
                self.mem.read_bytes(act_ptr, 16))
            old = self.k("rt_sigaction", sig,
                         SigAction(_token(handler), mask, flags))
        else:
            old = self.k("rt_sigaction", sig, None)
        if oldact_ptr:
            self.copy_out(oldact_ptr, Layout.encode_sigaction(
                old.handler if old.handler >= 0 else 0, old.flags, old.mask))
        return 0

    def w_rt_sigprocmask(self, how, set_ptr, oldset_ptr, size):
        new_mask = self.mem.load_i64(set_ptr) if set_ptr else None
        old = self.k("rt_sigprocmask", how, new_mask)
        if oldset_ptr:
            self.mem.store_i64(oldset_ptr, old)
        # §3.3: poll immediately so newly-unblocked pending signals run
        # before guest code resumes.
        self.wp.poll_now()
        return 0

    def w_rt_sigpending(self, set_ptr, size):
        self.mem.store_i64(set_ptr, self.k("rt_sigpending"))
        return 0

    def w_rt_sigsuspend(self, mask_ptr, size):
        return self.k("rt_sigsuspend", self.mem.load_i64(mask_ptr))

    def w_rt_sigreturn(self):
        deny_sigreturn()

    def w_rt_sigtimedwait(self, set_ptr, info_ptr, timeout_ptr, size):
        mask = self.mem.load_i64(set_ptr)
        return self.k("rt_sigtimedwait", mask,
                      self.timespec_at(timeout_ptr))

    def w_sigaltstack(self, ss, old):
        return self.k("sigaltstack")

    def w_pause(self):
        return self.k("pause")

    def w_setitimer(self, which, new_ptr, old_ptr):
        value_ns = 0
        if new_ptr:
            # itimerval: interval timeval + value timeval
            sec, usec = struct.unpack_from(
                "<qq", self.mem.read_bytes(new_ptr + 16, 16))
            value_ns = sec * 10**9 + usec * 1000
        return self.k("setitimer", which, 0, value_ns)

    # ------------------------------------------------------------------
    # process model (§3.1) — stateful: instance-per-thread / fork
    # ------------------------------------------------------------------

    def w_clone(self, flags, stack, fn, arg):
        if flags & CLONE_VM:
            return self.rt.spawn_thread(self.wp, signed32(flags), fn, arg)
        return self.rt.fork(self.wp, signed32(flags))

    def w_clone3(self, flags, stack, fn, arg):
        return self.w_clone(flags, stack, fn, arg)

    def w_fork(self):
        return self.rt.fork(self.wp)

    def w_vfork(self):
        return self.rt.fork(self.wp)

    def w_execve(self, path_ptr, argv_ptr, envp_ptr):
        path = self.cstr(path_ptr)
        argv = [self.cstr(p) for p in self.u32_list(argv_ptr)] \
            if argv_ptr else []
        envp = [self.cstr(p) for p in self.u32_list(envp_ptr)] \
            if envp_ptr else []
        return self.rt.execve(self.wp, path, argv, envp)

    def w_exit(self, status):
        if self.proc.is_thread:
            self.k("exit", status)
            raise GuestExit(status)
        return self.w_exit_group(status)

    def w_exit_group(self, status):
        self.k("exit_group", status)
        raise GuestExit(status)

    def w_wait4(self, pid, status_ptr, options, rusage_ptr):
        cpid, status, rusage = self.k("wait4", signed32(pid),
                                      signed32(options))
        if status_ptr and cpid:
            self.mem.store_i32(status_ptr, status)
        if rusage_ptr and rusage is not None:
            self.copy_out(rusage_ptr, Layout.encode_rusage(rusage))
        return cpid

    def w_futex(self, uaddr, op, val, timeout_ptr, uaddr2, val3):
        current = self.mem.load_i32(uaddr)
        return self.k("futex", uaddr, op, val, current,
                      self.timespec_at(timeout_ptr))

    def w_getrandom(self, buf, length, flags):
        data = self.k("getrandom", length, flags)
        self.copy_out(buf, data)
        return len(data)

    def w_prlimit64(self, pid, resource, new_ptr, old_ptr):
        new_limit = None
        if new_ptr:
            new_limit = Layout.decode_rlimit(self.mem.read_bytes(new_ptr, 16))
        cur, maxv = self.k("prlimit64", signed32(pid), resource, new_limit)
        if old_ptr:
            self.copy_out(old_ptr, Layout.encode_rlimit(cur, maxv))
        return 0

    def w_getrlimit(self, resource, ptr):
        cur, maxv = self.k("getrlimit", resource)
        self.copy_out(ptr, Layout.encode_rlimit(cur, maxv))
        return 0

    def w_setrlimit(self, resource, ptr):
        cur, maxv = Layout.decode_rlimit(self.mem.read_bytes(ptr, 16))
        return self.k("setrlimit", resource, cur, maxv)

    def w_getrusage(self, who, ptr):
        ru = self.k("getrusage", signed32(who))
        self.copy_out(ptr, Layout.encode_rusage(ru))
        return 0

    def w_times(self, ptr):
        u, s, cu, cs = self.k("times")
        if ptr:
            self.copy_out(ptr, Layout.encode_tms(u, s, cu, cs))
        return u + s

    def w_sched_getaffinity(self, pid, size, mask_ptr):
        mask = self.k("sched_getaffinity", signed32(pid))
        n = min(size, 8)
        self.copy_out(mask_ptr, mask.to_bytes(8, "little")[:n])
        return n

    # ------------------------------------------------------------------
    # sockets
    # ------------------------------------------------------------------

    def _addr_in(self, ptr, length):
        family, addr = Layout.decode_sockaddr(self.mem.read_bytes(ptr, 8))
        return addr

    def _addr_out(self, ptr, len_ptr, addr):
        if not ptr:
            return
        data = Layout.encode_sockaddr(addr)
        self.copy_out(ptr, data)
        if len_ptr:
            self.mem.store_i32(len_ptr, len(data))

    def w_socket(self, family, type_, protocol):
        return self.k("socket", family, type_, protocol)

    def w_bind(self, fd, addr_ptr, addrlen):
        return self.k("bind", signed32(fd), self._addr_in(addr_ptr, addrlen))

    def w_connect(self, fd, addr_ptr, addrlen):
        return self.k("connect", signed32(fd),
                      self._addr_in(addr_ptr, addrlen))

    def w_accept4(self, fd, addr_ptr, len_ptr, flags):
        conn = self.k("accept4", signed32(fd), flags)
        if addr_ptr:
            sock = self.proc.fdtable.get(conn).sock
            self._addr_out(addr_ptr, len_ptr, sock.peer_addr or ("", 0))
        return conn

    def w_accept(self, fd, addr_ptr, len_ptr):
        return self.w_accept4(fd, addr_ptr, len_ptr, 0)

    def w_sendto(self, fd, buf, length, flags, addr_ptr, addrlen):
        addr = self._addr_in(addr_ptr, addrlen) if addr_ptr else None
        return self.k("sendto", signed32(fd), self.view(buf, length), addr)

    def w_recvfrom(self, fd, buf, length, flags, addr_ptr, len_ptr):
        data, src = self.k("recvfrom", signed32(fd), length)
        self.copy_out(buf, data)
        self._addr_out(addr_ptr, len_ptr, src)
        return len(data)

    def w_sendmsg(self, fd, msg_ptr, flags):
        name_ptr, _namelen, iov_ptr, iovlen = struct.unpack_from(
            "<IIII", self.mem.read_bytes(msg_ptr, 16))
        vecs = self.iovecs(iov_ptr, iovlen)
        addr = self._addr_in(name_ptr, 16) if name_ptr else None
        return self.k("sendmsg", signed32(fd),
                      [self.view(b, n) for b, n in vecs], addr)

    def w_recvmsg(self, fd, msg_ptr, flags):
        name_ptr, _namelen, iov_ptr, iovlen = struct.unpack_from(
            "<IIII", self.mem.read_bytes(msg_ptr, 16))
        vecs = self.iovecs(iov_ptr, iovlen)
        data, src = self.k("recvmsg", signed32(fd),
                           sum(n for _, n in vecs))
        off = 0
        for base, length in vecs:
            chunk = data[off:off + length]
            self.copy_out(base, chunk)
            off += len(chunk)
            if off >= len(data):
                break
        if name_ptr:
            self._addr_out(name_ptr, 0, src)
        return len(data)

    def w_socketpair(self, family, type_, protocol, fds_ptr):
        a, b = self.k("socketpair", family, type_)
        self.copy_out(fds_ptr, struct.pack("<ii", a, b))
        return 0

    def w_setsockopt(self, fd, level, optname, val_ptr, optlen):
        value = self.mem.load_i32(val_ptr) if val_ptr and optlen >= 4 else 0
        return self.k("setsockopt", signed32(fd), level, optname, value)

    def w_getsockopt(self, fd, level, optname, val_ptr, len_ptr):
        value = self.k("getsockopt", signed32(fd), level, optname)
        if val_ptr:
            self.mem.store_i32(val_ptr, value)
        if len_ptr:
            self.mem.store_i32(len_ptr, 4)
        return 0

    def w_getsockname(self, fd, addr_ptr, len_ptr):
        self._addr_out(addr_ptr, len_ptr, self.k("getsockname", signed32(fd)))
        return 0

    def w_getpeername(self, fd, addr_ptr, len_ptr):
        self._addr_out(addr_ptr, len_ptr, self.k("getpeername", signed32(fd)))
        return 0

    # ------------------------------------------------------------------
    # time & misc
    # ------------------------------------------------------------------

    def w_clock_gettime(self, clock_id, ts_ptr):
        ns = self.k("clock_gettime", clock_id)
        self.copy_out(ts_ptr, Layout.encode_timespec(ns))
        return 0

    def w_gettimeofday(self, tv_ptr, tz_ptr):
        sec, usec = self.k("gettimeofday")
        if tv_ptr:
            self.copy_out(tv_ptr, Layout.encode_timeval(sec, usec))
        return 0

    def w_nanosleep(self, req_ptr, rem_ptr):
        ns = self.timespec_at(req_ptr)
        if ns is None:
            return -EINVAL
        return self.k("nanosleep", ns)

    def w_clock_nanosleep(self, clock_id, flags, req_ptr, rem_ptr):
        ns = self.timespec_at(req_ptr)
        if ns is None:
            return -EINVAL
        return self.k("clock_nanosleep", clock_id, flags, ns)

    def w_uname(self, buf):
        self.copy_out(buf, Layout.encode_utsname(self.k("uname")))
        return 0

    def w_sysinfo(self, buf):
        self.copy_out(buf, Layout.encode_sysinfo(self.k("sysinfo")))
        return 0

    # ------------------------------------------------------------------
    # WALI support methods (§3.4 external parameters)
    # ------------------------------------------------------------------

    def sup_get_argc(self):
        return len(self.proc.argv)

    def sup_get_argv_len(self, i):
        if i >= len(self.proc.argv):
            return 0
        return len(self.proc.argv[i].encode()) + 1

    def sup_copy_argv(self, buf, i):
        if i >= len(self.proc.argv):
            return 0
        data = self.proc.argv[i].encode()
        self.mem.write_cstr(buf, data)
        return len(data) + 1

    def sup_get_envc(self):
        return len(self.proc.environ)

    def _env_items(self):
        return [f"{k}={v}" for k, v in self.proc.environ.items()]

    def sup_get_env_len(self, i):
        items = self._env_items()
        if i >= len(items):
            return 0
        return len(items[i].encode()) + 1

    def sup_copy_env(self, buf, i):
        items = self._env_items()
        if i >= len(items):
            return 0
        data = items[i].encode()
        self.mem.write_cstr(buf, data)
        return len(data) + 1

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "calls": sum(self.call_counts.values()),
            "unique_syscalls": len(self.call_counts),
            "zero_copy_translations": self.zero_copy_calls,
            "struct_copy_calls": self.struct_copy_calls,
            "fixed_buffer_elides": self.fixed_elides,
            "wali_time_ns": self.wp.wali_time_ns,
        }


def _token(handler: int) -> int:
    """Map the guest-encoded handler value to a sigtable token."""
    if handler in (SIG_DFL, SIG_IGN):
        return handler
    return handler  # a funcref table index


def _make_passthrough(host: WaliHost, name: str):
    """Auto-generate a pure-integer passthrough handler (§5 recipe, >85%)."""
    nargs = len(SYSCALLS[name].params)

    def passthrough(*raw):
        return host.k(name, *(signed32(a) if isinstance(a, int) and
                              a <= 0xFFFFFFFF else a for a in raw[:nargs]))

    passthrough.__name__ = f"wali_{name}"
    passthrough.auto_generated = True
    return passthrough


def _make_enosys(name: str):
    def enosys(*raw):
        return -ENOSYS

    enosys.__name__ = f"wali_{name}_enosys"
    return enosys


def handler_loc(name: str) -> int:
    """Lines of code of a handler (Table 2's LOC column): explicit handlers
    are measured from source; auto-generated passthroughs count as 1."""
    import inspect

    method = getattr(WaliHost, f"w_{name}", None)
    if method is None:
        return 1 if name in AUTO_PASSTHROUGH else 0
    src = inspect.getsource(method)
    return sum(1 for line in src.splitlines()
               if line.strip() and not line.strip().startswith("#"))


def implemented_names():
    out = []
    for name in SYSCALLS:
        if hasattr(WaliHost, f"w_{name}") or name in AUTO_PASSTHROUGH:
            out.append(name)
    return sorted(out)
