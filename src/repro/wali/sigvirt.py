"""Virtual signal handling: the engine side of §3.3.

The kernel generates signals (pending bit-vector + queue per process); this
layer owns the **virtual sigtable** mapping each signal to a guest funcref,
and delivers at safepoints: the machine's ``poll`` hook drains deliverable
pending signals and *re-enters* the guest to run handlers.

Delivery guarantees implemented here (per the paper):

* blocked signals stay pending until unmasked — the host ``rt_sigprocmask``
  wrapper polls immediately after unblocking, so signals unblocked inside a
  critical section run before guest code resumes;
* unless SA_NODEFER, the signal is masked during its own handler (nested
  identical signals are deferred via the mask, using a stack of saved masks);
* SIG_IGN drops, SIG_DFL performs the kernel default action (terminate /
  ignore); SIGKILL/SIGSTOP never reach guest handlers.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..kernel.errno import EINVAL, KernelError
from ..kernel.process import Process
from ..kernel.signals import (
    DFL_CONT, DFL_CORE, DFL_IGN, DFL_STOP, DFL_TERM, SA_NODEFER, SIG_DFL,
    SIG_IGN, SIGKILL, SIGSTOP, SigAction, default_action, sig_bit,
)
from ..wasm.errors import GuestExit, Trap, TrapIndirectCall


class VirtualSigTable:
    """Engine-resident signal state for one WALI process (<1 KiB, §3.3)."""

    def __init__(self, proc: Process):
        self.proc = proc
        # deferral stack: masks saved while handlers run
        self._mask_stack: list = []
        self.delivered_count = 0
        self.handler_depth = 0

    # ---- registration (step 1) ----

    def register(self, sig: int, handler_token: int, flags: int,
                 mask: int) -> SigAction:
        """Record the guest funcref for ``sig``; returns the old action.

        The kernel-side disposition stores the token so fork/exec semantics
        (inheritance, reset-on-exec) come from the kernel for free.
        """
        new = SigAction(handler=handler_token, mask=mask, flags=flags)
        if sig in (SIGKILL, SIGSTOP):
            raise KernelError(EINVAL, "cannot catch SIGKILL/SIGSTOP")
        return self.proc.dispositions.set(sig, new)

    def current(self, sig: int) -> SigAction:
        return self.proc.dispositions.get(sig)

    # ---- delivery + handler execution (steps 3-4) ----

    def make_poll_hook(self, machine, table):
        """Build the safepoint hook for ``machine`` (§3.3 ``sig_poll``).

        ``table`` is the instance funcref table used to resolve handler
        tokens; resolution happens at delivery time so re-registration in a
        handler takes effect immediately.
        """
        proc = self.proc

        def poll():
            # cheap fast path: nothing pending and unblocked
            if not proc.pending.any_deliverable(proc.blocked_mask):
                return
            self.drain(machine, table)

        return poll

    def drain(self, machine, table) -> None:
        while True:
            sig = self.proc.pending.take(self.proc.blocked_mask)
            if sig is None:
                return
            self.deliver_one(machine, table, sig)

    def deliver_one(self, machine, table, sig: int) -> None:
        proc = self.proc
        act = proc.dispositions.get(sig)
        handler = act.handler
        if handler == SIG_IGN:
            return
        if handler == SIG_DFL:
            self._default_action(sig)
            return
        # guest handler: resolve funcref and re-enter the machine
        if table is None or handler >= len(table.elems) or \
                table.elems[handler] is None:
            raise TrapIndirectCall(f"signal {sig}: bad handler funcref "
                                   f"{handler}")
        func = table.elems[handler]
        saved_mask = proc.blocked_mask
        self._mask_stack.append(saved_mask)
        proc.blocked_mask |= act.mask
        if not act.flags & SA_NODEFER:
            proc.blocked_mask |= sig_bit(sig)
        self.handler_depth += 1
        try:
            machine.reenter(func, [sig])
            self.delivered_count += 1
        finally:
            self.handler_depth -= 1
            proc.blocked_mask = self._mask_stack.pop()

    def _default_action(self, sig: int) -> None:
        action = default_action(sig)
        if action in (DFL_IGN, DFL_CONT):
            return
        if action == DFL_STOP:
            return  # job control stop is a no-op in this model
        # DFL_TERM / DFL_CORE: terminate the guest like the kernel would
        raise GuestExit(128 + sig)
