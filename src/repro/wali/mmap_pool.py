"""The engine-side mmap allocation pool (§3.2 "Memory Management").

All guest mappings land *inside* Wasm linear memory: WALI reserves a region
of the address space starting at the pool base (one bookkeeping variable, as
the paper's implementation notes) and backs kernel-chosen placements with
``memory.grow`` on demand, up to the module's declared maximum.  Mappings are
placed with MAP_FIXED semantics by the kernel VMA allocator; the pool's
``grow_hook`` extends linear memory when a placement lands past the current
size, failing (ENOMEM) past the declared maximum — exactly the behaviour the
paper describes.
"""

from __future__ import annotations

from ..kernel.mm import AddressSpace, MM_PAGE, page_align_up
from ..wasm.memory import LinearMemory
from ..wasm.types import PAGE_SIZE


class MmapPool:
    """Binds a kernel :class:`AddressSpace` to a Wasm linear memory."""

    def __init__(self, memory: LinearMemory, base: int | None = None):
        self.memory = memory
        if base is None:
            base = memory.size_bytes  # pool starts past the static image
        base = page_align_up(base)
        max_pages = memory.max_pages if memory.max_pages is not None else 65536
        limit = max_pages * PAGE_SIZE
        if limit < base:
            raise ValueError("memory max below pool base")
        self.space = AddressSpace(base, limit)
        self.space.grow_hook = self._ensure_backing

    @property
    def base(self) -> int:
        return self.space.base

    @property
    def limit(self) -> int:
        return self.space.limit

    def _ensure_backing(self, needed_end: int) -> bool:
        """Grow linear memory so addresses below ``needed_end`` exist."""
        cur = self.memory.size_bytes
        if needed_end <= cur:
            return True
        delta_pages = (needed_end - cur + PAGE_SIZE - 1) // PAGE_SIZE
        return self.memory.grow(delta_pages) >= 0

    def rebind(self, memory: LinearMemory) -> None:
        """After fork, the pool must point at the child's memory clone."""
        self.memory = memory
        self.space.grow_hook = self._ensure_backing

    def fork_copy(self, memory: LinearMemory) -> "MmapPool":
        pool = MmapPool.__new__(MmapPool)
        pool.memory = memory
        pool.space = self.space.fork_copy()
        pool.space.grow_hook = pool._ensure_backing
        return pool

    def stats(self) -> dict:
        return {
            "base": self.base,
            "limit": self.limit,
            "mapped_bytes": self.space.total_mapped(),
            "vma_count": len(self.space.vmas),
            "memory_pages": self.memory.pages,
            "peak_pages": self.memory.peak_pages,
        }
