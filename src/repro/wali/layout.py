"""ISA-portable struct layouts and per-ISA ABI conversion (§3.2, §3.5).

Most WALI syscalls are zero-copy: pointer arguments are translated into the
Wasm linear memory and handed to the kernel as views.  A minority (<10%)
carry *structured* arguments whose byte-level layout differs across host
ISAs (``kstat`` is the canonical example: x86-64 and aarch64 order the fields
differently).  WALI defines one dedicated portable representation that the
guest libc compiles against, and the engine converts at the syscall boundary.

``Layout`` encodes/decodes those structures.  The ``wali`` layout is the
portable one used by guests; ``x86_64``/``aarch64``/``riscv64`` layouts model
the host side so the conversion code paths are real (and measurably small,
per Table 2's LOC column).
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from ..kernel.calls.fs import Stat, StatFS
from ..kernel.calls.misc import SysInfo, UtsName
from ..kernel.process import Rusage

WALI = "wali"

# field lists: (name, struct format char, size)
# the portable WALI kstat: fixed field order, 64-bit everything that varies
_WALI_STAT_FIELDS = [
    ("st_dev", "Q"), ("st_ino", "Q"), ("st_mode", "Q"), ("st_nlink", "Q"),
    ("st_uid", "Q"), ("st_gid", "Q"), ("st_rdev", "Q"), ("st_size", "q"),
    ("st_blksize", "q"), ("st_blocks", "q"),
    ("st_atime_s", "q"), ("st_atime_n", "q"),
    ("st_mtime_s", "q"), ("st_mtime_n", "q"),
    ("st_ctime_s", "q"), ("st_ctime_n", "q"),
]

# x86_64 struct stat (144 bytes)
_X86_STAT_FIELDS = [
    ("st_dev", "Q"), ("st_ino", "Q"), ("st_nlink", "Q"), ("st_mode", "I"),
    ("st_uid", "I"), ("st_gid", "I"), ("_pad0", "I"), ("st_rdev", "Q"),
    ("st_size", "q"), ("st_blksize", "q"), ("st_blocks", "q"),
    ("st_atime_s", "q"), ("st_atime_n", "q"),
    ("st_mtime_s", "q"), ("st_mtime_n", "q"),
    ("st_ctime_s", "q"), ("st_ctime_n", "q"),
    ("_unused0", "q"), ("_unused1", "q"), ("_unused2", "q"),
]

# aarch64/riscv64 struct stat (128 bytes): mode/nlink swapped and narrower
_ARM_STAT_FIELDS = [
    ("st_dev", "Q"), ("st_ino", "Q"), ("st_mode", "I"), ("st_nlink", "I"),
    ("st_uid", "I"), ("st_gid", "I"), ("st_rdev", "Q"), ("_pad0", "Q"),
    ("st_size", "q"), ("st_blksize", "i"), ("_pad1", "i"), ("st_blocks", "q"),
    ("st_atime_s", "q"), ("st_atime_n", "q"),
    ("st_mtime_s", "q"), ("st_mtime_n", "q"),
    ("st_ctime_s", "q"), ("st_ctime_n", "q"),
    ("_unused0", "I"), ("_unused1", "I"),
]

_STAT_FIELDS = {
    WALI: _WALI_STAT_FIELDS,
    "x86_64": _X86_STAT_FIELDS,
    "aarch64": _ARM_STAT_FIELDS,
    "riscv64": _ARM_STAT_FIELDS,
}


def _pack_fields(fields, values: dict) -> bytes:
    fmt = "<" + "".join(f for _, f in fields)
    return struct.pack(fmt, *(values.get(name, 0) for name, _ in fields))


def _unpack_fields(fields, data: bytes) -> dict:
    fmt = "<" + "".join(f for _, f in fields)
    vals = struct.unpack_from(fmt, data)
    return {name: v for (name, _), v in zip(fields, vals)}


class Layout:
    """Struct codec for one target representation."""

    def __init__(self, arch: str = WALI):
        if arch not in _STAT_FIELDS:
            raise ValueError(f"unknown layout arch {arch!r}")
        self.arch = arch

    # ---- kstat ----

    @property
    def stat_size(self) -> int:
        fields = _STAT_FIELDS[self.arch]
        return struct.calcsize("<" + "".join(f for _, f in fields))

    def encode_stat(self, st: Stat) -> bytes:
        values = {
            "st_dev": st.st_dev, "st_ino": st.st_ino, "st_mode": st.st_mode,
            "st_nlink": st.st_nlink, "st_uid": st.st_uid, "st_gid": st.st_gid,
            "st_rdev": st.st_rdev, "st_size": st.st_size,
            "st_blksize": st.st_blksize, "st_blocks": st.st_blocks,
            "st_atime_s": st.st_atime_ns // 10**9,
            "st_atime_n": st.st_atime_ns % 10**9,
            "st_mtime_s": st.st_mtime_ns // 10**9,
            "st_mtime_n": st.st_mtime_ns % 10**9,
            "st_ctime_s": st.st_ctime_ns // 10**9,
            "st_ctime_n": st.st_ctime_ns % 10**9,
        }
        return _pack_fields(_STAT_FIELDS[self.arch], values)

    def decode_stat(self, data: bytes) -> Stat:
        v = _unpack_fields(_STAT_FIELDS[self.arch], data)
        return Stat(
            st_dev=v["st_dev"], st_ino=v["st_ino"], st_mode=v["st_mode"],
            st_nlink=v["st_nlink"], st_uid=v["st_uid"], st_gid=v["st_gid"],
            st_rdev=v["st_rdev"], st_size=v["st_size"],
            st_blksize=v["st_blksize"], st_blocks=v["st_blocks"],
            st_atime_ns=v["st_atime_s"] * 10**9 + v["st_atime_n"],
            st_mtime_ns=v["st_mtime_s"] * 10**9 + v["st_mtime_n"],
            st_ctime_ns=v["st_ctime_s"] * 10**9 + v["st_ctime_n"])

    def convert_stat(self, data: bytes, to: "Layout") -> bytes:
        """ISA conversion used at syscall boundaries (§3.5)."""
        return to.encode_stat(self.decode_stat(data))

    # ---- scalar pairs & small records (identical across our targets,
    # wasm32 pointer width where pointers appear) ----

    IOVEC_SIZE = 8  # {u32 iov_base, u32 iov_len} in wasm32

    @staticmethod
    def decode_iovec(data: bytes) -> Tuple[int, int]:
        return struct.unpack_from("<II", data)

    TIMESPEC_SIZE = 16

    @staticmethod
    def encode_timespec(ns: int) -> bytes:
        return struct.pack("<qq", ns // 10**9, ns % 10**9)

    @staticmethod
    def decode_timespec(data: bytes) -> int:
        sec, nsec = struct.unpack_from("<qq", data)
        return sec * 10**9 + nsec

    TIMEVAL_SIZE = 16

    @staticmethod
    def encode_timeval(sec: int, usec: int) -> bytes:
        return struct.pack("<qq", sec, usec)

    # itimerspec: {timespec interval, timespec value}
    ITIMERSPEC_SIZE = 32

    @staticmethod
    def encode_itimerspec(interval_ns: int, value_ns: int) -> bytes:
        return Layout.encode_timespec(interval_ns) + \
            Layout.encode_timespec(value_ns)

    @staticmethod
    def decode_itimerspec(data: bytes) -> Tuple[int, int]:
        return Layout.decode_timespec(data[:16]), \
            Layout.decode_timespec(data[16:32])

    # epoll_event (packed, like the x86_64 ABI): {u32 events, u64 data}
    EPOLL_EVENT_SIZE = 12

    @staticmethod
    def encode_epoll_event(events: int, data: int) -> bytes:
        return struct.pack("<I", events & 0xFFFFFFFF) + \
            struct.pack("<Q", data & 0xFFFFFFFFFFFFFFFF)

    @staticmethod
    def decode_epoll_event(data: bytes) -> Tuple[int, int]:
        events = struct.unpack_from("<I", data)[0]
        datum = struct.unpack_from("<Q", data, 4)[0]
        return events, datum

    # io_uring shared-ring layout.  The guest allocates one contiguous
    # region — header, then the SQ array, then the CQ array — and hands
    # its base to the engine via io_uring_register; head/tail counters
    # live in the header so the guest queues SQEs and reaps CQEs without
    # a crossing per entry.
    #
    # header (32 bytes):
    #   0 sq_head  4 sq_tail  8 sq_entries  12 cq_head  16 cq_tail
    #   20 cq_entries  24 cq_overflow  28 flags
    # flags mirrors kernel ring state: bit 0 IORING_SQ_CQ_OVERFLOW
    # (backlogged completions pending), bit 1 IORING_SQ_NEED_WAKEUP
    # (the SQPOLL poller idled out; kick via IORING_ENTER_SQ_WAKEUP)
    URING_HDR_SIZE = 32
    URING_SQ_HEAD = 0
    URING_SQ_TAIL = 4
    URING_CQ_HEAD = 12
    URING_CQ_TAIL = 16
    URING_CQ_OVERFLOW = 24
    URING_FLAGS = 28

    # io_uring_setup params (struct io_uring_params analog): the engine
    # writes back {u32 sq_entries, u32 cq_entries} and reads
    # {u32 flags, u32 sq_thread_idle_ms} that the guest filled in
    URING_PARAMS_FLAGS = 8
    URING_PARAMS_IDLE = 12
    URING_PARAMS_SIZE = 16

    # sqe (32 bytes): {u8 opcode, u8 flags, u16 pad, i32 fd, u32 addr,
    #                  u32 len, u64 off, u64 user_data}
    URING_SQE_SIZE = 32

    @staticmethod
    def decode_uring_sqe(data: bytes):
        """(opcode, flags, fd, addr, length, off, user_data)."""
        opcode, flags, _pad, fd, addr, length, off, user_data = \
            struct.unpack_from("<BBHiIIQQ", data)
        return opcode, flags, fd, addr, length, off, user_data

    @staticmethod
    def encode_uring_sqe(opcode: int, flags: int, fd: int, addr: int,
                         length: int, off: int, user_data: int) -> bytes:
        return struct.pack("<BBHiIIQQ", opcode & 0xFF, flags & 0xFF, 0,
                           fd, addr & 0xFFFFFFFF, length & 0xFFFFFFFF,
                           off & 0xFFFFFFFFFFFFFFFF,
                           user_data & 0xFFFFFFFFFFFFFFFF)

    # cqe (16 bytes): {u64 user_data, i32 res, u32 flags}
    URING_CQE_SIZE = 16

    @staticmethod
    def encode_uring_cqe(user_data: int, res: int, flags: int = 0) -> bytes:
        return struct.pack("<QiI", user_data & 0xFFFFFFFFFFFFFFFF, res,
                           flags & 0xFFFFFFFF)

    @staticmethod
    def decode_uring_cqe(data: bytes) -> Tuple[int, int, int]:
        return struct.unpack_from("<QiI", data)

    # inotify_event: {i32 wd, u32 mask, u32 cookie, u32 len, name[len]}
    # (len includes the NUL padding to a 16-byte multiple, like Linux)
    INOTIFY_EVENT_HDR = 16

    @staticmethod
    def decode_inotify_event(data: bytes, off: int = 0):
        """One record at ``off``: ``(wd, mask, cookie, name, next_off)``."""
        wd, mask, cookie, name_len = struct.unpack_from("<iIII", data, off)
        start = off + Layout.INOTIFY_EVENT_HDR
        name = bytes(data[start:start + name_len]).split(b"\x00", 1)[0]
        return wd, mask, cookie, name.decode(), start + name_len

    # signalfd_siginfo (128 bytes, leading fields):
    # {u32 signo, i32 errno, i32 code, u32 pid, u32 uid, ...pad}
    SIGNALFD_SIGINFO_SIZE = 128

    @staticmethod
    def decode_signalfd_siginfo(data: bytes):
        """``(ssi_signo, ssi_code, ssi_pid, ssi_uid)``."""
        signo, _errno, code, pid, uid = struct.unpack_from("<IiiII", data)
        return signo, code, pid, uid

    # perf_event_attr (compact repro form, 24 bytes): {u32 type,
    # u32 config_ptr (NUL-terminated name in guest memory), u64
    # sample_freq, u32 ring_capacity, u32 disabled}
    PERF_ATTR_SIZE = 24

    @staticmethod
    def decode_perf_attr(data: bytes):
        """``(type, config_ptr, sample_freq, ring_capacity, disabled)``."""
        return struct.unpack_from("<IIQII", data)

    @staticmethod
    def encode_perf_attr(type: int, config_ptr: int, sample_freq: int,
                         ring_capacity: int = 0,
                         disabled: int = 0) -> bytes:
        return struct.pack("<IIQII", type & 0xFFFFFFFF,
                           config_ptr & 0xFFFFFFFF, sample_freq,
                           ring_capacity & 0xFFFFFFFF,
                           disabled & 0xFFFFFFFF)

    # ksigaction (portable WALI form): {u32 handler, u32 flags, u64 mask}
    SIGACTION_SIZE = 16

    @staticmethod
    def encode_sigaction(handler: int, flags: int, mask: int) -> bytes:
        return struct.pack("<IIQ", handler & 0xFFFFFFFF, flags & 0xFFFFFFFF,
                           mask)

    @staticmethod
    def decode_sigaction(data: bytes) -> Tuple[int, int, int]:
        return struct.unpack_from("<IIQ", data)

    # sockaddr_in: {u16 family, u16 port(BE), u32 addr(BE), 8 pad}
    SOCKADDR_IN_SIZE = 16

    @staticmethod
    def encode_sockaddr(addr: Tuple[str, int], family: int = 2) -> bytes:
        host, port = addr
        parts = [int(p) for p in (host or "0.0.0.0").split(".")] \
            if host and host[0].isdigit() else [0, 0, 0, 0]
        ip = bytes(parts[:4] + [0] * (4 - len(parts)))
        return struct.pack("<HH", family, ((port & 0xFF) << 8) |
                           ((port >> 8) & 0xFF)) + ip + b"\x00" * 8

    @staticmethod
    def decode_sockaddr(data: bytes) -> Tuple[int, Tuple[str, int]]:
        family, port_be = struct.unpack_from("<HH", data)
        port = ((port_be & 0xFF) << 8) | ((port_be >> 8) & 0xFF)
        ip = ".".join(str(b) for b in data[4:8])
        return family, (ip, port)

    # linux_dirent64: {u64 ino, u64 off, u16 reclen, u8 type, name...}
    @staticmethod
    def encode_dirents(entries, buf_size: int) -> Tuple[bytes, int]:
        """Pack as many entries as fit; returns (bytes, count packed)."""
        out = bytearray()
        count = 0
        for e in entries:
            name = e.name.encode()
            reclen = (19 + len(name) + 1 + 7) & ~7  # align 8
            if len(out) + reclen > buf_size:
                break
            rec = struct.pack("<QQHB", e.ino, len(out) + reclen, reclen,
                              e.d_type) + name + b"\x00"
            out += rec + b"\x00" * (reclen - len(rec))
            count += 1
        return bytes(out), count

    # rlimit64: {u64 cur, u64 max}
    RLIMIT_SIZE = 16

    @staticmethod
    def encode_rlimit(cur: int, maxv: int) -> bytes:
        return struct.pack("<QQ", cur, maxv)

    @staticmethod
    def decode_rlimit(data: bytes) -> Tuple[int, int]:
        return struct.unpack_from("<QQ", data)

    # utsname: 6 fixed 65-byte fields
    UTSNAME_SIZE = 65 * 6

    @staticmethod
    def encode_utsname(u: UtsName) -> bytes:
        out = bytearray()
        for s in (u.sysname, u.nodename, u.release, u.version, u.machine,
                  u.domainname):
            b = s.encode()[:64]
            out += b + b"\x00" * (65 - len(b))
        return bytes(out)

    # rusage (abridged linux layout: two timevals + 14 longs)
    RUSAGE_SIZE = 16 * 2 + 14 * 8

    @staticmethod
    def encode_rusage(ru: Rusage) -> bytes:
        def tv(ns):
            return struct.pack("<qq", ns // 10**9, (ns % 10**9) // 1000)

        longs = [ru.maxrss_kb, 0, 0, 0, ru.minflt, ru.majflt, 0, 0, 0, 0, 0,
                 ru.nvcsw, ru.nivcsw, 0]
        return tv(ru.utime_ns) + tv(ru.stime_ns) + struct.pack(
            "<14q", *longs)

    # pollfd: {i32 fd, i16 events, i16 revents}
    POLLFD_SIZE = 8

    @staticmethod
    def decode_pollfd(data: bytes) -> Tuple[int, int]:
        fd, events, _ = struct.unpack_from("<ihh", data)
        return fd, events

    @staticmethod
    def encode_pollfd(fd: int, events: int, revents: int) -> bytes:
        return struct.pack("<ihh", fd, events, revents)

    # statfs64 (abridged)
    STATFS_SIZE = 15 * 8

    @staticmethod
    def encode_statfs(sf: StatFS) -> bytes:
        return struct.pack(
            "<15q", sf.f_type, sf.f_bsize, sf.f_blocks, sf.f_bfree,
            sf.f_bavail, sf.f_files, sf.f_ffree, 0, sf.f_namelen, sf.f_bsize,
            0, 0, 0, 0, 0)

    # sysinfo (abridged linux layout)
    SYSINFO_SIZE = 14 * 8

    @staticmethod
    def encode_sysinfo(si: SysInfo) -> bytes:
        return struct.pack(
            "<14q", si.uptime_s, *si.loads, si.totalram, si.freeram, 0, 0,
            0, 0, si.procs, 0, 0, si.mem_unit)

    # tms: 4 clock_t
    TMS_SIZE = 32

    @staticmethod
    def encode_tms(u: int, s: int, cu: int, cs: int) -> bytes:
        return struct.pack("<4q", u, s, cu, cs)


def host_layout(arch: str) -> Layout:
    return Layout(arch)


GUEST_LAYOUT = Layout(WALI)
