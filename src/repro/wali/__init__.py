"""``repro.wali`` — the WebAssembly Linux Interface (the paper's core
contribution): ~150 name-bound syscalls exposing the kernel to Wasm guests
while preserving the sandbox.
"""

from .host import (
    AUTO_PASSTHROUGH, STRUCT_CALLS, WaliHost, handler_loc, implemented_names,
)
from .layout import GUEST_LAYOUT, Layout
from .mmap_pool import MmapPool
from .runtime import ExecveImage, WaliProcess, WaliRuntime
from .security import (
    FaultInjector, SecurityPolicy, SyscallLogger, check_path,
    sanitize_prot,
)
from .sigvirt import VirtualSigTable
from .spec import MODULE, SUPPORT_CALLS, SYSCALLS, SyscallSpec, coverage_report

__all__ = [
    "AUTO_PASSTHROUGH", "ExecveImage", "GUEST_LAYOUT", "Layout", "MODULE",
    "MmapPool", "STRUCT_CALLS", "SUPPORT_CALLS", "SYSCALLS",
    "FaultInjector", "SecurityPolicy", "SyscallLogger", "SyscallSpec", "VirtualSigTable", "WaliHost",
    "WaliProcess", "WaliRuntime", "check_path", "coverage_report",
    "handler_loc", "implemented_names", "sanitize_prot",
]
