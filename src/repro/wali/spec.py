"""The WALI interface specification: name-bound syscalls with static types.

WALI exposes each syscall as a Wasm import ``wali.SYS_<name>`` with a fixed
signature (§3.5).  The virtual syscall set is the *union* across supported
host ISAs; an implementation traps if it cannot faithfully execute a call on
the current host.  Name binding (instead of numbers) is what makes binaries
ISA-agnostic and statically auditable: the import section enumerates every
syscall a binary could ever make (§3.6).

Signatures are spelled as compact strings: ``i`` = i32, ``l`` = i64.  All
syscalls return ``i64`` carrying the Linux convention (result or ``-errno``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from ..kernel.arch import ARCH_SYSCALLS, ARCHES, union_syscalls
from ..wasm.types import I32, I64, FuncType

MODULE = "wali"

CAT_FS = "fs"
CAT_PROC = "process"
CAT_SIG = "signal"
CAT_MM = "memory"
CAT_NET = "net"
CAT_MISC = "misc"


@dataclass(frozen=True)
class SyscallSpec:
    name: str
    params: str            # "i"/"l" per argument
    category: str
    stateful: bool = False  # needs engine-side state (mmap pool, sigtable...)

    @property
    def import_name(self) -> str:
        return f"SYS_{self.name}"

    @property
    def functype(self) -> FuncType:
        types = tuple(I64 if c == "l" else I32 for c in self.params)
        return FuncType(types, (I64,))

    def available_on(self, arch: str) -> bool:
        return self.name in ARCH_SYSCALLS.get(arch, {})


def _build() -> Dict[str, SyscallSpec]:
    table = {}

    def add(category: str, entries):
        for entry in entries:
            stateful = False
            if len(entry) == 3:
                name, params, stateful = entry
            else:
                name, params = entry
            table[name] = SyscallSpec(name, params, category, stateful)

    add(CAT_FS, [
        ("read", "iii"), ("write", "iii"), ("open", "iii"),
        ("openat", "iiii"), ("close", "i"), ("lseek", "ili"),
        ("pread64", "iiil"), ("pwrite64", "iiil"), ("readv", "iii"),
        ("writev", "iii"), ("access", "ii"), ("faccessat", "iiii"),
        ("faccessat2", "iiii"), ("pipe", "i"), ("pipe2", "ii"),
        ("dup", "i"), ("dup2", "ii"), ("dup3", "iii"), ("fcntl", "iii"),
        ("fstat", "ii"), ("stat", "ii"), ("lstat", "ii"),
        ("newfstatat", "iiii"), ("statx", "iiiii"), ("getdents64", "iii"),
        ("getcwd", "ii"), ("chdir", "i"), ("fchdir", "i"), ("mkdir", "ii"),
        ("mkdirat", "iii"), ("rmdir", "i"), ("unlink", "i"),
        ("unlinkat", "iii"), ("rename", "ii"), ("renameat", "iiii"),
        ("renameat2", "iiiii"), ("link", "ii"), ("linkat", "iiiii"),
        ("symlink", "ii"), ("symlinkat", "iii"), ("readlink", "iii"),
        ("readlinkat", "iiii"), ("chmod", "ii"), ("fchmod", "ii"),
        ("fchmodat", "iii"), ("chown", "iii"), ("fchown", "iii"),
        ("lchown", "iii"), ("fchownat", "iiiii"), ("truncate", "il"),
        ("ftruncate", "il"), ("umask", "i"), ("utimensat", "iiii"),
        ("sync", ""), ("fsync", "i"), ("fdatasync", "i"), ("syncfs", "i"),
        ("sync_file_range", "illi"), ("flock", "ii"),
        ("sendfile", "iiii"), ("statfs", "ii"), ("fstatfs", "ii"),
        ("ioctl", "iii"), ("poll", "iii"), ("ppoll", "iiii"),
        ("select", "iiiii"), ("pselect6", "iiiiii"),
        ("fadvise64", "illi"), ("readahead", "ili"),
        ("memfd_create", "ii"), ("mincore", "iii"),
        # filesystem event notification (readiness flows through
        # epoll/ppoll/io_uring like every other waitqueue source)
        ("inotify_init1", "i"), ("inotify_add_watch", "iii"),
        ("inotify_rm_watch", "ii"),
    ])

    add(CAT_PROC, [
        ("clone", "iiii", True), ("clone3", "iiii", True),
        ("fork", "", True), ("vfork", "", True), ("execve", "iii", True),
        ("exit", "i"), ("exit_group", "i"), ("wait4", "iiii"),
        ("kill", "ii"), ("tgkill", "iii"), ("tkill", "ii"),
        ("getpid", ""), ("gettid", ""), ("getppid", ""), ("getuid", ""),
        ("geteuid", ""), ("getgid", ""), ("getegid", ""), ("setuid", "i"),
        ("setgid", "i"), ("setpgid", "ii"), ("getpgid", "i"),
        ("getpgrp", ""), ("setsid", ""), ("getsid", "i"),
        ("prlimit64", "iiii"), ("getrlimit", "ii"), ("setrlimit", "ii"),
        ("getrusage", "ii"), ("times", "i"), ("sched_yield", ""),
        ("sched_getaffinity", "iii"), ("sched_setaffinity", "iii"),
        ("getpriority", "ii"), ("setpriority", "iii"), ("nice", "i"),
        ("prctl", "iiiii"),
        ("arch_prctl", "ii"), ("set_tid_address", "i"),
        ("set_robust_list", "ii"), ("futex", "iiiiii"),
        ("getrandom", "iii"),
    ])

    add(CAT_SIG, [
        ("rt_sigaction", "iiii", True), ("rt_sigprocmask", "iiii"),
        ("rt_sigpending", "ii"), ("rt_sigsuspend", "ii"),
        ("rt_sigreturn", ""), ("rt_sigtimedwait", "iiii"),
        ("sigaltstack", "ii"), ("pause", ""), ("alarm", "i"),
        ("setitimer", "iii"), ("getitimer", "ii"),
        # fd-based synchronous signal consumption (vs sigvirt delivery)
        ("signalfd4", "iiii"),
    ])

    add(CAT_MM, [
        ("mmap", "iiiiil", True), ("munmap", "ii", True),
        ("mremap", "iiiii", True), ("mprotect", "iii"), ("msync", "iii"),
        ("madvise", "iii"), ("mincore", "iii"), ("brk", "i"),
    ])

    add(CAT_NET, [
        ("socket", "iii"), ("bind", "iii"), ("listen", "ii"),
        ("accept", "iii"), ("accept4", "iiii"), ("connect", "iii"),
        ("sendto", "iiiiii"), ("recvfrom", "iiiiii"), ("sendmsg", "iii"),
        ("recvmsg", "iii"), ("shutdown", "ii"), ("socketpair", "iiii"),
        ("setsockopt", "iiiii"), ("getsockopt", "iiiii"),
        ("getsockname", "iii"), ("getpeername", "iii"),
    ])

    add(CAT_MISC, [
        ("clock_gettime", "ii"), ("clock_getres", "ii"),
        ("clock_nanosleep", "iiii"), ("nanosleep", "ii"),
        ("gettimeofday", "ii"), ("uname", "i"), ("sysinfo", "i"),
        ("syslog", "iii"), ("chroot", "i"), ("eventfd2", "ii"),
        ("epoll_create1", "i"), ("epoll_create", "i"),
        ("epoll_ctl", "iiii"), ("epoll_pwait", "iiiiii"),
        ("epoll_wait", "iiii"), ("timerfd_create", "ii"),
        ("timerfd_settime", "iiii"), ("timerfd_gettime", "ii"),
        # batched I/O: submission/completion rings (ring memory is
        # registered via io_uring_register; one enter drains a batch)
        ("io_uring_setup", "ii"), ("io_uring_enter", "iiiiii"),
        ("io_uring_register", "iiii"),
        # profiling: perf events behind fds (sampling + counting)
        ("perf_event_open", "iiiii"),
    ])

    return table


SYSCALLS: Dict[str, SyscallSpec] = _build()


# WALI support methods for external parameters (§3.4): not syscalls, but part
# of the interface.  (name, params, results)
SUPPORT_CALLS: Tuple[Tuple[str, Tuple[str, ...], Tuple[str, ...]], ...] = (
    ("get_argc", (), (I32,)),
    ("get_argv_len", (I32,), (I32,)),
    ("copy_argv", (I32, I32), (I32,)),
    ("get_envc", (), (I32,)),
    ("get_env_len", (I32,), (I32,)),
    ("copy_env", (I32, I32), (I32,)),
)


def spec_names() -> FrozenSet[str]:
    return frozenset(SYSCALLS)


def coverage_report() -> dict:
    """How much of each ISA's syscall surface the WALI spec covers."""
    union = union_syscalls()
    spec = spec_names()
    return {
        "spec_size": len(spec),
        "union_size": len(union),
        "in_union": len(spec & union),
        "per_arch": {
            arch: len(spec & frozenset(ARCH_SYSCALLS[arch]))
            for arch in ARCHES
        },
    }
