"""The WALI runtime: wiring engine, kernel and host together.

Implements the paper's 1-to-1 process model (§3.1):

* each WALI process is one kernel process running one module instance in its
  own machine (and, when spawned, its own Python thread);
* ``fork`` deep-copies the running machine + instance (the child resumes at
  the fork return point with result 0);
* ``clone(CLONE_VM|CLONE_THREAD...)`` creates an *instance-per-thread*
  duplicate sharing linear memory and the funcref table;
* ``execve`` replaces the module image in place — any ``.wasm`` file in the
  VFS is directly executable (the paper's binfmt trick).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Union

from ..kernel import Kernel
from ..kernel.errno import EACCES, ENOEXEC, ENOENT, KernelError
from ..kernel.process import Process, STATE_RUNNING
from ..wasm import Module, decode_module, encode_module, instantiate
from ..wasm.errors import GuestExit, Trap, WasmError
from ..wasm.interp import Machine
from .host import WaliHost
from .mmap_pool import MmapPool
from .security import SecurityPolicy
from .sigvirt import VirtualSigTable


class ExecveImage(Exception):
    """Internal control flow: the guest requested a new program image."""

    def __init__(self, module: Module, path: str):
        self.module = module
        self.path = path
        super().__init__(f"execve {path}")


class WaliProcess:
    """One guest process: kernel process + instance + machine + WALI state."""

    def __init__(self, runtime: "WaliRuntime", proc: Process, module: Module):
        self.rt = runtime
        self.proc = proc
        self.module = module
        self.instance = None
        self.machine: Optional[Machine] = None
        self.host: Optional[WaliHost] = None
        self.pool: Optional[MmapPool] = None
        self.sigv: Optional[VirtualSigTable] = None
        self.wali_time_ns = 0
        self.exit_status: Optional[int] = None
        self.trap: Optional[Trap] = None
        self.thread: Optional[threading.Thread] = None
        self._load(module)

    # ---- image management ----

    def _load(self, module: Module) -> None:
        self.module = module
        self.host = WaliHost(self.rt, self)
        imports = self.host.imports()
        self.instance = instantiate(module, imports, scheme=self.rt.scheme)
        self.machine = Machine(self.instance)
        # the perf sampler walks this interpreter's frame stack
        self.proc.machine = self.machine
        if self.instance.memory is not None:
            self.pool = MmapPool(self.instance.memory)
            self.proc.mm = self.pool.space
        self.sigv = VirtualSigTable(self.proc)
        self._arm_poll(self.machine)

    def _arm_poll(self, machine: Machine) -> None:
        machine.poll_hook = self.sigv.make_poll_hook(machine,
                                                     self.instance.table)

    def poll_now(self) -> None:
        """Deliver pending unblocked signals immediately (§3.3)."""
        self.sigv.drain(self.machine, self.instance.table)

    # ---- execution ----

    def run(self) -> int:
        """Run ``_start`` to completion in the calling thread."""
        return self._run_loop(resume=False)

    def _run_loop(self, resume: bool) -> int:
        status = 0
        while True:
            try:
                if resume:
                    resume = False
                    self.machine.run(0)
                else:
                    start = self.instance.exports.get("_start")
                    if start is None:
                        raise WasmError("module has no _start export")
                    self.machine.invoke(start, [])
                status = 0
            except GuestExit as exc:
                status = exc.status
            except ExecveImage as exc:
                self._load(exc.module)
                continue
            except Trap as exc:
                self.trap = exc
                status = 128 + 6  # SIGABRT-style termination
            break
        if self.proc.state == STATE_RUNNING:
            try:
                self.rt.kernel.call(self.proc, "exit_group", status)
            except KernelError:
                pass
        self.exit_status = status
        return status

    def start_in_thread(self, resume: bool = False) -> None:
        self.thread = threading.Thread(
            target=self._run_loop, args=(resume,), daemon=True,
            name=f"wali-pid{self.proc.pid}")
        self.thread.start()

    def join(self, timeout: Optional[float] = None) -> None:
        if self.thread is not None:
            self.thread.join(timeout)

    # ---- fork support ----

    def fork_clone(self, child_proc: Process) -> "WaliProcess":
        """Duplicate this running process for ``fork``: machine state and
        memory copied, code shared; child resumes at the fork point."""
        child = WaliProcess.__new__(WaliProcess)
        child.rt = self.rt
        child.proc = child_proc
        child.module = self.module
        child.instance = self.instance.clone()
        child.machine = self.machine.clone(child.instance)
        child_proc.machine = child.machine
        child.host = WaliHost(self.rt, child)
        # the cloned instance must call the *child's* host functions
        self._rebind_host(child)
        child.pool = self.pool.fork_copy(child.instance.memory)
        child_proc.mm = child.pool.space
        child.sigv = VirtualSigTable(child_proc)
        child.wali_time_ns = 0
        child.exit_status = None
        child.trap = None
        child.thread = None
        child._arm_poll(child.machine)
        return child

    def _rebind_host(self, child: "WaliProcess") -> None:
        """Point the child's imported host functions at the child's host."""
        imports = child.host.imports()["wali"]
        funcs = list(child.instance.funcs)
        for i, im in enumerate(child.module.imports):
            if im.kind == "func" and im.module == "wali" and \
                    im.name in imports:
                funcs[i] = imports[im.name]
        child.instance.funcs = funcs
        # the table may contain host funcrefs; keep guest functions shared
        if child.instance.table is not None:
            old_to_new = {id(o): n for o, n in
                          zip(self.instance.funcs, funcs)}
            child.instance.table.elems = [
                None if e is None else
                funcs[self.instance.funcs.index(e)]
                if e in self.instance.funcs else e
                for e in child.instance.table.elems]


class WaliRuntime:
    """The engine-side WALI implementation (the paper's WAMR analog)."""

    def __init__(self, kernel: Optional[Kernel] = None,
                 arch: str = "x86_64", scheme: str = "loop",
                 policy: Optional[SecurityPolicy] = None):
        self.kernel = kernel if kernel is not None else Kernel(machine=arch)
        self.arch = arch
        self.scheme = scheme
        self.policy = policy
        self.processes: List[WaliProcess] = []

    # ---- program loading ----

    def install_binary(self, path: str, module: Module) -> None:
        """Write an encoded ``.wasm`` into the VFS (binfmt-style packaging)."""
        self.kernel.vfs.mkdirs(path.rsplit("/", 1)[0] or "/")
        self.kernel.vfs.write_file(path, encode_module(module), mode=0o755)

    def load(self, program: Union[str, Module],
             argv: Optional[List[str]] = None,
             env: Optional[Dict[str, str]] = None,
             cwd: str = "/") -> WaliProcess:
        """Create a WALI process for a module or an installed ``.wasm``."""
        if isinstance(program, str):
            module = self._image_from_path(program)
            argv = argv if argv is not None else [program]
        else:
            module = program
            argv = argv if argv is not None else [module.name or "app"]
        proc = self.kernel.create_process(argv, env or {}, cwd=cwd)
        wp = WaliProcess(self, proc, module)
        self.processes.append(wp)
        return wp

    def run(self, program, argv=None, env=None, cwd: str = "/") -> int:
        """Convenience: load + run to completion; returns the exit status."""
        return self.load(program, argv, env, cwd).run()

    def _image_from_path(self, path: str) -> Module:
        data = self.kernel.vfs.read_file(path)
        if data[:4] != b"\x00asm":
            raise KernelError(ENOEXEC, path)
        return decode_module(data, name=path)

    # ---- process model hooks (called from WaliHost) ----

    def fork(self, wp: WaliProcess, flags: int = 0) -> int:
        child_proc = self.kernel.call(wp.proc, "fork")
        child = wp.fork_clone(child_proc)
        self.processes.append(child)
        # the child resumes at the fork return point with result 0
        child.machine.stack.append(0)
        child.start_in_thread(resume=True)
        return child_proc.pid

    def spawn_thread(self, wp: WaliProcess, flags: int, fn: int,
                     arg: int) -> int:
        child_proc = self.kernel.call(wp.proc, "clone", flags)
        child = WaliProcess.__new__(WaliProcess)
        child.rt = self
        child.proc = child_proc
        child.module = wp.module
        child.instance = wp.instance.thread_clone()
        child.machine = Machine(child.instance)
        child_proc.machine = child.machine
        child.host = WaliHost(self, child)
        wp._rebind_host(child)
        child.pool = wp.pool           # CLONE_VM: shared address space
        child.sigv = VirtualSigTable(child_proc)
        child.wali_time_ns = 0
        child.exit_status = None
        child.trap = None
        child._arm_poll(child.machine)
        self.processes.append(child)

        table = child.instance.table
        if table is None or fn >= len(table.elems) or table.elems[fn] is None:
            raise KernelError(EACCES, f"bad thread entry funcref {fn}")
        entry = table.elems[fn]

        def thread_main():
            try:
                child.machine.invoke(entry, [arg])
                status = 0
            except GuestExit as exc:
                status = exc.status
            except Trap as exc:
                child.trap = exc
                status = 128 + 6
            if child_proc.state == STATE_RUNNING:
                try:
                    self.kernel.call(child_proc, "exit", status)
                except KernelError:
                    pass
            child.exit_status = status

        child.thread = threading.Thread(
            target=thread_main, daemon=True,
            name=f"wali-tid{child_proc.pid}")
        child.thread.start()
        return child_proc.pid

    def execve(self, wp: WaliProcess, path: str, argv: List[str],
               envp: List[str]) -> int:
        self.kernel.call(wp.proc, "execve", path, argv, envp)
        module = self._image_from_path(path)
        raise ExecveImage(module, path)

    # ---- reporting ----

    def breakdown(self, wp: WaliProcess) -> dict:
        """Fig. 7 data: share of time in app vs kernel vs WALI."""
        kernel_ns = self.kernel.kernel_time_ns.get(wp.proc.tgid, 0)
        wali_ns = wp.wali_time_ns
        return {"kernel_ns": kernel_ns, "wali_ns": wali_ns}
