"""mini-memcached: the repository's ``memcached`` analog.

A TCP key-value server with **three serving modes**:

* threaded (default): the main thread accepts connections and spawns one
  worker LWP per client via WALI ``clone`` (the instance-per-thread model
  of §3.1 — and the source of the clone overhead the paper calls out in
  Table 2),
* event loop (``-e``): one thread, nonblocking fds, and the kernel's epoll
  subsystem — ``accept4(SOCK_NONBLOCK)`` plus ``epoll_pwait`` dispatch,
  the c10k-style architecture the real memcached uses (libevent).  This is
  how the server holds hundreds of concurrent clients without one LWP per
  connection.
* ring (``-u``): the same single-threaded dispatch, but every accept,
  request read and reply rides the io_uring-style submission ring; one
  ``io_uring_enter`` crossing drains a whole batch of completions, and
  replies for one request coalesce into a single SEND SQE.  The accept
  path is one armed **multishot accept** SQE, every connection is one
  **multishot recv** completing into a **registered buffer** slot
  (index = fd), so the steady state queues only reply SQEs — where the
  epoll mode pays ``epoll_pwait + reads + one write per reply fragment``
  in crossings per request, the ring mode pays crossings per *batch*.

Protocol (newline-terminated)::

    set <key> <value>   -> STORED
    get <key>           -> VALUE <value> | NOT_FOUND
    del <key>           -> DELETED | NOT_FOUND
    stats               -> STATS <items> <ops>
    quit                -> closes this connection
    shutdown            -> terminates the server

The companion client drives N set/get pairs and prints a checksum.
"""

from .libc import with_libc

MEMCACHED_SOURCE = with_libc(r"""
const NBUCKETS = 256;
// node layout: {i32 next, i32 key_ptr, i32 val_ptr}
buffer table[1024];        // 256 buckets x i32
buffer lock[4];
global n_items: i32 = 0;
global n_ops: i32 = 0;
global running: i32 = 1;
global listen_fd: i32 = -1;

func bucket_of(key: i32) -> i32 {
    return (strhash(key) & 0x7fffffff) % NBUCKETS;
}

func ht_find(key: i32) -> i32 {
    var node: i32 = load32(table + bucket_of(key) * 4);
    while (node != 0) {
        if (strcmp(load32(node + 4), key) == 0) { return node; }
        node = load32(node);
    }
    return 0;
}

func ht_set(key: i32, value: i32) {
    mutex_lock(lock);
    n_ops = n_ops + 1;
    var node: i32 = ht_find(key);
    if (node != 0) {
        free(load32(node + 8));
        var nv: i32 = malloc(strlen(value) + 1);
        strcpy(nv, value);
        store32(node + 8, nv);
        mutex_unlock(lock);
        return;
    }
    node = malloc(12);
    var kp: i32 = malloc(strlen(key) + 1);
    strcpy(kp, key);
    var vp: i32 = malloc(strlen(value) + 1);
    strcpy(vp, value);
    var b: i32 = bucket_of(key);
    store32(node, load32(table + b * 4));
    store32(node + 4, kp);
    store32(node + 8, vp);
    store32(table + b * 4, node);
    n_items = n_items + 1;
    mutex_unlock(lock);
}

// returns value pointer or 0 (caller must hold no references after next set)
func ht_get(key: i32) -> i32 {
    mutex_lock(lock);
    n_ops = n_ops + 1;
    var node: i32 = ht_find(key);
    var v: i32 = 0;
    if (node != 0) { v = load32(node + 8); }
    mutex_unlock(lock);
    return v;
}

func ht_del(key: i32) -> i32 {
    mutex_lock(lock);
    n_ops = n_ops + 1;
    var b: i32 = bucket_of(key);
    var node: i32 = load32(table + b * 4);
    var prev: i32 = 0;
    while (node != 0) {
        if (strcmp(load32(node + 4), key) == 0) {
            if (prev == 0) { store32(table + b * 4, load32(node)); }
            else { store32(prev, load32(node)); }
            free(load32(node + 4));
            free(load32(node + 8));
            free(node);
            n_items = n_items - 1;
            mutex_unlock(lock);
            return 1;
        }
        prev = node;
        node = load32(node);
    }
    mutex_unlock(lock);
    return 0;
}

// ---- shared command dispatch (all serving modes) ----
// handles one complete request line; scratch is caller-private space for
// itoa.  returns 0 = keep serving, 1 = close this connection, 2 = shutdown.
//
// in ring mode replies accumulate per connection and flush as one SEND
// SQE per request batch — in the other modes each fragment is a write
// crossing of its own (the cost the ring amortizes).
global u_mode: i32 = 0;
buffer u_out[65536];       // EV_MAXFD x 256: coalesced reply bytes
buffer u_outlen[1024];     // EV_MAXFD x i32

func reply(fd: i32, s: i32) {
    var n: i32 = strlen(s);
    if (u_mode) {
        var off: i32 = load32(u_outlen + fd * 4);
        if (off + n <= 256) {
            memcopy(u_out + fd * 256 + off, s, n);
            store32(u_outlen + fd * 4, off + n);
            return;
        }
        // reply burst overflowed the slot: flush what is buffered
        // first so fragments keep their wire order, then write this
        // one directly
        if (off > 0) {
            write_all(fd, u_out + fd * 256, off);
            store32(u_outlen + fd * 4, 0);
        }
    }
    write_all(fd, s, n);
}

func handle_line(fd: i32, buf: i32, scratch: i32) -> i32 {
    // split: cmd key value
    var cmd: i32 = buf;
    var key: i32 = strchr(buf, ' ');
    var value: i32 = 0;
    if (key != 0) {
        store8(key, 0);
        key = key + 1;
        value = strchr(key, ' ');
        if (value != 0) { store8(value, 0); value = value + 1; }
    }
    if (strcmp(cmd, "set") == 0 && key != 0 && value != 0) {
        ht_set(key, value);
        reply(fd, "STORED\n");
    } else { if (strcmp(cmd, "get") == 0 && key != 0) {
        var v: i32 = ht_get(key);
        if (v == 0) { reply(fd, "NOT_FOUND\n"); }
        else {
            reply(fd, "VALUE ");
            reply(fd, v);
            reply(fd, "\n");
        }
    } else { if (strcmp(cmd, "del") == 0 && key != 0) {
        if (ht_del(key)) { reply(fd, "DELETED\n"); }
        else { reply(fd, "NOT_FOUND\n"); }
    } else { if (strcmp(cmd, "stats") == 0) {
        reply(fd, "STATS ");
        itoa(n_items, scratch);
        reply(fd, scratch);
        reply(fd, " ");
        itoa(n_ops, scratch);
        reply(fd, scratch);
        reply(fd, "\n");
    } else { if (strcmp(cmd, "quit") == 0) {
        return 1;
    } else { if (strcmp(cmd, "shutdown") == 0) {
        reply(fd, "BYE\n");
        return 2;
    } else {
        reply(fd, "ERROR\n");
    }}}}}}
    return 0;
}

// ---- threaded mode: per-connection worker (thread entry; funcref target) ----
buffer workbufs[16384];   // 16 workers x 1024 bytes
buffer slot_lock[4];
global next_slot: i32 = 0;

func conn_worker(fd: i32) {
    // carve a private line buffer per worker
    mutex_lock(slot_lock);
    var slot: i32 = next_slot % 16;
    next_slot = next_slot + 1;
    mutex_unlock(slot_lock);
    var buf: i32 = workbufs + slot * 1024;

    while (1) {
        var n: i32 = read_line(fd, buf, 512);
        if (n < 0) { break; }
        var action: i32 = handle_line(fd, buf, buf + 600);
        if (action == 1) { break; }
        if (action == 2) {
            running = 0;
            close(fd);
            exit(0);
        }
    }
    close(fd);
}

func threaded_serve() {
    while (running) {
        var conn: i32 = cret(SYS_accept(listen_fd, 0, 0));
        if (conn < 0) { break; }
        thread_create(funcref(conn_worker), conn);
    }
}

// ---- event-loop mode: one thread, epoll dispatch, nonblocking fds ----
const EV_MAXFD = 256;
buffer ev_bufs[131072];     // EV_MAXFD x 512: per-connection line buffers
buffer ev_lens[1024];       // EV_MAXFD x i32: partial-line fill counts
buffer ev_evbuf[768];       // 64 epoll_events x 12 bytes
buffer ev_rd[256];          // read chunk
buffer ev_scratch[64];      // itoa scratch (single thread: shared is fine)

func ev_close(ep: i32, fd: i32) {
    epoll_del(ep, fd);
    close(fd);
    store32(ev_lens + fd * 4, 0);
}

// drain one readable connection; returns 2 when a client asked for shutdown
func ev_conn(ep: i32, fd: i32) -> i32 {
    var base: i32 = ev_bufs + fd * 512;
    var len: i32 = load32(ev_lens + fd * 4);
    while (1) {
        var r: i32 = read(fd, ev_rd, 256);
        if (r < 0) {
            if (errno == EAGAIN) {
                store32(ev_lens + fd * 4, len);
                return 0;
            }
            ev_close(ep, fd);
            return 0;
        }
        if (r == 0) { ev_close(ep, fd); return 0; }
        var i: i32 = 0;
        while (i < r) {
            var c: i32 = load8u(ev_rd + i);
            if (c == 10) {
                store8(base + len, 0);
                len = 0;
                var action: i32 = handle_line(fd, base, ev_scratch);
                if (action == 1) { ev_close(ep, fd); return 0; }
                if (action == 2) { return 2; }
            } else {
                if (len < 500) { store8(base + len, c); len = len + 1; }
            }
            i = i + 1;
        }
    }
    return 0;
}

func ev_serve() {
    var ep: i32 = cret(SYS_epoll_create1(0));
    set_nonblock(listen_fd);
    epoll_add(ep, listen_fd, EPOLLIN);
    while (running) {
        var n: i32 = epoll_wait(ep, ev_evbuf, 64, 0 - 1);
        var i: i32 = 0;
        while (i < n) {
            var fd: i32 = ev_fd(ev_evbuf, i);
            if (fd == listen_fd) {
                // accept everything the backlog holds, edge-style
                while (1) {
                    var conn: i32 = cret(SYS_accept4(listen_fd, 0, 0,
                                                     SOCK_NONBLOCK));
                    if (conn < 0) { break; }
                    if (conn >= EV_MAXFD) { close(conn); }
                    else {
                        store32(ev_lens + conn * 4, 0);
                        epoll_add(ep, conn, EPOLLIN);
                    }
                }
            } else {
                if (ev_conn(ep, fd) == 2) { running = 0; }
            }
            i = i + 1;
        }
    }
}

// ---- ring mode: accept/read/reply batched through the submission ring ----
// (uring_push / OPF_SEND_QUIET come from the guest libc)
const UD_ACCEPT = 65536;   // tag 1 << 16
const UD_CONN = 131072;    // tag 2 << 16
const UD_SENT = 262144;    // tag 4 << 16

buffer u_rd[65536];        // EV_MAXFD x 256: per-connection recv slots
buffer u_tab[2048];        // EV_MAXFD x 8: iovec table registering u_rd

// one completed RECV: assemble lines, dispatch, coalesce the replies
// into a single quiet SEND, re-arm the read.  returns 2 on shutdown.
func u_conn(fd: i32, res: i32) -> i32 {
    var base: i32 = ev_bufs + fd * 512;
    var len: i32 = load32(ev_lens + fd * 4);
    var chunk: i32 = u_rd + fd * 256;
    var action: i32 = 0;
    var i: i32 = 0;
    while (i < res) {
        var c: i32 = load8u(chunk + i);
        if (c == 10) {
            store8(base + len, 0);
            len = 0;
            action = handle_line(fd, base, ev_scratch);
            if (action != 0) { break; }
        } else {
            if (len < 500) { store8(base + len, c); len = len + 1; }
        }
        i = i + 1;
    }
    store32(ev_lens + fd * 4, len);
    var out: i32 = load32(u_outlen + fd * 4);
    if (out > 0) {
        uring_push(OPF_SEND_QUIET, fd, u_out + fd * 256, out, UD_SENT + fd);
        store32(u_outlen + fd * 4, 0);
    }
    if (action == 1) {
        uring_submit();   // push the farewell bytes before the close
        close(fd);
        return 0;
    }
    if (action == 2) { return 2; }
    // no recv re-arm: the multishot recv stays armed and posts the
    // next request into this connection's registered slot on reap
    return 0;
}

func ur_serve() {
    if (uring_init(256) < 0) { eprint("memcached: no ring\n"); exit(1); }
    // register the per-connection recv slots once (slot index = fd):
    // every request then lands without per-op address translation
    var t: i32 = 0;
    while (t < EV_MAXFD) {
        store32(u_tab + t * 8, u_rd + t * 256);
        store32(u_tab + t * 8 + 4, 256);
        t = t + 1;
    }
    if (uring_register_buffers(u_tab, EV_MAXFD) < 0) {
        eprint("memcached: no fixed buffers\n"); exit(1);
    }
    // one armed multishot accept serves every connection
    uring_accept_multishot(listen_fd, UD_ACCEPT + listen_fd);
    while (running) {
        var n: i32 = uring_reap_batch(1, 0);
        if (n < 0) { break; }
        var head: i32 = load32(__uring_base + 12);
        var i: i32 = 0;
        while (i < n) {
            var cp: i32 = __uring_cqbase + ((head + i) & __uring_cqmask) * 16;
            var ud: i32 = i32(load64(cp));
            var res: i32 = load32(cp + 8);
            var tag: i32 = ud / 65536;
            var fd: i32 = ud % 65536;
            if (tag == 1) {
                if (res >= 0) {
                    if (res >= EV_MAXFD) { close(res); }
                    else {
                        store32(ev_lens + res * 4, 0);
                        store32(u_outlen + res * 4, 0);
                        // one multishot fixed recv per connection;
                        // the accept SQE stays armed by itself
                        uring_recv_multishot(res, res, 256, UD_CONN + res);
                    }
                }
            } else { if (tag == 2) {
                if (res > 0) {
                    if (u_conn(fd, res) == 2) { running = 0; }
                } else {
                    close(fd);
                    store32(ev_lens + fd * 4, 0);
                }
            }}
            i = i + 1;
        }
        uring_cq_advance(n);
    }
    uring_submit();   // flush the BYE written by a shutdown request
}

export func _start() {
    __init_args();
    // real memcached refuses to run as root without -u (privilege check)
    if (i32(SYS_getuid()) == 0) {
        eprint("memcached: can not run as root\n");
        exit(71);
    }
    var port: i32 = 11211;
    var event_mode: i32 = 0;
    if (argc() > 1) { port = atoi(argv(1)); }
    if (argc() > 2) {
        if (strcmp(argv(2), "-e") == 0) { event_mode = 1; }
        if (strcmp(argv(2), "-u") == 0) { event_mode = 2; u_mode = 1; }
    }
    listen_fd = tcp_listen(port, 128);
    if (listen_fd < 0) { eprint("memcached: cannot listen\n"); exit(1); }
    println("memcached: ready");
    if (event_mode == 1) { ev_serve(); }
    else { if (event_mode == 2) { ur_serve(); }
    else { threaded_serve(); }}
    exit(0);
}
""")

MEMCACHED_CLIENT_SOURCE = with_libc(r"""
buffer buf[1024];
buffer keybuf[64];
buffer valbuf[64];

func send_line(fd: i32, s: i32) {
    write_all(fd, s, strlen(s));
    write_all(fd, "\n", 1);
}

export func _start() {
    __init_args();
    var port: i32 = 11211;
    var n: i32 = 100;
    var do_shutdown: i32 = 0;
    if (argc() > 1) { port = atoi(argv(1)); }
    if (argc() > 2) { n = atoi(argv(2)); }
    if (argc() > 3) { do_shutdown = atoi(argv(3)); }
    var fd: i32 = tcp_connect(port);
    if (fd < 0) { eprint("client: cannot connect\n"); exit(1); }

    var checksum: i32 = 0;
    var i: i32 = 0;
    while (i < n) {
        strcpy(buf, "set k");
        itoa(i, keybuf);
        strcat(buf, keybuf);
        strcat(buf, " v");
        itoa(i * 31 % 997, valbuf);
        strcat(buf, valbuf);
        send_line(fd, buf);
        read_line(fd, buf, 1024);            // STORED
        i = i + 1;
    }
    i = 0;
    while (i < n) {
        strcpy(buf, "get k");
        itoa(i, keybuf);
        strcat(buf, keybuf);
        send_line(fd, buf);
        read_line(fd, buf, 1024);            // VALUE vXXX
        if (strncmp(buf, "VALUE v", 7) == 0) {
            checksum = checksum + atoi(buf + 7);
        }
        i = i + 1;
    }
    if (do_shutdown) { send_line(fd, "shutdown"); }
    else { send_line(fd, "quit"); }
    print("client ok checksum=");
    print_int(checksum);
    println("");
    close(fd);
    exit(0);
}
""")
