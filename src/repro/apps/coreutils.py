"""Small guest coreutils: echo, cat, true, false, wc.

These are the "intermediate binaries" complex builds execute (the paper's
amusing ``bash`` build anecdote) and the external commands the mini shell
spawns via fork/execve.
"""

from .libc import with_libc

ECHO_SOURCE = with_libc(r"""
export func _start() {
    __init_args();
    var i: i32 = 1;
    while (i < argc()) {
        if (i > 1) { print(" "); }
        print(argv(i));
        i = i + 1;
    }
    println("");
    exit(0);
}
""")

CAT_SOURCE = with_libc(r"""
buffer iobuf[4096];

func cat_fd(fd: i32) {
    while (1) {
        var n: i32 = read(fd, iobuf, 4096);
        if (n <= 0) { break; }
        write_all(STDOUT, iobuf, n);
    }
}

export func _start() {
    __init_args();
    if (argc() < 2) {
        cat_fd(STDIN);
        exit(0);
    }
    var i: i32 = 1;
    var status: i32 = 0;
    while (i < argc()) {
        var fd: i32 = open(argv(i), O_RDONLY, 0);
        if (fd < 0) {
            eprint("cat: cannot open ");
            eprint(argv(i));
            eprint("\n");
            status = 1;
        } else {
            cat_fd(fd);
            close(fd);
        }
        i = i + 1;
    }
    exit(status);
}
""")

TRUE_SOURCE = with_libc(r"""
export func _start() { exit(0); }
""")

FALSE_SOURCE = with_libc(r"""
export func _start() { exit(1); }
""")

# zlib analog: a pure-compute RLE compressor over stdin/stdout — the one
# codebase in the paper's Table 1 that ports to every API (no mmap, no argv).
RLE_SOURCE = with_libc(r"""
buffer inbuf[4096];
buffer outbuf[8192];

// run-length encode: (count u8, byte) pairs
export func _start() {
    while (1) {
        var n: i32 = read(STDIN, inbuf, 4096);
        if (n <= 0) { break; }
        var out: i32 = 0;
        var i: i32 = 0;
        while (i < n) {
            var b: i32 = load8u(inbuf + i);
            var run: i32 = 1;
            while (i + run < n && run < 255 && load8u(inbuf + i + run) == b) {
                run = run + 1;
            }
            store8(outbuf + out, run);
            store8(outbuf + out + 1, b);
            out = out + 2;
            i = i + run;
        }
        write_all(STDOUT, outbuf, out);
    }
    SYS_exit_group(0);
}
""")

WC_SOURCE = with_libc(r"""
buffer iobuf[4096];
buffer numbuf[32];

export func _start() {
    __init_args();
    var fd: i32 = STDIN;
    if (argc() > 1) {
        fd = open(argv(1), O_RDONLY, 0);
        if (fd < 0) { eprint("wc: cannot open\n"); exit(1); }
    }
    var lines: i32 = 0;
    var bytes: i32 = 0;
    while (1) {
        var n: i32 = read(fd, iobuf, 4096);
        if (n <= 0) { break; }
        bytes = bytes + n;
        var i: i32 = 0;
        while (i < n) {
            if (load8u(iobuf + i) == 10) { lines = lines + 1; }
            i = i + 1;
        }
    }
    itoa(lines, numbuf);
    print(numbuf);
    print(" ");
    itoa(bytes, numbuf);
    println(numbuf);
    exit(0);
}
""")
