"""perf: the guest profiling tool (stat / record / report).

The Table-1 row WASI/WASIX cannot express: a profiler running *fully
inside the sandbox*, driving ``perf_event_open`` + ``ioctl`` + ``read``
+ ``epoll`` against the kernel's perf subsystem with no host-side help.

Modes (``argv[1]``)::

    perf stat <counter> [iters]       counting event demo: open the
        named CounterRegistry / tracepoint:<point> / instructions
        source system-wide, reset, spin `iters` getpid crossings, read
        the 8-byte value and print it.
    perf record <freq> <max> [pid]    sampling profiler: open a
        sampler at `freq` Hz scoped to `pid` (-1 = system-wide), tail
        the fd through epoll and print ONE folded-stack line per
        sample (``frame_a;frame_b;frame_c``) — raw material for
        metrics/flamegraph.py.
    perf report <freq> <max> [pid]    same capture, but aggregated
        in-guest: distinct folded stacks with counts, first-seen
        order (deterministic under the deterministic sampling clock).

Output ends with ``perf: N samples lost=L`` (or the stat line), so
callers can assert on completeness.
"""

from .libc import with_libc

PERF_SOURCE = with_libc(r"""
const PERF_REC_SAMPLE = 9;
const PERF_REC_LOST = 2;
const MAX_STACKS = 64;

buffer rbuf[8192];          // raw records from the perf fd
buffer evbuf[12];           // 1 epoll_event
buffer sbuf[512];           // one folded stack line
buffer agg_ptr[256];        // MAX_STACKS x i32: folded-string ptrs
buffer agg_cnt[256];        // MAX_STACKS x i32: sample counts
global agg_n: i32 = 0;
global lost: i32 = 0;

// ---- folding: "a;b;c" of the sample record at p ----
func fold_sample(p: i32, dst: i32) -> i32 {
    var nf: i32 = ps_nframes(p);
    if (nf == 0) {
        strcpy(dst, "[unknown]");
        return strlen(dst);
    }
    var f: i32 = p + 36;
    var w: i32 = 0;
    var i: i32 = 0;
    while (i < nf) {
        var len: i32 = load16u(f);
        if (w + len + 2 > 500) { break; }
        if (i > 0) { store8(dst + w, ';'); w = w + 1; }
        memcopy(dst + w, f + 2, len);
        w = w + len;
        f = f + 2 + len;
        i = i + 1;
    }
    store8(dst + w, 0);
    return w;
}

func agg_add(s: i32) {
    var i: i32 = 0;
    while (i < agg_n) {
        if (strcmp(load32(agg_ptr + i * 4), s) == 0) {
            store32(agg_cnt + i * 4, load32(agg_cnt + i * 4) + 1);
            return;
        }
        i = i + 1;
    }
    if (agg_n >= MAX_STACKS) { return; }
    var copy: i32 = malloc(strlen(s) + 1);
    if (copy == 0) { return; }
    strcpy(copy, s);
    store32(agg_ptr + agg_n * 4, copy);
    store32(agg_cnt + agg_n * 4, 1);
    agg_n = agg_n + 1;
}

// ---- perf stat ----
func do_stat(cfg: i32, iters: i32) {
    var type: i32 = PERF_TYPE_COUNTER;
    if (strncmp(cfg, "tracepoint:", 11) == 0) {
        type = PERF_TYPE_TRACEPOINT;
        cfg = cfg + 11;
    }
    var fd: i32 = perf_open_scoped(type, cfg, i64(0), 0, 0 - 1);
    if (fd < 0) { eprint("perf: bad counter\n"); exit(1); }
    perf_reset(fd);
    var i: i32 = 0;
    while (i < iters) { SYS_getpid(); i = i + 1; }
    var v: i64 = perf_read_count(fd);
    close(fd);
    print("perf stat ");
    print(cfg);
    print(": ");
    print_int(i32(v));
    println("");
}

// ---- perf record / report ----
func do_record(freq: i32, max: i32, pid: i32, aggregate: i32) {
    var fd: i32 = perf_open_sampler(freq, pid);
    if (fd < 0) { eprint("perf: open failed\n"); exit(1); }
    set_nonblock(fd);
    var ep: i32 = cret(SYS_epoll_create1(0));
    epoll_add(ep, fd, EPOLLIN);
    var got: i32 = 0;
    var idle: i32 = 0;
    while (got < max) {
        // each wait crossing is itself a sampling opportunity, so a
        // self-scoped capture stays self-feeding; a foreign scope
        // progresses on the target's own syscalls
        var n: i32 = epoll_wait(ep, evbuf, 1, 20);
        if (n < 0) { break; }
        if (n == 0) {
            idle = idle + 1;
            if (idle > 500) { break; }   // ~10 s stall guard
            continue;
        }
        idle = 0;
        var r: i32 = read(fd, rbuf, 8192);
        if (r <= 0) { continue; }
        var p: i32 = rbuf;
        while (p + 8 <= rbuf + r) {
            var sz: i32 = ps_size(p);
            if (sz < 8) { break; }
            if (ps_type(p) == PERF_REC_SAMPLE) {
                fold_sample(p, sbuf);
                if (aggregate) { agg_add(sbuf); }
                else { println(sbuf); }
                got = got + 1;
            }
            if (ps_type(p) == PERF_REC_LOST) {
                lost = lost + i32(load64(p + 8));
            }
            p = p + sz;
            if (got >= max) { break; }
        }
    }
    close(ep);
    close(fd);
    if (aggregate) {
        var i: i32 = 0;
        while (i < agg_n) {
            print(load32(agg_ptr + i * 4));
            print(" ");
            print_int(load32(agg_cnt + i * 4));
            println("");
            i = i + 1;
        }
    }
    print("perf: ");
    print_int(got);
    print(" samples lost=");
    print_int(lost);
    println("");
}

export func _start() {
    __init_args();
    if (argc() < 2) {
        eprint("usage: perf stat <counter> [iters] | perf record|report <freq> <max> [pid]\n");
        exit(2);
    }
    var mode: i32 = argv(1);
    if (strcmp(mode, "stat") == 0) {
        var iters: i32 = 1000;
        if (argc() > 3) { iters = atoi(argv(3)); }
        if (argc() < 3) { eprint("perf stat: need a counter name\n"); exit(2); }
        do_stat(argv(2), iters);
        exit(0);
    }
    var freq: i32 = 997;
    var max: i32 = 32;
    var pid: i32 = 0 - 1;
    if (argc() > 2) { freq = atoi(argv(2)); }
    if (argc() > 3) { max = atoi(argv(3)); }
    if (argc() > 4) { pid = atoi(argv(4)); }
    if (strcmp(mode, "record") == 0) {
        do_record(freq, max, pid, 0);
        exit(0);
    }
    if (strcmp(mode, "report") == 0) {
        do_record(freq, max, pid, 1);
        exit(0);
    }
    eprint("perf: unknown mode\n");
    exit(2);
}
""")
