"""Application registry: compile, cache and install the guest app suite.

``build(name)`` returns the compiled module (memoised — compilation is
deterministic), ``install_all`` drops every app into a runtime's VFS under
``/bin/<name>.wasm`` so the shell can fork/execve them and ``.wasm`` files
are directly executable (§4.1's binfmt trick).
"""

from __future__ import annotations

from typing import Dict, List

from ..cc import compile_source
from ..wasm import Module
from .coreutils import (
    CAT_SOURCE, ECHO_SOURCE, FALSE_SOURCE, RLE_SOURCE, TRUE_SOURCE,
    WC_SOURCE,
)
from .event_echo import EVENT_ECHO_SOURCE
from .ktop import KTOP_SOURCE
from .libc import LIBC_SOURCE, with_libc
from .lua import LUA_SOURCE
from .memcached import MEMCACHED_CLIENT_SOURCE, MEMCACHED_SOURCE
from .mqtt import MQTT_BENCH_SOURCE, MQTT_BROKER_SOURCE
from .perf import PERF_SOURCE
from .sh import SH_SOURCE
from .sqlite import SQLITE_SOURCE
from .watchd import WATCHD_SOURCE

APP_SOURCES: Dict[str, str] = {
    "echo": ECHO_SOURCE,
    "cat": CAT_SOURCE,
    "true": TRUE_SOURCE,
    "false": FALSE_SOURCE,
    "wc": WC_SOURCE,
    "rle": RLE_SOURCE,
    "mini_sh": SH_SOURCE,
    "mini_lua": LUA_SOURCE,
    "mini_sqlite": SQLITE_SOURCE,
    "mini_memcached": MEMCACHED_SOURCE,
    "memcached_client": MEMCACHED_CLIENT_SOURCE,
    "event_echo": EVENT_ECHO_SOURCE,
    "mqtt_broker": MQTT_BROKER_SOURCE,
    "paho_bench": MQTT_BENCH_SOURCE,
    "watchd": WATCHD_SOURCE,
    "ktop": KTOP_SOURCE,
    "perf": PERF_SOURCE,
}

# mapping to the paper's Table 1 rows (what each app stands in for)
PAPER_ANALOG = {
    "mini_sh": "bash",
    "mini_lua": "lua",
    "mini_sqlite": "sqlite",
    "mini_memcached": "memcached",
    "paho_bench": "paho-mqtt",
    "mqtt_broker": "paho-mqtt",
    "echo": "coreutils",
    "cat": "coreutils",
    "wc": "coreutils",
    "true": "coreutils",
    "false": "coreutils",
    "memcached_client": "memcached",
    "rle": "zlib",
    "event_echo": "memcached",
    "watchd": "inotify-tools",
    "ktop": "procps/trace-cmd",
    "perf": "linux-perf",
}

_cache: Dict[str, Module] = {}


def app_names() -> List[str]:
    return sorted(APP_SOURCES)


def build(name: str) -> Module:
    if name not in APP_SOURCES:
        raise KeyError(f"unknown app {name!r}")
    if name not in _cache:
        _cache[name] = compile_source(APP_SOURCES[name], name=name)
    return _cache[name]


def install_all(runtime, names=None) -> None:
    """Install apps as executable ``.wasm`` files in the runtime's VFS."""
    for name in (names or app_names()):
        runtime.install_binary(f"/bin/{name}.wasm", build(name))


def clear_cache() -> None:
    _cache.clear()
