"""event_echo: a many-client event-loop echo/chat workload.

One single-threaded guest process plays both sides of a c10k-style chat:
it opens a loopback listener, connects N nonblocking clients to itself,
and drives R echo rounds per client — every accept, read and reply
dispatched from readiness, no thread per connection.  Two serving modes:

* **epoll** (default): ``epoll_pwait`` readiness plus one ``read``/
  ``write``/``accept4`` crossing per unblocked operation — the classic
  event loop, and the per-op crossing cost the ring mode removes,
* **ring** (``-u``): every accept/recv/send is queued as an SQE in the
  shared io_uring-style ring; one ``io_uring_enter`` crossing submits
  the batch and reaps every completion, so crossings are paid per
  *batch*, not per op (client pings ride ``IOSQE_IO_LINK`` chains:
  SEND linked to the RECV of its echo).  The server side goes further:
  one **multishot accept** SQE serves every connection, each connection
  is one **multishot recv** completing into a **registered buffer**
  slot (index = fd), and echoes are fixed-buffer SENDs — so the steady
  state queues only one echo SQE per request and the engine never
  re-translates a buffer address.

``argv: event_echo [nclients] [rounds] [-u]``.

This is the workload behind ``bench_epoll_scaling`` and
``bench_uring_batching``: its syscall mix is pure dispatch, so the
guest<->host boundary cost dominates — exactly the Fig. 7 / Table 2
crossing share the ring amortizes.
"""

from .libc import with_libc

EVENT_ECHO_SOURCE = with_libc(r"""
const MAXFD = 256;
const ROLE_NONE = 0;
const ROLE_CLIENT = 1;
const ROLE_SERVER = 2;

buffer roles[1024];       // MAXFD x i32
buffer remaining[1024];   // MAXFD x i32: echo rounds left (clients)
buffer evbuf[768];        // 64 epoll_events x 12
buffer rdbuf[128];
buffer msgbuf[32];

global echoes: i32 = 0;
global port: i32 = 7777;

// ---- epoll mode: one crossing per unblocked operation ----

func ep_serve(lfd: i32, nclients: i32, rounds: i32) {
    var ep: i32 = cret(SYS_epoll_create1(0));
    set_nonblock(lfd);
    epoll_add(ep, lfd, EPOLLIN);

    // connect all clients up front; each opens with one ping
    var i: i32 = 0;
    while (i < nclients) {
        var c: i32 = tcp_connect(port);
        if (c < 0 || c >= MAXFD) { eprint("event_echo: connect failed\n"); exit(1); }
        set_nonblock(c);
        store32(roles + c * 4, ROLE_CLIENT);
        store32(remaining + c * 4, rounds);
        epoll_add(ep, c, EPOLLIN);
        write(c, "ping\n", 5);
        i = i + 1;
    }

    var live: i32 = nclients;
    while (live > 0) {
        var n: i32 = epoll_wait(ep, evbuf, 64, 2000);
        if (n <= 0) { break; }  // stall: deadlock guard for the benchmark
        i = 0;
        while (i < n) {
            var fd: i32 = ev_fd(evbuf, i);
            if (fd == lfd) {
                while (1) {
                    var conn: i32 = cret(SYS_accept4(lfd, 0, 0, SOCK_NONBLOCK));
                    if (conn < 0) { break; }
                    if (conn >= MAXFD) { close(conn); }
                    else {
                        store32(roles + conn * 4, ROLE_SERVER);
                        epoll_add(ep, conn, EPOLLIN);
                    }
                }
            } else { if (load32(roles + fd * 4) == ROLE_SERVER) {
                // server side: echo whatever arrived back to the sender
                var r: i32 = read(fd, rdbuf, 128);
                if (r > 0) {
                    write_all(fd, rdbuf, r);
                    echoes = echoes + 1;
                } else { if (r == 0) {
                    epoll_del(ep, fd);
                    close(fd);
                }}
            } else {
                // client side: count the echo, go again or hang up
                var r2: i32 = read(fd, rdbuf, 128);
                if (r2 > 0) {
                    var left: i32 = load32(remaining + fd * 4) - 1;
                    store32(remaining + fd * 4, left);
                    if (left > 0) {
                        write(fd, "ping\n", 5);
                    } else {
                        epoll_del(ep, fd);
                        close(fd);
                        live = live - 1;
                    }
                } else { if (r2 == 0) {
                    epoll_del(ep, fd);
                    close(fd);
                    live = live - 1;
                }}
            }}
            i = i + 1;
        }
    }
}

// ---- ring mode: one crossing per batch ----

const TAG_ACCEPT = 1;
const TAG_SRV = 2;     // server-side RECV completion
const TAG_CLI = 3;     // client-side RECV completion
const TAG_SENT = 4;    // SEND completion (no action needed)
// user_data bases: tag in the high half, fd in the low half
const UD_ACCEPT = 65536;
const UD_SRV = 131072;
const UD_CLI = 196608;
const UD_SENT = 262144;

buffer ubufs[32768];   // MAXFD x 128: per-fd I/O slots
buffer u_tab[2048];    // MAXFD x 8: iovec table registering the slots

// SEND | (CQE_SKIP_SUCCESS | FIXED_BUFFER) << 8: a quiet echo send
// whose addr field is a registered-slot index, not a pointer
const OPF_SEND_FIXED_QUIET = 49156;

// fused writer for the dominant pattern — a SEND immediately followed
// by a RECV re-arm on the same fd slot: one frame, one tail update
func u_sqe_send_recv(opf: i32, fd: i32, addr: i32, sendlen: i32,
                     send_ud: i32, recv_ud: i32) {
    var tail: i32 = load32(__uring_base + 4);
    if (tail - load32(__uring_base) >= __uring_sqn - 1) {
        uring_submit();
        tail = load32(__uring_base + 4);
    }
    var p: i32 = __uring_sqbase + (tail & __uring_sqmask) * 32;
    store32(p, opf);
    store32(p + 4, fd);
    store32(p + 8, addr);
    store32(p + 12, sendlen);
    store32(p + 24, send_ud);
    store32(p + 28, 0);
    p = __uring_sqbase + ((tail + 1) & __uring_sqmask) * 32;
    store32(p, IORING_OP_RECV);
    store32(p + 4, fd);
    store32(p + 8, addr);
    store32(p + 12, 128);
    store32(p + 24, recv_ud);
    store32(p + 28, 0);
    store32(__uring_base + 4, tail + 2);
}

// one client round: SEND ping linked to the RECV of its echo.  The
// client's slot holds "ping\n" from setup and every echo puts the same
// bytes back, so the payload never needs rewriting.
func u_client_round(fd: i32) {
    u_sqe_send_recv(OPF_SEND_LINKED, fd, ubufs + fd * 128, 5,
                    UD_SENT + fd, UD_CLI + fd);
}

func u_serve(lfd: i32, nclients: i32, rounds: i32) {
    if (uring_init(256) < 0) { eprint("event_echo: no ring\n"); exit(1); }
    // register every per-fd slot ONCE (slot index = fd): fixed-buffer
    // recvs/sends then skip the per-op address translation
    var t: i32 = 0;
    while (t < MAXFD) {
        store32(u_tab + t * 8, ubufs + t * 128);
        store32(u_tab + t * 8 + 4, 128);
        t = t + 1;
    }
    if (uring_register_buffers(u_tab, MAXFD) < 0) {
        eprint("event_echo: no fixed buffers\n"); exit(1);
    }
    // one armed SQE accepts every connection the server will ever see
    uring_accept_multishot(lfd, UD_ACCEPT + lfd);

    var i: i32 = 0;
    while (i < nclients) {
        var c: i32 = tcp_connect(port);
        if (c < 0 || c >= MAXFD) { eprint("event_echo: connect failed\n"); exit(1); }
        store32(remaining + c * 4, rounds);
        strcpy(ubufs + c * 128, "ping\n");
        u_client_round(c);
        i = i + 1;
    }

    var live: i32 = nclients;
    while (live > 0) {
        var n: i32 = uring_reap_batch(1, 2000);
        if (n <= 0) { break; }  // stall guard, like the epoll mode
        // walk the CQ ring directly in guest memory: per-CQE cost is
        // pointer arithmetic + two loads, no crossings
        var head: i32 = load32(__uring_base + 12);
        i = 0;
        while (i < n) {
            var cp: i32 = __uring_cqbase + ((head + i) & __uring_cqmask) * 16;
            var ud: i32 = i32(load64(cp));
            var res: i32 = load32(cp + 8);
            var tag: i32 = ud / 65536;
            var fd: i32 = ud % 65536;
            if (tag == TAG_ACCEPT) {
                if (res >= 0 && res < MAXFD) {
                    // one armed multishot recv serves the connection's
                    // whole lifetime, landing data in slot `res` — the
                    // accept SQE stays armed, nothing to re-queue
                    uring_recv_multishot(res, res, 128, UD_SRV + res);
                }
            } else { if (tag == TAG_SRV) {
                if (res > 0) {
                    // the message is already in this fd's registered
                    // slot: echo straight from it (quiet fixed send);
                    // the multishot recv re-arms itself on reap
                    uring_push(OPF_SEND_FIXED_QUIET, fd, fd, res,
                          UD_SENT + fd);
                    echoes = echoes + 1;
                } else { if (res == 0) { close(fd); }}
            } else { if (tag == TAG_CLI) {
                if (res > 0) {
                    var left: i32 = load32(remaining + fd * 4) - 1;
                    store32(remaining + fd * 4, left);
                    if (left > 0) { u_client_round(fd); }
                    else {
                        close(fd);
                        live = live - 1;
                    }
                } else { if (res == 0) {
                    close(fd);
                    live = live - 1;
                }}
            }}}
            i = i + 1;
        }
        uring_cq_advance(n);
    }
}

export func _start() {
    __init_args();
    var nclients: i32 = 8;
    var rounds: i32 = 10;
    var ring_mode: i32 = 0;
    if (argc() > 1) { nclients = atoi(argv(1)); }
    if (argc() > 2) { rounds = atoi(argv(2)); }
    if (argc() > 3) {
        if (strcmp(argv(3), "-u") == 0) { ring_mode = 1; }
    }
    if (nclients > 100) { nclients = 100; }

    var lfd: i32 = tcp_listen(port, 128);
    if (lfd < 0) { eprint("event_echo: cannot listen\n"); exit(1); }
    if (ring_mode) { u_serve(lfd, nclients, rounds); }
    else { ep_serve(lfd, nclients, rounds); }
    print("echo ok echoes=");
    print_int(echoes);
    println("");
    exit(0);
}
""")
