"""event_echo: a many-client event-loop echo/chat workload.

One single-threaded guest process plays both sides of a c10k-style chat:
it opens a loopback listener, connects N nonblocking clients to itself,
and drives R echo rounds per client entirely through one epoll instance —
every accept, read and reply dispatched from ``epoll_pwait`` readiness,
no thread per connection.  ``argv: event_echo [nclients] [rounds]``.

This is the workload behind ``bench_epoll_scaling`` and the event-loop
row of the virtualization sweeps: its syscall mix is pure dispatch
(accept4/read/write/epoll_pwait), so kernel-side readiness cost dominates.
"""

from .libc import with_libc

EVENT_ECHO_SOURCE = with_libc(r"""
const MAXFD = 256;
const ROLE_NONE = 0;
const ROLE_CLIENT = 1;
const ROLE_SERVER = 2;

buffer roles[1024];       // MAXFD x i32
buffer remaining[1024];   // MAXFD x i32: echo rounds left (clients)
buffer evbuf[768];        // 64 epoll_events x 12
buffer rdbuf[128];
buffer msgbuf[32];

global echoes: i32 = 0;

export func _start() {
    __init_args();
    var nclients: i32 = 8;
    var rounds: i32 = 10;
    if (argc() > 1) { nclients = atoi(argv(1)); }
    if (argc() > 2) { rounds = atoi(argv(2)); }
    if (nclients > 100) { nclients = 100; }

    var port: i32 = 7777;
    var lfd: i32 = tcp_listen(port, 128);
    if (lfd < 0) { eprint("event_echo: cannot listen\n"); exit(1); }
    var ep: i32 = cret(SYS_epoll_create1(0));
    set_nonblock(lfd);
    epoll_add(ep, lfd, EPOLLIN);

    // connect all clients up front; each opens with one ping
    var i: i32 = 0;
    while (i < nclients) {
        var c: i32 = tcp_connect(port);
        if (c < 0 || c >= MAXFD) { eprint("event_echo: connect failed\n"); exit(1); }
        set_nonblock(c);
        store32(roles + c * 4, ROLE_CLIENT);
        store32(remaining + c * 4, rounds);
        epoll_add(ep, c, EPOLLIN);
        write(c, "ping\n", 5);
        i = i + 1;
    }

    var live: i32 = nclients;
    while (live > 0) {
        var n: i32 = epoll_wait(ep, evbuf, 64, 2000);
        if (n <= 0) { break; }  // stall: deadlock guard for the benchmark
        i = 0;
        while (i < n) {
            var fd: i32 = ev_fd(evbuf, i);
            if (fd == lfd) {
                while (1) {
                    var conn: i32 = cret(SYS_accept4(lfd, 0, 0, SOCK_NONBLOCK));
                    if (conn < 0) { break; }
                    if (conn >= MAXFD) { close(conn); }
                    else {
                        store32(roles + conn * 4, ROLE_SERVER);
                        epoll_add(ep, conn, EPOLLIN);
                    }
                }
            } else { if (load32(roles + fd * 4) == ROLE_SERVER) {
                // server side: echo whatever arrived back to the sender
                var r: i32 = read(fd, rdbuf, 128);
                if (r > 0) {
                    write_all(fd, rdbuf, r);
                    echoes = echoes + 1;
                } else { if (r == 0) {
                    epoll_del(ep, fd);
                    close(fd);
                }}
            } else {
                // client side: count the echo, go again or hang up
                var r2: i32 = read(fd, rdbuf, 128);
                if (r2 > 0) {
                    var left: i32 = load32(remaining + fd * 4) - 1;
                    store32(remaining + fd * 4, left);
                    if (left > 0) {
                        write(fd, "ping\n", 5);
                    } else {
                        epoll_del(ep, fd);
                        close(fd);
                        live = live - 1;
                    }
                } else { if (r2 == 0) {
                    epoll_del(ep, fd);
                    close(fd);
                    live = live - 1;
                }}
            }}
            i = i + 1;
        }
    }
    print("echo ok echoes=");
    print_int(echoes);
    println("");
    exit(0);
}
""")
