"""mini-sqlite: the repository's ``sqlite`` analog — a file-backed KV store.

A log-structured single-file database with fixed 64-byte records, an
mmap/mremap-grown in-memory index (Table 1: ``mremap`` is exactly the
feature WASI lacks that blocks sqlite), pread-based page scans and
pwrite-based deletes, plus a vacuum pass using ftruncate.  The workload is
deliberately kernel-I/O heavy — the paper's Fig. 7 shows sqlite spending
over half its time in the kernel.

Record layout (64 bytes): key[24] NUL-padded | value[32] NUL-padded |
flags u32 (1 = live, 2 = deleted) | pad u32.

Commands (stdin script or file via argv[2]; db path = argv[1])::

    insert <key> <value>
    get <key>
    delete <key>
    count
    vacuum
    exit
"""

from .libc import with_libc

SQLITE_SOURCE = with_libc(r"""
const REC_SIZE = 64;
const KEY_SIZE = 24;
const VAL_SIZE = 32;
const PAGE = 4096;
const FLAG_LIVE = 1;
const FLAG_DEAD = 2;
const MREMAP_MAYMOVE = 1;

buffer line[512];
buffer rec[64];
buffer page_buf[4096];
buffer tokens[64];

global db_fd: i32 = -1;
global nrecords: i32 = 0;
// index: array of i64 file offsets, grown with mremap (the WASI-blocking
// feature sqlite needs)
global index_base: i32 = 0;
global index_cap: i32 = 0;   // capacity in entries

func index_init() {
    index_cap = 512;
    index_base = i32(SYS_mmap(0, index_cap * 8, PROT_READ | PROT_WRITE,
                              MAP_PRIVATE | MAP_ANONYMOUS, -1, i64(0)));
}

func index_grow() {
    var new_cap: i32 = index_cap * 2;
    var r: i64 = SYS_mremap(index_base, index_cap * 8, new_cap * 8,
                            MREMAP_MAYMOVE, 0);
    if (r < i64(0)) { eprint("mini-sqlite: mremap failed\n"); exit(1); }
    index_base = i32(r);
    index_cap = new_cap;
}

func index_add(off: i64) {
    if (nrecords >= index_cap) { index_grow(); }
    store64(index_base + nrecords * 8, off);
    nrecords = nrecords + 1;
}

func index_off(i: i32) -> i64 {
    return load64(index_base + i * 8);
}

func tokenize(buf: i32) -> i32 {
    var n: i32 = 0;
    var p: i32 = buf;
    while (load8u(p) != 0 && n < 8) {
        while (load8u(p) == ' ') { store8(p, 0); p = p + 1; }
        if (load8u(p) == 0) { break; }
        store32(tokens + n * 4, p);
        n = n + 1;
        while (load8u(p) != ' ' && load8u(p) != 0) { p = p + 1; }
    }
    return n;
}

func tok(i: i32) -> i32 { return load32(tokens + i * 4); }

// build the in-memory offset index by scanning the file page by page
func load_index() {
    var off: i64 = i64(0);
    while (1) {
        var n: i32 = cret(SYS_pread64(db_fd, page_buf, PAGE, off));
        if (n <= 0) { break; }
        var i: i32 = 0;
        while (i + REC_SIZE <= n) {
            index_add(off + i64(i));
            i = i + REC_SIZE;
        }
        off = off + i64(n);
    }
}

func key_matches(record: i32, key: i32) -> i32 {
    return strncmp(record, key, KEY_SIZE) == 0;
}

func db_insert(key: i32, value: i32) {
    memfill(rec, 0, REC_SIZE);
    var klen: i32 = strlen(key);
    if (klen > KEY_SIZE - 1) { klen = KEY_SIZE - 1; }
    memcopy(rec, key, klen);
    var vlen: i32 = strlen(value);
    if (vlen > VAL_SIZE - 1) { vlen = VAL_SIZE - 1; }
    memcopy(rec + KEY_SIZE, value, vlen);
    store32(rec + KEY_SIZE + VAL_SIZE, FLAG_LIVE);
    var off: i64 = i64(nrecords) * i64(REC_SIZE);
    cret(SYS_pwrite64(db_fd, rec, REC_SIZE, off));
    index_add(off);
}

// returns the index of the newest live record for key, or -1
func db_find(key: i32) -> i32 {
    var i: i32 = nrecords - 1;
    while (i >= 0) {
        cret(SYS_pread64(db_fd, rec, REC_SIZE, index_off(i)));
        if (load32(rec + KEY_SIZE + VAL_SIZE) == FLAG_LIVE &&
            key_matches(rec, key)) {
            return i;
        }
        i = i - 1;
    }
    return -1;
}

func db_get(key: i32) {
    var i: i32 = db_find(key);
    if (i < 0) { println("(nil)"); return; }
    println(rec + KEY_SIZE);  // rec still holds the record from db_find
}

func db_delete(key: i32) {
    var i: i32 = db_find(key);
    if (i < 0) { println("NOT_FOUND"); return; }
    store32(rec + KEY_SIZE + VAL_SIZE, FLAG_DEAD);
    cret(SYS_pwrite64(db_fd, rec, REC_SIZE, index_off(i)));
    println("DELETED");
}

func db_count() -> i32 {
    var live: i32 = 0;
    var i: i32 = 0;
    while (i < nrecords) {
        cret(SYS_pread64(db_fd, rec, REC_SIZE, index_off(i)));
        if (load32(rec + KEY_SIZE + VAL_SIZE) == FLAG_LIVE) {
            live = live + 1;
        }
        i = i + 1;
    }
    return live;
}

// drop dead records: compact live ones to the front, truncate the tail
func db_vacuum() {
    var write_off: i64 = i64(0);
    var kept: i32 = 0;
    var i: i32 = 0;
    while (i < nrecords) {
        cret(SYS_pread64(db_fd, rec, REC_SIZE, index_off(i)));
        if (load32(rec + KEY_SIZE + VAL_SIZE) == FLAG_LIVE) {
            cret(SYS_pwrite64(db_fd, rec, REC_SIZE, write_off));
            store64(index_base + kept * 8, write_off);
            write_off = write_off + i64(REC_SIZE);
            kept = kept + 1;
        }
        i = i + 1;
    }
    cret(SYS_ftruncate(db_fd, write_off));
    cret(SYS_fsync(db_fd));
    nrecords = kept;
}

export func _start() {
    __init_args();
    if (argc() < 2) { eprint("usage: mini_sqlite <db> [script]\n"); exit(2); }
    db_fd = open(argv(1), O_RDWR | O_CREAT, 0x1b4);
    if (db_fd < 0) { eprint("mini-sqlite: cannot open db\n"); exit(1); }
    index_init();
    load_index();

    var in_fd: i32 = STDIN;
    if (argc() > 2) {
        in_fd = open(argv(2), O_RDONLY, 0);
        if (in_fd < 0) { eprint("mini-sqlite: cannot open script\n"); exit(2); }
    }

    while (1) {
        var n: i32 = read_line(in_fd, line, 512);
        if (n < 0) { break; }
        var ntok: i32 = tokenize(line);
        if (ntok == 0) { continue; }
        var cmd: i32 = tok(0);
        if (strcmp(cmd, "insert") == 0 && ntok >= 3) {
            db_insert(tok(1), tok(2));
            println("OK");
        } else {
        if (strcmp(cmd, "get") == 0 && ntok >= 2) {
            db_get(tok(1));
        } else {
        if (strcmp(cmd, "delete") == 0 && ntok >= 2) {
            db_delete(tok(1));
        } else {
        if (strcmp(cmd, "count") == 0) {
            print_int(db_count());
            println("");
        } else {
        if (strcmp(cmd, "vacuum") == 0) {
            db_vacuum();
            println("VACUUMED");
        } else {
        if (strcmp(cmd, "exit") == 0) {
            break;
        } else {
            eprint("mini-sqlite: bad command\n");
        }}}}}}
    }
    close(db_fd);
    exit(0);
}
""")


def workload_script(n_inserts: int, n_gets: int) -> bytes:
    """Generate an insert+get workload (Fig. 7 / Fig. 8 sqlite benchmark)."""
    lines = []
    for i in range(n_inserts):
        lines.append(f"insert key{i:05d} value{i * 7 % 9973}")
    for i in range(n_gets):
        lines.append(f"get key{(i * 37) % max(n_inserts, 1):05d}")
    lines.append("count")
    lines.append("exit")
    return ("\n".join(lines) + "\n").encode()
